// Unit and property tests for the CM / CU / Count sketches.

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"

namespace ltc {
namespace {

// Shared reference workload: a small Zipf stream plus its exact counts.
struct RefStream {
  std::vector<ItemId> items;
  std::unordered_map<ItemId, uint64_t> counts;
};

RefStream MakeRefStream(uint64_t n, uint64_t m, double gamma, uint64_t seed) {
  RefStream ref;
  Rng rng(seed);
  ZipfSampler sampler(m, gamma);
  ref.items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ItemId item = sampler.Sample(rng);
    ref.items.push_back(item);
    ++ref.counts[item];
  }
  return ref;
}

TEST(CountMin, NeverUnderestimates) {
  RefStream ref = MakeRefStream(50'000, 5'000, 1.0, 1);
  CountMinSketch cm(8 * 1024, 3, 1);
  for (ItemId item : ref.items) cm.Insert(item);
  for (const auto& [item, count] : ref.counts) {
    ASSERT_GE(cm.Query(item), count) << "item " << item;
  }
}

TEST(CountMin, ExactWhenWide) {
  RefStream ref = MakeRefStream(10'000, 100, 1.0, 2);
  // 1M counters for 100 items: collisions essentially impossible per row.
  CountMinSketch cm(4 * 1024 * 1024, 3, 2);
  for (ItemId item : ref.items) cm.Insert(item);
  for (const auto& [item, count] : ref.counts) {
    ASSERT_EQ(cm.Query(item), count);
  }
}

TEST(CountMin, InsertWithWeight) {
  CountMinSketch cm(1024, 3, 3);
  cm.Insert(7, 5);
  cm.Insert(7, 3);
  EXPECT_GE(cm.Query(7), 8u);
}

TEST(CountMin, UnseenItemUsuallyZeroWhenSparse) {
  CountMinSketch cm(64 * 1024, 3, 4);
  for (ItemId i = 1; i <= 100; ++i) cm.Insert(i);
  int nonzero = 0;
  for (ItemId i = 1'000'000; i < 1'000'100; ++i) {
    nonzero += cm.Query(i) > 0;
  }
  EXPECT_LE(nonzero, 5);
}

TEST(CountMin, ClearResets) {
  CountMinSketch cm(1024, 3, 5);
  cm.Insert(1, 100);
  cm.Clear();
  EXPECT_EQ(cm.Query(1), 0u);
}

TEST(CountMin, WidthDerivedFromMemory) {
  CountMinSketch cm(12 * 1024, 3, 0);
  EXPECT_EQ(cm.depth(), 3u);
  EXPECT_EQ(cm.width(), 1024u);
  EXPECT_EQ(cm.MemoryBytes(), size_t{12 * 1024});
  // A budget below one counter still yields a 1-wide sketch.
  CountMinSketch tiny(1, 3, 0);
  EXPECT_EQ(tiny.width(), 1u);
}

TEST(CountMin, EpsilonDeltaSizingHonoursTheGuarantee) {
  // ε=0.01, δ=0.05: depth = ceil(ln 20) = 3, width = ceil(e/0.01) = 272.
  EXPECT_EQ(CountMinSketch::DepthForGuarantee(0.05), 3u);
  size_t bytes = CountMinSketch::SizeForGuarantee(0.01, 0.05);
  EXPECT_EQ(bytes, 272u * 3 * 4);

  // Empirically: fraction of items with f̂ − f > εN stays below δ.
  constexpr double kEps = 0.01;
  constexpr double kDelta = 0.05;
  RefStream ref = MakeRefStream(50'000, 5'000, 1.0, 77);
  CountMinSketch cm(CountMinSketch::SizeForGuarantee(kEps, kDelta),
                    CountMinSketch::DepthForGuarantee(kDelta), 77);
  for (ItemId item : ref.items) cm.Insert(item);
  size_t violations = 0;
  for (const auto& [item, count] : ref.counts) {
    if (cm.Query(item) > count + kEps * ref.items.size()) ++violations;
  }
  EXPECT_LT(static_cast<double>(violations) / ref.counts.size(), kDelta);
}

TEST(CuSketch, NeverUnderestimatesAndBeatsCm) {
  RefStream ref = MakeRefStream(50'000, 5'000, 1.0, 6);
  CountMinSketch cm(8 * 1024, 3, 6);
  CuSketch cu(8 * 1024, 3, 6);
  for (ItemId item : ref.items) {
    cm.Insert(item);
    cu.Insert(item);
  }
  uint64_t cm_err = 0, cu_err = 0;
  for (const auto& [item, count] : ref.counts) {
    ASSERT_GE(cu.Query(item), count);
    // Same hash seeds: CU's estimate can never exceed CM's.
    ASSERT_LE(cu.Query(item), cm.Query(item));
    cm_err += cm.Query(item) - count;
    cu_err += cu.Query(item) - count;
  }
  EXPECT_LT(cu_err, cm_err);  // strictly better in aggregate under load
}

TEST(CuSketch, WeightedConservativeUpdate) {
  CuSketch cu(1024, 3, 7);
  cu.Insert(1, 10);
  EXPECT_GE(cu.Query(1), 10u);
  cu.Insert(1, 1);
  EXPECT_GE(cu.Query(1), 11u);
}

TEST(CountSketch, RoughlyUnbiasedOnHeavyItems) {
  RefStream ref = MakeRefStream(100'000, 2'000, 1.2, 8);
  CountSketch cs(16 * 1024, 3, 8);
  for (ItemId item : ref.items) cs.Insert(item);

  // Heavy items: estimates close in relative terms; errors two-sided.
  std::vector<std::pair<uint64_t, ItemId>> ranked;
  for (const auto& [item, count] : ref.counts) ranked.push_back({count, item});
  std::sort(ranked.rbegin(), ranked.rend());

  int overs = 0, unders = 0;
  for (int i = 0; i < 20; ++i) {
    auto [count, item] = ranked[i];
    int64_t est = cs.Query(item);
    EXPECT_NEAR(static_cast<double>(est), static_cast<double>(count),
                0.5 * static_cast<double>(count) + 50.0);
    if (est > static_cast<int64_t>(count)) ++overs;
    if (est < static_cast<int64_t>(count)) ++unders;
  }
  // Two-sided error: both directions occur across the top-20.
  EXPECT_GT(overs + unders, 0);
}

TEST(CountSketch, CanGoNegativeForUnseenItems) {
  CountSketch cs(512, 3, 9);
  for (ItemId i = 1; i <= 10'000; ++i) cs.Insert(i % 100 + 1);
  bool negative_seen = false;
  for (ItemId i = 1'000'000; i < 1'000'200; ++i) {
    if (cs.Query(i) < 0) {
      negative_seen = true;
      break;
    }
  }
  EXPECT_TRUE(negative_seen);
}

TEST(CountSketch, ClearResets) {
  CountSketch cs(1024, 3, 10);
  cs.Insert(5, 50);
  cs.Clear();
  EXPECT_EQ(cs.Query(5), 0);
}

// Parameterized sweep: the one-sided guarantee of CM/CU must hold for any
// depth and width.
class CounterSketchDepthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CounterSketchDepthTest, OneSidedErrorAcrossDepths) {
  uint32_t depth = GetParam();
  RefStream ref = MakeRefStream(20'000, 2'000, 1.0, 100 + depth);
  CountMinSketch cm(4 * 1024, depth, depth);
  CuSketch cu(4 * 1024, depth, depth);
  for (ItemId item : ref.items) {
    cm.Insert(item);
    cu.Insert(item);
  }
  for (const auto& [item, count] : ref.counts) {
    ASSERT_GE(cm.Query(item), count);
    ASSERT_GE(cu.Query(item), count);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, CounterSketchDepthTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

// More rows with the same total memory trade width for depth; both must
// remain correct, and the estimate for a fixed workload stays bounded.
class CountSketchDepthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CountSketchDepthTest, MedianEstimateTracksTruth) {
  uint32_t depth = GetParam();
  RefStream ref = MakeRefStream(50'000, 500, 1.5, 200 + depth);
  CountSketch cs(32 * 1024, depth, depth);
  for (ItemId item : ref.items) cs.Insert(item);

  // The single heaviest item must be estimated within 20%.
  ItemId heavy = 0;
  uint64_t heavy_count = 0;
  for (const auto& [item, count] : ref.counts) {
    if (count > heavy_count) {
      heavy = item;
      heavy_count = count;
    }
  }
  EXPECT_NEAR(static_cast<double>(cs.Query(heavy)),
              static_cast<double>(heavy_count), 0.2 * heavy_count);
}

INSTANTIATE_TEST_SUITE_P(Depths, CountSketchDepthTest,
                         ::testing::Values(1u, 3u, 5u, 7u));

}  // namespace
}  // namespace ltc
