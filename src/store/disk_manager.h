// Page-file I/O for the paged sketch store.
//
// One directory holds everything: per-page files named
// `t<tenant>.p<page>.pg` plus the write-ahead log `wal.log`. Every
// page write goes through AtomicWriteFile on the Fs seam — a page
// file is always either its old image or its new image, never a mix —
// so the only way a page can tear is media corruption, which the page
// frame's CRCs turn into a typed error (store/page.h).

#ifndef LTC_STORE_DISK_MANAGER_H_
#define LTC_STORE_DISK_MANAGER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "snapshot/fs.h"
#include "store/buffer_pool.h"

namespace ltc {
namespace store {

class DiskManager final : public PageIo {
 public:
  /// `fs` must outlive this manager; `dir` must already exist.
  DiskManager(Fs& fs, std::string dir);

  std::optional<Loaded> Load(uint64_t tenant, uint32_t page,
                             std::string* error) override;
  bool Store(uint64_t tenant, uint32_t page, uint64_t lsn,
             std::string_view payload, std::string* error) override;

  bool RemovePage(uint64_t tenant, uint32_t page);

  /// Page ids present on disk, per tenant (from a directory scan).
  std::optional<std::map<uint64_t, std::vector<uint32_t>>> ListPages(
      std::string* error);

  std::string PagePath(uint64_t tenant, uint32_t page) const;
  std::string WalPath() const;
  const std::string& dir() const { return dir_; }
  Fs& fs() { return fs_; }

  /// Parses a `t<tenant>.p<page>.pg` file name.
  static bool ParsePageName(const std::string& name, uint64_t* tenant,
                            uint32_t* page);

 private:
  Fs& fs_;
  std::string dir_;
};

}  // namespace store
}  // namespace ltc

#endif  // LTC_STORE_DISK_MANAGER_H_
