// ChaosInjector — seeded, deterministic fault scheduling against a live
// IngestPipeline (and optionally its snapshot I/O path), the driver of
// the `chaos`-labelled tests (docs/INGEST.md "Failure handling &
// degradation").
//
// The injector does not create new fault mechanisms; it composes the
// seams the components already expose:
//
//   worker death   IngestPipeline::KillWorkerForTest  (cooperative exit)
//   worker hang    IngestPipeline::HangWorkerForTest  (frozen heartbeat)
//   I/O faults     FailpointFs::Arm                   (recoverable bursts)
//
// The test calls Step() between feeding chunks; each step rolls the
// seeded dice and may kill a worker, hang one (auto-released after
// `hang_release_steps` further steps), or arm a burst of recoverable
// write/sync/rename errors on the FailpointFs under the SnapshotStore.
// Because every choice flows from one Rng, a chaos run is a pure
// function of (workload, seed): a failure reproduces from its seed, the
// same property the crash-consistency sweeps rely on.
//
// Single-threaded by design: Step()/ReleaseAll() belong to the test
// (producer) thread. The injected faults themselves are thread-safe
// seams, so the chaos lands on a fully concurrent pipeline.

#ifndef LTC_TESTING_CHAOS_INJECTOR_H_
#define LTC_TESTING_CHAOS_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ingest/ingest_pipeline.h"
#include "snapshot/failpoint_fs.h"
#include "testing/faulty_transport.h"

namespace ltc {

struct ChaosConfig {
  /// Per-Step probability of killing one uniformly chosen worker.
  double kill_probability = 0.05;

  /// Per-Step probability of hanging one uniformly chosen worker (a
  /// shard already hung is left alone).
  double hang_probability = 0.05;

  /// Steps after which an injected hang is released. The supervisor may
  /// well have retired the hung generation before that — the release is
  /// then a no-op on a zombie.
  uint64_t hang_release_steps = 4;

  /// Per-Step probability of arming one recoverable I/O fault burst
  /// (write/sync/rename error) on the FailpointFs, when one was given.
  double io_fault_probability = 0.1;

  /// Burst length is uniform in [1, max_io_burst] matching ops.
  uint64_t max_io_burst = 2;

  /// Per-Step probability of arming one network fault burst (uniformly
  /// chosen kind) on one uniformly chosen attached FaultyTransport.
  double transport_fault_probability = 0.0;

  /// Network burst length is uniform in [1, max_transport_burst].
  uint64_t max_transport_burst = 2;

  /// Root of all chaos: same seed, same disaster schedule.
  uint64_t seed = 1;
};

class ChaosInjector {
 public:
  /// `fs` may be nullptr (no I/O chaos). Both referees must outlive the
  /// injector.
  ChaosInjector(IngestPipeline& pipeline, const ChaosConfig& config,
                FailpointFs* fs = nullptr);

  /// Pipeline-less form for network-only chaos (the aggregation tier
  /// has no local ingest workers to kill): only I/O faults and attached
  /// transports get the dice.
  explicit ChaosInjector(const ChaosConfig& config, FailpointFs* fs = nullptr);

  /// Adds a FaultyTransport to the network-fault lottery (see
  /// transport_fault_probability). Must outlive the injector. Arm() on
  /// the transport is thread-safe, so Step keeps belonging to the test
  /// thread while pushers drive the transports.
  void AttachTransport(FaultyTransport* transport);

  /// One round of dice: maybe kill, maybe hang, maybe arm an I/O fault
  /// burst or a network fault burst; releases hangs whose step budget
  /// expired.
  void Step();

  /// Releases every still-pending hang (call before Stop() so no lane
  /// stays pinned; Stop() itself also releases hung threads).
  void ReleaseAll();

  uint64_t kills_injected() const { return kills_; }
  uint64_t hangs_injected() const { return hangs_; }
  uint64_t io_faults_armed() const { return io_faults_; }
  uint64_t transport_faults_armed() const { return transport_faults_; }

 private:
  IngestPipeline* pipeline_;  // null = network-only chaos
  ChaosConfig config_;
  FailpointFs* fs_;
  Rng rng_;
  std::vector<FaultyTransport*> transports_;
  // steps left before the shard's injected hang is released; 0 = none.
  std::vector<uint64_t> hang_budget_;
  uint64_t kills_ = 0;
  uint64_t hangs_ = 0;
  uint64_t io_faults_ = 0;
  uint64_t transport_faults_ = 0;
};

}  // namespace ltc

#endif  // LTC_TESTING_CHAOS_INJECTOR_H_
