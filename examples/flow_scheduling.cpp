// Use Case 3 (paper §I): network congestion / flow rerouting.
//
// To relieve a congested link, an operator reroutes a handful of flows —
// rewriting forwarding entries is expensive, so the chosen flows should
// still be heavy AFTER the change. Large flows that are mere bursts make
// the rewrite pointless. This example observes the first half of a
// synthetic trace, picks top-20 flows (a) by frequency and (b) by
// significance, then measures how much second-half traffic each chosen
// set actually carries.

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/ltc.h"
#include "stream/stream.h"

namespace {

struct Trace {
  std::vector<ltc::Record> packets;
  double duration;
};

// Flows: persistent "elephants" (steady, all trace), one-off "bursts"
// (heavy but brief), and background mice.
Trace Synthesize() {
  ltc::Rng rng(31337);
  Trace trace;
  constexpr int kPeriods = 100;
  constexpr double kPeriodSec = 1.0;
  trace.duration = kPeriods * kPeriodSec;

  for (int i = 0; i < 30; ++i) {  // elephants
    ltc::ItemId flow = 0xE0000000ULL + i + 1;
    for (int p = 0; p < kPeriods; ++p) {
      uint64_t packets = 40 + rng.Uniform(30);
      for (uint64_t j = 0; j < packets; ++j) {
        trace.packets.push_back({flow, (p + rng.UniformDouble()) * kPeriodSec});
      }
    }
  }
  for (int i = 0; i < 50; ++i) {  // bursts, confined to the first half
    ltc::ItemId flow = 0xB0000000ULL + i + 1;
    int start = static_cast<int>(rng.Uniform(40));
    for (int p = start; p < start + 3; ++p) {
      for (int j = 0; j < 1'500; ++j) {
        trace.packets.push_back({flow, (p + rng.UniformDouble()) * kPeriodSec});
      }
    }
  }
  for (int i = 0; i < 200'000; ++i) {  // mice
    trace.packets.push_back({rng.Uniform(30'000) + 1,
                             rng.UniformDouble() * trace.duration});
  }

  std::sort(trace.packets.begin(), trace.packets.end(),
            [](const ltc::Record& a, const ltc::Record& b) {
              return a.time < b.time;
            });
  return trace;
}

std::vector<ltc::ItemId> PickFlows(const Trace& trace, double split_time,
                                   double alpha, double beta, size_t k) {
  ltc::LtcConfig config;
  config.memory_bytes = 16 * 1024;
  config.alpha = alpha;
  config.beta = beta;
  config.period_mode = ltc::PeriodMode::kTimeBased;
  config.period_seconds = 1.0;
  ltc::Ltc table(config);
  for (const ltc::Record& pkt : trace.packets) {
    if (pkt.time >= split_time) break;
    table.Insert(pkt.item, pkt.time);
  }
  table.Finalize();
  std::vector<ltc::ItemId> flows;
  for (const auto& report : table.TopK(k)) flows.push_back(report.item);
  return flows;
}

uint64_t FutureTraffic(const Trace& trace, double split_time,
                       const std::vector<ltc::ItemId>& flows) {
  std::unordered_map<ltc::ItemId, uint64_t> counts;
  for (const ltc::Record& pkt : trace.packets) {
    if (pkt.time >= split_time) ++counts[pkt.item];
  }
  uint64_t covered = 0;
  for (ltc::ItemId flow : flows) {
    auto it = counts.find(flow);
    if (it != counts.end()) covered += it->second;
  }
  return covered;
}

}  // namespace

int main() {
  Trace trace = Synthesize();
  const double split = trace.duration / 2;
  constexpr size_t kReroutes = 20;

  std::printf("trace: %zu packets over %.0f s; choosing %zu flows to "
              "reroute at t=%.0f s\n\n",
              trace.packets.size(), trace.duration, kReroutes, split);

  auto by_freq = PickFlows(trace, split, 1.0, 0.0, kReroutes);
  auto by_sig = PickFlows(trace, split, 1.0, 100.0, kReroutes);

  uint64_t freq_payoff = FutureTraffic(trace, split, by_freq);
  uint64_t sig_payoff = FutureTraffic(trace, split, by_sig);

  std::printf("second-half packets carried by the rerouted flows:\n");
  std::printf("  chosen by frequency    : %8llu packets\n",
              static_cast<unsigned long long>(freq_payoff));
  std::printf("  chosen by significance : %8llu packets\n",
              static_cast<unsigned long long>(sig_payoff));
  if (freq_payoff == 0) {
    std::printf("\nthe frequency-chosen flows were all bursts: rerouting "
                "them moved zero future traffic.\n");
  } else {
    std::printf("\nsignificant flows keep carrying traffic after the "
                "rewrite — %.1fx the payoff of frequency-chosen ones.\n",
                static_cast<double>(sig_payoff) / freq_payoff);
  }
  return sig_payoff >= freq_payoff ? 0 : 1;
}
