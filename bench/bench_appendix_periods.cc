// Appendix experiment — varying the number of periods T (§V-G "Varying
// the number of periods"): persistent items (α=0, β=1, k=100) at 50 KB,
// re-dividing the same Network-like record sequence into T ∈
// {100, 200, 500, 1000, 2000} periods. LTC and the BF+CU adaptation.

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  constexpr size_t kMemory = 50 * 1024;
  constexpr size_t kK = 100;
  Stream base = MakeNetworkLike(ScaledRecords(1'000'000, 10'000'000), 2);

  TextTable table({"T", "LTC", "BF+CU"});
  for (uint32_t t : {100u, 200u, 500u, 1000u, 2000u}) {
    // Same records, re-divided into T periods.
    Stream stream(std::vector<Record>(base.records()), t, base.duration());
    GroundTruth truth = GroundTruth::Compute(stream);
    Dataset data{"Network", std::move(stream), std::move(truth)};

    auto ltc = MakeLtcReporter(kMemory, data.stream, 0.0, 1.0);
    BfSketchPersistentReporter bf(SketchKind::kCu, kMemory, kK);
    double p_ltc =
        RunReporter(*ltc, data.stream, data.truth, kK, 0.0, 1.0)
            .eval.precision;
    double p_bf =
        RunReporter(bf, data.stream, data.truth, kK, 0.0, 1.0)
            .eval.precision;
    table.AddRow(
        {std::to_string(t), FormatMetric(p_ltc), FormatMetric(p_bf)});
  }
  PrintFigure(
      "Appendix: precision vs number of periods T, persistent items "
      "(Network records, 50KB, k=100)",
      table);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
