#include "codes/lt_code.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace ltc {

LtCode::LtCode(uint32_t num_blocks, double c, double delta,
               uint32_t max_degree)
    : num_blocks_(num_blocks) {
  assert(num_blocks >= 1);
  if (max_degree == 0 || max_degree > num_blocks) max_degree = num_blocks;
  const double k = static_cast<double>(num_blocks);

  // Ideal soliton ρ and the robust spike τ at k/R.
  const double r = c * std::log(k / delta) * std::sqrt(k);
  const uint32_t spike = std::clamp<uint32_t>(
      r > 0 ? static_cast<uint32_t>(std::lround(k / r)) : num_blocks, 1,
      num_blocks);

  std::vector<double> pmf(num_blocks);
  for (uint32_t d = 1; d <= num_blocks; ++d) {
    double rho = (d == 1) ? 1.0 / k : 1.0 / (static_cast<double>(d) * (d - 1));
    double tau = 0.0;
    if (r > 0) {
      if (d < spike) {
        tau = r / (static_cast<double>(d) * k);
      } else if (d == spike) {
        tau = r * std::log(r / delta) / k;
      }
    }
    pmf[d - 1] = rho + std::max(0.0, tau);
  }

  // Truncation: mass above max_degree is dropped and the rest
  // renormalized (degrees stay in [1, max_degree]).
  for (uint32_t d = max_degree + 1; d <= num_blocks; ++d) pmf[d - 1] = 0.0;

  double total = 0.0;
  for (double p : pmf) total += p;
  degree_cdf_.resize(num_blocks);
  double acc = 0.0;
  for (uint32_t d = 0; d < num_blocks; ++d) {
    acc += pmf[d] / total;
    degree_cdf_[d] = acc;
  }
  degree_cdf_.back() = 1.0;  // guard against rounding
}

double LtCode::DegreeProbability(uint32_t degree) const {
  assert(degree >= 1 && degree <= num_blocks_);
  double hi = degree_cdf_[degree - 1];
  double lo = degree == 1 ? 0.0 : degree_cdf_[degree - 2];
  return hi - lo;
}

uint32_t LtCode::SampleDegree(uint64_t u) const {
  double x = static_cast<double>(u >> 11) * 0x1.0p-53;
  auto it = std::lower_bound(degree_cdf_.begin(), degree_cdf_.end(), x);
  return static_cast<uint32_t>(it - degree_cdf_.begin()) + 1;
}

std::vector<uint32_t> LtCode::NeighboursOf(uint64_t seed) const {
  uint64_t state = Mix64(seed ^ 0x1badcafeULL);
  uint32_t degree = SampleDegree(state);

  // Degree-many distinct block indices via seeded rejection; K is small in
  // our use (4 for IDs), so the loop terminates in a handful of steps.
  std::vector<uint32_t> out;
  out.reserve(degree);
  while (out.size() < degree) {
    state = Mix64(state);
    uint32_t idx = static_cast<uint32_t>(FastRange64(state, num_blocks_));
    if (std::find(out.begin(), out.end(), idx) == out.end()) {
      out.push_back(idx);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t LtCode::Encode(const std::vector<uint64_t>& blocks,
                        uint64_t seed) const {
  assert(blocks.size() == num_blocks_);
  uint64_t value = 0;
  for (uint32_t idx : NeighboursOf(seed)) value ^= blocks[idx];
  return value;
}

PartialDecodeResult PeelingDecodePartial(uint32_t num_blocks,
                                         std::vector<GraphSymbol> symbols) {
  std::vector<std::vector<uint32_t>> incidence(num_blocks);
  for (uint32_t id = 0; id < symbols.size(); ++id) {
    for (uint32_t b : symbols[id].neighbours) {
      assert(b < num_blocks);
      incidence[b].push_back(id);
    }
  }

  PartialDecodeResult result;
  result.blocks.assign(num_blocks, 0);
  result.resolved.assign(num_blocks, false);
  uint32_t num_resolved = 0;

  // Ripple: symbols whose neighbour set has shrunk to one block.
  std::vector<uint32_t> ripple;
  for (uint32_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i].neighbours.size() == 1) ripple.push_back(i);
  }

  while (!ripple.empty() && num_resolved < num_blocks) {
    uint32_t sym = ripple.back();
    ripple.pop_back();
    if (symbols[sym].neighbours.size() != 1) continue;  // stale entry
    uint32_t block = symbols[sym].neighbours[0];
    if (result.resolved[block]) {
      symbols[sym].neighbours.clear();
      continue;
    }
    result.resolved[block] = true;
    result.blocks[block] = symbols[sym].value;
    ++num_resolved;
    symbols[sym].neighbours.clear();

    // Peel the resolved block out of every incident symbol.
    for (uint32_t other : incidence[block]) {
      GraphSymbol& node = symbols[other];
      auto it =
          std::find(node.neighbours.begin(), node.neighbours.end(), block);
      if (it == node.neighbours.end()) continue;
      node.neighbours.erase(it);
      node.value ^= result.blocks[block];
      if (node.neighbours.size() == 1) ripple.push_back(other);
    }
  }
  return result;
}

std::optional<std::vector<uint64_t>> PeelingDecode(
    uint32_t num_blocks, std::vector<GraphSymbol> symbols) {
  PartialDecodeResult partial =
      PeelingDecodePartial(num_blocks, std::move(symbols));
  for (bool r : partial.resolved) {
    if (!r) return std::nullopt;
  }
  return std::move(partial.blocks);
}

std::optional<std::vector<uint64_t>> LtCode::Decode(
    const std::vector<Symbol>& symbols) const {
  std::vector<GraphSymbol> graph;
  graph.reserve(symbols.size());
  for (const Symbol& s : symbols) {
    graph.push_back({NeighboursOf(s.seed), s.value});
  }
  return PeelingDecode(num_blocks_, std::move(graph));
}

std::vector<uint64_t> SplitId(uint64_t id) {
  std::vector<uint64_t> blocks(kIdBlocks);
  for (uint32_t i = 0; i < kIdBlocks; ++i) {
    blocks[i] = (id >> (16 * i)) & 0xffffULL;
  }
  return blocks;
}

uint64_t JoinId(const std::vector<uint64_t>& blocks) {
  uint64_t id = 0;
  for (uint32_t i = 0; i < kIdBlocks; ++i) {
    id |= (blocks[i] & 0xffffULL) << (16 * i);
  }
  return id;
}

}  // namespace ltc
