#!/usr/bin/env bash
# Graceful-shutdown end-to-end proof: SIGINT/SIGTERM ltc_cli mid-run
# and show that it flushes the pipeline, writes a final checkpoint and
# a complete --metrics-out exposition, and exits 128+signo — then that
# --load picks the checkpoint up cleanly.
#
# usage: graceful_shutdown.sh <ltc_gen> <ltc_cli> <work_dir>
#
# Companion to crash_recovery.sh: that script proves recovery after an
# unclean SIGKILL; this one proves the clean half of the contract —
# catchable signals produce durable state on purpose, not by luck.
set -u

fail() { echo "graceful_shutdown: FAIL: $*" >&2; exit 1; }

GEN="$(readlink -f "$1")" || fail "cannot resolve $1"
CLI="$(readlink -f "$2")" || fail "cannot resolve $2"
WORK="$3"

mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot cd $WORK"
rm -f trace.txt ck.bin ck.bin.*.snap metrics.prom out.csv cli.err fifo

"$GEN" --dataset zipf --records 400000 --periods 40 --seed 42 trace.txt \
  || fail "ltc_gen"

# --- Deterministic variant: signal guaranteed to land mid-run. -------
# Feed the trace over a fifo and hold the write end open: the CLI
# blocks reading stdin, we deliver SIGTERM, then close the fifo. The
# run then proceeds, observes the latched signal at the first chunk
# boundary, checkpoints, writes metrics, and exits 143.
mkfifo fifo || fail "mkfifo"
"$CLI" --threads 2 --save ck.bin --checkpoint-every 5000 \
  --metrics-out metrics.prom --csv - < fifo > out.csv 2> cli.err &
pid=$!
exec 3> fifo || fail "cannot open fifo for writing"
cat trace.txt >&3
sleep 0.2
kill -TERM "$pid" 2> /dev/null || fail "deterministic: cannot signal $pid"
sleep 0.2
exec 3>&-
wait "$pid"
status=$?
[ "$status" -eq 143 ] \
  || fail "deterministic: expected exit 143 (128+SIGTERM), got $status"
grep -q "interrupted by signal 15" cli.err \
  || fail "deterministic: missing shutdown notice: $(cat cli.err)"
[ -e ck.bin ] || fail "deterministic: no checkpoint written"
[ -s metrics.prom ] || fail "deterministic: no metrics exposition written"
grep -q "ltc_ingest_health_state" metrics.prom \
  || fail "deterministic: exposition is missing the health gauge"
"$CLI" --threads 2 --load ck.bin --csv trace.txt > out.csv 2> recover.err \
  || fail "deterministic: reload failed: $(cat recover.err)"
head -1 out.csv | grep -q "item,frequency" \
  || fail "deterministic: reload output malformed"
echo "graceful_shutdown: [deterministic] SIGTERM honored, state reloaded OK"

# --- Wall-clock variant: SIGINT racing a real run. -------------------
# The signal may land mid-run (exit 130) or after the run finished
# (exit 0); both are correct. Either way durable state must exist.
run_one() {
  local threads_flag="$1" delay="$2" label="$3"
  rm -f ck.bin ck.bin.*.snap metrics.prom cli.err
  # shellcheck disable=SC2086
  "$CLI" $threads_flag --save ck.bin --checkpoint-every 5000 \
    --metrics-out metrics.prom --csv trace.txt > /dev/null 2> cli.err &
  local pid=$!
  sleep "$delay"
  kill -INT "$pid" 2> /dev/null
  wait "$pid"
  local status=$?
  if [ "$status" -eq 130 ]; then
    grep -q "interrupted by signal 2" cli.err \
      || fail "[$label] missing shutdown notice: $(cat cli.err)"
  elif [ "$status" -ne 0 ]; then
    fail "[$label] expected exit 130 or 0, got $status: $(cat cli.err)"
  fi
  [ -e ck.bin ] || fail "[$label] no checkpoint on disk (exit $status)"
  [ -s metrics.prom ] || fail "[$label] no metrics exposition (exit $status)"
  # shellcheck disable=SC2086
  "$CLI" $threads_flag --load ck.bin --csv trace.txt > out.csv \
    2> recover.err || fail "[$label] reload failed: $(cat recover.err)"
  head -1 out.csv | grep -q "item,frequency" \
    || fail "[$label] reload output malformed"
  echo "graceful_shutdown: [$label] exit $status; state reloaded OK"
}

for delay in 0.05 0.15; do
  run_one ""            "$delay" "single-t${delay}"
  run_one "--threads 2" "$delay" "sharded-t${delay}"
done

rm -f fifo
echo "graceful_shutdown: PASS"
