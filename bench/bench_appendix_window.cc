// Extension bench — recent-history significance under concept drift.
// The popularity ranking rotates every 25 periods; the question at the
// end of the stream is "who is significant NOW". A whole-stream LTC
// still reports items from dead phases; WindowedLtc (last W periods)
// tracks the live phase. Scored against ground truth restricted to the
// final phase.

#include <unordered_set>

#include "bench_common.h"
#include "core/windowed_ltc.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kK = 100;
constexpr uint32_t kPeriods = 100;
constexpr uint32_t kPhasePeriods = 25;

// Ground truth over only the records of the last phase.
GroundTruth LastPhaseTruth(const Stream& stream) {
  std::vector<Record> tail;
  double cutoff =
      stream.duration() * (kPeriods - kPhasePeriods) / kPeriods;
  for (const Record& r : stream.records()) {
    if (r.time >= cutoff) tail.push_back(r);
  }
  Stream tail_stream(std::move(tail), kPhasePeriods, stream.duration());
  return GroundTruth::Compute(tail_stream);
}

double PrecisionAgainst(const GroundTruth& truth,
                        const std::vector<Ltc::Report>& reported) {
  std::unordered_set<ItemId> true_set;
  for (const auto& [item, sig] : truth.TopKSignificant(kK, 1.0, 1.0)) {
    true_set.insert(item);
  }
  size_t hits = 0;
  for (const auto& r : reported) hits += true_set.count(r.item);
  return static_cast<double>(hits) / kK;
}

}  // namespace

void Run() {
  const uint64_t n = ScaledRecords(1'000'000, 10'000'000);
  Stream stream =
      MakeDriftingStream(n, n / 20, 1.1, kPeriods, kPhasePeriods, 17);
  GroundTruth recent_truth = LastPhaseTruth(stream);

  TextTable table({"memoryKB", "windowed_prec", "wholestream_prec"});
  for (size_t kb : {16, 32, 64, 128}) {
    LtcConfig config;
    config.memory_bytes = kb * 1024;
    config.period_mode = PeriodMode::kTimeBased;
    config.period_seconds = stream.duration() / kPeriods;

    WindowedLtc windowed(config, kPhasePeriods);
    Ltc whole(config);
    for (const Record& r : stream.records()) {
      windowed.Insert(r.item, r.time);
      whole.Insert(r.item, r.time);
    }
    whole.Finalize();

    table.AddRow(
        {std::to_string(kb),
         FormatMetric(PrecisionAgainst(recent_truth, windowed.TopK(kK))),
         FormatMetric(PrecisionAgainst(recent_truth, whole.TopK(kK)))});
  }
  PrintFigure(
      "Extension: recent-phase precision under concept drift, windowed "
      "vs whole-stream LTC (k=100, phase=25 periods)",
      table);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
