// Parallel ingestion engine for ShardedLtc — the FeedParallel pattern the
// sharded header promises, packaged as a component (docs/INGEST.md).
//
//   producer thread                     worker threads (one per shard)
//   Push / PushBatch ──route by hash──▶ SPSC ring ──drain in batches──▶
//                                       shard(i).InsertBatch(...)
//
// One router (the caller's thread) hashes each record to its owning shard
// with ShardedLtc::ShardOf and appends it to that shard's bounded SPSC
// ring; one worker per shard drains its ring in batches through the
// Ltc::InsertBatch fast path. Because routing preserves each shard's
// arrival order and shards are independent tables, the final state is
// item-for-item identical to sequential ShardedLtc::Insert of the same
// stream — parallelism buys throughput, never a different answer
// (pinned by tests/ingest_pipeline_test.cc).
//
// Backpressure on a full ring is configurable: kBlock (the producer spins
// with yields — no record is ever lost) or kDrop (the record is counted
// and discarded — bounded producer latency under overload, like a NIC
// queue). kBlock's spin is BOUNDED: a worker that stops draining for
// `stall_yield_limit` consecutive yields surfaces as a latched stalled()
// flag (and the stuck records are counted as dropped) instead of
// wedging the producer forever.
//
// Self-healing (docs/INGEST.md "Failure handling & degradation"): a
// supervisor thread leases each lane to its worker by generation number
// and watches per-worker heartbeats. A worker that exits is joined and
// respawned on its shard; a worker whose heartbeat freezes while its
// ring holds a backlog is retired (its lease revoked, the thread
// abandoned until Stop) and replaced — the replacement becomes the
// ring's single consumer and drains exactly the records the retiree
// left behind, so no record is lost or double-applied. Once every lane
// is live again and every backlog has drained, the supervisor clears
// the stalled() latch: a stall is an incident, not a death sentence.
// health() summarises this as Healthy / Degraded (restart cooling down
// or load shedding) / Stalled.
//
// Overload shedding (opt-in, kBlock only): when a lane's queue depth
// stays above the high watermark for `sustain` consecutive pushes, the
// producer switches that lane to counted probabilistic admission —
// admit one record in `admit_one_in`, never spin — until depth holds
// below the low watermark. Every shed record is counted
// (pushed = enqueued + dropped + shed, always).
//
// Durability: attach a SnapshotStore and set checkpoint_every to have
// the pipeline periodically persist the sink — each checkpoint rides
// the Flush() barrier (flush → serialize → atomic save → resume
// feeding; workers never restart). Checkpoint attempts retry per
// `checkpoint_retry` with exponential backoff on the injectable clock,
// so a transiently stalled flush or failed save heals instead of
// failing the interval. See docs/DURABILITY.md.
//
// Threading contract: Push / PushBatch / Flush / Stop / Checkpoint must
// all be called from ONE producer thread. Queries on the ShardedLtc are
// only safe after Flush() (all queued records applied, memory-visible)
// or Stop(). health(), stalled() and the stats accessors are safe from
// any thread.

#ifndef LTC_INGEST_INGEST_PIPELINE_H_
#define LTC_INGEST_INGEST_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "core/read_snapshot.h"
#include "core/sharded_ltc.h"
#include "ingest/spsc_ring.h"
#include "telemetry/metrics.h"

namespace ltc {

class SnapshotStore;

/// What the router does when a shard's ring is full.
enum class BackpressureMode {
  kBlock,  // spin/yield until the worker frees space; lossless
  kDrop,   // discard the record and count it; bounded producer latency
};

/// The pipeline's summarized condition. Ordered by severity: the metric
/// gauge exports the enum value, so alerts can threshold on it.
enum class IngestHealth {
  kHealthy = 0,   // all workers live, no shedding, no latched stall
  kDegraded = 1,  // a restart is cooling down and/or a lane is shedding
  kStalled = 2,   // a bounded wait expired and the stall has not healed
};

/// "healthy" / "degraded" / "stalled".
const char* IngestHealthName(IngestHealth health);

/// Supervisor knobs (see IngestConfig::supervision).
struct SupervisionConfig {
  /// Master switch. Disabled = the pre-supervision pipeline: a dead
  /// worker stays dead (Stop() still applies its leftover backlog).
  bool enabled = true;

  /// Supervisor tick cadence. Detection latencies below are measured
  /// in these ticks.
  uint64_t interval_usec = 20'000;

  /// A worker whose heartbeat AND drained count stay frozen for this
  /// many consecutive ticks while its ring holds a backlog is declared
  /// hung and replaced. Conservative by default (~5s at the default
  /// tick): retiring a live-but-slow worker would race its in-flight
  /// batch against the replacement.
  uint64_t hang_ticks = 250;
};

/// Producer-side overload shedding knobs (see IngestConfig::shed).
struct ShedPolicy {
  /// Master switch; shedding applies only under kBlock backpressure
  /// (kDrop already has bounded producer latency).
  bool enabled = false;

  /// Queue-depth fractions of ring capacity. Depth at or above high for
  /// `sustain` consecutive pushes starts shedding; depth at or below
  /// low for `sustain` consecutive pushes ends it (hysteresis).
  double high_watermark = 0.9;
  double low_watermark = 0.5;

  /// Consecutive per-lane push observations required to flip state —
  /// one transient full ring does not start a shed.
  uint32_t sustain = 3;

  /// While shedding, admit one record in this many (and only when the
  /// ring has room right now); the rest are counted as shed.
  uint32_t admit_one_in = 8;
};

struct IngestConfig {
  /// Per-shard ring capacity in records (rounded up to a power of two).
  size_t ring_capacity = 1 << 14;

  /// Worker drain granularity: how many records a worker pops and hands
  /// to Ltc::InsertBatch at once.
  size_t drain_batch = 512;

  BackpressureMode backpressure = BackpressureMode::kBlock;

  /// Escape hatch for kBlock spins and Flush() waits: after this many
  /// consecutive yields with NO worker progress, the wait gives up,
  /// stalled() latches true and (for a blocked push) the stuck records
  /// are counted as dropped. A dead worker thus surfaces as an
  /// observable error instead of an infinite producer spin. The default
  /// is a few seconds of real time; tests use tiny values.
  uint64_t stall_yield_limit = 4'000'000;

  /// Auto-checkpoint cadence in accepted records; 0 disables. Only
  /// effective once a SnapshotStore is attached.
  uint64_t checkpoint_every = 0;

  /// Worker supervision: heartbeat monitoring, restart-on-death/hang,
  /// stall healing.
  SupervisionConfig supervision;

  /// Overload shedding under sustained queue pressure (off by default).
  ShedPolicy shed;

  /// Retry policy for Checkpoint(): each failed attempt (stalled flush
  /// OR failed save) is retried after a backoff sleep on `clock`. The
  /// default (max_attempts = 1) keeps the historical fail-fast
  /// behaviour.
  BackoffPolicy checkpoint_retry;

  /// Clock for checkpoint-retry sleeps; nullptr = SystemClock(). Tests
  /// pass a FakeClock to pin the backoff schedule.
  Clock* clock = nullptr;
};

/// Per-shard operational counters (see IngestPipeline::ShardStatsOf).
struct IngestShardStats {
  uint64_t enqueued = 0;     // records accepted into the ring
  uint64_t dropped = 0;      // records discarded (kDrop mode only)
  uint64_t shed = 0;         // records rejected by overload shedding
  uint64_t drained = 0;      // records applied to the shard table
  uint64_t batches = 0;      // InsertBatch calls the worker issued
  uint64_t flushes = 0;      // Flush() waits this lane completed
  uint64_t restarts = 0;     // times the supervisor replaced the worker
  bool shedding = false;     // lane currently in probabilistic admission
  size_t queue_depth = 0;    // ring occupancy at sampling time (racy)
  size_t ring_capacity = 0;
};

class IngestPipeline {
 public:
  /// Spawns one worker thread per shard of `sink` (plus the supervisor
  /// when enabled). The sink must outlive the pipeline, and nothing
  /// else may touch it until Flush()/Stop().
  explicit IngestPipeline(ShardedLtc& sink, const IngestConfig& config = {});

  /// Stops and joins the workers (all accepted records are applied).
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Routes one record to its shard's ring. Producer thread only.
  void Push(ItemId item, double time = 0.0);

  /// Routes a run of records. The records are partitioned into per-shard
  /// runs first so each ring is published to once per run instead of once
  /// per record — feed the pipeline in batches whenever the stream allows.
  void PushBatch(std::span<const Record> records);

  /// Blocks until every accepted record has been applied to its shard
  /// table (and is memory-visible to this thread). The pipeline stays
  /// usable: Push may resume after Flush — that is how mid-stream
  /// snapshots are taken (flush, query, keep feeding). The wait is
  /// bounded (see IngestConfig::stall_yield_limit): returns false when
  /// a stalled worker kept records from draining, true when every
  /// accepted record is applied.
  bool Flush();

  /// Attaches a read-snapshot hub (docs/SERVING.md): every successful
  /// Flush() barrier then publishes a bit-identical clone of the sink
  /// into the hub, so concurrent readers (the query server) always see
  /// a consistent flush-boundary image without ever touching the live
  /// tables. The hub must outlive the pipeline (or be detached with
  /// nullptr first). Producer thread only.
  void AttachReadSnapshotHub(ReadSnapshotHub* hub) { snapshot_hub_ = hub; }

  /// Attaches the checkpoint sink. The store must outlive the pipeline
  /// (or be detached with nullptr first). Producer thread only. With
  /// config.checkpoint_every > 0, a checkpoint is taken automatically
  /// every that-many accepted records.
  void AttachSnapshotStore(SnapshotStore* store);

  /// Takes a checkpoint NOW: Flush(), serialize the sink, atomically
  /// persist it to the attached store — retrying the whole attempt per
  /// config.checkpoint_retry (a stalled flush can heal under the
  /// supervisor mid-backoff). Returns false (with `error` naming the
  /// stalled shards and their queue depths, or the save failure) only
  /// when every attempt failed — the previously persisted snapshots
  /// are untouched either way. Producer thread only.
  bool Checkpoint(std::string* error = nullptr);

  /// Checkpoints successfully taken / failed since construction, and
  /// the store sequence number of the newest one (0 = none yet).
  uint64_t CheckpointsTaken() const { return checkpoints_taken_; }
  uint64_t CheckpointFailures() const { return checkpoint_failures_; }
  uint64_t LastCheckpointSeq() const { return last_checkpoint_seq_; }

  /// Checkpoint attempt re-runs the backoff loop has made (0 while
  /// every checkpoint succeeds first try). Producer thread only.
  uint64_t CheckpointRetries() const { return checkpoint_retries_; }

  /// Latched true once any bounded wait expired (dead/stuck worker);
  /// cleared by the supervisor once every lane is live and drained.
  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

  /// Current condition: Stalled while the stall latch is set, Degraded
  /// while a restart cools down or any lane sheds, Healthy otherwise.
  /// Any thread.
  IngestHealth health() const;

  /// Times the supervisor replaced a worker, across all lanes.
  uint64_t WorkerRestarts() const;

  /// Total records rejected by overload shedding across shards.
  uint64_t TotalShed() const;

  /// Fault-injection seam: while true, workers stop draining but keep
  /// heartbeating (paused-but-alive — the supervisor does NOT restart
  /// them) until resumed or stopped. Any thread.
  void SuspendWorkersForTest(bool suspended) {
    suspended_.store(suspended, std::memory_order_release);
  }

  /// Fault-injection seam: the shard's current worker exits its loop at
  /// the next iteration, as if the thread died. With supervision on,
  /// the supervisor joins and replaces it. Any thread.
  void KillWorkerForTest(uint32_t shard);

  /// Fault-injection seam: pins the shard's CURRENT worker generation
  /// in a no-heartbeat spin (a hung thread) until released with
  /// hung=false or Stop(). A replacement spawned by the supervisor is
  /// NOT affected — the hang targets one generation. Any thread.
  void HangWorkerForTest(uint32_t shard, bool hung);

  /// Flushes, stops and joins all workers. Idempotent; called by the
  /// destructor. After Stop() the pipeline accepts no more records.
  void Stop();

  /// Total records accepted across shards (excludes drops and sheds).
  uint64_t TotalEnqueued() const;

  /// Total records discarded by kDrop backpressure or a stalled kBlock
  /// push.
  uint64_t TotalDropped() const;

  /// Throws std::out_of_range when `shard` >= num_shards().
  IngestShardStats ShardStatsOf(uint32_t shard) const;

  /// Attaches a metrics registry (docs/TELEMETRY.md): registers the
  /// ltc_ingest_* families, after which Flush()/Checkpoint() record
  /// their latencies and SampleMetrics() publishes the per-shard
  /// counters and gauges. nullptr detaches. The registry must outlive
  /// the pipeline (or be detached first). Producer thread only.
  void AttachMetrics(telemetry::MetricsRegistry* registry);

  /// Publishes the current per-shard counters (enqueued / dropped /
  /// shed / drained / batches / flushes / restarts), queue-depth and
  /// ring-capacity gauges, the stalled and health gauges and the
  /// checkpoint totals into the attached registry. No-op when none is
  /// attached. Producer thread only; cheap enough to call at any
  /// reporting cadence. (The supervisor never touches the registry —
  /// its state flows out through this sampler.)
  void SampleMetrics();

  uint32_t num_shards() const {
    return static_cast<uint32_t>(lanes_.size());
  }

 private:
  // One shard's lane: its ring, its worker lease, and its counters,
  // grouped by writer so each writing thread owns its cache lines.
  struct Lane {
    explicit Lane(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing ring;

    // Producer-written.
    alignas(64) std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<bool> shedding{false};
    uint64_t shed_tick = 0;     // admission counter (producer only)
    uint32_t over_streak = 0;   // consecutive pushes above high (producer)
    uint32_t under_streak = 0;  // consecutive pushes below low (producer)
    size_t high_threshold = 0;  // records; fixed after construction
    size_t low_threshold = 0;

    // Worker-written.
    alignas(64) std::atomic<uint64_t> drained{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> heartbeat{0};  // bumped once per loop iteration

    // Lease protocol. `generation` names the worker that owns the lane
    // (supervisor-written); a worker that observes a different value
    // exits without touching the ring again. `exited_gen` is a
    // monotonic exit acknowledgement: an exiting worker max-stores its
    // own generation, so a late zombie exit can never mask a newer
    // worker's death. `hang_gen` pins one generation in the hang seam.
    alignas(64) std::atomic<uint64_t> generation{1};
    std::atomic<uint64_t> exited_gen{0};
    std::atomic<uint64_t> hang_gen{0};
    std::atomic<bool> kill{false};
    std::atomic<uint64_t> restarts{0};  // supervisor-written

    // Supervisor-thread-only bookkeeping.
    uint64_t last_heartbeat = 0;
    uint64_t last_drained = 0;
    uint64_t stuck_ticks = 0;        // ticks with backlog and no progress
    uint64_t drained_at_restart = 0;
    uint32_t restart_streak = 0;     // consecutive restarts w/o progress
    uint64_t cooldown_left = 0;      // ticks before this lane is re-eligible

    std::thread worker;
  };

  void WorkerLoop(uint32_t shard_index, uint64_t my_gen);

  // Supervisor thread body: tick every supervision.interval_usec until
  // Stop(), running SuperviseTick() outside the cv lock.
  void SupervisorLoop();
  void SuperviseTick();

  // Revokes the lane's lease (generation bump) and spawns the next
  // worker generation. Supervisor thread only; the old thread must
  // already be joined or moved to zombies_.
  void RestartLane(uint32_t shard_index);

  // Pushes one shard's routed run, honouring backpressure. Returns the
  // number of records accepted (the rest were dropped or shed).
  uint64_t PushRun(Lane& lane, std::span<const Record> run);
  uint64_t PushRunShedding(Lane& lane, std::span<const Record> run);
  void UpdateShedState(Lane& lane);

  // Auto-checkpoint trigger, called after every accepting push.
  void MaybeCheckpoint(uint64_t accepted);

  // One checkpoint attempt (no counters); Checkpoint() retries it.
  bool CheckpointOnce(std::string* error);

  // "shard 1: queue_depth 64/64, drained 100/164; shard 3: ..." for
  // every lane with an undrained backlog.
  std::string StallDetail() const;

  bool AnyShedding() const;

  ShardedLtc& sink_;
  IngestConfig config_;
  Clock* clock_;  // checkpoint-retry sleeps
  std::vector<std::unique_ptr<Lane>> lanes_;  // stable addresses for threads
  std::vector<std::vector<Record>> route_runs_;  // PushBatch scratch
  std::atomic<bool> stop_{false};
  std::atomic<bool> suspended_{false};  // test seam: workers pause, alive
  std::atomic<bool> stalled_{false};    // latched by expired bounded waits
  bool stopped_ = false;  // producer-side latch; Stop is idempotent

  // Supervisor state. Retired (hung) workers park in zombies_ until
  // Stop() can join them; the vector is supervisor-owned while the
  // supervisor runs and read by Stop() only after joining it.
  std::thread supervisor_;
  std::mutex supervisor_mutex_;
  std::condition_variable supervisor_cv_;
  bool supervisor_stop_ = false;          // guarded by supervisor_mutex_
  std::vector<std::thread> zombies_;
  std::atomic<bool> degraded_{false};     // any lane cooling down

  // Read-snapshot publishing (producer thread only).
  ReadSnapshotHub* snapshot_hub_ = nullptr;

  // Checkpoint state (producer thread only).
  SnapshotStore* snapshot_store_ = nullptr;
  uint64_t since_checkpoint_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t checkpoint_failures_ = 0;
  uint64_t checkpoint_retries_ = 0;
  uint64_t last_checkpoint_seq_ = 0;

  // Metrics (producer thread only). The histogram/gauge references are
  // resolved once at AttachMetrics so Flush/Checkpoint pay one branch
  // plus a relaxed fetch_add, never a registry lookup.
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Histogram* flush_duration_usec_ = nullptr;
  telemetry::Histogram* checkpoint_duration_usec_ = nullptr;
  telemetry::Gauge* stalled_gauge_ = nullptr;
  telemetry::Gauge* health_gauge_ = nullptr;
};

}  // namespace ltc

#endif  // LTC_INGEST_INGEST_PIPELINE_H_
