// Low-overhead metrics primitives for always-on observability
// (docs/TELEMETRY.md). Dependency-free by design: the registry is the
// only part that allocates or locks, and it does so only at
// registration time — the returned Counter/Gauge/Histogram references
// are stable for the registry's lifetime, so hot paths touch nothing
// but a relaxed atomic.
//
//   * Counter   — monotonic uint64, relaxed fetch_add.
//   * Gauge     — double, relaxed store (Set) / CAS loop (Add).
//   * Histogram — fixed log2 buckets (bucket i holds values of
//                 bit-width i, upper bound 2^i − 1), lock-free Record;
//                 made for microsecond latencies and byte sizes where
//                 power-of-two resolution is plenty.
//
// Exposition (Prometheus text + JSON) lives in telemetry/exposition.h;
// each metric is read snapshot-consistently there: a counter or gauge
// is one atomic load, and a histogram's count is derived from the same
// bucket loads that produce its cumulative series, so `_count` always
// equals the `+Inf` bucket even while writers race.

#ifndef LTC_TELEMETRY_METRICS_H_
#define LTC_TELEMETRY_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ltc {
namespace telemetry {

/// Label name/value pairs attached to one series of a family, e.g.
/// {{"shard", "3"}}. Order is significant for identity and output.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter. Thread-safe; Increment/Add are a
/// single relaxed fetch_add.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// Bridge for sampling an external monotonic source (e.g. the plain
  /// uint64 fields of LtcMetricsSink, or IngestPipeline's per-lane
  /// atomics): overwrites the value with the latest sample. Only valid
  /// when the source itself never decreases.
  void SetFromSample(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge. Thread-safe; Set is a relaxed store.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log2 histogram: Record(v) increments the bucket whose
/// index is bit_width(v), so bucket i (i in [0, 64)) covers values in
/// [2^(i−1), 2^i − 1] with upper bound le = 2^i − 1; the final bucket
/// (index 64) is the +Inf overflow for values >= 2^63. Record is one
/// relaxed fetch_add per sample plus one for the running sum.
class Histogram {
 public:
  /// 0, 1, 3, 7, ..., 2^63−1, +Inf.
  static constexpr size_t kNumBuckets = 65;

  static size_t BucketIndex(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }

  /// Inclusive upper bound of bucket i; the last bucket has no finite
  /// bound (exposition renders it as +Inf).
  static uint64_t BucketUpperBound(size_t i) {
    return i >= 64 ? ~uint64_t{0} : (uint64_t{1} << i) - 1;
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Total samples, derived from the buckets so it is always consistent
  /// with the cumulative series an exporter builds from the same loads.
  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& bucket : buckets_) {
      total += bucket.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Sum of recorded values (wraps at 2^64; callers record bounded
  /// quantities like microseconds or bytes, where wrap is theoretical).
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Names and owns metric families. Registration (CounterOf / GaugeOf /
/// HistogramOf) is find-or-create under a mutex and returns a reference
/// that stays valid for the registry's lifetime — register once, keep
/// the reference, update lock-free. Re-registering the same name with a
/// different kind throws std::logic_error; malformed metric or label
/// names throw std::invalid_argument (Prometheus charset:
/// [a-zA-Z_:][a-zA-Z0-9_:]* for metrics, [a-zA-Z_][a-zA-Z0-9_]* for
/// labels).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& CounterOf(const std::string& name, const std::string& help,
                     Labels labels = {});
  Gauge& GaugeOf(const std::string& name, const std::string& help,
                 Labels labels = {});
  Histogram& HistogramOf(const std::string& name, const std::string& help,
                         Labels labels = {});

  /// One labeled series of a family. Exactly one of the three metric
  /// pointers is non-null, matching the family's kind.
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<std::unique_ptr<Series>> series;  // registration order
  };

  /// Iterates families (registration order) under the registration
  /// lock. `fn` must not call back into the registry.
  template <typename Fn>
  void ForEachFamily(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& family : families_) fn(*family);
  }

  size_t num_families() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return families_.size();
  }

 private:
  Family& FamilyOf(const std::string& name, const std::string& help,
                   MetricKind kind);
  Series& SeriesOf(Family& family, Labels labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace telemetry
}  // namespace ltc

#endif  // LTC_TELEMETRY_METRICS_H_
