// Parameterized property sweeps across LTC configurations: the structural
// invariants, the one-sided-error guarantee, and the persistency
// definition must hold for every (d, memory, α:β, pacing mode) cell of the
// configuration grid — the paper's guarantees are unconditional on shape.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/ltc.h"
#include "metrics/evaluate.h"
#include "metrics/ground_truth.h"
#include "stream/generators.h"

namespace ltc {
namespace {

struct GridParam {
  uint32_t d;
  size_t memory;
  double alpha;
  double beta;
  PeriodMode mode;
};

std::string ParamName(const ::testing::TestParamInfo<GridParam>& info) {
  const GridParam& p = info.param;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "d%u_mem%zu_a%db%d_%s", p.d, p.memory,
                static_cast<int>(p.alpha), static_cast<int>(p.beta),
                p.mode == PeriodMode::kCountBased ? "count" : "time");
  return buf;
}

class LtcGridTest : public ::testing::TestWithParam<GridParam> {
 protected:
  // One shared workload: modest size keeps the grid fast. The records are
  // re-timed to index timestamps so count-based and time-based pacing see
  // the SAME period boundaries as the ground truth — with bursty arrival
  // rates, count-defined periods are a different period definition and
  // persistency against time-defined truth would legitimately differ.
  static Stream MakeStream() {
    WorkloadConfig config;
    config.num_records = 30'000;
    config.num_distinct = 2'000;
    config.zipf_gamma = 1.0;
    config.num_periods = 30;
    config.seed = 555;
    Stream raw = GenerateWorkload(config);
    std::vector<ItemId> items;
    items.reserve(raw.size());
    for (const Record& r : raw.records()) items.push_back(r.item);
    return MakeIndexedStream(std::move(items), raw.num_periods());
  }

  Ltc BuildAndRun(const Stream& stream, bool ltr) {
    const GridParam& p = GetParam();
    LtcConfig config;
    config.memory_bytes = p.memory;
    config.cells_per_bucket = p.d;
    config.alpha = p.alpha;
    config.beta = p.beta;
    config.long_tail_replacement = ltr;
    config.period_mode = p.mode;
    config.items_per_period = stream.size() / stream.num_periods();
    config.period_seconds = stream.duration() / stream.num_periods();
    Ltc table(config);
    for (const Record& r : stream.records()) table.Insert(r.item, r.time);
    table.Finalize();
    return table;
  }
};

TEST_P(LtcGridTest, InvariantsHoldAfterFullStream) {
  Stream stream = MakeStream();
  Ltc table = BuildAndRun(stream, /*ltr=*/true);
  EXPECT_TRUE(table.CheckInvariants());
}

TEST_P(LtcGridTest, NoOverestimationWithoutLtr) {
  Stream stream = MakeStream();
  GroundTruth truth = GroundTruth::Compute(stream);
  Ltc table = BuildAndRun(stream, /*ltr=*/false);
  const GridParam& p = GetParam();
  for (const auto& report : table.TopK(table.num_cells())) {
    ASSERT_LE(report.frequency, truth.Frequency(report.item))
        << "item " << report.item;
    ASSERT_LE(report.persistency, truth.Persistency(report.item))
        << "item " << report.item;
    ASSERT_LE(report.significance,
              truth.Significance(report.item, p.alpha, p.beta) + 1e-9);
  }
}

TEST_P(LtcGridTest, PersistencyBoundedByPeriods) {
  Stream stream = MakeStream();
  Ltc table = BuildAndRun(stream, /*ltr=*/true);
  for (const auto& report : table.TopK(table.num_cells())) {
    ASSERT_LE(report.persistency, stream.num_periods());
  }
}

TEST_P(LtcGridTest, TopKIsSortedBySignificance) {
  Stream stream = MakeStream();
  Ltc table = BuildAndRun(stream, /*ltr=*/true);
  auto top = table.TopK(100);
  for (size_t i = 1; i < top.size(); ++i) {
    ASSERT_GE(top[i - 1].significance, top[i].significance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LtcGridTest,
    ::testing::ValuesIn(std::vector<GridParam>{
        {1, 2 * 1024, 1.0, 0.0, PeriodMode::kCountBased},
        {2, 2 * 1024, 1.0, 1.0, PeriodMode::kCountBased},
        {4, 4 * 1024, 1.0, 1.0, PeriodMode::kTimeBased},
        {8, 4 * 1024, 1.0, 1.0, PeriodMode::kCountBased},
        {8, 4 * 1024, 0.0, 1.0, PeriodMode::kTimeBased},
        {8, 16 * 1024, 1.0, 10.0, PeriodMode::kTimeBased},
        {8, 16 * 1024, 10.0, 1.0, PeriodMode::kCountBased},
        {16, 8 * 1024, 1.0, 1.0, PeriodMode::kTimeBased},
        {32, 32 * 1024, 1.0, 1.0, PeriodMode::kCountBased},
    }),
    ParamName);

// Zipf-skew sweep: frequent-items precision should rise with skew (the
// paper's long-tail assumption getting stronger), and every guarantee
// stays intact even at γ=0 where Long-tail Replacement's assumption fails
// (§III-D "Shortcoming").
class SkewSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SkewSweepTest, GuaranteesHoldOffDistributionToo) {
  double gamma = GetParam();
  Stream stream = MakeZipfStream(30'000, 3'000, gamma, 30, 666);
  GroundTruth truth = GroundTruth::Compute(stream);

  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.beta = 0.0;
  config.long_tail_replacement = false;
  config.items_per_period = stream.size() / stream.num_periods();
  Ltc table(config);
  for (const Record& r : stream.records()) table.Insert(r.item, r.time);
  table.Finalize();
  EXPECT_TRUE(table.CheckInvariants());
  for (const auto& report : table.TopK(table.num_cells())) {
    ASSERT_LE(report.frequency, truth.Frequency(report.item));
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, SkewSweepTest,
                         ::testing::Values(0.0, 0.4, 0.8, 1.0, 1.2, 1.5));

}  // namespace
}  // namespace ltc
