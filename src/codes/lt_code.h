// LT fountain code (Luby, 2002) with a robust-soliton degree distribution
// and an iterative peeling (belief-propagation) decoder.
//
// Role in this reproduction: the paper's persistent-items baseline (§II-B)
// is PIE, which "uses Raptor codes to record and identify item IDs" inside
// per-period Space-Time Bloom Filters. Raptor = LT + precode; per
// DESIGN.md §3 we substitute a plain LT code — PIE's accuracy in these
// experiments hinges on whether enough coded cells survive collisions to
// reach the peeling threshold, which LT exhibits identically.
//
// The code is rateless and deterministic per symbol seed: the neighbour
// set of a symbol is a pure function of (seed, num_blocks), so encoder and
// decoder never exchange degree tables.

#ifndef LTC_CODES_LT_CODE_H_
#define LTC_CODES_LT_CODE_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace ltc {

/// One node of an explicit decoding graph: value = XOR of the listed
/// blocks. Used directly by the generic peeling decoder, and produced
/// from symbol seeds by LtCode / augmented with precode constraints by
/// RaptorCode.
struct GraphSymbol {
  std::vector<uint32_t> neighbours;
  uint64_t value;
};

/// Generic iterative peeling (belief-propagation on the binary erasure
/// model): repeatedly resolves blocks referenced by a degree-1 symbol and
/// substitutes them everywhere. Returns all `num_blocks` blocks or
/// nullopt if the decoder stalls.
std::optional<std::vector<uint64_t>> PeelingDecode(
    uint32_t num_blocks, std::vector<GraphSymbol> symbols);

/// Peeling that runs to a stall and reports what it got: `resolved[i]`
/// marks recovered blocks. Lets a caller succeed when only a subset (e.g.
/// Raptor's source blocks) is needed.
struct PartialDecodeResult {
  std::vector<uint64_t> blocks;
  std::vector<bool> resolved;
};
PartialDecodeResult PeelingDecodePartial(uint32_t num_blocks,
                                         std::vector<GraphSymbol> symbols);

class LtCode {
 public:
  /// One coded symbol: the XOR of the source blocks selected by `seed`.
  struct Symbol {
    uint64_t seed;
    uint64_t value;
  };

  /// \param num_blocks  K, the number of source blocks (each a uint64)
  /// \param c, delta    robust-soliton parameters (Luby's c and δ)
  /// \param max_degree  truncates the degree distribution (0 = K, i.e.
  ///                    untruncated). A bounded-degree LT cannot decode
  ///                    alone — that is what Raptor's precode compensates
  ///                    for — and gives O(1) encode cost per symbol.
  explicit LtCode(uint32_t num_blocks, double c = 0.1, double delta = 0.5,
                  uint32_t max_degree = 0);

  /// The source-block neighbour set of the symbol with this seed:
  /// a degree drawn from the robust soliton, then that many distinct
  /// block indices, all derived deterministically from the seed.
  std::vector<uint32_t> NeighboursOf(uint64_t seed) const;

  /// Encodes one symbol from the source blocks.
  uint64_t Encode(const std::vector<uint64_t>& blocks, uint64_t seed) const;

  /// Peeling decode. Returns the recovered blocks, or nullopt if the
  /// symbols do not determine every block (decoder stalls).
  std::optional<std::vector<uint64_t>> Decode(
      const std::vector<Symbol>& symbols) const;

  uint32_t num_blocks() const { return num_blocks_; }

  /// P(degree = d) under the normalized robust soliton; exposed so tests
  /// can chi-square the sampled degrees against the analytic law.
  double DegreeProbability(uint32_t degree) const;

 private:
  uint32_t SampleDegree(uint64_t u) const;  // u uniform in [0, 2^64)

  uint32_t num_blocks_;
  std::vector<double> degree_cdf_;  // degree_cdf_[d-1] = P(degree <= d)
};

/// Convenience wrappers for the PIE use case: a 64-bit item ID treated as
/// `kIdBlocks` 16-bit source blocks (stored in uint64 lanes).
inline constexpr uint32_t kIdBlocks = 4;

std::vector<uint64_t> SplitId(uint64_t id);
uint64_t JoinId(const std::vector<uint64_t>& blocks);

}  // namespace ltc

#endif  // LTC_CODES_LT_CODE_H_
