// Fig. 14 — precision on finding significant items (§V-H), k=100,
// precision vs memory 25–300 KB on CAIDA / Network / Social, for the
// three parameter mixes α:β ∈ {1:10, 1:1, 10:1}. Baselines are the
// two-structure sketch combos (no prior art exists for this task).

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  const std::vector<size_t> memories = {25, 50, 100, 200, 300};
  const std::vector<std::pair<double, double>> mixes = {
      {1.0, 10.0}, {1.0, 1.0}, {10.0, 1.0}};

  const char* panels[] = {"(b) CAIDA", "(c) Network", "(d) Social"};
  auto datasets = LoadAllDatasets();
  for (size_t i = 0; i < datasets.size(); ++i) {
    for (auto [alpha, beta] : mixes) {
      auto factory = [&, alpha = alpha, beta = beta](size_t memory_bytes,
                                                     size_t k) {
        return SignificantSuite(memory_bytes, k, datasets[i].stream, alpha,
                                beta);
      };
      std::string mix = std::to_string(static_cast<int>(alpha)) + ":" +
                        std::to_string(static_cast<int>(beta));
      PrintFigure(std::string("Fig 14") + panels[i] +
                      ": precision vs memory, significant items (k=100, "
                      "a:b=" + mix + ")",
                  SweepMemory(datasets[i], memories, factory, 100, alpha,
                              beta, Metric::kPrecision));
    }
  }
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
