// Corruption sweep over EVERY serializable type: frame a populated
// instance, then try to load it with a single byte flipped at every
// offset and truncated at every length. The contract under test
// (docs/DURABILITY.md): each corrupted load is REJECTED with a typed
// error — never a crash, never a silently accepted wrong sketch. Run
// under asan in CI (the sanitize job runs the fuzz label), this is the
// memory-safety proof for the whole deserialization surface.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/ltc.h"
#include "core/sharded_ltc.h"
#include "core/windowed_ltc.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "snapshot/frame.h"
#include "snapshot/sketch_snapshot.h"
#include "store/page.h"
#include "store/wal.h"
#include "legacy_ltc_image.h"

namespace ltc {
namespace {

LtcConfig SmallConfig() {
  LtcConfig config;
  config.memory_bytes = 4 * 1024;  // small tables keep the sweep O(frame^2)
  return config;
}

// Flips one byte at every offset and truncates at every length; every
// variant must be rejected with a typed error. `decode` returns true
// when the bytes were ACCEPTED; accepting any corrupted frame (or
// crashing on one) fails the sweep. The clean frame must decode.
template <typename Decode>
void SweepFrame(const std::string& frame, const Decode& decode) {
  SnapshotError error = SnapshotError::kNone;
  ASSERT_TRUE(decode(frame, &error))
      << "clean frame rejected: " << SnapshotErrorName(error);

  for (size_t offset = 0; offset < frame.size(); ++offset) {
    std::string corrupt = frame;
    corrupt[offset] ^= 0x01;
    error = SnapshotError::kNone;
    EXPECT_FALSE(decode(corrupt, &error))
        << "accepted a frame with byte " << offset << " flipped";
    EXPECT_NE(error, SnapshotError::kNone) << "untyped rejection at byte "
                                           << offset;
  }
  for (size_t length = 0; length < frame.size(); ++length) {
    error = SnapshotError::kNone;
    EXPECT_FALSE(decode(frame.substr(0, length), &error))
        << "accepted a frame truncated to " << length << " bytes";
    EXPECT_NE(error, SnapshotError::kNone)
        << "untyped rejection at truncation " << length;
  }
}

template <typename Sketch>
bool DecodeOptional(const std::string& bytes, SnapshotError* error) {
  return DecodeSketchSnapshot<Sketch>(bytes, error).has_value();
}

TEST(SnapshotCorruption, Ltc) {
  Ltc table(SmallConfig());
  for (uint64_t i = 0; i < 2000; ++i) table.Insert(i % 97 + 1, 0.01 * i);
  SweepFrame(EncodeSketchSnapshot(table), DecodeOptional<Ltc>);
}

TEST(SnapshotCorruption, ShardedLtc) {
  ShardedLtc table(SmallConfig(), 3);
  for (uint64_t i = 0; i < 2000; ++i) table.Insert(i % 97 + 1, 0.01 * i);
  SweepFrame(EncodeSketchSnapshot(table), DecodeOptional<ShardedLtc>);
}

TEST(SnapshotCorruption, WindowedLtc) {
  LtcConfig config = SmallConfig();
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = 2.5;  // times below span 20s = 8 periods
  WindowedLtc table(config, /*window_periods=*/4);
  for (uint64_t i = 0; i < 2000; ++i) table.Insert(i % 97 + 1, 0.01 * i);
  SweepFrame(EncodeSketchSnapshot(table), DecodeOptional<WindowedLtc>);
}

TEST(SnapshotCorruption, BloomFilter) {
  BloomFilter filter(/*num_bits=*/1 << 12, /*num_hashes=*/4, /*seed=*/9);
  for (uint64_t i = 0; i < 500; ++i) filter.Add(i * 31 + 1);
  SweepFrame(EncodeSketchSnapshot(filter), DecodeOptional<BloomFilter>);
}

TEST(SnapshotCorruption, CountMinSketch) {
  CountMinSketch sketch(/*memory_bytes=*/4 * 1024, /*depth=*/3, /*seed=*/9);
  for (uint64_t i = 0; i < 500; ++i) sketch.Insert(i % 61 + 1);
  SweepFrame(EncodeSketchSnapshot(sketch),
             [](const std::string& bytes, SnapshotError* error) {
               return DecodeSketchSnapshotPtr<CounterMatrixSketch>(
                          bytes, error) != nullptr;
             });
}

TEST(SnapshotCorruption, CuSketch) {
  CuSketch sketch(/*memory_bytes=*/4 * 1024, /*depth=*/3, /*seed=*/9);
  for (uint64_t i = 0; i < 500; ++i) sketch.Insert(i % 61 + 1);
  SweepFrame(EncodeSketchSnapshot(sketch),
             [](const std::string& bytes, SnapshotError* error) {
               return DecodeSketchSnapshotPtr<CounterMatrixSketch>(
                          bytes, error) != nullptr;
             });
}

// The raw (unframed) deserializers must also reject corruption — the
// frame CRC is defense in depth, not the only line. Raw payload bytes
// with flips can legitimately decode (e.g. a flipped counter value is
// still a well-formed table), so here we only demand "no crash, and
// truncations never decode".
template <typename Sketch>
void SweepRawPayload(const std::string& payload) {
  for (size_t length = 0; length < payload.size(); ++length) {
    BinaryReader reader(std::string_view(payload).substr(0, length));
    auto sketch = Sketch::Deserialize(reader);
    EXPECT_FALSE(sketch.has_value() && reader.AtEnd())
        << "accepted a payload truncated to " << length << " bytes";
  }
  for (size_t offset = 0; offset < payload.size(); ++offset) {
    std::string corrupt = payload;
    corrupt[offset] ^= 0x01;
    BinaryReader reader(corrupt);
    (void)Sketch::Deserialize(reader);  // must not crash (asan-checked)
  }
}

TEST(SnapshotCorruption, RawLtcPayloadNeverCrashes) {
  Ltc table(SmallConfig());
  for (uint64_t i = 0; i < 1000; ++i) table.Insert(i % 53 + 1, 0.01 * i);
  BinaryWriter writer;
  table.Serialize(writer);
  SweepRawPayload<Ltc>(writer.data());
}

TEST(SnapshotCorruption, RawLegacyV2LtcPayloadNeverCrashes) {
  // The v2 (AoS) back-compat shim in Ltc::Deserialize must be exactly as
  // corruption-proof as the primary v3 (SoA lane-major) path: the clean
  // legacy image decodes, truncations never decode, flips never crash.
  Ltc table(SmallConfig());
  for (uint64_t i = 0; i < 1000; ++i) table.Insert(i % 53 + 1, 0.01 * i);
  BinaryWriter writer;
  table.Serialize(writer);
  std::string v2 = testing_internal::ReencodeLtcV3AsV2(writer.data());
  BinaryReader clean(v2);
  ASSERT_TRUE(Ltc::Deserialize(clean).has_value());
  SweepRawPayload<Ltc>(v2);
}

TEST(SnapshotCorruption, RawShardedPayloadNeverCrashes) {
  ShardedLtc table(SmallConfig(), 2);
  for (uint64_t i = 0; i < 1000; ++i) table.Insert(i % 53 + 1, 0.01 * i);
  BinaryWriter writer;
  table.Serialize(writer);
  SweepRawPayload<ShardedLtc>(writer.data());
}

// The paged store's on-disk envelopes get the identical sweep: a page
// image or a WAL record with any byte flipped or any tail cut off must
// be a typed rejection. For the WAL this is THE crash-safety contract —
// the log reader truncates at the first frame this decoder rejects, so
// "every corruption is caught" is what makes a torn tail indistinguishable
// from clean end-of-log (src/store/wal.h).

TEST(SnapshotCorruption, StorePageImage) {
  Ltc table(SmallConfig());
  for (uint64_t i = 0; i < 1000; ++i) table.Insert(i % 53 + 1, 0.01 * i);
  BinaryWriter writer;
  table.Serialize(writer);
  const auto pages = store::PageCodec::SplitPayload(
      writer.data(), table.num_cells(), /*page_bytes=*/4096);
  ASSERT_FALSE(pages.empty());
  SweepFrame(store::EncodePage(/*page_id=*/3, /*lsn=*/12, pages[0]),
             [](const std::string& bytes, SnapshotError* error) {
               const store::PageDecodeResult decoded =
                   store::DecodePage(bytes);
               *error = decoded.error;
               return decoded.ok();
             });
}

TEST(SnapshotCorruption, StoreWalRecord) {
  store::WalRecord record;
  record.lsn = 41;
  record.tenant = 6;
  record.pages.push_back({0, std::string(96, '\x2a')});
  record.pages.push_back({3, "short lane slice"});
  SweepFrame(store::EncodeWalRecord(record),
             [](const std::string& bytes, SnapshotError* error) {
               const store::WalDecodeResult decoded =
                   store::DecodeWalRecord(bytes);
               *error = decoded.error;
               return decoded.ok();
             });
}

}  // namespace
}  // namespace ltc
