#include "persistent/pie.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace ltc {

Pie::Pie(size_t memory_per_period, uint32_t num_periods, uint32_t num_hashes,
         uint64_t seed, IdCodeKind code_kind)
    : cells_per_period_(SpaceTimeBloomFilter::CellsForMemory(memory_per_period)),
      num_periods_(num_periods),
      num_hashes_(num_hashes),
      seed_(seed),
      code_(MakeIdCode(code_kind)) {
  assert(num_periods >= 1);
  filters_.resize(num_periods);
}

void Pie::Insert(ItemId item, uint32_t period) {
  assert(period < num_periods_);
  auto& filter = filters_[period];
  if (!filter) {
    filter = std::make_unique<SpaceTimeBloomFilter>(
        cells_per_period_, num_hashes_, period, code_.get(), seed_);
  }
  filter->Insert(item);
}

std::vector<Pie::Report> Pie::DecodeAll() const {
  // 1. Harvest singleton cells, grouped by item fingerprint.
  std::unordered_map<uint32_t, std::vector<LtCode::Symbol>> groups;
  for (const auto& filter : filters_) {
    if (!filter) continue;
    const auto& cells = filter->cells();
    for (size_t i = 0; i < cells.size(); ++i) {
      const auto& cell = cells[i];
      if (cell.state != SpaceTimeBloomFilter::CellState::kSingleton) continue;
      groups[cell.fingerprint].push_back(
          {SpaceTimeBloomFilter::SymbolSeed(i, filter->period(), seed_),
           cell.symbol});
    }
  }

  // 2. Peel-decode each group; keep IDs whose fingerprint checks out.
  std::vector<Report> reports;
  for (const auto& [fp, symbols] : groups) {
    if (symbols.size() < kIdBlocks) continue;  // cannot possibly decode
    auto id = code_->DecodeId(symbols);
    if (!id) continue;
    if (SpaceTimeBloomFilter::FingerprintOf(*id, seed_) != fp) continue;
    reports.push_back({*id, EstimatePersistency(*id)});
  }
  return reports;
}

std::vector<Pie::Report> Pie::TopK(size_t k) const {
  std::vector<Report> reports = DecodeAll();
  std::sort(reports.begin(), reports.end(),
            [](const Report& a, const Report& b) {
              if (a.persistency != b.persistency) {
                return a.persistency > b.persistency;
              }
              return a.item < b.item;
            });
  if (reports.size() > k) reports.resize(k);
  return reports;
}

uint32_t Pie::EstimatePersistency(ItemId item) const {
  uint32_t count = 0;
  for (const auto& filter : filters_) {
    if (filter && filter->MayContain(item)) ++count;
  }
  return count;
}

}  // namespace ltc
