// Self-healing ingest under injected failure: the supervisor's worker
// lease protocol (restart-on-death, hang retirement), stall-latch
// healing and the Healthy → Degraded → Stalled health machine, overload
// shedding accounting, and the seeded end-to-end chaos run that drives
// kills, hangs and I/O fault bursts against a live pipeline and then
// proves the recovered state against the sequential oracle.
//
// Everything here composes existing seams (KillWorkerForTest,
// HangWorkerForTest, FailpointFs) through the ChaosInjector; every run
// is a pure function of its seed.

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <filesystem>

#include "common/serial.h"
#include "core/sharded_ltc.h"
#include "ingest/ingest_pipeline.h"
#include "snapshot/failpoint_fs.h"
#include "snapshot/sketch_snapshot.h"
#include "snapshot/snapshot_store.h"
#include "stream/generators.h"
#include "telemetry/metrics.h"
#include "testing/chaos_injector.h"

namespace ltc {
namespace {

LtcConfig TimePaced(const Stream& stream, size_t memory) {
  LtcConfig config;
  config.memory_bytes = memory;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  return config;
}

std::string Bytes(const ShardedLtc& sharded) {
  BinaryWriter writer;
  sharded.Serialize(writer);
  return writer.data();
}

void ExpectSameTopK(const SignificanceEstimator& a,
                    const SignificanceEstimator& b, size_t k) {
  auto ra = a.TopK(k);
  auto rb = b.TopK(k);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].item, rb[i].item) << "rank " << i;
    EXPECT_EQ(ra[i].frequency, rb[i].frequency) << "rank " << i;
    EXPECT_EQ(ra[i].persistency, rb[i].persistency) << "rank " << i;
  }
}

/// Polls `condition` (yielding) until true or ~`timeout_ms` elapsed.
bool WaitUntil(const std::function<bool()>& condition,
               int timeout_ms = 30'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::yield();
  }
  return condition();
}

/// Fast supervisor for tests: ticks every 200us, declares a hang after
/// `hang_ticks` frozen ticks.
SupervisionConfig FastSupervision(uint64_t hang_ticks = 25) {
  SupervisionConfig supervision;
  supervision.interval_usec = 200;
#ifdef LTC_AUDIT
  // An audit build sweeps the whole table per insert, so a healthy
  // worker can show no progress for several milliseconds. Widen the
  // hang window so only a truly frozen worker (the hang seam) trips
  // it — retiring a live-but-slow worker would race its replacement.
  hang_ticks *= 50;
#endif
  supervision.hang_ticks = hang_ticks;
  return supervision;
}

// ------------------------------------------------------- worker death

TEST(ChaosSupervisor, RestartsDeadWorkerAndDrainsItsBacklog) {
  Stream stream = MakeZipfStream(20'000, 2'000, 1.0, 20, 211);
  LtcConfig config = TimePaced(stream, 16 * 1024);

  ShardedLtc sequential(config, 2);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);

  ShardedLtc piped(config, 2);
  IngestConfig ingest;
  ingest.supervision = FastSupervision();
  IngestPipeline pipeline(piped, ingest);

  // Kill both workers mid-stream, twice, while records keep flowing.
  std::span<const Record> records = stream.records();
  const size_t chunk = records.size() / 4;
  for (int part = 0; part < 4; ++part) {
    pipeline.PushBatch(records.subspan(part * chunk,
                                       part == 3 ? records.size() - 3 * chunk
                                                 : chunk));
    if (part < 2) {
      pipeline.KillWorkerForTest(0);
      pipeline.KillWorkerForTest(1);
      ASSERT_TRUE(WaitUntil([&] {
        return pipeline.WorkerRestarts() >= static_cast<uint64_t>(2 * (part + 1));
      })) << "supervisor never replaced the killed workers";
    }
  }
  EXPECT_TRUE(pipeline.Flush());
  pipeline.Stop();

  EXPECT_GE(pipeline.WorkerRestarts(), 4u);
  EXPECT_EQ(pipeline.TotalEnqueued(), stream.size());
  EXPECT_EQ(pipeline.TotalDropped(), 0u);
  // No record lost, none double-applied: bit-identical to sequential.
  EXPECT_EQ(Bytes(sequential), Bytes(piped));
  EXPECT_TRUE(piped.CheckInvariants());
}

TEST(ChaosSupervisor, DisabledSupervisionLeavesDeadWorkersDead) {
  ShardedLtc sink(TimePaced(MakeZipfStream(100, 50, 1.0, 2, 1), 8 * 1024), 1);
  IngestConfig ingest;
  ingest.supervision.enabled = false;
  ingest.stall_yield_limit = 2'000;
  IngestPipeline pipeline(sink, ingest);

  pipeline.KillWorkerForTest(0);
  // Give the worker a moment to exit, then queue records nobody drains.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::vector<Record> records;
  for (ItemId i = 1; i <= 100; ++i) records.push_back({i, 0.0});
  pipeline.PushBatch(records);

  EXPECT_FALSE(pipeline.Flush());  // bounded wait expires
  EXPECT_TRUE(pipeline.stalled());
  EXPECT_EQ(pipeline.health(), IngestHealth::kStalled);
  EXPECT_EQ(pipeline.WorkerRestarts(), 0u);

  // Stop() still applies every accepted record via its inline drain.
  pipeline.Stop();
  const auto stats = pipeline.ShardStatsOf(0);
  EXPECT_EQ(stats.drained, stats.enqueued);
}

// -------------------------------------------------------- worker hang

TEST(ChaosSupervisor, RetiresHungWorkerAndHandsRingToReplacement) {
  Stream stream = MakeZipfStream(10'000, 1'000, 1.0, 10, 223);
  LtcConfig config = TimePaced(stream, 16 * 1024);

  ShardedLtc sequential(config, 1);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);

  ShardedLtc piped(config, 1);
  IngestConfig ingest;
  ingest.ring_capacity = 1 << 14;
  ingest.supervision = FastSupervision(/*hang_ticks=*/10);
  IngestPipeline pipeline(piped, ingest);

  // Freeze generation 1 in the hang seam, then queue work behind it.
  std::span<const Record> records = stream.records();
  pipeline.HangWorkerForTest(0, true);
  pipeline.PushBatch(records.subspan(0, 4'000));
  ASSERT_TRUE(WaitUntil([&] { return pipeline.WorkerRestarts() >= 1; }))
      << "supervisor never retired the hung worker";

  // The replacement is the ring's sole consumer: it drains exactly the
  // backlog the hung generation left behind.
  pipeline.PushBatch(records.subspan(4'000));
  EXPECT_TRUE(pipeline.Flush());
  EXPECT_EQ(pipeline.TotalDropped(), 0u);

  // Releasing the zombie after retirement is harmless: its lease is
  // gone, so it exits without touching the ring.
  pipeline.HangWorkerForTest(0, false);
  pipeline.Stop();
  EXPECT_EQ(Bytes(sequential), Bytes(piped));
  EXPECT_TRUE(piped.CheckInvariants());
}

// ------------------------------------------- stall latch + health machine

TEST(ChaosSupervisor, StallLatchHealsOnceBacklogDrains) {
  ShardedLtc sink(TimePaced(MakeZipfStream(100, 50, 1.0, 2, 1), 8 * 1024), 1);
  IngestConfig ingest;
  ingest.ring_capacity = 64;
  ingest.stall_yield_limit = 2'000;  // latch fast
  ingest.supervision = FastSupervision(/*hang_ticks=*/25);
  IngestPipeline pipeline(sink, ingest);
  EXPECT_EQ(pipeline.health(), IngestHealth::kHealthy);

  // Hang the worker, then push more than the ring holds: the bounded
  // kBlock spin expires long before hang detection, so the stall
  // latches and the overflow is dropped (accounted, not lost silently).
  pipeline.HangWorkerForTest(0, true);
  std::vector<Record> records;
  for (ItemId i = 1; i <= 1'000; ++i) records.push_back({i, 0.0});
  pipeline.PushBatch(records);
  EXPECT_TRUE(pipeline.stalled());
  EXPECT_EQ(pipeline.health(), IngestHealth::kStalled);
  EXPECT_GT(pipeline.TotalDropped(), 0u);
  EXPECT_EQ(pipeline.TotalEnqueued() + pipeline.TotalDropped(),
            records.size());

  // The supervisor retires the hung generation, the replacement drains
  // the ring, and the latch clears: a stall is an incident, not a
  // permanent condition.
  ASSERT_TRUE(WaitUntil([&] { return !pipeline.stalled(); }))
      << "stall latch never healed";
  EXPECT_GE(pipeline.WorkerRestarts(), 1u);
  ASSERT_TRUE(WaitUntil(
      [&] { return pipeline.health() == IngestHealth::kHealthy; }))
      << "health never returned to healthy; health="
      << IngestHealthName(pipeline.health());

  // Post-heal the pipeline is fully usable: new pushes flush cleanly.
  pipeline.PushBatch({records.data(), 10});
  EXPECT_TRUE(pipeline.Flush());
  pipeline.HangWorkerForTest(0, false);
  pipeline.Stop();
  const auto stats = pipeline.ShardStatsOf(0);
  EXPECT_EQ(stats.drained, stats.enqueued);
}

// --------------------------------------------------- overload shedding

TEST(ChaosShedding, ActivatesUnderSustainedPressureAndRecovers) {
  ShardedLtc sink(TimePaced(MakeZipfStream(100, 50, 1.0, 2, 1), 8 * 1024), 1);
  IngestConfig ingest;
  ingest.ring_capacity = 64;
  ingest.shed.enabled = true;
  ingest.shed.high_watermark = 0.75;  // 48 of 64
  ingest.shed.low_watermark = 0.25;   // 16 of 64
  ingest.shed.sustain = 2;
  ingest.shed.admit_one_in = 4;
  IngestPipeline pipeline(sink, ingest);
  pipeline.SuspendWorkersForTest(true);  // paused-but-alive: no restarts

  const Record record{7, 0.0};
  std::vector<Record> fill(60, record);
  pipeline.PushBatch(fill);  // depth 60, observed pre-push depth was 0
  EXPECT_FALSE(pipeline.ShardStatsOf(0).shedding);

  // Two more pushes observe depth >= high watermark: shedding starts on
  // the second (sustain = 2), which is itself admitted probabilistically.
  uint64_t pushed = 60;
  while (!pipeline.ShardStatsOf(0).shedding) {
    pipeline.Push(record.item, record.time);
    ++pushed;
    ASSERT_LT(pushed, 70u) << "shedding never engaged";
  }
  EXPECT_EQ(pipeline.health(), IngestHealth::kDegraded);
  EXPECT_FALSE(pipeline.stalled());  // shedding is not a stall

  // While shedding, the producer never blocks and every record is
  // accounted: admitted (1 in 4, ring permitting) or counted shed.
  for (int i = 0; i < 40; ++i) {
    pipeline.Push(record.item, record.time);
    ++pushed;
  }
  EXPECT_GT(pipeline.TotalShed(), 0u);
  EXPECT_EQ(pipeline.TotalEnqueued() + pipeline.TotalDropped() +
                pipeline.TotalShed(),
            pushed);

  // Revive the workers; once the queue drains below the low watermark
  // for `sustain` observations, full admission returns.
  pipeline.SuspendWorkersForTest(false);
  ASSERT_TRUE(WaitUntil([&] {
    const auto stats = pipeline.ShardStatsOf(0);
    return stats.drained == stats.enqueued;
  }));
  while (pipeline.ShardStatsOf(0).shedding) {
    pipeline.Push(record.item, record.time);
    ++pushed;
    ASSERT_TRUE(WaitUntil([&] {
      const auto stats = pipeline.ShardStatsOf(0);
      return stats.drained == stats.enqueued;
    }));
  }
  EXPECT_EQ(pipeline.health(), IngestHealth::kHealthy);

  // Post-recovery pushes take the normal lossless path again.
  const uint64_t shed_before = pipeline.TotalShed();
  pipeline.Push(record.item, record.time);
  ++pushed;
  EXPECT_EQ(pipeline.TotalShed(), shed_before);
  EXPECT_TRUE(pipeline.Flush());
  pipeline.Stop();
  EXPECT_EQ(pipeline.TotalEnqueued() + pipeline.TotalDropped() +
                pipeline.TotalShed(),
            pushed);
}

TEST(ChaosShedding, MetricsExposeShedStateAndHealth) {
  ShardedLtc sink(TimePaced(MakeZipfStream(100, 50, 1.0, 2, 1), 8 * 1024), 1);
  IngestConfig ingest;
  ingest.ring_capacity = 64;
  ingest.shed.enabled = true;
  ingest.shed.sustain = 1;
  ingest.shed.high_watermark = 0.5;
  IngestPipeline pipeline(sink, ingest);
  telemetry::MetricsRegistry registry;
  pipeline.AttachMetrics(&registry);
  pipeline.SuspendWorkersForTest(true);

  const Record record{3, 0.0};
  std::vector<Record> fill(48, record);
  pipeline.PushBatch(fill);
  while (!pipeline.ShardStatsOf(0).shedding) pipeline.Push(record.item);
  for (int i = 0; i < 10; ++i) pipeline.Push(record.item);
  pipeline.SampleMetrics();

  const telemetry::Labels shard0{{"shard", "0"}};
  EXPECT_GT(registry.CounterOf("ltc_ingest_shed_records_total", "", shard0)
                .Value(),
            0u);
  EXPECT_EQ(registry.GaugeOf("ltc_ingest_shed_active", "", shard0).Value(),
            1.0);
  EXPECT_EQ(registry.GaugeOf("ltc_ingest_health_state", "").Value(),
            static_cast<double>(IngestHealth::kDegraded));
  pipeline.SuspendWorkersForTest(false);
  pipeline.Stop();
}

// ------------------------------------------------- end-to-end chaos run

// The acceptance run: a seeded ChaosInjector kills workers, hangs
// workers and arms I/O fault bursts while a real stream feeds through
// the pipeline with periodic checkpoints. Afterwards the pipeline must
// have healed itself (Healthy, stall latch clear), the final checkpoint
// must succeed through the backoff stack, and both the live sink and
// the recovered snapshot must match the sequential oracle exactly.
TEST(ChaosEndToEnd, SelfHealsAndMatchesSequentialOracle) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "chaos_e2e";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Stream stream = MakeZipfStream(30'000, 2'000, 1.1, 30, 229);
  LtcConfig config = TimePaced(stream, 16 * 1024);

  ShardedLtc sequential(config, 4);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);

  ShardedLtc piped(config, 4);
  IngestConfig ingest;
  ingest.ring_capacity = 1 << 12;
  ingest.supervision = FastSupervision(/*hang_ticks=*/25);
  // Generous checkpoint retries: mid-chaos attempts may meet a hang
  // (stalled flush) or an armed I/O burst; backoff outlasts both.
  ingest.checkpoint_retry.max_attempts = 5;
  ingest.checkpoint_retry.initial_delay_usec = 2'000;
  ingest.checkpoint_retry.max_delay_usec = 20'000;
  IngestPipeline pipeline(piped, ingest);
  telemetry::MetricsRegistry registry;
  pipeline.AttachMetrics(&registry);

  FailpointFs fs(SystemFs());
  SnapshotStoreConfig store_config;
  store_config.retry.max_attempts = 3;
  store_config.retry.initial_delay_usec = 1'000;
  SnapshotStore store((dir / "state").string(), store_config, &fs);
  pipeline.AttachSnapshotStore(&store);

  ChaosConfig chaos_config;
  chaos_config.kill_probability = 0.15;
  chaos_config.hang_probability = 0.10;
  chaos_config.io_fault_probability = 0.30;
  chaos_config.hang_release_steps = 3;
  chaos_config.seed = 233;
  ChaosInjector chaos(pipeline, chaos_config, &fs);

  std::span<const Record> records = stream.records();
  const size_t chunk = 500;
  size_t step = 0;
  for (size_t off = 0; off < records.size(); off += chunk, ++step) {
    pipeline.PushBatch(records.subspan(off, std::min(chunk,
                                                     records.size() - off)));
    chaos.Step();
    if (step % 8 == 7) {
      pipeline.Checkpoint();  // best-effort mid-chaos; failures counted
    }
  }
  EXPECT_GT(chaos.kills_injected() + chaos.hangs_injected(), 0u)
      << "seed injected no worker faults; the run proves nothing";

  // Let the wounds close: hangs released, dead workers replaced,
  // backlogs drained, stall latch cleared, cooldowns expired.
  chaos.ReleaseAll();
  ASSERT_TRUE(WaitUntil([&] {
    return !pipeline.stalled() &&
           pipeline.health() == IngestHealth::kHealthy;
  })) << "pipeline never healed; health="
      << IngestHealthName(pipeline.health());

  // The final checkpoint must land, through retries if need be.
  fs.Arm(FailpointFs::Failure::kWriteError, fs.mutating_ops(), 0,
         /*burst=*/1);  // one last transient fault for the backoff stack
  std::string error;
  ASSERT_TRUE(pipeline.Checkpoint(&error)) << error;
  EXPECT_GE(pipeline.CheckpointsTaken(), 1u);
  ASSERT_TRUE(pipeline.Flush());
  pipeline.SampleMetrics();
  pipeline.Stop();

  // Self-healing was exercised and is visible in the counters.
  EXPECT_GE(pipeline.WorkerRestarts(), 1u);
  EXPECT_EQ(registry.GaugeOf("ltc_ingest_health_state", "").Value(),
            static_cast<double>(IngestHealth::kHealthy));

  // Nothing lost, nothing double-applied, despite every injected fault:
  // the live sink is bit-identical to the sequential oracle.
  EXPECT_EQ(pipeline.TotalEnqueued(), stream.size());
  EXPECT_EQ(pipeline.TotalDropped(), 0u);
  EXPECT_EQ(Bytes(sequential), Bytes(piped));
  EXPECT_TRUE(piped.CheckInvariants());

  // And the checkpoint on disk recovers to the same answer.
  const auto recovered = store.LoadLatest(&error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(recovered->payload, Bytes(sequential));
  SnapshotError decode_error = SnapshotError::kNone;
  auto restored = DecodeSketchSnapshot<ShardedLtc>(
      EncodeFrame(recovered->payload), &decode_error);
  ASSERT_TRUE(restored.has_value()) << SnapshotErrorName(decode_error);
  restored->Finalize();
  sequential.Finalize();
  ExpectSameTopK(*restored, sequential, 50);

  std::filesystem::remove_all(dir);
}

// Checkpoint stall errors name the stalled shard and its queue depth —
// the on-call operator's first question, answered in the message.
TEST(ChaosCheckpoint, StallErrorNamesShardAndQueueDepth) {
  ShardedLtc sink(TimePaced(MakeZipfStream(100, 50, 1.0, 2, 1), 8 * 1024), 2);
  IngestConfig ingest;
  ingest.ring_capacity = 64;
  ingest.stall_yield_limit = 2'000;
  ingest.supervision.enabled = false;  // keep the stall latched
  IngestPipeline pipeline(sink, ingest);

  const auto dir = std::filesystem::path(::testing::TempDir()) / "chaos_msg";
  std::filesystem::create_directories(dir);
  SnapshotStore store((dir / "ck").string());
  pipeline.AttachSnapshotStore(&store);

  pipeline.KillWorkerForTest(0);
  pipeline.KillWorkerForTest(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::vector<Record> records;
  for (ItemId i = 1; i <= 500; ++i) records.push_back({i, 0.0});
  pipeline.PushBatch(records);

  std::string error;
  EXPECT_FALSE(pipeline.Checkpoint(&error));
  EXPECT_NE(error.find("stalled"), std::string::npos) << error;
  EXPECT_NE(error.find("shard "), std::string::npos) << error;
  EXPECT_NE(error.find("queue_depth "), std::string::npos) << error;
  EXPECT_NE(error.find("drained "), std::string::npos) << error;
  pipeline.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ltc
