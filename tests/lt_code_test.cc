// Unit and property tests for the LT fountain code.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "codes/lt_code.h"
#include "common/rng.h"

namespace ltc {
namespace {

TEST(LtCode, DegreeDistributionIsNormalized) {
  for (uint32_t k : {1u, 2u, 4u, 16u, 64u}) {
    LtCode code(k);
    double total = 0;
    for (uint32_t d = 1; d <= k; ++d) total += code.DegreeProbability(d);
    EXPECT_NEAR(total, 1.0, 1e-9) << "k=" << k;
  }
}

TEST(LtCode, NeighboursAreDeterministicDistinctSorted) {
  LtCode code(8);
  for (uint64_t seed = 0; seed < 500; ++seed) {
    auto a = code.NeighboursOf(seed);
    auto b = code.NeighboursOf(seed);
    ASSERT_EQ(a, b);
    ASSERT_GE(a.size(), 1u);
    ASSERT_LE(a.size(), 8u);
    std::set<uint32_t> unique(a.begin(), a.end());
    ASSERT_EQ(unique.size(), a.size());
    ASSERT_TRUE(std::is_sorted(a.begin(), a.end()));
    for (uint32_t idx : a) ASSERT_LT(idx, 8u);
  }
}

TEST(LtCode, SampledDegreesMatchDistribution) {
  constexpr uint32_t kK = 16;
  LtCode code(kK);
  std::vector<int> counts(kK + 1, 0);
  constexpr int kSamples = 100'000;
  for (uint64_t seed = 0; seed < kSamples; ++seed) {
    ++counts[code.NeighboursOf(seed).size()];
  }
  for (uint32_t d = 1; d <= kK; ++d) {
    double expected = code.DegreeProbability(d) * kSamples;
    if (expected < 50) continue;  // skip statistically thin bins
    EXPECT_NEAR(counts[d], expected, 5 * std::sqrt(expected) + 20)
        << "degree " << d;
  }
}

TEST(LtCode, RoundTripWithAmpleSymbols) {
  constexpr uint32_t kK = 4;
  LtCode code(kK);
  std::vector<uint64_t> blocks = {0xAAAA, 0x1234, 0xF00D, 0x0042};
  Rng rng(1);
  int successes = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<LtCode::Symbol> symbols;
    for (int s = 0; s < 12; ++s) {  // 3× overhead
      uint64_t seed = rng.Next();
      symbols.push_back({seed, code.Encode(blocks, seed)});
    }
    auto decoded = code.Decode(symbols);
    if (decoded) {
      EXPECT_EQ(*decoded, blocks);
      ++successes;
    }
  }
  // With 3× symbols on K=4 the peeling decoder succeeds almost always.
  EXPECT_GT(successes, kTrials * 9 / 10);
}

TEST(LtCode, FailsCleanlyWithTooFewSymbols) {
  LtCode code(4);
  std::vector<uint64_t> blocks = {1, 2, 3, 4};
  // A single symbol can never determine 4 blocks.
  std::vector<LtCode::Symbol> one = {{7, code.Encode(blocks, 7)}};
  EXPECT_FALSE(code.Decode(one).has_value());
  EXPECT_FALSE(code.Decode({}).has_value());
}

TEST(LtCode, LargerBlockCountsStillDecode) {
  constexpr uint32_t kK = 32;
  LtCode code(kK);
  Rng rng(3);
  std::vector<uint64_t> blocks;
  for (uint32_t i = 0; i < kK; ++i) blocks.push_back(rng.Next());

  std::vector<LtCode::Symbol> symbols;
  for (int s = 0; s < 3 * 32; ++s) {
    uint64_t seed = rng.Next();
    symbols.push_back({seed, code.Encode(blocks, seed)});
  }
  auto decoded = code.Decode(symbols);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, blocks);
}

TEST(LtCode, DecodeIgnoresRedundantSymbols) {
  LtCode code(4);
  std::vector<uint64_t> blocks = {10, 20, 30, 40};
  std::vector<LtCode::Symbol> symbols;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    symbols.push_back({seed, code.Encode(blocks, seed)});
    symbols.push_back({seed, code.Encode(blocks, seed)});  // duplicate
  }
  auto decoded = code.Decode(symbols);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, blocks);
}

TEST(LtCode, SingleBlockDegenerate) {
  LtCode code(1);
  std::vector<uint64_t> blocks = {0xbeef};
  std::vector<LtCode::Symbol> symbols = {{5, code.Encode(blocks, 5)}};
  auto decoded = code.Decode(symbols);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ((*decoded)[0], 0xbeefULL);
}

TEST(IdBlocks, SplitJoinRoundTrip) {
  for (uint64_t id : {0ULL, 1ULL, 0xdeadbeefcafebabeULL, ~0ULL}) {
    EXPECT_EQ(JoinId(SplitId(id)), id);
  }
  auto blocks = SplitId(0x0123456789abcdefULL);
  ASSERT_EQ(blocks.size(), kIdBlocks);
  EXPECT_EQ(blocks[0], 0xcdefULL);
  EXPECT_EQ(blocks[3], 0x0123ULL);
}

// Property sweep: round trip across block counts and overheads.
class LtCodeRoundTrip
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>> {};

TEST_P(LtCodeRoundTrip, DecodesWithOverhead) {
  auto [k, overhead_pct] = GetParam();
  LtCode code(k);
  Rng rng(k * 1000 + overhead_pct);
  std::vector<uint64_t> blocks;
  for (uint32_t i = 0; i < k; ++i) blocks.push_back(rng.Next() & 0xffff);

  int successes = 0;
  constexpr int kTrials = 50;
  int num_symbols = static_cast<int>(k) * (100 + overhead_pct) / 100;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<LtCode::Symbol> symbols;
    for (int s = 0; s < num_symbols; ++s) {
      uint64_t seed = rng.Next();
      symbols.push_back({seed, code.Encode(blocks, seed)});
    }
    auto decoded = code.Decode(symbols);
    if (decoded && *decoded == blocks) ++successes;
  }
  // At 200% overhead decoding should be the common case for all K here;
  // the sweep documents the threshold behaviour rather than exact rates.
  if (overhead_pct >= 200) {
    EXPECT_GT(successes, kTrials / 2) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LtCodeRoundTrip,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u),
                       ::testing::Values(50, 100, 200, 300)));

}  // namespace
}  // namespace ltc
