#!/usr/bin/env bash
# Crash-recovery end-to-end proof: SIGKILL ltc_cli mid-checkpoint and
# show that --load recovers a valid snapshot and finishes the job.
#
# usage: crash_recovery.sh <ltc_gen> <ltc_cli> <work_dir>
#
# The unit-level version of this proof is the FailpointFs kill-point
# sweep in tests/snapshot_store_test.cc (deterministic, every op
# index); this script is the belt-and-braces real-process variant: an
# actual kill -9 at several points in wall-clock time, against the
# real filesystem, across the single-table and --threads ingestion
# paths and the --store paged-store mode (whose unit-level sweep is
# tests/store_crash_test.cc).
set -u

fail() { echo "crash_recovery: FAIL: $*" >&2; exit 1; }

# Absolutize the binaries before the cd into the work dir so relative
# paths (./build/tools/ltc_gen) keep working.
GEN="$(readlink -f "$1")" || fail "cannot resolve $1"
CLI="$(readlink -f "$2")" || fail "cannot resolve $2"
WORK="$3"

mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot cd $WORK"
rm -f trace.txt ck.bin ck.bin.*.snap out.csv

"$GEN" --dataset zipf --records 400000 --periods 40 --seed 42 trace.txt \
  || fail "ltc_gen"

run_one() {
  local threads_flag="$1" kill_after="$2" label="$3"
  rm -f ck.bin ck.bin.*.snap

  # Start a checkpointing run and SIGKILL it after a delay chosen to
  # land mid-stream. A tiny cadence maximizes the odds of killing
  # inside a checkpoint write.
  # shellcheck disable=SC2086
  "$CLI" $threads_flag --save ck.bin --checkpoint-every 5000 \
    --csv trace.txt > /dev/null 2> /dev/null &
  local pid=$!
  sleep "$kill_after"
  if kill -9 "$pid" 2> /dev/null; then
    wait "$pid" 2> /dev/null
    echo "crash_recovery: [$label] killed pid $pid after ${kill_after}s"
  else
    # The run finished before the kill — still a valid recovery input
    # (the final --save is the newest state).
    wait "$pid" 2> /dev/null
    echo "crash_recovery: [$label] run finished before the kill"
  fi

  # A kill between 'rotation exists' and 'final save' may leave only
  # snapshots, only ck.bin, or both. If NOTHING was persisted yet
  # (killed before the first checkpoint), recovery legitimately has
  # nothing to load — retry is the operator's move; for the test we
  # only demand that the load then fails CLEANLY (no crash).
  if [ -e ck.bin ] || ls ck.bin.*.snap > /dev/null 2>&1; then
    # shellcheck disable=SC2086
    "$CLI" $threads_flag --load ck.bin --csv trace.txt > out.csv \
      2> recover.err || fail "[$label] recovery run failed: $(cat recover.err)"
    [ -s out.csv ] || fail "[$label] recovery produced no output"
    head -1 out.csv | grep -q "item,frequency" \
      || fail "[$label] recovery output malformed"
    echo "crash_recovery: [$label] recovered OK"
  else
    # shellcheck disable=SC2086
    if "$CLI" $threads_flag --load ck.bin --csv trace.txt \
        > /dev/null 2> /dev/null; then
      fail "[$label] load succeeded with no snapshot on disk"
    fi
    echo "crash_recovery: [$label] nothing persisted before kill;" \
         "load failed cleanly"
  fi

  # Leftover temp files from the kill are allowed (the atomic-write
  # contract only protects final names) but final names must never be
  # temp-suffixed garbage we then loaded.
  rm -f ck.bin.tmp ck.bin.*.snap.tmp
}

# Several kill points across both feeding paths.
for delay in 0.05 0.15 0.3; do
  run_one ""           "$delay" "single-t${delay}"
  run_one "--threads 2" "$delay" "sharded-t${delay}"
done

# ---- Paged store mode (docs/DURABILITY.md "Paged store, WAL, and
# incremental checkpoints"). The unit-level version of this proof is
# the kill-at-EVERY-op FailpointFs sweep in tests/store_crash_test.cc;
# here the same contract is exercised with real SIGKILLs: once
# mid-feed (landing in WAL appends and, thanks to a pool budget far
# below total sketch bytes, in budget-pressure eviction write-backs),
# once immediately after a reopen so the kill lands during WAL replay
# itself, then a clean reopen must recover and finish the job.
store_one() {
  local kill_after="$1" label="$2"
  rm -rf store store_out.csv store_recover.err
  local flags="--store store --tenants 4 --mem-budget 16K"

  # shellcheck disable=SC2086
  "$CLI" $flags --csv trace.txt > /dev/null 2> /dev/null &
  local pid=$!
  sleep "$kill_after"
  if kill -9 "$pid" 2> /dev/null; then
    wait "$pid" 2> /dev/null
    echo "crash_recovery: [$label] killed store feed pid $pid" \
         "after ${kill_after}s"
  else
    wait "$pid" 2> /dev/null
    echo "crash_recovery: [$label] store run finished before the kill"
  fi

  # Second kill, almost at t=0: if the first kill left a WAL behind,
  # this process dies during (or right after) its replay. Recovery is
  # redo-only and LSN-gated, so an interrupted replay must simply
  # replay again on the next open.
  # shellcheck disable=SC2086
  "$CLI" $flags --csv trace.txt > /dev/null 2> /dev/null &
  pid=$!
  sleep 0.02
  kill -9 "$pid" 2> /dev/null
  wait "$pid" 2> /dev/null

  # The clean reopen: replay whatever is left, restore the surviving
  # tenants, feed the whole trace again on top, report per tenant.
  # shellcheck disable=SC2086
  "$CLI" $flags --csv trace.txt > store_out.csv 2> store_recover.err \
    || fail "[$label] store recovery run failed: $(cat store_recover.err)"
  [ -s store_out.csv ] || fail "[$label] store recovery produced no output"
  head -1 store_out.csv | grep -q "tenant,item" \
    || fail "[$label] store recovery output malformed"
  echo "crash_recovery: [$label] store recovered OK"
}

for delay in 0.05 0.15 0.3; do
  store_one "$delay" "store-t${delay}"
done

# Determinism anchor: an uninterrupted run and a run restored from its
# own final checkpoint agree on the report.
rm -f ck.bin ck.bin.*.snap
"$CLI" --save ck.bin --csv trace.txt > full.csv 2> /dev/null \
  || fail "clean run"
"$CLI" --load ck.bin --csv trace.txt > /dev/null 2> /dev/null \
  || fail "clean reload"

echo "crash_recovery: PASS"
