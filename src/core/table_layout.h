// Structure-of-arrays storage for the lossy table, behind a cell-access
// API that keeps every caller off the raw lanes.
//
// The paper's per-insert cost is dominated by comparing an arriving ID
// against the d cells of its routed bucket (§III-B Cases 1–3). With the
// former array-of-structs layout (one 17-byte logical Cell per slot) that
// probe walked a strided pointer chain; here each field lives in its own
// contiguous lane, bucket-major:
//
//   ids:      [b0c0 b0c1 .. b0c(d-1) | b1c0 ..]   8 B per cell
//   freqs:    [        same order         ]        4 B
//   counters: [        same order         ]        4 B
//   flags:    [        same order         ]        1 B
//
// so a bucket's d IDs are one dense 8·d-byte run and the probe becomes a
// handful of vector compares (SSE2/AVX2, runtime-dispatched, scalar
// fallback). Callers never index the lanes directly: TableLayout hands
// out BucketView / CellRef accessors, and Ltc's serialization, audit,
// merge, clone and CLOCK sweep all go through them — the lane layout is
// a private detail that can change again without touching ltc.cc's
// logic.
//
// Probe semantics (identical across every backend, pinned by
// tests/table_layout_test.cc): `match` is the LOWEST cell index whose ID
// equals the key, `empty` the LOWEST index whose ID is zero; -1 when
// absent. ID zero is the reserved empty marker (core/ltc.h), so a pure
// ID compare is exact — Ltc's structural invariant forces id==0 cells to
// be fully zeroed, making "id == 0" and "IsEmpty" the same predicate on
// every reachable table state.

#ifndef LTC_CORE_TABLE_LAYOUT_H_
#define LTC_CORE_TABLE_LAYOUT_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stream/stream.h"

namespace ltc {

/// Which implementation services bucket probes. Resolution order:
/// LTC_PROBE env override (scalar|sse2|avx2), else the best the CPU
/// supports, else scalar. An unsupported request silently degrades to
/// the best supported backend so a stale env var can never crash.
enum class ProbeBackend : uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Human-readable backend name ("scalar" / "sse2" / "avx2"), used by the
/// BENCH_*.json perf-trajectory header (docs/PERF.md).
const char* ProbeBackendName(ProbeBackend backend);

/// The most capable backend this CPU can run.
ProbeBackend BestSupportedProbeBackend();

/// The backend probes currently dispatch to (resolved on first use).
ProbeBackend ActiveProbeBackend();

/// Forces the dispatch to `backend` if supported (bench A/B runs, the
/// layout-equivalence test); returns the backend actually active after
/// the call. Not thread-safe against in-flight probes on other threads;
/// switch only while tables are quiescent.
ProbeBackend SetProbeBackend(ProbeBackend backend);

/// Result of probing one bucket for a key: lowest matching cell index
/// and lowest empty (id==0) cell index, -1 each when absent.
struct BucketProbe {
  int32_t match = -1;
  int32_t empty = -1;
};

namespace internal {
/// Raw probe entry point, exported for the layout-equivalence test
/// (which pins every backend against the scalar reference). `ids` is a
/// bucket's contiguous ID lane of `d` entries.
BucketProbe ProbeIds(const uint64_t* ids, uint32_t d, uint64_t key,
                     ProbeBackend backend);
}  // namespace internal

/// Read-only view of one cell: four lane pointers, no layout arithmetic
/// at the call site.
class ConstCellRef {
 public:
  ConstCellRef(const uint64_t* id, const uint32_t* freq,
               const uint32_t* counter, const uint8_t* flags)
      : id_(id), freq_(freq), counter_(counter), flags_(flags) {}

  uint64_t id() const { return *id_; }
  uint32_t freq() const { return *freq_; }
  uint32_t counter() const { return *counter_; }
  uint8_t flags() const { return *flags_; }

 private:
  const uint64_t* id_;
  const uint32_t* freq_;
  const uint32_t* counter_;
  const uint8_t* flags_;
};

/// Mutable view of one cell. Cheap to copy (it is the SoA replacement
/// for `Cell&`); converts implicitly to ConstCellRef like T* -> const T*.
class CellRef {
 public:
  CellRef(uint64_t* id, uint32_t* freq, uint32_t* counter, uint8_t* flags)
      : id_(id), freq_(freq), counter_(counter), flags_(flags) {}

  uint64_t id() const { return *id_; }
  uint32_t freq() const { return *freq_; }
  uint32_t counter() const { return *counter_; }
  uint8_t flags() const { return *flags_; }

  void set_id(uint64_t v) { *id_ = v; }
  void set_freq(uint32_t v) { *freq_ = v; }
  void set_counter(uint32_t v) { *counter_ = v; }
  void set_flags(uint8_t v) { *flags_ = v; }

  /// Resets the cell to the canonical empty state (all lanes zero).
  void Clear() {
    *id_ = 0;
    *freq_ = 0;
    *counter_ = 0;
    *flags_ = 0;
  }

  // NOLINTNEXTLINE(google-explicit-constructor): mirrors T* -> const T*.
  operator ConstCellRef() const { return {id_, freq_, counter_, flags_}; }

 private:
  uint64_t* id_;
  uint32_t* freq_;
  uint32_t* counter_;
  uint8_t* flags_;
};

/// Read-only view of one bucket: the lane segments of its d cells.
class ConstBucketView {
 public:
  ConstBucketView(const uint64_t* ids, const uint32_t* freqs,
                  const uint32_t* counters, const uint8_t* flags, uint32_t d)
      : ids_(ids), freqs_(freqs), counters_(counters), flags_(flags), d_(d) {}

  uint32_t size() const { return d_; }

  ConstCellRef cell(uint32_t i) const {
    assert(i < d_);
    return {ids_ + i, freqs_ + i, counters_ + i, flags_ + i};
  }

  /// The vectorized bucket probe: one compare of `key` (and the empty
  /// marker 0) against the whole ID lane.
  BucketProbe Probe(ItemId key) const;

 private:
  const uint64_t* ids_;
  const uint32_t* freqs_;
  const uint32_t* counters_;
  const uint8_t* flags_;
  uint32_t d_;
};

/// Mutable view of one bucket.
class BucketView {
 public:
  BucketView(uint64_t* ids, uint32_t* freqs, uint32_t* counters,
             uint8_t* flags, uint32_t d)
      : ids_(ids), freqs_(freqs), counters_(counters), flags_(flags), d_(d) {}

  uint32_t size() const { return d_; }

  CellRef cell(uint32_t i) const {
    assert(i < d_);
    return {ids_ + i, freqs_ + i, counters_ + i, flags_ + i};
  }

  BucketProbe Probe(ItemId key) const { return AsConst().Probe(key); }

  ConstBucketView AsConst() const {
    return {ids_, freqs_, counters_, flags_, d_};
  }

  operator ConstBucketView() const { return AsConst(); }  // NOLINT

 private:
  uint64_t* ids_;
  uint32_t* freqs_;
  uint32_t* counters_;
  uint8_t* flags_;
  uint32_t d_;
};

/// The SoA cell store: w buckets × d cells, one lane per field.
class TableLayout {
 public:
  TableLayout() = default;
  TableLayout(uint32_t num_buckets, uint32_t cells_per_bucket)
      : num_buckets_(num_buckets), cells_per_bucket_(cells_per_bucket) {
    const size_t m =
        static_cast<size_t>(num_buckets) * cells_per_bucket;
    ids_.assign(m, 0);
    freqs_.assign(m, 0);
    counters_.assign(m, 0);
    flags_.assign(m, 0);
  }

  uint32_t num_buckets() const { return num_buckets_; }
  uint32_t cells_per_bucket() const { return cells_per_bucket_; }
  size_t num_cells() const { return ids_.size(); }

  BucketView bucket(uint32_t b) {
    const size_t base = BaseOf(b);
    return {ids_.data() + base, freqs_.data() + base,
            counters_.data() + base, flags_.data() + base,
            cells_per_bucket_};
  }
  ConstBucketView bucket(uint32_t b) const {
    const size_t base = BaseOf(b);
    return {ids_.data() + base, freqs_.data() + base,
            counters_.data() + base, flags_.data() + base,
            cells_per_bucket_};
  }

  /// Flat cell access for the CLOCK sweep and whole-table walks; index
  /// order matches bucket-major cell order (bucket b's cells occupy
  /// indices [b·d, (b+1)·d)).
  CellRef cell(size_t index) {
    assert(index < ids_.size());
    return {ids_.data() + index, freqs_.data() + index,
            counters_.data() + index, flags_.data() + index};
  }
  ConstCellRef cell(size_t index) const {
    assert(index < ids_.size());
    return {ids_.data() + index, freqs_.data() + index,
            counters_.data() + index, flags_.data() + index};
  }

  /// Software-prefetches bucket b's ID lane (the probe's first touch)
  /// and counter lanes. InsertBatch calls this a few records ahead —
  /// the batch already knows the upcoming hashes, so the routed bucket
  /// is warm by the time its probe issues.
  void PrefetchBucket(uint32_t b) const {
#if defined(__GNUC__) || defined(__clang__)
    const size_t base = BaseOf(b);
    __builtin_prefetch(ids_.data() + base, /*rw=*/0, /*locality=*/1);
    __builtin_prefetch(freqs_.data() + base, /*rw=*/1, /*locality=*/1);
#else
    (void)b;
#endif
  }

 private:
  size_t BaseOf(uint32_t b) const {
    assert(b < num_buckets_);
    return static_cast<size_t>(b) * cells_per_bucket_;
  }

  uint32_t num_buckets_ = 0;
  uint32_t cells_per_bucket_ = 0;
  std::vector<uint64_t> ids_;
  std::vector<uint32_t> freqs_;
  std::vector<uint32_t> counters_;
  std::vector<uint8_t> flags_;
};

}  // namespace ltc

#endif  // LTC_CORE_TABLE_LAYOUT_H_
