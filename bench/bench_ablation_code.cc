// Ablation — PIE's ID coding: the published Raptor code vs this
// reproduction's default plain LT substitution (DESIGN.md §3). If the
// substitution is sound, the two configurations should land on nearly the
// same precision/ARE at every per-period budget — this bench is the
// evidence behind that claim.

#include <memory>

#include "bench_common.h"
#include "codes/id_code.h"
#include "persistent/pie.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kK = 100;

EvalResult RunPie(const Dataset& data, size_t memory_per_period,
                  IdCodeKind kind) {
  Pie pie(memory_per_period, data.stream.num_periods(), 3, 0, kind);
  for (const Record& r : data.stream.records()) {
    pie.Insert(r.item, data.stream.PeriodOf(r.time));
  }
  std::vector<TopKEntry> reported;
  for (const auto& report : pie.TopK(kK)) {
    reported.push_back({report.item, static_cast<double>(report.persistency)});
  }
  return Evaluate(reported, data.truth, kK, 0.0, 1.0);
}

}  // namespace

void Run() {
  // CAIDA at a reduced length so PIE is genuinely stressed at the low
  // end of the sweep (decode failures, not just hash noise).
  Stream stream = MakeCaidaLike(ScaledRecords(400'000, 10'000'000), 1);
  GroundTruth truth = GroundTruth::Compute(stream);
  Dataset data{"CAIDA", std::move(stream), std::move(truth)};

  TextTable table({"perPeriodKB", "LT_prec", "Raptor_prec", "LT_ARE",
                   "Raptor_ARE"});
  for (size_t kb : {1, 2, 4, 8, 16}) {
    EvalResult lt = RunPie(data, kb * 1024, IdCodeKind::kLt);
    EvalResult raptor = RunPie(data, kb * 1024, IdCodeKind::kRaptor);
    table.AddRow({std::to_string(kb), FormatMetric(lt.precision),
                  FormatMetric(raptor.precision), FormatMetric(lt.are),
                  FormatMetric(raptor.are)});
  }
  PrintFigure(
      "Ablation: PIE ID coding, LT substitution vs published Raptor "
      "(CAIDA, persistent items, k=100)",
      table);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
