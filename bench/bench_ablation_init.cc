// Ablation (DESIGN.md §5.4) — the Case-3 replacement strategy, i.e. the
// design choice §I motivates LTC with: Space-Saving's immediate
// replace-at-min+1 vs decrement-and-admit-at-1 vs Long-tail Replacement.
// Frequent items (α=1, β=0), k=100, CAIDA + Network, precision and ARE
// vs memory.

#include "bench_common.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kK = 100;

RunResult RunPolicy(const Dataset& data, size_t memory_bytes,
                    InitPolicy policy) {
  LtcConfig config;
  config.memory_bytes = memory_bytes;
  config.alpha = 1.0;
  config.beta = 0.0;
  config.init_policy = policy;
  LtcReporter reporter(config, data.stream.num_periods(),
                       data.stream.duration());
  return RunReporter(reporter, data.stream, data.truth, kK, 1.0, 0.0);
}

void RunDataset(const Dataset& data) {
  TextTable table({"memoryKB", "longtail_prec", "init1_prec", "min+1_prec",
                   "longtail_ARE", "init1_ARE", "min+1_ARE"});
  for (size_t kb : {5, 10, 20, 40}) {
    RunResult lt = RunPolicy(data, kb * 1024, InitPolicy::kLongTail);
    RunResult one = RunPolicy(data, kb * 1024, InitPolicy::kOne);
    RunResult ss = RunPolicy(data, kb * 1024, InitPolicy::kMinPlusOne);
    table.AddRow({std::to_string(kb), FormatMetric(lt.eval.precision),
                  FormatMetric(one.eval.precision),
                  FormatMetric(ss.eval.precision),
                  FormatMetric(lt.eval.are), FormatMetric(one.eval.are),
                  FormatMetric(ss.eval.are)});
  }
  PrintFigure("Ablation: Case-3 replacement strategy, frequent items (" +
                  data.name + ", k=100)",
              table);
}

}  // namespace

void Run() {
  RunDataset(LoadCaida());
  RunDataset(LoadNetwork());
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
