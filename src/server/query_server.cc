#include "server/query_server.h"

#include "server/aggregator.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

namespace ltc {
namespace server {

namespace {

/// Backpressure: while a connection has this many unflushed response
/// bytes, the loop stops reading from it (a pipelining client that
/// never drains its socket cannot balloon server memory).
constexpr size_t kMaxBufferedOut = 1 << 20;

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

QueryServer::QueryServer(const ReadSnapshotHub& hub, const KeyCodec& codec,
                         uint32_t num_shards, const QueryServerConfig& config)
    : hub_(hub), config_(config), dispatcher_(hub, codec, num_shards) {}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::AttachMetrics(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  static constexpr Opcode kOps[] = {
      Opcode::kPing,                 Opcode::kTopK,
      Opcode::kEstimateSignificance, Opcode::kEstimateFrequency,
      Opcode::kEstimatePersistency,  Opcode::kStats,
      Opcode::kPushSketch,           Opcode::kDumpTrace,
  };
  for (Opcode op : kOps) {
    op_counters_[static_cast<size_t>(op)] = &registry->CounterOf(
        "ltc_server_requests_total", "Requests handled, by opcode.",
        {{"op", OpcodeName(op)}});
  }
  static constexpr Status kErrs[] = {
      Status::kErrUnknownOpcode,  Status::kErrMalformed,
      Status::kErrBadKey,         Status::kErrOversized,
      Status::kErrNoSnapshot,     Status::kErrBadRequest,
      Status::kErrShapeMismatch,  Status::kErrStaleEpoch,
      Status::kErrBadSketch,      Status::kErrNotAggregator,
  };
  for (Status st : kErrs) {
    error_counters_[static_cast<size_t>(st)] = &registry->CounterOf(
        "ltc_server_errors_total", "Error responses sent, by kind.",
        {{"kind", StatusName(st)}});
  }
  request_duration_usec_ = &registry->HistogramOf(
      "ltc_server_request_duration_usec",
      "Wall time from frame decode to response enqueue, microseconds.");
  connections_total_ = &registry->CounterOf(
      "ltc_server_connections_opened_total", "Client connections accepted.");
  connections_rejected_total_ = &registry->CounterOf(
      "ltc_server_connections_rejected_total",
      "Connections refused because max_connections was reached.");
  connections_idle_closed_total_ = &registry->CounterOf(
      "ltc_server_connections_idle_closed_total",
      "Connections evicted after idle_timeout_usec without traffic.");
  connections_open_ = &registry->GaugeOf("ltc_server_connections_open",
                                         "Client connections currently open.");
  snapshot_seq_gauge_ = &registry->GaugeOf(
      "ltc_server_snapshot_seq",
      "Publish sequence of the snapshot answering queries.");
  bytes_read_total_ = &registry->CounterOf("ltc_server_bytes_read_total",
                                           "Request bytes read from clients.");
  bytes_written_total_ = &registry->CounterOf(
      "ltc_server_bytes_written_total", "Response bytes written to clients.");
}

void QueryServer::AttachAggregator(AggregatorCore* aggregator) {
  aggregator_ = aggregator;
  dispatcher_.AttachAggregator(aggregator);
}

bool QueryServer::Start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, config_.backlog) != 0) return fail("listen");
  if (!SetNonBlocking(listen_fd_)) return fail("fcntl");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) return fail("pipe2");

  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  started_ = true;
  loop_ = std::thread(&QueryServer::Loop, this);
  return true;
}

void QueryServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  if (loop_.joinable()) loop_.join();
  started_ = false;
  running_.store(false, std::memory_order_release);
}

void QueryServer::CloseConn(Conn& conn) {
  if (conn.fd < 0) return;
  ::close(conn.fd);
  conn.fd = -1;
  if (connections_open_ != nullptr) connections_open_->Add(-1.0);
}

bool QueryServer::FlushWrites(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<size_t>(n);
      conn.last_activity_usec = NowMicros();
      if (bytes_written_total_ != nullptr) {
        bytes_written_total_->Increment(static_cast<uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET / ...: the peer is gone
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > (1 << 16)) {
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  return true;
}

void QueryServer::RecordRequest(std::string_view request_payload,
                                std::string_view response_payload,
                                uint64_t micros) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const size_t status =
      response_payload.empty()
          ? static_cast<size_t>(Status::kErrMalformed)
          : static_cast<size_t>(static_cast<uint8_t>(response_payload[0]));
  if (status != 0) errors_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ == nullptr) return;
  if (!request_payload.empty()) {
    const size_t op = static_cast<uint8_t>(request_payload[0]);
    if (op < 9 && op_counters_[op] != nullptr) op_counters_[op]->Increment();
  }
  if (status < 11 && error_counters_[status] != nullptr) {
    error_counters_[status]->Increment();
  }
  request_duration_usec_->Record(micros);
  snapshot_seq_gauge_->Set(static_cast<double>(hub_.PublishedSeq()));
}

bool QueryServer::HandleReadable(Conn& conn) {
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (bytes_read_total_ != nullptr) {
        bytes_read_total_->Increment(static_cast<uint64_t>(n));
      }
      conn.last_activity_usec = NowMicros();
      conn.parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (conn.parser.buffered_bytes() >= sizeof(buf)) break;  // be fair
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  while (true) {
    std::optional<std::string> payload = conn.parser.Next();
    if (!payload.has_value()) break;
    const uint64_t t0 = NowMicros();
    const std::string response = dispatcher_.Handle(*payload);
    RecordRequest(*payload, response, NowMicros() - t0);
    conn.out += EncodeFrame(response);
  }
  if (conn.parser.oversized() && !conn.close_after_flush) {
    // The length prefix itself is untrusted, so the stream cannot be
    // resynchronized: answer with a typed error, then hang up cleanly.
    const std::string response = EncodeErrorResponse(
        Status::kErrOversized, "frame length above protocol maximum");
    RecordRequest(std::string_view(), response, 0);
    conn.out += EncodeFrame(response);
    conn.close_after_flush = true;
  }
  return true;
}

void QueryServer::HandleListener() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or transient accept errors: retry on next poll
    }
    size_t open = 0;
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ++open;
    }
    if (open >= config_.max_connections) {
      ::close(fd);
      conns_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (connections_rejected_total_ != nullptr) {
        connections_rejected_total_->Increment();
      }
      continue;
    }
    auto conn = std::make_unique<Conn>(config_.max_frame_bytes,
                                       config_.max_push_frame_bytes);
    conn->fd = fd;
    conn->last_activity_usec = NowMicros();
    conns_.push_back(std::move(conn));
    conns_opened_.fetch_add(1, std::memory_order_relaxed);
    if (connections_total_ != nullptr) connections_total_->Increment();
    if (connections_open_ != nullptr) connections_open_->Add(1.0);
  }
}

void QueryServer::Loop() {
  bool draining = false;
  uint64_t drain_deadline = 0;
  int quiet_rounds = 0;

  while (true) {
    if (!draining && stop_.load(std::memory_order_acquire)) {
      // Graceful drain: stop accepting, keep answering what is already
      // connected, flush every response, then FIN.
      draining = true;
      drain_deadline = NowMicros() + config_.drain_grace_usec;
      ::close(listen_fd_);
      listen_fd_ = -1;
    }

    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 2);
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    const size_t conns_base = fds.size() + (listen_fd_ >= 0 ? 1 : 0);
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = 0;
      const size_t pending = conn->out.size() - conn->out_off;
      if (!conn->peer_eof && !conn->close_after_flush &&
          pending < kMaxBufferedOut) {
        events |= POLLIN;
      }
      if (pending > 0) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    // Idle eviction and aggregator upkeep need time to pass even when
    // no socket stirs, so those modes poll with a finite timeout.
    int timeout_ms = -1;
    if (draining) {
      timeout_ms = 20;
    } else if (config_.idle_timeout_usec > 0 || aggregator_ != nullptr) {
      timeout_ms = 250;
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // unrecoverable poll failure

    if (fds[0].revents & POLLIN) {
      char sink[64];
      while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
      }
    }
    if (listen_fd_ >= 0 && (fds[conns_base - 1].revents & POLLIN)) {
      HandleListener();
    }

    for (size_t i = 0; i < conns_.size(); ++i) {
      Conn& conn = *conns_[i];
      if (conn.fd < 0 || i + conns_base >= fds.size()) continue;
      const short revents = fds[i + conns_base].revents;
      bool ok = true;
      if (revents & (POLLIN | POLLHUP)) ok = HandleReadable(conn);
      if (ok && (conn.out_off < conn.out.size())) ok = FlushWrites(conn);
      if (!ok || (revents & (POLLERR | POLLNVAL))) {
        CloseConn(conn);
        continue;
      }
      const bool flushed = conn.out_off >= conn.out.size();
      if (flushed && (conn.peer_eof || conn.close_after_flush)) {
        ::shutdown(conn.fd, SHUT_WR);
        CloseConn(conn);
      }
    }
    // Evict slow-loris peers: a connection that moved no bytes in
    // either direction for the whole idle budget gives up its slot.
    // Not during drain — drain has its own (shorter) deadline.
    if (!draining && config_.idle_timeout_usec > 0) {
      const uint64_t now = NowMicros();
      for (const auto& conn : conns_) {
        if (conn->fd < 0) continue;
        if (now - conn->last_activity_usec < config_.idle_timeout_usec) {
          continue;
        }
        conns_idle_closed_.fetch_add(1, std::memory_order_relaxed);
        if (connections_idle_closed_total_ != nullptr) {
          connections_idle_closed_total_->Increment();
        }
        ::shutdown(conn->fd, SHUT_WR);
        CloseConn(*conn);
      }
    }
    if (aggregator_ != nullptr) aggregator_->Tick();
    std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) {
      return c->fd < 0;
    });

    if (draining) {
      bool all_flushed = true;
      for (const auto& conn : conns_) {
        if (conn->out_off < conn->out.size() ||
            conn->parser.buffered_bytes() >= 4) {
          all_flushed = false;
          break;
        }
      }
      // One extra quiet poll round after everything is flushed catches
      // requests whose bytes were in flight when the drain began.
      if (all_flushed) {
        if (++quiet_rounds >= 2) break;
      } else {
        quiet_rounds = 0;
      }
      if (NowMicros() >= drain_deadline) break;
    }
  }

  // FIN every surviving connection; never RST mid-response.
  for (const auto& conn : conns_) {
    if (conn->fd < 0) continue;
    ::shutdown(conn->fd, SHUT_WR);
    CloseConn(*conn);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

}  // namespace server
}  // namespace ltc
