// Fig. 11 — the Deviation Eliminator ablation (§V-E): finding persistent
// items (α=0, β=1) on the Network dataset, k = 1000, precision vs memory
// 10–50 KB, optimized (two parity flags) vs basic (single flag).

#include <string>

#include "bench_common.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kK = 1000;

EvalResult Run(const Dataset& data, size_t memory_bytes,
               bool deviation_eliminator) {
  LtcConfig config;
  config.memory_bytes = memory_bytes;
  config.alpha = 0.0;
  config.beta = 1.0;
  config.deviation_eliminator = deviation_eliminator;
  LtcReporter reporter(config, data.stream.num_periods(),
                       data.stream.duration());
  return RunReporter(reporter, data.stream, data.truth, kK, 0.0, 1.0).eval;
}

}  // namespace

void Run() {
  Dataset network = LoadNetwork();
  TextTable table({"memoryKB", "Y_precision", "N_precision", "Y_ARE",
                   "N_ARE"});
  for (size_t kb : {10, 20, 30, 40, 50}) {
    EvalResult y = Run(network, kb * 1024, true);
    EvalResult n = Run(network, kb * 1024, false);
    table.AddRow({std::to_string(kb), FormatMetric(y.precision),
                  FormatMetric(n.precision), FormatMetric(y.are),
                  FormatMetric(n.are)});
  }
  PrintFigure(
      "Fig 11: Deviation Eliminator ablation, precision vs memory "
      "(Network, a=0 b=1, k=1000)",
      table);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
