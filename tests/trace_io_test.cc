// Tests for the text trace reader/writer.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "stream/generators.h"
#include "stream/trace_io.h"

namespace ltc {
namespace {

TEST(TraceIo, NumericPlainLinesGetIndexTimestamps) {
  auto result = ReadTraceFromString("5\n7\n5\n9\n", 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->used_interner);
  const Stream& s = result->stream;
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.records()[0].item, 5u);
  EXPECT_EQ(s.records()[3].item, 9u);
  EXPECT_EQ(s.num_periods(), 2u);
  // Index timestamps: first two records in period 0, last two in 1.
  EXPECT_EQ(s.PeriodOf(s.records()[1].time), 0u);
  EXPECT_EQ(s.PeriodOf(s.records()[2].time), 1u);
}

TEST(TraceIo, TimestampedLinesAndComments) {
  std::string text =
      "# a comment\n"
      "\n"
      "10,0.5\n"
      "11,1.5\n"
      "10,7.0\n";
  auto result = ReadTraceFromString(text, 4, 8.0);
  ASSERT_TRUE(result.has_value());
  const Stream& s = result->stream;
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.duration(), 8.0);
  EXPECT_EQ(s.PeriodOf(s.records()[2].time), 3u);
}

TEST(TraceIo, StringTokensAreInterned) {
  auto result = ReadTraceFromString("alice\nbob\nalice\n", 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->used_interner);
  const Stream& s = result->stream;
  EXPECT_EQ(s.records()[0].item, s.records()[2].item);
  EXPECT_NE(s.records()[0].item, s.records()[1].item);
  EXPECT_EQ(result->interner.Name(s.records()[0].item), "alice");
}

TEST(TraceIo, MixedTokensInternEverything) {
  // One non-numeric token flips the whole trace to interning, so the
  // numeric-looking "7" cannot collide with an interned ID 7.
  auto result = ReadTraceFromString("7\nweb01\n7\n", 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->used_interner);
  EXPECT_EQ(result->interner.Lookup("7"), result->stream.records()[0].item);
  EXPECT_EQ(result->stream.records()[0].item,
            result->stream.records()[2].item);
}

TEST(TraceIo, ZeroIdIsTreatedAsToken) {
  // ItemId 0 is reserved; a literal 0 goes through the interner.
  auto result = ReadTraceFromString("0\n1\n", 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->used_interner);
  EXPECT_NE(result->stream.records()[0].item, 0u);
}

TEST(TraceIo, ErrorsAreReportedWithLineNumbers) {
  std::string error;
  EXPECT_FALSE(ReadTraceFromString("1,abc\n", 1, 0, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);

  EXPECT_FALSE(ReadTraceFromString("1,5.0\n2,3.0\n", 1, 0, &error)
                   .has_value());
  EXPECT_NE(error.find("nondecreasing"), std::string::npos);

  EXPECT_FALSE(ReadTraceFromString("1\n2,1.0\n", 1, 0, &error).has_value());
  EXPECT_NE(error.find("mixed"), std::string::npos);

  EXPECT_FALSE(ReadTraceFromString("", 1, 0, &error).has_value());
  EXPECT_NE(error.find("no records"), std::string::npos);

  EXPECT_FALSE(ReadTraceFromString("1\n", 0, 0, &error).has_value());
  EXPECT_FALSE(ReadTraceFromString("1,-3\n", 1, 0, &error).has_value());
  EXPECT_FALSE(
      ReadTraceFromString("1,9.0\n", 1, /*duration=*/5.0, &error)
          .has_value());
}

TEST(TraceIo, FileRoundTripPreservesStream) {
  Stream original = MakeZipfStream(2'000, 300, 1.0, 10, 3);
  std::string path = ::testing::TempDir() + "/ltc_trace_test.csv";
  ASSERT_TRUE(WriteTrace(original, path));

  std::string error;
  auto loaded = ReadTrace(path, original.num_periods(), original.duration(),
                          &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  const Stream& s = loaded->stream;
  ASSERT_EQ(s.size(), original.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.records()[i].item, original.records()[i].item);
    EXPECT_NEAR(s.records()[i].time, original.records()[i].time, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReportsPath) {
  std::string error;
  EXPECT_FALSE(ReadTrace("/nonexistent/ltc.csv", 1, 0, &error).has_value());
  EXPECT_NE(error.find("/nonexistent/ltc.csv"), std::string::npos);
}

}  // namespace
}  // namespace ltc
