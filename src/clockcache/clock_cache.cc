#include "clockcache/clock_cache.h"

#include <cassert>

namespace ltc {

ClockCache::ClockCache(size_t capacity) : frames_(capacity) {
  assert(capacity >= 1);
  index_.reserve(capacity * 2);
}

size_t ClockCache::EvictAndAdvance() {
  // Sweep: give referenced frames a second chance, evict the first
  // unreferenced one. Terminates within two revolutions.
  while (true) {
    Frame& frame = frames_[hand_];
    if (frame.occupied && frame.referenced) {
      frame.referenced = false;
      hand_ = (hand_ + 1) % frames_.size();
      continue;
    }
    size_t victim = hand_;
    hand_ = (hand_ + 1) % frames_.size();
    if (frames_[victim].occupied) index_.erase(frames_[victim].key);
    return victim;
  }
}

bool ClockCache::Access(uint64_t key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    frames_[it->second].referenced = true;
    ++hits_;
    return true;
  }
  ++misses_;
  size_t slot = EvictAndAdvance();
  frames_[slot] = {key, false, true};
  index_[key] = slot;
  return false;
}

}  // namespace ltc
