// Unit tests for src/common: hashing, RNG, Zipf sampling, formatting.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/bob_hash.h"
#include "common/format.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace ltc {
namespace {

// ------------------------------------------------------------------ BobHash

TEST(BobHash, DeterministicAcrossCalls) {
  EXPECT_EQ(BobHash32(uint64_t{42}, 7), BobHash32(uint64_t{42}, 7));
  EXPECT_EQ(BobHash64(uint64_t{42}, 7), BobHash64(uint64_t{42}, 7));
  EXPECT_EQ(BobHash32("stream", 3), BobHash32("stream", 3));
}

TEST(BobHash, SeedChangesValue) {
  uint64_t key = 0xdeadbeefcafeULL;
  EXPECT_NE(BobHash32(key, 1), BobHash32(key, 2));
  EXPECT_NE(BobHash64(key, 1), BobHash64(key, 2));
}

TEST(BobHash, KeyChangesValue) {
  EXPECT_NE(BobHash32(uint64_t{1}), BobHash32(uint64_t{2}));
  EXPECT_NE(BobHash32("abc"), BobHash32("abd"));
}

TEST(BobHash, EmptyInputIsAccepted) {
  EXPECT_EQ(BobHashBytes32(nullptr, 0, 5), BobHashBytes32(nullptr, 0, 5));
  // Zero-length with different seeds differ (seed feeds the state).
  EXPECT_NE(BobHashBytes32(nullptr, 0, 5), BobHashBytes32(nullptr, 0, 6));
}

TEST(BobHash, AllTailLengthsCovered) {
  // Exercise every `switch` arm (1..12 remaining bytes) plus a multi-block
  // input; adjacent lengths must not collide on a shared prefix.
  char buf[64];
  std::memset(buf, 0x5a, sizeof(buf));
  std::set<uint32_t> seen;
  for (size_t len = 0; len <= 40; ++len) {
    seen.insert(BobHashBytes32(buf, len, 0));
  }
  EXPECT_EQ(seen.size(), 41u);
}

TEST(BobHash, UniformBucketSpread) {
  // Hash 100k consecutive integers into 64 buckets; every bucket should be
  // within 20% of the mean — a coarse but effective regression net for
  // mixing bugs.
  constexpr int kKeys = 100'000;
  constexpr int kBuckets = 64;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++histogram[BobHash32(static_cast<uint64_t>(i)) % kBuckets];
  }
  double mean = static_cast<double>(kKeys) / kBuckets;
  for (int count : histogram) {
    EXPECT_GT(count, mean * 0.8);
    EXPECT_LT(count, mean * 1.2);
  }
}

TEST(BobHash, AvalancheOnSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t key = 0x0123456789abcdefULL;
  uint32_t base = BobHash32(key);
  double total_flipped = 0;
  for (int bit = 0; bit < 64; ++bit) {
    uint32_t flipped = BobHash32(key ^ (uint64_t{1} << bit));
    total_flipped += __builtin_popcount(base ^ flipped);
  }
  double avg = total_flipped / 64.0;
  EXPECT_GT(avg, 12.0);
  EXPECT_LT(avg, 20.0);
}

TEST(BobHash, FunctorMatchesFreeFunction) {
  BobHashFunction f(99);
  EXPECT_EQ(f(uint64_t{123}), BobHash32(uint64_t{123}, 99));
  EXPECT_EQ(f("xyz"), BobHash32("xyz", 99));
  EXPECT_EQ(f.seed(), 99u);
}

TEST(BobHash, SixtyFourBitHalvesAreIndependent) {
  // The low and high halves of BobHash64 come from coupled lanes; they
  // should not be equal or trivially related for typical keys.
  int equal = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t h = BobHash64(k);
    if (static_cast<uint32_t>(h) == static_cast<uint32_t>(h >> 32)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ----------------------------------------------------------- other hashes

TEST(Murmur64A, KnownPropertiesHold) {
  EXPECT_EQ(Murmur64A(uint64_t{1}), Murmur64A(uint64_t{1}));
  EXPECT_NE(Murmur64A(uint64_t{1}), Murmur64A(uint64_t{2}));
  EXPECT_NE(Murmur64A(uint64_t{1}, 0), Murmur64A(uint64_t{1}, 1));
  EXPECT_EQ(Murmur64A("hello"), Murmur64A(std::string_view("hello")));
}

TEST(Murmur64A, TailBytesMatter) {
  char buf[16] = {};
  std::set<uint64_t> seen;
  for (size_t len = 0; len <= 16; ++len) seen.insert(Murmur64A(buf, len));
  EXPECT_EQ(seen.size(), 17u);
}

TEST(Fnv1a64, BasicProperties) {
  EXPECT_EQ(Fnv1a64(uint64_t{7}), Fnv1a64(uint64_t{7}));
  EXPECT_NE(Fnv1a64(uint64_t{7}), Fnv1a64(uint64_t{8}));
  EXPECT_NE(Fnv1a64(uint64_t{7}, 1), Fnv1a64(uint64_t{7}, 2));
}

TEST(Mix64, BijectiveOnSample) {
  // SplitMix64's finalizer is a bijection; no collisions on a large sample.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 50'000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 50'000u);
}

TEST(FastRange, StaysInRangeAndCoversIt) {
  std::set<uint32_t> seen;
  for (uint32_t i = 0; i < 10'000; ++i) {
    uint32_t v = FastRange32(Mix64(i) & 0xffffffffu, 10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_LT(FastRange64(Mix64(i), 7), 7u);
  }
}

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  // Different seeds diverge immediately with overwhelming probability.
  Rng a2(123);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, PoissonMeanMatchesBothRegimes) {
  Rng rng(19);
  constexpr int kN = 50'000;
  double small_sum = 0, large_sum = 0;
  for (int i = 0; i < kN; ++i) {
    small_sum += static_cast<double>(rng.Poisson(3.0));   // Knuth path
    large_sum += static_cast<double>(rng.Poisson(100.0)); // normal approx
  }
  EXPECT_NEAR(small_sum / kN, 3.0, 0.1);
  EXPECT_NEAR(large_sum / kN, 100.0, 1.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  constexpr int kN = 200'000;
  double sum = 0, sq = 0;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

// ------------------------------------------------------------------ Zipf

TEST(Zipf, TruncatedZetaKnownValues) {
  EXPECT_DOUBLE_EQ(TruncatedZeta(1, 1.0), 1.0);
  EXPECT_NEAR(TruncatedZeta(4, 1.0), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  EXPECT_NEAR(TruncatedZeta(3, 0.0), 3.0, 1e-12);  // γ=0 → plain count
  EXPECT_NEAR(TruncatedZeta(2, 2.0), 1.25, 1e-12);
}

TEST(Zipf, ExpectedFrequencyMatchesEq3) {
  // f_i = N i^{-γ} / ζ(γ): rank 1 of N=1000, M=4, γ=1.
  double zeta = TruncatedZeta(4, 1.0);
  EXPECT_NEAR(ZipfExpectedFrequency(1, 1000, 4, 1.0), 1000.0 / zeta, 1e-9);
  EXPECT_NEAR(ZipfExpectedFrequency(2, 1000, 4, 1.0), 500.0 / zeta, 1e-9);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler sampler(1000, 1.2);
  double total = 0;
  for (uint64_t i = 1; i <= 1000; ++i) total += sampler.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SamplerMatchesPmf) {
  constexpr uint64_t kM = 100;
  constexpr int kN = 500'000;
  ZipfSampler sampler(kM, 1.0);
  Rng rng(31);
  std::vector<int> counts(kM + 1, 0);
  for (int i = 0; i < kN; ++i) {
    uint64_t rank = sampler.Sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, kM);
    ++counts[rank];
  }
  // Head ranks have tight relative agreement with the analytic pmf.
  for (uint64_t rank = 1; rank <= 10; ++rank) {
    double expected = sampler.Pmf(rank) * kN;
    EXPECT_NEAR(counts[rank], expected, expected * 0.05)
        << "rank " << rank;
  }
}

TEST(Zipf, GammaZeroIsUniform) {
  ZipfSampler sampler(50, 0.0);
  for (uint64_t i = 1; i <= 50; ++i) {
    EXPECT_NEAR(sampler.Pmf(i), 1.0 / 50, 1e-12);
  }
  Rng rng(37);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[sampler.Sample(rng)];
  for (uint64_t i = 1; i <= 50; ++i) {
    EXPECT_NEAR(counts[i], 2000, 300);
  }
}

TEST(Zipf, SingleItemDegenerate) {
  ZipfSampler sampler(1, 1.5);
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
  EXPECT_NEAR(sampler.Pmf(1), 1.0, 1e-12);
}

TEST(Zipf, HigherGammaSkewsHead) {
  constexpr uint64_t kM = 1000;
  ZipfSampler flat(kM, 0.5), steep(kM, 1.5);
  EXPECT_LT(flat.Pmf(1), steep.Pmf(1));
  EXPECT_GT(flat.Pmf(kM), steep.Pmf(kM));
}

// ---------------------------------------------------------------- format

TEST(Format, Memory) {
  EXPECT_EQ(FormatMemory(10 * 1024), "10KB");
  EXPECT_EQ(FormatMemory(2 * 1024 * 1024), "2MB");
  EXPECT_EQ(FormatMemory(100), "100B");
  EXPECT_EQ(FormatMemory(0), "0KB");  // 0 % 1024 == 0
}

TEST(Format, Metric) {
  EXPECT_EQ(FormatMetric(0.5), "0.5000");
  EXPECT_EQ(FormatMetric(0.0), "0.0000");
  EXPECT_EQ(FormatMetric(123.4), "123.4");
  EXPECT_EQ(FormatMetric(1e-7), "1.000e-07");
  EXPECT_EQ(FormatMetric(3.2e7), "3.200e+07");
}

TEST(Format, TextTableAlignsAndCounts) {
  TextTable table({"algo", "precision"});
  table.AddRow({"LTC", "0.99"});
  table.AddRow({"SpaceSaving", "0.18"});
  EXPECT_EQ(table.num_rows(), 2u);

  std::ostringstream os;
  table.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("LTC"), std::string::npos);
  EXPECT_NE(text.find("SpaceSaving"), std::string::npos);
  // Header separator line of dashes.
  EXPECT_NE(text.find("-----"), std::string::npos);

  std::ostringstream csv;
  table.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "algo,precision\nLTC,0.99\nSpaceSaving,0.18\n");
}

}  // namespace
}  // namespace ltc
