// Exporters for MetricsRegistry: Prometheus text exposition format 0.0.4
// and a JSON document with the same content. Both render each metric
// snapshot-consistently: a counter/gauge is one atomic load, and a
// histogram's cumulative buckets, +Inf bucket and `_count` all derive
// from one pass of bucket loads, so the per-metric invariants
// (cumulative monotonicity, count == +Inf) hold even while writers
// race. Cross-metric skew (one counter read before another) is
// possible and harmless — everything exported is monotone or a gauge.

#ifndef LTC_TELEMETRY_EXPOSITION_H_
#define LTC_TELEMETRY_EXPOSITION_H_

#include <string>

#include "telemetry/metrics.h"

namespace ltc {
namespace telemetry {

/// Prometheus text format: `# HELP` / `# TYPE` comments followed by the
/// family's samples; histograms expand into `_bucket{le="..."}`
/// (cumulative, empty buckets elided, `+Inf` always present), `_sum`
/// and `_count`. Validated by tools/check_exposition.sh.
std::string ExpositionText(const MetricsRegistry& registry);

/// The same content as one JSON object:
///   {"families": [{"name", "type", "help", "series": [
///       {"labels": {...}, "value": N}                     // counter/gauge
///       {"labels": {...}, "count", "sum", "buckets": [...]} // histogram
///   ]}]}
std::string ExpositionJson(const MetricsRegistry& registry);

}  // namespace telemetry
}  // namespace ltc

#endif  // LTC_TELEMETRY_EXPOSITION_H_
