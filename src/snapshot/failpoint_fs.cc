#include "snapshot/failpoint_fs.h"

namespace ltc {

void FailpointFs::Arm(Failure failure, uint64_t trigger_op, uint64_t seed,
                      uint64_t burst) {
  failure_ = failure;
  trigger_op_ = trigger_op;
  seed_ = seed;
  burst_left_ = burst < 1 ? 1 : burst;
  fired_ = false;
  crashed_ = false;
}

bool FailpointFs::Fires(OpKind op) {
  const uint64_t index = ops_++;
  if (burst_left_ == 0 || failure_ == Failure::kNone || index < trigger_op_) {
    return false;
  }
  bool applies = false;
  switch (failure_) {
    case Failure::kCrash:
      applies = true;  // a crash can land on any mutating op
      break;
    case Failure::kShortWrite:
    case Failure::kWriteError:
    case Failure::kFlipByteInWrite:
    case Failure::kTornWriteCrash:
      applies = op == OpKind::kWrite;
      break;
    case Failure::kSyncError:
      applies = op == OpKind::kSync;
      break;
    case Failure::kRenameError:
    case Failure::kTruncateAfterRename:
      applies = op == OpKind::kRename;
      break;
    case Failure::kNone:
      break;
  }
  if (!applies) return false;
  fired_ = true;
  --burst_left_;
  if (failure_ == Failure::kCrash || failure_ == Failure::kTornWriteCrash) {
    crashed_ = true;
  }
  return true;
}

bool FailpointFs::FailingWrite(const std::string& path, std::string_view data,
                               bool append) {
  auto write = [&](std::string_view bytes) {
    return append ? base_.AppendAll(path, bytes) : base_.WriteAll(path, bytes);
  };
  switch (failure_) {
    case Failure::kCrash:
    case Failure::kShortWrite: {
      // Persist a deterministic prefix: the torn write.
      const size_t keep =
          data.empty() ? 0 : static_cast<size_t>(seed_ % (data.size() + 1));
      write(data.substr(0, keep));
      return false;
    }
    case Failure::kTornWriteCrash: {
      // A strict prefix: non-empty writes are always cut mid-record.
      const size_t keep =
          data.empty() ? 0 : static_cast<size_t>(seed_ % data.size());
      write(data.substr(0, keep));
      return false;
    }
    case Failure::kFlipByteInWrite: {
      std::string corrupted(data);
      if (!corrupted.empty()) {
        corrupted[static_cast<size_t>(seed_ % corrupted.size())] ^= 0x40;
      }
      write(corrupted);
      return true;  // silent corruption: the write reports success
    }
    case Failure::kWriteError:
    default:
      return false;
  }
}

bool FailpointFs::WriteAll(const std::string& path, std::string_view data) {
  if (crashed_) {
    ++ops_;
    return false;
  }
  if (!Fires(OpKind::kWrite)) return base_.WriteAll(path, data);
  return FailingWrite(path, data, /*append=*/false);
}

bool FailpointFs::AppendAll(const std::string& path, std::string_view data) {
  if (crashed_) {
    ++ops_;
    return false;
  }
  if (!Fires(OpKind::kWrite)) return base_.AppendAll(path, data);
  return FailingWrite(path, data, /*append=*/true);
}

std::optional<std::string> FailpointFs::ReadAll(const std::string& path) {
  return base_.ReadAll(path);
}

bool FailpointFs::Sync(const std::string& path) {
  if (crashed_) {
    ++ops_;
    return false;
  }
  if (Fires(OpKind::kSync)) return false;
  return base_.Sync(path);
}

bool FailpointFs::SyncDir(const std::string& path) {
  if (crashed_) {
    ++ops_;
    return false;
  }
  if (Fires(OpKind::kSync)) return false;
  return base_.SyncDir(path);
}

bool FailpointFs::Rename(const std::string& from, const std::string& to) {
  if (crashed_) {
    ++ops_;
    return false;
  }
  if (!Fires(OpKind::kRename)) return base_.Rename(from, to);
  switch (failure_) {
    case Failure::kTruncateAfterRename: {
      if (!base_.Rename(from, to)) return false;
      auto contents = base_.ReadAll(to);
      if (contents && !contents->empty()) {
        const size_t keep = static_cast<size_t>(seed_ % contents->size());
        base_.WriteAll(to, std::string_view(*contents).substr(0, keep));
      }
      return true;  // the rename itself "succeeded"
    }
    case Failure::kCrash:
    case Failure::kRenameError:
    default:
      return false;
  }
}

bool FailpointFs::Remove(const std::string& path) {
  if (crashed_) {
    ++ops_;
    return false;
  }
  if (Fires(OpKind::kRemove)) return false;  // only kCrash lands here
  return base_.Remove(path);
}

bool FailpointFs::Exists(const std::string& path) {
  return base_.Exists(path);
}

std::optional<std::vector<std::string>> FailpointFs::ListDir(
    const std::string& dir) {
  return base_.ListDir(dir);
}

}  // namespace ltc
