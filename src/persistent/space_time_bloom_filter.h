// Space-Time Bloom Filter (STBF) — the per-period structure of the PIE
// persistent-items baseline (paper §II-B: "During each period, it
// maintains a data structure called Space-Time Bloom Filter and uses
// Raptor codes to encode the IDs of items appeared in this period").
//
// Each cell is (state, fingerprint, coded symbol). Inserting an item
// writes an LT-coded symbol of its ID into each of its k cells; a cell
// written by two different items becomes a *collision* cell and its
// payload is dead. At decode time the singleton cells are the usable
// symbols. Hash positions and symbol seeds are period-salted so each
// period contributes fresh symbols for the same item — that is what makes
// persistent (multi-period) items decodable while transient ones are not.
//
// Simplification vs. the original PIE (documented in DESIGN.md §3): we use
// a 32-bit fingerprint to group symbols by item at decode time instead of
// PIE's within-period cell-linking, and a plain LT code instead of R10
// Raptor. Cell cost is charged at 7 bytes (2-bit state + 32-bit
// fingerprint + 16-bit symbol, bit-packed in a real deployment).

#ifndef LTC_PERSISTENT_SPACE_TIME_BLOOM_FILTER_H_
#define LTC_PERSISTENT_SPACE_TIME_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "codes/id_code.h"
#include "stream/stream.h"

namespace ltc {

class SpaceTimeBloomFilter {
 public:
  enum class CellState : uint8_t { kEmpty = 0, kSingleton = 1,
                                   kCollision = 2 };

  struct Cell {
    uint32_t fingerprint = 0;
    uint16_t symbol = 0;
    CellState state = CellState::kEmpty;
  };

  /// \param num_cells   m, cells in this period's filter
  /// \param num_hashes  k, cells written per item
  /// \param period      this filter's period index (salts hashes/seeds)
  /// \param code        ID code shared by all periods (LT or Raptor)
  /// \param seed        experiment master seed
  SpaceTimeBloomFilter(size_t num_cells, uint32_t num_hashes, uint32_t period,
                       const IdCode* code, uint64_t seed);

  /// Records one appearance of the item in this period.
  void Insert(ItemId item);

  /// Period membership test: true if the item may have appeared here.
  /// One-sided like a Bloom filter: no false negatives; false positives
  /// need all k cells occupied with no contradicting singleton.
  bool MayContain(ItemId item) const;

  const std::vector<Cell>& cells() const { return cells_; }
  uint32_t period() const { return period_; }
  size_t num_cells() const { return cells_.size(); }

  /// The 32-bit item fingerprint used for grouping (shared across periods).
  static uint32_t FingerprintOf(ItemId item, uint64_t seed);

  /// Deterministic symbol seed of (cell, period): the decoder reconstructs
  /// it from the cell's coordinates alone.
  static uint64_t SymbolSeed(size_t cell_index, uint32_t period,
                             uint64_t seed);

  /// Model bytes per cell under the paper-style accounting.
  static constexpr size_t BytesPerCell() { return 7; }
  static size_t CellsForMemory(size_t bytes) {
    size_t n = bytes / BytesPerCell();
    return n == 0 ? 1 : n;
  }

 private:
  void Positions(ItemId item, std::vector<size_t>* out) const;

  std::vector<Cell> cells_;
  uint32_t num_hashes_;
  uint32_t period_;
  const IdCode* code_;
  uint64_t seed_;
};

}  // namespace ltc

#endif  // LTC_PERSISTENT_SPACE_TIME_BLOOM_FILTER_H_
