// Tests for the Raptor code (precode + LT) and the partial peeling
// decoder it relies on.

#include <vector>

#include <gtest/gtest.h>

#include "codes/raptor_code.h"
#include "common/rng.h"

namespace ltc {
namespace {

TEST(PeelingDecodePartial, ReportsWhatItResolved) {
  // Blocks {0,1,2}; symbols determine 0 and 1 but never touch 2.
  std::vector<GraphSymbol> symbols = {
      {{0}, 11},
      {{0, 1}, 11 ^ 22},
  };
  auto partial = PeelingDecodePartial(3, symbols);
  EXPECT_TRUE(partial.resolved[0]);
  EXPECT_TRUE(partial.resolved[1]);
  EXPECT_FALSE(partial.resolved[2]);
  EXPECT_EQ(partial.blocks[0], 11u);
  EXPECT_EQ(partial.blocks[1], 22u);
}

TEST(PeelingDecodePartial, ConflictFreeRedundancyIsHarmless) {
  std::vector<GraphSymbol> symbols = {
      {{0}, 5},
      {{0}, 5},
      {{1, 0}, 5 ^ 9},
  };
  auto full = PeelingDecode(2, symbols);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ((*full)[0], 5u);
  EXPECT_EQ((*full)[1], 9u);
}

TEST(RaptorCode, PrecodeAppendsSeededParities) {
  RaptorCode code(4, 2, 7);
  std::vector<uint64_t> source = {0xA, 0xB, 0xC, 0xD};
  auto intermediate = code.Precode(source);
  ASSERT_EQ(intermediate.size(), 6u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(intermediate[i], source[i]);
  for (uint32_t p = 0; p < 2; ++p) {
    uint64_t expected = 0;
    for (uint32_t s : code.ParityNeighbours(p)) expected ^= source[s];
    EXPECT_EQ(intermediate[4 + p], expected) << "parity " << p;
  }
  // Deterministic pattern.
  RaptorCode again(4, 2, 7);
  EXPECT_EQ(again.ParityNeighbours(0), code.ParityNeighbours(0));
  RaptorCode other(4, 2, 8);
  EXPECT_TRUE(other.ParityNeighbours(0) != code.ParityNeighbours(0) ||
              other.ParityNeighbours(1) != code.ParityNeighbours(1));
}

TEST(RaptorCode, RoundTripWithAmpleSymbols) {
  RaptorCode code(8, 3, 1);
  Rng rng(1);
  std::vector<uint64_t> source;
  for (int i = 0; i < 8; ++i) source.push_back(rng.Next());
  auto intermediate = code.Precode(source);

  int successes = 0;
  constexpr int kTrials = 100;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<LtCode::Symbol> symbols;
    for (int s = 0; s < 24; ++s) {
      uint64_t seed = rng.Next();
      symbols.push_back({seed, code.EncodeIntermediate(intermediate, seed)});
    }
    auto decoded = code.Decode(symbols);
    if (decoded) {
      EXPECT_EQ(*decoded, source);
      ++successes;
    }
  }
  EXPECT_GT(successes, 90);
}

TEST(RaptorCode, EncodeConvenienceMatchesManualPath) {
  RaptorCode code(4, 2, 3);
  std::vector<uint64_t> source = {1, 2, 3, 4};
  auto intermediate = code.Precode(source);
  for (uint64_t seed = 0; seed < 50; ++seed) {
    EXPECT_EQ(code.Encode(source, seed),
              code.EncodeIntermediate(intermediate, seed));
  }
}

TEST(RaptorCode, ZeroParityDegeneratesToLt) {
  RaptorCode code(4, 0, 5);
  std::vector<uint64_t> source = {9, 8, 7, 6};
  EXPECT_EQ(code.Precode(source), source);
  std::vector<LtCode::Symbol> symbols;
  Rng rng(5);
  for (int s = 0; s < 16; ++s) {
    uint64_t seed = rng.Next();
    symbols.push_back({seed, code.Encode(source, seed)});
  }
  auto decoded = code.Decode(symbols);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, source);
}

TEST(LtCode, MaxDegreeCapIsRespected) {
  LtCode capped(32, 0.1, 0.5, /*max_degree=*/4);
  for (uint64_t seed = 0; seed < 2'000; ++seed) {
    ASSERT_LE(capped.NeighboursOf(seed).size(), 4u);
  }
  double total = 0;
  for (uint32_t d = 1; d <= 4; ++d) total += capped.DegreeProbability(d);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(capped.DegreeProbability(5), 0.0);
}

// Raptor's raison d'être (Shokrollahi '06): with a BOUNDED-degree inner
// code — O(1) encode work per symbol — plain LT cannot reach every block
// and stalls, while the precode's parity constraints recover the blocks
// the capped symbols miss.
TEST(RaptorCode, PrecodeRescuesBoundedDegreeInnerCode) {
  constexpr uint32_t kSource = 32;
  constexpr uint32_t kParity = 12;
  constexpr uint32_t kCap = 4;
  constexpr int kTrials = 200;
  constexpr int kSymbols = 64;  // 2x overhead, but degree-capped

  LtCode plain(kSource, 0.1, 0.5, kCap);
  RaptorCode raptor(kSource, kParity, 9, 4, kCap);
  Rng rng(9);
  std::vector<uint64_t> source;
  for (uint32_t i = 0; i < kSource; ++i) source.push_back(rng.Next());
  auto intermediate = raptor.Precode(source);

  int lt_ok = 0, raptor_ok = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<LtCode::Symbol> lt_symbols, raptor_symbols;
    for (int s = 0; s < kSymbols; ++s) {
      uint64_t seed = rng.Next();
      lt_symbols.push_back({seed, plain.Encode(source, seed)});
      raptor_symbols.push_back(
          {seed, raptor.EncodeIntermediate(intermediate, seed)});
    }
    auto lt_result = plain.Decode(lt_symbols);
    if (lt_result && *lt_result == source) ++lt_ok;
    auto raptor_result = raptor.Decode(raptor_symbols);
    if (raptor_result) {
      EXPECT_EQ(*raptor_result, source);
      ++raptor_ok;
    }
  }
  EXPECT_GT(raptor_ok, lt_ok);
}

}  // namespace
}  // namespace ltc
