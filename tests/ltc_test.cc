// Unit tests for the LTC core: insertion cases, Significance Decrementing,
// the modified CLOCK, the Deviation Eliminator, Long-tail Replacement, and
// the no-overestimation guarantee (Theorem IV.1).

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ltc.h"
#include "metrics/ground_truth.h"
#include "stream/generators.h"

namespace ltc {
namespace {

// A single-bucket table: memory for exactly w=1, d cells.
LtcConfig OneBucket(uint32_t d, uint64_t items_per_period = 1'000'000) {
  LtcConfig config;
  config.memory_bytes = LtcConfig::BytesPerCell() * d;
  config.cells_per_bucket = d;
  config.items_per_period = items_per_period;
  return config;
}

TEST(Ltc, GeometryFromMemoryBudget) {
  LtcConfig config;
  config.memory_bytes = 64 * 1024;
  config.cells_per_bucket = 8;
  Ltc table(config);
  EXPECT_EQ(table.num_buckets(), 64u * 1024 / (16 * 8));
  EXPECT_EQ(table.num_cells(), table.num_buckets() * 8u);
  EXPECT_EQ(table.MemoryBytes(), table.num_cells() * 16);

  // A budget below one bucket still yields one bucket.
  LtcConfig tiny;
  tiny.memory_bytes = 1;
  Ltc small(tiny);
  EXPECT_EQ(small.num_buckets(), 1u);
}

TEST(Ltc, Case1IncrementsTrackedItem) {
  Ltc table(OneBucket(4));
  table.Insert(7);
  table.Insert(7);
  table.Insert(7);
  table.Finalize();
  EXPECT_EQ(table.EstimateFrequency(7), 3u);
  EXPECT_TRUE(table.IsTracked(7));
}

TEST(Ltc, Case2FillsEmptyCells) {
  Ltc table(OneBucket(3));
  table.Insert(1);
  table.Insert(2);
  table.Insert(3);
  table.Finalize();
  for (ItemId item : {1, 2, 3}) {
    EXPECT_EQ(table.EstimateFrequency(item), 1u);
    EXPECT_EQ(table.EstimatePersistency(item), 1u);  // one period seen
  }
}

TEST(Ltc, Case3DecrementsSmallestWithoutAdmitting) {
  LtcConfig config = OneBucket(2);
  config.beta = 0.0;  // significance = frequency: easiest to reason about
  Ltc table(config);
  for (int i = 0; i < 5; ++i) table.Insert(1);
  for (int i = 0; i < 2; ++i) table.Insert(2);
  // Bucket full: a single arrival of 3 decrements item 2 (5 vs 2), is NOT
  // admitted, and leaves item 2 tracked at 1.
  table.Insert(3);
  EXPECT_FALSE(table.IsTracked(3));
  EXPECT_EQ(table.EstimateFrequency(2), 1u);
  EXPECT_EQ(table.EstimateFrequency(1), 5u);
}

TEST(Ltc, Case3ExpelsAtZeroAndAdmitsNewcomer) {
  LtcConfig config = OneBucket(2);
  config.beta = 0.0;
  config.long_tail_replacement = false;  // basic init: (1, 0)
  Ltc table(config);
  for (int i = 0; i < 5; ++i) table.Insert(1);
  for (int i = 0; i < 2; ++i) table.Insert(2);
  table.Insert(3);  // item2 -> 1
  table.Insert(3);  // item2 -> 0: expelled; 3 admitted with freq 1
  EXPECT_FALSE(table.IsTracked(2));
  EXPECT_TRUE(table.IsTracked(3));
  EXPECT_EQ(table.EstimateFrequency(3), 1u);
}

TEST(Ltc, LongTailReplacementInitializesToSecondSmallestMinusOne) {
  LtcConfig config = OneBucket(2);
  config.beta = 0.0;
  config.long_tail_replacement = true;
  Ltc table(config);
  for (int i = 0; i < 10; ++i) table.Insert(1);  // freq 10
  for (int i = 0; i < 5; ++i) table.Insert(2);   // freq 5
  // Five arrivals of 3 decrement item2 to 0; LTR restores the newcomer at
  // the (remaining) second-smallest frequency 10, minus 1.
  for (int i = 0; i < 5; ++i) table.Insert(3);
  EXPECT_FALSE(table.IsTracked(2));
  EXPECT_TRUE(table.IsTracked(3));
  EXPECT_EQ(table.EstimateFrequency(3), 9u);
}

TEST(Ltc, MinPlusOnePolicyReplacesWithoutDecrementing) {
  // The Space-Saving strategy the paper argues against (§I): a single
  // arrival into a full bucket immediately replaces the minimum at
  // f_min + 1 — prompt adoption, large overestimation.
  LtcConfig config = OneBucket(2);
  config.beta = 0.0;
  config.init_policy = InitPolicy::kMinPlusOne;
  Ltc table(config);
  for (int i = 0; i < 9; ++i) table.Insert(1);
  for (int i = 0; i < 5; ++i) table.Insert(2);
  table.Insert(3);  // ONE arrival: takes over item 2's cell at 5+1
  EXPECT_FALSE(table.IsTracked(2));
  EXPECT_TRUE(table.IsTracked(3));
  EXPECT_EQ(table.EstimateFrequency(3), 6u);  // overestimates (truth: 1)
  EXPECT_EQ(table.EstimateFrequency(1), 9u);
}

TEST(Ltc, EffectiveInitPolicyResolution) {
  LtcConfig config;
  EXPECT_EQ(config.EffectiveInitPolicy(), InitPolicy::kLongTail);
  config.long_tail_replacement = false;
  EXPECT_EQ(config.EffectiveInitPolicy(), InitPolicy::kOne);
  config.long_tail_replacement = true;
  config.init_policy = InitPolicy::kMinPlusOne;
  EXPECT_EQ(config.EffectiveInitPolicy(), InitPolicy::kMinPlusOne);
}

TEST(Ltc, LongTailReplacementFallsBackWithoutNeighbours) {
  // d=1: no second-smallest exists; the newcomer starts at (1, 0).
  LtcConfig config = OneBucket(1);
  config.beta = 0.0;
  Ltc table(config);
  for (int i = 0; i < 3; ++i) table.Insert(1);
  // Three arrivals of 2: decrement 1 to 0, then admit at init (1, 0).
  for (int i = 0; i < 3; ++i) table.Insert(2);
  EXPECT_TRUE(table.IsTracked(2));
  EXPECT_EQ(table.EstimateFrequency(2), 1u);
}

TEST(Ltc, PersistencyCountsPeriodsNotArrivals) {
  // Item X appears 5 times in every one of 10 periods: persistency must be
  // 10, not 50 (the modified CLOCK's whole point, §III-B).
  LtcConfig config = OneBucket(4, /*items_per_period=*/5);
  Ltc table(config);
  for (int period = 0; period < 10; ++period) {
    for (int i = 0; i < 5; ++i) table.Insert(99);
  }
  table.Finalize();
  EXPECT_EQ(table.EstimateFrequency(99), 50u);
  EXPECT_EQ(table.EstimatePersistency(99), 10u);
}

TEST(Ltc, PersistencySkipsAbsentPeriods) {
  // One arrival of X per EVEN period; odd periods carry dummies.
  LtcConfig config = OneBucket(4, /*items_per_period=*/2);
  Ltc table(config);
  for (int period = 0; period < 10; ++period) {
    if (period % 2 == 0) {
      table.Insert(99);
    } else {
      table.Insert(50);
    }
    table.Insert(60);  // filler completing each period
  }
  table.Finalize();
  EXPECT_EQ(table.EstimatePersistency(99), 5u);
  EXPECT_EQ(table.EstimateFrequency(99), 5u);
}

TEST(Ltc, DeviationEliminatorFixesStraddlingArrivals) {
  // Fig. 4's failure: two arrivals in ONE period straddling the cell's
  // scan moment are double-counted by the basic single-flag scheme; the
  // even/odd flags count them once.
  auto run = [](bool deviation_eliminator) {
    LtcConfig config = OneBucket(4, /*items_per_period=*/4);
    config.deviation_eliminator = deviation_eliminator;
    config.long_tail_replacement = false;
    Ltc table(config);
    // Period 0: X enters cell 0 (plus 3 dummies filling the bucket).
    table.Insert(11);
    table.Insert(21);
    table.Insert(22);
    table.Insert(23);
    // Period 1: X as 1st arrival (before cell 0's sweep slot has passed
    // far) and again as 4th arrival (after it) — one period, two arrivals.
    table.Insert(11);
    table.Insert(21);
    table.Insert(22);
    table.Insert(11);
    // Period 2: dummies only, letting the sweep collect X's flags.
    table.Insert(21);
    table.Insert(22);
    table.Insert(21);
    table.Insert(22);
    table.Finalize();
    return table.EstimatePersistency(11);
  };

  uint64_t with_de = run(true);
  uint64_t without_de = run(false);
  EXPECT_EQ(with_de, 2u);       // truth: X appeared in periods 0 and 1
  EXPECT_GT(without_de, 2u);    // basic double-counts the straddle
}

TEST(Ltc, FinalizeCreditsPendingFlags) {
  LtcConfig config = OneBucket(4, /*items_per_period=*/100);
  Ltc table(config);
  table.Insert(5);
  // Mid-period: the flag is set but not yet swept.
  EXPECT_EQ(table.EstimatePersistency(5), 0u);
  table.Finalize();
  EXPECT_EQ(table.EstimatePersistency(5), 1u);
}

TEST(Ltc, NoOverestimationWithoutLtr) {
  // Theorem IV.1: with the Deviation Eliminator and basic initialization,
  // ŝ <= s for every tracked item. Checked on a messy random workload.
  WorkloadConfig wl;
  wl.num_records = 60'000;
  wl.num_distinct = 3'000;
  wl.zipf_gamma = 1.0;
  wl.num_periods = 40;
  wl.seed = 21;
  Stream stream = GenerateWorkload(wl);
  GroundTruth truth = GroundTruth::Compute(stream);

  LtcConfig config;
  config.memory_bytes = 8 * 1024;
  config.long_tail_replacement = false;
  config.deviation_eliminator = true;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  Ltc table(config);
  for (const Record& r : stream.records()) table.Insert(r.item, r.time);
  table.Finalize();

  for (const auto& report : table.TopK(table.num_cells())) {
    uint64_t f = truth.Frequency(report.item);
    uint64_t p = truth.Persistency(report.item);
    ASSERT_LE(report.frequency, f) << "item " << report.item;
    ASSERT_LE(report.persistency, p) << "item " << report.item;
    ASSERT_LE(report.significance,
              truth.Significance(report.item, config.alpha, config.beta) +
                  1e-9);
  }
}

TEST(Ltc, PersistencyNeverExceedsPeriodCount) {
  WorkloadConfig wl;
  wl.num_records = 30'000;
  wl.num_distinct = 1'000;
  wl.num_periods = 25;
  wl.seed = 22;
  Stream stream = GenerateWorkload(wl);

  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  Ltc table(config);
  for (const Record& r : stream.records()) table.Insert(r.item, r.time);
  table.Finalize();
  for (const auto& report : table.TopK(table.num_cells())) {
    ASSERT_LE(report.persistency, stream.num_periods());
  }
}

TEST(Ltc, CountAndTimePacingAgreeOnUniformStream) {
  // On an index-timestamped stream the two pacing modes see identical
  // arrival patterns; with β=0 the table contents must match exactly.
  Stream stream = MakeZipfStream(20'000, 2'000, 1.0, 20, 23);

  LtcConfig count_config;
  count_config.memory_bytes = 4 * 1024;
  count_config.beta = 0.0;
  count_config.period_mode = PeriodMode::kCountBased;
  count_config.items_per_period = stream.size() / stream.num_periods();

  LtcConfig time_config = count_config;
  time_config.period_mode = PeriodMode::kTimeBased;
  time_config.period_seconds = stream.duration() / stream.num_periods();

  Ltc by_count(count_config);
  Ltc by_time(time_config);
  for (const Record& r : stream.records()) {
    by_count.Insert(r.item, r.time);
    by_time.Insert(r.item, r.time);
  }
  by_count.Finalize();
  by_time.Finalize();

  auto a = by_count.TopK(100);
  auto b = by_time.TopK(100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_EQ(a[i].frequency, b[i].frequency);
    // Persistency sweeps may differ by one slot's rounding.
    EXPECT_NEAR(static_cast<double>(a[i].persistency),
                static_cast<double>(b[i].persistency), 1.0);
  }
}

TEST(Ltc, TimeBasedHandlesEmptyPeriodsAndGaps) {
  LtcConfig config = OneBucket(4);
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = 1.0;
  Ltc table(config);
  table.Insert(7, 0.5);
  table.Insert(7, 10.5);  // nine empty periods in between
  table.Finalize();
  EXPECT_EQ(table.EstimatePersistency(7), 2u);
  EXPECT_EQ(table.current_period(), 10u);
  EXPECT_TRUE(table.CheckInvariants());
}

TEST(Ltc, SnapshotTopKCreditsPendingFlagsWithoutMutating) {
  LtcConfig config = OneBucket(4, /*items_per_period=*/100);
  Ltc table(config);
  table.Insert(5);
  table.Insert(5);

  // Mid-period: the committed counter is still 0, but the snapshot
  // credits the pending flag.
  EXPECT_EQ(table.EstimatePersistency(5), 0u);
  auto snapshot = table.SnapshotTopK(1);
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].persistency, 1u);
  EXPECT_EQ(snapshot[0].frequency, 2u);

  // Non-destructive: the committed state is untouched, and Finalize
  // agrees with what the snapshot predicted.
  EXPECT_EQ(table.EstimatePersistency(5), 0u);
  table.Finalize();
  auto final = table.TopK(1);
  ASSERT_EQ(final.size(), 1u);
  EXPECT_EQ(final[0].persistency, snapshot[0].persistency);
  EXPECT_EQ(final[0].significance, snapshot[0].significance);
}

TEST(Ltc, ItemsAboveThreshold) {
  LtcConfig config = OneBucket(4);
  config.beta = 0.0;
  Ltc table(config);
  for (int i = 0; i < 9; ++i) table.Insert(1);
  for (int i = 0; i < 5; ++i) table.Insert(2);
  for (int i = 0; i < 2; ++i) table.Insert(3);
  table.Finalize();

  auto heavy = table.ItemsAbove(5.0);
  ASSERT_EQ(heavy.size(), 2u);
  EXPECT_EQ(heavy[0].item, 1u);
  EXPECT_EQ(heavy[1].item, 2u);
  EXPECT_TRUE(table.ItemsAbove(100.0).empty());
  EXPECT_EQ(table.ItemsAbove(0.0).size(), 3u);  // everything tracked
}

TEST(Ltc, ComputeStatsTracksOccupancy) {
  LtcConfig config = OneBucket(4);
  Ltc table(config);
  auto empty = table.ComputeStats();
  EXPECT_EQ(empty.occupied_cells, 0u);
  EXPECT_EQ(empty.empty_cells, 4u);
  EXPECT_EQ(empty.full_buckets, 0u);
  EXPECT_EQ(empty.occupancy, 0.0);

  for (int i = 0; i < 5; ++i) table.Insert(1);
  table.Insert(2);
  auto partial = table.ComputeStats();
  EXPECT_EQ(partial.occupied_cells, 2u);
  EXPECT_EQ(partial.full_buckets, 0u);
  EXPECT_EQ(partial.max_frequency, 5u);
  EXPECT_DOUBLE_EQ(partial.occupancy, 0.5);
  EXPECT_GT(partial.avg_significance, 0.0);

  table.Insert(3);
  table.Insert(4);
  auto full = table.ComputeStats();
  EXPECT_EQ(full.occupied_cells, 4u);
  EXPECT_EQ(full.full_buckets, 1u);
  EXPECT_DOUBLE_EQ(full.occupancy, 1.0);
}

TEST(Ltc, ComputeStatsEmptyTableHasNoNan) {
  Ltc table(OneBucket(4));
  auto stats = table.ComputeStats();
  EXPECT_EQ(stats.occupied_cells, 0u);
  EXPECT_FALSE(std::isnan(stats.occupancy));
  EXPECT_FALSE(std::isnan(stats.avg_significance));
  EXPECT_EQ(stats.occupancy, 0.0);
  EXPECT_EQ(stats.avg_significance, 0.0);
}

TEST(Ltc, QueryUntrackedReturnsZero) {
  Ltc table(OneBucket(4));
  table.Insert(1);
  EXPECT_EQ(table.QuerySignificance(404), 0.0);
  EXPECT_EQ(table.EstimateFrequency(404), 0u);
  EXPECT_EQ(table.EstimatePersistency(404), 0u);
  EXPECT_FALSE(table.IsTracked(404));
}

TEST(Ltc, TopKSortedAndTruncated) {
  LtcConfig config = OneBucket(4);
  config.beta = 0.0;
  Ltc table(config);
  for (int i = 0; i < 9; ++i) table.Insert(1);
  for (int i = 0; i < 5; ++i) table.Insert(2);
  for (int i = 0; i < 2; ++i) table.Insert(3);
  table.Finalize();
  auto top2 = table.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].item, 1u);
  EXPECT_EQ(top2[1].item, 2u);
  EXPECT_GE(top2[0].significance, top2[1].significance);
  EXPECT_EQ(table.TopK(100).size(), 3u);
}

TEST(Ltc, AlphaBetaWeightSignificance) {
  LtcConfig config = OneBucket(4, /*items_per_period=*/2);
  config.alpha = 1.0;
  config.beta = 10.0;
  Ltc table(config);
  // Item 1: frequent but one period. Item 2: one arrival per period.
  for (int i = 0; i < 2; ++i) table.Insert(1);
  for (int p = 0; p < 6; ++p) {
    table.Insert(2);
    table.Insert(3);
  }
  table.Finalize();
  // s(1) = 2 + 10·1 = 12; s(2) = 6 + 10·6 = 66: persistency dominates.
  EXPECT_GT(table.QuerySignificance(2), table.QuerySignificance(1));
  auto top = table.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 2u);
}

TEST(Ltc, TopKTieBreakIsDeterministic) {
  LtcConfig config = OneBucket(4);
  config.beta = 0.0;
  Ltc table(config);
  // Three items, equal frequency: ordering must be by ascending ID.
  for (ItemId id : {30, 10, 20}) {
    table.Insert(id);
    table.Insert(id);
  }
  table.Finalize();
  auto top = table.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 10u);
  EXPECT_EQ(top[1].item, 20u);
  EXPECT_EQ(top[2].item, 30u);
}

TEST(Ltc, MinPlusOnePolicyOverestimatesUnderChurn) {
  // Statistical companion to the unit case: on a Zipf stream the SS-style
  // policy's reports routinely exceed the truth, while kOne's never do.
  Stream stream = MakeZipfStream(30'000, 3'000, 1.0, 30, 41);
  GroundTruth truth = GroundTruth::Compute(stream);

  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.beta = 0.0;
  config.init_policy = InitPolicy::kMinPlusOne;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  Ltc table(config);
  for (const Record& r : stream.records()) table.Insert(r.item, r.time);
  table.Finalize();

  size_t overestimates = 0;
  for (const auto& report : table.TopK(table.num_cells())) {
    if (report.frequency > truth.Frequency(report.item)) ++overestimates;
  }
  EXPECT_GT(overestimates, 10u);
}

TEST(Ltc, SerializeAfterFinalizeRoundTrips) {
  LtcConfig config = OneBucket(4, /*items_per_period=*/3);
  Ltc table(config);
  for (int p = 0; p < 4; ++p) {
    table.Insert(1);
    table.Insert(2);
    table.Insert(1);
  }
  table.Finalize();
  BinaryWriter writer;
  table.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = Ltc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->EstimateFrequency(1), table.EstimateFrequency(1));
  EXPECT_EQ(restored->EstimatePersistency(1),
            table.EstimatePersistency(1));
}

TEST(Ltc, InvariantsHoldThroughRandomChurn) {
  Rng rng(29);
  LtcConfig config;
  config.memory_bytes = 2 * 1024;
  config.items_per_period = 500;
  Ltc table(config);
  for (int i = 0; i < 50'000; ++i) {
    table.Insert(rng.Uniform(2'000) + 1);
    if (i % 5'000 == 0) {
      ASSERT_TRUE(table.CheckInvariants()) << "step " << i;
    }
  }
  table.Finalize();
  EXPECT_TRUE(table.CheckInvariants());
}

TEST(Ltc, PersistentOnlyModeTracksPersistentItems) {
  // α=0, β=1: a persistent drizzle must beat a one-period flood.
  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.alpha = 0.0;
  config.beta = 1.0;
  config.items_per_period = 100;
  Ltc table(config);
  Rng rng(31);
  for (int period = 0; period < 50; ++period) {
    table.Insert(777);  // every period
    if (period == 10) {
      for (int i = 0; i < 99; ++i) table.Insert(888);  // one-period burst
    } else {
      for (int i = 0; i < 99; ++i) table.Insert(rng.Uniform(5'000) + 1);
    }
  }
  table.Finalize();
  EXPECT_GT(table.QuerySignificance(777), table.QuerySignificance(888));
}

}  // namespace
}  // namespace ltc
