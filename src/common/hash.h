// Additional general-purpose hash functions used across the library:
// MurmurHash64A (fast 64-bit mixing for integer keys), FNV-1a (simple
// reference hash used in tests as an "independent" second family), and a
// 64-bit finalizer for building hash families from a single base hash.

#ifndef LTC_COMMON_HASH_H_
#define LTC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace ltc {

/// MurmurHash64A by Austin Appleby (public domain), byte-order safe.
inline uint64_t Murmur64A(const void* data, size_t len, uint64_t seed = 0) {
  constexpr uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;

  uint64_t h = seed ^ (len * kMul);
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + (len & ~size_t{7});

  while (p != end) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    p += 8;
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }

  size_t tail = len & 7;
  uint64_t k = 0;
  for (size_t i = 0; i < tail; ++i) {
    k |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  if (tail != 0) {
    h ^= k;
    h *= kMul;
  }

  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

inline uint64_t Murmur64A(uint64_t key, uint64_t seed = 0) {
  return Murmur64A(&key, sizeof(key), seed);
}

inline uint64_t Murmur64A(std::string_view s, uint64_t seed = 0) {
  return Murmur64A(s.data(), s.size(), seed);
}

/// FNV-1a, 64-bit. Slow but dead simple; used in tests as a structurally
/// different hash to cross-check family independence assumptions.
inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = 0) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(uint64_t key, uint64_t seed = 0) {
  return Fnv1a64(&key, sizeof(key), seed);
}

/// SplitMix64 finalizer: a strong 64->64 bit mixer. Useful to derive
/// per-row seeds from a single master seed.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Reduces a hash value to a bucket index in [0, n) without the modulo
/// bias / cost: Lemire's fastrange.
inline uint32_t FastRange32(uint32_t hash, uint32_t n) {
  return static_cast<uint32_t>((static_cast<uint64_t>(hash) * n) >> 32);
}

inline uint64_t FastRange64(uint64_t hash, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(hash) * n) >> 64);
}

}  // namespace ltc

#endif  // LTC_COMMON_HASH_H_
