// Incremental exact-truth oracle for the LTC family.
//
// GroundTruth (ground_truth.h) computes truth in one batch pass over a
// finished Stream; the differential harness and the LTC_AUDIT hooks need
// the truth DURING the stream, after every arrival, under the exact same
// period definition the sketch under test uses. ExactSignificanceOracle
// is that online counterpart: feed it each arrival (Observe BEFORE the
// matching Insert), and at any moment it answers true frequency,
// persistency and significance per item, plus the true top-k — for both
// count-based and time-based periods, including the documented edge
// behaviours (periods skipped by time gaps, boundary arrivals, and the
// backwards-timestamp clamp, which it mirrors bit-for-bit).
//
// This is the role the exact reference counts play in BPTree's and
// FDCMSS's validation suites: an implementation-independent referee the
// sketch can be diffed against on arbitrary streams.

#ifndef LTC_METRICS_SIGNIFICANCE_ORACLE_H_
#define LTC_METRICS_SIGNIFICANCE_ORACLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/audit.h"
#include "core/ltc.h"

namespace ltc {

class ExactSignificanceOracle : public AuditOracle {
 public:
  /// Period pacing is taken from `config` (period_mode plus
  /// items_per_period / period_seconds); the significance weights default
  /// to the config's α and β but can be overridden per query.
  explicit ExactSignificanceOracle(const LtcConfig& config);

  /// Counts one arrival. Count-based mode ignores `time`; time-based mode
  /// clamps a regressing timestamp to the latest one seen, exactly as
  /// Ltc::Insert does.
  void Observe(ItemId item, double time = 0.0);

  // AuditOracle:
  uint64_t TrueFrequency(ItemId item) const override;
  uint64_t TruePersistency(ItemId item) const override;

  double TrueSignificance(ItemId item) const {
    return TrueSignificance(item, config_.alpha, config_.beta);
  }
  double TrueSignificance(ItemId item, double alpha, double beta) const {
    return alpha * static_cast<double>(TrueFrequency(item)) +
           beta * static_cast<double>(TruePersistency(item));
  }

  bool Contains(ItemId item) const { return items_.count(item) != 0; }

  struct Entry {
    ItemId item;
    uint64_t frequency;
    uint64_t persistency;
    double significance;
  };

  /// True top-k by significance, descending, ties broken by item ID —
  /// same ordering contract as Ltc::TopK.
  std::vector<Entry> TopK(size_t k) const {
    return TopK(k, config_.alpha, config_.beta);
  }
  std::vector<Entry> TopK(size_t k, double alpha, double beta) const;

  /// 0-based period the NEXT arrival will fall into (count-based), or the
  /// period of the latest observed timestamp (time-based).
  uint64_t current_period() const;

  uint64_t total_observed() const { return total_observed_; }
  size_t num_distinct() const { return items_.size(); }

 private:
  struct Info {
    uint64_t frequency = 0;
    uint64_t persistency = 0;
    uint64_t last_period = ~uint64_t{0};  // dedup within a period
  };

  LtcConfig config_;
  std::unordered_map<ItemId, Info> items_;
  uint64_t total_observed_ = 0;
  double last_time_ = 0.0;
};

}  // namespace ltc

#endif  // LTC_METRICS_SIGNIFICANCE_ORACLE_H_
