// The paged sketch store: page codec byte-identity against the v3
// snapshot, WAL record framing and torn-tail semantics, buffer-pool
// pin/dirty/eviction behavior, and SketchStore end-to-end — including
// the acceptance bar that a memory budget smaller than total sketch
// bytes answers queries bit-identically to an unconstrained run.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/ltc.h"
#include "snapshot/failpoint_fs.h"
#include "snapshot/fs.h"
#include "store/buffer_pool.h"
#include "store/disk_manager.h"
#include "store/page.h"
#include "store/recovery.h"
#include "store/sketch_store.h"
#include "store/wal.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace store {
namespace {

LtcConfig SmallConfig() {
  LtcConfig config;
  config.memory_bytes = LtcConfig::BytesPerCell() * 8 * 4;  // w=4, d=8
  config.cells_per_bucket = 8;
  config.items_per_period = 1000;
  return config;
}

std::string SerializedBytes(const Ltc& sketch) {
  BinaryWriter writer;
  sketch.Serialize(writer);
  return writer.data();
}

Ltc SketchWithItems(const LtcConfig& config, uint64_t first, uint64_t count) {
  Ltc sketch(config);
  for (uint64_t i = 0; i < count; ++i) {
    sketch.Insert(first + (i % 7));
  }
  return sketch;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("store_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------- pages

TEST_F(StoreTest, SplitAssembleRoundTripsByteIdentical) {
  Ltc sketch = SketchWithItems(SmallConfig(), 100, 500);
  const std::string payload = SerializedBytes(sketch);
  const size_t m = sketch.num_cells();

  for (size_t page_bytes : {16u, 64u, 4096u}) {
    std::string error;
    const auto pages =
        PageCodec::SplitPayload(payload, m, page_bytes, &error);
    ASSERT_FALSE(pages.empty()) << error;
    EXPECT_EQ(pages.size(), PageCodec::PageCount(m, page_bytes));
    // Page 0 is the config/header region: exactly the bytes before the
    // four SoA lanes (17 bytes per cell).
    EXPECT_EQ(pages[0].size(), payload.size() - 17 * m);
    for (size_t i = 1; i < pages.size(); ++i) {
      EXPECT_LE(pages[i].size(), page_bytes);
      EXPECT_FALSE(pages[i].empty());
    }
    // The tentpole pin: reassembly is byte-identical to the v3 payload.
    EXPECT_EQ(PageCodec::AssemblePayload(pages), payload);
  }
}

TEST_F(StoreTest, SplitPagesAreLaneGranular) {
  Ltc sketch = SketchWithItems(SmallConfig(), 1, 100);
  const std::string payload = SerializedBytes(sketch);
  const size_t m = sketch.num_cells();  // 32 cells
  // page_bytes = 24 does not divide any lane evenly except flags: the
  // ids lane (8*32=256) takes 11 pages, freqs/counters (4*32=128) 6
  // each, flags (32) 2. No page straddles a lane boundary, so lane
  // starts always begin a fresh page.
  const auto pages = PageCodec::SplitPayload(payload, m, 24);
  ASSERT_EQ(pages.size(), 1 + 11 + 6 + 6 + 2);
  EXPECT_EQ(pages[1].size(), 24u);
  EXPECT_EQ(pages[11].size(), 16u);  // ids tail: 256 - 10*24
  EXPECT_EQ(pages[12].size(), 24u);  // freqs lane starts fresh
}

TEST_F(StoreTest, PageFrameRoundTrip) {
  const std::string image = EncodePage(7, 42, "lane bytes");
  const PageDecodeResult decoded = DecodePage(image);
  ASSERT_TRUE(decoded.ok()) << SnapshotErrorName(decoded.error);
  EXPECT_EQ(decoded.page_id, 7u);
  EXPECT_EQ(decoded.lsn, 42u);
  EXPECT_EQ(decoded.payload, "lane bytes");
}

TEST_F(StoreTest, SplitRejectsImpossibleGeometry) {
  std::string error;
  EXPECT_TRUE(PageCodec::SplitPayload("short", 1000, 64, &error).empty());
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------------ WAL

TEST_F(StoreTest, WalRecordRoundTrip) {
  WalRecord record;
  record.lsn = 9;
  record.tenant = 3;
  record.pages.push_back({0, "header page"});
  record.pages.push_back({4, std::string(100, '\x5a')});
  const std::string bytes = EncodeWalRecord(record);

  const WalDecodeResult decoded = DecodeWalRecord(bytes);
  ASSERT_TRUE(decoded.ok()) << SnapshotErrorName(decoded.error);
  EXPECT_EQ(decoded.consumed, bytes.size());
  EXPECT_EQ(decoded.record.lsn, 9u);
  EXPECT_EQ(decoded.record.tenant, 3u);
  ASSERT_EQ(decoded.record.pages.size(), 2u);
  EXPECT_EQ(decoded.record.pages[0].page_id, 0u);
  EXPECT_EQ(decoded.record.pages[0].payload, "header page");
  EXPECT_EQ(decoded.record.pages[1].page_id, 4u);
  EXPECT_EQ(decoded.record.pages[1].payload, std::string(100, '\x5a'));
}

TEST_F(StoreTest, WalReaderTruncatesAtTornTail) {
  WalRecord a{1, 1, {{0, "aaaa"}}};
  WalRecord b{2, 1, {{1, "bbbb"}}};
  WalRecord c{3, 2, {{0, "cccc"}}};
  std::string log = EncodeWalRecord(a) + EncodeWalRecord(b);
  const size_t intact = log.size();
  const std::string third = EncodeWalRecord(c);
  log += third.substr(0, third.size() / 2);  // the torn append

  const WalReadResult walked = ReadWalRecords(log);
  ASSERT_EQ(walked.records.size(), 2u);
  EXPECT_EQ(walked.records[0].lsn, 1u);
  EXPECT_EQ(walked.records[1].lsn, 2u);
  EXPECT_TRUE(walked.torn);
  EXPECT_EQ(walked.valid_bytes, intact);
}

TEST_F(StoreTest, WalReaderCleanEndIsNotTorn) {
  const std::string log =
      EncodeWalRecord({1, 1, {{0, "x"}}}) + EncodeWalRecord({2, 1, {{1, "y"}}});
  const WalReadResult walked = ReadWalRecords(log);
  EXPECT_EQ(walked.records.size(), 2u);
  EXPECT_FALSE(walked.torn);
  EXPECT_EQ(walked.valid_bytes, log.size());
}

// ---------------------------------------------------------- buffer pool

TEST_F(StoreTest, BufferPoolEvictsColdPagesAndReloadsThem) {
  DiskManager disk(SystemFs(), dir_.string());
  BufferPool pool(2, &disk);
  std::string error;
  for (uint32_t page = 0; page < 4; ++page) {
    BufferPool::Frame* frame = pool.Fetch(1, page, true, &error);
    ASSERT_NE(frame, nullptr) << error;
    frame->payload = "page-" + std::to_string(page);
    frame->lsn = page + 1;
    pool.Unpin(frame, /*mark_dirty=*/true);
  }
  EXPECT_LE(pool.resident(), 2u);
  EXPECT_GE(pool.stats().evictions_dirty, 2u);
  // The evicted pages were written back and reload bit-identically.
  for (uint32_t page = 0; page < 4; ++page) {
    BufferPool::Frame* frame = pool.Fetch(1, page, false, &error);
    ASSERT_NE(frame, nullptr) << error;
    EXPECT_EQ(frame->payload, "page-" + std::to_string(page));
    EXPECT_EQ(frame->lsn, page + 1);
    pool.Unpin(frame, false);
  }
}

TEST_F(StoreTest, BufferPoolPinnedFramesAreNeverEvicted) {
  DiskManager disk(SystemFs(), dir_.string());
  BufferPool pool(1, &disk);
  std::string error;
  BufferPool::Frame* pinned = pool.Fetch(1, 0, true, &error);
  ASSERT_NE(pinned, nullptr) << error;
  // The only frame is pinned: a second fetch must fail, not evict.
  EXPECT_EQ(pool.Fetch(1, 1, true, &error), nullptr);
  EXPECT_NE(error.find("pinned"), std::string::npos) << error;
  pool.Unpin(pinned, false);
  BufferPool::Frame* second = pool.Fetch(1, 1, true, &error);
  ASSERT_NE(second, nullptr) << error;
  pool.Unpin(second, false);
}

TEST_F(StoreTest, BufferPoolFlushDirtyWritesBackAndCleans) {
  DiskManager disk(SystemFs(), dir_.string());
  BufferPool pool(4, &disk);
  std::string error;
  BufferPool::Frame* frame = pool.Fetch(9, 2, true, &error);
  ASSERT_NE(frame, nullptr) << error;
  frame->payload = "dirty bytes";
  frame->lsn = 5;
  pool.Unpin(frame, /*mark_dirty=*/true);
  EXPECT_EQ(pool.dirty_count(), 1u);
  ASSERT_TRUE(pool.FlushDirty(&error)) << error;
  EXPECT_EQ(pool.dirty_count(), 0u);

  auto loaded = disk.Load(9, 2, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_TRUE(loaded->found);
  EXPECT_EQ(loaded->payload, "dirty bytes");
  EXPECT_EQ(loaded->lsn, 5u);
}

// ---------------------------------------------------------- sketch store

TEST_F(StoreTest, PutGetRoundTripsBitIdentical) {
  std::string error;
  auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(store, nullptr) << error;
  Ltc sketch = SketchWithItems(SmallConfig(), 10, 800);
  ASSERT_TRUE(store->Put(1, sketch, &error)) << error;

  auto back = store->Get(1, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(SerializedBytes(*back), SerializedBytes(sketch));
  EXPECT_EQ(back->TopK(5).size(), sketch.TopK(5).size());
}

TEST_F(StoreTest, UnchangedPutWritesNothing) {
  std::string error;
  auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(store, nullptr) << error;
  Ltc sketch = SketchWithItems(SmallConfig(), 10, 300);
  ASSERT_TRUE(store->Put(1, sketch, &error)) << error;
  const uint64_t wal_bytes_after_first = store->stats().wal_bytes;
  ASSERT_TRUE(store->Put(1, sketch, &error)) << error;
  EXPECT_EQ(store->stats().wal_bytes, wal_bytes_after_first);
  EXPECT_EQ(store->stats().clean_puts, 1u);
}

TEST_F(StoreTest, IncrementalPutLogsOnlyChangedPages) {
  SketchStoreOptions options;
  options.page_bytes = 64;
  std::string error;
  auto store = SketchStore::Open(SystemFs(), dir_.string(), options, &error);
  ASSERT_NE(store, nullptr) << error;

  Ltc sketch = SketchWithItems(SmallConfig(), 10, 500);
  ASSERT_TRUE(store->Put(1, sketch, &error)) << error;
  const uint64_t full_image_bytes = store->stats().wal_bytes;

  // A single extra arrival touches one cell: the delta record must be
  // much smaller than the full image (one page per lane at most, plus
  // the header page).
  sketch.Insert(10);
  ASSERT_TRUE(store->Put(1, sketch, &error)) << error;
  const uint64_t delta_bytes = store->stats().wal_bytes - full_image_bytes;
  EXPECT_LT(delta_bytes, full_image_bytes / 2)
      << "incremental Put logged " << delta_bytes << " of "
      << full_image_bytes;
}

TEST_F(StoreTest, TinyBudgetAnswersIdenticallyToUnconstrained) {
  // The acceptance bar: many tenants under a budget smaller than total
  // sketch bytes behave bit-identically to an unconstrained run.
  const std::filesystem::path tiny_dir = dir_ / "tiny";
  const std::filesystem::path big_dir = dir_ / "big";
  std::filesystem::create_directories(tiny_dir);
  std::filesystem::create_directories(big_dir);

  SketchStoreOptions tiny_options;
  tiny_options.page_bytes = 64;
  tiny_options.mem_budget_bytes = 64 * 3;  // three frames for ~20 pages
  SketchStoreOptions big_options;
  big_options.page_bytes = 64;
  big_options.mem_budget_bytes = 64 << 20;

  std::string error;
  auto tiny = SketchStore::Open(SystemFs(), tiny_dir.string(), tiny_options,
                                &error);
  ASSERT_NE(tiny, nullptr) << error;
  auto big =
      SketchStore::Open(SystemFs(), big_dir.string(), big_options, &error);
  ASSERT_NE(big, nullptr) << error;

  const uint64_t kTenants = 4;
  std::vector<Ltc> oracles;
  for (uint64_t t = 0; t < kTenants; ++t) {
    oracles.push_back(Ltc(SmallConfig()));
  }
  for (int round = 0; round < 3; ++round) {
    for (uint64_t t = 0; t < kTenants; ++t) {
      for (int i = 0; i < 200; ++i) {
        // +1: ItemId 0 is the reserved empty-cell marker.
        oracles[t].Insert(1000 * t + (i % (5 + t)) + 1);
      }
      ASSERT_TRUE(tiny->Put(t, oracles[t], &error)) << error;
      ASSERT_TRUE(big->Put(t, oracles[t], &error)) << error;
    }
  }
  EXPECT_GT(tiny->pool().stats().evictions_dirty +
                tiny->pool().stats().evictions_clean,
            0u)
      << "budget was not actually constraining";
  for (uint64_t t = 0; t < kTenants; ++t) {
    auto from_tiny = tiny->Get(t, &error);
    ASSERT_TRUE(from_tiny.has_value()) << error;
    auto from_big = big->Get(t, &error);
    ASSERT_TRUE(from_big.has_value()) << error;
    const std::string oracle_bytes = SerializedBytes(oracles[t]);
    EXPECT_EQ(SerializedBytes(*from_tiny), oracle_bytes) << "tenant " << t;
    EXPECT_EQ(SerializedBytes(*from_big), oracle_bytes) << "tenant " << t;
    // And the queries the store exists for agree too.
    const auto tiny_top = from_tiny->TopK(5);
    const auto big_top = from_big->TopK(5);
    ASSERT_EQ(tiny_top.size(), big_top.size());
    for (size_t i = 0; i < tiny_top.size(); ++i) {
      EXPECT_EQ(tiny_top[i].item, big_top[i].item);
      EXPECT_EQ(tiny_top[i].significance, big_top[i].significance);
    }
  }
}

TEST_F(StoreTest, ReopenAfterCheckpointServesSameBytes) {
  std::string error;
  Ltc sketch = SketchWithItems(SmallConfig(), 42, 600);
  {
    auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Put(5, sketch, &error)) << error;
    ASSERT_TRUE(store->CheckpointDirty(&error)) << error;
    EXPECT_FALSE(SystemFs().Exists((dir_ / "wal.log").string()));
  }
  auto reopened = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_FALSE(reopened->recovery().wal_found);
  auto back = reopened->Get(5, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(SerializedBytes(*back), SerializedBytes(sketch));
}

TEST_F(StoreTest, ReopenWithoutCheckpointReplaysWal) {
  std::string error;
  Ltc sketch = SketchWithItems(SmallConfig(), 42, 600);
  {
    auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Put(5, sketch, &error)) << error;
    // No checkpoint: the only durable copy of the update is the WAL.
  }
  auto reopened = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_TRUE(reopened->recovery().wal_found);
  EXPECT_GT(reopened->recovery().deltas_applied, 0u);
  auto back = reopened->Get(5, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(SerializedBytes(*back), SerializedBytes(sketch));
}

TEST_F(StoreTest, GarbageWalTailIsEndOfLogNotAnError) {
  std::string error;
  Ltc sketch = SketchWithItems(SmallConfig(), 7, 400);
  {
    auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Put(1, sketch, &error)) << error;
  }
  // A torn append: garbage after the last intact record.
  ASSERT_TRUE(
      SystemFs().AppendAll((dir_ / "wal.log").string(), "torn-garbage"));

  auto reopened = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_TRUE(reopened->recovery().torn_tail);
  auto back = reopened->Get(1, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(SerializedBytes(*back), SerializedBytes(sketch));
}

TEST_F(StoreTest, TornWriteCrashFaultIsEndOfLogNotAnError) {
  // The FailpointFs torn-sector fault: a WAL append persists a strict
  // prefix and the process dies. RecoveryManager must treat the torn
  // record as end-of-log — the interrupted Put simply never happened.
  FailpointFs fs(SystemFs());
  std::string error;
  Ltc sketch = SketchWithItems(SmallConfig(), 7, 400);
  auto store = SketchStore::Open(fs, dir_.string(), {}, &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->Put(1, sketch, &error)) << error;
  const std::string acked = SerializedBytes(sketch);

  sketch.Insert(7);
  fs.Arm(FailpointFs::Failure::kTornWriteCrash, fs.mutating_ops(),
         /*seed=*/17);
  EXPECT_FALSE(store->Put(1, sketch, &error));
  EXPECT_TRUE(fs.crashed());

  // "Reboot" on the clean filesystem.
  auto reopened = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(reopened, nullptr)
      << "a torn tail must not fail recovery: " << error;
  EXPECT_TRUE(reopened->recovery().torn_tail);
  auto back = reopened->Get(1, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(SerializedBytes(*back), acked);
}

TEST_F(StoreTest, RecoveryHealsFlippedPageFileFromWal) {
  std::string error;
  Ltc sketch = SketchWithItems(SmallConfig(), 3, 500);
  {
    auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Put(2, sketch, &error)) << error;
    // Write the pages back but KEEP the WAL (no checkpoint).
    ASSERT_TRUE(store->EvictTenant(2, &error)) << error;
  }
  // Media corruption on one page image.
  const std::string victim = (dir_ / "t2.p1.pg").string();
  auto bytes = SystemFs().ReadAll(victim);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] ^= 0x01;
  ASSERT_TRUE(SystemFs().WriteAll(victim, *bytes));

  auto reopened = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_EQ(reopened->recovery().corrupt_pages, 1u);
  EXPECT_GT(reopened->recovery().deltas_applied, 0u);
  auto back = reopened->Get(2, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(SerializedBytes(*back), SerializedBytes(sketch));
}

TEST_F(StoreTest, GeometryChangeIsRejected) {
  std::string error;
  auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->Put(1, Ltc(SmallConfig()), &error)) << error;

  LtcConfig bigger = SmallConfig();
  bigger.memory_bytes *= 4;
  EXPECT_FALSE(store->Put(1, Ltc(bigger), &error));
  EXPECT_NE(error.find("geometry"), std::string::npos) << error;
}

TEST_F(StoreTest, UnknownTenantIsATypedError) {
  std::string error;
  auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_FALSE(store->Get(99, &error).has_value());
  EXPECT_NE(error.find("unknown tenant"), std::string::npos);
}

TEST_F(StoreTest, StoreMetricsAreExposed) {
  std::string error;
  auto store = SketchStore::Open(SystemFs(), dir_.string(), {}, &error);
  ASSERT_NE(store, nullptr) << error;
  telemetry::MetricsRegistry registry;
  store->AttachMetrics(&registry);
  ASSERT_TRUE(store->Put(1, SketchWithItems(SmallConfig(), 1, 200), &error))
      << error;
  ASSERT_TRUE(store->CheckpointDirty(&error)) << error;
  const std::string text = telemetry::ExpositionText(registry);
  for (const char* family :
       {"ltc_store_pages_in_total", "ltc_store_pages_out_total",
        "ltc_store_page_hits_total", "ltc_store_page_misses_total",
        "ltc_store_evictions_total", "ltc_store_wal_records_total",
        "ltc_store_wal_bytes_total", "ltc_store_checkpoints_total",
        "ltc_store_replay_deltas_total", "ltc_store_replay_torn_tails_total",
        "ltc_store_corrupt_pages_total", "ltc_store_tenants",
        "ltc_store_frames_resident", "ltc_store_frames_dirty",
        "ltc_store_checkpoint_duration_usec",
        "ltc_store_checkpoint_dirty_pages"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

}  // namespace
}  // namespace store
}  // namespace ltc
