// Fig. 8 — the Long-tail Replacement ablation (§V-D), Network dataset,
// k = 1000:
// (a) precision vs memory 50–300 KB at α=1, β=1;
// (b) precision vs parameter mix α:β ∈ {1:0, 1:1, 10:1, 1:10} at 50 KB.
// Also reports a third initializer (Space-Saving's f_min+1 analogue is
// what the decrement scheme replaces; here the contrast is init=1 vs the
// second-smallest−1 rule).

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kK = 1000;

double Precision(const Dataset& data, size_t memory_bytes, double alpha,
                 double beta, bool ltr) {
  LtcConfig config;
  config.memory_bytes = memory_bytes;
  config.alpha = alpha;
  config.beta = beta;
  config.long_tail_replacement = ltr;
  LtcReporter reporter(config, data.stream.num_periods(),
                       data.stream.duration());
  return RunReporter(reporter, data.stream, data.truth, kK, alpha, beta)
      .eval.precision;
}

}  // namespace

void Run() {
  Dataset network = LoadNetwork();

  TextTable by_memory({"memoryKB", "Y(with LTR)", "N(basic init)"});
  for (size_t kb : {50, 100, 150, 200, 250, 300}) {
    by_memory.AddRow(
        {std::to_string(kb),
         FormatMetric(Precision(network, kb * 1024, 1.0, 1.0, true)),
         FormatMetric(Precision(network, kb * 1024, 1.0, 1.0, false))});
  }
  PrintFigure(
      "Fig 8(a): Long-tail Replacement ablation, precision vs memory "
      "(Network, a=1 b=1, k=1000)",
      by_memory);

  TextTable by_params({"alpha:beta", "Y(with LTR)", "N(basic init)"});
  const std::vector<std::pair<double, double>> mixes = {
      {1.0, 0.0}, {1.0, 1.0}, {10.0, 1.0}, {1.0, 10.0}};
  for (auto [alpha, beta] : mixes) {
    std::string label = std::to_string(static_cast<int>(alpha)) + ":" +
                        std::to_string(static_cast<int>(beta));
    by_params.AddRow(
        {label,
         FormatMetric(Precision(network, 50 * 1024, alpha, beta, true)),
         FormatMetric(Precision(network, 50 * 1024, alpha, beta, false))});
  }
  PrintFigure(
      "Fig 8(b): Long-tail Replacement ablation, precision vs parameters "
      "(Network, 50KB, k=1000)",
      by_params);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
