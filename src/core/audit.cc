#include "core/audit.h"

#include <cstdio>
#include <cstdlib>

namespace ltc {
namespace {

void DefaultAuditFailureHandler(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

AuditFailureHandler g_handler = &DefaultAuditFailureHandler;

}  // namespace

AuditFailureHandler SetAuditFailureHandler(AuditFailureHandler handler) {
  AuditFailureHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &DefaultAuditFailureHandler;
  return previous;
}

void AuditFail(const char* structure, const char* invariant,
               const std::string& detail) {
  std::string message;
  message.reserve(64 + detail.size());
  message += "LTC_AUDIT violation [";
  message += structure;
  message += " / ";
  message += invariant;
  message += "]: ";
  message += detail;
  g_handler(message);
}

}  // namespace ltc
