#!/usr/bin/env python3
"""Validates BENCH_*.json perf-trajectory documents (docs/PERF.md).

Usage: validate_bench_json.py FILE [FILE...]

Checks every file against the versioned header schema emitted by
bench/bench_common.{h,cc} (schema_version 1) plus the per-benchmark
result shape, and exits non-zero on the first violation — the CI
bench-trajectory step runs this before committing the artifacts, so a
malformed or header-less document can never land in bench/trajectory/.
"""

import json
import re
import sys

SCHEMA_VERSION = 1
PROBE_BACKENDS = {"scalar", "sse2", "avx2"}
TIMESTAMP_RE = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$")


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def require(doc, path, field, kind):
    if field not in doc:
        fail(path, f"missing header field '{field}'")
    if not isinstance(doc[field], kind):
        fail(path, f"header field '{field}' is not {kind.__name__}")
    return doc[field]


def check_header(doc, path):
    version = require(doc, path, "schema_version", int)
    if version != SCHEMA_VERSION:
        fail(path, f"schema_version {version} != expected {SCHEMA_VERSION}")
    require(doc, path, "benchmark", str)
    if not require(doc, path, "git_sha", str):
        fail(path, "git_sha is empty")
    stamp = require(doc, path, "timestamp_utc", str)
    if not TIMESTAMP_RE.match(stamp):
        fail(path, f"timestamp_utc '{stamp}' is not ISO 8601 UTC")
    if require(doc, path, "hardware_threads", int) < 1:
        fail(path, "hardware_threads < 1")
    if not require(doc, path, "build_flags", str):
        fail(path, "build_flags is empty")
    backend = require(doc, path, "probe_backend", str)
    if backend not in PROBE_BACKENDS:
        fail(path, f"unknown probe_backend '{backend}'")


def check_bench_speed(doc, path):
    probe = require(doc, path, "probe_throughput", list)
    if not probe:
        fail(path, "probe_throughput is empty")
    backends = set()
    for entry in probe:
        if not isinstance(entry, dict):
            fail(path, "probe_throughput entry is not an object")
        backend = entry.get("backend")
        if backend not in PROBE_BACKENDS:
            fail(path, f"probe_throughput backend '{backend}' unknown")
        if not isinstance(entry.get("insert_mops"), (int, float)):
            fail(path, f"probe_throughput[{backend}] missing insert_mops")
        backends.add(backend)
    if "scalar" not in backends:
        fail(path, "probe_throughput lacks the scalar baseline")
    guard = require(doc, path, "sink_guard", dict)
    for field in ("sink_off_mops", "sink_on_mops", "overhead_pct"):
        if not isinstance(guard.get(field), (int, float)):
            fail(path, f"sink_guard missing numeric '{field}'")
    if not isinstance(guard.get("sink_compiled"), bool):
        fail(path, "sink_guard missing boolean 'sink_compiled'")


def check_bench_ingest(doc, path):
    results = require(doc, path, "results", list)
    if not results:
        fail(path, "results is empty")
    modes = set()
    for entry in results:
        if not isinstance(entry, dict):
            fail(path, "results entry is not an object")
        for field, kind in (("mode", str), ("shards", int)):
            if not isinstance(entry.get(field), kind):
                fail(path, f"results entry missing {kind.__name__} '{field}'")
        if not isinstance(entry.get("mops"), (int, float)):
            fail(path, "results entry missing numeric 'mops'")
        modes.add(entry["mode"])
    for mode in ("single_ltc_batch", "sharded_sequential", "pipeline"):
        if mode not in modes:
            fail(path, f"results lack mode '{mode}'")
    # The incremental-vs-monolithic checkpoint section is optional
    # (older trajectory files predate it) but, when present, must carry
    # both modes with numeric byte/time fields.
    if "checkpoint" in doc:
        rows = doc["checkpoint"]
        if not isinstance(rows, list) or not rows:
            fail(path, "'checkpoint' is not a non-empty list")
        ckpt_modes = set()
        for entry in rows:
            if not isinstance(entry, dict):
                fail(path, "checkpoint entry is not an object")
            if not isinstance(entry.get("mode"), str):
                fail(path, "checkpoint entry missing str 'mode'")
            for field in ("checkpoints", "bytes_written", "wall_usec",
                          "bytes_per_checkpoint"):
                if not isinstance(entry.get(field), (int, float)):
                    fail(path, f"checkpoint entry missing numeric '{field}'")
            ckpt_modes.add(entry["mode"])
        for mode in ("monolithic_snapshot", "paged_incremental"):
            if mode not in ckpt_modes:
                fail(path, f"checkpoint section lacks mode '{mode}'")


CHECKS = {
    "bench_speed": check_bench_speed,
    "bench_ingest": check_bench_ingest,
}


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            fail(path, f"unreadable or invalid JSON: {err}")
        check_header(doc, path)
        benchmark = doc["benchmark"]
        if benchmark not in CHECKS:
            fail(path, f"unknown benchmark '{benchmark}'")
        CHECKS[benchmark](doc, path)
        print(f"{path}: ok ({benchmark}, schema v{doc['schema_version']}, "
              f"probe {doc['probe_backend']}, sha {doc['git_sha']})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
