#!/usr/bin/env bash
# Drift check between a live exposition and the metric catalog in
# docs/TELEMETRY.md: every family a real run emits must be documented,
# and every documented family must show up in some provided exposition
# (unless listed in ALLOW_ABSENT below — families only exercised by
# runs the calling CI step doesn't do). Catches both failure modes of
# metric documentation: the metric nobody wrote down, and the doc row
# for a metric that quietly stopped existing.
#
# usage: check_metrics_catalog.sh EXPOSITION.prom [MORE.prom...]
#
# Doc rows may name several families at once — brace groups expand
# (`ltc_ingest_{enqueued,dropped}_total` -> two families) and label
# sets (`{shard=N}`, `{case=tracked\|admitted}`) are stripped.
set -u

DOC="$(dirname "$0")/../docs/TELEMETRY.md"
[ -r "$DOC" ] || { echo "check_metrics_catalog: no $DOC" >&2; exit 2; }
[ $# -ge 1 ] || {
  echo "usage: check_metrics_catalog.sh EXPOSITION.prom [MORE...]" >&2
  exit 2
}

fail=0

# Families documented but not expected from the files this run checks.
# Keep this list SHRINKING: a family here is documented and real, just
# not exercised by the calling CI step's processes.
ALLOW_ABSENT="
ltc_server_requests_total
ltc_server_errors_total
ltc_server_request_duration_usec
ltc_server_connections_opened_total
ltc_server_connections_rejected_total
ltc_server_connections_open
ltc_server_connections_idle_closed_total
ltc_server_snapshot_seq
ltc_server_bytes_read_total
ltc_server_bytes_written_total
ltc_push_attempts_total
ltc_push_retries_total
ltc_push_delivered_total
ltc_push_rejected_total
ltc_agg_merges_total
ltc_agg_pushes_duplicate_total
ltc_agg_pushes_rejected_total
ltc_agg_nodes
ltc_agg_node_staleness_sec
ltc_snapshot_saves_total
ltc_snapshot_save_retries_total
ltc_snapshot_bytes
ltc_snapshot_save_duration_usec
ltc_snapshot_recovery_walkback_depth
ltc_snapshot_load_errors_total
ltc_trace_exemplar_duration_usec
ltc_store_pages_in_total
ltc_store_pages_out_total
ltc_store_page_hits_total
ltc_store_page_misses_total
ltc_store_evictions_total
ltc_store_wal_records_total
ltc_store_wal_bytes_total
ltc_store_checkpoints_total
ltc_store_replay_deltas_total
ltc_store_replay_torn_tails_total
ltc_store_corrupt_pages_total
ltc_store_tenants
ltc_store_frames_resident
ltc_store_frames_dirty
ltc_store_checkpoint_duration_usec
ltc_store_checkpoint_dirty_pages
"

# --- documented families: backticked ltc_* tokens in catalog rows. ----
# A catalog row is `| <families> | counter/gauge/histogram | meaning |`;
# only the first cell is mined, so prose tables (e.g. the span-name
# table) can mention metrics or tools without being counted.
doc_families=$(
  sed 's/\\|/;/g' "$DOC" \
    | awk -F'|' '$3 ~ /^[[:space:]]*(counter|gauge|histogram)[[:space:]]*$/ \
                   {print $2}' \
    | grep -oE '`ltc_[^`]+`' \
    | tr -d '`' \
    | tr -d '\\' \
    | sed -E 's/\{[^{}]*=[^{}]*\}//g' \
    | while read -r token; do
        # Expand metric-name brace groups ({a,b,c}); tokens are
        # validated first so the eval cannot run anything.
        if echo "$token" | grep -qE '^[a-z0-9_{},]+$'; then
          eval "printf '%s\n' $token"
        else
          echo "check_metrics_catalog: unexpandable doc token '$token'" >&2
          exit 3
        fi
      done \
    | sort -u
) || exit 3

# --- live families: TYPE lines across every given exposition. ---------
live_families=$(
  for file in "$@"; do
    [ -r "$file" ] || {
      echo "check_metrics_catalog: cannot read '$file'" >&2
      exit 2
    }
    grep -E '^# TYPE ltc_' "$file" | awk '{print $3}'
  done | sort -u
) || exit 2

# --- direction 1: emitted but undocumented. ---------------------------
for family in $live_families; do
  if ! echo "$doc_families" | grep -qx "$family"; then
    echo "check_metrics_catalog: '$family' is emitted but missing from" \
      "docs/TELEMETRY.md's catalog" >&2
    fail=1
  fi
done

# --- direction 2: documented but never emitted. -----------------------
for family in $doc_families; do
  echo "$ALLOW_ABSENT" | grep -qx "$family" && continue
  if ! echo "$live_families" | grep -qx "$family"; then
    echo "check_metrics_catalog: documented family '$family' appears in" \
      "no given exposition (stale doc row, or add it to ALLOW_ABSENT" \
      "with the CI step that does exercise it)" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  doc_n=$(echo "$doc_families" | grep -c .)
  live_n=$(echo "$live_families" | grep -c .)
  echo "check_metrics_catalog: OK ($live_n live families, $doc_n documented)"
fi
exit "$fail"
