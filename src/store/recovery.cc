#include "store/recovery.h"

#include <algorithm>
#include <utility>

#include "store/page.h"
#include "store/wal.h"

namespace ltc {
namespace store {

bool RecoveryManager::Run(RecoveryReport* report, std::string* error) {
  RecoveryReport local;
  RecoveryReport& out = report != nullptr ? *report : local;
  out = RecoveryReport{};

  // 1. What is on disk, and at which LSN? A page file that fails its
  // frame checks reads as LSN 0: if the log still holds its delta the
  // rewrite below heals it, otherwise it stays corrupt and Get()
  // reports it as a typed error.
  auto listed = disk_.ListPages(error);
  if (!listed.has_value()) return false;
  out.tenant_pages = std::move(*listed);
  std::map<std::pair<uint64_t, uint32_t>, uint64_t> disk_lsn;
  for (const auto& [tenant, pages] : out.tenant_pages) {
    for (uint32_t page : pages) {
      uint64_t lsn = 0;
      auto image = disk_.fs().ReadAll(disk_.PagePath(tenant, page));
      if (image.has_value()) {
        PageDecodeResult decoded = DecodePage(*image);
        if (decoded.ok()) {
          lsn = decoded.lsn;
        } else {
          ++out.corrupt_pages;
        }
      } else {
        ++out.corrupt_pages;
      }
      disk_lsn[{tenant, page}] = lsn;
      out.max_lsn = std::max(out.max_lsn, lsn);
    }
  }

  // 2. The log, truncated at the first bad frame.
  const std::string wal_path = disk_.WalPath();
  auto log = disk_.fs().ReadAll(wal_path);
  if (!log.has_value()) {
    if (disk_.fs().Exists(wal_path)) {
      if (error != nullptr) {
        *error = "cannot read WAL '" + wal_path + "'";
      }
      return false;
    }
    return true;  // no log: the store was checkpointed clean
  }
  out.wal_found = true;
  out.wal_bytes = log->size();
  WalReadResult walked = ReadWalRecords(*log);
  out.torn_tail = walked.torn;
  out.records = walked.records.size();

  // 3. Redo. Later records supersede earlier ones for the same page;
  // applying in order with the LSN test writes each page at most once
  // per distinct surviving image, and a mid-replay crash simply
  // replays the same decisions next open.
  std::map<std::pair<uint64_t, uint32_t>, const WalRecord*> newest;
  for (const WalRecord& record : walked.records) {
    out.max_lsn = std::max(out.max_lsn, record.lsn);
    for (const WalPageDelta& delta : record.pages) {
      newest[{record.tenant, delta.page_id}] = &record;
    }
  }
  for (const auto& [key, record] : newest) {
    const auto& [tenant, page_id] = key;
    auto it = disk_lsn.find(key);
    const uint64_t on_disk = it == disk_lsn.end() ? 0 : it->second;
    if (record->lsn <= on_disk && it != disk_lsn.end()) {
      ++out.deltas_stale;
      continue;
    }
    const WalPageDelta* delta = nullptr;
    for (const WalPageDelta& candidate : record->pages) {
      if (candidate.page_id == page_id) delta = &candidate;
    }
    if (!disk_.Store(tenant, page_id, record->lsn, delta->payload, error)) {
      return false;  // WAL kept: the next open retries the replay
    }
    ++out.deltas_applied;
    auto& pages = out.tenant_pages[tenant];
    if (std::find(pages.begin(), pages.end(), page_id) == pages.end()) {
      pages.push_back(page_id);
    }
  }

  // 4. Everything the log said is now durable in the page files;
  // retire it. A crash before the Remove lands replays harmlessly.
  if (!disk_.fs().Remove(wal_path)) {
    if (error != nullptr) {
      *error = "cannot remove replayed WAL '" + wal_path + "'";
    }
    return false;
  }
  if (!disk_.fs().SyncDir(disk_.dir())) {
    if (error != nullptr) {
      *error = "cannot fsync store directory '" + disk_.dir() + "'";
    }
    return false;
  }
  return true;
}

}  // namespace store
}  // namespace ltc
