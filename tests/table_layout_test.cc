// Layout-equivalence suite for the SoA bucket probe
// (core/table_layout.h): every vector backend must agree bit-for-bit
// with the scalar reference on every bucket content — matches,
// duplicates, empties, and the d>64 mask-width fallback — and a whole
// table driven under a forced backend must serialize byte-identically
// to the scalar-driven twin. Runs under asan and the LTC_AUDIT build
// like the rest of the unit label.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/ltc.h"
#include "core/table_layout.h"
#include "stream/generators.h"

namespace ltc {
namespace {

std::vector<ProbeBackend> SupportedBackends() {
  std::vector<ProbeBackend> backends = {ProbeBackend::kScalar};
  for (ProbeBackend simd : {ProbeBackend::kSse2, ProbeBackend::kAvx2}) {
    if (SetProbeBackend(simd) == simd) backends.push_back(simd);
  }
  SetProbeBackend(BestSupportedProbeBackend());
  return backends;
}

// Restores the default dispatch after a test that forces a backend, so
// test order can never leak a forced backend into another test.
class TableLayoutTest : public ::testing::Test {
 protected:
  ~TableLayoutTest() override {
    SetProbeBackend(BestSupportedProbeBackend());
  }
};

TEST_F(TableLayoutTest, ProbeFindsLowestMatchAndLowestEmpty) {
  // Hand-built edge cases: leading empty, duplicate IDs, full bucket,
  // all-empty, key-at-every-position.
  const std::vector<ProbeBackend> backends = SupportedBackends();
  struct Case {
    std::vector<uint64_t> ids;
    uint64_t key;
    int32_t match;
    int32_t empty;
  };
  const Case cases[] = {
      {{0, 0, 0, 0}, 7, -1, 0},              // all empty
      {{5, 6, 7, 8}, 7, 2, -1},              // full, key present
      {{5, 6, 9, 8}, 7, -1, -1},             // full, key absent
      {{0, 7, 0, 7}, 7, 1, 0},               // duplicates + empties:
                                             //   both lowest indices win
      {{7, 7, 7, 7}, 7, 0, -1},              // all duplicates
      {{9, 0, 7, 0}, 7, 2, 1},               // interleaved
      {{7}, 7, 0, -1},                       // d = 1
      {{0}, 7, -1, 0},
      {{1, 2, 3}, 7, -1, -1},                // odd d (vector tail)
      {{1, 2, 7}, 7, 2, -1},
      {{0x8000000000000007ULL, 7}, 7, 1, -1},  // high-bit ID (signed
                                               //   compare trap)
  };
  for (const Case& c : cases) {
    for (ProbeBackend backend : backends) {
      BucketProbe probe = internal::ProbeIds(
          c.ids.data(), static_cast<uint32_t>(c.ids.size()), c.key, backend);
      EXPECT_EQ(probe.match, c.match)
          << ProbeBackendName(backend) << " d=" << c.ids.size();
      EXPECT_EQ(probe.empty, c.empty)
          << ProbeBackendName(backend) << " d=" << c.ids.size();
    }
  }
}

TEST_F(TableLayoutTest, RandomizedBucketsAgreeAcrossBackends) {
  // Randomized buckets at every interesting width, including the paper's
  // d range (1..32), vector-boundary widths, and past the 64-cell mask
  // fallback. A small ID alphabet forces frequent duplicates and
  // empties; the scalar result is the reference.
  const std::vector<ProbeBackend> backends = SupportedBackends();
  std::mt19937_64 rng(20260809);
  for (uint32_t d : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 12u, 16u, 31u, 32u, 33u,
                     64u, 65u, 96u}) {
    std::uniform_int_distribution<uint64_t> id_dist(0, 6);
    std::vector<uint64_t> ids(d);
    for (int trial = 0; trial < 200; ++trial) {
      for (auto& id : ids) id = id_dist(rng);
      const uint64_t key = id_dist(rng) == 0 ? 0x12345 : id_dist(rng);
      BucketProbe reference = internal::ProbeIds(ids.data(), d, key,
                                                 ProbeBackend::kScalar);
      for (ProbeBackend backend : backends) {
        BucketProbe probe = internal::ProbeIds(ids.data(), d, key, backend);
        EXPECT_EQ(probe.match, reference.match)
            << ProbeBackendName(backend) << " d=" << d << " trial=" << trial;
        EXPECT_EQ(probe.empty, reference.empty)
            << ProbeBackendName(backend) << " d=" << d << " trial=" << trial;
      }
    }
  }
}

TEST_F(TableLayoutTest, DispatchHonorsSupportedRequestsAndIgnoresOthers) {
  const ProbeBackend best = BestSupportedProbeBackend();
  // Scalar is always available.
  EXPECT_EQ(SetProbeBackend(ProbeBackend::kScalar), ProbeBackend::kScalar);
  EXPECT_EQ(ActiveProbeBackend(), ProbeBackend::kScalar);
  // Requesting the best supported backend activates it; requesting
  // something beyond it leaves the active choice untouched.
  EXPECT_EQ(SetProbeBackend(best), best);
  if (best != ProbeBackend::kAvx2) {
    EXPECT_EQ(SetProbeBackend(ProbeBackend::kAvx2), best);
    EXPECT_EQ(ActiveProbeBackend(), best);
  }
}

TEST_F(TableLayoutTest, BackendNamesAreStable) {
  // The names are part of the BENCH_*.json schema (docs/PERF.md).
  EXPECT_STREQ(ProbeBackendName(ProbeBackend::kScalar), "scalar");
  EXPECT_STREQ(ProbeBackendName(ProbeBackend::kSse2), "sse2");
  EXPECT_STREQ(ProbeBackendName(ProbeBackend::kAvx2), "avx2");
}

TEST_F(TableLayoutTest, CellRefViewsShareTheUnderlyingLanes) {
  TableLayout table(/*num_buckets=*/4, /*cells_per_bucket=*/8);
  EXPECT_EQ(table.num_cells(), 32u);
  BucketView bucket = table.bucket(2);
  CellRef cell = bucket.cell(3);
  cell.set_id(42);
  cell.set_freq(7);
  cell.set_counter(5);
  cell.set_flags(0x3);
  // Flat indexing aliases bucket-major order.
  ConstCellRef flat = std::as_const(table).cell(2 * 8 + 3);
  EXPECT_EQ(flat.id(), 42u);
  EXPECT_EQ(flat.freq(), 7u);
  EXPECT_EQ(flat.counter(), 5u);
  EXPECT_EQ(flat.flags(), 0x3);
  // The probe sees the write through the same lanes.
  BucketProbe probe = bucket.Probe(42);
  EXPECT_EQ(probe.match, 3);
  EXPECT_EQ(probe.empty, 0);
  cell.Clear();
  EXPECT_EQ(table.bucket(2).Probe(42).match, -1);
}

TEST_F(TableLayoutTest, WholeTableIsBackendInvariant) {
  // End-to-end: the same stream driven under each backend must produce a
  // byte-identical checkpoint — the probe choice can never leak into
  // table state. This is the in-repo half of the CI forced-scalar gate
  // (the other half re-runs the differential suite with LTC_PROBE=scalar).
  Stream stream = MakeZipfStream(30'000, 3'000, 1.0, 30, 7);
  LtcConfig config;
  config.memory_bytes = 4 * 1024;  // small table => Case 3 is exercised

  std::string reference;
  for (ProbeBackend backend : SupportedBackends()) {
    ASSERT_EQ(SetProbeBackend(backend), backend);
    Ltc table(config);
    table.InsertBatch(stream.records());
    table.Finalize();
    BinaryWriter writer;
    table.Serialize(writer);
    if (reference.empty()) {
      reference = writer.data();  // scalar comes first in the list
    } else {
      EXPECT_EQ(writer.data(), reference)
          << "backend " << ProbeBackendName(backend)
          << " diverged from scalar";
    }
  }
}

}  // namespace
}  // namespace ltc
