// Unit and property tests for the counter-based summaries: Space-Saving
// (with its Stream-Summary invariants), Lossy Counting, and Misra-Gries.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "summary/lossy_counting.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"

namespace ltc {
namespace {

std::vector<ItemId> ZipfItems(uint64_t n, uint64_t m, double gamma,
                              uint64_t seed,
                              std::unordered_map<ItemId, uint64_t>* counts) {
  Rng rng(seed);
  ZipfSampler sampler(m, gamma);
  std::vector<ItemId> items;
  items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ItemId item = sampler.Sample(rng);
    items.push_back(item);
    if (counts) ++(*counts)[item];
  }
  return items;
}

// ------------------------------------------------------------ Space-Saving

TEST(SpaceSaving, ExactWhenCapacityCoversDistinct) {
  std::unordered_map<ItemId, uint64_t> counts;
  auto items = ZipfItems(20'000, 50, 1.0, 1, &counts);
  SpaceSaving ss(64);  // 64 >= 50 distinct
  for (ItemId item : items) ss.Insert(item);
  for (const auto& [item, count] : counts) {
    EXPECT_EQ(ss.Estimate(item), count);
    EXPECT_EQ(ss.ErrorOf(item), 0u);
  }
  EXPECT_TRUE(ss.CheckInvariants());
}

TEST(SpaceSaving, NeverUnderestimatesMonitoredItems) {
  std::unordered_map<ItemId, uint64_t> counts;
  auto items = ZipfItems(50'000, 5'000, 1.1, 2, &counts);
  SpaceSaving ss(128);
  for (ItemId item : items) ss.Insert(item);
  for (const auto& entry : ss.TopK(128)) {
    uint64_t real = counts[entry.item];
    ASSERT_GE(entry.count, real) << "item " << entry.item;
    // And the classic error bound: f̂ − error <= f.
    ASSERT_LE(entry.count - entry.error, real);
  }
}

TEST(SpaceSaving, MinCountBoundsAllErrors) {
  auto items = ZipfItems(30'000, 3'000, 1.0, 3, nullptr);
  SpaceSaving ss(100);
  for (ItemId item : items) ss.Insert(item);
  uint64_t min_count = ss.MinCount();
  EXPECT_GT(min_count, 0u);
  for (const auto& entry : ss.TopK(100)) {
    EXPECT_LE(entry.error, min_count);
  }
}

TEST(SpaceSaving, ReplacementAdoptsMinPlusOne) {
  SpaceSaving ss(2);
  ss.Insert(1);
  ss.Insert(1);
  ss.Insert(1);  // {1:3}
  ss.Insert(2);  // {1:3, 2:1}
  ss.Insert(3);  // replaces 2 -> {1:3, 3:2 (err 1)}
  EXPECT_FALSE(ss.IsMonitored(2));
  EXPECT_EQ(ss.Estimate(3), 2u);
  EXPECT_EQ(ss.ErrorOf(3), 1u);
  EXPECT_EQ(ss.Estimate(1), 3u);
  EXPECT_TRUE(ss.CheckInvariants());
}

TEST(SpaceSaving, TopKOrderingAndTruncation) {
  SpaceSaving ss(10);
  for (int rep = 0; rep < 5; ++rep) ss.Insert(100);
  for (int rep = 0; rep < 3; ++rep) ss.Insert(200);
  ss.Insert(300);
  auto top2 = ss.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].item, 100u);
  EXPECT_EQ(top2[1].item, 200u);
  EXPECT_EQ(ss.TopK(99).size(), 3u);  // k beyond size returns everything
}

TEST(SpaceSaving, InvariantsHoldThroughRandomChurn) {
  Rng rng(4);
  SpaceSaving ss(32);
  for (int i = 0; i < 20'000; ++i) {
    ss.Insert(rng.Uniform(500) + 1);
    if (i % 1'000 == 0) {
      ASSERT_TRUE(ss.CheckInvariants()) << "step " << i;
    }
  }
  EXPECT_TRUE(ss.CheckInvariants());
  EXPECT_EQ(ss.size(), 32u);
}

TEST(SpaceSaving, CapacityOneDegenerates) {
  SpaceSaving ss(1);
  ss.Insert(1);
  ss.Insert(2);  // replace: estimate 2 (=min 1 + 1)
  ss.Insert(2);
  EXPECT_EQ(ss.Estimate(2), 3u);
  EXPECT_FALSE(ss.IsMonitored(1));
  EXPECT_TRUE(ss.CheckInvariants());
}

TEST(SpaceSaving, MemoryAccounting) {
  EXPECT_EQ(SpaceSaving::BytesPerCounter(), 24u);
  EXPECT_EQ(SpaceSaving::CountersForMemory(24 * 100), 100u);
  EXPECT_EQ(SpaceSaving::CountersForMemory(1), 1u);  // floor at one counter
}

TEST(SpaceSaving, GuaranteedTopKFlagsSafeEntries) {
  SpaceSaving ss(4);
  // No churn: everything exact, everything guaranteed.
  for (int i = 0; i < 50; ++i) ss.Insert(1);
  for (int i = 0; i < 20; ++i) ss.Insert(2);
  for (int i = 0; i < 5; ++i) ss.Insert(3);
  auto guaranteed = ss.GuaranteedTopK(2);
  ASSERT_EQ(guaranteed.size(), 2u);
  EXPECT_TRUE(guaranteed[0]);  // 50 − 0 >= 5
  EXPECT_TRUE(guaranteed[1]);  // 20 − 0 >= 5
}

TEST(SpaceSaving, GuaranteedTopKRefusesShakyEntries) {
  SpaceSaving ss(2);
  for (int i = 0; i < 10; ++i) ss.Insert(1);
  ss.Insert(2);
  ss.Insert(3);  // takes over at count 2 with error 1
  // Top-1 = item 1: guaranteed (10-0 >= 2). Top-2's second entry (item 3,
  // count 2, error 1) could really be count 1 — but with only 2 counters
  // there is no (k+1)-th bound, so next_best=0 and both pass; check the
  // tighter k=1 case instead.
  auto top1 = ss.GuaranteedTopK(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_TRUE(top1[0]);

  // Now make the runner-up shaky relative to a real third counter.
  SpaceSaving ss3(3);
  for (int i = 0; i < 10; ++i) ss3.Insert(1);
  for (int i = 0; i < 4; ++i) ss3.Insert(2);
  for (int i = 0; i < 3; ++i) ss3.Insert(3);
  ss3.Insert(4);  // replaces 3 -> count 4, error 3
  ss3.Insert(4);  // -> count 5, error 3: rank 2 but lower bound only 2
  auto flags = ss3.GuaranteedTopK(2);
  ASSERT_EQ(flags.size(), 2u);
  EXPECT_TRUE(flags[0]);   // item 1: 10 − 0 >= next_best 4
  EXPECT_FALSE(flags[1]);  // item 4: 5 − 3 = 2 < next_best 4
}

TEST(SpaceSaving, UnmonitoredItemsReportZero) {
  SpaceSaving ss(4);
  ss.Insert(1);
  EXPECT_EQ(ss.Estimate(999), 0u);
  EXPECT_EQ(ss.ErrorOf(999), 0u);
  EXPECT_FALSE(ss.IsMonitored(999));
  EXPECT_EQ(ss.MinCount(), 0u);  // not yet full
}

TEST(SpaceSaving, ErrorFieldSurvivesSubsequentIncrements) {
  SpaceSaving ss(2);
  for (int i = 0; i < 4; ++i) ss.Insert(1);
  ss.Insert(2);
  ss.Insert(3);  // takes over 2's counter at count 2, error 1
  for (int i = 0; i < 5; ++i) ss.Insert(3);
  EXPECT_EQ(ss.Estimate(3), 7u);
  EXPECT_EQ(ss.ErrorOf(3), 1u);  // error is set once, at takeover
  EXPECT_TRUE(ss.CheckInvariants());
}

// --------------------------------------------------------- Lossy Counting

TEST(LossyCounting, GuaranteesOnTrackedCounts) {
  std::unordered_map<ItemId, uint64_t> counts;
  auto items = ZipfItems(100'000, 10'000, 1.0, 5, &counts);
  double epsilon = 0.001;
  LossyCounting lc(epsilon);
  for (ItemId item : items) lc.Insert(item);

  uint64_t n = lc.items_processed();
  for (const auto& [item, count] : counts) {
    uint64_t est = lc.Estimate(item);
    // Tracked estimates never exceed f + εN and never fall below f − εN;
    // untracked items (est 0) must have f <= εN.
    if (est == 0) {
      EXPECT_LE(count, static_cast<uint64_t>(epsilon * n) + 1);
    } else {
      EXPECT_LE(est, count + static_cast<uint64_t>(epsilon * n));
      EXPECT_GE(est + static_cast<uint64_t>(epsilon * n), count);
    }
  }
}

TEST(LossyCounting, FrequentItemsAllReported) {
  std::unordered_map<ItemId, uint64_t> counts;
  auto items = ZipfItems(100'000, 10'000, 1.2, 6, &counts);
  double epsilon = 0.0005;
  LossyCounting lc(epsilon);
  for (ItemId item : items) lc.Insert(item);

  // Classic guarantee: every item with f >= εN appears in ItemsAbove(εN·θ)
  // for θ=1 — no false negatives at the support threshold.
  uint64_t threshold = static_cast<uint64_t>(epsilon * items.size());
  auto reported = lc.ItemsAbove(threshold);
  std::unordered_map<ItemId, bool> in_report;
  for (const auto& entry : reported) in_report[entry.item] = true;
  for (const auto& [item, count] : counts) {
    if (count >= threshold) {
      EXPECT_TRUE(in_report[item]) << "item " << item << " f=" << count;
    }
  }
}

TEST(LossyCounting, PrunesAtWindowBoundaries) {
  LossyCounting lc(0.25);  // window of 4
  // 8 distinct singletons: after two windows all must be pruned.
  for (ItemId i = 1; i <= 8; ++i) lc.Insert(i);
  EXPECT_EQ(lc.size(), 0u);
  EXPECT_EQ(lc.current_bucket(), 3u);
}

TEST(LossyCounting, SurvivorsKeepDelta) {
  LossyCounting lc(0.25);  // window of 4
  lc.Insert(1);
  lc.Insert(1);
  lc.Insert(2);
  lc.Insert(1);  // window ends: 1 has f=3 survives; 2 has f=1+Δ0 pruned
  EXPECT_TRUE(lc.IsTracked(1));
  EXPECT_FALSE(lc.IsTracked(2));
  lc.Insert(2);  // re-enters with Δ = b_current − 1 = 1
  EXPECT_EQ(lc.Estimate(2), 2u);  // f=1, Δ=1
}

TEST(LossyCounting, HardCapEnforced) {
  LossyCounting lc(0.0001, 16);  // huge window, tiny cap
  for (ItemId i = 1; i <= 1'000; ++i) lc.Insert(i);
  EXPECT_LE(lc.size(), 16u);
}

TEST(LossyCounting, TopKOrdering) {
  LossyCounting lc(0.01);
  for (int rep = 0; rep < 10; ++rep) lc.Insert(1);
  for (int rep = 0; rep < 5; ++rep) lc.Insert(2);
  auto top = lc.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 1u);
}

TEST(LossyCounting, MemoryAccounting) {
  EXPECT_EQ(LossyCounting::BytesPerEntry(), 16u);
  EXPECT_EQ(LossyCounting::EntriesForMemory(16 * 50), 50u);
}

// ------------------------------------------------------------- Misra-Gries

TEST(MisraGries, NeverOverestimates) {
  std::unordered_map<ItemId, uint64_t> counts;
  auto items = ZipfItems(50'000, 5'000, 1.0, 7, &counts);
  MisraGries mg(64);
  for (ItemId item : items) mg.Insert(item);
  for (const auto& entry : mg.TopK(64)) {
    ASSERT_LE(entry.count, counts[entry.item]);
  }
}

TEST(MisraGries, UnderestimationBoundedByDecrements) {
  std::unordered_map<ItemId, uint64_t> counts;
  auto items = ZipfItems(50'000, 5'000, 1.0, 8, &counts);
  MisraGries mg(64);
  for (ItemId item : items) mg.Insert(item);
  uint64_t dec = mg.total_decrements();
  // Classic bound: dec <= N/(k+1).
  EXPECT_LE(dec, items.size() / (64 + 1) + 1);
  for (const auto& [item, count] : counts) {
    EXPECT_GE(mg.Estimate(item) + dec, count) << "item " << item;
  }
}

TEST(MisraGries, ExactWhenCapacityCoversDistinct) {
  std::unordered_map<ItemId, uint64_t> counts;
  auto items = ZipfItems(10'000, 40, 1.0, 9, &counts);
  MisraGries mg(64);
  for (ItemId item : items) mg.Insert(item);
  EXPECT_EQ(mg.total_decrements(), 0u);
  for (const auto& [item, count] : counts) {
    EXPECT_EQ(mg.Estimate(item), count);
  }
}

TEST(MisraGries, GlobalDecrementEvictsZeros) {
  MisraGries mg(2);
  mg.Insert(1);
  mg.Insert(2);
  mg.Insert(3);  // decrement-all: both hit 0 and vanish; 3 NOT inserted
  EXPECT_EQ(mg.size(), 0u);
  mg.Insert(3);
  EXPECT_EQ(mg.Estimate(3), 1u);
}

TEST(MisraGries, HeavyMajorityItemAlwaysSurvives) {
  // An item with strict majority can never be evicted (k=1 = the classic
  // Boyer-Moore majority special case).
  MisraGries mg(1);
  Rng rng(10);
  int majority_count = 0;
  for (int i = 0; i < 10'001; ++i) {
    bool majority = rng.UniformDouble() < 0.6;
    if (majority) {
      mg.Insert(777);
      ++majority_count;
    } else {
      mg.Insert(rng.Uniform(1000) + 1);
    }
  }
  ASSERT_GT(majority_count, 5'000);  // sanity on the workload itself
  EXPECT_TRUE(mg.IsTracked(777));
}

TEST(MisraGries, MemoryAccounting) {
  EXPECT_EQ(MisraGries::BytesPerCounter(), 12u);
  EXPECT_EQ(MisraGries::CountersForMemory(12 * 7), 7u);
}

}  // namespace
}  // namespace ltc
