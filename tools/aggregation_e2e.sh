#!/usr/bin/env bash
# Aggregation-tier end-to-end proof (docs/SERVING.md "Aggregation
# tier"): one `ltc_cli --aggregate` process, two `ltc_cli --push-to`
# nodes over real sockets, one node SIGKILLed mid-stream. Asserts the
# process-level half of the fault-tolerance contract:
#   * the merged view blends both nodes and answers queries throughout,
#   * a killed pusher degrades to a stale STATS row — the aggregator
#     keeps serving its last image, never wedges,
#   * the surviving node completes with every push delivered,
#   * SIGTERM drains the aggregator (exit 143) and its exposition
#     carries the ltc_agg_* families; the pusher exposition carries
#     the ltc_push_* families.
#
# usage: aggregation_e2e.sh <ltc_gen> <ltc_cli> <ltc_query> <work_dir>
#
# Companion to server_e2e.sh (single-node serving contract) and to
# tests/aggregation_chaos_test.cc (bit-identical convergence under
# injected faults — the in-process, deterministic half).
set -u

fail() { echo "aggregation_e2e: FAIL: $*" >&2; exit 1; }

GEN="$(readlink -f "$1")" || fail "cannot resolve $1"
CLI="$(readlink -f "$2")" || fail "cannot resolve $2"
QUERY="$(readlink -f "$3")" || fail "cannot resolve $3"
WORK="$4"

mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot cd $WORK"
rm -f node1.txt node2.txt agg.err push1.err push2.err \
  agg_metrics.prom push2_metrics.prom stats.out query.err

# Both nodes must be shape-compatible with the aggregator: same
# --memory (and default cells/seed/alpha/beta) everywhere.
MEMORY=16K

# The victim's trace is big and its cadence fine-grained so the push
# sequence is long enough to be interrupted mid-stream deterministically
# (we kill on an *observed* merge, not on a timer).
"$GEN" --dataset zipf --records 2000000 --distinct 2000 --gamma 1.1 \
  --periods 20 --seed 11 node1.txt || fail "ltc_gen node1"
"$GEN" --dataset zipf --records 200000 --distinct 2000 --gamma 1.1 \
  --periods 20 --seed 22 node2.txt || fail "ltc_gen node2"

# --- 1. The aggregator: a query server fed only by PUSH_SKETCH. ------
"$CLI" --memory "$MEMORY" --aggregate --serve 0 --agg-stale-after 2 \
  --metrics-out agg_metrics.prom > /dev/null 2> agg.err &
agg_pid=$!
port=""
for _ in $(seq 100); do
  port=$(grep -oE 'serving on port [0-9]+' agg.err 2> /dev/null \
           | grep -oE '[0-9]+$' || true)
  [ -n "$port" ] && break
  kill -0 "$agg_pid" 2> /dev/null || fail "aggregator died: $(cat agg.err)"
  sleep 0.1
done
[ -n "$port" ] || fail "aggregator never announced its port: $(cat agg.err)"
grep -q "aggregating" agg.err || fail "no aggregating notice: $(cat agg.err)"

# Queries that beat the first push see an empty table, not an error.
"$QUERY" --port "$port" stats > stats.out 2> query.err \
  || fail "pre-push stats failed: $(cat query.err)"
grep -q "^stats snapshot_seq=" stats.out || fail "no pre-push stats"

# --- 2. Node 1 (the victim): killed mid-stream. ----------------------
"$CLI" --memory "$MEMORY" --push-to "127.0.0.1:$port" --node-id 1 \
  --push-every 10000 node1.txt > /dev/null 2> push1.err &
push1_pid=$!

# Wait for the aggregator to apply a few of node 1's epochs, then
# SIGKILL the pusher — no final push, no goodbye, a torn connection.
killed=""
for _ in $(seq 600); do
  "$QUERY" --port "$port" stats > stats.out 2> /dev/null
  last_epoch=$(grep -oE '^node 1 last_epoch=[0-9]+' stats.out \
                 | grep -oE '[0-9]+$' || true)
  if [ -n "$last_epoch" ] && [ "$last_epoch" -ge 3 ]; then
    kill -9 "$push1_pid" 2> /dev/null || fail "node 1 finished before the \
mid-stream kill (observed epoch $last_epoch); grow its trace"
    killed=1
    break
  fi
  kill -0 "$push1_pid" 2> /dev/null || fail "node 1 exited early (observed \
epoch ${last_epoch:-none}): $(cat push1.err)"
  sleep 0.02
done
[ -n "$killed" ] || fail "node 1 never reached epoch 3: $(cat push1.err)"
wait "$push1_pid" 2> /dev/null
echo "aggregation_e2e: node 1 SIGKILLed after epoch $last_epoch"

# The aggregator must keep answering with node 1's last image intact.
"$QUERY" --port "$port" stats topk 5 > stats.out 2> query.err \
  || fail "post-kill query failed: $(cat query.err)"
grep -qE "^node 1 last_epoch=[0-9]+" stats.out \
  || fail "node 1 row lost after the kill: $(cat stats.out)"
grep -q "5 item(s)" stats.out || fail "no topk after the kill"

# --- 3. Node 2 (the survivor): runs to completion. -------------------
"$CLI" --memory "$MEMORY" --push-to "127.0.0.1:$port" --node-id 2 \
  --metrics-out push2_metrics.prom node2.txt > /dev/null 2> push2.err \
  || fail "node 2 run failed: $(cat push2.err)"
grep -qE "pushes: [1-9][0-9]* delivered" push2.err \
  || fail "node 2 delivered nothing: $(cat push2.err)"
grep -q "rejected push" push2.err \
  && fail "node 2 was rejected: $(cat push2.err)"

# Both nodes in the merged view: two STATS rows, blended TOPK.
"$QUERY" --port "$port" stats topk 5 > stats.out 2> query.err \
  || fail "post-merge query failed: $(cat query.err)"
grep -qE "^node 1 last_epoch=" stats.out || fail "node 1 row missing"
grep -qE "^node 2 last_epoch=" stats.out || fail "node 2 row missing"
grep -q "5 item(s)" stats.out || fail "no merged topk rows"

# --- 4. Degradation: the dead node goes stale, service stays up. -----
# stale flips at age_sec strictly greater than --agg-stale-after (2s
# here), so sleep well past the threshold.
sleep 3.5
"$QUERY" --port "$port" stats topk 5 > stats.out 2> query.err \
  || fail "staleness query failed: $(cat query.err)"
grep -qE "^node 1 last_epoch=[0-9]+ age_sec=[0-9]+ stale=1" stats.out \
  || fail "node 1 not flagged stale after --agg-stale-after: $(cat stats.out)"
grep -q "5 item(s)" stats.out || fail "no topk while a node is stale"
echo "aggregation_e2e: dead node flagged stale, service still answering"

# --- 5. Drain + expositions. -----------------------------------------
kill -TERM "$agg_pid" 2> /dev/null
wait "$agg_pid"
status=$?
[ "$status" -eq 143 ] \
  || fail "expected aggregator exit 143 (128+SIGTERM), got $status: $(cat agg.err)"
grep -q "drained" agg.err || fail "no drain notice: $(cat agg.err)"
grep -qE "aggregated [1-9][0-9]* merge\(s\) from 2 node\(s\)" agg.err \
  || fail "no aggregation summary: $(cat agg.err)"

[ -s agg_metrics.prom ] || fail "no aggregator exposition"
for family in ltc_agg_merges_total ltc_agg_nodes ltc_agg_node_staleness_sec \
    ltc_server_requests_total; do
  grep -q "^$family" agg_metrics.prom \
    || fail "aggregator exposition missing $family"
done
[ -s push2_metrics.prom ] || fail "no pusher exposition"
for family in ltc_push_attempts_total ltc_push_delivered_total; do
  grep -q "^$family" push2_metrics.prom \
    || fail "pusher exposition missing $family"
done

echo "aggregation_e2e: PASS"
