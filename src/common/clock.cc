#include "common/clock.h"

#include <chrono>
#include <thread>

namespace ltc {

namespace {

class SystemClockImpl final : public Clock {
 public:
  uint64_t NowMicros() override {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  }

  void SleepMicros(uint64_t usec) override {
    if (usec == 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(usec));
  }
};

}  // namespace

Clock& SystemClock() {
  static SystemClockImpl clock;
  return clock;
}

}  // namespace ltc
