// Fig. 7 — §IV-D verification of the theoretical formulas on a Zipf
// stream, k = 1000:
// (a) measured correct rate vs the Eq. 4–5 lower bound, memory 10–150 KB;
// (b) measured Pr{s−ŝ >= εN} (ε = 2^-18) vs the Eq. 11 upper bound,
//     memory 10–100 KB.
// The theorem targets the basic initializer, so LTR is off here.

#include <cmath>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/ltc.h"
#include "core/theory.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kK = 1000;
constexpr double kGamma = 1.2;

struct Measured {
  double correct_rate;
  double error_prob;  // fraction of top-k with s − ŝ >= εN
  uint64_t num_buckets;
};

Measured RunOnce(const Stream& stream, const GroundTruth& truth,
                 size_t memory_bytes, double epsilon) {
  LtcConfig config;
  config.memory_bytes = memory_bytes;
  config.long_tail_replacement = false;
  // The §IV model analyses frequency-driven competition; run the
  // verification in the matching α=1, β=0 setting.
  config.alpha = 1.0;
  config.beta = 0.0;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  Ltc table(config);
  for (const Record& r : stream.records()) table.Insert(r.item, r.time);
  table.Finalize();

  auto top = truth.TopKSignificant(kK, config.alpha, config.beta);
  size_t correct = 0;
  size_t big_error = 0;
  size_t recorded = 0;
  double threshold = epsilon * static_cast<double>(stream.size());
  for (const auto& [item, sig] : top) {
    double est = table.QuerySignificance(item);
    if (std::fabs(est - sig) < 1e-9) ++correct;
    // §IV-C analyses "an arbitrary item recorded in the lossy table":
    // the error probability conditions on the item being tracked.
    if (table.IsTracked(item)) {
      ++recorded;
      if (sig - est >= threshold) ++big_error;
    }
  }
  return {static_cast<double>(correct) / kK,
          recorded == 0
              ? 0.0
              : static_cast<double>(big_error) / static_cast<double>(recorded),
          table.num_buckets()};
}

}  // namespace

void Run() {
  const uint64_t n = ScaledRecords(1'000'000, 10'000'000);
  const uint64_t m = n / 50;
  Stream stream = MakeZipfStream(n, m, kGamma, 100, 7);
  GroundTruth truth = GroundTruth::Compute(stream);
  ZipfStreamModel model{n, m, kGamma};
  std::vector<double> frequencies = model.Frequencies();
  const double epsilon = 1.0 / (1 << 18);

  // The exact Eq. 4–5 DP costs O(M·d) per rank; averaging over a uniform
  // rank subsample (every 20th of the top-k) estimates the same mean
  // bound at 5% of the cost.
  auto sampled_correct_bound = [&](const LtcShape& shape) {
    double sum = 0.0;
    size_t count = 0;
    for (uint64_t rank = 10; rank <= kK; rank += 20) {
      sum += CorrectRateBound(frequencies, rank, shape);
      ++count;
    }
    return sum / static_cast<double>(count);
  };

  TextTable correct({"memoryKB", "real_correct_rate", "theoretic_bound"});
  for (size_t kb : {10, 30, 50, 70, 90, 110, 130, 150}) {
    Measured measured = RunOnce(stream, truth, kb * 1024, epsilon);
    LtcShape shape{measured.num_buckets, 8, 1.0, 0.0};
    double bound = sampled_correct_bound(shape);
    correct.AddRow({std::to_string(kb), FormatMetric(measured.correct_rate),
                    FormatMetric(bound)});
  }
  PrintFigure("Fig 7(a): correct rate, real vs theoretical lower bound "
              "(k=1000, Zipf)",
              correct);

  TextTable error({"memoryKB", "real_error_prob", "theoretic_bound"});
  for (size_t kb : {10, 20, 40, 60, 80, 100}) {
    Measured measured = RunOnce(stream, truth, kb * 1024, epsilon);
    LtcShape shape{measured.num_buckets, 8, 1.0, 0.0};
    double bound =
        TopKErrorProbabilityBound(frequencies, kK, shape, epsilon, n);
    error.AddRow({std::to_string(kb), FormatMetric(measured.error_prob),
                  FormatMetric(bound)});
  }
  PrintFigure(
      "Fig 7(b): Pr{s-est >= eps*N}, real vs theoretical upper bound "
      "(k=1000, eps=2^-18)",
      error);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
