// PIE — the state-of-the-art persistent-items baseline of the paper's
// §II-B / §V-G: one Space-Time Bloom Filter per period plus an offline
// decode that recovers the IDs of items recorded in many periods.
//
// Memory protocol: exactly as in §V-C, PIE is given `memory_per_period`
// for EVERY period ("we use T times of the default memory size for PIE"),
// because it cannot decode anything when a single shared budget is split
// across periods.

#ifndef LTC_PERSISTENT_PIE_H_
#define LTC_PERSISTENT_PIE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "codes/id_code.h"
#include "persistent/space_time_bloom_filter.h"
#include "stream/stream.h"

namespace ltc {

class Pie {
 public:
  struct Report {
    ItemId item;
    uint32_t persistency;
  };

  /// \param memory_per_period  bytes of STBF cells per period
  /// \param num_periods        T
  /// \param num_hashes         k cells written per (item, period)
  Pie(size_t memory_per_period, uint32_t num_periods, uint32_t num_hashes = 3,
      uint64_t seed = 0, IdCodeKind code_kind = IdCodeKind::kLt);

  /// Records one appearance. Periods must be fed nondecreasing (streams
  /// are time-ordered); the per-period STBF is created on first touch.
  void Insert(ItemId item, uint32_t period);

  /// Offline decode over all periods: recovers every item whose singleton
  /// cells accumulate enough LT symbols, with its estimated persistency.
  /// Decoded IDs are verified against their fingerprint, so reported items
  /// are real with overwhelming probability.
  std::vector<Report> DecodeAll() const;

  /// Top-k persistent items from DecodeAll (descending persistency).
  std::vector<Report> TopK(size_t k) const;

  /// Membership-based persistency estimate for a known ID (used to score
  /// ARE on reported items).
  uint32_t EstimatePersistency(ItemId item) const;

  uint32_t num_periods() const { return num_periods_; }
  size_t cells_per_period() const { return cells_per_period_; }

 private:
  size_t cells_per_period_;
  uint32_t num_periods_;
  uint32_t num_hashes_;
  uint64_t seed_;
  std::unique_ptr<IdCode> code_;
  std::vector<std::unique_ptr<SpaceTimeBloomFilter>> filters_;
};

}  // namespace ltc

#endif  // LTC_PERSISTENT_PIE_H_
