// IngestPipeline durability and robustness seams: periodic checkpoints
// riding the Flush() barrier, the bounded-wait stall escape hatch
// (a dead worker surfaces as an error, never an infinite spin), the
// ShardStatsOf bounds contract, and the queue_depth race repair.

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sharded_ltc.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/spsc_ring.h"
#include "snapshot/sketch_snapshot.h"
#include "snapshot/snapshot_store.h"

namespace ltc {
namespace {

LtcConfig SmallConfig() {
  LtcConfig config;
  config.memory_bytes = 16 * 1024;
  return config;
}

std::vector<Record> MakeRecords(size_t n, uint64_t salt = 0) {
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back({(i * 2654435761u + salt) % 997 + 1, 0.001 * i});
  }
  return records;
}

class IngestCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("ingest_ck_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    base_ = (dir_ / "pipeline.ck").string();
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string base_;
};

TEST_F(IngestCheckpointTest, PeriodicCheckpointsFireAtCadence) {
  ShardedLtc sink(SmallConfig(), 2);
  IngestConfig config;
  config.checkpoint_every = 1000;
  IngestPipeline pipeline(sink, config);
  SnapshotStore store(base_);
  pipeline.AttachSnapshotStore(&store);

  const auto records = MakeRecords(5500);
  for (size_t i = 0; i < records.size(); i += 500) {
    pipeline.PushBatch({records.data() + i, 500});
  }
  // 5500 accepted records at a 1000-record cadence: 5 checkpoints.
  EXPECT_EQ(pipeline.CheckpointsTaken(), 5u);
  EXPECT_EQ(pipeline.CheckpointFailures(), 0u);
  EXPECT_EQ(pipeline.LastCheckpointSeq(), 5u);
  pipeline.Stop();

  // The newest checkpoint restores to a working sharded table.
  std::string error;
  const auto recovered = store.LoadLatest(&error);
  ASSERT_TRUE(recovered.has_value()) << error;
  SnapshotError decode_error = SnapshotError::kNone;
  auto restored = DecodeSketchSnapshot<ShardedLtc>(
      EncodeFrame(recovered->payload), &decode_error);
  ASSERT_TRUE(restored.has_value()) << SnapshotErrorName(decode_error);
  EXPECT_EQ(restored->num_shards(), 2u);
}

TEST_F(IngestCheckpointTest, ManualCheckpointMatchesSequentialState) {
  // A checkpoint taken mid-stream equals the state of the accepted
  // prefix: the Flush() barrier means no in-flight record is missing.
  const auto records = MakeRecords(4000);

  ShardedLtc sink(SmallConfig(), 2);
  IngestPipeline pipeline(sink, {});
  SnapshotStore store(base_);
  pipeline.AttachSnapshotStore(&store);
  pipeline.PushBatch({records.data(), 2000});
  std::string error;
  ASSERT_TRUE(pipeline.Checkpoint(&error)) << error;
  // Feeding continues after a checkpoint (workers never restarted).
  pipeline.PushBatch({records.data() + 2000, 2000});
  pipeline.Stop();
  EXPECT_EQ(pipeline.TotalEnqueued(), 4000u);
  EXPECT_EQ(pipeline.TotalDropped(), 0u);

  ShardedLtc reference(SmallConfig(), 2);
  reference.InsertBatch({records.data(), 2000});
  BinaryWriter expected;
  reference.Serialize(expected);

  const auto recovered = store.LoadLatest(&error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(recovered->payload, expected.data());
}

TEST_F(IngestCheckpointTest, CheckpointWithoutStoreIsATypedFailure) {
  ShardedLtc sink(SmallConfig(), 2);
  IngestPipeline pipeline(sink, {});
  std::string error;
  EXPECT_FALSE(pipeline.Checkpoint(&error));
  EXPECT_NE(error.find("no snapshot store"), std::string::npos) << error;
  EXPECT_EQ(pipeline.CheckpointFailures(), 1u);
  pipeline.Stop();
}

TEST_F(IngestCheckpointTest, StalledWorkerSurfacesInsteadOfWedging) {
  ShardedLtc sink(SmallConfig(), 2);
  IngestConfig config;
  config.ring_capacity = 64;
  config.stall_yield_limit = 2000;  // tiny bounded wait: fail fast
  IngestPipeline pipeline(sink, config);
  pipeline.SuspendWorkersForTest(true);  // "the worker thread died"

  // More records than the rings hold: the kBlock spin must give up.
  const auto records = MakeRecords(1000);
  pipeline.PushBatch(records);
  EXPECT_TRUE(pipeline.stalled());
  EXPECT_GT(pipeline.TotalDropped(), 0u);
  EXPECT_EQ(pipeline.TotalEnqueued() + pipeline.TotalDropped(),
            records.size());

  // Flush on a stalled pipeline reports failure, and a checkpoint
  // refuses to persist a state it cannot prove complete.
  EXPECT_FALSE(pipeline.Flush());
  SnapshotStore store(base_);
  pipeline.AttachSnapshotStore(&store);
  std::string error;
  EXPECT_FALSE(pipeline.Checkpoint(&error));
  EXPECT_NE(error.find("stalled"), std::string::npos) << error;
  EXPECT_TRUE(store.ListSnapshots().empty());

  // Revived workers drain the backlog; accepted records are never lost.
  pipeline.SuspendWorkersForTest(false);
  pipeline.Stop();
  uint64_t drained = 0;
  for (uint32_t s = 0; s < pipeline.num_shards(); ++s) {
    drained += pipeline.ShardStatsOf(s).drained;
  }
  EXPECT_EQ(drained, pipeline.TotalEnqueued());
}

TEST_F(IngestCheckpointTest, ShardStatsOfBoundsChecked) {
  ShardedLtc sink(SmallConfig(), 2);
  IngestPipeline pipeline(sink, {});
  (void)pipeline.ShardStatsOf(0);
  (void)pipeline.ShardStatsOf(1);
  EXPECT_THROW(pipeline.ShardStatsOf(2), std::out_of_range);
  EXPECT_THROW(pipeline.ShardStatsOf(1u << 31), std::out_of_range);
  pipeline.Stop();
}

TEST_F(IngestCheckpointTest, QueueDepthNeverExceedsCapacityOrUnderflows) {
  ShardedLtc sink(SmallConfig(), 2);
  IngestConfig config;
  config.ring_capacity = 64;
  config.backpressure = BackpressureMode::kDrop;
  IngestPipeline pipeline(sink, config);
  pipeline.SuspendWorkersForTest(true);
  const auto records = MakeRecords(500);
  pipeline.PushBatch(records);
  for (uint32_t s = 0; s < pipeline.num_shards(); ++s) {
    const auto stats = pipeline.ShardStatsOf(s);
    // A racy sample may be stale but can never be a wrapped-around
    // "billions" value (the pre-repair underflow) nor exceed capacity.
    EXPECT_LE(stats.queue_depth, stats.ring_capacity);
  }
  pipeline.SuspendWorkersForTest(false);
  pipeline.Stop();
}

TEST(SpscRingSize, SizeApproxStaysInRange) {
  SpscRing ring(8);
  EXPECT_EQ(ring.SizeApprox(), 0u);
  const Record record{1, 0.0};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.TryPush(record));
  EXPECT_EQ(ring.SizeApprox(), 5u);
  Record out[3];
  ASSERT_EQ(ring.PopBatch(out, 3), 3u);
  EXPECT_EQ(ring.SizeApprox(), 2u);
  EXPECT_LE(ring.SizeApprox(), ring.capacity());
}

}  // namespace
}  // namespace ltc
