#!/usr/bin/env bash
# Query-serving end-to-end proof (docs/SERVING.md): start
# `ltc_cli --serve`, drive every protocol opcode through ltc_query,
# deliver SIGTERM while a request is in flight, and assert the graceful
# half of the serving contract:
#   * the in-flight request is still answered,
#   * the connection ends with a clean FIN (an RST would surface as
#     ECONNRESET in the probe client),
#   * the server process exits 128+signo with durable state flushed,
#   * the exposition contains the ltc_server_* families.
#
# usage: server_e2e.sh <ltc_gen> <ltc_cli> <ltc_query> <work_dir>
#
# Companion to graceful_shutdown.sh: that script proves the ingest side
# of a catchable signal; this one proves the serving side.
set -u

fail() { echo "server_e2e: FAIL: $*" >&2; exit 1; }

GEN="$(readlink -f "$1")" || fail "cannot resolve $1"
CLI="$(readlink -f "$2")" || fail "cannot resolve $2"
QUERY="$(readlink -f "$3")" || fail "cannot resolve $3"
WORK="$4"

mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot cd $WORK"
rm -f trace.txt serve.err metrics.prom query.out query.err

"$GEN" --dataset zipf --records 200000 --periods 20 --seed 7 trace.txt \
  || fail "ltc_gen"

start_server() {
  # shellcheck disable=SC2086
  "$CLI" $1 --serve 0 --metrics-out metrics.prom trace.txt \
    > /dev/null 2> serve.err &
  server_pid=$!
  port=""
  for _ in $(seq 100); do
    port=$(grep -oE 'serving on port [0-9]+' serve.err 2> /dev/null \
             | grep -oE '[0-9]+$' || true)
    [ -n "$port" ] && break
    kill -0 "$server_pid" 2> /dev/null || fail "server died: $(cat serve.err)"
    sleep 0.1
  done
  [ -n "$port" ] || fail "server never announced its port: $(cat serve.err)"
}

stop_server() {
  kill -TERM "$server_pid" 2> /dev/null
  wait "$server_pid"
  local status=$?
  [ "$status" -eq 143 ] \
    || fail "expected server exit 143 (128+SIGTERM), got $status: $(cat serve.err)"
  grep -q "drained" serve.err || fail "no drain notice: $(cat serve.err)"
}

run_suite() {
  local label="$1"

  # --- All five query opcodes (plus PING) through ltc_query. ---------
  "$QUERY" --port "$port" ping stats topk 5 sig 1 freq 1 pers 1 \
    > query.out 2> query.err || fail "[$label] query batch failed: $(cat query.err)"
  grep -q "^pong snapshot_seq=" query.out || fail "[$label] no pong"
  grep -q "^stats snapshot_seq=" query.out || fail "[$label] no stats"
  grep -q "5 item(s)" query.out || fail "[$label] no topk rows"
  grep -q "^sig 1 = " query.out || fail "[$label] no significance"
  grep -q "^freq 1 = " query.out || fail "[$label] no frequency"
  grep -q "^pers 1 = " query.out || fail "[$label] no persistency"

  # Served answers must agree with the sequential report for the same
  # barrier: the trace is fully fed by now, so TOPK's head item equals
  # the offline run's head item.
  "$QUERY" --port "$port" topk 1 > head.out || fail "[$label] topk 1"

  # --- Typed error frames, not dropped connections. -------------------
  "$QUERY" --port "$port" sig "" > /dev/null 2> query.err
  [ $? -eq 3 ] || fail "[$label] zero-length key should exit 3"
  grep -q "bad_key" query.err || fail "[$label] expected bad_key: $(cat query.err)"

  # --- SIGTERM mid-query: answered, then FIN (never RST). -------------
  python3 - "$port" "$server_pid" <<'PYEOF' || fail "[$label] mid-query drain"
import socket, struct, os, signal, sys

port, server_pid = int(sys.argv[1]), int(sys.argv[2])
sock = socket.create_connection(("127.0.0.1", port), timeout=10)
# One PING frame: u32 LE length prefix + opcode 0x01.
sock.sendall(struct.pack("<I", 1) + b"\x01")
# The request bytes are committed to the socket; now kill the server.
os.kill(server_pid, signal.SIGTERM)

def recv_exact(n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise SystemExit("connection closed before the response")
        buf += chunk
    return buf

try:
    length = struct.unpack("<I", recv_exact(4))[0]
    payload = recv_exact(length)
except ConnectionResetError:
    raise SystemExit("RST during drain (graceful FIN expected)")
if not payload or payload[0] != 0:
    raise SystemExit("mid-query request not answered kOk: %r" % payload)
# Drain to EOF: a clean FIN reads as b""; an RST raises.
try:
    tail = sock.recv(4096)
except ConnectionResetError:
    raise SystemExit("RST instead of FIN after the response")
if tail:
    raise SystemExit("unexpected trailing bytes: %r" % tail)
print("drain probe: answered + FIN")
PYEOF

  wait "$server_pid"
  local status=$?
  [ "$status" -eq 143 ] \
    || fail "[$label] expected server exit 143, got $status: $(cat serve.err)"
  grep -q "drained" serve.err || fail "[$label] no drain notice: $(cat serve.err)"

  # --- The exposition carries the server families. --------------------
  [ -s metrics.prom ] || fail "[$label] no metrics exposition"
  grep -q "^ltc_server_requests_total" metrics.prom \
    || fail "[$label] exposition missing ltc_server_requests_total"
  grep -q "^ltc_server_connections_opened_total" metrics.prom \
    || fail "[$label] exposition missing connection counters"
  echo "server_e2e: [$label] all opcodes served, drained on SIGTERM"
}

start_server ""
run_suite "single"

start_server "--threads 2"
run_suite "sharded"

# --- ltc_query deadlines: a hung server costs one timeout, exit 5. ----
# A listener that accepts and then never answers — the half-open peer
# that used to hang the client forever.
rm -f hung.port
python3 - > hung.port 2> /dev/null <<'PYEOF' &
import socket, time
srv = socket.socket()
srv.bind(("127.0.0.1", 0))
srv.listen(1)
print(srv.getsockname()[1], flush=True)
conns = []
end = time.time() + 30
while time.time() < end:
    srv.settimeout(max(0.1, end - time.time()))
    try:
        conns.append(srv.accept()[0])  # accept, never respond
    except socket.timeout:
        break
PYEOF
hung_pid=$!
hung_port=""
for _ in $(seq 100); do
  hung_port=$(cat hung.port 2> /dev/null)
  [ -n "$hung_port" ] && break
  sleep 0.1
done
[ -n "$hung_port" ] || fail "hung listener never reported its port"
"$QUERY" --port "$hung_port" --timeout-ms 300 ping > /dev/null 2> query.err
status=$?
[ "$status" -eq 5 ] \
  || fail "hung server should exit 5 (deadline), got $status: $(cat query.err)"
grep -q "timed out" query.err \
  || fail "expected a timeout notice: $(cat query.err)"
kill "$hung_pid" 2> /dev/null
wait "$hung_pid" 2> /dev/null
echo "server_e2e: hung server correctly answered with exit 5"

echo "server_e2e: PASS"
