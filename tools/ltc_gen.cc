// ltc_gen — synthesize a workload trace (the DESIGN.md §3 dataset
// stand-ins or raw Zipf/uniform streams) as text consumable by ltc_cli
// and by any external tool.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "stream/generators.h"
#include "stream/trace_io.h"

namespace {

const char kUsage[] =
    R"(usage: ltc_gen [options] <output-file | ->

options:
  --dataset NAME   caida | network | social | zipf | uniform   [caida]
  --records N      stream length                               [1000000]
  --seed S                                                     [1]
  --gamma G        Zipf skew (zipf only)                       [1.0]
  --distinct M     distinct items (zipf/uniform only)          [records/10]
  --periods T      periods (zipf/uniform only)                 [100]
)";

struct Options {
  std::string dataset = "caida";
  uint64_t records = 1'000'000;
  uint64_t seed = 1;
  double gamma = 1.0;
  uint64_t distinct = 0;
  uint32_t periods = 100;
  std::string output;
};

bool Parse(int argc, char** argv, Options* options) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    auto need = [&](uint64_t* out) {
      if (i + 1 >= args.size()) return false;
      *out = std::strtoull(args[++i].c_str(), nullptr, 10);
      return *out > 0;
    };
    if (args[i] == "--dataset" && i + 1 < args.size()) {
      options->dataset = args[++i];
    } else if (args[i] == "--records") {
      if (!need(&options->records)) return false;
    } else if (args[i] == "--seed") {
      if (!need(&options->seed)) return false;
    } else if (args[i] == "--distinct") {
      if (!need(&options->distinct)) return false;
    } else if (args[i] == "--periods") {
      uint64_t v;
      if (!need(&v)) return false;
      options->periods = static_cast<uint32_t>(v);
    } else if (args[i] == "--gamma" && i + 1 < args.size()) {
      options->gamma = std::strtod(args[++i].c_str(), nullptr);
      if (options->gamma < 0) return false;
    } else if (!args[i].empty() && args[i][0] == '-' && args[i] != "-") {
      return false;
    } else if (options->output.empty()) {
      options->output = args[i];
    } else {
      return false;
    }
  }
  return !options->output.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!Parse(argc, argv, &options)) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (options.distinct == 0) {
    options.distinct = std::max<uint64_t>(1, options.records / 10);
  }

  ltc::Stream stream;
  if (options.dataset == "caida") {
    stream = ltc::MakeCaidaLike(options.records, options.seed);
  } else if (options.dataset == "network") {
    stream = ltc::MakeNetworkLike(options.records, options.seed);
  } else if (options.dataset == "social") {
    stream = ltc::MakeSocialLike(options.records, options.seed);
  } else if (options.dataset == "zipf") {
    stream = ltc::MakeZipfStream(options.records, options.distinct,
                                 options.gamma, options.periods,
                                 options.seed);
  } else if (options.dataset == "uniform") {
    stream = ltc::MakeUniformStream(options.records, options.distinct,
                                    options.periods, options.seed);
  } else {
    std::fprintf(stderr, "ltc_gen: unknown dataset '%s'\n%s",
                 options.dataset.c_str(), kUsage);
    return 2;
  }

  if (options.output == "-") {
    std::string text = ltc::TraceToString(stream);
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  if (!ltc::WriteTrace(stream, options.output)) {
    std::fprintf(stderr, "ltc_gen: cannot write '%s'\n",
                 options.output.c_str());
    return 1;
  }
  std::fprintf(stderr, "ltc_gen: wrote %zu records (%u periods) to %s\n",
               stream.size(), stream.num_periods(),
               options.output.c_str());
  return 0;
}
