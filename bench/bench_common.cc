#include "bench_common.h"

#include <cctype>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/table_layout.h"

namespace ltc {
namespace bench {

uint64_t ScaledRecords(uint64_t base_default, uint64_t base_full) {
  const char* env = std::getenv("LTC_SCALE");
  if (env == nullptr || *env == '\0') return base_default;
  std::string value(env);
  if (value == "full") return base_full;
  double factor = std::atof(env);
  if (factor <= 0.0) return base_default;
  return static_cast<uint64_t>(static_cast<double>(base_default) * factor);
}

Dataset LoadCaida() {
  Stream stream = MakeCaidaLike(ScaledRecords(1'000'000, 10'000'000), 1);
  GroundTruth truth = GroundTruth::Compute(stream);
  return {"CAIDA", std::move(stream), std::move(truth)};
}

Dataset LoadNetwork() {
  Stream stream = MakeNetworkLike(ScaledRecords(1'000'000, 10'000'000), 2);
  GroundTruth truth = GroundTruth::Compute(stream);
  return {"Network", std::move(stream), std::move(truth)};
}

Dataset LoadSocial() {
  Stream stream = MakeSocialLike(ScaledRecords(750'000, 1'500'000), 3);
  GroundTruth truth = GroundTruth::Compute(stream);
  return {"Social", std::move(stream), std::move(truth)};
}

std::vector<Dataset> LoadAllDatasets() {
  std::vector<Dataset> out;
  out.push_back(LoadCaida());
  out.push_back(LoadNetwork());
  out.push_back(LoadSocial());
  return out;
}

std::unique_ptr<LtcReporter> MakeLtcReporter(size_t memory_bytes,
                                             const Stream& stream,
                                             double alpha, double beta) {
  LtcConfig config;
  config.memory_bytes = memory_bytes;
  config.alpha = alpha;
  config.beta = beta;
  return std::make_unique<LtcReporter>(config, stream.num_periods(),
                                       stream.duration());
}

std::vector<std::unique_ptr<SignificantReporter>> FrequentSuite(
    size_t memory_bytes, size_t k, const Stream& stream) {
  std::vector<std::unique_ptr<SignificantReporter>> suite;
  suite.push_back(MakeLtcReporter(memory_bytes, stream, 1.0, 0.0));
  suite.push_back(std::make_unique<SpaceSavingReporter>(memory_bytes));
  suite.push_back(std::make_unique<LossyCountingReporter>(memory_bytes));
  suite.push_back(std::make_unique<MisraGriesReporter>(memory_bytes));
  suite.push_back(std::make_unique<SketchHeapFrequentReporter>(
      SketchKind::kCountMin, memory_bytes, k));
  suite.push_back(std::make_unique<SketchHeapFrequentReporter>(
      SketchKind::kCu, memory_bytes, k));
  suite.push_back(std::make_unique<SketchHeapFrequentReporter>(
      SketchKind::kCount, memory_bytes, k));
  return suite;
}

std::vector<std::unique_ptr<SignificantReporter>> PersistentSuite(
    size_t memory_bytes, size_t k, const Stream& stream, bool include_pie) {
  std::vector<std::unique_ptr<SignificantReporter>> suite;
  suite.push_back(MakeLtcReporter(memory_bytes, stream, 0.0, 1.0));
  suite.push_back(std::make_unique<BfSketchPersistentReporter>(
      SketchKind::kCountMin, memory_bytes, k));
  suite.push_back(std::make_unique<BfSketchPersistentReporter>(
      SketchKind::kCu, memory_bytes, k));
  suite.push_back(std::make_unique<BfSketchPersistentReporter>(
      SketchKind::kCount, memory_bytes, k));
  suite.push_back(
      std::make_unique<BfSpaceSavingPersistentReporter>(memory_bytes));
  if (include_pie) {
    suite.push_back(std::make_unique<PieReporter>(memory_bytes,
                                                  stream.num_periods()));
  }
  return suite;
}

std::vector<std::unique_ptr<SignificantReporter>> SignificantSuite(
    size_t memory_bytes, size_t k, const Stream& stream, double alpha,
    double beta) {
  std::vector<std::unique_ptr<SignificantReporter>> suite;
  suite.push_back(MakeLtcReporter(memory_bytes, stream, alpha, beta));
  suite.push_back(std::make_unique<CombinedSignificantReporter>(
      SketchKind::kCountMin, memory_bytes, k, alpha, beta));
  suite.push_back(std::make_unique<CombinedSignificantReporter>(
      SketchKind::kCu, memory_bytes, k, alpha, beta));
  suite.push_back(std::make_unique<CombinedSignificantReporter>(
      SketchKind::kCount, memory_bytes, k, alpha, beta));
  return suite;
}

namespace {

double MetricOf(const EvalResult& eval, Metric metric) {
  return metric == Metric::kPrecision ? eval.precision : eval.are;
}

std::vector<std::string> SuiteHeader(const std::string& x_label,
                                     const SuiteFactory& factory) {
  std::vector<std::string> header = {x_label};
  for (const auto& reporter : factory(64 * 1024, 10)) {
    header.push_back(reporter->name());
  }
  return header;
}

}  // namespace

TextTable SweepMemory(const Dataset& data,
                      const std::vector<size_t>& memory_kb,
                      const SuiteFactory& factory, size_t k, double alpha,
                      double beta, Metric metric) {
  TextTable table(SuiteHeader("memoryKB", factory));
  for (size_t kb : memory_kb) {
    std::vector<std::string> row = {std::to_string(kb)};
    for (auto& reporter : factory(kb * 1024, k)) {
      RunResult result =
          RunReporter(*reporter, data.stream, data.truth, k, alpha, beta);
      row.push_back(FormatMetric(MetricOf(result.eval, metric)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

TextTable SweepK(const Dataset& data, size_t memory_bytes,
                 const std::vector<size_t>& ks, const SuiteFactory& factory,
                 double alpha, double beta, Metric metric) {
  TextTable table(SuiteHeader("k", factory));
  for (size_t k : ks) {
    std::vector<std::string> row = {std::to_string(k)};
    for (auto& reporter : factory(memory_bytes, k)) {
      RunResult result =
          RunReporter(*reporter, data.stream, data.truth, k, alpha, beta);
      row.push_back(FormatMetric(MetricOf(result.eval, metric)));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

namespace {

// Figure titles become file names: keep alphanumerics, squash the rest.
std::string SlugOf(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
    if (slug.size() >= 80) break;
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

}  // namespace

void PrintFigure(const std::string& title, const TextTable& table) {
  std::cout << "\n== " << title << " ==\n";
  table.Print(std::cout);
  std::cout << "-- csv --\n";
  table.PrintCsv(std::cout);
  std::cout.flush();

  // Optional machine-readable copies for plotting pipelines.
  if (const char* dir = std::getenv("LTC_CSV_DIR"); dir && *dir) {
    std::string path = std::string(dir) + "/" + SlugOf(title) + ".csv";
    std::ofstream file(path);
    if (file) table.PrintCsv(file);
  }
}

namespace {

// Fallbacks keep the header well-formed in builds configured without
// the stamps (e.g. ad-hoc compiles outside CMake).
#ifndef LTC_GIT_SHA
#define LTC_GIT_SHA "unknown"
#endif
#ifndef LTC_BUILD_FLAGS
#define LTC_BUILD_FLAGS "unknown"
#endif

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop controls
    out += c;
  }
  return out;
}

}  // namespace

BenchReportHeader MakeBenchReportHeader(const std::string& benchmark) {
  BenchReportHeader header;
  header.benchmark = benchmark;
  const char* sha = std::getenv("LTC_GIT_SHA");
  header.git_sha = (sha != nullptr && *sha != '\0') ? sha : LTC_GIT_SHA;
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  header.timestamp_utc = stamp;
  header.hardware_threads = std::thread::hardware_concurrency();
  header.build_flags = LTC_BUILD_FLAGS;
  header.probe_backend = ProbeBackendName(ActiveProbeBackend());
  return header;
}

std::string BenchReportHeaderJson(const BenchReportHeader& header) {
  std::string json;
  json += "\"schema_version\": " + std::to_string(header.schema_version);
  json += ", \"benchmark\": \"" + JsonEscape(header.benchmark) + "\"";
  json += ", \"git_sha\": \"" + JsonEscape(header.git_sha) + "\"";
  json += ", \"timestamp_utc\": \"" + JsonEscape(header.timestamp_utc) + "\"";
  json += ", \"hardware_threads\": " +
          std::to_string(header.hardware_threads);
  json += ", \"build_flags\": \"" + JsonEscape(header.build_flags) + "\"";
  json += ", \"probe_backend\": \"" + JsonEscape(header.probe_backend) + "\"";
  return json;
}

bool MaybeWriteBenchJson(const std::string& document) {
  const char* path = std::getenv("LTC_BENCH_JSON_OUT");
  if (path == nullptr || *path == '\0') return true;
  std::ofstream file(path);
  if (!file) return false;
  file << document;
  return static_cast<bool>(file.flush());
}

}  // namespace bench
}  // namespace ltc
