// ltc_cli — run LTC over a text trace and print the top-k significant
// items. See CliUsage() / --help for the interface.
//
// With --threads N the trace is ingested by an IngestPipeline feeding an
// N-way ShardedLtc (same total memory budget); reporting is shared with
// the single-table path through the SignificanceEstimator interface.
//
// Durability (docs/DURABILITY.md): --save writes a checksummed snapshot
// frame atomically; --checkpoint-every N additionally rotates mid-run
// snapshots at <save>.<seq>.snap so a crash loses at most one interval;
// --load validates the frame (CRC) and, when the exact file is missing
// or corrupt, recovers by walking back through the rotation.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cli_options.h"
#include "common/backoff.h"
#include "common/format.h"
#include "common/serial.h"
#include "core/ltc.h"
#include "core/read_snapshot.h"
#include "core/sharded_ltc.h"
#include "core/significance_estimator.h"
#include "core/table_layout.h"
#include "ingest/ingest_pipeline.h"
#include "server/aggregator.h"
#include "server/key_codec.h"
#include "server/protocol.h"
#include "server/push_client.h"
#include "server/query_server.h"
#include "snapshot/frame.h"
#include "snapshot/fs.h"
#include "snapshot/snapshot_store.h"
#include "store/sketch_store.h"
#include "stream/trace_io.h"
#include "telemetry/build_info.h"
#include "telemetry/exposition.h"
#include "telemetry/ltc_collectors.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ltc {
namespace {

// Graceful shutdown (SIGINT/SIGTERM): the handler only latches the
// signal number; the feed loops poll it between chunks, stop pushing,
// take a final checkpoint (when --checkpoint-every is active), still
// write --save and the final --metrics-out exposition, and exit with
// the conventional 128+signo so scripts can tell "interrupted but
// durable" from a hard kill.
volatile std::sig_atomic_t g_caught_signal = 0;

void LatchSignal(int signo) { g_caught_signal = signo; }

// SIGUSR1 = dump the flight recorder now (docs/TELEMETRY.md). Same
// latch-only discipline: JSON rendering is nowhere near async-signal
// safe, so the loops poll this between chunks / idle ticks.
volatile std::sig_atomic_t g_dump_trace = 0;

void LatchDumpSignal(int) { g_dump_trace = 1; }

void InstallSignalHandlers() {
  std::signal(SIGINT, LatchSignal);
  std::signal(SIGTERM, LatchSignal);
  std::signal(SIGUSR1, LatchDumpSignal);
}

/// Reads a checkpoint payload: the exact file when its frame validates,
/// else the newest valid snapshot of the <path>.<seq>.snap rotation.
/// Every rejected candidate is reported with its typed error.
std::optional<std::string> LoadCheckpointPayload(const std::string& path) {
  Fs& fs = SystemFs();
  if (const auto bytes = fs.ReadAll(path)) {
    const FrameDecodeResult decoded = DecodeFrame(*bytes);
    if (decoded.ok()) {
      return std::string(decoded.payload);
    }
    std::fprintf(stderr,
                 "ltc_cli: checkpoint '%s' rejected (%s); trying the "
                 "snapshot rotation\n",
                 path.c_str(), SnapshotErrorName(decoded.error));
  }
  SnapshotStore store(path);
  std::string error;
  const auto recovered = store.LoadLatest(&error);
  if (!recovered) {
    std::fprintf(stderr, "ltc_cli: cannot recover checkpoint '%s': %s\n",
                 path.c_str(), error.c_str());
    return std::nullopt;
  }
  for (const auto& skipped : recovered->skipped) {
    std::fprintf(stderr, "ltc_cli: skipped corrupt snapshot '%s' (%s)\n",
                 skipped.path.c_str(), SnapshotErrorName(skipped.error));
  }
  std::fprintf(stderr, "ltc_cli: recovered from snapshot %llu of '%s'\n",
               static_cast<unsigned long long>(recovered->seq),
               store.base_path().c_str());
  return recovered->payload;
}

/// --trace-out: installs the process-wide flight recorder and owns its
/// dumps — SIGUSR1 (polled between chunks / idle ticks) and the final
/// dump on destruction, error exits included.
class TraceSession {
 public:
  explicit TraceSession(const std::string& path) : path_(path) {
    if (path_.empty()) return;
    if (!telemetry::kTracingEnabled) {
      std::fprintf(stderr,
                   "ltc_cli: warning: built with LTC_TRACING=OFF; "
                   "--trace-out ignored\n");
      return;
    }
    recorder_.emplace();
    telemetry::FlightRecorder::Install(&*recorder_);
  }

  ~TraceSession() {
    if (!recorder_) return;
    telemetry::FlightRecorder::Install(nullptr);
    Dump("final");
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return recorder_.has_value(); }
  telemetry::FlightRecorder* recorder() {
    return recorder_ ? &*recorder_ : nullptr;
  }

  /// Dumps now if SIGUSR1 fired since the last poll.
  void PollDumpSignal() {
    if (g_dump_trace == 0) return;
    g_dump_trace = 0;
    if (recorder_) Dump("SIGUSR1");
  }

 private:
  void Dump(const char* why) {
    std::string dump_error;
    if (!recorder_->DumpToFile(path_, &dump_error)) {
      std::fprintf(stderr, "ltc_cli: warning: trace dump failed: %s\n",
                   dump_error.c_str());
    } else {
      std::fprintf(stderr, "ltc_cli: trace (%s) written to '%s'\n", why,
                   path_.c_str());
      std::fflush(stderr);
    }
  }

  std::string path_;
  std::optional<telemetry::FlightRecorder> recorder_;
};

/// ltc_trace_exemplar_duration_usec{span,trace_id}: worst recent span
/// per name; the trace_id label links the scrape to the span tree in
/// the flight-recorder dump. Cardinality is bounded by span names ×
/// distinct worst spans seen at write cadences.
void PublishTraceExemplars(telemetry::MetricsRegistry& registry,
                           telemetry::FlightRecorder* recorder) {
  if (recorder == nullptr) return;
  for (const auto& exemplar : recorder->WorstSpans()) {
    char trace_id[32];
    std::snprintf(trace_id, sizeof(trace_id), "0x%016llx",
                  static_cast<unsigned long long>(exemplar.trace_id));
    registry
        .GaugeOf("ltc_trace_exemplar_duration_usec",
                 "Worst recent span duration per name; trace_id links "
                 "to the flight-recorder dump.",
                 {{"span", exemplar.name}, {"trace_id", trace_id}})
        .Set(static_cast<double>(exemplar.duration_usec));
  }
}

/// Writes the metrics exposition to `path` (.json = JSON form, else
/// Prometheus text), atomically; failures are warnings, never fatal.
void WriteMetricsFile(telemetry::MetricsRegistry& registry,
                      const std::string& path) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = json ? telemetry::ExpositionJson(registry)
                                : telemetry::ExpositionText(registry);
  std::string write_error;
  if (!AtomicWriteFile(SystemFs(), path, body, &write_error)) {
    std::fprintf(stderr, "ltc_cli: warning: cannot write metrics '%s': %s\n",
                 path.c_str(), write_error.c_str());
  }
}

/// --aggregate: the aggregation tier (docs/SERVING.md "Aggregation
/// tier"). No trace is fed; the data arrives as PUSH_SKETCH images from
/// --push-to nodes, merged idempotently by an AggregatorCore and served
/// through the same query front end as a single node. Runs until
/// SIGINT/SIGTERM, like the plain --serve tail.
int RunAggregator(const CliOptions& options) {
  const LtcConfig config = options.ToLtcConfig();
  const bool metrics_enabled = !options.metrics_out.empty();
  telemetry::MetricsRegistry registry;
  if (metrics_enabled) {
    telemetry::RegisterBuildInfo(registry,
                                 ProbeBackendName(ActiveProbeBackend()));
  }
  TraceSession trace_session(options.trace_out);

  ReadSnapshotHub hub;
  // Seed the hub from this thread BEFORE the server starts: queries
  // that beat the first push see an empty table, and once the event
  // loop runs it is the hub's sole publisher (single-publisher
  // contract).
  hub.Publish(std::make_unique<Ltc>(config), 0);

  server::AggregatorCore aggregator(config, &hub, options.agg_stale_after);
  if (metrics_enabled) aggregator.AttachMetrics(&registry);

  // Pushed sketches carry bare item ids (each pusher's interner is
  // local), so the merged view speaks numeric keys.
  server::NumericKeyCodec codec;
  server::QueryServerConfig server_config;
  server_config.port = static_cast<uint16_t>(options.serve_port);
  // Query frames stay small; only PUSH_SKETCH may use the raised cap.
  server_config.max_push_frame_bytes = server::kMaxPushFrameBytes;
  server::QueryServer server(hub, codec, /*num_shards=*/0, server_config);
  server.AttachAggregator(&aggregator);  // before Start: loop reads it
  if (metrics_enabled) server.AttachMetrics(&registry);
  std::string serve_error;
  if (!server.Start(&serve_error)) {
    std::fprintf(stderr, "ltc_cli: cannot serve: %s\n", serve_error.c_str());
    return 1;
  }
  std::fprintf(stderr, "ltc_cli: serving on port %u\n",
               static_cast<unsigned>(server.port()));
  std::fprintf(stderr, "ltc_cli: aggregating (nodes stale after %llu s)\n",
               static_cast<unsigned long long>(options.agg_stale_after));
  std::fflush(stderr);

  while (g_caught_signal == 0) {
    trace_session.PollDumpSignal();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.Stop();
  std::fprintf(
      stderr,
      "ltc_cli: aggregated %llu merge(s) from %zu node(s) (%llu "
      "rejection(s)), served %llu request(s), drained\n",
      static_cast<unsigned long long>(aggregator.merges_total()),
      aggregator.num_nodes(),
      static_cast<unsigned long long>(aggregator.rejects_total()),
      static_cast<unsigned long long>(server.TotalRequests()));
  if (metrics_enabled) {
    PublishTraceExemplars(registry, trace_session.recorder());
    WriteMetricsFile(registry, options.metrics_out);
  }
  return 128 + static_cast<int>(g_caught_signal);
}

// --store: the paged multi-tenant store mode (docs/DURABILITY.md
// "Paged store, WAL, and incremental checkpoints"). Records shard to
// --tenants sketches by item id; each tenant lives in the crash-safe
// SketchStore at --store DIR behind a buffer pool of --mem-budget
// bytes, so total sketch bytes may exceed RAM. Every chunk boundary is
// a Put through the WAL; --checkpoint-every N adds an incremental
// checkpoint (write back dirty pages, truncate the log) every N
// records. Reopening with the same DIR recovers every tenant — WAL
// replay included — and resumes feeding on top of the restored state.
int RunStore(const CliOptions& options) {
  TraceSession trace_session(options.trace_out);

  // 1. Load the trace (file or stdin), exactly like the plain run.
  std::string error;
  std::optional<TraceReadResult> trace;
  if (options.trace_path == "-") {
    std::string text((std::istreambuf_iterator<char>(std::cin)),
                     std::istreambuf_iterator<char>());
    trace = ReadTraceFromString(text, options.periods, options.duration,
                                &error);
  } else {
    trace = ReadTrace(options.trace_path, options.periods, options.duration,
                      &error);
  }
  if (!trace) {
    std::fprintf(stderr, "ltc_cli: %s\n", error.c_str());
    return 1;
  }
  const Stream& stream = trace->stream;

  LtcConfig config = options.ToLtcConfig();
  config.period_seconds = stream.duration() / stream.num_periods();

  // 2. Open (and crash-recover) the store. The directory is created on
  // first use; an existing one restores its tenants below.
  std::error_code ec;
  std::filesystem::create_directories(options.store_dir, ec);
  if (ec) {
    std::fprintf(stderr, "ltc_cli: cannot create store '%s': %s\n",
                 options.store_dir.c_str(), ec.message().c_str());
    return 1;
  }
  store::SketchStoreOptions store_options;
  store_options.mem_budget_bytes = options.mem_budget_bytes;
  auto store = store::SketchStore::Open(SystemFs(), options.store_dir,
                                        store_options, &error);
  if (store == nullptr) {
    std::fprintf(stderr, "ltc_cli: cannot open store '%s': %s\n",
                 options.store_dir.c_str(), error.c_str());
    return 1;
  }
  const store::RecoveryReport& recovery = store->recovery();
  if (recovery.wal_found) {
    std::fprintf(stderr,
                 "ltc_cli: store recovery: replayed %llu WAL record(s) "
                 "(%llu delta(s) applied, %llu stale%s)\n",
                 static_cast<unsigned long long>(recovery.records),
                 static_cast<unsigned long long>(recovery.deltas_applied),
                 static_cast<unsigned long long>(recovery.deltas_stale),
                 recovery.torn_tail ? ", torn tail truncated" : "");
  }

  const bool metrics_enabled = !options.metrics_out.empty();
  telemetry::MetricsRegistry registry;
  if (metrics_enabled) {
    telemetry::RegisterBuildInfo(registry,
                                 ProbeBackendName(ActiveProbeBackend()));
    store->AttachMetrics(&registry);
  }
  auto write_metrics = [&] {
    if (!metrics_enabled) return;
    PublishTraceExemplars(registry, trace_session.recorder());
    WriteMetricsFile(registry, options.metrics_out);
  };

  // 3. Build or restore the tenant tables. A restored tenant keeps its
  // own geometry; mismatched flags surface as the store's typed
  // geometry error on the first Put.
  const uint64_t tenants = options.tenants;
  std::vector<Ltc> tables;
  tables.reserve(tenants);
  uint64_t restored = 0;
  for (uint64_t t = 0; t < tenants; ++t) {
    if (store->Contains(t)) {
      auto loaded = store->Get(t, &error);
      if (!loaded.has_value()) {
        std::fprintf(stderr, "ltc_cli: cannot restore tenant %llu: %s\n",
                     static_cast<unsigned long long>(t), error.c_str());
        return 1;
      }
      tables.push_back(std::move(*loaded));
      ++restored;
    } else {
      tables.emplace_back(config);
    }
  }
  if (restored > 0) {
    std::fprintf(stderr, "ltc_cli: restored %llu of %llu tenant(s) from "
                 "'%s'\n",
                 static_cast<unsigned long long>(restored),
                 static_cast<unsigned long long>(tenants),
                 options.store_dir.c_str());
  }

  // 4. Feed: each chunk boundary is a quiescent barrier — the touched
  // tenants are Put through the WAL, so a kill at any moment loses at
  // most the current chunk.
  const std::span<const Record> records(stream.records());
  size_t chunk = std::min<size_t>(std::max<size_t>(records.size(), 1), 65536);
  if (options.checkpoint_every > 0) {
    chunk = std::min<size_t>(chunk, options.checkpoint_every);
  }
  if (options.stats_every > 0) {
    chunk = std::min<size_t>(chunk, options.stats_every);
  }
  uint64_t since_ckpt = 0;
  uint64_t since_stats = 0;
  // Record -> tenant via a multiplicative mix, not a bare modulus:
  // real item ids often share low-bit structure (hashed tokens, even
  // ids), which would starve whole tenants.
  auto tenant_of = [tenants](ItemId item) -> uint64_t {
    return (static_cast<uint64_t>(item) * uint64_t{0x9E3779B97F4A7C15} >>
            32) % tenants;
  };
  std::vector<std::vector<Record>> shards(tenants);
  for (size_t i = 0; i < records.size(); i += chunk) {
    if (g_caught_signal != 0) break;
    trace_session.PollDumpSignal();
    const size_t n = std::min(chunk, records.size() - i);
    telemetry::Span chunk_span("ingest.chunk");
    chunk_span.AddAttr("records", n);
    for (auto& shard : shards) shard.clear();
    for (const Record& record : records.subspan(i, n)) {
      shards[tenant_of(record.item)].push_back(record);
    }
    for (uint64_t t = 0; t < tenants; ++t) {
      if (shards[t].empty()) continue;
      tables[t].InsertBatch(std::span<const Record>(shards[t]));
      if (!store->Put(t, tables[t], &error)) {
        std::fprintf(stderr, "ltc_cli: store put (tenant %llu) failed: %s\n",
                     static_cast<unsigned long long>(t), error.c_str());
        return 1;
      }
    }
    since_ckpt += n;
    since_stats += n;
    if (options.checkpoint_every > 0 &&
        since_ckpt >= options.checkpoint_every) {
      since_ckpt = 0;
      if (!store->CheckpointDirty(&error)) {
        std::fprintf(stderr, "ltc_cli: warning: store checkpoint failed: "
                     "%s\n", error.c_str());
      }
    }
    if (options.stats_every > 0 && since_stats >= options.stats_every) {
      since_stats = 0;
      write_metrics();
    }
  }

  // 5. Final incremental checkpoint: everything acked is already in
  // the WAL, so this only writes back dirty pages and truncates the
  // log — interrupted runs included (the signal means stop feeding,
  // not stop being durable).
  if (!store->CheckpointDirty(&error)) {
    std::fprintf(stderr, "ltc_cli: warning: final store checkpoint "
                 "failed: %s\n", error.c_str());
  }
  const store::SketchStore::Stats& stats = store->stats();
  std::fprintf(stderr,
               "ltc_cli: store: %llu put(s) (%llu clean), %llu WAL "
               "record(s), %llu checkpoint(s), %zu frame(s) resident "
               "across %zu tenant(s)\n",
               static_cast<unsigned long long>(stats.puts),
               static_cast<unsigned long long>(stats.clean_puts),
               static_cast<unsigned long long>(stats.wal_records),
               static_cast<unsigned long long>(stats.checkpoints),
               store->pool().resident(), store->Tenants().size());
  if (g_caught_signal != 0) {
    write_metrics();
    std::fprintf(stderr,
                 "ltc_cli: interrupted by signal %d; store checkpointed\n",
                 static_cast<int>(g_caught_signal));
    return 128 + static_cast<int>(g_caught_signal);
  }

  // 6. Report: top-k per tenant, on clones so Finalize never touches
  // the durable tables (a reopened run resumes from un-finalized
  // state, same as the snapshot paths).
  write_metrics();
  auto name_of = [&](ItemId item) -> std::string {
    if (trace->used_interner) return trace->interner.Name(item);
    return std::to_string(item);
  };
  TextTable report(
      {"tenant", "item", "frequency", "persistency", "significance"});
  for (uint64_t t = 0; t < tenants; ++t) {
    Ltc finalized = tables[t].CloneAtBarrier();
    finalized.Finalize();
    for (const auto& r : finalized.TopK(options.k)) {
      report.AddRow({std::to_string(t), name_of(r.item),
                     std::to_string(r.frequency),
                     std::to_string(r.persistency),
                     FormatMetric(r.significance)});
    }
  }
  if (options.csv) {
    report.PrintCsv(std::cout);
  } else {
    std::printf(
        "# %zu records, %u periods, %llu tenant(s) in '%s', %s budget\n",
        stream.size(), stream.num_periods(),
        static_cast<unsigned long long>(tenants), options.store_dir.c_str(),
        FormatMemory(options.mem_budget_bytes).c_str());
    report.Print(std::cout);
  }
  return 0;
}

int Run(const CliOptions& options) {
  // Tracing first: the recorder must be installed before the first
  // instrumented seam (snapshot restore below) opens a span.
  TraceSession trace_session(options.trace_out);

  // 1. Load the trace (file or stdin).
  std::string error;
  std::optional<TraceReadResult> trace;
  if (options.trace_path == "-") {
    std::string text((std::istreambuf_iterator<char>(std::cin)),
                     std::istreambuf_iterator<char>());
    trace = ReadTraceFromString(text, options.periods, options.duration,
                                &error);
  } else {
    trace = ReadTrace(options.trace_path, options.periods, options.duration,
                      &error);
  }
  if (!trace) {
    std::fprintf(stderr, "ltc_cli: %s\n", error.c_str());
    return 1;
  }
  const Stream& stream = trace->stream;

  // 2. Build or restore the sketch. A checkpoint carries its own
  // config (and, for sharded tables, its own shard count).
  LtcConfig config = options.ToLtcConfig();
  config.period_seconds = stream.duration() / stream.num_periods();
  std::optional<Ltc> table;
  std::optional<ShardedLtc> sharded;
  SignificanceEstimator* estimator = nullptr;
  if (!options.load_path.empty()) {
    const auto payload = LoadCheckpointPayload(options.load_path);
    if (!payload) return 1;
    if (options.threads > 1) {
      BinaryReader reader(*payload);
      auto restored = ShardedLtc::Deserialize(reader);
      if (!restored || !reader.AtEnd()) {
        std::fprintf(stderr,
                     "ltc_cli: checkpoint '%s' does not hold a sharded "
                     "table (saved without --threads? drop --threads to "
                     "load it)\n",
                     options.load_path.c_str());
        return 1;
      }
      if (restored->num_shards() != options.threads) {
        std::fprintf(stderr,
                     "ltc_cli: note: checkpoint holds %u shards; using "
                     "that instead of --threads %u\n",
                     restored->num_shards(), options.threads);
      }
      sharded = std::move(*restored);
      estimator = &*sharded;
    } else {
      BinaryReader reader(*payload);
      auto restored = Ltc::Deserialize(reader);
      if (!restored || !reader.AtEnd()) {
        std::fprintf(stderr,
                     "ltc_cli: checkpoint '%s' does not hold a single "
                     "table (saved with --threads? pass --threads N to "
                     "load it)\n",
                     options.load_path.c_str());
        return 1;
      }
      table = std::move(*restored);
      estimator = &*table;
    }
  } else if (options.threads > 1) {
    sharded.emplace(config, options.threads);
    estimator = &*sharded;
  } else {
    table.emplace(config);
    estimator = &*table;
  }

  // Observability (docs/TELEMETRY.md): one registry spans all layers —
  // core hot-path sinks, ingest pipeline, snapshot store — written to
  // --metrics-out on exit and at each --stats-every cadence.
  const bool metrics_enabled = !options.metrics_out.empty();
  telemetry::MetricsRegistry registry;
  if (metrics_enabled) {
    telemetry::RegisterBuildInfo(registry,
                                 ProbeBackendName(ActiveProbeBackend()));
  }
#ifdef LTC_METRICS
  // One sink per shard (sized once: the tables keep raw pointers).
  std::vector<LtcMetricsSink> sinks;
  if (metrics_enabled) {
    if (sharded) {
      sinks.resize(sharded->num_shards());
      for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
        sharded->AttachMetricsSink(s, &sinks[s]);
      }
    } else {
      sinks.resize(1);
      table->AttachMetricsSink(&sinks[0]);
    }
  }
#endif

  // Publishes the core sinks (safe only while the tables are quiescent:
  // single-threaded feeding, or after IngestPipeline::Flush()/Stop()).
  auto publish_core = [&] {
#ifdef LTC_METRICS
    for (size_t s = 0; s < sinks.size(); ++s) {
      const Ltc& shard_table =
          sharded ? sharded->shard(static_cast<uint32_t>(s)) : *table;
      telemetry::Labels labels;
      if (sharded) labels = {{"shard", std::to_string(s)}};
      telemetry::PublishLtcSink(
          registry, sinks[s], labels,
          static_cast<size_t>(shard_table.num_buckets()) *
              shard_table.cells_per_bucket());
    }
#endif
  };

  auto write_metrics = [&] {
    if (!metrics_enabled) return;
    publish_core();
    PublishTraceExemplars(registry, trace_session.recorder());
    WriteMetricsFile(registry, options.metrics_out);
  };

  // Serving (docs/SERVING.md): --serve answers queries over TCP while
  // the trace feeds and keeps answering after it ends, until a signal.
  // Every answer comes from a flush-barrier snapshot published into the
  // hub — the server never touches the live tables.
  const bool serving = options.serve_port >= 0;
  ReadSnapshotHub hub;
  // Deep-copies the quiescent sketch into the hub. Call only at
  // barriers: between chunks single-threaded, or right after a
  // pipeline Flush (the sharded path publishes via the pipeline's own
  // hub hook instead, which fires inside Flush()).
  auto publish_snapshot = [&](uint64_t records_applied) {
    if (!serving) return;
    if (sharded) {
      hub.Publish(std::make_unique<ShardedLtc>(sharded->CloneAtBarrier()),
                  records_applied);
    } else {
      hub.Publish(std::make_unique<Ltc>(table->CloneAtBarrier()),
                  records_applied);
    }
  };
  server::NumericKeyCodec numeric_codec;
  server::InternerKeyCodec interner_codec(trace->interner);
  const server::KeyCodec* codec =
      trace->used_interner
          ? static_cast<const server::KeyCodec*>(&interner_codec)
          : &numeric_codec;
  std::optional<server::QueryServer> server;
  if (serving) {
    server::QueryServerConfig server_config;
    server_config.port = static_cast<uint16_t>(options.serve_port);
    server.emplace(hub, *codec, sharded ? sharded->num_shards() : 0,
                   server_config);
    if (metrics_enabled) server->AttachMetrics(&registry);
    std::string serve_error;
    if (!server->Start(&serve_error)) {
      std::fprintf(stderr, "ltc_cli: cannot serve: %s\n", serve_error.c_str());
      return 1;
    }
    // The bound port (resolves --serve 0); scripts scrape this line.
    std::fprintf(stderr, "ltc_cli: serving on port %u\n",
                 static_cast<unsigned>(server->port()));
    std::fflush(stderr);
    // Seed the hub so a --load'ed (or empty) table is servable before
    // the first feed barrier.
    publish_snapshot(0);
  }

  // Aggregation push (docs/SERVING.md "Aggregation tier"): --push-to
  // ships finalized flush-barrier images to an aggregator, epoch-tagged
  // so its retries are idempotent there. Option validation pinned
  // --threads 1, so only the single-table feed loop pushes.
  const bool pushing = !options.push_to.empty();
  std::optional<server::TcpPushTransport> push_transport;
  std::optional<server::SketchPusher> pusher;
  uint64_t push_epoch = 0;
  bool push_enabled = pushing;
  if (pushing) {
    const size_t colon = options.push_to.rfind(':');
    server::SketchPusherConfig push_config;
    push_config.host = options.push_to.substr(0, colon);
    push_config.port = static_cast<uint16_t>(
        std::strtoull(options.push_to.c_str() + colon + 1, nullptr, 10));
    push_config.node_id = options.node_id;
    // With tracing on, push frames carry this node's span context so
    // the aggregator's merge span joins the same trace.
    push_config.propagate_trace = trace_session.active();
    push_transport.emplace();
    pusher.emplace(push_config, &*push_transport);
    if (metrics_enabled) pusher->AttachMetrics(&registry);
  }
  auto push_image = [&](uint64_t records_applied) {
    if (!push_enabled) return;
    Ltc image = table->CloneAtBarrier();
    image.Finalize();
    const auto result = pusher->Push(image, ++push_epoch, records_applied);
    if (result.terminal) {
      // A typed rejection (shape mismatch, stale epoch) cannot heal by
      // resending — stop pushing, keep feeding and serving locally.
      std::fprintf(stderr,
                   "ltc_cli: warning: aggregator rejected push %llu (%s); "
                   "disabling further pushes\n",
                   static_cast<unsigned long long>(push_epoch),
                   server::StatusName(result.status));
      push_enabled = false;
    } else if (!result.delivered) {
      std::fprintf(stderr,
                   "ltc_cli: warning: push %llu undelivered after retries "
                   "(%s); the next cadence retries with a fresher image\n",
                   static_cast<unsigned long long>(push_epoch),
                   result.error.c_str());
    }
  };

  // 3. Feed the stream: parallel pipeline when sharded, the batch fast
  // path otherwise. With --checkpoint-every, mid-run snapshots rotate
  // at <save>.<seq>.snap — after a crash, --load walks back to the
  // newest valid one.
  std::optional<SnapshotStore> rotation;
  // Checkpoints ride out transient I/O errors with a short backoff
  // (docs/DURABILITY.md "Retries and backoff") instead of dropping a
  // rotation slot on the first EIO.
  BackoffPolicy save_retry;
  save_retry.max_attempts = 3;
  save_retry.initial_delay_usec = 10'000;
  save_retry.max_delay_usec = 100'000;
  save_retry.jitter = 0.2;
  if (options.checkpoint_every > 0) {
    SnapshotStoreConfig store_config;
    store_config.retry = save_retry;
    rotation.emplace(options.save_path, store_config);
    if (metrics_enabled) rotation->AttachMetrics(&registry);
  }
  // Chunked feeding so the mid-run hooks — auto-checkpoints and
  // --stats-every metric rewrites — fire at their cadences instead of
  // once at the end. Each cadence keeps its own residue counter, so
  // composing them never fires either one early.
  const std::span<const Record> records(stream.records());
  // Cap the chunk so the signal poll between chunks stays responsive
  // even when no mid-run cadence is configured.
  size_t chunk = std::min<size_t>(std::max<size_t>(records.size(), 1), 65536);
  if (options.checkpoint_every > 0) {
    chunk = std::min<size_t>(chunk, options.checkpoint_every);
  }
  if (options.stats_every > 0) {
    chunk = std::min<size_t>(chunk, options.stats_every);
  }
  if (options.push_every > 0) {
    chunk = std::min<size_t>(chunk, options.push_every);
  }
  uint64_t since_stats = 0;
  uint64_t since_push = 0;
  if (sharded) {
    IngestConfig ingest;
    ingest.checkpoint_every = options.checkpoint_every;
    ingest.checkpoint_retry = save_retry;
    IngestPipeline pipeline(*sharded, ingest);
    if (rotation) pipeline.AttachSnapshotStore(&*rotation);
    if (metrics_enabled) pipeline.AttachMetrics(&registry);
    // Serving: the pipeline publishes a hub snapshot inside each
    // complete Flush(), while the workers are quiescent.
    if (serving) pipeline.AttachReadSnapshotHub(&hub);
    for (size_t i = 0; i < records.size(); i += chunk) {
      if (g_caught_signal != 0) break;
      trace_session.PollDumpSignal();
      const size_t n = std::min(chunk, records.size() - i);
      telemetry::Span chunk_span("ingest.chunk");
      chunk_span.AddAttr("records", n);
      pipeline.PushBatch(records.subspan(i, n));
      if (serving) pipeline.Flush();  // barrier → snapshot publish
      since_stats += n;
      if (options.stats_every > 0 && since_stats >= options.stats_every) {
        since_stats = 0;
        // Quiesce the workers so the per-shard core sinks are safe to
        // read (their fields are plain uint64s owned by the worker).
        pipeline.Flush();
        pipeline.SampleMetrics();
        write_metrics();
      }
    }
    if (g_caught_signal != 0 && rotation) {
      // Final rotation checkpoint: everything accepted so far becomes
      // durable before the workers are torn down.
      std::string ckpt_error;
      if (!pipeline.Checkpoint(&ckpt_error)) {
        std::fprintf(stderr,
                     "ltc_cli: warning: shutdown checkpoint failed: %s\n",
                     ckpt_error.c_str());
      }
    }
    pipeline.Stop();
    if (metrics_enabled) pipeline.SampleMetrics();
    if (pipeline.CheckpointFailures() > 0) {
      std::fprintf(stderr, "ltc_cli: warning: %llu checkpoint(s) failed\n",
                   static_cast<unsigned long long>(
                       pipeline.CheckpointFailures()));
    }
  } else {
    uint64_t since_ckpt = 0;
    for (size_t i = 0; i < records.size(); i += chunk) {
      if (g_caught_signal != 0) break;
      trace_session.PollDumpSignal();
      const size_t n = std::min(chunk, records.size() - i);
      // The chunk span is the local root every per-chunk seam —
      // hub.publish, push.deliver, checkpoint saves — parents under.
      telemetry::Span chunk_span("ingest.chunk");
      chunk_span.AddAttr("records", n);
      estimator->InsertBatch(records.subspan(i, n));
      publish_snapshot(i + n);  // chunk boundary = a quiescent barrier
      since_ckpt += n;
      since_stats += n;
      since_push += n;
      if (options.push_every > 0 && since_push >= options.push_every) {
        since_push = 0;
        push_image(i + n);
      }
      if (rotation && since_ckpt >= options.checkpoint_every &&
          i + n < records.size()) {
        since_ckpt = 0;
        std::string save_error;
        BinaryWriter writer;
        table->Serialize(writer);
        if (!rotation->Save(writer.data(), &save_error)) {
          std::fprintf(stderr, "ltc_cli: warning: checkpoint failed: %s\n",
                       save_error.c_str());
        }
      }
      if (options.stats_every > 0 && since_stats >= options.stats_every) {
        since_stats = 0;
        write_metrics();
      }
    }
    if (g_caught_signal != 0 && rotation) {
      std::string save_error;
      BinaryWriter writer;
      table->Serialize(writer);
      if (!rotation->Save(writer.data(), &save_error)) {
        std::fprintf(stderr,
                     "ltc_cli: warning: shutdown checkpoint failed: %s\n",
                     save_error.c_str());
      }
    }
  }

  // Final push: the whole trace in one cumulative image. Skipped when
  // the cadence already pushed the exact end-of-trace barrier, and on
  // interruption (the signal means stop pushing).
  if (pushing && g_caught_signal == 0 &&
      (push_epoch == 0 || since_push > 0)) {
    push_image(records.size());
  }
  if (pushing) {
    std::fprintf(stderr,
                 "ltc_cli: pushes: %llu delivered in %llu attempt(s) "
                 "(%llu retr%s, %llu rejected)\n",
                 static_cast<unsigned long long>(pusher->delivered()),
                 static_cast<unsigned long long>(pusher->attempts()),
                 static_cast<unsigned long long>(pusher->retries()),
                 pusher->retries() == 1 ? "y" : "ies",
                 static_cast<unsigned long long>(pusher->rejected()));
  }

  // Serving: the trace is fully fed (or the feed was interrupted) —
  // keep answering queries from the final barrier snapshot until a
  // signal, then drain gracefully: in-flight requests are answered and
  // every connection gets a clean FIN before the checkpoint/metrics
  // epilogue below runs.
  if (serving) {
    while (g_caught_signal == 0) {
      trace_session.PollDumpSignal();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    server->Stop();
    std::fprintf(stderr,
                 "ltc_cli: served %llu request(s) (%llu error(s)), drained\n",
                 static_cast<unsigned long long>(server->TotalRequests()),
                 static_cast<unsigned long long>(server->TotalErrors()));
  }

  // 4. Checkpoint before Finalize so a later --load continues cleanly.
  if (!options.save_path.empty()) {
    BinaryWriter writer;
    if (sharded) {
      sharded->Serialize(writer);
    } else {
      table->Serialize(writer);
    }
    std::string save_error;
    if (!AtomicWriteFile(SystemFs(), options.save_path,
                         EncodeFrame(writer.data()), &save_error)) {
      std::fprintf(stderr, "ltc_cli: cannot write checkpoint '%s': %s\n",
                   options.save_path.c_str(), save_error.c_str());
      return 1;
    }
  }

  // Interrupted run: state is durable (--save and any rotation
  // checkpoint above), the exposition below is complete, but the
  // report would cover a truncated stream — skip it and exit with the
  // conventional interrupted status.
  if (g_caught_signal != 0) {
    write_metrics();
    std::fprintf(stderr,
                 "ltc_cli: interrupted by signal %d; state flushed%s\n",
                 static_cast<int>(g_caught_signal),
                 options.save_path.empty() ? "" : ", checkpoint saved");
    return 128 + static_cast<int>(g_caught_signal);
  }
  estimator->Finalize();

  // Exit-time exposition: every run with --metrics-out leaves a final,
  // complete metrics file even when --stats-every never fired.
  write_metrics();

  // 5. Report.
  auto name_of = [&](ItemId item) -> std::string {
    if (trace->used_interner) return trace->interner.Name(item);
    return std::to_string(item);
  };
  TextTable report({"item", "frequency", "persistency", "significance"});
  for (const auto& r : estimator->TopK(options.k)) {
    report.AddRow({name_of(r.item), std::to_string(r.frequency),
                   std::to_string(r.persistency),
                   FormatMetric(r.significance)});
  }
  if (options.csv) {
    report.PrintCsv(std::cout);
  } else {
    std::printf("# %zu records, %u periods, %s memory, s = %g*f + %g*p",
                stream.size(), stream.num_periods(),
                FormatMemory(estimator->MemoryBytes()).c_str(), config.alpha,
                config.beta);
    if (sharded) {
      std::printf(", %u shards", sharded->num_shards());
    }
    std::printf("\n");
    report.Print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace ltc

int main(int argc, char** argv) {
  ltc::InstallSignalHandlers();
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  auto options = ltc::ParseCliOptions(args, &error);
  if (!options) {
    std::fprintf(stderr, "ltc_cli: %s\n%s", error.c_str(),
                 ltc::CliUsage().c_str());
    return 2;
  }
  if (options->show_help) {
    std::fputs(ltc::CliUsage().c_str(), stdout);
    return 0;
  }
  if (options->aggregate) return ltc::RunAggregator(*options);
  if (!options->store_dir.empty()) return ltc::RunStore(*options);
  return ltc::Run(*options);
}
