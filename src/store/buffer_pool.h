// The buffer pool of the paged sketch store: a fixed budget of
// in-memory page frames over many tenants' page files, with CLOCK
// eviction (src/clockcache — the paper's §III-B machinery, generalized
// with pin counts and dirty bits for exactly this use).
//
// Frames are keyed by (tenant, page). Fetch() pins the frame it
// returns; the caller reads or rewrites the payload and must Unpin()
// (marking it dirty when mutated). A dirty frame evicted by the CLOCK
// hand is written back through the PageIo seam before it is dropped —
// its delta is already durable in the WAL by the time it was marked
// dirty (SketchStore's log-before-dirty rule), so eviction write-back
// is an optimization for reads, not a durability event.

#ifndef LTC_STORE_BUFFER_POOL_H_
#define LTC_STORE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clockcache/clock_cache.h"

namespace ltc {
namespace store {

/// Where page images live when they are not resident. DiskManager is
/// the production implementation; tests can substitute their own.
class PageIo {
 public:
  virtual ~PageIo() = default;

  struct Loaded {
    bool found = false;  // false: the page has no image on disk yet
    std::string payload;
    uint64_t lsn = 0;
  };

  /// nullopt + `error` on I/O failure or a corrupt image; found=false
  /// (inside an ok result) when the page simply does not exist.
  virtual std::optional<Loaded> Load(uint64_t tenant, uint32_t page,
                                     std::string* error) = 0;

  /// Durably replaces the page image (atomic write + fsync).
  virtual bool Store(uint64_t tenant, uint32_t page, uint64_t lsn,
                     std::string_view payload, std::string* error) = 0;
};

class BufferPool {
 public:
  struct Frame {
    uint64_t tenant = 0;
    uint32_t page = 0;
    uint64_t lsn = 0;
    bool dirty = false;
    std::string payload;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t pages_loaded = 0;   // PageIo::Load calls that found bytes
    uint64_t pages_stored = 0;   // PageIo::Store calls (eviction + flush)
    uint64_t evictions_clean = 0;
    uint64_t evictions_dirty = 0;
  };

  /// `io` must outlive the pool.
  BufferPool(size_t capacity, PageIo* io);

  /// Returns the (pinned) frame for (tenant, page): a resident hit, or
  /// a miss served through PageIo — evicting a cold frame when full,
  /// writing it back first if dirty. With `create_if_absent`, a page
  /// with no disk image yet becomes a fresh empty frame (lsn 0);
  /// without it, absence is an error. nullptr + `error` on I/O
  /// failure, corruption, or when every frame is pinned.
  Frame* Fetch(uint64_t tenant, uint32_t page, bool create_if_absent,
               std::string* error);

  /// Releases one pin; `mark_dirty` records that the caller rewrote
  /// the payload (write-back owed).
  void Unpin(Frame* frame, bool mark_dirty);

  /// Writes back every dirty frame and clears its dirty bit. The
  /// incremental checkpoint: cost is O(dirty frames), not O(table).
  bool FlushDirty(std::string* error);

  /// Writes back the tenant's dirty frames and drops all its frames
  /// from the pool. Fails if any of them is pinned.
  bool DropTenant(uint64_t tenant, std::string* error);

  /// Every dirty (tenant, page) currently resident.
  std::vector<std::pair<uint64_t, uint32_t>> DirtyPages() const;

  /// The resident frame for (tenant, page), or nullptr (tests).
  const Frame* Peek(uint64_t tenant, uint32_t page) const;

  size_t capacity() const { return capacity_; }
  size_t resident() const { return frames_.size(); }
  size_t dirty_count() const;
  const Stats& stats() const { return stats_; }

  /// True after a failed eviction write-back: the pool fails closed
  /// (stale disk images must not be served) until the store reopens
  /// and replays the WAL.
  bool poisoned() const { return poisoned_; }

 private:
  uint64_t HandleOf(uint64_t tenant, uint32_t page);

  /// Drops the evicted handle's frame, writing it back when dirty.
  bool CompleteEviction(const ClockCache::Evicted& evicted,
                        std::string* error);

  /// Sets `error` and returns true when the pool is poisoned.
  bool Poisoned(std::string* error) const;

  size_t capacity_;
  PageIo* io_;
  ClockCache cache_;
  uint64_t next_handle_ = 1;
  std::map<std::pair<uint64_t, uint32_t>, uint64_t> handle_of_;
  std::unordered_map<uint64_t, Frame> frames_;  // by handle
  Stats stats_;
  bool poisoned_ = false;
};

}  // namespace store
}  // namespace ltc

#endif  // LTC_STORE_BUFFER_POOL_H_
