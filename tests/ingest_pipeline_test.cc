// Tests for the batched insertion fast paths (Ltc::InsertBatch,
// ShardedLtc::InsertBatch) and the parallel IngestPipeline. The central
// claim under test is DETERMINISM: batching and pipelining buy
// throughput, never a different answer — the final sketch state must be
// bit-identical (serialized-bytes equal) to sequential Insert calls over
// the same stream. The concurrency tests double as the tsan workload.

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/sharded_ltc.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/spsc_ring.h"
#include "stream/generators.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace {

LtcConfig TimePaced(const Stream& stream, size_t memory) {
  LtcConfig config;
  config.memory_bytes = memory;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  return config;
}

LtcConfig CountPaced(size_t memory, uint64_t items_per_period) {
  LtcConfig config;
  config.memory_bytes = memory;
  config.period_mode = PeriodMode::kCountBased;
  config.items_per_period = items_per_period;
  return config;
}

std::string Bytes(const Ltc& table) {
  BinaryWriter writer;
  table.Serialize(writer);
  return writer.data();
}

std::string Bytes(const ShardedLtc& sharded) {
  BinaryWriter writer;
  sharded.Serialize(writer);
  return writer.data();
}

void ExpectSameTopK(const SignificanceEstimator& a,
                    const SignificanceEstimator& b, size_t k) {
  auto ra = a.TopK(k);
  auto rb = b.TopK(k);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].item, rb[i].item) << "rank " << i;
    EXPECT_EQ(ra[i].frequency, rb[i].frequency) << "rank " << i;
    EXPECT_EQ(ra[i].persistency, rb[i].persistency) << "rank " << i;
    EXPECT_DOUBLE_EQ(ra[i].significance, rb[i].significance) << "rank " << i;
  }
}

// ------------------------------------------------------------- spsc ring

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing(1).capacity(), 2u);
  EXPECT_EQ(SpscRing(2).capacity(), 2u);
  EXPECT_EQ(SpscRing(3).capacity(), 4u);
  EXPECT_EQ(SpscRing(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing(1024).capacity(), 1024u);
}

TEST(SpscRing, FifoOrderAcrossWraps) {
  SpscRing ring(4);
  Record out[8];
  ItemId next_in = 1, next_out = 1;
  // Push/pop in a ragged pattern so the indices wrap several times.
  for (int round = 0; round < 50; ++round) {
    size_t pushed = 0;
    while (pushed < 3 && ring.TryPush({next_in, 0.5 * next_in})) {
      ++next_in;
      ++pushed;
    }
    size_t popped = ring.PopBatch(out, round % 2 ? 2 : 4);
    for (size_t i = 0; i < popped; ++i) {
      EXPECT_EQ(out[i].item, next_out);
      EXPECT_DOUBLE_EQ(out[i].time, 0.5 * next_out);
      ++next_out;
    }
  }
  while (size_t n = ring.PopBatch(out, 8)) {
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(out[i].item, next_out++);
  }
  EXPECT_EQ(next_out, next_in);  // nothing lost, nothing duplicated
}

TEST(SpscRing, PushBatchStopsAtCapacity) {
  SpscRing ring(4);
  std::vector<Record> records;
  for (ItemId i = 1; i <= 10; ++i) records.push_back({i, 0.0});
  EXPECT_EQ(ring.TryPushBatch(records), 4u);
  EXPECT_EQ(ring.TryPushBatch(records), 0u);  // full
  Record out[4];
  EXPECT_EQ(ring.PopBatch(out, 4), 4u);
  EXPECT_EQ(out[0].item, 1u);
  EXPECT_EQ(ring.PopBatch(out, 4), 0u);  // empty
}

// ---------------------------------------------------------- batch insert

TEST(LtcInsertBatch, BitIdenticalToSequentialTimeBased) {
  Stream stream = MakeZipfStream(30'000, 2'000, 1.1, 30, 101);
  LtcConfig config = TimePaced(stream, 8 * 1024);
  Ltc sequential(config), batched(config);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);
  // Feed in ragged chunk sizes so batch boundaries land everywhere.
  std::span<const Record> rest = stream.records();
  size_t chunk = 1;
  while (!rest.empty()) {
    size_t n = std::min(chunk, rest.size());
    batched.InsertBatch(rest.subspan(0, n));
    rest = rest.subspan(n);
    chunk = chunk * 2 + 1;
  }
  EXPECT_EQ(Bytes(sequential), Bytes(batched));
  sequential.Finalize();
  batched.Finalize();
  ExpectSameTopK(sequential, batched, 50);
}

TEST(LtcInsertBatch, BitIdenticalToSequentialCountBased) {
  Stream stream = MakeZipfStream(30'000, 2'000, 1.1, 30, 103);
  LtcConfig config = CountPaced(8 * 1024, 997);  // deliberately ragged n
  Ltc sequential(config), batched(config);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);
  batched.InsertBatch(stream.records());
  EXPECT_EQ(Bytes(sequential), Bytes(batched));
  EXPECT_TRUE(batched.CheckInvariants());
}

TEST(LtcInsertBatch, EmptyBatchIsANoOp) {
  LtcConfig config = CountPaced(4 * 1024, 100);
  Ltc table(config);
  table.Insert(7);
  std::string before = Bytes(table);
  table.InsertBatch({});
  EXPECT_EQ(Bytes(table), before);
}

TEST(ShardedLtcInsertBatch, BitIdenticalToSequential) {
  Stream stream = MakeZipfStream(40'000, 3'000, 1.0, 40, 107);
  LtcConfig config = TimePaced(stream, 16 * 1024);
  ShardedLtc sequential(config, 4), batched(config, 4);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);
  batched.InsertBatch(stream.records());
  EXPECT_EQ(Bytes(sequential), Bytes(batched));
  sequential.Finalize();
  batched.Finalize();
  ExpectSameTopK(sequential, batched, 50);
}

// -------------------------------------------------------------- pipeline

TEST(IngestPipeline, BitIdenticalToSequentialTimeBased) {
  Stream stream = MakeZipfStream(40'000, 3'000, 1.0, 40, 109);
  LtcConfig config = TimePaced(stream, 16 * 1024);

  ShardedLtc sequential(config, 4);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);

  ShardedLtc piped(config, 4);
  {
    IngestPipeline pipeline(piped);
    pipeline.PushBatch(stream.records());
    pipeline.Stop();
    EXPECT_EQ(pipeline.TotalEnqueued(), stream.size());
    EXPECT_EQ(pipeline.TotalDropped(), 0u);
  }
  EXPECT_EQ(Bytes(sequential), Bytes(piped));
  EXPECT_TRUE(piped.CheckInvariants());

  sequential.Finalize();
  piped.Finalize();
  ExpectSameTopK(sequential, piped, 50);
  for (const auto& report : piped.TopK(50)) {
    EXPECT_EQ(piped.EstimateFrequency(report.item),
              sequential.EstimateFrequency(report.item));
    EXPECT_EQ(piped.EstimatePersistency(report.item),
              sequential.EstimatePersistency(report.item));
  }
}

TEST(IngestPipeline, BitIdenticalToSequentialCountBased) {
  Stream stream = MakeZipfStream(40'000, 3'000, 1.0, 40, 113);
  LtcConfig config = CountPaced(16 * 1024, 1'000);

  ShardedLtc sequential(config, 4);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);

  ShardedLtc piped(config, 4);
  IngestPipeline pipeline(piped);
  pipeline.PushBatch(stream.records());
  pipeline.Stop();
  EXPECT_EQ(Bytes(sequential), Bytes(piped));
}

// Small rings + per-record Push: the producer blocks on full rings and
// the workers wrap the rings thousands of times. This is the main tsan
// workload for the ring's release/acquire protocol.
TEST(IngestPipeline, TinyRingsBackpressureIsLossless) {
  Stream stream = MakeZipfStream(30'000, 2'000, 1.0, 30, 127);
  LtcConfig config = TimePaced(stream, 16 * 1024);

  ShardedLtc sequential(config, 4);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);

  ShardedLtc piped(config, 4);
  IngestConfig ingest;
  ingest.ring_capacity = 8;  // forces constant producer/worker handoff
  ingest.drain_batch = 4;
  ingest.backpressure = BackpressureMode::kBlock;
  IngestPipeline pipeline(piped, ingest);
  for (const Record& r : stream.records()) pipeline.Push(r.item, r.time);
  pipeline.Stop();

  EXPECT_EQ(pipeline.TotalEnqueued(), stream.size());
  EXPECT_EQ(pipeline.TotalDropped(), 0u);
  EXPECT_EQ(Bytes(sequential), Bytes(piped));
}

TEST(IngestPipeline, DropModeAccountsForEveryRecord) {
  Stream stream = MakeZipfStream(30'000, 2'000, 1.0, 30, 131);
  LtcConfig config = TimePaced(stream, 16 * 1024);
  ShardedLtc piped(config, 4);
  IngestConfig ingest;
  ingest.ring_capacity = 8;  // guarantees overflow on a big batch
  ingest.drain_batch = 4;
  ingest.backpressure = BackpressureMode::kDrop;
  IngestPipeline pipeline(piped, ingest);
  pipeline.PushBatch(stream.records());
  pipeline.Flush();

  // Every record is either applied or counted as dropped — never lost.
  EXPECT_EQ(pipeline.TotalEnqueued() + pipeline.TotalDropped(),
            stream.size());
  uint64_t enqueued_sum = 0, drained_sum = 0;
  for (uint32_t s = 0; s < pipeline.num_shards(); ++s) {
    IngestShardStats stats = pipeline.ShardStatsOf(s);
    EXPECT_EQ(stats.drained, stats.enqueued) << "shard " << s;
    EXPECT_EQ(stats.ring_capacity, 8u);
    enqueued_sum += stats.enqueued;
    drained_sum += stats.drained;
  }
  EXPECT_EQ(enqueued_sum, pipeline.TotalEnqueued());
  EXPECT_EQ(drained_sum, pipeline.TotalEnqueued());
  pipeline.Stop();
  EXPECT_TRUE(piped.CheckInvariants());
}

TEST(IngestPipeline, FlushMakesMidStreamStateVisible) {
  Stream stream = MakeZipfStream(20'000, 2'000, 1.0, 20, 137);
  LtcConfig config = TimePaced(stream, 8 * 1024);
  size_t half = stream.size() / 2;
  std::span<const Record> records = stream.records();

  ShardedLtc sequential(config, 4);
  for (size_t i = 0; i < half; ++i) {
    sequential.Insert(records[i].item, records[i].time);
  }

  ShardedLtc piped(config, 4);
  IngestPipeline pipeline(piped);
  pipeline.PushBatch(records.subspan(0, half));
  pipeline.Flush();
  // All accepted records applied and visible: mid-stream snapshot equals
  // the sequential half-fed table exactly.
  EXPECT_EQ(Bytes(sequential), Bytes(piped));

  // The pipeline keeps accepting after a flush.
  pipeline.PushBatch(records.subspan(half));
  pipeline.Stop();
  for (size_t i = half; i < records.size(); ++i) {
    sequential.Insert(records[i].item, records[i].time);
  }
  EXPECT_EQ(Bytes(sequential), Bytes(piped));
}

TEST(IngestPipeline, DestructorStopsAndAppliesEverything) {
  Stream stream = MakeZipfStream(10'000, 1'000, 1.0, 10, 139);
  LtcConfig config = TimePaced(stream, 8 * 1024);
  ShardedLtc sequential(config, 2);
  for (const Record& r : stream.records()) sequential.Insert(r.item, r.time);

  ShardedLtc piped(config, 2);
  {
    IngestPipeline pipeline(piped);
    pipeline.PushBatch(stream.records());
    // No explicit Stop: the destructor must flush and join.
  }
  EXPECT_EQ(Bytes(sequential), Bytes(piped));
}

TEST(IngestPipeline, StopIsIdempotentAndStatsSettle) {
  Stream stream = MakeZipfStream(5'000, 500, 1.0, 10, 149);
  ShardedLtc piped(TimePaced(stream, 8 * 1024), 4);
  IngestPipeline pipeline(piped);
  pipeline.PushBatch(stream.records());
  pipeline.Stop();
  pipeline.Stop();
  EXPECT_EQ(pipeline.num_shards(), 4u);
  for (uint32_t s = 0; s < pipeline.num_shards(); ++s) {
    IngestShardStats stats = pipeline.ShardStatsOf(s);
    EXPECT_EQ(stats.queue_depth, 0u) << "shard " << s;
    EXPECT_EQ(stats.drained, stats.enqueued) << "shard " << s;
    if (stats.enqueued > 0) {
      EXPECT_GT(stats.batches, 0u);
    }
  }
}

TEST(IngestPipeline, FlushesCounterCountsCompletedFlushes) {
  Stream stream = MakeZipfStream(5'000, 500, 1.0, 10, 157);
  ShardedLtc piped(TimePaced(stream, 8 * 1024), 3);
  IngestPipeline pipeline(piped);
  pipeline.PushBatch(stream.records());
  EXPECT_TRUE(pipeline.Flush());
  EXPECT_TRUE(pipeline.Flush());
  pipeline.Stop();
  for (uint32_t s = 0; s < pipeline.num_shards(); ++s) {
    // Each explicit Flush() that drained the lane counts once; Stop()
    // joins workers without flushing, so the count stays at two.
    EXPECT_EQ(pipeline.ShardStatsOf(s).flushes, 2u) << "shard " << s;
  }
}

TEST(IngestPipeline, ShardStatsOfThrowsOutOfRange) {
  ShardedLtc sharded(CountPaced(8 * 1024, 1'000), 2);
  IngestPipeline pipeline(sharded);
  EXPECT_THROW((void)pipeline.ShardStatsOf(2), std::out_of_range);
  EXPECT_THROW((void)pipeline.ShardStatsOf(99), std::out_of_range);
  pipeline.Stop();
}

TEST(IngestPipeline, AttachMetricsPublishesPerShardSeries) {
  Stream stream = MakeZipfStream(5'000, 500, 1.0, 10, 163);
  ShardedLtc piped(TimePaced(stream, 8 * 1024), 2);
  IngestPipeline pipeline(piped);
  telemetry::MetricsRegistry registry;
  pipeline.AttachMetrics(&registry);
  pipeline.PushBatch(stream.records());
  EXPECT_TRUE(pipeline.Flush());
  pipeline.Stop();
  pipeline.SampleMetrics();

  uint64_t enqueued = 0;
  for (uint32_t s = 0; s < pipeline.num_shards(); ++s) {
    enqueued += registry
                    .CounterOf("ltc_ingest_enqueued_total", "", telemetry::Labels{
                                   {"shard", std::to_string(s)}})
                    .Value();
  }
  EXPECT_EQ(enqueued, stream.size());
  // The timed flush recorded at least one latency sample.
  EXPECT_GE(registry
                .HistogramOf("ltc_ingest_flush_duration_usec", "",
                             telemetry::Labels{})
                .Count(),
            1u);
}

TEST(IngestPipeline, SingleShardPipelineMatchesPlainLtc) {
  Stream stream = MakeZipfStream(20'000, 2'000, 1.0, 20, 151);
  LtcConfig config = TimePaced(stream, 8 * 1024);
  Ltc plain(config);
  plain.InsertBatch(stream.records());

  ShardedLtc piped(config, 1);
  IngestPipeline pipeline(piped);
  pipeline.PushBatch(stream.records());
  pipeline.Stop();

  plain.Finalize();
  piped.Finalize();
  ExpectSameTopK(plain, piped, 50);
}

}  // namespace
}  // namespace ltc
