#include "summary/space_saving.h"

#include <algorithm>
#include <cassert>

namespace ltc {

SpaceSaving::SpaceSaving(size_t num_counters) : capacity_(num_counters) {
  assert(num_counters >= 1);
  counters_.reserve(num_counters);
  index_.reserve(num_counters * 2);
}

uint32_t SpaceSaving::AllocBucket() {
  if (!free_buckets_.empty()) {
    uint32_t b = free_buckets_.back();
    free_buckets_.pop_back();
    return b;
  }
  buckets_.push_back({});
  return static_cast<uint32_t>(buckets_.size() - 1);
}

void SpaceSaving::FreeBucket(uint32_t b) { free_buckets_.push_back(b); }

void SpaceSaving::DetachCounter(uint32_t c) {
  Counter& ctr = counters_[c];
  uint32_t b = ctr.bucket;
  Bucket& bucket = buckets_[b];
  if (ctr.prev != kNil) counters_[ctr.prev].next = ctr.next;
  if (ctr.next != kNil) counters_[ctr.next].prev = ctr.prev;
  if (bucket.head == c) bucket.head = ctr.next;
  ctr.prev = ctr.next = kNil;

  if (bucket.head == kNil) {
    // Bucket emptied: unlink from the ascending bucket list and recycle.
    if (bucket.prev != kNil) buckets_[bucket.prev].next = bucket.next;
    if (bucket.next != kNil) buckets_[bucket.next].prev = bucket.prev;
    if (min_bucket_ == b) min_bucket_ = bucket.next;
    FreeBucket(b);
  }
}

void SpaceSaving::AttachCounter(uint32_t c, uint64_t target, uint32_t after) {
  // Reuse an existing bucket with the target count if it is adjacent.
  uint32_t candidate = (after == kNil) ? min_bucket_ : buckets_[after].next;
  uint32_t b;
  if (candidate != kNil && buckets_[candidate].count == target) {
    b = candidate;
  } else {
    b = AllocBucket();
    buckets_[b].count = target;
    buckets_[b].head = kNil;
    buckets_[b].prev = after;
    buckets_[b].next = candidate;
    if (after != kNil) buckets_[after].next = b;
    if (candidate != kNil) buckets_[candidate].prev = b;
    if (after == kNil) min_bucket_ = b;
  }
  Counter& ctr = counters_[c];
  ctr.bucket = b;
  ctr.prev = kNil;
  ctr.next = buckets_[b].head;
  if (buckets_[b].head != kNil) counters_[buckets_[b].head].prev = c;
  buckets_[b].head = c;
}

void SpaceSaving::IncrementCounter(uint32_t c) {
  uint32_t b = counters_[c].bucket;
  uint64_t target = buckets_[b].count + 1;
  bool alone = counters_[c].prev == kNil && counters_[c].next == kNil;
  uint32_t nb = buckets_[b].next;

  if (alone && (nb == kNil || buckets_[nb].count > target)) {
    // Sole occupant and no equal-count neighbour: bump the bucket in place.
    buckets_[b].count = target;
    return;
  }

  // `b` survives DetachCounter iff c is not alone; anchor accordingly.
  uint32_t after = alone ? buckets_[b].prev : b;
  DetachCounter(c);
  AttachCounter(c, target, after);
}

void SpaceSaving::Insert(ItemId item) {
  auto it = index_.find(item);
  if (it != index_.end()) {
    IncrementCounter(it->second);
    return;
  }

  if (counters_.size() < capacity_) {
    counters_.push_back({item, 0, kNil, kNil, kNil});
    uint32_t c = static_cast<uint32_t>(counters_.size() - 1);
    index_[item] = c;
    // New item starts with count 1 at the front of the bucket list;
    // AttachCounter reuses an existing count-1 bucket if one is there.
    AttachCounter(c, 1, kNil);
    return;
  }

  // Replace the minimum item: e_min's count becomes the error bound and
  // the newcomer takes over with f_min + 1.
  uint32_t c = buckets_[min_bucket_].head;
  Counter& ctr = counters_[c];
  index_.erase(ctr.item);
  ctr.error = buckets_[min_bucket_].count;
  ctr.item = item;
  index_[item] = c;
  IncrementCounter(c);
}

uint64_t SpaceSaving::Estimate(ItemId item) const {
  auto it = index_.find(item);
  if (it == index_.end()) return 0;
  return buckets_[counters_[it->second].bucket].count;
}

uint64_t SpaceSaving::ErrorOf(ItemId item) const {
  auto it = index_.find(item);
  if (it == index_.end()) return 0;
  return counters_[it->second].error;
}

uint64_t SpaceSaving::MinCount() const {
  if (counters_.size() < capacity_ || min_bucket_ == kNil) return 0;
  return buckets_[min_bucket_].count;
}

std::vector<SpaceSaving::Entry> SpaceSaving::TopK(size_t k) const {
  std::vector<Entry> all;
  all.reserve(index_.size());
  for (const auto& [item, c] : index_) {
    all.push_back({item, buckets_[counters_[c].bucket].count,
                   counters_[c].error});
  }
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<bool> SpaceSaving::GuaranteedTopK(size_t k) const {
  std::vector<Entry> top = TopK(k + 1);
  size_t reported = std::min(k, top.size());
  std::vector<bool> guaranteed(reported, false);
  // The (k+1)-th estimate bounds any unreported item's true count.
  uint64_t next_best = top.size() > k ? top[k].count : 0;
  for (size_t i = 0; i < reported; ++i) {
    uint64_t lower = top[i].count - top[i].error;
    // Guaranteed in the SET sense: its true count cannot be beaten by
    // anything outside the reported top-k.
    guaranteed[i] = lower >= next_best;
  }
  return guaranteed;
}

bool SpaceSaving::CheckInvariants() const {
  size_t counted = 0;
  uint64_t prev_count = 0;
  for (uint32_t b = min_bucket_; b != kNil; b = buckets_[b].next) {
    const Bucket& bucket = buckets_[b];
    if (bucket.count <= prev_count) return false;  // strictly ascending
    prev_count = bucket.count;
    if (bucket.head == kNil) return false;  // live buckets are non-empty
    uint32_t expected_prev = kNil;
    for (uint32_t c = bucket.head; c != kNil; c = counters_[c].next) {
      const Counter& ctr = counters_[c];
      if (ctr.bucket != b) return false;
      if (ctr.prev != expected_prev) return false;
      auto it = index_.find(ctr.item);
      if (it == index_.end() || it->second != c) return false;
      expected_prev = c;
      ++counted;
    }
  }
  return counted == index_.size();
}

}  // namespace ltc
