// Insertion-throughput microbenchmarks (the paper's "high speed" claim,
// §I/§V): million insertions per second for every algorithm at the 100 KB
// budget on a CAIDA-like stream, via google-benchmark. Only relative
// numbers are meaningful across machines.
//
// After the google-benchmark run, main() prints one versioned JSON
// document (schema in bench_common.h, reading guide in docs/PERF.md)
// recording (a) LTC insert throughput under each supported bucket-probe
// backend — scalar vs vectorized, the perf trajectory of the SoA layout
// — and (b) the metrics sink guard: throughput with no sink attached vs
// a sink attached (docs/TELEMETRY.md), so an instrumentation change
// that slows the detached hot path shows up as a diff in CI logs, not
// as a silent regression. Set LTC_BENCH_JSON_OUT=<path> to also write
// the document to a file (CI commits it as
// bench/trajectory/BENCH_speed.json).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/table_layout.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kMemory = 100 * 1024;
constexpr size_t kK = 100;

// One shared, lazily built stream; sized down for micro runs.
const Stream& SharedStream() {
  static const Stream* stream =
      new Stream(MakeCaidaLike(ScaledRecords(500'000, 10'000'000), 42));
  return *stream;
}

void FeedAll(SignificantReporter& reporter, const Stream& stream,
             benchmark::State& state) {
  for (auto _ : state) {
    reporter.InsertBatch(stream.records(), stream);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}

void BM_LtcInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  LtcConfig config;
  config.memory_bytes = kMemory;
  LtcReporter reporter(config, stream.num_periods(), stream.duration());
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_LtcInsert)->Unit(benchmark::kMillisecond);

void BM_SpaceSavingInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  SpaceSavingReporter reporter(kMemory);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_SpaceSavingInsert)->Unit(benchmark::kMillisecond);

void BM_LossyCountingInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  LossyCountingReporter reporter(kMemory);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_LossyCountingInsert)->Unit(benchmark::kMillisecond);

void BM_MisraGriesInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  MisraGriesReporter reporter(kMemory);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_MisraGriesInsert)->Unit(benchmark::kMillisecond);

void BM_CmHeapInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  SketchHeapFrequentReporter reporter(SketchKind::kCountMin, kMemory, kK);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_CmHeapInsert)->Unit(benchmark::kMillisecond);

void BM_CuHeapInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  SketchHeapFrequentReporter reporter(SketchKind::kCu, kMemory, kK);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_CuHeapInsert)->Unit(benchmark::kMillisecond);

void BM_CountHeapInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  SketchHeapFrequentReporter reporter(SketchKind::kCount, kMemory, kK);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_CountHeapInsert)->Unit(benchmark::kMillisecond);

void BM_BfCuPersistentInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  BfSketchPersistentReporter reporter(SketchKind::kCu, kMemory, kK);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_BfCuPersistentInsert)->Unit(benchmark::kMillisecond);

void BM_PieInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  PieReporter reporter(kMemory, stream.num_periods());
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_PieInsert)->Unit(benchmark::kMillisecond);

void BM_CombinedSignificantInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  CombinedSignificantReporter reporter(SketchKind::kCu, kMemory, kK, 1.0,
                                       1.0);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_CombinedSignificantInsert)->Unit(benchmark::kMillisecond);

// Core micro-op: a single LTC insert on a warm table.
void BM_LtcSingleInsert(benchmark::State& state) {
  LtcConfig config;
  config.memory_bytes = kMemory;
  config.items_per_period = 10'000;
  Ltc table(config);
  uint64_t key = 1;
  for (auto _ : state) {
    table.Insert((key++ % 50'000) + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LtcSingleInsert);

}  // namespace

// Perf-trajectory report (docs/PERF.md): one versioned JSON document
// combining
//  * probe_throughput — best-of-3 full-stream LTC feed under each
//    supported bucket-probe backend (scalar is always measured, so the
//    vectorized win is recorded next to its baseline), and
//  * sink_guard — the same feed with the metrics sink detached vs
//    attached (docs/TELEMETRY.md). With LTC_METRICS compiled out both
//    runs are the identical uninstrumented code (sink_compiled tells
//    the reader which case the numbers describe).
// The document goes to stdout and, when LTC_BENCH_JSON_OUT is set, to
// that path (the CI bench-trajectory step commits it as
// bench/trajectory/BENCH_speed.json).
void ReportPerfTrajectory() {
  const Stream& stream = SharedStream();
  LtcConfig config;
  config.memory_bytes = kMemory;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();

#ifdef LTC_METRICS
  constexpr bool kSinkCompiled = true;
#else
  constexpr bool kSinkCompiled = false;
#endif

  auto best_mops = [&](bool with_sink) {
    double best = 0.0;
    for (int r = 0; r < 3; ++r) {
      Ltc table(config);
#ifdef LTC_METRICS
      LtcMetricsSink sink;
      if (with_sink) table.AttachMetricsSink(&sink);
#else
      (void)with_sink;
#endif
      const auto start = std::chrono::steady_clock::now();
      table.InsertBatch(stream.records());
      const auto end = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(end - start).count();
      if (seconds <= 0.0) continue;
      const double mops =
          static_cast<double>(stream.size()) / seconds / 1e6;
      if (mops > best) best = mops;
    }
    return best;
  };

  // Header first, while the default dispatch is still active — its
  // probe_backend field records what a plain run of this build uses.
  const BenchReportHeader header = MakeBenchReportHeader("bench_speed");

  struct BackendResult {
    const char* name;
    double mops;
  };
  std::vector<BackendResult> probe_results;
  for (ProbeBackend backend :
       {ProbeBackend::kScalar, ProbeBackend::kSse2, ProbeBackend::kAvx2}) {
    if (SetProbeBackend(backend) != backend) continue;  // unsupported
    probe_results.push_back({ProbeBackendName(backend), best_mops(false)});
  }
  SetProbeBackend(BestSupportedProbeBackend());

  const double off = best_mops(false);
  const double on = best_mops(true);
  const double overhead_pct = off > 0.0 ? (off - on) / off * 100.0 : 0.0;

  std::string json = "{\n  " + BenchReportHeaderJson(header) + ",\n";
  json += "  \"records\": " + std::to_string(stream.size()) + ",\n";
  json += "  \"memory_bytes\": " + std::to_string(kMemory) + ",\n";
  json += "  \"probe_throughput\": [\n";
  char line[160];
  for (size_t i = 0; i < probe_results.size(); ++i) {
    std::snprintf(line, sizeof(line),
                  "    {\"backend\": \"%s\", \"insert_mops\": %.3f}%s\n",
                  probe_results[i].name, probe_results[i].mops,
                  i + 1 < probe_results.size() ? "," : "");
    json += line;
  }
  json += "  ],\n";
  std::snprintf(line, sizeof(line),
                "  \"sink_guard\": {\"sink_compiled\": %s, "
                "\"sink_off_mops\": %.3f, \"sink_on_mops\": %.3f, "
                "\"overhead_pct\": %.2f}\n",
                kSinkCompiled ? "true" : "false", off, on, overhead_pct);
  json += line;
  json += "}\n";

  std::fputs(json.c_str(), stdout);
  if (!MaybeWriteBenchJson(json)) {
    std::fprintf(stderr, "bench_speed: failed to write LTC_BENCH_JSON_OUT\n");
  }
}

}  // namespace bench
}  // namespace ltc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ltc::bench::ReportPerfTrajectory();
  return 0;
}
