// Failure-injection / fuzz-style tests: adversarial bytes into every
// deserializer, adversarial text into the trace parser, and randomized
// mutation of valid checkpoints. Nothing here may crash, hang, or return
// a structurally invalid object — corrupt input must surface as a clean
// failure.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serial.h"
#include "core/ltc.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "stream/trace_io.h"

namespace ltc {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = rng.Uniform(max_len + 1);
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng.Uniform(256));
  return out;
}

TEST(Fuzz, RandomBytesIntoDeserializers) {
  Rng rng(0xf22);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string bytes = RandomBytes(rng, 256);
    {
      BinaryReader reader(bytes);
      auto table = Ltc::Deserialize(reader);
      if (table) {
        EXPECT_TRUE(table->CheckInvariants());
      }
    }
    {
      BinaryReader reader(bytes);
      CounterMatrixSketch::Deserialize(reader);
    }
    {
      BinaryReader reader(bytes);
      BloomFilter::Deserialize(reader);
    }
  }
}

TEST(Fuzz, TruncatedValidCheckpointsNeverCrash) {
  LtcConfig config;
  config.memory_bytes = 2 * 1024;
  Ltc table(config);
  Rng rng(77);
  for (int i = 0; i < 5'000; ++i) table.Insert(rng.Uniform(500) + 1);
  BinaryWriter writer;
  table.Serialize(writer);

  // Every prefix must be rejected (only the full buffer can round-trip).
  const std::string& full = writer.data();
  for (size_t len = 0; len < full.size(); len += 7) {
    BinaryReader reader(std::string_view(full).substr(0, len));
    EXPECT_FALSE(Ltc::Deserialize(reader).has_value()) << "prefix " << len;
  }
  BinaryReader reader(full);
  EXPECT_TRUE(Ltc::Deserialize(reader).has_value());
}

TEST(Fuzz, BitFlippedCheckpointsEitherFailOrStayConsistent) {
  LtcConfig config;
  config.memory_bytes = 1024;
  Ltc table(config);
  Rng rng(88);
  for (int i = 0; i < 2'000; ++i) table.Insert(rng.Uniform(300) + 1);
  BinaryWriter writer;
  table.Serialize(writer);

  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = writer.data();
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1 << rng.Uniform(8)));
    BinaryReader reader(mutated);
    auto restored = Ltc::Deserialize(reader);
    if (restored) {
      // A flip that survives validation may change counts but must never
      // yield a structurally broken table. (Flag-byte or geometry
      // corruption is caught by CheckInvariants inside Deserialize.)
      EXPECT_TRUE(restored->CheckInvariants());
      restored->Insert(1);  // and it must still accept inserts
    }
  }
}

TEST(Fuzz, TraceParserOnRandomText) {
  Rng rng(99);
  const char alphabet[] = "0123456789abc,.-# \n";
  for (int trial = 0; trial < 2'000; ++trial) {
    size_t len = rng.Uniform(120);
    std::string text(len, ' ');
    for (char& c : text) {
      c = alphabet[rng.Uniform(sizeof(alphabet) - 1)];
    }
    std::string error;
    auto result = ReadTraceFromString(text, 4, 0, &error);
    if (result) {
      // Whatever parsed must be a well-formed stream.
      EXPECT_GT(result->stream.size(), 0u);
      double last = -1;
      for (const Record& r : result->stream.records()) {
        EXPECT_NE(r.item, 0u);
        EXPECT_GE(r.time, last);
        last = r.time;
      }
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(Fuzz, LtcSurvivesAdversarialInsertPatterns) {
  // Pathological inputs: monotone IDs, all-same ID, two alternating IDs
  // colliding into one bucket, huge timestamps with gaps.
  LtcConfig config;
  config.memory_bytes = 256;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = 0.001;  // very short periods
  Ltc table(config);
  double t = 0;
  Rng rng(123);
  for (int i = 0; i < 20'000; ++i) {
    switch (i % 4) {
      case 0:
        table.Insert(static_cast<ItemId>(i + 1), t);
        break;
      case 1:
        table.Insert(42, t);
        break;
      case 2:
        table.Insert((i % 2) + 7, t);
        break;
      default:
        table.Insert(rng.Next() | 1, t);
    }
    if (i % 100 == 99) t += rng.UniformDouble() * 10;  // big gaps
    ASSERT_TRUE(t >= 0);
  }
  table.Finalize();
  EXPECT_TRUE(table.CheckInvariants());
}

}  // namespace
}  // namespace ltc
