#include "stream/trace_io.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/serial.h"

namespace ltc {
namespace {

void SetError(std::string* error, size_t line, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + message;
  }
}

// Parses the whole token as a decimal uint64; false on any trailing junk.
bool ParseU64(std::string_view token, uint64_t* out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                   *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ParseDouble(std::string_view token, double* out) {
  // std::from_chars for double is not universally available; strtod on a
  // bounded copy keeps this portable.
  std::string copy(token);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::optional<TraceReadResult> ReadTraceFromString(const std::string& text,
                                                   uint32_t num_periods,
                                                   double duration,
                                                   std::string* error) {
  if (num_periods == 0) {
    SetError(error, 0, "num_periods must be >= 1");
    return std::nullopt;
  }

  // Pass 1: tokenize. A trace is interpreted as all-numeric IDs or, if
  // ANY item token is non-numeric (or the reserved 0), every token is
  // interned — mixing the two would risk ID collisions.
  struct Row {
    std::string item;
    double time;
  };
  std::vector<Row> rows;
  bool any_explicit_time = false;
  bool any_plain = false;
  bool all_numeric = true;
  double last_time = 0.0;
  size_t line_number = 0;
  size_t pos = 0;

  while (pos <= text.size()) {
    if (pos == text.size()) break;
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string_view line = Trim(std::string_view(text).substr(pos, eol - pos));
    pos = eol + 1;
    ++line_number;
    if (line.empty() || line.front() == '#') continue;

    std::string_view item_token = line;
    std::string_view time_token;
    size_t comma = line.find(',');
    if (comma != std::string_view::npos) {
      item_token = Trim(line.substr(0, comma));
      time_token = Trim(line.substr(comma + 1));
    }
    if (item_token.empty()) {
      SetError(error, line_number, "empty item token");
      return std::nullopt;
    }
    uint64_t numeric = 0;
    if (!ParseU64(item_token, &numeric) || numeric == 0) {
      all_numeric = false;
    }

    double time;
    if (!time_token.empty()) {
      if (any_plain) {
        SetError(error, line_number, "mixed timestamped and plain lines");
        return std::nullopt;
      }
      if (!ParseDouble(time_token, &time)) {
        SetError(error, line_number,
                 "bad timestamp '" + std::string(time_token) + "'");
        return std::nullopt;
      }
      if (time < 0.0) {
        SetError(error, line_number, "negative timestamp");
        return std::nullopt;
      }
      if (time < last_time) {
        SetError(error, line_number, "timestamps must be nondecreasing");
        return std::nullopt;
      }
      any_explicit_time = true;
    } else {
      if (any_explicit_time) {
        SetError(error, line_number, "mixed timestamped and plain lines");
        return std::nullopt;
      }
      any_plain = true;
      time = static_cast<double>(rows.size()) + 0.5;
    }
    last_time = time;
    rows.push_back({std::string(item_token), time});
  }

  if (rows.empty()) {
    SetError(error, line_number, "trace contains no records");
    return std::nullopt;
  }

  // Pass 2: resolve IDs.
  TraceReadResult result;
  std::vector<Record> records;
  records.reserve(rows.size());
  for (const Row& row : rows) {
    ItemId item;
    if (all_numeric) {
      uint64_t numeric = 0;
      ParseU64(row.item, &numeric);
      item = numeric;
    } else {
      item = result.interner.Intern(row.item);
      result.used_interner = true;
    }
    records.push_back({item, row.time});
  }

  double span = duration;
  if (span <= 0.0) {
    span = any_explicit_time
               ? std::max(records.back().time, 1e-9) * (1.0 + 1e-9)
               : static_cast<double>(records.size());
  }
  if (records.back().time > span) {
    SetError(error, 0, "duration smaller than the last timestamp");
    return std::nullopt;
  }
  result.stream = Stream(std::move(records), num_periods, span);
  return result;
}

std::optional<TraceReadResult> ReadTrace(const std::string& path,
                                         uint32_t num_periods,
                                         double duration,
                                         std::string* error) {
  auto contents = ReadFileToString(path);
  if (!contents) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return std::nullopt;
  }
  return ReadTraceFromString(*contents, num_periods, duration, error);
}

std::string TraceToString(const Stream& stream) {
  std::string out;
  out.reserve(stream.size() * 24);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "# ltc trace: %zu records, %u periods\n",
                stream.size(), stream.num_periods());
  out += buf;
  for (const Record& r : stream.records()) {
    std::snprintf(buf, sizeof(buf), "%llu,%.9g\n",
                  static_cast<unsigned long long>(r.item), r.time);
    out += buf;
  }
  return out;
}

bool WriteTrace(const Stream& stream, const std::string& path) {
  return WriteFile(path, TraceToString(stream));
}

}  // namespace ltc
