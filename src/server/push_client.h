// The pushing half of the aggregation tier (docs/SERVING.md
// "Aggregation tier"): an ingest node ships its flush-barrier sketch
// image to an aggregator over LTCQ's PUSH_SKETCH, surviving a lossy
// network by design.
//
// Failure model — at-least-once delivery:
//
//   * Every socket step (connect, send, recv of the ack) runs under a
//     deadline; a hung aggregator costs one deadline, never forever.
//   * Any transport failure tears the connection down and retries the
//     WHOLE push — reconnect included — on the injectable
//     BackoffPolicy/Clock seam (common/backoff.h), so the retry
//     schedule is exactly testable with a FakeClock.
//   * Because a failure after send may still have delivered the frame,
//     a retry can duplicate a push. That is fine on purpose: pushes are
//     cumulative and epoch-tagged, and the aggregator acks duplicates
//     idempotently (kOk, applied=0). Delivered-with-lost-ack is the
//     classic case, covered by the drop_ack transport fault.
//   * Typed server rejections (stale epoch, shape mismatch, bad sketch,
//     not an aggregator) are TERMINAL — retrying cannot fix a shape —
//     and stop the backoff loop immediately.
//
// The socket work hides behind PushTransport so the chaos tests compose
// a FaultyTransport (src/testing/faulty_transport.h) over the real one;
// production uses TcpPushTransport.

#ifndef LTC_SERVER_PUSH_CLIENT_H_
#define LTC_SERVER_PUSH_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/backoff.h"
#include "common/clock.h"
#include "core/ltc.h"
#include "server/protocol.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace server {

/// Blocking, deadline-bounded byte transport — the seam the fault
/// injector wraps. One connection at a time; Connect after Close
/// reconnects.
class PushTransport {
 public:
  virtual ~PushTransport() = default;

  /// False on refusal, unreachability, or deadline expiry.
  virtual bool Connect(const std::string& host, uint16_t port,
                       uint64_t deadline_usec) = 0;

  /// Sends all of `bytes` or fails. False also covers a broken pipe.
  virtual bool Send(std::string_view bytes, uint64_t deadline_usec) = 0;

  /// Appends up to `max_bytes` received bytes to `out`. False on error,
  /// peer EOF, or deadline expiry with nothing read.
  virtual bool Recv(std::string* out, size_t max_bytes,
                    uint64_t deadline_usec) = 0;

  virtual void Close() = 0;
  virtual bool connected() const = 0;
};

/// POSIX TCP implementation: nonblocking socket + poll(2) deadlines,
/// mirroring the server's dependency-free stance.
class TcpPushTransport final : public PushTransport {
 public:
  TcpPushTransport() = default;
  ~TcpPushTransport() override { Close(); }

  TcpPushTransport(const TcpPushTransport&) = delete;
  TcpPushTransport& operator=(const TcpPushTransport&) = delete;

  bool Connect(const std::string& host, uint16_t port,
               uint64_t deadline_usec) override;
  bool Send(std::string_view bytes, uint64_t deadline_usec) override;
  bool Recv(std::string* out, size_t max_bytes,
            uint64_t deadline_usec) override;
  void Close() override;
  bool connected() const override { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

struct SketchPusherConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Stable identity of this node at the aggregator. Two pushers MUST
  /// NOT share a node_id (the second would keep superseding the first).
  uint64_t node_id = 1;

  /// Per-step deadline (connect, send, ack recv each get one).
  uint64_t io_deadline_usec = 5'000'000;

  /// Retry schedule for transport failures. The default retries hard —
  /// an aggregation push is worth waiting out a restart for.
  BackoffPolicy retry{/*max_attempts=*/8, /*initial_delay_usec=*/20'000,
                      /*multiplier=*/2.0, /*max_delay_usec=*/1'000'000,
                      /*jitter=*/0.25, /*seed=*/1};

  /// Append the v3 trace-context extension to push frames, parenting
  /// the aggregator's merge span under this node's delivery span. Only
  /// effective while a FlightRecorder is installed AND the server
  /// speaks v3 — leave off against pre-v3 aggregators (they answer
  /// extended frames with kErrMalformed).
  bool propagate_trace = false;
};

/// One node's push loop: serialize a finalized flush-barrier clone,
/// deliver it with retries, interpret the ack. Single-threaded.
class SketchPusher {
 public:
  struct Result {
    bool delivered = false;   // an ack with status kOk arrived
    bool applied = false;     // false on a duplicate ack
    bool terminal = false;    // rejected with a typed error: do not retry
    Status status = Status::kOk;  // kOk, or the rejection status
    std::string error;        // last transport/protocol failure detail
  };

  /// The transport must outlive the pusher. `clock` defaults to
  /// SystemClock; tests inject FakeClock so retry schedules cost no
  /// wall time.
  SketchPusher(const SketchPusherConfig& config, PushTransport* transport,
               Clock* clock = nullptr);

  SketchPusher(const SketchPusher&) = delete;
  SketchPusher& operator=(const SketchPusher&) = delete;

  /// Registers ltc_push_* families; the registry must outlive this.
  void AttachMetrics(telemetry::MetricsRegistry* registry);

  /// Pushes `table` (finalized — Finalize the clone first) as epoch
  /// `epoch_seq`, blocking through the retry schedule. `records` is the
  /// stream position at the table's barrier.
  Result Push(const Ltc& table, uint64_t epoch_seq, uint64_t records);

  /// Pushes pre-serialized sketch bytes (the corruption-sweep hook).
  Result PushSerialized(std::string_view sketch_bytes, uint64_t epoch_seq,
                        uint64_t records);

  uint64_t attempts() const { return attempts_; }
  uint64_t retries() const { return retries_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t delivered() const { return delivered_; }

 private:
  /// One wire round trip. Returns true on a decoded ack (fills
  /// `result`); false = transport/protocol failure worth retrying.
  bool Attempt(const std::string& frame, Result* result);

  SketchPusherConfig config_;
  PushTransport* transport_;
  Clock* clock_;

  uint64_t attempts_ = 0;
  uint64_t retries_ = 0;
  uint64_t rejected_ = 0;
  uint64_t delivered_ = 0;

  telemetry::Counter* attempts_counter_ = nullptr;
  telemetry::Counter* retries_counter_ = nullptr;
  telemetry::Counter* rejected_counter_ = nullptr;
  telemetry::Counter* delivered_counter_ = nullptr;
};

}  // namespace server
}  // namespace ltc

#endif  // LTC_SERVER_PUSH_CLIENT_H_
