#include "store/wal.h"

#include "common/crc32.h"
#include "common/serial.h"

namespace ltc {
namespace store {
namespace {

constexpr uint32_t kWalMagic = 0x4c57414c;  // "LWAL"
constexpr uint32_t kWalFormatVersion = 1;

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  BinaryWriter body;
  body.PutU32(static_cast<uint32_t>(record.pages.size()));
  for (const WalPageDelta& delta : record.pages) {
    body.PutU32(delta.page_id);
    body.PutString(delta.payload);
  }
  BinaryWriter header;
  header.PutU32(kWalMagic);
  header.PutU32(kWalFormatVersion);
  header.PutU64(record.lsn);
  header.PutU64(record.tenant);
  header.PutU64(body.size());
  header.PutU32(Crc32(body.data()));
  header.PutU32(Crc32(header.data()));
  std::string bytes = header.data();
  bytes += body.data();
  return bytes;
}

WalDecodeResult DecodeWalRecord(std::string_view bytes) {
  WalDecodeResult result;
  if (bytes.size() < kWalRecordHeaderSize) {
    result.error = SnapshotError::kTooShort;
    return result;
  }
  BinaryReader reader(bytes.substr(0, kWalRecordHeaderSize));
  const uint32_t magic = reader.GetU32();
  const uint32_t version = reader.GetU32();
  const uint64_t lsn = reader.GetU64();
  const uint64_t tenant = reader.GetU64();
  const uint64_t body_len = reader.GetU64();
  const uint32_t body_crc = reader.GetU32();
  const uint32_t header_crc = reader.GetU32();
  if (magic != kWalMagic) {
    result.error = SnapshotError::kBadMagic;
    return result;
  }
  if (version != kWalFormatVersion) {
    result.error = SnapshotError::kBadVersion;
    return result;
  }
  if (header_crc != Crc32(bytes.substr(0, kWalRecordHeaderSize - 4))) {
    result.error = SnapshotError::kBadHeaderCrc;
    return result;
  }
  if (bytes.size() - kWalRecordHeaderSize < body_len) {
    result.error = SnapshotError::kLengthMismatch;
    return result;
  }
  std::string_view body = bytes.substr(kWalRecordHeaderSize, body_len);
  if (body_crc != Crc32(body)) {
    result.error = SnapshotError::kBadPayloadCrc;
    return result;
  }
  BinaryReader body_reader(body);
  const uint32_t num_pages = body_reader.GetU32();
  WalRecord record;
  record.lsn = lsn;
  record.tenant = tenant;
  record.pages.reserve(num_pages);
  for (uint32_t i = 0; i < num_pages; ++i) {
    WalPageDelta delta;
    delta.page_id = body_reader.GetU32();
    delta.payload = body_reader.GetString();
    if (body_reader.failed()) break;
    record.pages.push_back(std::move(delta));
  }
  if (!body_reader.AtEnd()) {
    // CRC-intact body that does not parse exactly: an encoder this
    // build does not speak. Reject rather than guess.
    result.error = SnapshotError::kPayloadRejected;
    return result;
  }
  result.record = std::move(record);
  result.consumed = kWalRecordHeaderSize + body_len;
  return result;
}

WalReadResult ReadWalRecords(std::string_view log) {
  WalReadResult result;
  size_t offset = 0;
  while (offset < log.size()) {
    WalDecodeResult decoded = DecodeWalRecord(log.substr(offset));
    if (!decoded.ok()) {
      result.torn = true;
      result.tail_error = decoded.error;
      break;
    }
    result.records.push_back(std::move(decoded.record));
    offset += decoded.consumed;
  }
  result.valid_bytes = offset;
  return result;
}

}  // namespace store
}  // namespace ltc
