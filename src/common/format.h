// Lightweight text-table and CSV output helpers shared by the benchmark
// harness. Each figure-reproduction binary prints an aligned human-readable
// table (the "series the paper plots") plus an optional CSV copy.

#ifndef LTC_COMMON_FORMAT_H_
#define LTC_COMMON_FORMAT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ltc {

/// Formats a byte count the way the paper labels its x-axes ("10KB").
std::string FormatMemory(size_t bytes);

/// Formats a double with a sensible number of significant digits for
/// metric reporting (precision in [0,1], ARE possibly spanning 1e-6..1e6).
std::string FormatMetric(double v);

/// An aligned text table with a header row, built incrementally and
/// printed in one shot. Columns are right-aligned except the first.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment to the stream.
  void Print(std::ostream& os) const;

  /// Renders as CSV (no quoting; callers do not emit commas in cells).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ltc

#endif  // LTC_COMMON_FORMAT_H_
