#!/usr/bin/env bash
# Validates a Prometheus text exposition (format 0.0.4) the way a
# scraper would: line grammar, # TYPE before any sample of its family,
# numeric values, and histogram integrity — cumulative buckets
# non-decreasing, a le="+Inf" bucket per series, and _count equal to
# the +Inf cumulative. Exits 0 and prints a one-line summary on
# success; prints every violation and exits 1 otherwise.
#
#   usage: check_exposition.sh FILE

set -u

file="${1:-}"
if [ -z "$file" ]; then
  echo "usage: check_exposition.sh FILE" >&2
  exit 2
fi
if [ ! -r "$file" ]; then
  echo "check_exposition.sh: cannot read '$file'" >&2
  exit 2
fi

awk '
function fail(msg) {
  printf("check_exposition: line %d: %s\n", NR, msg)
  bad = 1
}

/^# HELP / { next }

/^# TYPE / {
  name = $3
  kind = $4
  if (kind != "counter" && kind != "gauge" && kind != "histogram") {
    fail("unknown metric type \"" kind "\"")
    next
  }
  if (name in type) fail("duplicate # TYPE for " name)
  type[name] = kind
  next
}

/^#/ { next }      # other comments are legal
/^$/ { next }

{
  # Sample line: name{labels} value  |  name value
  if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/)) {
    fail("malformed metric name: " $0)
    next
  }
  name = substr($0, 1, RLENGTH)
  rest = substr($0, RLENGTH + 1)
  labels = ""
  if (substr(rest, 1, 1) == "{") {
    close_idx = index(rest, "}")
    if (close_idx == 0) {
      fail("unterminated label set: " $0)
      next
    }
    labels = substr(rest, 1, close_idx)
    rest = substr(rest, close_idx + 1)
  }
  if (rest !~ /^ -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?$/) {
    fail("non-numeric sample value: " $0)
    next
  }
  value = substr(rest, 2) + 0
  samples++

  # Which family does the sample belong to?
  family = name
  if (family ~ /_bucket$/ && substr(family, 1, length(family) - 7) in type)
    family = substr(family, 1, length(family) - 7)
  else if (family ~ /_sum$/ && substr(family, 1, length(family) - 4) in type)
    family = substr(family, 1, length(family) - 4)
  else if (family ~ /_count$/ && substr(family, 1, length(family) - 6) in type)
    family = substr(family, 1, length(family) - 6)
  if (!(family in type)) {
    fail("sample before its # TYPE: " name)
    next
  }

  if (type[family] != "histogram") {
    if (name != family) fail("suffixed sample of non-histogram: " name)
    if (type[family] == "counter" && value < 0)
      fail("negative counter: " $0)
    next
  }

  # Histogram pieces.
  if (name ~ /_bucket$/) {
    if (!match(labels, /le="[^"]*"/)) {
      fail("_bucket without le label: " $0)
      next
    }
    le = substr(labels, RSTART + 4, RLENGTH - 5)
    key = labels
    sub(/,?le="[^"]*"/, "", key)
    sub(/\{,/, "{", key)
    if (key == "{}") key = ""
    series = family SUBSEP key
    if (series in last_cum && value + 0 < last_cum[series] + 0)
      fail("cumulative bucket decreased: " $0)
    last_cum[series] = value
    if (le == "+Inf") inf_cum[series] = value
    bucket_seen[series] = NR
  } else if (name ~ /_count$/) {
    series = family SUBSEP labels
    count_of[series] = value
    count_line[series] = NR
  }
  # _sum: numeric check above is all the format requires.
  next
}

END {
  for (series in bucket_seen) {
    split(series, parts, SUBSEP)
    where = parts[1] " " parts[2]
    if (!(series in inf_cum)) {
      printf("check_exposition: histogram series %s has no le=\"+Inf\" bucket\n", where)
      bad = 1
    } else if (!(series in count_of)) {
      printf("check_exposition: histogram series %s has no _count\n", where)
      bad = 1
    } else if (count_of[series] + 0 != inf_cum[series] + 0) {
      printf("check_exposition: line %d: _count %s != +Inf cumulative %s for %s\n",
             count_line[series], count_of[series], inf_cum[series], where)
      bad = 1
    }
  }
  if (bad) exit 1
  n = 0
  for (f in type) n++
  printf("check_exposition: OK (%d families, %d samples)\n", n, samples)
}
' "$file"
