#include "snapshot/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ltc {
namespace {

class PosixFs final : public Fs {
 public:
  bool WriteAll(const std::string& path, std::string_view data) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    const char* p = data.data();
    size_t remaining = data.size();
    bool ok = true;
    while (remaining > 0) {
      const ssize_t n = ::write(fd, p, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      p += n;
      remaining -= static_cast<size_t>(n);
    }
    ok = (::close(fd) == 0) && ok;
    return ok;
  }

  bool AppendAll(const std::string& path, std::string_view data) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    const char* p = data.data();
    size_t remaining = data.size();
    bool ok = true;
    while (remaining > 0) {
      const ssize_t n = ::write(fd, p, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      p += n;
      remaining -= static_cast<size_t>(n);
    }
    ok = (::close(fd) == 0) && ok;
    return ok;
  }

  std::optional<std::string> ReadAll(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    std::string out;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) return std::nullopt;
    return out;
  }

  bool Sync(const std::string& path) override {
    return SyncFd(path, O_RDONLY | O_CLOEXEC);
  }

  bool SyncDir(const std::string& path) override {
    return SyncFd(path, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  }

  bool Rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str()) == 0;
  }

  bool Remove(const std::string& path) override {
    return ::unlink(path.c_str()) == 0;
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  std::optional<std::vector<std::string>> ListDir(
      const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return std::nullopt;
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

 private:
  static bool SyncFd(const std::string& path, int flags) {
    const int fd = ::open(path.c_str(), flags);
    if (fd < 0) return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
  }
};

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

Fs& SystemFs() {
  static PosixFs fs;
  return fs;
}

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool AtomicWriteFile(Fs& fs, const std::string& path, std::string_view data,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  if (!fs.WriteAll(tmp, data)) {
    SetError(error, "cannot write temp file '" + tmp + "'");
    fs.Remove(tmp);
    return false;
  }
  if (!fs.Sync(tmp)) {
    SetError(error, "cannot fsync temp file '" + tmp + "'");
    fs.Remove(tmp);
    return false;
  }
  if (!fs.Rename(tmp, path)) {
    SetError(error, "cannot rename '" + tmp + "' to '" + path + "'");
    fs.Remove(tmp);
    return false;
  }
  if (!fs.SyncDir(DirnameOf(path))) {
    // The rename already happened; the new file is visible but its
    // directory entry may not be durable. Report failure so the caller
    // does not count this snapshot as safely persisted.
    SetError(error, "cannot fsync directory of '" + path + "'");
    return false;
  }
  return true;
}

}  // namespace ltc
