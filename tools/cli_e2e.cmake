# End-to-end: generate a trace, run the CLI on it with a checkpoint,
# restore the checkpoint on an empty continuation, verify csv output.
execute_process(COMMAND ${LTC_GEN} --dataset zipf --records 5000
                --periods 10 ${WORK_DIR}/e2e_trace.csv
                RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "ltc_gen failed: ${gen_rc}")
endif()

execute_process(COMMAND ${LTC_CLI} --k 5 --periods 10 --csv
                --save ${WORK_DIR}/e2e_ckpt.bin ${WORK_DIR}/e2e_trace.csv
                OUTPUT_VARIABLE out RESULT_VARIABLE cli_rc)
if(NOT cli_rc EQUAL 0)
  message(FATAL_ERROR "ltc_cli failed: ${cli_rc}")
endif()
string(FIND "${out}" "item,frequency,persistency,significance" header_pos)
if(header_pos EQUAL -1)
  message(FATAL_ERROR "csv header missing in: ${out}")
endif()

execute_process(COMMAND ${LTC_CLI} --k 5 --periods 10 --csv
                --load ${WORK_DIR}/e2e_ckpt.bin ${WORK_DIR}/e2e_trace.csv
                RESULT_VARIABLE reload_rc)
if(NOT reload_rc EQUAL 0)
  message(FATAL_ERROR "ltc_cli --load failed: ${reload_rc}")
endif()

# Sharded checkpoints: --threads composes with --save/--load, and
# --checkpoint-every rotates mid-run snapshots next to the save path.
execute_process(COMMAND ${LTC_CLI} --k 5 --periods 10 --csv --threads 2
                --save ${WORK_DIR}/e2e_sharded.bin --checkpoint-every 1000
                ${WORK_DIR}/e2e_trace.csv
                RESULT_VARIABLE sharded_rc)
if(NOT sharded_rc EQUAL 0)
  message(FATAL_ERROR "ltc_cli --threads --save failed: ${sharded_rc}")
endif()
file(GLOB rotation ${WORK_DIR}/e2e_sharded.bin.*.snap)
if(rotation STREQUAL "")
  message(FATAL_ERROR "--checkpoint-every produced no rotation snapshots")
endif()

execute_process(COMMAND ${LTC_CLI} --k 5 --periods 10 --csv --threads 2
                --load ${WORK_DIR}/e2e_sharded.bin ${WORK_DIR}/e2e_trace.csv
                RESULT_VARIABLE sharded_reload_rc)
if(NOT sharded_reload_rc EQUAL 0)
  message(FATAL_ERROR "ltc_cli --threads --load failed: ${sharded_reload_rc}")
endif()

# A missing/damaged checkpoint must walk back to the rotation, not
# fail: delete the final save, leaving only the mid-run snapshots.
file(REMOVE ${WORK_DIR}/e2e_sharded.bin)
execute_process(COMMAND ${LTC_CLI} --k 5 --periods 10 --csv --threads 2
                --load ${WORK_DIR}/e2e_sharded.bin ${WORK_DIR}/e2e_trace.csv
                RESULT_VARIABLE walkback_rc)
if(NOT walkback_rc EQUAL 0)
  message(FATAL_ERROR "rotation walk-back failed: ${walkback_rc}")
endif()
