#include "testing/chaos_injector.h"

namespace ltc {

ChaosInjector::ChaosInjector(IngestPipeline& pipeline,
                             const ChaosConfig& config, FailpointFs* fs)
    : pipeline_(&pipeline),
      config_(config),
      fs_(fs),
      rng_(config.seed),
      hang_budget_(pipeline.num_shards(), 0) {}

ChaosInjector::ChaosInjector(const ChaosConfig& config, FailpointFs* fs)
    : pipeline_(nullptr), config_(config), fs_(fs), rng_(config.seed) {}

void ChaosInjector::AttachTransport(FaultyTransport* transport) {
  transports_.push_back(transport);
}

void ChaosInjector::Step() {
  if (pipeline_ != nullptr) {
    for (uint32_t s = 0; s < hang_budget_.size(); ++s) {
      if (hang_budget_[s] > 0 && --hang_budget_[s] == 0) {
        pipeline_->HangWorkerForTest(s, false);
      }
    }
    if (rng_.Bernoulli(config_.kill_probability)) {
      pipeline_->KillWorkerForTest(
          static_cast<uint32_t>(rng_.Uniform(pipeline_->num_shards())));
      ++kills_;
    }
    if (rng_.Bernoulli(config_.hang_probability)) {
      const auto shard =
          static_cast<uint32_t>(rng_.Uniform(pipeline_->num_shards()));
      if (hang_budget_[shard] == 0) {
        pipeline_->HangWorkerForTest(shard, true);
        hang_budget_[shard] = config_.hang_release_steps < 1
                                  ? 1
                                  : config_.hang_release_steps;
        ++hangs_;
      }
    }
  }
  if (fs_ != nullptr && rng_.Bernoulli(config_.io_fault_probability)) {
    // Recoverable failures only: a retry can outlast them. kCrash and
    // the silent-corruption modes belong to the crash-consistency
    // sweeps, not the self-healing harness.
    static constexpr FailpointFs::Failure kRecoverable[] = {
        FailpointFs::Failure::kWriteError,
        FailpointFs::Failure::kSyncError,
        FailpointFs::Failure::kRenameError,
    };
    const auto failure = kRecoverable[rng_.Uniform(3)];
    const uint64_t burst =
        rng_.UniformRange(1, config_.max_io_burst < 1 ? 1
                                                      : config_.max_io_burst);
    // Trigger at the next matching mutating op, whenever that comes.
    fs_->Arm(failure, fs_->mutating_ops(), rng_.Next(), burst);
    ++io_faults_;
  }
  if (!transports_.empty() &&
      rng_.Bernoulli(config_.transport_fault_probability)) {
    // Every transport fault is one a push retry can outlast, so the
    // whole menu is fair game (the analogue of "recoverable only").
    FaultyTransport* victim = transports_[rng_.Uniform(transports_.size())];
    const auto kind =
        static_cast<TransportFault>(rng_.Uniform(kNumTransportFaults));
    const uint64_t burst = rng_.UniformRange(
        1, config_.max_transport_burst < 1 ? 1 : config_.max_transport_burst);
    victim->Arm(kind, burst);
    ++transport_faults_;
  }
}

void ChaosInjector::ReleaseAll() {
  if (pipeline_ == nullptr) return;
  for (uint32_t s = 0; s < hang_budget_.size(); ++s) {
    if (hang_budget_[s] > 0) {
      hang_budget_[s] = 0;
      pipeline_->HangWorkerForTest(s, false);
    }
  }
}

}  // namespace ltc
