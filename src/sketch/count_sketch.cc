#include "sketch/count_sketch.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/bob_hash.h"
#include "common/hash.h"

namespace ltc {

CountSketch::CountSketch(size_t memory_bytes, uint32_t depth, uint64_t seed)
    : depth_(depth), seed_(seed) {
  assert(depth >= 1);
  width_ = static_cast<uint32_t>(
      std::max<size_t>(1, memory_bytes / (sizeof(int32_t) * depth)));
  counters_.assign(static_cast<size_t>(depth_) * width_, 0);
}

uint32_t CountSketch::Cell(uint32_t row, ItemId item) const {
  uint32_t h = BobHash32(item, static_cast<uint32_t>(Mix64(seed_ + row)));
  return FastRange32(h, width_);
}

int32_t CountSketch::Sign(uint32_t row, ItemId item) const {
  // Independent sign hash per row (different seed space from Cell).
  uint32_t h =
      BobHash32(item, static_cast<uint32_t>(Mix64(seed_ + 0x5109 + row)));
  return (h & 1) ? 1 : -1;
}

void CountSketch::Insert(ItemId item, int32_t count) {
  for (uint32_t r = 0; r < depth_; ++r) {
    counters_[static_cast<size_t>(r) * width_ + Cell(r, item)] +=
        Sign(r, item) * count;
  }
}

int64_t CountSketch::Query(ItemId item) const {
  std::vector<int64_t> estimates(depth_);
  for (uint32_t r = 0; r < depth_; ++r) {
    estimates[r] =
        static_cast<int64_t>(
            counters_[static_cast<size_t>(r) * width_ + Cell(r, item)]) *
        Sign(r, item);
  }
  std::nth_element(estimates.begin(), estimates.begin() + depth_ / 2,
                   estimates.end());
  return estimates[depth_ / 2];
}

void CountSketch::Clear() {
  std::memset(counters_.data(), 0, counters_.size() * sizeof(int32_t));
}

}  // namespace ltc
