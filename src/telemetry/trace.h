// End-to-end tracing: an always-on flight recorder plus RAII spans.
//
// The recorder keeps the last N spans per thread in lock-free ring
// buffers — cheap enough to leave on in production — and dumps them as
// Chrome trace-event JSON (open the file in Perfetto or
// chrome://tracing) on demand, on SIGUSR1, or over the wire via the
// DUMP_TRACE opcode (docs/TELEMETRY.md#tracing--flight-recorder).
//
// Span model:
//   * A `Span` is an RAII scope. Construction stamps the begin time on
//     the recorder's injectable `Clock`; destruction stamps the end and
//     commits one fixed-size slot into the calling thread's ring.
//   * Parentage is automatic: a thread-local "current span" makes a new
//     span the child of the innermost live span on the same thread. A
//     remote `TraceContext` (carried by the LTCQ trace-context frame
//     extension) overrides that, stitching one trace across processes.
//   * Span names and attribute keys MUST be string literals (or other
//     pointers that outlive the recorder): slots store the pointer, not
//     a copy, so recording never allocates.
//
// Cost discipline (mirrors the LTC_METRICS sink rules):
//   * Compile-time optional: -DLTC_TRACING=OFF replaces everything here
//     with inline no-op stubs, so instrumented call sites compile to
//     exactly the untraced code.
//   * Near-zero when idle: with no recorder installed, a Span is one
//     relaxed atomic load and a branch; nothing is written.
//   * Lock-free when active: committing a span is a handful of relaxed
//     atomic stores into the thread's own ring, bracketed by a per-slot
//     sequence word (odd = being written, even = stable) so a
//     concurrent dumper discards torn slots instead of locking.

#ifndef LTC_TELEMETRY_TRACE_H_
#define LTC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"

namespace ltc {
namespace telemetry {

/// The identity a span tree carries across threads and processes.
/// trace_id 0 means "no context" everywhere.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// True when the build carries the tracing layer (-DLTC_TRACING=ON).
#ifdef LTC_TRACING
constexpr bool kTracingEnabled = true;
#else
constexpr bool kTracingEnabled = false;
#endif

#ifdef LTC_TRACING

class FlightRecorder;

/// One traced scope. Constructing with no parent context starts a new
/// trace when no span is live on this thread, or a child of the
/// innermost live span otherwise. All methods are safe (and free) when
/// no recorder is installed.
class Span {
 public:
  static constexpr size_t kMaxAttrs = 4;

  explicit Span(const char* name) : Span(name, TraceContext{}) {}

  /// `remote_parent`, when valid, forces this span into the caller's
  /// trace (its ids arrived over the wire); otherwise falls back to the
  /// thread-local parent.
  Span(const char* name, TraceContext remote_parent);

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a u64 attribute (first kMaxAttrs stick; extras are
  /// dropped). `key` must be a string literal.
  void AddAttr(const char* key, uint64_t value);

  /// This span's identity — what a client puts into the trace-context
  /// frame extension to parent remote work under this span.
  TraceContext context() const { return {trace_id_, span_id_}; }

  /// False when no recorder was installed at construction.
  bool recording() const { return recorder_ != nullptr; }

 private:
  FlightRecorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_usec_ = 0;
  uint32_t attr_count_ = 0;
  const char* attr_keys_[kMaxAttrs] = {};
  uint64_t attr_vals_[kMaxAttrs] = {};
  TraceContext prev_current_;
};

/// The innermost live span's context on this thread (invalid when none).
TraceContext CurrentTraceContext();

/// The flight recorder: per-thread rings of fixed-size span slots.
/// Install one per process with `Install`; spans find it through the
/// global pointer so instrumentation sites need no plumbing.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultSpansPerThread = 256;
  /// Rings are claimed first-come by writing threads; threads beyond
  /// this many record nothing (counted in dropped_spans).
  static constexpr size_t kMaxThreads = 32;

  /// `clock` defaults to SystemClock(). Timestamps are whatever the
  /// clock says (microseconds); with the default steady clock they are
  /// comparable across threads of one process but not across reboots.
  explicit FlightRecorder(Clock* clock = nullptr,
                          size_t spans_per_thread = kDefaultSpansPerThread);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Makes `recorder` (may be null) the process-wide active recorder.
  /// The recorder must outlive every span opened while it was active.
  static void Install(FlightRecorder* recorder);

  /// The active recorder, or null. One relaxed load — this is the whole
  /// cost of an instrumented scope when tracing is idle.
  static FlightRecorder* active();

  /// Fresh nonzero id, unique within the process and seeded with
  /// pid + clock time so two processes started together don't collide
  /// (trace ids from different processes meeting in one dump must not
  /// alias, or cross-process linkage lies).
  uint64_t NewId();

  Clock* clock() const { return clock_; }

  /// Commits one finished span into the calling thread's ring. Called
  /// by ~Span; exposed for tests.
  void Record(const char* name, uint64_t trace_id, uint64_t span_id,
              uint64_t parent_id, uint64_t start_usec, uint64_t end_usec,
              uint32_t attr_count, const char* const* attr_keys,
              const uint64_t* attr_vals);

  /// Renders every stable slot as Chrome trace-event JSON
  /// ({"traceEvents":[...]}), events in start-time order. When
  /// `max_bytes` > 0 and the full dump would exceed it, the OLDEST
  /// events are dropped to fit and "truncated":true is set in
  /// "otherData". Safe to call from any thread while writers run;
  /// slots mid-write are skipped.
  std::string DumpChromeJson(size_t max_bytes = 0) const;

  /// DumpChromeJson to a file. False (with `error` filled) on I/O
  /// failure.
  bool DumpToFile(const std::string& path, std::string* error = nullptr) const;

  /// Worst (longest) recorded span per distinct name — the exemplars
  /// the metrics exposition links to trace ids.
  struct Exemplar {
    std::string name;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t duration_usec = 0;
  };
  std::vector<Exemplar> WorstSpans() const;

  /// Spans lost because more than kMaxThreads threads recorded.
  uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  size_t spans_per_thread() const { return spans_per_thread_; }

 private:
  struct Slot;
  struct Ring;

  Ring* RingOfThisThread();

  Clock* clock_;
  size_t spans_per_thread_;
  std::unique_ptr<Ring[]> rings_;
  std::atomic<uint64_t> rings_claimed_{0};
  std::atomic<uint64_t> next_id_;
  std::atomic<uint64_t> dropped_spans_{0};
  uint64_t generation_;  // distinguishes recorders reusing an address
};

#else  // !LTC_TRACING — the whole layer compiles to nothing.

class FlightRecorder;

class Span {
 public:
  static constexpr size_t kMaxAttrs = 4;
  explicit Span(const char*) {}
  Span(const char*, TraceContext) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void AddAttr(const char*, uint64_t) {}
  TraceContext context() const { return {}; }
  bool recording() const { return false; }
};

inline TraceContext CurrentTraceContext() { return {}; }

class FlightRecorder {
 public:
  static constexpr size_t kDefaultSpansPerThread = 256;
  static constexpr size_t kMaxThreads = 32;
  explicit FlightRecorder(Clock* = nullptr,
                          size_t = kDefaultSpansPerThread) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  static void Install(FlightRecorder*) {}
  static FlightRecorder* active() { return nullptr; }
  uint64_t NewId() { return 0; }
  Clock* clock() const { return nullptr; }
  void Record(const char*, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
              uint32_t, const char* const*, const uint64_t*) {}
  std::string DumpChromeJson(size_t = 0) const {
    return "{\"traceEvents\":[]}";
  }
  bool DumpToFile(const std::string&, std::string* error = nullptr) const {
    if (error != nullptr) *error = "built without LTC_TRACING";
    return false;
  }
  struct Exemplar {
    std::string name;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t duration_usec = 0;
  };
  std::vector<Exemplar> WorstSpans() const { return {}; }
  uint64_t dropped_spans() const { return 0; }
  size_t spans_per_thread() const { return 0; }
};

#endif  // LTC_TRACING

}  // namespace telemetry
}  // namespace ltc

#endif  // LTC_TELEMETRY_TRACE_H_
