// Typed glue between the sketch serializers and the snapshot frame:
// any structure exposing
//
//   void Serialize(BinaryWriter&) const
//   static std::optional<T> Deserialize(BinaryReader&)     (or unique_ptr)
//
// — the whole serializable family: Ltc, ShardedLtc, WindowedLtc,
// BloomFilter, CounterMatrixSketch — can be wrapped in / recovered
// from a checksummed frame with one call. Decode failures are typed:
// frame-level corruption reports the frame's SnapshotError, an intact
// frame whose payload the sketch refuses (or that has trailing bytes)
// reports kPayloadRejected. Nothing in this path crashes on corrupt
// input; that contract is swept by tests/snapshot_corruption_test.cc.

#ifndef LTC_SNAPSHOT_SKETCH_SNAPSHOT_H_
#define LTC_SNAPSHOT_SKETCH_SNAPSHOT_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/serial.h"
#include "snapshot/frame.h"

namespace ltc {

/// Serialize + frame: the bytes to hand to SnapshotStore::Save or
/// AtomicWriteFile.
template <typename Sketch>
std::string EncodeSketchSnapshot(const Sketch& sketch) {
  BinaryWriter writer;
  sketch.Serialize(writer);
  return EncodeFrame(writer.data());
}

/// Unframe + Deserialize, for optional-returning Deserialize.
template <typename Sketch>
std::optional<Sketch> DecodeSketchSnapshot(
    std::string_view frame, SnapshotError* error = nullptr) {
  const FrameDecodeResult decoded = DecodeFrame(frame);
  if (!decoded.ok()) {
    if (error != nullptr) *error = decoded.error;
    return std::nullopt;
  }
  BinaryReader reader(decoded.payload);
  auto sketch = Sketch::Deserialize(reader);
  if (!sketch.has_value() || !reader.AtEnd()) {
    if (error != nullptr) *error = SnapshotError::kPayloadRejected;
    return std::nullopt;
  }
  if (error != nullptr) *error = SnapshotError::kNone;
  return sketch;
}

/// Unframe + Deserialize, for unique_ptr-returning Deserialize
/// (CounterMatrixSketch and friends).
template <typename Sketch>
std::unique_ptr<Sketch> DecodeSketchSnapshotPtr(
    std::string_view frame, SnapshotError* error = nullptr) {
  const FrameDecodeResult decoded = DecodeFrame(frame);
  if (!decoded.ok()) {
    if (error != nullptr) *error = decoded.error;
    return nullptr;
  }
  BinaryReader reader(decoded.payload);
  auto sketch = Sketch::Deserialize(reader);
  if (sketch == nullptr || !reader.AtEnd()) {
    if (error != nullptr) *error = SnapshotError::kPayloadRejected;
    return nullptr;
  }
  if (error != nullptr) *error = SnapshotError::kNone;
  return sketch;
}

}  // namespace ltc

#endif  // LTC_SNAPSHOT_SKETCH_SNAPSHOT_H_
