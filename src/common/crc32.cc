#include "common/crc32.h"

#include <array>

namespace ltc {
namespace {

constexpr uint32_t kPoly = 0xEDB88320u;

// tables[0] is the classic byte-at-a-time table; tables[1..3] extend it
// so four bytes fold in per step (slice-by-4).
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 4> t{};

  constexpr Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

constexpr Crc32Tables kTables;

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xffu] ^ kTables.t[2][(crc >> 8) & 0xffu] ^
          kTables.t[1][(crc >> 16) & 0xffu] ^ kTables.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xffu];
  }
  return crc;
}

uint32_t Crc32(const void* data, size_t len) {
  return Crc32Final(Crc32Update(Crc32Init(), data, len));
}

}  // namespace ltc
