// Parallel ingestion engine for ShardedLtc — the FeedParallel pattern the
// sharded header promises, packaged as a component (docs/INGEST.md).
//
//   producer thread                     worker threads (one per shard)
//   Push / PushBatch ──route by hash──▶ SPSC ring ──drain in batches──▶
//                                       shard(i).InsertBatch(...)
//
// One router (the caller's thread) hashes each record to its owning shard
// with ShardedLtc::ShardOf and appends it to that shard's bounded SPSC
// ring; one worker per shard drains its ring in batches through the
// Ltc::InsertBatch fast path. Because routing preserves each shard's
// arrival order and shards are independent tables, the final state is
// item-for-item identical to sequential ShardedLtc::Insert of the same
// stream — parallelism buys throughput, never a different answer
// (pinned by tests/ingest_pipeline_test.cc).
//
// Backpressure on a full ring is configurable: kBlock (the producer spins
// with yields — no record is ever lost) or kDrop (the record is counted
// and discarded — bounded producer latency under overload, like a NIC
// queue). kBlock's spin is BOUNDED: a worker that stops draining for
// `stall_yield_limit` consecutive yields surfaces as a latched stalled()
// flag (and the stuck records are counted as dropped) instead of
// wedging the producer forever.
//
// Durability: attach a SnapshotStore and set checkpoint_every to have
// the pipeline periodically persist the sink — each checkpoint rides
// the Flush() barrier (flush → serialize → atomic save → resume
// feeding; workers never restart). See docs/DURABILITY.md.
//
// Threading contract: Push / PushBatch / Flush / Stop / Checkpoint must
// all be called from ONE producer thread. Queries on the ShardedLtc are
// only safe after Flush() (all queued records applied, memory-visible)
// or Stop().

#ifndef LTC_INGEST_INGEST_PIPELINE_H_
#define LTC_INGEST_INGEST_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_ltc.h"
#include "ingest/spsc_ring.h"
#include "telemetry/metrics.h"

namespace ltc {

class SnapshotStore;

/// What the router does when a shard's ring is full.
enum class BackpressureMode {
  kBlock,  // spin/yield until the worker frees space; lossless
  kDrop,   // discard the record and count it; bounded producer latency
};

struct IngestConfig {
  /// Per-shard ring capacity in records (rounded up to a power of two).
  size_t ring_capacity = 1 << 14;

  /// Worker drain granularity: how many records a worker pops and hands
  /// to Ltc::InsertBatch at once.
  size_t drain_batch = 512;

  BackpressureMode backpressure = BackpressureMode::kBlock;

  /// Escape hatch for kBlock spins and Flush() waits: after this many
  /// consecutive yields with NO worker progress, the wait gives up,
  /// stalled() latches true and (for a blocked push) the stuck records
  /// are counted as dropped. A dead worker thus surfaces as an
  /// observable error instead of an infinite producer spin. The default
  /// is a few seconds of real time; tests use tiny values.
  uint64_t stall_yield_limit = 4'000'000;

  /// Auto-checkpoint cadence in accepted records; 0 disables. Only
  /// effective once a SnapshotStore is attached.
  uint64_t checkpoint_every = 0;
};

/// Per-shard operational counters (see IngestPipeline::ShardStatsOf).
struct IngestShardStats {
  uint64_t enqueued = 0;     // records accepted into the ring
  uint64_t dropped = 0;      // records discarded (kDrop mode only)
  uint64_t drained = 0;      // records applied to the shard table
  uint64_t batches = 0;      // InsertBatch calls the worker issued
  uint64_t flushes = 0;      // Flush() waits this lane completed
  size_t queue_depth = 0;    // ring occupancy at sampling time (racy)
  size_t ring_capacity = 0;
};

class IngestPipeline {
 public:
  /// Spawns one worker thread per shard of `sink`. The sink must outlive
  /// the pipeline, and nothing else may touch it until Flush()/Stop().
  explicit IngestPipeline(ShardedLtc& sink, const IngestConfig& config = {});

  /// Stops and joins the workers (all accepted records are applied).
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Routes one record to its shard's ring. Producer thread only.
  void Push(ItemId item, double time = 0.0);

  /// Routes a run of records. The records are partitioned into per-shard
  /// runs first so each ring is published to once per run instead of once
  /// per record — feed the pipeline in batches whenever the stream allows.
  void PushBatch(std::span<const Record> records);

  /// Blocks until every accepted record has been applied to its shard
  /// table (and is memory-visible to this thread). The pipeline stays
  /// usable: Push may resume after Flush — that is how mid-stream
  /// snapshots are taken (flush, query, keep feeding). The wait is
  /// bounded (see IngestConfig::stall_yield_limit): returns false when
  /// a stalled worker kept records from draining, true when every
  /// accepted record is applied.
  bool Flush();

  /// Attaches the checkpoint sink. The store must outlive the pipeline
  /// (or be detached with nullptr first). Producer thread only. With
  /// config.checkpoint_every > 0, a checkpoint is taken automatically
  /// every that-many accepted records.
  void AttachSnapshotStore(SnapshotStore* store);

  /// Takes a checkpoint NOW: Flush(), serialize the sink, atomically
  /// persist it to the attached store. Returns false (with `error`)
  /// when no store is attached, the flush stalled, or the save failed —
  /// in every failure case the previously persisted snapshots are
  /// untouched. Producer thread only.
  bool Checkpoint(std::string* error = nullptr);

  /// Checkpoints successfully taken / failed since construction, and
  /// the store sequence number of the newest one (0 = none yet).
  uint64_t CheckpointsTaken() const { return checkpoints_taken_; }
  uint64_t CheckpointFailures() const { return checkpoint_failures_; }
  uint64_t LastCheckpointSeq() const { return last_checkpoint_seq_; }

  /// Latched true once any bounded wait expired (dead/stuck worker).
  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

  /// Fault-injection seam: while true, workers stop draining (as if
  /// dead) until resumed or stopped. Any thread.
  void SuspendWorkersForTest(bool suspended) {
    suspended_.store(suspended, std::memory_order_release);
  }

  /// Flushes, stops and joins all workers. Idempotent; called by the
  /// destructor. After Stop() the pipeline accepts no more records.
  void Stop();

  /// Total records accepted across shards (excludes drops).
  uint64_t TotalEnqueued() const;

  /// Total records discarded by kDrop backpressure or a stalled kBlock
  /// push.
  uint64_t TotalDropped() const;

  /// Throws std::out_of_range when `shard` >= num_shards().
  IngestShardStats ShardStatsOf(uint32_t shard) const;

  /// Attaches a metrics registry (docs/TELEMETRY.md): registers the
  /// ltc_ingest_* families, after which Flush()/Checkpoint() record
  /// their latencies and SampleMetrics() publishes the per-shard
  /// counters and gauges. nullptr detaches. The registry must outlive
  /// the pipeline (or be detached first). Producer thread only.
  void AttachMetrics(telemetry::MetricsRegistry* registry);

  /// Publishes the current per-shard counters (enqueued / dropped /
  /// drained / batches / flushes), queue-depth and ring-capacity
  /// gauges, the stalled gauge and the checkpoint totals into the
  /// attached registry. No-op when none is attached. Producer thread
  /// only; cheap enough to call at any reporting cadence.
  void SampleMetrics();

  uint32_t num_shards() const {
    return static_cast<uint32_t>(lanes_.size());
  }

 private:
  // One shard's lane: its ring, its worker, and its counters. The
  // counters the producer writes (enqueued/dropped) and the ones the
  // worker writes (drained/batches) live on separate cache lines.
  struct Lane {
    explicit Lane(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing ring;
    alignas(64) std::atomic<uint64_t> enqueued{0};  // producer-written
    std::atomic<uint64_t> dropped{0};               // producer-written
    std::atomic<uint64_t> flushes{0};               // producer-written
    alignas(64) std::atomic<uint64_t> drained{0};   // worker-written
    std::atomic<uint64_t> batches{0};               // worker-written
    std::thread worker;
  };

  void WorkerLoop(uint32_t shard_index);

  // Pushes one shard's routed run, honouring backpressure. Returns the
  // number of records accepted (the rest were dropped).
  uint64_t PushRun(Lane& lane, std::span<const Record> run);

  // Auto-checkpoint trigger, called after every accepting push.
  void MaybeCheckpoint(uint64_t accepted);

  ShardedLtc& sink_;
  IngestConfig config_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // stable addresses for threads
  std::vector<std::vector<Record>> route_runs_;  // PushBatch scratch
  std::atomic<bool> stop_{false};
  std::atomic<bool> suspended_{false};  // test seam: workers play dead
  std::atomic<bool> stalled_{false};    // latched by expired bounded waits
  bool stopped_ = false;  // producer-side latch; Stop is idempotent

  // Checkpoint state (producer thread only).
  SnapshotStore* snapshot_store_ = nullptr;
  uint64_t since_checkpoint_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t checkpoint_failures_ = 0;
  uint64_t last_checkpoint_seq_ = 0;

  // Metrics (producer thread only). The histogram/gauge references are
  // resolved once at AttachMetrics so Flush/Checkpoint pay one branch
  // plus a relaxed fetch_add, never a registry lookup.
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Histogram* flush_duration_usec_ = nullptr;
  telemetry::Histogram* checkpoint_duration_usec_ = nullptr;
  telemetry::Gauge* stalled_gauge_ = nullptr;
};

}  // namespace ltc

#endif  // LTC_INGEST_INGEST_PIPELINE_H_
