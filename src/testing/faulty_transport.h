// FaultyTransport — seeded network-fault injection for the aggregation
// tier, wrapping any PushTransport (docs/SERVING.md "Aggregation
// tier"). The same philosophy as FailpointFs for disk I/O: the
// production code path is untouched; faults enter through the seam the
// code already depends on.
//
// Fault menu (each a distinct delivery failure mode the pusher's retry
// loop must survive):
//
//   kRefuseConnect    Connect fails — the aggregator is down/rebooting.
//   kDropSend         Send fails before anything leaves — clean loss.
//   kShortWrite       Send delivers only a PREFIX of the bytes, then the
//                     connection dies — a torn frame the server's parser
//                     must park on and the pusher must resend whole.
//   kDelay            The op sleeps first — latency, reordering fuel.
//   kDropAck          Send delivers EVERYTHING, then Recv fails — the
//                     push applied but the ack is lost, so the client
//                     retries a delivered push. This is the fault that
//                     proves idempotent dedup, because without it
//                     duplicates are only ever races.
//
// Faults trigger two ways: seeded per-op probabilities (a lossy-network
// background hum) and Arm(kind, count) bursts (deterministic "now fail
// exactly twice", used by ChaosInjector and directed tests). Armed
// bursts are consumed before the dice roll.
//
// Thread-safe: each pusher thread drives its own transport while the
// chaos thread arms bursts into it; a mutex covers the fault state (the
// wrapped transport itself stays single-caller).

#ifndef LTC_TESTING_FAULTY_TRANSPORT_H_
#define LTC_TESTING_FAULTY_TRANSPORT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/rng.h"
#include "server/push_client.h"

namespace ltc {

enum class TransportFault : uint8_t {
  kRefuseConnect = 0,
  kDropSend = 1,
  kShortWrite = 2,
  kDelay = 3,
  kDropAck = 4,
};
constexpr size_t kNumTransportFaults = 5;

struct FaultyTransportConfig {
  /// Per-op trigger probabilities (0 = only armed bursts fire).
  double refuse_probability = 0.0;
  double drop_send_probability = 0.0;
  double short_write_probability = 0.0;
  double delay_probability = 0.0;
  double drop_ack_probability = 0.0;

  /// Injected latency per kDelay trigger.
  uint64_t delay_usec = 2'000;

  /// Same seed, same storm.
  uint64_t seed = 1;
};

class FaultyTransport final : public server::PushTransport {
 public:
  /// `inner` does the real I/O and must outlive this wrapper. `clock`
  /// sleeps the kDelay faults (FakeClock makes them free).
  FaultyTransport(server::PushTransport* inner,
                  const FaultyTransportConfig& config,
                  Clock* clock = nullptr);

  /// Queues `count` deterministic triggers of `kind`, consumed (before
  /// any dice roll) by the next matching ops. Any thread.
  void Arm(TransportFault kind, uint64_t count);

  /// Total faults injected, by kind. Any thread.
  uint64_t faults_injected(TransportFault kind) const;
  uint64_t total_faults_injected() const;

  // PushTransport:
  bool Connect(const std::string& host, uint16_t port,
               uint64_t deadline_usec) override;
  bool Send(std::string_view bytes, uint64_t deadline_usec) override;
  bool Recv(std::string* out, size_t max_bytes,
            uint64_t deadline_usec) override;
  void Close() override;
  bool connected() const override { return inner_->connected(); }

 private:
  /// Consumes an armed trigger or rolls the dice. Lock held by caller.
  bool FireLocked(TransportFault kind, double probability);
  void MaybeDelay();

  server::PushTransport* inner_;
  FaultyTransportConfig config_;
  Clock* clock_;

  mutable std::mutex mutex_;
  Rng rng_;
  uint64_t armed_[kNumTransportFaults] = {};
  uint64_t injected_[kNumTransportFaults] = {};
  bool drop_next_recv_ = false;  // set by a fired kDropAck on Send
};

}  // namespace ltc

#endif  // LTC_TESTING_FAULTY_TRANSPORT_H_
