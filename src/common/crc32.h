// CRC-32 (the reflected IEEE 802.3 polynomial 0xEDB88320 — the same
// checksum as zlib/gzip/PNG), used by the snapshot frame (src/snapshot)
// to reject torn or bit-flipped checkpoint files at load time.
//
// The implementation is slice-by-4 over a compile-time table: fast
// enough that checksumming a checkpoint is negligible next to writing
// it, with no dependency on hardware CRC instructions.

#ifndef LTC_COMMON_CRC32_H_
#define LTC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ltc {

/// One-shot CRC-32 of a buffer. Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t len);

inline uint32_t Crc32(std::string_view data) {
  return Crc32(data.data(), data.size());
}

/// Incremental form: feed `crc` the previous return value (start from
/// Crc32Init()) and finish with Crc32Final(). Equivalent to the
/// one-shot call over the concatenated buffers.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);
inline uint32_t Crc32Init() { return 0xffffffffu; }
inline uint32_t Crc32Final(uint32_t crc) { return crc ^ 0xffffffffu; }

}  // namespace ltc

#endif  // LTC_COMMON_CRC32_H_
