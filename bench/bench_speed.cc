// Insertion-throughput microbenchmarks (the paper's "high speed" claim,
// §I/§V): million insertions per second for every algorithm at the 100 KB
// budget on a CAIDA-like stream, via google-benchmark. Only relative
// numbers are meaningful across machines.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kMemory = 100 * 1024;
constexpr size_t kK = 100;

// One shared, lazily built stream; sized down for micro runs.
const Stream& SharedStream() {
  static const Stream* stream =
      new Stream(MakeCaidaLike(ScaledRecords(500'000, 10'000'000), 42));
  return *stream;
}

void FeedAll(SignificantReporter& reporter, const Stream& stream,
             benchmark::State& state) {
  for (auto _ : state) {
    reporter.InsertBatch(stream.records(), stream);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}

void BM_LtcInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  LtcConfig config;
  config.memory_bytes = kMemory;
  LtcReporter reporter(config, stream.num_periods(), stream.duration());
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_LtcInsert)->Unit(benchmark::kMillisecond);

void BM_SpaceSavingInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  SpaceSavingReporter reporter(kMemory);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_SpaceSavingInsert)->Unit(benchmark::kMillisecond);

void BM_LossyCountingInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  LossyCountingReporter reporter(kMemory);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_LossyCountingInsert)->Unit(benchmark::kMillisecond);

void BM_MisraGriesInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  MisraGriesReporter reporter(kMemory);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_MisraGriesInsert)->Unit(benchmark::kMillisecond);

void BM_CmHeapInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  SketchHeapFrequentReporter reporter(SketchKind::kCountMin, kMemory, kK);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_CmHeapInsert)->Unit(benchmark::kMillisecond);

void BM_CuHeapInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  SketchHeapFrequentReporter reporter(SketchKind::kCu, kMemory, kK);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_CuHeapInsert)->Unit(benchmark::kMillisecond);

void BM_CountHeapInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  SketchHeapFrequentReporter reporter(SketchKind::kCount, kMemory, kK);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_CountHeapInsert)->Unit(benchmark::kMillisecond);

void BM_BfCuPersistentInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  BfSketchPersistentReporter reporter(SketchKind::kCu, kMemory, kK);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_BfCuPersistentInsert)->Unit(benchmark::kMillisecond);

void BM_PieInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  PieReporter reporter(kMemory, stream.num_periods());
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_PieInsert)->Unit(benchmark::kMillisecond);

void BM_CombinedSignificantInsert(benchmark::State& state) {
  const Stream& stream = SharedStream();
  CombinedSignificantReporter reporter(SketchKind::kCu, kMemory, kK, 1.0,
                                       1.0);
  FeedAll(reporter, stream, state);
}
BENCHMARK(BM_CombinedSignificantInsert)->Unit(benchmark::kMillisecond);

// Core micro-op: a single LTC insert on a warm table.
void BM_LtcSingleInsert(benchmark::State& state) {
  LtcConfig config;
  config.memory_bytes = kMemory;
  config.items_per_period = 10'000;
  Ltc table(config);
  uint64_t key = 1;
  for (auto _ : state) {
    table.Insert((key++ % 50'000) + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LtcSingleInsert);

}  // namespace
}  // namespace bench
}  // namespace ltc

BENCHMARK_MAIN();
