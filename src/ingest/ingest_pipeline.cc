#include "ingest/ingest_pipeline.h"

#include <cassert>

namespace ltc {

IngestPipeline::IngestPipeline(ShardedLtc& sink, const IngestConfig& config)
    : sink_(sink), config_(config) {
  assert(config_.drain_batch >= 1);
  const uint32_t shards = sink.num_shards();
  lanes_.reserve(shards);
  route_runs_.assign(shards, {});
  for (uint32_t s = 0; s < shards; ++s) {
    lanes_.push_back(std::make_unique<Lane>(config_.ring_capacity));
  }
  // Spawn only after every lane exists: a worker touches just its own
  // lane and shard, but the vector itself must never reallocate under it.
  for (uint32_t s = 0; s < shards; ++s) {
    lanes_[s]->worker = std::thread([this, s] { WorkerLoop(s); });
  }
}

IngestPipeline::~IngestPipeline() { Stop(); }

void IngestPipeline::WorkerLoop(uint32_t shard_index) {
  Lane& lane = *lanes_[shard_index];
  Ltc& shard = sink_.shard(shard_index);
  std::vector<Record> batch(config_.drain_batch);
  for (;;) {
    size_t n = lane.ring.PopBatch(batch.data(), batch.size());
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) {
        // The producer publishes its last records BEFORE setting stop_
        // (release/acquire pair), so one more pop observes everything.
        n = lane.ring.PopBatch(batch.data(), batch.size());
        if (n == 0) break;
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    shard.InsertBatch({batch.data(), n});
    lane.batches.fetch_add(1, std::memory_order_relaxed);
    // Release so a Flush() that acquire-reads `drained` also sees the
    // table mutations above.
    lane.drained.fetch_add(n, std::memory_order_release);
  }
}

uint64_t IngestPipeline::PushRun(Lane& lane, std::span<const Record> run) {
  uint64_t accepted = 0;
  while (!run.empty()) {
    size_t pushed = lane.ring.TryPushBatch(run);
    accepted += pushed;
    run = run.subspan(pushed);
    if (run.empty()) break;
    if (config_.backpressure == BackpressureMode::kDrop) {
      lane.dropped.fetch_add(run.size(), std::memory_order_relaxed);
      break;
    }
    std::this_thread::yield();  // kBlock: wait for the worker to drain
  }
  lane.enqueued.fetch_add(accepted, std::memory_order_relaxed);
  return accepted;
}

void IngestPipeline::Push(ItemId item, double time) {
  assert(!stopped_ && "Push after Stop()");
  const Record record{item, time};
  PushRun(*lanes_[sink_.ShardOf(item)], {&record, 1});
}

void IngestPipeline::PushBatch(std::span<const Record> records) {
  assert(!stopped_ && "PushBatch after Stop()");
  for (auto& run : route_runs_) run.clear();
  for (const Record& record : records) {
    route_runs_[sink_.ShardOf(record.item)].push_back(record);
  }
  for (uint32_t s = 0; s < lanes_.size(); ++s) {
    if (!route_runs_[s].empty()) PushRun(*lanes_[s], route_runs_[s]);
  }
}

void IngestPipeline::Flush() {
  for (auto& lane : lanes_) {
    const uint64_t target = lane->enqueued.load(std::memory_order_relaxed);
    while (lane->drained.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
}

void IngestPipeline::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Release-publish after the last push; workers acquire-read stop_ and
  // then drain whatever remains (see WorkerLoop). join() makes every
  // worker's table mutations visible to this thread.
  stop_.store(true, std::memory_order_release);
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
}

uint64_t IngestPipeline::TotalEnqueued() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->enqueued.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t IngestPipeline::TotalDropped() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

IngestShardStats IngestPipeline::ShardStatsOf(uint32_t shard) const {
  const Lane& lane = *lanes_[shard];
  IngestShardStats stats;
  stats.enqueued = lane.enqueued.load(std::memory_order_relaxed);
  stats.dropped = lane.dropped.load(std::memory_order_relaxed);
  stats.drained = lane.drained.load(std::memory_order_relaxed);
  stats.batches = lane.batches.load(std::memory_order_relaxed);
  stats.queue_depth = lane.ring.SizeApprox();
  stats.ring_capacity = lane.ring.capacity();
  return stats;
}

}  // namespace ltc
