// Unit tests for the ltc_cli option parser.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli_options.h"

namespace ltc {
namespace {

std::optional<CliOptions> Parse(std::vector<std::string> args,
                                std::string* error = nullptr) {
  std::string local;
  return ParseCliOptions(args, error != nullptr ? error : &local);
}

TEST(CliOptions, DefaultsWithTraceOnly) {
  auto options = Parse({"trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->trace_path, "trace.csv");
  EXPECT_EQ(options->memory_bytes, 64u * 1024);
  EXPECT_DOUBLE_EQ(options->alpha, 1.0);
  EXPECT_DOUBLE_EQ(options->beta, 1.0);
  EXPECT_EQ(options->k, 10u);
  EXPECT_EQ(options->periods, 100u);
  EXPECT_TRUE(options->long_tail_replacement);
  EXPECT_TRUE(options->deviation_eliminator);
  EXPECT_FALSE(options->csv);
}

TEST(CliOptions, AllFlagsParsed) {
  auto options = Parse({"--memory", "2M", "--alpha", "0", "--beta", "1",
                        "--k", "50", "--periods", "500", "--duration",
                        "3600", "--d", "16", "--no-ltr", "--no-de", "--csv",
                        "--save", "ckpt.bin", "--load", "old.bin", "-"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->trace_path, "-");
  EXPECT_EQ(options->memory_bytes, 2u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(options->alpha, 0.0);
  EXPECT_DOUBLE_EQ(options->beta, 1.0);
  EXPECT_EQ(options->k, 50u);
  EXPECT_EQ(options->periods, 500u);
  EXPECT_DOUBLE_EQ(options->duration, 3600.0);
  EXPECT_EQ(options->cells_per_bucket, 16u);
  EXPECT_FALSE(options->long_tail_replacement);
  EXPECT_FALSE(options->deviation_eliminator);
  EXPECT_TRUE(options->csv);
  EXPECT_EQ(options->save_path, "ckpt.bin");
  EXPECT_EQ(options->load_path, "old.bin");
}

TEST(CliOptions, ThreadsDefaultsToOne) {
  auto options = Parse({"trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->threads, 1u);
}

TEST(CliOptions, ThreadsParsed) {
  auto options = Parse({"--threads", "4", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->threads, 4u);
}

TEST(CliOptions, ThreadsRejections) {
  std::string error;
  EXPECT_FALSE(Parse({"--threads", "0", "t"}, &error).has_value());
  EXPECT_NE(error.find("--threads"), std::string::npos);
  EXPECT_FALSE(Parse({"--threads", "potato", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--threads", "1000", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--threads"}, &error).has_value());
}

TEST(CliOptions, ThreadsComposesWithSaveAndLoad) {
  auto options = Parse({"--threads", "4", "--save", "ck.bin", "--load",
                        "old.bin", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->threads, 4u);
  EXPECT_EQ(options->save_path, "ck.bin");
  EXPECT_EQ(options->load_path, "old.bin");
}

TEST(CliOptions, CheckpointEveryParsed) {
  auto options =
      Parse({"--save", "ck.bin", "--checkpoint-every", "5000", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->checkpoint_every, 5000u);
}

TEST(CliOptions, CheckpointEveryDefaultsOff) {
  auto options = Parse({"trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->checkpoint_every, 0u);
}

TEST(CliOptions, CheckpointEveryRejections) {
  std::string error;
  // Zero cadence and garbage are parse errors.
  EXPECT_FALSE(Parse({"--save", "c", "--checkpoint-every", "0", "t"}, &error)
                   .has_value());
  EXPECT_NE(error.find("--checkpoint-every"), std::string::npos);
  EXPECT_FALSE(
      Parse({"--save", "c", "--checkpoint-every", "potato", "t"}, &error)
          .has_value());
  // The rotation is anchored at the save path, so --save is required.
  EXPECT_FALSE(Parse({"--checkpoint-every", "100", "t"}, &error).has_value());
  EXPECT_NE(error.find("requires --save"), std::string::npos);
}

TEST(CliOptions, MetricsOutParsed) {
  auto options = Parse({"--metrics-out", "m.prom", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->metrics_out, "m.prom");
  EXPECT_EQ(options->stats_every, 0u);
}

TEST(CliOptions, MetricsOutDefaultsOff) {
  auto options = Parse({"trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->metrics_out.empty());
  EXPECT_EQ(options->stats_every, 0u);
}

TEST(CliOptions, StatsEveryComposesWithMetricsOut) {
  auto options = Parse(
      {"--metrics-out", "m.json", "--stats-every", "5000", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->metrics_out, "m.json");
  EXPECT_EQ(options->stats_every, 5000u);
}

TEST(CliOptions, StatsEveryRejections) {
  std::string error;
  // Zero cadence and garbage are parse errors.
  EXPECT_FALSE(Parse({"--metrics-out", "m", "--stats-every", "0", "t"}, &error)
                   .has_value());
  EXPECT_NE(error.find("--stats-every"), std::string::npos);
  EXPECT_FALSE(
      Parse({"--metrics-out", "m", "--stats-every", "potato", "t"}, &error)
          .has_value());
  // The cadence writes the exposition file, so it needs a destination.
  EXPECT_FALSE(Parse({"--stats-every", "100", "t"}, &error).has_value());
  EXPECT_NE(error.find("requires --metrics-out"), std::string::npos);
  EXPECT_FALSE(Parse({"--metrics-out"}, &error).has_value());
}

TEST(CliOptions, ServeDefaultsOff) {
  auto options = Parse({"trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->serve_port, -1);
}

TEST(CliOptions, ServeParsesPortIncludingEphemeralZero) {
  auto options = Parse({"--serve", "8080", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->serve_port, 8080);

  options = Parse({"--serve", "0", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->serve_port, 0);

  options = Parse({"--serve", "65535", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->serve_port, 65535);
}

TEST(CliOptions, ServeRejections) {
  std::string error;
  EXPECT_FALSE(Parse({"--serve", "65536", "t"}, &error).has_value());
  EXPECT_NE(error.find("--serve"), std::string::npos);
  EXPECT_FALSE(Parse({"--serve", "-1", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--serve", "potato", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--serve", "80x", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--serve", "", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"t", "--serve"}, &error).has_value());
  EXPECT_NE(error.find("needs a value"), std::string::npos);
}

// The full --serve interaction matrix: serving composes with every
// other flag; the pre-existing dependency rules (--checkpoint-every
// needs --save, --stats-every needs --metrics-out) still hold with
// --serve in the mix and still fail with usage errors.
TEST(CliOptions, ServeFlagMatrix) {
  struct Case {
    std::vector<std::string> args;
    bool ok;
  };
  const Case cases[] = {
      {{"--serve", "0", "trace.csv"}, true},
      {{"--serve", "9000", "--threads", "4", "trace.csv"}, true},
      {{"--serve", "9000", "--save", "ck.bin", "trace.csv"}, true},
      {{"--serve", "9000", "--load", "ck.bin", "trace.csv"}, true},
      {{"--serve", "9000", "--save", "ck.bin", "--checkpoint-every", "100",
        "trace.csv"}, true},
      {{"--serve", "9000", "--metrics-out", "m.prom", "trace.csv"}, true},
      {{"--serve", "9000", "--metrics-out", "m.prom", "--stats-every",
        "100", "trace.csv"}, true},
      {{"--serve", "9000", "--threads", "8", "--save", "ck.bin",
        "--checkpoint-every", "50", "--metrics-out", "m.json",
        "--stats-every", "200", "--csv", "trace.csv"}, true},
      {{"--serve", "9000", "-"}, true},  // stdin trace serves fine
      // Invalid: the dependency rules hold regardless of --serve.
      {{"--serve", "9000", "--checkpoint-every", "100", "trace.csv"}, false},
      {{"--serve", "9000", "--stats-every", "100", "trace.csv"}, false},
      {{"--serve", "9000"}, false},  // still needs a trace
  };
  for (const Case& c : cases) {
    std::string joined;
    for (const auto& a : c.args) joined += a + " ";
    std::string error;
    const auto options = Parse(c.args, &error);
    EXPECT_EQ(options.has_value(), c.ok) << joined << " error: " << error;
    if (!c.ok) {
      EXPECT_FALSE(error.empty()) << joined;
    }
    if (options.has_value() && c.ok) {
      EXPECT_EQ(options->serve_port, c.args[1] == "0" ? 0 : 9000) << joined;
    }
  }
}

TEST(CliOptions, PushFlagsParsedWithDefaults) {
  auto options = Parse({"trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->push_to.empty());
  EXPECT_EQ(options->push_every, 0u);
  EXPECT_EQ(options->node_id, 0u);
  EXPECT_FALSE(options->aggregate);

  options = Parse({"--push-to", "agg.example:9100", "--node-id", "7",
                   "--push-every", "50000", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->push_to, "agg.example:9100");
  EXPECT_EQ(options->node_id, 7u);
  EXPECT_EQ(options->push_every, 50000u);
}

TEST(CliOptions, AggregateParsed) {
  auto options = Parse({"--aggregate", "--serve", "0"});
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->aggregate);
  EXPECT_TRUE(options->trace_path.empty());
  EXPECT_EQ(options->agg_stale_after, 60u);  // default

  options = Parse({"--aggregate", "--serve", "9100", "--agg-stale-after",
                   "5"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->agg_stale_after, 5u);
}

// The aggregation-tier role rules (docs/SERVING.md "Aggregation
// tier"): --aggregate is a server role with no trace, --push-to is a
// node role needing an identity, and the two never mix in one process.
TEST(CliOptions, AggregationRoleRejections) {
  std::string error;
  // --aggregate IS a query server; pushes arrive on the --serve port.
  EXPECT_FALSE(Parse({"--aggregate"}, &error).has_value());
  EXPECT_NE(error.find("--serve"), std::string::npos);
  // Its data arrives via PUSH_SKETCH, never a trace.
  EXPECT_FALSE(
      Parse({"--aggregate", "--serve", "0", "trace.csv"}, &error).has_value());
  EXPECT_NE(error.find("no trace"), std::string::npos);
  // One process, one role.
  EXPECT_FALSE(Parse({"--aggregate", "--serve", "0", "--push-to", "h:1"},
                     &error)
                   .has_value());
  EXPECT_NE(error.find("role"), std::string::npos);
  // The aggregator dedups on node identity, so a pusher must have one.
  EXPECT_FALSE(Parse({"--push-to", "h:1", "trace.csv"}, &error).has_value());
  EXPECT_NE(error.find("--node-id"), std::string::npos);
  EXPECT_FALSE(Parse({"--push-to", "h:1", "--node-id", "0", "trace.csv"},
                     &error)
                   .has_value());
  // Pushes ship flush-barrier clones of the single table.
  EXPECT_FALSE(Parse({"--push-to", "h:1", "--node-id", "1", "--threads", "4",
                      "trace.csv"},
                     &error)
                   .has_value());
  EXPECT_NE(error.find("--threads"), std::string::npos);
  // The cadence is meaningless without a destination.
  EXPECT_FALSE(
      Parse({"--push-every", "1000", "trace.csv"}, &error).has_value());
  EXPECT_NE(error.find("--push-to"), std::string::npos);
  // Value validation: HOST:PORT shape and numeric fields.
  EXPECT_FALSE(Parse({"--push-to", "", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--push-to", "noport", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--push-to", "h:0", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--push-to", "h:65536", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--node-id", "potato", "t"}, &error).has_value());
  // --push-every 0 is the documented "one final push" spelling, legal
  // alongside --push-to.
  const auto zero_cadence = Parse(
      {"--push-to", "h:1", "--node-id", "1", "--push-every", "0", "t"});
  ASSERT_TRUE(zero_cadence.has_value());
  EXPECT_EQ(zero_cadence->push_every, 0u);
}

TEST(CliOptions, StoreFlagsParsedWithDefaults) {
  auto options = Parse({"trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->store_dir.empty());
  EXPECT_EQ(options->tenants, 1u);
  EXPECT_EQ(options->mem_budget_bytes, size_t{64} << 20);

  options = Parse({"--store", "/var/ltc/store", "--tenants", "16",
                   "--mem-budget", "8M", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->store_dir, "/var/ltc/store");
  EXPECT_EQ(options->tenants, 16u);
  EXPECT_EQ(options->mem_budget_bytes, 8u * 1024 * 1024);
}

TEST(CliOptions, StoreComposesWithCheckpointCadenceWithoutSave) {
  // In store mode --checkpoint-every sets the incremental-checkpoint
  // cadence; the store directory is the anchor, no --save needed.
  auto options =
      Parse({"--store", "dir", "--checkpoint-every", "5000", "trace.csv"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->checkpoint_every, 5000u);

  options = Parse({"--store", "dir", "--metrics-out", "m.prom",
                   "--stats-every", "100", "--csv", "trace.csv"});
  ASSERT_TRUE(options.has_value());
}

// The store-mode role rules: --store is a batch feed against a local
// durable directory — no serving, pushing, sharding, or snapshot
// flags — and its knobs are meaningless outside it.
TEST(CliOptions, StoreRejections) {
  std::string error;
  EXPECT_FALSE(Parse({"--store", "", "t"}, &error).has_value());
  EXPECT_NE(error.find("--store"), std::string::npos);
  EXPECT_FALSE(Parse({"--store"}, &error).has_value());
  EXPECT_NE(error.find("needs a value"), std::string::npos);
  // Store mode still takes a trace.
  EXPECT_FALSE(Parse({"--store", "dir"}, &error).has_value());
  EXPECT_NE(error.find("no trace"), std::string::npos);
  // Tenant fan-out bounds.
  EXPECT_FALSE(Parse({"--store", "dir", "--tenants", "0", "t"}, &error)
                   .has_value());
  EXPECT_NE(error.find("--tenants"), std::string::npos);
  EXPECT_FALSE(
      Parse({"--store", "dir", "--tenants", "65537", "t"}, &error)
          .has_value());
  EXPECT_FALSE(
      Parse({"--store", "dir", "--tenants", "potato", "t"}, &error)
          .has_value());
  EXPECT_FALSE(
      Parse({"--store", "dir", "--mem-budget", "0", "t"}, &error)
          .has_value());
  EXPECT_NE(error.find("--mem-budget"), std::string::npos);
  // The store knobs require store mode.
  EXPECT_FALSE(Parse({"--tenants", "4", "t"}, &error).has_value());
  EXPECT_NE(error.find("requires --store"), std::string::npos);
  EXPECT_FALSE(Parse({"--mem-budget", "8M", "t"}, &error).has_value());
  EXPECT_NE(error.find("requires --store"), std::string::npos);
  // One process, one role / one durability mechanism.
  EXPECT_FALSE(
      Parse({"--store", "dir", "--serve", "0", "t"}, &error).has_value());
  EXPECT_NE(error.find("--serve"), std::string::npos);
  EXPECT_FALSE(Parse({"--store", "dir", "--push-to", "h:1", "--node-id",
                      "1", "t"}, &error)
                   .has_value());
  EXPECT_FALSE(Parse({"--store", "dir", "--aggregate", "--serve", "0"},
                     &error)
                   .has_value());
  EXPECT_FALSE(
      Parse({"--store", "dir", "--threads", "4", "t"}, &error).has_value());
  EXPECT_NE(error.find("--threads"), std::string::npos);
  EXPECT_FALSE(
      Parse({"--store", "dir", "--save", "ck.bin", "t"}, &error).has_value());
  EXPECT_NE(error.find("--save"), std::string::npos);
  EXPECT_FALSE(
      Parse({"--store", "dir", "--load", "ck.bin", "t"}, &error).has_value());
}

TEST(CliOptions, ToLtcConfigReflectsFlags) {
  auto options = Parse({"--memory", "10K", "--alpha", "2", "--beta", "3",
                        "--d", "4", "--no-ltr", "t.csv"});
  ASSERT_TRUE(options.has_value());
  LtcConfig config = options->ToLtcConfig();
  EXPECT_EQ(config.memory_bytes, 10u * 1024);
  EXPECT_DOUBLE_EQ(config.alpha, 2.0);
  EXPECT_DOUBLE_EQ(config.beta, 3.0);
  EXPECT_EQ(config.cells_per_bucket, 4u);
  EXPECT_EQ(config.EffectiveInitPolicy(), InitPolicy::kOne);
}

TEST(CliOptions, HelpShortCircuits) {
  auto options = Parse({"--help"});
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->show_help);
  EXPECT_FALSE(CliUsage().empty());
}

TEST(CliOptions, Rejections) {
  std::string error;
  EXPECT_FALSE(Parse({}, &error).has_value());
  EXPECT_NE(error.find("no trace"), std::string::npos);

  EXPECT_FALSE(Parse({"--memory"}, &error).has_value());
  EXPECT_NE(error.find("needs a value"), std::string::npos);

  EXPECT_FALSE(Parse({"--memory", "potato", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--memory", "0", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--k", "0", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--alpha", "-1", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"--bogus", "t"}, &error).has_value());
  EXPECT_FALSE(Parse({"a.csv", "b.csv"}, &error).has_value());
  EXPECT_FALSE(
      Parse({"--alpha", "0", "--beta", "0", "t"}, &error).has_value());
}

TEST(CliOptions, MemorySizeSuffixes) {
  EXPECT_EQ(ParseMemorySize("123"), 123u);
  EXPECT_EQ(ParseMemorySize("64K"), 64u * 1024);
  EXPECT_EQ(ParseMemorySize("64k"), 64u * 1024);
  EXPECT_EQ(ParseMemorySize("2M"), 2u * 1024 * 1024);
  EXPECT_FALSE(ParseMemorySize("").has_value());
  EXPECT_FALSE(ParseMemorySize("K").has_value());
  EXPECT_FALSE(ParseMemorySize("12G").has_value());
  EXPECT_FALSE(ParseMemorySize("1.5K").has_value());
}

}  // namespace
}  // namespace ltc
