#include "testing/trace_fuzzer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/rng.h"
#include "common/serial.h"
#include "core/sharded_ltc.h"
#include "core/windowed_ltc.h"
#include "metrics/significance_oracle.h"

namespace ltc {

void ThrowingAuditHandler(const std::string& message) {
  throw AuditViolation(message);
}

const char* SubjectName(SubjectKind kind) {
  switch (kind) {
    case SubjectKind::kLtc: return "ltc";
    case SubjectKind::kSharded: return "sharded";
    case SubjectKind::kWindowed: return "windowed";
  }
  return "?";
}

std::string FuzzCombo::Name() const {
  std::string name;
  switch (init_policy) {
    case InitPolicy::kOne: name = "one"; break;
    case InitPolicy::kLongTail: name = "longtail"; break;
    case InitPolicy::kMinPlusOne: name = "minplus"; break;
  }
  name += deviation_eliminator ? "_dev" : "_nodev";
  name += period_mode == PeriodMode::kCountBased ? "_count" : "_time";
  return name;
}

std::vector<FuzzCombo> AllCombos() {
  std::vector<FuzzCombo> combos;
  for (InitPolicy policy : {InitPolicy::kOne, InitPolicy::kLongTail,
                            InitPolicy::kMinPlusOne}) {
    for (bool dev : {true, false}) {
      for (PeriodMode mode : {PeriodMode::kCountBased,
                              PeriodMode::kTimeBased}) {
        combos.push_back({policy, dev, mode});
      }
    }
  }
  return combos;
}

LtcConfig FuzzOptions::MakeConfig() const {
  LtcConfig config;
  config.memory_bytes = memory_bytes;
  config.cells_per_bucket = cells_per_bucket;
  config.alpha = alpha;
  config.beta = beta;
  config.long_tail_replacement = combo.init_policy != InitPolicy::kOne;
  config.init_policy = combo.init_policy;
  config.deviation_eliminator = combo.deviation_eliminator;
  config.period_mode = combo.period_mode;
  if (subject == SubjectKind::kWindowed) {
    // A window of periods needs a wall-clock period definition.
    config.period_mode = PeriodMode::kTimeBased;
  }
  config.items_per_period = items_per_period;
  config.period_seconds = period_seconds;
  config.seed = seed;
  return config;
}

std::vector<TraceOp> GenerateTrace(const FuzzOptions& options) {
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + options.seed + 1);
  std::vector<TraceOp> trace;
  trace.reserve(options.num_ops);
  const double ps = options.period_seconds;
  double t = 0.0;  // the clock the subject will see (after clamping)
  for (uint64_t i = 0; i < options.num_ops; ++i) {
    uint64_t r = rng.Uniform(100);
    TraceOp op;
    if (r < 88) {
      op.kind = TraceOp::kInsert;
      op.item = rng.Uniform(2) == 0
                    ? 1 + rng.Uniform(16)  // hot head
                    : 1 + rng.Uniform(options.universe);
      // Adversarial timing mix (time-based pacing; count-based ignores
      // it): repeated equal stamps, exact period-boundary landings,
      // multi-period gaps, and regressions that exercise the clamp.
      uint64_t tr = rng.Uniform(100);
      double next = t;
      if (tr < 55) {
        // zero elapsed time
      } else if (tr < 80) {
        next = t + rng.UniformDouble() * ps * 0.25;
      } else if (tr < 88) {
        // land exactly on the next period boundary
        next = (std::floor(t / ps) + 1.0) * ps;
      } else if (tr < 94) {
        // jump over up to 3 whole periods
        next = t + ps * (1.0 + rng.UniformDouble() * 3.0);
      } else {
        // regressing timestamp; the subject must clamp to t
        next = t - rng.UniformDouble() * ps;
      }
      op.time = next;
      t = std::max(t, next);
    } else if (r < 94) {
      op.kind = TraceOp::kPointQuery;
      op.item = rng.Uniform(8) == 0
                    ? options.universe + 1 + rng.Uniform(64)  // never seen
                    : 1 + rng.Uniform(options.universe);
    } else if (r < 98) {
      op.kind = TraceOp::kTopKDiff;
    } else if (r < 99) {
      op.kind = TraceOp::kSerializeRoundTrip;
    } else {
      op.kind = TraceOp::kMergeCheck;
    }
    trace.push_back(op);
  }
  return trace;
}

namespace {

constexpr double kSigEps = 1e-9;

// What the configuration actually guarantees; every check below is gated
// on these (see the header comment).
struct Gates {
  bool freq_one_sided;  // InitPolicy::kOne
  bool pers_one_sided;  // kOne + Deviation Eliminator
};

Gates GatesFor(const LtcConfig& config) {
  bool one = config.EffectiveInitPolicy() == InitPolicy::kOne;
  return {one, one && config.deviation_eliminator};
}

// Per-item truth as seen by the checker; `present` = the item truly
// appeared at least once in the relevant (sub)stream.
struct TruthView {
  bool present = false;
  uint64_t freq = 0;
  uint64_t pers = 0;
};

using TruthFn = std::function<TruthView(ItemId)>;

std::string Describe(const Ltc::Report& r) {
  return "item=" + std::to_string(r.item) +
         " f=" + std::to_string(r.frequency) +
         " p=" + std::to_string(r.persistency) +
         " s=" + std::to_string(r.significance);
}

// Field-exact table equality via the full TopK report; `what` prefixes
// the diagnostic.
std::optional<std::string> DiffTables(const Ltc& a, const Ltc& b,
                                      const std::string& what) {
  auto ra = a.TopK(a.num_cells());
  auto rb = b.TopK(b.num_cells());
  if (ra.size() != rb.size()) {
    return what + ": report count " + std::to_string(ra.size()) + " vs " +
           std::to_string(rb.size());
  }
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].item != rb[i].item || ra[i].frequency != rb[i].frequency ||
        ra[i].persistency != rb[i].persistency) {
      return what + ": rank " + std::to_string(i) + " differs, " +
             Describe(ra[i]) + " vs " + Describe(rb[i]);
    }
  }
  return std::nullopt;
}

// MergeFrom identities on a finalized clone of `table`: merging an empty
// peer must change nothing, and merging the clone into an empty table
// must reproduce it exactly. The summing behavior on disjoint inputs is
// pinned separately (tests/differential_test.cc metamorphic suite).
std::optional<std::string> MergeIdentityCheck(const Ltc& table) {
  Ltc finalized = table;
  finalized.Finalize();
  Ltc empty(finalized.config());
  if (!finalized.CanMergeWith(empty)) {
    return std::string("merge: clone cannot merge with empty peer");
  }
  Ltc self_plus_empty = finalized;
  if (!self_plus_empty.MergeFrom(empty)) {
    return std::string("merge: A+0 rejected despite CanMergeWith");
  }
  if (auto err = DiffTables(self_plus_empty, finalized,
                            "merge: A+0 != A")) {
    return err;
  }
  Ltc empty_plus_self(finalized.config());
  if (!empty_plus_self.MergeFrom(finalized)) {
    return std::string("merge: 0+A rejected despite CanMergeWith");
  }
  if (auto err = DiffTables(empty_plus_self, finalized,
                            "merge: 0+A != A")) {
    return err;
  }
  if (!self_plus_empty.CheckInvariants() ||
      !empty_plus_self.CheckInvariants()) {
    return std::string("merge: merged table fails CheckInvariants");
  }
  return std::nullopt;
}

// Shared validator for TopK / SnapshotTopK / ItemsAbove output: ordering
// contract, duplicate-freedom, α·f̂+β·p̂ consistency, and the one-sided
// bounds the active configuration promises.
std::optional<std::string> CheckReports(const std::vector<Ltc::Report>& top,
                                        size_t k, const LtcConfig& config,
                                        const Gates& gates,
                                        const TruthFn& truth,
                                        const char* what) {
  if (top.size() > k) {
    return std::string(what) + ": returned " + std::to_string(top.size()) +
           " items for k=" + std::to_string(k);
  }
  std::unordered_set<ItemId> seen;
  for (size_t i = 0; i < top.size(); ++i) {
    const Ltc::Report& r = top[i];
    if (i > 0) {
      const Ltc::Report& prev = top[i - 1];
      bool ordered = prev.significance > r.significance ||
                     (prev.significance == r.significance &&
                      prev.item < r.item);
      if (!ordered) {
        return std::string(what) + ": not sorted at rank " +
               std::to_string(i) + " (" + Describe(prev) + " then " +
               Describe(r) + ")";
      }
    }
    if (!seen.insert(r.item).second) {
      return std::string(what) + ": duplicate " + Describe(r);
    }
    double expected_sig = config.alpha * static_cast<double>(r.frequency) +
                          config.beta * static_cast<double>(r.persistency);
    if (std::fabs(r.significance - expected_sig) > kSigEps) {
      return std::string(what) + ": significance inconsistent with fields, " +
             Describe(r) + " expected s=" + std::to_string(expected_sig);
    }
    TruthView tv = truth(r.item);
    if (!tv.present) {
      return std::string(what) + ": reported item never appeared, " +
             Describe(r);
    }
    if (gates.freq_one_sided && r.frequency > tv.freq) {
      return std::string(what) + ": frequency overestimated, " + Describe(r) +
             " true f=" + std::to_string(tv.freq);
    }
    if (gates.pers_one_sided && r.persistency > tv.pers) {
      return std::string(what) + ": persistency overestimated, " +
             Describe(r) + " true p=" + std::to_string(tv.pers);
    }
  }
  return std::nullopt;
}

std::string ReplayCommand(const FuzzOptions& options) {
  return std::string("tools/ltc_fuzz --subject=") +
         SubjectName(options.subject) + " --combo=" + options.combo.Name() +
         " --seed=" + std::to_string(options.seed) +
         " --ops=" + std::to_string(options.num_ops);
}

// ------------------------------------------------------------------ Ltc

class LtcRunner {
 public:
  explicit LtcRunner(const FuzzOptions& options)
      : config_(options.MakeConfig()),
        gates_(GatesFor(config_)),
        oracle_(config_),
        table_(config_) {
#ifdef LTC_AUDIT
    table_.AttachAuditOracle(&oracle_);
#endif
  }

  std::optional<std::string> Apply(const TraceOp& op) {
    switch (op.kind) {
      case TraceOp::kInsert:
        oracle_.Observe(op.item, op.time);
        table_.Insert(op.item, op.time);
        return std::nullopt;
      case TraceOp::kPointQuery:
        return PointQuery(op.item);
      case TraceOp::kTopKDiff:
        return TopKDiff();
      case TraceOp::kSerializeRoundTrip:
        return RoundTrip();
      case TraceOp::kMergeCheck:
        return MergeIdentityCheck(table_);
    }
    return std::nullopt;
  }

  std::optional<std::string> Finish() {
    table_.Finalize();
    if (!table_.CheckInvariants()) {
      return std::string("final: CheckInvariants failed");
    }
    auto full = table_.TopK(table_.num_cells());
    if (auto err = CheckReports(full, table_.num_cells(), config_, gates_,
                                Truth(), "final TopK")) {
      return err;
    }
    if (gates_.freq_one_sided && !config_.deviation_eliminator) {
      // Single-flag scheme: a period can be credited at most twice
      // (§III-C), so even without the eliminator p̂ ≤ 2·p.
      for (const auto& r : full) {
        uint64_t true_pers = oracle_.TruePersistency(r.item);
        if (r.persistency > 2 * true_pers) {
          return "final: persistency beyond the 2x deviation bound, " +
                 Describe(r) + " true p=" + std::to_string(true_pers);
        }
      }
    }
    auto above = table_.ItemsAbove(0.0);
    if (auto err = CheckReports(above, table_.num_cells(), config_, gates_,
                                Truth(), "final ItemsAbove(0)")) {
      return err;
    }
    return std::nullopt;
  }

 private:
  TruthFn Truth() const {
    return [this](ItemId item) {
      return TruthView{oracle_.Contains(item), oracle_.TrueFrequency(item),
                       oracle_.TruePersistency(item)};
    };
  }

  std::optional<std::string> PointQuery(ItemId item) const {
    uint64_t freq = table_.EstimateFrequency(item);
    uint64_t pers = table_.EstimatePersistency(item);
    double sig = table_.QuerySignificance(item);
    if (!oracle_.Contains(item)) {
      if (freq != 0 || pers != 0 || sig != 0.0 || table_.IsTracked(item)) {
        return "point: never-inserted item " + std::to_string(item) +
               " answered f=" + std::to_string(freq) +
               " p=" + std::to_string(pers) + " s=" + std::to_string(sig);
      }
      return std::nullopt;
    }
    if (table_.IsTracked(item)) {
      double expected = config_.alpha * static_cast<double>(freq) +
                        config_.beta * static_cast<double>(pers);
      if (std::fabs(sig - expected) > kSigEps) {
        return "point: significance inconsistent for item " +
               std::to_string(item) + " (s=" + std::to_string(sig) +
               " expected " + std::to_string(expected) + ")";
      }
    }
    if (gates_.freq_one_sided && freq > oracle_.TrueFrequency(item)) {
      return "point: frequency overestimated for item " +
             std::to_string(item) + " (" + std::to_string(freq) + " > " +
             std::to_string(oracle_.TrueFrequency(item)) + ")";
    }
    if (gates_.pers_one_sided) {
      if (pers > oracle_.TruePersistency(item)) {
        return "point: persistency overestimated for item " +
               std::to_string(item) + " (" + std::to_string(pers) + " > " +
               std::to_string(oracle_.TruePersistency(item)) + ")";
      }
      if (sig > oracle_.TrueSignificance(item) + kSigEps) {
        return "point: significance overestimated for item " +
               std::to_string(item);
      }
    }
    return std::nullopt;
  }

  std::optional<std::string> TopKDiff() const {
    if (auto err =
            CheckReports(table_.TopK(10), 10, config_, gates_, Truth(),
                         "TopK(10)")) {
      return err;
    }
    return CheckReports(table_.SnapshotTopK(10), 10, config_, gates_,
                        Truth(), "SnapshotTopK(10)");
  }

  std::optional<std::string> RoundTrip() {
    BinaryWriter writer;
    table_.Serialize(writer);
    BinaryReader reader(writer.data());
    auto restored = Ltc::Deserialize(reader);
    if (!restored || !reader.AtEnd()) {
      return std::string("roundtrip: checkpoint did not restore");
    }
    if (restored->current_period() != table_.current_period() ||
        restored->num_cells() != table_.num_cells()) {
      return std::string("roundtrip: clock/geometry mismatch");
    }
    auto before = table_.TopK(table_.num_cells());
    auto after = restored->TopK(table_.num_cells());
    if (before.size() != after.size()) {
      return std::string("roundtrip: report count changed");
    }
    for (size_t i = 0; i < before.size(); ++i) {
      if (before[i].item != after[i].item ||
          before[i].frequency != after[i].frequency ||
          before[i].persistency != after[i].persistency) {
        return "roundtrip: rank " + std::to_string(i) + " changed, " +
               Describe(before[i]) + " vs " + Describe(after[i]);
      }
    }
    // Behavior-identical: the restored table replaces the subject and the
    // trace continues on it.
    table_ = std::move(*restored);
#ifdef LTC_AUDIT
    table_.AttachAuditOracle(&oracle_);
#endif
    return std::nullopt;
  }

  LtcConfig config_;
  Gates gates_;
  ExactSignificanceOracle oracle_;
  Ltc table_;
};

// -------------------------------------------------------------- Sharded

class ShardedRunner {
 public:
  explicit ShardedRunner(const FuzzOptions& options)
      : config_(options.MakeConfig()),
        gates_(GatesFor(config_)),
        subject_(config_, options.num_shards) {
    // Per-shard truth and per-shard standalone mirrors: each shard paces
    // its CLOCK on its own substream (per-shard items_per_period), so
    // truth and mirror both must use shard(i).config().
    oracles_.reserve(options.num_shards);
    mirrors_.reserve(options.num_shards);
    for (uint32_t s = 0; s < options.num_shards; ++s) {
      oracles_.emplace_back(
          std::make_unique<ExactSignificanceOracle>(subject_.shard(s).config()));
      mirrors_.emplace_back(subject_.shard(s).config());
    }
#ifdef LTC_AUDIT
    for (uint32_t s = 0; s < options.num_shards; ++s) {
      subject_.AttachAuditOracle(s, oracles_[s].get());
    }
#endif
  }

  std::optional<std::string> Apply(const TraceOp& op) {
    switch (op.kind) {
      case TraceOp::kInsert: {
        uint32_t s = subject_.ShardOf(op.item);
        oracles_[s]->Observe(op.item, op.time);
        subject_.Insert(op.item, op.time);
        mirrors_[s].Insert(op.item, op.time);
        return std::nullopt;
      }
      case TraceOp::kPointQuery:
        return PointQuery(op.item);
      case TraceOp::kTopKDiff:
        return TopKDiff();
      case TraceOp::kSerializeRoundTrip:
        return RoundTrip();
      case TraceOp::kMergeCheck:
        // Per shard: the same MergeFrom identities the standalone runner
        // checks, on each shard's (independently configured) table.
        for (uint32_t s = 0; s < subject_.num_shards(); ++s) {
          if (auto err = MergeIdentityCheck(subject_.shard(s))) {
            return "shard " + std::to_string(s) + " " + *err;
          }
        }
        return std::nullopt;
    }
    return std::nullopt;
  }

  std::optional<std::string> Finish() {
    subject_.Finalize();
    for (Ltc& mirror : mirrors_) mirror.Finalize();
    if (!subject_.CheckInvariants()) {
      return std::string("final: CheckInvariants failed");
    }
    if (auto err = MirrorDiff("final")) return err;
    return CheckReports(subject_.TopK(50), 50, config_, gates_, Truth(),
                        "final TopK(50)");
  }

 private:
  TruthFn Truth() const {
    return [this](ItemId item) {
      const auto& oracle = *oracles_[subject_.ShardOf(item)];
      return TruthView{oracle.Contains(item), oracle.TrueFrequency(item),
                       oracle.TruePersistency(item)};
    };
  }

  std::optional<std::string> PointQuery(ItemId item) const {
    uint32_t s = subject_.ShardOf(item);
    const auto& oracle = *oracles_[s];
    uint64_t freq = subject_.EstimateFrequency(item);
    uint64_t pers = subject_.EstimatePersistency(item);
    if (!oracle.Contains(item) &&
        (freq != 0 || pers != 0 || subject_.QuerySignificance(item) != 0.0)) {
      return "point: never-inserted item " + std::to_string(item) +
             " answered nonzero";
    }
    if (gates_.freq_one_sided && freq > oracle.TrueFrequency(item)) {
      return "point: frequency overestimated for item " +
             std::to_string(item);
    }
    if (gates_.pers_one_sided && pers > oracle.TruePersistency(item)) {
      return "point: persistency overestimated for item " +
             std::to_string(item);
    }
    // Metamorphic: routing is per-item stable, so the sharded answer must
    // equal the standalone mirror's answer exactly.
    if (freq != mirrors_[s].EstimateFrequency(item) ||
        pers != mirrors_[s].EstimatePersistency(item)) {
      return "point: sharded answer diverged from per-shard mirror for "
             "item " + std::to_string(item);
    }
    return std::nullopt;
  }

  std::optional<std::string> MirrorDiff(const char* when) const {
    for (uint32_t s = 0; s < subject_.num_shards(); ++s) {
      auto got = subject_.shard(s).TopK(subject_.shard(s).num_cells());
      auto want = mirrors_[s].TopK(mirrors_[s].num_cells());
      if (got.size() != want.size()) {
        return std::string(when) + ": shard " + std::to_string(s) +
               " occupancy diverged from mirror";
      }
      for (size_t i = 0; i < got.size(); ++i) {
        if (got[i].item != want[i].item ||
            got[i].frequency != want[i].frequency ||
            got[i].persistency != want[i].persistency) {
          return std::string(when) + ": shard " + std::to_string(s) +
                 " rank " + std::to_string(i) + " diverged, " +
                 Describe(got[i]) + " vs mirror " + Describe(want[i]);
        }
      }
    }
    return std::nullopt;
  }

  std::optional<std::string> TopKDiff() const {
    if (auto err = CheckReports(subject_.TopK(10), 10, config_, gates_,
                                Truth(), "TopK(10)")) {
      return err;
    }
    return MirrorDiff("topk");
  }

  std::optional<std::string> RoundTrip() {
    BinaryWriter writer;
    subject_.Serialize(writer);
    BinaryReader reader(writer.data());
    auto restored = ShardedLtc::Deserialize(reader);
    if (!restored || !reader.AtEnd()) {
      return std::string("roundtrip: checkpoint did not restore");
    }
    if (restored->num_shards() != subject_.num_shards()) {
      return std::string("roundtrip: shard count changed");
    }
    subject_ = std::move(*restored);
#ifdef LTC_AUDIT
    for (uint32_t s = 0; s < subject_.num_shards(); ++s) {
      subject_.AttachAuditOracle(s, oracles_[s].get());
    }
#endif
    return MirrorDiff("roundtrip");
  }

  LtcConfig config_;
  Gates gates_;
  ShardedLtc subject_;
  std::vector<std::unique_ptr<ExactSignificanceOracle>> oracles_;
  std::vector<Ltc> mirrors_;
};

// ------------------------------------------------------------- Windowed

class WindowedRunner {
 public:
  explicit WindowedRunner(const FuzzOptions& options)
      : config_(options.MakeConfig()),  // forced time-based
        gates_(GatesFor(config_)),
        subject_(config_, options.window_periods) {
    ResetPaneOracles(/*adjacent=*/false);
  }

  std::optional<std::string> Apply(const TraceOp& op) {
    switch (op.kind) {
      case TraceOp::kInsert:
        return Insert(op.item, op.time);
      case TraceOp::kPointQuery:
        return PointQuery(op.item);
      case TraceOp::kTopKDiff:
        return TopKDiff();
      case TraceOp::kSerializeRoundTrip:
        return RoundTrip();
      case TraceOp::kMergeCheck:
        // WindowedLtc has no merge surface; nothing to exercise.
        return std::nullopt;
    }
    return std::nullopt;
  }

  std::optional<std::string> Finish() {
    if (!subject_.CheckInvariants()) {
      return std::string("final: CheckInvariants failed");
    }
    return CheckReports(subject_.TopK(50), 50, config_, gates_, Truth(),
                        "final TopK(50)");
  }

 private:
  // Pane-relative truth: the window rotates panes, so the harness keeps
  // one oracle per live pane and retires them exactly as the subject
  // retires panes (mirroring WindowedLtc::Rotate's adjacency rule).
  void ResetPaneOracles(bool adjacent) {
    if (adjacent && active_oracle_ != nullptr) {
      previous_oracle_ = std::move(active_oracle_);
    } else {
      previous_oracle_.reset();
    }
    active_oracle_ =
        std::make_unique<ExactSignificanceOracle>(subject_.pane_config());
  }

  std::optional<std::string> Insert(ItemId item, double time) {
    // Mirror the subject's clamp + rotation BEFORE inserting so the
    // oracle observes first (the LTC_AUDIT contract).
    if (time < last_time_) time = last_time_;
    last_time_ = time;
    uint64_t pane = static_cast<uint64_t>(time / subject_.pane_span());
    if (pane != tracked_pane_) {
      ResetPaneOracles(/*adjacent=*/pane == tracked_pane_ + 1);
      tracked_pane_ = pane;
    }
    double pane_start = static_cast<double>(pane) * subject_.pane_span();
    active_oracle_->Observe(item, time - pane_start);
#ifdef LTC_AUDIT
    subject_.AttachAuditOracle(active_oracle_.get());
#endif
    subject_.Insert(item, time);
    if (subject_.current_pane() != tracked_pane_) {
      return "insert: subject pane " +
             std::to_string(subject_.current_pane()) +
             " diverged from expected pane " + std::to_string(tracked_pane_);
    }
    return std::nullopt;
  }

  // Window truth = sum over the live panes (they partition time).
  TruthFn Truth() const {
    return [this](ItemId item) {
      TruthView tv;
      tv.present = active_oracle_->Contains(item) ||
                   (previous_oracle_ && previous_oracle_->Contains(item));
      tv.freq = active_oracle_->TrueFrequency(item);
      tv.pers = active_oracle_->TruePersistency(item);
      if (previous_oracle_) {
        tv.freq += previous_oracle_->TrueFrequency(item);
        tv.pers += previous_oracle_->TruePersistency(item);
      }
      return tv;
    };
  }

  std::optional<std::string> PointQuery(ItemId item) const {
    double sig = subject_.QuerySignificance(item);
    TruthView tv = Truth()(item);
    if (!tv.present && sig != 0.0) {
      return "point: item " + std::to_string(item) +
             " absent from the window answered s=" + std::to_string(sig);
    }
    if (gates_.pers_one_sided) {
      double bound = config_.alpha * static_cast<double>(tv.freq) +
                     config_.beta * static_cast<double>(tv.pers);
      if (sig > bound + kSigEps) {
        return "point: window significance overestimated for item " +
               std::to_string(item) + " (s=" + std::to_string(sig) +
               " > true " + std::to_string(bound) + ")";
      }
    }
    return std::nullopt;
  }

  std::optional<std::string> TopKDiff() const {
    return CheckReports(subject_.TopK(10), 10, config_, gates_, Truth(),
                        "TopK(10)");
  }

  std::optional<std::string> RoundTrip() {
    BinaryWriter writer;
    subject_.Serialize(writer);
    BinaryReader reader(writer.data());
    auto restored = WindowedLtc::Deserialize(reader);
    if (!restored || !reader.AtEnd()) {
      return std::string("roundtrip: checkpoint did not restore");
    }
    if (restored->current_pane() != subject_.current_pane() ||
        restored->window_periods() != subject_.window_periods()) {
      return std::string("roundtrip: rotation state changed");
    }
    auto before = subject_.TopK(50);
    auto after = restored->TopK(50);
    if (before.size() != after.size()) {
      return std::string("roundtrip: report count changed");
    }
    for (size_t i = 0; i < before.size(); ++i) {
      if (before[i].item != after[i].item ||
          before[i].frequency != after[i].frequency ||
          before[i].persistency != after[i].persistency) {
        return "roundtrip: rank " + std::to_string(i) + " changed";
      }
    }
    subject_ = std::move(*restored);
    return std::nullopt;
  }

  LtcConfig config_;
  Gates gates_;
  WindowedLtc subject_;
  double last_time_ = 0.0;
  uint64_t tracked_pane_ = 0;
  std::unique_ptr<ExactSignificanceOracle> active_oracle_;
  std::unique_ptr<ExactSignificanceOracle> previous_oracle_;
};

// --------------------------------------------------------------- driver

#ifdef LTC_AUDIT
// Installs the throwing handler for one run so hook violations become
// shrinkable failures; restores the previous handler on scope exit.
class ScopedThrowingAuditHandler {
 public:
  ScopedThrowingAuditHandler()
      : previous_(SetAuditFailureHandler(&ThrowingAuditHandler)) {}
  ~ScopedThrowingAuditHandler() { SetAuditFailureHandler(previous_); }

 private:
  AuditFailureHandler previous_;
};
#endif

template <typename Runner>
std::optional<FuzzFailure> RunWith(const FuzzOptions& options,
                                   const std::vector<TraceOp>& trace) {
#ifdef LTC_AUDIT
  ScopedThrowingAuditHandler scoped_handler;
#endif
  Runner runner(options);
  for (size_t i = 0; i < trace.size(); ++i) {
    std::optional<std::string> err;
#ifdef LTC_AUDIT
    try {
      err = runner.Apply(trace[i]);
    } catch (const AuditViolation& violation) {
      err = std::string(violation.what());
    }
#else
    err = runner.Apply(trace[i]);
#endif
    if (err) {
      return FuzzFailure{i, trace.size(), *err, ReplayCommand(options)};
    }
  }
  std::optional<std::string> err;
#ifdef LTC_AUDIT
  try {
    err = runner.Finish();
  } catch (const AuditViolation& violation) {
    err = std::string(violation.what());
  }
#else
  err = runner.Finish();
#endif
  if (err) {
    return FuzzFailure{trace.size(), trace.size(), *err,
                       ReplayCommand(options)};
  }
  return std::nullopt;
}

}  // namespace

std::optional<FuzzFailure> RunTrace(const FuzzOptions& options,
                                    const std::vector<TraceOp>& trace) {
  switch (options.subject) {
    case SubjectKind::kLtc:
      return RunWith<LtcRunner>(options, trace);
    case SubjectKind::kSharded:
      return RunWith<ShardedRunner>(options, trace);
    case SubjectKind::kWindowed:
      return RunWith<WindowedRunner>(options, trace);
  }
  return std::nullopt;
}

std::optional<FuzzFailure> RunDifferential(const FuzzOptions& options) {
  std::vector<TraceOp> trace = GenerateTrace(options);
  std::optional<FuzzFailure> failure = RunTrace(options, trace);
  if (!failure) return std::nullopt;

  // ddmin-style shrink: drop chunks as long as SOME failure reproduces,
  // halving the chunk size when a full scan removes nothing. Bounded so a
  // pathological trace cannot stall the suite.
  trace.resize(std::min(trace.size(), failure->op_index + 1));
  int runs_left = 200;
  size_t chunk = std::max<size_t>(1, trace.size() / 2);
  while (chunk >= 1 && runs_left > 0) {
    bool removed = false;
    for (size_t start = 0; start < trace.size() && runs_left > 0;
         start += chunk) {
      std::vector<TraceOp> candidate;
      candidate.reserve(trace.size());
      candidate.insert(candidate.end(), trace.begin(),
                       trace.begin() + static_cast<ptrdiff_t>(start));
      size_t end = std::min(trace.size(), start + chunk);
      candidate.insert(candidate.end(),
                       trace.begin() + static_cast<ptrdiff_t>(end),
                       trace.end());
      --runs_left;
      if (auto shrunk = RunTrace(options, candidate)) {
        trace = std::move(candidate);
        failure = std::move(shrunk);
        removed = true;
        break;  // rescan at the same granularity
      }
    }
    if (!removed) {
      if (chunk == 1) break;
      chunk /= 2;
    }
  }
  failure->replay_command = ReplayCommand(options) + "  # shrinks to " +
                            std::to_string(trace.size()) + " ops";
  return failure;
}

}  // namespace ltc
