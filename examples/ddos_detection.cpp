// Use Case 1 (paper §I): DDoS detection.
//
// A victim sees three kinds of source addresses:
//   * benign background traffic — light, short-lived;
//   * flash crowds — very frequent for a few minutes, then gone;
//   * DDoS bots — frequent AND persistent (they hammer for hours).
//
// Ranking sources by frequency alone flags the flash crowd as hard as the
// bots. Ranking by significance (frequency + weighted persistency) puts
// the bots on top. This example synthesizes such traffic, runs both
// rankings from the same 32 KB LTC-style budget, and scores them against
// the known bot set.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/ltc.h"
#include "core/significance_estimator.h"
#include "stream/stream.h"

namespace {

struct Traffic {
  std::vector<ltc::Record> records;
  std::set<ltc::ItemId> bots;
  double duration;
};

Traffic Synthesize() {
  constexpr int kPeriods = 120;         // two hours of 1-minute periods
  constexpr double kPeriodSec = 60.0;
  ltc::Rng rng(2024);
  Traffic traffic;
  traffic.duration = kPeriods * kPeriodSec;

  // 40 bots: ~80 packets per minute, all two hours.
  std::vector<ltc::ItemId> bots;
  for (int i = 0; i < 40; ++i) {
    ltc::ItemId bot = 0xB0000000ULL + i + 1;
    bots.push_back(bot);
    traffic.bots.insert(bot);
  }
  for (int period = 0; period < kPeriods; ++period) {
    for (ltc::ItemId bot : bots) {
      uint64_t packets = 60 + rng.Uniform(40);
      for (uint64_t i = 0; i < packets; ++i) {
        traffic.records.push_back(
            {bot, (period + rng.UniformDouble()) * kPeriodSec});
      }
    }
  }

  // A flash crowd: 60 sources, huge rate, but only minutes 30–34.
  for (int i = 0; i < 60; ++i) {
    ltc::ItemId fan = 0xF0000000ULL + i + 1;
    for (int period = 30; period < 35; ++period) {
      for (int j = 0; j < 2'000; ++j) {
        traffic.records.push_back(
            {fan, (period + rng.UniformDouble()) * kPeriodSec});
      }
    }
  }

  // Benign background: 50k light sources.
  for (int i = 0; i < 300'000; ++i) {
    ltc::ItemId src = rng.Uniform(50'000) + 1;
    traffic.records.push_back(
        {src, rng.UniformDouble() * traffic.duration});
  }

  std::sort(traffic.records.begin(), traffic.records.end(),
            [](const ltc::Record& a, const ltc::Record& b) {
              return a.time < b.time;
            });
  return traffic;
}

ltc::Ltc RunLtc(const Traffic& traffic, double alpha, double beta) {
  ltc::LtcConfig config;
  config.memory_bytes = 32 * 1024;
  config.alpha = alpha;
  config.beta = beta;
  config.period_mode = ltc::PeriodMode::kTimeBased;
  config.period_seconds = 60.0;
  ltc::Ltc table(config);
  table.InsertBatch(traffic.records);
  table.Finalize();
  return table;
}

// Scoring is written against the SignificanceEstimator interface, so the
// same detector logic would work over a ShardedLtc or WindowedLtc sketch.
int CountBots(const ltc::SignificanceEstimator& sketch,
              const std::set<ltc::ItemId>& bots, size_t k) {
  int hits = 0;
  for (const auto& report : sketch.TopK(k)) {
    if (bots.count(report.item)) ++hits;
  }
  return hits;
}

}  // namespace

int main() {
  Traffic traffic = Synthesize();
  std::printf("synthesized %zu packets, %zu bot sources\n",
              traffic.records.size(), traffic.bots.size());

  constexpr size_t kTop = 40;

  // Detector A: top-k FREQUENT sources (alpha=1, beta=0).
  ltc::Ltc by_frequency = RunLtc(traffic, 1.0, 0.0);
  int frequent_hits = CountBots(by_frequency, traffic.bots, kTop);

  // Detector B: top-k SIGNIFICANT sources (alpha=1, beta=200 — one period
  // of presence weighs like 200 packets).
  ltc::Ltc by_significance = RunLtc(traffic, 1.0, 200.0);
  int significant_hits = CountBots(by_significance, traffic.bots, kTop);

  std::printf("\ntop-%zu by frequency     : %d/%zu bots (flash crowd "
              "pollutes the list)\n",
              kTop, frequent_hits, traffic.bots.size());
  std::printf("top-%zu by significance : %d/%zu bots\n", kTop,
              significant_hits, traffic.bots.size());

  std::printf("\nmost significant sources (B0xx = bot, F0xx = flash fan):\n");
  std::printf("%-12s %10s %12s\n", "source", "packets", "periods");
  for (const auto& report : by_significance.TopK(10)) {
    std::printf("%#-12llx %10llu %12llu\n",
                static_cast<unsigned long long>(report.item),
                static_cast<unsigned long long>(report.frequency),
                static_cast<unsigned long long>(report.persistency));
  }
  return significant_hits >= frequent_hits ? 0 : 1;
}
