#include "server/push_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/serial.h"
#include "telemetry/trace.h"

namespace ltc {
namespace server {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Polls `fd` for `events` until the absolute deadline. True when the
/// event fired; false on expiry or poll failure.
bool PollUntil(int fd, short events, uint64_t deadline_usec) {
  while (true) {
    const uint64_t now = NowMicros();
    if (now >= deadline_usec) return false;
    const uint64_t remaining_ms = (deadline_usec - now) / 1'000;
    pollfd pfd{fd, events, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining_ms > 0 ? remaining_ms : 1));
    if (ready > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (ready < 0 && errno != EINTR) return false;
  }
}

}  // namespace

bool TcpPushTransport::Connect(const std::string& host, uint16_t port,
                               uint64_t deadline_usec) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  if (!SetNonBlocking(fd_)) {
    Close();
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return false;
  }
  const uint64_t deadline = NowMicros() + deadline_usec;
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      Close();
      return false;
    }
    if (!PollUntil(fd_, POLLOUT, deadline)) {
      Close();
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      Close();
      return false;
    }
  }
  return true;
}

bool TcpPushTransport::Send(std::string_view bytes, uint64_t deadline_usec) {
  if (fd_ < 0) return false;
  const uint64_t deadline = NowMicros() + deadline_usec;
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!PollUntil(fd_, POLLOUT, deadline)) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool TcpPushTransport::Recv(std::string* out, size_t max_bytes,
                            uint64_t deadline_usec) {
  if (fd_ < 0 || max_bytes == 0) return false;
  const uint64_t deadline = NowMicros() + deadline_usec;
  char buf[4096];
  while (true) {
    const size_t want = max_bytes < sizeof(buf) ? max_bytes : sizeof(buf);
    const ssize_t n = ::recv(fd_, buf, want, 0);
    if (n > 0) {
      out->append(buf, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) return false;  // peer EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!PollUntil(fd_, POLLIN, deadline)) return false;
      continue;
    }
    return false;
  }
}

void TcpPushTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SketchPusher::SketchPusher(const SketchPusherConfig& config,
                           PushTransport* transport, Clock* clock)
    : config_(config),
      transport_(transport),
      clock_(clock != nullptr ? clock : &SystemClock()) {}

void SketchPusher::AttachMetrics(telemetry::MetricsRegistry* registry) {
  attempts_counter_ = &registry->CounterOf(
      "ltc_push_attempts_total", "Push delivery attempts (first tries and "
      "retries both count).");
  retries_counter_ = &registry->CounterOf(
      "ltc_push_retries_total", "Push re-attempts after a transport failure.");
  rejected_counter_ = &registry->CounterOf(
      "ltc_push_rejected_total",
      "Pushes terminally rejected by the aggregator (typed error).");
  delivered_counter_ = &registry->CounterOf(
      "ltc_push_delivered_total", "Pushes acknowledged with kOk.");
}

SketchPusher::Result SketchPusher::Push(const Ltc& table, uint64_t epoch_seq,
                                        uint64_t records) {
  BinaryWriter writer;
  table.Serialize(writer);
  return PushSerialized(writer.data(), epoch_seq, records);
}

SketchPusher::Result SketchPusher::PushSerialized(std::string_view sketch_bytes,
                                                  uint64_t epoch_seq,
                                                  uint64_t records) {
  PushRequest request;
  request.node_id = config_.node_id;
  request.epoch_seq = epoch_seq;
  request.sketch_kind = kSketchKindLtc;
  request.records = records;
  request.payload = std::string(sketch_bytes);

  // The delivery span covers the whole retry schedule; each attempt is
  // a child, so a retry storm is visible as a fan of attempt spans.
  telemetry::Span deliver_span("push.deliver");
  deliver_span.AddAttr("node", config_.node_id);
  deliver_span.AddAttr("epoch", epoch_seq);
  std::string payload = EncodePushRequest(request);
  if (config_.propagate_trace && deliver_span.recording()) {
    const telemetry::TraceContext ctx = deliver_span.context();
    AppendTraceExt(&payload, {ctx.trace_id, ctx.span_id});
  }
  const std::string frame = EncodeFrame(payload);

  Result result;
  uint64_t retries_before = retries_;
  const bool delivered = RetryWithBackoff(
      config_.retry, *clock_,
      [&] {
        attempts_++;
        if (attempts_counter_ != nullptr) attempts_counter_->Increment();
        telemetry::Span attempt_span("push.attempt");
        attempt_span.AddAttr("attempt", attempts_);
        if (Attempt(frame, &result)) return true;
        // Whatever broke, the stream state is unknowable: reconnect.
        transport_->Close();
        return false;
      },
      &retries_);
  if (retries_counter_ != nullptr && retries_ > retries_before) {
    retries_counter_->Increment(retries_ - retries_before);
  }

  if (!delivered) {
    // Every attempt failed at the transport level; result.error holds
    // the last failure. Terminal flags were already folded in by
    // Attempt (a typed rejection returns true to stop the retry loop).
    return result;
  }
  if (result.terminal) {
    rejected_++;
    if (rejected_counter_ != nullptr) rejected_counter_->Increment();
    return result;
  }
  delivered_++;
  if (delivered_counter_ != nullptr) delivered_counter_->Increment();
  return result;
}

bool SketchPusher::Attempt(const std::string& frame, Result* result) {
  if (!transport_->connected() &&
      !transport_->Connect(config_.host, config_.port,
                           config_.io_deadline_usec)) {
    result->error = "connect failed or timed out";
    return false;
  }
  if (!transport_->Send(frame, config_.io_deadline_usec)) {
    result->error = "send failed or timed out";
    return false;
  }

  // The ack is an ordinary (small) response frame; read until the
  // parser pops it or the deadline runs out.
  FrameParser parser;
  std::string chunk;
  while (true) {
    std::optional<std::string> payload = parser.Next();
    if (payload.has_value()) {
      std::optional<DecodedResponse> decoded =
          DecodeResponse(Opcode::kPushSketch, *payload);
      if (!decoded.has_value()) {
        result->error = "undecodable push ack";
        return false;
      }
      result->status = decoded->status;
      if (decoded->status == Status::kOk) {
        result->delivered = true;
        result->applied = decoded->push_applied;
        result->terminal = false;
        result->error.clear();
        return true;
      }
      // A typed rejection is authoritative: retrying the same bytes
      // cannot change the answer. Report it and stop the loop.
      result->delivered = false;
      result->applied = false;
      result->terminal = true;
      result->error = decoded->error_detail.empty()
                          ? StatusName(decoded->status)
                          : decoded->error_detail;
      return true;
    }
    if (parser.oversized()) {
      result->error = "oversized push ack frame";
      return false;
    }
    chunk.clear();
    if (!transport_->Recv(&chunk, 4096, config_.io_deadline_usec)) {
      result->error = "ack recv failed or timed out";
      return false;
    }
    parser.Feed(chunk);
  }
}

}  // namespace server
}  // namespace ltc
