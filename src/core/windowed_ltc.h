// Jumping-window LTC — the natural extension of the paper's future-work
// direction: significance over the RECENT past instead of the whole
// stream (the §I congestion use case really wants "flows persistent over
// the last hour", not since boot).
//
// Construction: two panes, each an independent Ltc over half the memory
// budget, rotated every ⌈W/2⌉ periods. A query merges the active pane
// with the previous one, so the answer always covers between ⌈W/2⌉ and
// W recent periods and never anything older than W. Because the panes
// partition time disjointly, merging adds per-item fields exactly
// (Ltc::MergeFrom is exact for time-partitioned inputs).

#ifndef LTC_CORE_WINDOWED_LTC_H_
#define LTC_CORE_WINDOWED_LTC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/serial.h"
#include "core/ltc.h"
#include "core/significance_estimator.h"

namespace ltc {

class WindowedLtc final : public SignificanceEstimator {
 public:
  /// \param config          per-pane configuration; memory_bytes is the
  ///                        TOTAL budget (halved per pane). Must be
  ///                        time-based: a window of periods needs a
  ///                        wall-clock period definition.
  /// \param window_periods  W >= 2, the history horizon in periods
  WindowedLtc(const LtcConfig& config, uint32_t window_periods);

  // Insert(item, time) is inherited from SignificanceEstimator (a
  // one-record batch through InsertBatch below). Like Ltc in time-based
  // mode, the window never moves backwards: a timestamp earlier than the
  // latest one seen is clamped to it, so a regressing feed can never
  // resurrect an expired pane (docs/TESTING.md "Time-based edge cases").

  /// Processes a run of arrivals in order: per-record pane routing (a
  /// rotation can fall mid-batch), identical state to one Insert per
  /// record.
  void InsertBatch(std::span<const Record> records) override;

  /// No-op, kept for the SignificanceEstimator contract: every query
  /// already finalizes a pane *copy* internally (rotation must keep the
  /// live panes' pending flags intact), so there is never anything for
  /// the caller to credit.
  void Finalize() override {}

  /// Top-k significant items over the covered window (the last
  /// ⌈W/2⌉..W periods). Non-destructive; callable at any time.
  std::vector<Ltc::Report> TopK(size_t k) const override;

  /// Significance of one item over the covered window (0 if untracked).
  double QuerySignificance(ItemId item) const override;

  /// Frequency / persistency of one item over the covered window (0 if
  /// untracked): the active pane's (pending flags credited on a copy)
  /// plus the previous pane's — exact, as the panes partition time.
  uint64_t EstimateFrequency(ItemId item) const override;
  uint64_t EstimatePersistency(ItemId item) const override;

  /// Oldest period index the current answer can include.
  uint64_t WindowStartPeriod() const;

  uint32_t window_periods() const { return window_periods_; }
  uint32_t pane_periods() const { return pane_periods_; }
  uint64_t current_pane() const { return current_pane_; }
  /// Per-pane configuration (memory already halved, time-based).
  const LtcConfig& pane_config() const { return pane_config_; }
  /// Wall-clock span of one pane: pane_periods · period_seconds. Pane
  /// boundaries are multiples of this exact double, so external mirrors
  /// (the differential harness) can reproduce them bit-for-bit.
  double pane_span() const { return pane_span_; }
  size_t MemoryBytes() const override {
    return active_.MemoryBytes() + previous_.MemoryBytes();
  }

  /// True iff both panes' structural invariants hold and the rotation
  /// bookkeeping is consistent.
  bool CheckInvariants() const;

  /// Checkpointing: writes both panes plus the rotation state; a restored
  /// window continues the stream exactly where the original left off.
  void Serialize(BinaryWriter& writer) const;
  static std::optional<WindowedLtc> Deserialize(BinaryReader& reader);

#ifdef LTC_AUDIT
  /// Attaches a ground-truth oracle to the ACTIVE pane. Panes are reset
  /// on rotation, so the truth must be pane-relative: the harness resets
  /// its oracle whenever current_pane() changes and observes times
  /// relative to the pane start (time − pane·pane_periods·t).
  void AttachAuditOracle(const AuditOracle* oracle) {
    audit_oracle_ = oracle;
    active_.AttachAuditOracle(oracle);
  }
#endif

 private:
  WindowedLtc(Ltc active, Ltc previous, uint32_t window_periods,
              uint64_t current_pane, bool previous_live, double last_time);

  void InsertOne(ItemId item, double time);
  void Rotate(uint64_t pane_index);
  uint64_t PaneOf(double time) const;

  LtcConfig pane_config_;
  uint32_t window_periods_;
  uint32_t pane_periods_;
  double pane_span_;
  uint64_t current_pane_ = 0;
  Ltc active_;
  Ltc previous_;
  bool previous_live_ = false;  // previous_ holds the preceding pane
  double last_time_ = 0.0;      // latest (clamped) timestamp seen

#ifdef LTC_AUDIT
  const AuditOracle* audit_oracle_ = nullptr;  // transient, not serialized
#endif
};

}  // namespace ltc

#endif  // LTC_CORE_WINDOWED_LTC_H_
