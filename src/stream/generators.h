// Synthetic workload generators.
//
// The paper evaluates on three real traces (CAIDA 2016 packets, a
// stack-exchange temporal interaction network, a social-network message
// log) that we do not have; per DESIGN.md §3 each is replaced by a
// generator reproducing the properties the experiments actually exercise:
// a long-tail (Zipf) frequency marginal, and a controlled mix of
// frequent-and-persistent versus frequent-but-bursty items so that
// frequency, persistency and significance rankings genuinely differ.

#ifndef LTC_STREAM_GENERATORS_H_
#define LTC_STREAM_GENERATORS_H_

#include <cstdint>

#include "stream/stream.h"

namespace ltc {

/// How an item's appearances are placed in time.
enum class TemporalClass {
  kStable,  // active over the whole trace -> maximal persistency
  kBursty,  // all appearances inside a short contiguous window
  kSpan,    // active over a random sub-interval of the trace
};

/// Knobs for the generic long-tail workload generator.
struct WorkloadConfig {
  uint64_t num_records = 1'000'000;  // N, total stream length
  uint64_t num_distinct = 100'000;   // M, distinct item universe
  double zipf_gamma = 1.0;           // skew of the frequency marginal
  uint32_t num_periods = 100;        // T

  // Temporal-class mixture (probabilities; remainder -> kSpan).
  double p_stable = 0.3;
  double p_bursty = 0.2;

  // A bursty item's window spans this fraction of the periods (>= 1 period).
  double burst_fraction = 0.02;

  // Sinusoidal rate modulation across periods (0 = none, used by the
  // social-like workload to mimic diurnal activity).
  double diurnal_amplitude = 0.0;

  uint64_t seed = 1;
};

/// Generates a stream per `config`. Frequencies are drawn by i.i.d.
/// Zipf sampling (so the marginal matches paper Eq. 3 in expectation);
/// each distinct item then receives a temporal class and its appearances
/// are placed accordingly; the result is sorted by timestamp.
Stream GenerateWorkload(const WorkloadConfig& config);

/// The three dataset stand-ins (DESIGN.md §3). `num_records` defaults are
/// scaled down from the paper (10M/10M/1.5M) for bench runtime; pass the
/// paper's sizes to reproduce at full scale.
Stream MakeCaidaLike(uint64_t num_records = 2'000'000, uint64_t seed = 1);
Stream MakeNetworkLike(uint64_t num_records = 2'000'000, uint64_t seed = 2);
Stream MakeSocialLike(uint64_t num_records = 1'500'000, uint64_t seed = 3);

/// Plain i.i.d. Zipf stream with index timestamps — the model under which
/// the paper's §IV bounds are derived; used by the Fig. 7 reproduction.
Stream MakeZipfStream(uint64_t num_records, uint64_t num_distinct,
                      double gamma, uint32_t num_periods, uint64_t seed);

/// Uniform-frequency stream (γ = 0). Exists to exercise the documented
/// *shortcoming* of Long-tail Replacement (§III-D): the optimization's
/// assumptions fail off-distribution and tests pin down that behaviour.
Stream MakeUniformStream(uint64_t num_records, uint64_t num_distinct,
                         uint32_t num_periods, uint64_t seed);

/// Concept-drift stream: the item popularity ranking rotates every
/// `phase_periods` periods (rank r in phase q maps to a different
/// concrete item than in phase q+1), while each phase is Zipf(γ)
/// internally. The whole-stream top-k and the recent-window top-k then
/// genuinely differ — the workload WindowedLtc exists for.
Stream MakeDriftingStream(uint64_t num_records, uint64_t num_distinct,
                          double gamma, uint32_t num_periods,
                          uint32_t phase_periods, uint64_t seed);

}  // namespace ltc

#endif  // LTC_STREAM_GENERATORS_H_
