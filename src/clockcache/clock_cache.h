// Classic CLOCK page-replacement cache (Corbató, 1968).
//
// LTC's Persistency Incrementing "leverages the spirit of the well-known
// CLOCK algorithm" (§III-B): a pointer sweeps slots, inspects a reference
// flag, and lazily acts on it. This module is the textbook original — a
// second-chance FIFO approximation of LRU — kept as a reference substrate
// with its own tests so the borrowed mechanism is pinned down in isolation
// before core/ reuses the sweep-a-flag idea for period counting.
//
// The buffer-pool extensions (pin counts, dirty bits, eviction
// reporting) generalize the same sweep for src/store: a pinned frame is
// skipped by the hand no matter its reference bit, and evicting a dirty
// frame reports the victim so the owner can write it back first. The
// original Access(key) semantics are unchanged when no frame is ever
// pinned.

#ifndef LTC_CLOCKCACHE_CLOCK_CACHE_H_
#define LTC_CLOCKCACHE_CLOCK_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ltc {

class ClockCache {
 public:
  /// What Access did for the key.
  enum class Admit {
    kHit,       // already resident; reference bit set
    kAdmitted,  // was absent; admitted (possibly evicting a victim)
    kNoFrame,   // was absent and every frame is pinned: not admitted
  };

  /// The frame Access evicted to make room, if any.
  struct Evicted {
    bool happened = false;
    uint64_t key = 0;
    bool dirty = false;  // the owner must write this frame back
  };

  explicit ClockCache(size_t capacity);

  /// Touches `key`: on hit sets its reference bit and returns true; on
  /// miss admits it (evicting via the clock hand if full) and returns
  /// false.
  bool Access(uint64_t key) { return AccessEx(key) == Admit::kHit; }

  /// Access with buffer-pool semantics: reports the victim through
  /// `evicted` (optional) and fails with kNoFrame instead of looping
  /// when every frame is pinned. New frames are admitted unpinned and
  /// clean.
  Admit AccessEx(uint64_t key, Evicted* evicted = nullptr);

  /// Pins `key` against eviction (counted: N pins need N unpins).
  /// Returns false when `key` is not resident.
  bool Pin(uint64_t key);
  bool Unpin(uint64_t key);

  /// Dirty bit: set when the owner mutated the cached entry and a
  /// write-back is owed. Returns false when `key` is not resident.
  bool MarkDirty(uint64_t key);
  bool ClearDirty(uint64_t key);

  /// Drops `key` without a sweep (the owner already wrote it back or
  /// discarded it). Returns false when absent or pinned.
  bool Erase(uint64_t key);

  bool Contains(uint64_t key) const { return index_.count(key) > 0; }
  bool IsPinned(uint64_t key) const;
  bool IsDirty(uint64_t key) const;

  size_t size() const { return index_.size(); }
  size_t capacity() const { return frames_.size(); }
  size_t pinned() const { return pinned_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

  /// Current clock-hand position (exposed for the sweep tests).
  size_t hand() const { return hand_; }

 private:
  struct Frame {
    uint64_t key = 0;
    bool referenced = false;
    bool occupied = false;
    bool dirty = false;
    uint32_t pins = 0;
  };

  /// Finds a victim slot, skipping pinned frames; `frames_.size()`
  /// when every frame is pinned.
  size_t EvictAndAdvance(Evicted* evicted);

  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, size_t> index_;
  size_t hand_ = 0;
  size_t pinned_ = 0;  // frames with pins > 0
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ltc

#endif  // LTC_CLOCKCACHE_CLOCK_CACHE_H_
