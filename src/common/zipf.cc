#include "common/zipf.h"

#include <cassert>
#include <cmath>

namespace ltc {

double TruncatedZeta(uint64_t m, double gamma) {
  // Kahan summation: m can be in the millions and the tail terms tiny.
  double sum = 0.0;
  double comp = 0.0;
  for (uint64_t i = 1; i <= m; ++i) {
    double term = std::pow(static_cast<double>(i), -gamma);
    double y = term - comp;
    double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double ZipfExpectedFrequency(uint64_t rank, uint64_t n, uint64_t m,
                             double gamma) {
  return static_cast<double>(n) *
         std::pow(static_cast<double>(rank), -gamma) /
         TruncatedZeta(m, gamma);
}

ZipfSampler::ZipfSampler(uint64_t num_items, double gamma)
    : num_items_(num_items), gamma_(gamma) {
  assert(num_items >= 1);
  zeta_ = TruncatedZeta(num_items, gamma);

  // Walker/Vose alias-table construction over p_i = i^{-γ} / ζ.
  const size_t m = static_cast<size_t>(num_items);
  std::vector<double> scaled(m);  // p_i * m
  for (size_t i = 0; i < m; ++i) {
    scaled[i] =
        std::pow(static_cast<double>(i + 1), -gamma) / zeta_ *
        static_cast<double>(m);
  }

  threshold_.assign(m, 1.0);
  alias_.assign(m, 0);

  std::vector<uint32_t> small, large;
  small.reserve(m);
  large.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    threshold_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Whatever remains has weight (numerically) 1.
  for (uint32_t s : small) threshold_[s] = 1.0;
  for (uint32_t l : large) threshold_[l] = 1.0;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  uint64_t column = rng.Uniform(num_items_);
  bool keep = rng.UniformDouble() < threshold_[column];
  return (keep ? column : alias_[column]) + 1;
}

double ZipfSampler::Pmf(uint64_t rank) const {
  return std::pow(static_cast<double>(rank), -gamma_) / zeta_;
}

}  // namespace ltc
