// CRC-32 (reflected IEEE, the zlib/PNG polynomial) against published
// check values, plus the incremental-update identity the snapshot
// frame relies on.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/crc32.h"

namespace ltc {
namespace {

TEST(Crc32, PublishedCheckValues) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  // Empty input is the identity.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  // Independently computed references (python zlib.crc32).
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, BinaryInputIncludingNulBytes) {
  const char bytes[] = {0x00, 0x01, 0x02, 0x00, static_cast<char>(0xff)};
  // NUL bytes must be hashed, not treated as terminators.
  EXPECT_NE(Crc32(bytes, sizeof(bytes)), Crc32(bytes, 3));
  EXPECT_EQ(Crc32(std::string(4, '\0')), 0x2144DF1Cu);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data =
      "incremental and one-shot digests must agree on every split";
  const uint32_t expected = Crc32(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t state = Crc32Init();
    state = Crc32Update(state, data.data(), split);
    state = Crc32Update(state, data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32Final(state), expected) << "split at " << split;
  }
}

TEST(Crc32, DetectsEverySingleByteFlip) {
  const std::string data = "snapshot payload bytes";
  const uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string corrupt = data;
    corrupt[i] ^= 0x01;
    EXPECT_NE(Crc32(corrupt), clean) << "flip at offset " << i;
  }
}

TEST(Crc32, SliceBy4TailHandling) {
  // Lengths around the 4-byte slicing boundary all agree with a
  // byte-at-a-time incremental computation.
  for (size_t len = 0; len <= 17; ++len) {
    std::string data;
    for (size_t i = 0; i < len; ++i) data.push_back(static_cast<char>(i * 37));
    uint32_t state = Crc32Init();
    for (char c : data) state = Crc32Update(state, &c, 1);
    EXPECT_EQ(Crc32(data), Crc32Final(state)) << "length " << len;
  }
}

}  // namespace
}  // namespace ltc
