#include "store/buffer_pool.h"

#include <utility>

namespace ltc {
namespace store {

BufferPool::BufferPool(size_t capacity, PageIo* io)
    : capacity_(capacity < 1 ? 1 : capacity), io_(io),
      cache_(capacity < 1 ? 1 : capacity) {}

uint64_t BufferPool::HandleOf(uint64_t tenant, uint32_t page) {
  const auto key = std::make_pair(tenant, page);
  auto it = handle_of_.find(key);
  if (it != handle_of_.end()) return it->second;
  const uint64_t handle = next_handle_++;
  handle_of_.emplace(key, handle);
  return handle;
}

bool BufferPool::CompleteEviction(const ClockCache::Evicted& evicted,
                                  std::string* error) {
  auto it = frames_.find(evicted.key);
  if (it == frames_.end()) return true;  // already gone (defensive)
  Frame& victim = it->second;
  if (evicted.dirty) {
    if (!io_->Store(victim.tenant, victim.page, victim.lsn, victim.payload,
                    error)) {
      return false;
    }
    ++stats_.pages_stored;
    ++stats_.evictions_dirty;
  } else {
    ++stats_.evictions_clean;
  }
  handle_of_.erase(std::make_pair(victim.tenant, victim.page));
  frames_.erase(it);
  return true;
}

BufferPool::Frame* BufferPool::Fetch(uint64_t tenant, uint32_t page,
                                     bool create_if_absent,
                                     std::string* error) {
  if (Poisoned(error)) return nullptr;
  const uint64_t handle = HandleOf(tenant, page);
  ClockCache::Evicted evicted;
  const ClockCache::Admit admit = cache_.AccessEx(handle, &evicted);
  if (admit == ClockCache::Admit::kHit) {
    ++stats_.hits;
    cache_.Pin(handle);
    return &frames_[handle];
  }
  if (admit == ClockCache::Admit::kNoFrame) {
    handle_of_.erase(std::make_pair(tenant, page));
    if (error != nullptr) {
      *error = "buffer pool exhausted: every frame is pinned";
    }
    return nullptr;
  }
  ++stats_.misses;
  // Undoes the admission after a failure below. The victim of a
  // *successful* eviction needs no undo — it was written back and
  // dropped like any other eviction.
  auto rollback = [&]() {
    cache_.Erase(handle);
    handle_of_.erase(std::make_pair(tenant, page));
  };
  if (evicted.happened && !CompleteEviction(evicted, error)) {
    // The victim's write-back failed: its newest bytes now live only
    // in this pool (and, if dirty, in the WAL). Serving more traffic
    // could return stale disk images, so the pool fails closed; a
    // reopen replays the WAL over the page files and starts clean.
    rollback();
    poisoned_ = true;
    return nullptr;
  }
  std::optional<PageIo::Loaded> loaded = io_->Load(tenant, page, error);
  if (!loaded.has_value()) {
    rollback();
    return nullptr;
  }
  if (!loaded->found && !create_if_absent) {
    rollback();
    if (error != nullptr) {
      *error = "page t" + std::to_string(tenant) + ".p" +
               std::to_string(page) + " does not exist";
    }
    return nullptr;
  }
  if (loaded->found) ++stats_.pages_loaded;
  Frame& frame = frames_[handle];
  frame.tenant = tenant;
  frame.page = page;
  frame.lsn = loaded->lsn;
  frame.dirty = false;
  frame.payload = std::move(loaded->payload);
  cache_.Pin(handle);
  return &frame;
}

void BufferPool::Unpin(Frame* frame, bool mark_dirty) {
  if (frame == nullptr) return;
  auto it = handle_of_.find(std::make_pair(frame->tenant, frame->page));
  if (it == handle_of_.end()) return;
  if (mark_dirty) {
    frame->dirty = true;
    cache_.MarkDirty(it->second);
  }
  cache_.Unpin(it->second);
}

bool BufferPool::Poisoned(std::string* error) const {
  if (!poisoned_) return false;
  if (error != nullptr) {
    *error = "buffer pool poisoned by a failed eviction write-back; "
             "reopen the store to recover from the WAL";
  }
  return true;
}

bool BufferPool::FlushDirty(std::string* error) {
  if (Poisoned(error)) return false;
  for (auto& [handle, frame] : frames_) {
    if (!frame.dirty) continue;
    if (!io_->Store(frame.tenant, frame.page, frame.lsn, frame.payload,
                    error)) {
      return false;
    }
    ++stats_.pages_stored;
    frame.dirty = false;
    cache_.ClearDirty(handle);
  }
  return true;
}

bool BufferPool::DropTenant(uint64_t tenant, std::string* error) {
  if (Poisoned(error)) return false;
  std::vector<uint64_t> handles;
  for (const auto& [handle, frame] : frames_) {
    if (frame.tenant != tenant) continue;
    if (cache_.IsPinned(handle)) {
      if (error != nullptr) {
        *error = "cannot drop tenant " + std::to_string(tenant) +
                 ": page p" + std::to_string(frame.page) + " is pinned";
      }
      return false;
    }
    handles.push_back(handle);
  }
  for (uint64_t handle : handles) {
    Frame& frame = frames_[handle];
    if (frame.dirty) {
      if (!io_->Store(frame.tenant, frame.page, frame.lsn, frame.payload,
                      error)) {
        return false;
      }
      ++stats_.pages_stored;
      frame.dirty = false;
      cache_.ClearDirty(handle);
    }
    cache_.Erase(handle);
    handle_of_.erase(std::make_pair(frame.tenant, frame.page));
    frames_.erase(handle);
  }
  return true;
}

std::vector<std::pair<uint64_t, uint32_t>> BufferPool::DirtyPages() const {
  std::vector<std::pair<uint64_t, uint32_t>> dirty;
  for (const auto& [handle, frame] : frames_) {
    if (frame.dirty) dirty.emplace_back(frame.tenant, frame.page);
  }
  return dirty;
}

const BufferPool::Frame* BufferPool::Peek(uint64_t tenant,
                                          uint32_t page) const {
  auto it = handle_of_.find(std::make_pair(tenant, page));
  if (it == handle_of_.end()) return nullptr;
  auto frame = frames_.find(it->second);
  return frame == frames_.end() ? nullptr : &frame->second;
}

size_t BufferPool::dirty_count() const {
  size_t count = 0;
  for (const auto& [handle, frame] : frames_) {
    if (frame.dirty) ++count;
  }
  return count;
}

}  // namespace store
}  // namespace ltc
