// Tests for LtcConfig::Validate and the constructor's rejection of
// malformed configurations (each rejection has its own case so a broken
// rule fails by name).

#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/ltc.h"

namespace ltc {
namespace {

LtcConfig ValidCountBased() {
  LtcConfig config;
  config.memory_bytes = 8 * 1024;
  config.period_mode = PeriodMode::kCountBased;
  config.items_per_period = 1'000;
  return config;
}

LtcConfig ValidTimeBased() {
  LtcConfig config;
  config.memory_bytes = 8 * 1024;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = 1.0;
  return config;
}

TEST(LtcConfigValidate, AcceptsDefaultsAndBothModes) {
  EXPECT_FALSE(LtcConfig{}.Validate().has_value());
  EXPECT_FALSE(ValidCountBased().Validate().has_value());
  EXPECT_FALSE(ValidTimeBased().Validate().has_value());
  EXPECT_NO_THROW(Ltc{ValidCountBased()});
  EXPECT_NO_THROW(Ltc{ValidTimeBased()});
}

TEST(LtcConfigValidate, RejectsZeroCellsPerBucket) {
  LtcConfig config = ValidCountBased();
  config.cells_per_bucket = 0;
  ASSERT_TRUE(config.Validate().has_value());
  EXPECT_NE(config.Validate()->find("cells_per_bucket"), std::string::npos);
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
}

TEST(LtcConfigValidate, RejectsNegativeAlpha) {
  LtcConfig config = ValidCountBased();
  config.alpha = -0.5;
  ASSERT_TRUE(config.Validate().has_value());
  EXPECT_NE(config.Validate()->find("alpha"), std::string::npos);
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
  config.alpha = std::nan("");
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
}

TEST(LtcConfigValidate, RejectsNegativeBeta) {
  LtcConfig config = ValidCountBased();
  config.beta = -1.0;
  ASSERT_TRUE(config.Validate().has_value());
  EXPECT_NE(config.Validate()->find("beta"), std::string::npos);
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
  config.beta = std::nan("");
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
}

TEST(LtcConfigValidate, RejectsBothWeightsZero) {
  LtcConfig config = ValidCountBased();
  config.alpha = 0.0;
  config.beta = 0.0;
  ASSERT_TRUE(config.Validate().has_value());
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
  // One zero weight is a legitimate frequency- or persistency-only table.
  config.alpha = 1.0;
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(LtcConfigValidate, RejectsZeroItemsPerPeriodInCountMode) {
  LtcConfig config = ValidCountBased();
  config.items_per_period = 0;
  ASSERT_TRUE(config.Validate().has_value());
  EXPECT_NE(config.Validate()->find("items_per_period"), std::string::npos);
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
}

TEST(LtcConfigValidate, RejectsNonPositivePeriodSecondsInTimeMode) {
  LtcConfig config = ValidTimeBased();
  config.period_seconds = 0.0;
  ASSERT_TRUE(config.Validate().has_value());
  EXPECT_NE(config.Validate()->find("period_seconds"), std::string::npos);
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
  config.period_seconds = -2.0;
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
  config.period_seconds = std::nan("");
  EXPECT_THROW(Ltc{config}, std::invalid_argument);
}

TEST(LtcConfigValidate, PeriodFieldsAreModeGated) {
  // A time-based table never consults items_per_period, and vice versa;
  // the unused field must not be validated.
  LtcConfig time_based = ValidTimeBased();
  time_based.items_per_period = 0;
  EXPECT_FALSE(time_based.Validate().has_value());

  LtcConfig count_based = ValidCountBased();
  count_based.period_seconds = 0.0;
  EXPECT_FALSE(count_based.Validate().has_value());
}

TEST(LtcConfigValidate, ThrownMessageNamesTheProblem) {
  LtcConfig config = ValidCountBased();
  config.alpha = -1.0;
  try {
    Ltc table(config);
    FAIL() << "constructor accepted a negative alpha";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos);
  }
}

}  // namespace
}  // namespace ltc
