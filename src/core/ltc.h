// LTC (Long-Tail CLOCK) — the paper's primary contribution (§III).
//
// A lossy table of w buckets × d cells tracks the items most likely to be
// *significant*, where significance s = α·frequency + β·persistency
// (Eq. 1). Three mechanisms cooperate:
//
//  * Significance Decrementing (§III-B): an unmatched arrival into a full
//    bucket decrements the least-significant cell; the cell's occupant is
//    expelled only when its significance reaches 0, at which point the
//    newcomer takes the slot. This is what makes the estimate one-sided
//    (no overestimation, Theorem IV.1).
//
//  * A modified CLOCK (§III-B, Fig. 3): every cell doubles as a time slot
//    on a clock face. A pointer sweeps all m = w·d slots exactly once per
//    period (fractional step m/n per arrival, or (x−y)/t·m for time-based
//    periods) and lazily converts per-period "appeared" flags into +1
//    persistency — so an item appearing many times in one period still
//    gains exactly 1, matching the definition of persistency.
//
//  * Optimization I, Deviation Eliminator (§III-C): one flag cannot
//    distinguish the current from the previous period, inflating
//    persistency by up to 2× the truth; two parity flags (even/odd
//    periods) remove the deviation with no refresh pass.
//
//  * Optimization II, Long-tail Replacement (§III-D): a newcomer that
//    fought its way in has, with high probability under a long-tail
//    distribution, a true value close to the old minimum — so its fields
//    are initialized to the bucket's second-smallest values − 1 instead
//    of 1.
//
// Both optimizations are config flags so the paper's ablations (Fig. 8,
// Fig. 11) run against this one implementation.

#ifndef LTC_CORE_LTC_H_
#define LTC_CORE_LTC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/serial.h"
#include "core/audit.h"
#include "core/significance_estimator.h"
#include "core/table_layout.h"
#include "stream/stream.h"

#ifdef LTC_METRICS
#include "core/ltc_metrics_sink.h"
#endif

namespace ltc {

/// How the CLOCK pointer paces itself (§III-B "Persistency Incrementing").
enum class PeriodMode {
  kCountBased,  // a period is a fixed number of arrivals; step = m/n
  kTimeBased,   // a period is a fixed time span; step = (x−y)/t · m
};

/// What happens when an arrival misses a full bucket (Case 3). The paper
/// motivates Long-tail Replacement against two alternatives; all three
/// are implemented so the ablation is a config flag (DESIGN.md §5.4,
/// bench_ablation_init).
enum class InitPolicy {
  kOne,         // basic version (§III-B): decrement the smallest; admit at
                //   (1, 0) when it empties — underestimates
  kLongTail,    // §III-D: decrement; admit at second-smallest − 1 — the
                //   paper's contribution
  kMinPlusOne,  // Space-Saving's strategy (§I): NO decrementing — replace
                //   the smallest immediately, inheriting its value + 1 —
                //   large overestimation on long-tail data
};

struct LtcConfig {
  /// Total memory budget; the bucket count w is derived as
  /// memory_bytes / (BytesPerCell · cells_per_bucket), min 1.
  size_t memory_bytes = 64 * 1024;

  /// d, cells per bucket. The paper evaluates d ∈ {1..32} and defaults to
  /// 8 (§V-C).
  uint32_t cells_per_bucket = 8;

  /// Significance weights (Eq. 1). α=1,β=0 degenerates to frequent items;
  /// α=0,β=1 to persistent items.
  double alpha = 1.0;
  double beta = 1.0;

  /// Optimization II (§III-D). On by default as in §V-D. Convenience
  /// shorthand: long_tail_replacement=false means init_policy=kOne.
  bool long_tail_replacement = true;

  /// Admission initializer; see InitPolicy. Only consulted when
  /// long_tail_replacement is true (false forces kOne).
  InitPolicy init_policy = InitPolicy::kLongTail;

  /// The initializer actually in effect.
  InitPolicy EffectiveInitPolicy() const {
    return long_tail_replacement ? init_policy : InitPolicy::kOne;
  }

  /// Optimization I (§III-C). On by default as in §V-E.
  bool deviation_eliminator = true;

  PeriodMode period_mode = PeriodMode::kCountBased;

  /// n, arrivals per period (count-based mode).
  uint64_t items_per_period = 10'000;

  /// t, seconds per period (time-based mode).
  double period_seconds = 1.0;

  uint64_t seed = 0;

  /// Model memory per cell: 8B ID + 4B frequency + 4B persistency counter
  /// incl. the two flag bits (§III-A, Fig. 1).
  static constexpr size_t BytesPerCell() { return 16; }

  /// Checks the configuration for values no table can run on: negative
  /// α/β (or both zero), zero cells_per_bucket, a non-positive period
  /// length in the active pacing mode. Returns std::nullopt when valid,
  /// else a description of the first problem. The Ltc constructor calls
  /// this and throws std::invalid_argument on failure; Deserialize calls
  /// it to reject corrupt checkpoints.
  std::optional<std::string> Validate() const;
};

class Ltc final : public SignificanceEstimator {
 public:
  /// One reported item (the shared report type of the estimator family).
  using Report = SignificanceReport;

  /// Throws std::invalid_argument when `config.Validate()` rejects.
  explicit Ltc(const LtcConfig& config);

  // Insert(item, time) is inherited from SignificanceEstimator: it wraps
  // the single arrival as a one-record batch, so InsertBatch below is the
  // only ingestion path (and the SIMD bucket probe has exactly one call
  // site). In count-based mode `time` is ignored; in time-based mode the
  // clock never runs backwards — a timestamp earlier than the latest one
  // seen is clamped to it (the arrival is processed as if it happened
  // "now"), so mildly out-of-order feeds degrade gracefully instead of
  // corrupting the CLOCK. See docs/TESTING.md "Time-based edge cases".

  /// The single ingestion path: identical table state to one Insert per
  /// record. The pacing-mode branch and configuration loads are hoisted
  /// out of the loop, the count-based CLOCK step runs as an incremental
  /// add (no per-record multiply/divide), and each record's routed
  /// bucket is software-prefetched a few records ahead of its probe.
  /// The parallel IngestPipeline drains its per-shard rings through this.
  void InsertBatch(std::span<const Record> records) override;

  /// Credits all still-pending period flags. Call once after the stream
  /// ends and before querying; mid-stream estimates lag by up to one
  /// period of persistency otherwise. Idempotent only if no Insert
  /// intervenes.
  void Finalize() override;

  /// Estimated significance α·f̂ + β·p̂; 0 when the item is not tracked
  /// (the paper's "did not appear" answer).
  double QuerySignificance(ItemId item) const override;

  /// Estimated frequency / persistency; 0 when untracked.
  uint64_t EstimateFrequency(ItemId item) const override;
  uint64_t EstimatePersistency(ItemId item) const override;

  bool IsTracked(ItemId item) const;

  /// The k tracked items of largest significance, descending (ties broken
  /// by item ID for determinism).
  std::vector<Report> TopK(size_t k) const override;

  /// Mid-stream top-k WITHOUT mutating the table: reports each cell as if
  /// its pending period flags had already been credited (what Finalize
  /// would produce), so live dashboards don't lag by up to one period.
  std::vector<Report> SnapshotTopK(size_t k) const;

  /// Threshold (φ-heavy-hitter style) query: every tracked item whose
  /// significance is at least `threshold`, descending. The one-sided
  /// guarantee carries over: with LTR off, every returned item truly has
  /// s >= threshold (no false positives); items whose estimate decayed
  /// below the threshold can be missed.
  std::vector<Report> ItemsAbove(double threshold) const;

  uint32_t num_buckets() const { return num_buckets_; }
  uint32_t cells_per_bucket() const { return config_.cells_per_bucket; }
  size_t num_cells() const { return table_.num_cells(); }
  const LtcConfig& config() const { return config_; }
  uint64_t current_period() const { return current_period_; }

  /// Model memory actually allocated (w·d cells). The SoA lanes sum to
  /// BytesPerCell() per cell, so this is unchanged from the AoS layout.
  size_t MemoryBytes() const override {
    return table_.num_cells() * LtcConfig::BytesPerCell();
  }

  /// Structural invariants, used by tests: empty cells fully zeroed, no
  /// flag bits outside the active scheme, counter ≤ elapsed periods + 1.
  bool CheckInvariants() const;

  /// Checkpointing: writes config, cells and CLOCK state (versioned).
  /// A deserialized table continues the stream exactly where the original
  /// left off.
  void Serialize(BinaryWriter& writer) const;
  static std::optional<Ltc> Deserialize(BinaryReader& reader);

  /// Read-snapshot seam (docs/SERVING.md): a bit-identical deep copy
  /// with the transient audit/metrics attachments detached, safe to
  /// hand to concurrent readers (via ReadSnapshotHub) while this table
  /// keeps ingesting. Call only while the table is quiescent.
  Ltc CloneAtBarrier() const {
    Ltc copy(*this);
    copy.DetachTransientsForClone();
    return copy;
  }

  /// Drops the non-owning attachments a clone must not share with the
  /// live table's feeder thread (audit oracle, metrics sink).
  void DetachTransientsForClone() {
#ifdef LTC_AUDIT
    audit_oracle_ = nullptr;
#endif
#ifdef LTC_METRICS
    metrics_ = nullptr;
#endif
  }

  /// Operational introspection for dashboards and capacity planning.
  struct TableStats {
    size_t occupied_cells = 0;
    size_t empty_cells = 0;
    double occupancy = 0.0;      // occupied / total
    size_t full_buckets = 0;     // buckets with no empty cell
    double avg_significance = 0.0;  // over occupied cells
    uint64_t max_frequency = 0;
    uint64_t max_persistency = 0;
  };
  TableStats ComputeStats() const;

  /// True iff `other` has identical geometry, hashing and significance
  /// weights, so MergeFrom is meaningful.
  bool CanMergeWith(const Ltc& other) const;

  /// Folds another table (e.g. from a peer aggregating a disjoint
  /// substream slice, §I Use Case 3) into this one: bucket-wise, matching
  /// IDs add their fields, and each bucket keeps its d most significant
  /// occupants. Exact when the substreams were item-partitioned (no item
  /// in both); the usual lossy-table approximation otherwise. Call
  /// Finalize() on both sides first so no period flags are pending.
  /// Returns false — leaving this table untouched — when
  /// !CanMergeWith(other): a shape mismatch is a caller error the
  /// aggregation tier surfaces as a typed response, never UB.
  [[nodiscard]] bool MergeFrom(const Ltc& other);

#ifdef LTC_AUDIT
  /// Attaches a ground-truth oracle for the after-insert audit hook (see
  /// core/audit.h). The oracle must outlive the table and must observe
  /// every arrival before the matching Insert. nullptr detaches; the
  /// structural checks (pacing, flags, bucket integrity) still run.
  /// Not serialized; a deserialized table starts detached.
  void AttachAuditOracle(const AuditOracle* oracle) {
    audit_oracle_ = oracle;
  }
#endif

#ifdef LTC_METRICS
  /// Attaches a hot-path metrics sink (core/ltc_metrics_sink.h,
  /// published via telemetry/ltc_collectors.h). The sink must outlive
  /// the table; nullptr detaches. The table writes it inline from
  /// whichever thread inserts, so read it only while the table is
  /// quiescent. Not serialized; a deserialized table starts detached.
  void AttachMetricsSink(LtcMetricsSink* sink) { metrics_ = sink; }
#endif

 private:
  // Cell flag bits (stored in the layout's flags lane): bit0 is the
  // even-period flag, bit1 the odd-period flag. The basic (single-flag)
  // scheme uses bit0 only.

  double SignificanceOf(ConstCellRef cell) const {
    return config_.alpha * cell.freq() + config_.beta * cell.counter();
  }
  bool IsEmpty(ConstCellRef cell) const {
    return cell.id() == 0 && SignificanceOf(cell) == 0.0;
  }

  uint8_t CurrentFlagMask() const;
  uint8_t ScanFlagMask() const;

  /// Advances the CLOCK pointer to `target_slot` within the current
  /// period, scanning every slot it passes (§III-B Persistency
  /// Incrementing; §III-C variant checks the previous-period flag).
  void ScanTo(uint64_t target_slot);

  /// Moves time forward in time-based mode: completes any finished
  /// periods (each completes the sweep over all m slots) and advances
  /// the pointer within the current one. Count-based pacing is handled
  /// by the incremental stepper inlined in InsertBatch.
  void AdvanceTimeClock(double time);

  void ScanCell(CellRef cell);

  /// The bucket update of one arrival (Cases 1–3 of §III-B), without the
  /// CLOCK advance. `bucket` is BucketOf(item), precomputed by
  /// InsertBatch so the routed bucket can be prefetched ahead of the
  /// probe (each item is hashed exactly once).
  void UpdateBucket(ItemId item, uint32_t bucket);

  /// Inserts item into cell `cell_index` of `bucket`, honouring
  /// Long-tail Replacement when enabled: fields start at the bucket's
  /// second-smallest values − 1 (§III-D), else at (1, 0).
  void PlaceItem(BucketView bucket, uint32_t cell_index, ItemId item);

  uint32_t BucketOf(ItemId item) const;

  /// Recomputes the count-based CLOCK stepper (the Bresenham state
  /// below) from items_seen_; called on construction and deserialize.
  void ResetClockStepper();

#ifdef LTC_AUDIT
  /// Runs at the end of every Insert: no-overestimation vs. the attached
  /// oracle, CLOCK pointer pacing, parity-flag consistency, bucket-local
  /// integrity. Reports through AuditFail on violation.
  void AuditAfterInsert(ItemId item);
#endif

  LtcConfig config_;
  uint32_t num_buckets_;
  TableLayout table_;  // SoA cell store, bucket-major (core/table_layout.h)

  uint64_t items_seen_ = 0;       // arrivals in the current period
  uint64_t current_period_ = 0;
  uint64_t merged_history_periods_ = 0;  // extra periods from MergeFrom
  uint64_t scan_cursor_ = 0;      // next slot the pointer will scan, in [0, m]
  double last_time_ = 0.0;        // previous arrival's timestamp (time mode)

  // Count-based CLOCK stepper: the pointer target ⌊items_seen·m/n⌋ is
  // maintained incrementally (Bresenham-style) so the per-arrival
  // multiply/divide is hoisted out of the insert path. Invariant:
  // clock_target_ == items_seen_·m/n and clock_acc_ == (items_seen_·m)%n.
  // Derived state — recomputed by ResetClockStepper, never serialized.
  uint64_t clock_step_div_ = 0;  // m / n
  uint64_t clock_step_mod_ = 0;  // m % n
  uint64_t clock_acc_ = 0;       // running remainder, in [0, n)
  uint64_t clock_target_ = 0;    // current scan target, in [0, m]

#ifdef LTC_AUDIT
  const AuditOracle* audit_oracle_ = nullptr;  // transient, not serialized
#endif
#ifdef LTC_METRICS
  LtcMetricsSink* metrics_ = nullptr;  // transient, not serialized
#endif
};

}  // namespace ltc

#endif  // LTC_CORE_LTC_H_
