// Tests for Ltc::MergeFrom and ShardedLtc — the distributed-ingestion
// layer. Key properties: hash-sharding preserves per-item estimates
// exactly, the global top-k equals the best-of-union, and merging
// item-partitioned tables is lossless for significant items.

#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/sharded_ltc.h"
#include "metrics/ground_truth.h"
#include "stream/generators.h"

namespace ltc {
namespace {

LtcConfig TimePaced(const Stream& stream, size_t memory) {
  LtcConfig config;
  config.memory_bytes = memory;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  return config;
}

// ----------------------------------------------------------------- merge

TEST(LtcMerge, CanMergeRequiresMatchingShape) {
  LtcConfig a;
  a.memory_bytes = 4 * 1024;
  LtcConfig b = a;
  EXPECT_TRUE(Ltc(a).CanMergeWith(Ltc(b)));
  b.memory_bytes = 8 * 1024;
  EXPECT_FALSE(Ltc(a).CanMergeWith(Ltc(b)));
  b = a;
  b.alpha = 2.0;
  EXPECT_FALSE(Ltc(a).CanMergeWith(Ltc(b)));
  b = a;
  b.seed = 77;
  EXPECT_FALSE(Ltc(a).CanMergeWith(Ltc(b)));
}

TEST(LtcMerge, MismatchedMergeIsRejectedWithoutMutation) {
  // A shape-mismatched MergeFrom must fail typed (return false), not
  // assert or silently corrupt — the aggregation tier relies on this to
  // answer ERR_SHAPE_MISMATCH and keep serving the previous aggregate.
  LtcConfig small;
  small.memory_bytes = 4 * 1024;
  small.items_per_period = 100;
  LtcConfig big = small;
  big.memory_bytes = 8 * 1024;

  Ltc target(small), peer(big);
  for (ItemId item = 1; item <= 500; ++item) target.Insert(item % 37 + 1);
  for (ItemId item = 1; item <= 500; ++item) peer.Insert(item % 53 + 1);
  target.Finalize();
  peer.Finalize();

  BinaryWriter before;
  target.Serialize(before);
  EXPECT_FALSE(target.MergeFrom(peer));
  BinaryWriter after;
  target.Serialize(after);
  EXPECT_EQ(before.data(), after.data());  // bit-identical: untouched

  // Mismatched weights and seeds are rejected the same way.
  LtcConfig reweighted = small;
  reweighted.alpha = 3.0;
  Ltc odd_weights(reweighted);
  odd_weights.Finalize();
  EXPECT_FALSE(target.MergeFrom(odd_weights));
  LtcConfig reseeded = small;
  reseeded.seed = 999;
  Ltc odd_seed(reseeded);
  odd_seed.Finalize();
  EXPECT_FALSE(target.MergeFrom(odd_seed));
}

TEST(LtcMerge, ItemPartitionedMergeIsExactForTrackedItems) {
  // Two peers process disjoint item sets (odd/even); after merge, every
  // item that survives in the merged table reports exactly the value its
  // owning peer recorded.
  Stream stream = MakeZipfStream(30'000, 2'000, 1.1, 30, 5);
  LtcConfig config = TimePaced(stream, 8 * 1024);

  Ltc odd(config), even(config), merged(config);
  for (const Record& r : stream.records()) {
    if ((r.item >> 1) & 1) {
      odd.Insert(r.item, r.time);
    } else {
      even.Insert(r.item, r.time);
    }
  }
  odd.Finalize();
  even.Finalize();

  ASSERT_TRUE(merged.MergeFrom(odd));  // merged starts empty: absorb both
  ASSERT_TRUE(merged.MergeFrom(even));

  for (const auto& report : merged.TopK(100)) {
    const Ltc& owner = ((report.item >> 1) & 1) ? odd : even;
    EXPECT_EQ(report.frequency, owner.EstimateFrequency(report.item));
    EXPECT_EQ(report.persistency, owner.EstimatePersistency(report.item));
  }
  EXPECT_TRUE(merged.CheckInvariants());
}

TEST(LtcMerge, DuplicateItemsAddTheirFields) {
  LtcConfig config;
  config.memory_bytes = LtcConfig::BytesPerCell() * 4;  // single bucket
  config.cells_per_bucket = 4;
  config.items_per_period = 1'000;
  Ltc a(config), b(config);
  for (int i = 0; i < 3; ++i) a.Insert(7);
  for (int i = 0; i < 5; ++i) b.Insert(7);
  a.Finalize();
  b.Finalize();
  ASSERT_TRUE(a.MergeFrom(b));
  EXPECT_EQ(a.EstimateFrequency(7), 8u);
  EXPECT_EQ(a.EstimatePersistency(7), 2u);  // 1 + 1 (same wall period,
                                            // item-partitioning violated —
                                            // documented approximation)
  // Summed counters exceed one table's period count; the invariant
  // check must account for merged history.
  EXPECT_TRUE(a.CheckInvariants());

  // And a merged table round-trips through serialization.
  BinaryWriter writer;
  a.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = Ltc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->EstimatePersistency(7), 2u);
}

TEST(LtcMerge, KeepsMostSignificantWhenOverfull) {
  LtcConfig config;
  config.memory_bytes = LtcConfig::BytesPerCell() * 2;
  config.cells_per_bucket = 2;
  config.beta = 0.0;
  config.items_per_period = 1'000;
  Ltc a(config), b(config);
  for (int i = 0; i < 10; ++i) a.Insert(1);
  for (int i = 0; i < 2; ++i) a.Insert(2);
  for (int i = 0; i < 7; ++i) b.Insert(3);
  for (int i = 0; i < 1; ++i) b.Insert(4);
  a.Finalize();
  b.Finalize();
  ASSERT_TRUE(a.MergeFrom(b));
  // Union is {1:10, 2:2, 3:7, 4:1}; a 2-cell bucket keeps {1, 3}.
  EXPECT_EQ(a.EstimateFrequency(1), 10u);
  EXPECT_EQ(a.EstimateFrequency(3), 7u);
  EXPECT_FALSE(a.IsTracked(2));
  EXPECT_FALSE(a.IsTracked(4));
}

// --------------------------------------------------------------- sharded

TEST(ShardedLtc, RoutingIsStableAndCoversShards) {
  LtcConfig config;
  config.memory_bytes = 64 * 1024;
  ShardedLtc sharded(config, 8);
  std::vector<int> hits(8, 0);
  for (ItemId item = 1; item <= 10'000; ++item) {
    uint32_t shard = sharded.ShardOf(item);
    ASSERT_LT(shard, 8u);
    ASSERT_EQ(shard, sharded.ShardOf(item));  // stable
    ++hits[shard];
  }
  for (int h : hits) {
    EXPECT_GT(h, 1'000);  // roughly balanced
    EXPECT_LT(h, 1'500);
  }
}

TEST(ShardedLtc, BudgetIsSplitAcrossShards) {
  LtcConfig config;
  config.memory_bytes = 64 * 1024;
  ShardedLtc sharded(config, 4);
  EXPECT_LE(sharded.MemoryBytes(), config.memory_bytes);
  EXPECT_GE(sharded.MemoryBytes(), config.memory_bytes / 2);
  EXPECT_EQ(sharded.num_shards(), 4u);
}

TEST(ShardedLtc, MatchesTruthOnTopItems) {
  Stream stream = MakeZipfStream(60'000, 5'000, 1.2, 50, 9);
  GroundTruth truth = GroundTruth::Compute(stream);
  ShardedLtc sharded(TimePaced(stream, 32 * 1024), 4);
  for (const Record& r : stream.records()) sharded.Insert(r.item, r.time);
  sharded.Finalize();

  auto top = truth.TopKSignificant(20, 1.0, 1.0);
  std::unordered_set<ItemId> true_set;
  for (const auto& [item, sig] : top) true_set.insert(item);
  size_t hits = 0;
  for (const auto& report : sharded.TopK(20)) {
    if (true_set.count(report.item)) ++hits;
  }
  EXPECT_GE(hits, 18u);

  // Point queries route to the owning shard.
  auto [head_item, head_sig] = top[0];
  EXPECT_NEAR(sharded.QuerySignificance(head_item), head_sig,
              0.05 * head_sig);
}

TEST(ShardedLtc, ParallelPerShardFeedMatchesSequential) {
  Stream stream = MakeZipfStream(40'000, 3'000, 1.0, 40, 13);
  constexpr uint32_t kShards = 4;

  ShardedLtc sequential(TimePaced(stream, 16 * 1024), kShards);
  for (const Record& r : stream.records()) {
    sequential.Insert(r.item, r.time);
  }
  sequential.Finalize();

  // Parallel: pre-partition records by shard, one thread per shard.
  ShardedLtc parallel(TimePaced(stream, 16 * 1024), kShards);
  std::vector<std::vector<Record>> per_shard(kShards);
  for (const Record& r : stream.records()) {
    per_shard[parallel.ShardOf(r.item)].push_back(r);
  }
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < kShards; ++s) {
    threads.emplace_back([&parallel, &per_shard, s] {
      for (const Record& r : per_shard[s]) {
        parallel.shard(s).Insert(r.item, r.time);
      }
    });
  }
  for (auto& t : threads) t.join();
  parallel.Finalize();

  auto a = sequential.TopK(50);
  auto b = parallel.TopK(50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_EQ(a[i].frequency, b[i].frequency);
    EXPECT_EQ(a[i].persistency, b[i].persistency);
  }
}

TEST(ShardedLtc, SerializationRoundTripsAndContinues) {
  Stream stream = MakeZipfStream(20'000, 2'000, 1.0, 20, 19);
  LtcConfig config = TimePaced(stream, 16 * 1024);
  ShardedLtc original(config, 4);
  size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    original.Insert(stream.records()[i].item, stream.records()[i].time);
  }

  BinaryWriter writer;
  original.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = ShardedLtc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored->num_shards(), 4u);

  // Continue both; they must agree exactly (routing seed preserved).
  for (size_t i = half; i < stream.size(); ++i) {
    original.Insert(stream.records()[i].item, stream.records()[i].time);
    restored->Insert(stream.records()[i].item, stream.records()[i].time);
  }
  original.Finalize();
  restored->Finalize();
  auto a = original.TopK(50);
  auto b = restored->TopK(50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].frequency, b[i].frequency);
  }
}

TEST(ShardedLtc, DeserializeRejectsGarbage) {
  BinaryReader empty("");
  EXPECT_FALSE(ShardedLtc::Deserialize(empty).has_value());
  BinaryWriter writer;
  writer.PutU32(0x53484c31);
  writer.PutU64(7);
  writer.PutU32(100'000);  // absurd shard count
  BinaryReader reader(writer.data());
  EXPECT_FALSE(ShardedLtc::Deserialize(reader).has_value());
}

TEST(ShardedLtc, SingleShardEqualsPlainLtc) {
  Stream stream = MakeZipfStream(20'000, 2'000, 1.0, 20, 17);
  LtcConfig config = TimePaced(stream, 8 * 1024);
  ShardedLtc sharded(config, 1);
  Ltc plain(config);
  for (const Record& r : stream.records()) {
    sharded.Insert(r.item, r.time);
    plain.Insert(r.item, r.time);
  }
  sharded.Finalize();
  plain.Finalize();
  auto a = sharded.TopK(50);
  auto b = plain.TopK(50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].frequency, b[i].frequency);
  }
}

}  // namespace
}  // namespace ltc
