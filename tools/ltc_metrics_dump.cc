// ltc_metrics_dump — pretty-prints a Prometheus text exposition (the
// file ltc_cli --metrics-out writes) as a compact human-readable
// summary: one block per family, histograms folded into
// count/sum/avg/p50/p90/p99 instead of their cumulative bucket series.
// Percentiles interpolate linearly inside the log2 buckets, so they
// carry at most one-bucket-width error; a value landing in the +Inf
// bucket reports the last finite bound with a ">" prefix.
//
//   usage: ltc_metrics_dump [FILE | -]      (default: stdin)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Sample {
  std::string labels;  // "{shard=\"0\"}" or ""
  std::string value;
};

struct Family {
  std::string type;
  std::string help;
  std::vector<Sample> samples;  // counter/gauge samples
  // Histogram pieces keyed by the le-stripped label set.
  std::map<std::string, std::string> hist_count;
  std::map<std::string, std::string> hist_sum;
  // le bound -> cumulative count, per series (le=+Inf stored as INFINITY;
  // the map keeps the bounds sorted, which the quantile walk relies on).
  std::map<std::string, std::map<double, double>> hist_buckets;
};

/// Splits "name{labels} value" / "name value"; returns false on junk.
bool SplitSample(const std::string& line, std::string* name,
                 std::string* labels, std::string* value) {
  const size_t brace = line.find('{');
  const size_t space = line.find(' ');
  if (space == std::string::npos) return false;
  if (brace != std::string::npos && brace < space) {
    const size_t close = line.find('}', brace);
    if (close == std::string::npos || close + 1 >= line.size()) return false;
    *name = line.substr(0, brace);
    *labels = line.substr(brace, close - brace + 1);
    *value = line.substr(close + 2);
  } else {
    *name = line.substr(0, space);
    labels->clear();
    *value = line.substr(space + 1);
  }
  return !name->empty() && !value->empty();
}

/// Removes one `le="..."` pair (and its separating comma) from a label
/// string, so every piece of one histogram series shares a key.
std::string StripLe(const std::string& labels) {
  const size_t le = labels.find("le=\"");
  if (le == std::string::npos) return labels;
  size_t end = labels.find('"', le + 4);
  if (end == std::string::npos) return labels;
  ++end;  // past the closing quote
  size_t begin = le;
  if (begin > 0 && labels[begin - 1] == ',') {
    --begin;  // {a="1",le="2"} -> {a="1"}
  } else if (end < labels.size() && labels[end] == ',') {
    ++end;  // {le="2",a="1"} -> {a="1"}
  }
  std::string out = labels.substr(0, begin) + labels.substr(end);
  return out == "{}" ? "" : out;
}

/// Pulls the le="..." bound out of a bucket's label string.
/// Returns false when no le pair is present (malformed bucket line).
bool ParseLe(const std::string& labels, double* le) {
  const size_t at = labels.find("le=\"");
  if (at == std::string::npos) return false;
  const size_t end = labels.find('"', at + 4);
  if (end == std::string::npos) return false;
  const std::string text = labels.substr(at + 4, end - (at + 4));
  if (text == "+Inf") {
    *le = INFINITY;
    return true;
  }
  try {
    *le = std::stod(text);
  } catch (...) {
    return false;
  }
  return true;
}

/// The q-quantile (q in [0,1]) of one cumulative bucket series, linearly
/// interpolated inside the winning bucket. Returns NAN for an empty
/// histogram and -bound when the quantile lands in the +Inf bucket (the
/// caller renders that as ">bound").
double Quantile(const std::map<double, double>& buckets, double q) {
  if (buckets.empty()) return NAN;
  const double total = buckets.rbegin()->second;
  if (total <= 0) return NAN;
  const double target = q * total;
  double prev_le = 0.0;
  double prev_cum = 0.0;
  for (const auto& [le, cum] : buckets) {
    if (cum >= target && cum > prev_cum) {
      if (std::isinf(le)) {
        return prev_le > 0 ? -prev_le : 0.0;  // beyond the finite buckets
      }
      const double fraction = (target - prev_cum) / (cum - prev_cum);
      return prev_le + (le - prev_le) * fraction;
    }
    prev_le = le;
    prev_cum = cum;
  }
  return std::isinf(prev_le) ? -0.0 : prev_le;
}

/// Renders a Quantile() result: "p90=12.0", "p90>4096" or "p90=?".
std::string FormatQuantile(const char* tag, double value) {
  char buf[48];
  if (std::isnan(value)) {
    std::snprintf(buf, sizeof(buf), "%s=?", tag);
  } else if (std::signbit(value)) {
    std::snprintf(buf, sizeof(buf), "%s>%g", tag, -value);
  } else {
    std::snprintf(buf, sizeof(buf), "%s=%g", tag, value);
  }
  return buf;
}

/// Ends with `suffix`? Then strip it into `stem`.
bool ChopSuffix(const std::string& name, const char* suffix,
                std::string* stem) {
  const std::string s = suffix;
  if (name.size() <= s.size() ||
      name.compare(name.size() - s.size(), s.size(), s) != 0) {
    return false;
  }
  *stem = name.substr(0, name.size() - s.size());
  return true;
}

int DumpStream(std::istream& in) {
  // Families in first-seen order.
  std::vector<std::string> order;
  std::map<std::string, Family> families;
  auto family_of = [&](const std::string& name) -> Family& {
    if (families.find(name) == families.end()) order.push_back(name);
    return families[name];
  };

  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, name;
      meta >> hash >> kind >> name;
      std::string rest;
      std::getline(meta, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      if (kind == "HELP") {
        family_of(name).help = rest;
      } else if (kind == "TYPE") {
        family_of(name).type = rest;
      }
      continue;
    }
    std::string name, labels, value;
    if (!SplitSample(line, &name, &labels, &value)) {
      std::fprintf(stderr, "ltc_metrics_dump: line %zu unparseable: %s\n",
                   lineno, line.c_str());
      return 1;
    }
    std::string stem;
    if (ChopSuffix(name, "_bucket", &stem) &&
        families.find(stem) != families.end()) {
      Family& family = families[stem];
      const std::string key = StripLe(labels);
      family.hist_count[key];  // ensure the series exists
      double le = 0.0;
      if (!ParseLe(labels, &le)) {
        std::fprintf(stderr,
                     "ltc_metrics_dump: line %zu: bucket without le: %s\n",
                     lineno, line.c_str());
        return 1;
      }
      try {
        family.hist_buckets[key][le] = std::stod(value);
      } catch (...) {
        std::fprintf(stderr, "ltc_metrics_dump: line %zu: bad count: %s\n",
                     lineno, line.c_str());
        return 1;
      }
    } else if (ChopSuffix(name, "_sum", &stem) &&
               families.find(stem) != families.end()) {
      families[stem].hist_sum[labels] = value;
    } else if (ChopSuffix(name, "_count", &stem) &&
               families.find(stem) != families.end()) {
      families[stem].hist_count[labels] = value;
    } else {
      family_of(name).samples.push_back({labels, value});
    }
  }

  for (const std::string& name : order) {
    const Family& family = families[name];
    std::printf("%s (%s)%s%s\n", name.c_str(),
                family.type.empty() ? "untyped" : family.type.c_str(),
                family.help.empty() ? "" : " — ",
                family.help.c_str());
    if (family.type == "histogram") {
      for (const auto& [labels, count] : family.hist_count) {
        const auto sum = family.hist_sum.find(labels);
        double avg = 0.0;
        const double n = count.empty() ? 0.0 : std::stod(count);
        if (n > 0 && sum != family.hist_sum.end()) {
          avg = std::stod(sum->second) / n;
        }
        const auto buckets = family.hist_buckets.find(labels);
        static const std::map<double, double> kEmpty;
        const auto& series =
            buckets != family.hist_buckets.end() ? buckets->second : kEmpty;
        std::printf("  %-28s count=%s sum=%s avg=%.1f %s %s %s\n",
                    labels.empty() ? "(no labels)" : labels.c_str(),
                    count.c_str(),
                    sum != family.hist_sum.end() ? sum->second.c_str() : "?",
                    avg, FormatQuantile("p50", Quantile(series, 0.50)).c_str(),
                    FormatQuantile("p90", Quantile(series, 0.90)).c_str(),
                    FormatQuantile("p99", Quantile(series, 0.99)).c_str());
      }
    } else {
      for (const Sample& sample : family.samples) {
        std::printf("  %-28s %s\n",
                    sample.labels.empty() ? "(no labels)"
                                          : sample.labels.c_str(),
                    sample.value.c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: ltc_metrics_dump [FILE | -]\n");
    return 2;
  }
  if (argc == 2 && std::string(argv[1]) != "-") {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "ltc_metrics_dump: cannot open '%s'\n", argv[1]);
      return 1;
    }
    return DumpStream(file);
  }
  return DumpStream(std::cin);
}
