// ltc_cli — run LTC over a text trace and print the top-k significant
// items. See CliUsage() / --help for the interface.
//
// With --threads N the trace is ingested by an IngestPipeline feeding an
// N-way ShardedLtc (same total memory budget); reporting is shared with
// the single-table path through the SignificanceEstimator interface.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli_options.h"
#include "common/format.h"
#include "common/serial.h"
#include "core/ltc.h"
#include "core/sharded_ltc.h"
#include "core/significance_estimator.h"
#include "ingest/ingest_pipeline.h"
#include "stream/trace_io.h"

namespace ltc {
namespace {

int Run(const CliOptions& options) {
  if (options.threads > 1 &&
      (!options.save_path.empty() || !options.load_path.empty())) {
    std::fprintf(stderr,
                 "ltc_cli: --threads is incompatible with --save/--load "
                 "(checkpoints hold a single table)\n");
    return 1;
  }

  // 1. Load the trace (file or stdin).
  std::string error;
  std::optional<TraceReadResult> trace;
  if (options.trace_path == "-") {
    std::string text((std::istreambuf_iterator<char>(std::cin)),
                     std::istreambuf_iterator<char>());
    trace = ReadTraceFromString(text, options.periods, options.duration,
                                &error);
  } else {
    trace = ReadTrace(options.trace_path, options.periods, options.duration,
                      &error);
  }
  if (!trace) {
    std::fprintf(stderr, "ltc_cli: %s\n", error.c_str());
    return 1;
  }
  const Stream& stream = trace->stream;

  // 2. Build or restore the sketch.
  LtcConfig config = options.ToLtcConfig();
  config.period_seconds = stream.duration() / stream.num_periods();
  std::optional<Ltc> table;
  std::optional<ShardedLtc> sharded;
  SignificanceEstimator* estimator = nullptr;
  if (options.threads > 1) {
    sharded.emplace(config, options.threads);
    estimator = &*sharded;
  } else if (!options.load_path.empty()) {
    auto bytes = ReadFileToString(options.load_path);
    if (!bytes) {
      std::fprintf(stderr, "ltc_cli: cannot read checkpoint '%s'\n",
                   options.load_path.c_str());
      return 1;
    }
    BinaryReader reader(*bytes);
    table = Ltc::Deserialize(reader);
    if (!table) {
      std::fprintf(stderr, "ltc_cli: corrupt checkpoint '%s'\n",
                   options.load_path.c_str());
      return 1;
    }
    estimator = &*table;
  } else {
    table.emplace(config);
    estimator = &*table;
  }

  // 3. Feed the stream: parallel pipeline when sharded, the batch fast
  // path otherwise.
  if (sharded) {
    IngestPipeline pipeline(*sharded);
    pipeline.PushBatch(stream.records());
    pipeline.Stop();
  } else {
    estimator->InsertBatch(stream.records());
  }

  // 4. Checkpoint before Finalize so a later --load continues cleanly.
  if (!options.save_path.empty()) {
    BinaryWriter writer;
    table->Serialize(writer);
    if (!WriteFile(options.save_path, writer.data())) {
      std::fprintf(stderr, "ltc_cli: cannot write checkpoint '%s'\n",
                   options.save_path.c_str());
      return 1;
    }
  }
  estimator->Finalize();

  // 5. Report.
  auto name_of = [&](ItemId item) -> std::string {
    if (trace->used_interner) return trace->interner.Name(item);
    return std::to_string(item);
  };
  TextTable report({"item", "frequency", "persistency", "significance"});
  for (const auto& r : estimator->TopK(options.k)) {
    report.AddRow({name_of(r.item), std::to_string(r.frequency),
                   std::to_string(r.persistency),
                   FormatMetric(r.significance)});
  }
  if (options.csv) {
    report.PrintCsv(std::cout);
  } else {
    std::printf("# %zu records, %u periods, %s memory, s = %g*f + %g*p",
                stream.size(), stream.num_periods(),
                FormatMemory(estimator->MemoryBytes()).c_str(), config.alpha,
                config.beta);
    if (options.threads > 1) {
      std::printf(", %u shards", options.threads);
    }
    std::printf("\n");
    report.Print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace ltc

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  auto options = ltc::ParseCliOptions(args, &error);
  if (!options) {
    std::fprintf(stderr, "ltc_cli: %s\n%s", error.c_str(),
                 ltc::CliUsage().c_str());
    return 2;
  }
  if (options->show_help) {
    std::fputs(ltc::CliUsage().c_str(), stdout);
    return 0;
  }
  return ltc::Run(*options);
}
