// Ground-truth interface and failure reporting for the LTC_AUDIT
// invariant hooks.
//
// When the CMake option LTC_AUDIT is ON, Ltc / ShardedLtc / WindowedLtc
// compile a hook that runs after EVERY insert and cross-checks the
// paper's guarantees against an attached oracle:
//
//  * no overestimation (Theorem IV.1) — estimated frequency never
//    exceeds the true frequency, and (with the Deviation Eliminator on)
//    estimated persistency, pending flags included, never exceeds the
//    true persistency. Checked only for InitPolicy::kOne, the
//    configuration the theorem covers;
//  * CLOCK pointer pacing (§III-B) — the pointer sits exactly where the
//    fractional-step formula says: ⌊i·m/n⌋ within a count-based period,
//    (x − p·t)/t·m within a time-based one, i.e. exactly m slots are
//    swept per period;
//  * parity-flag consistency (§III-C) — no flag bits outside the active
//    scheme, and the freshly inserted item carries its period's flag;
//  * bucket-local integrity — every occupant hashes to the bucket it
//    sits in and no bucket holds the same ID twice.
//
// The oracle side of the contract is deliberately tiny so the core
// library does not depend on src/metrics; ExactSignificanceOracle
// (metrics/significance_oracle.h) is the canonical implementation, and
// tests may supply lying oracles to prove the hooks fire.
//
// With the option OFF (the default), none of this is compiled and the
// hot path is untouched.

#ifndef LTC_CORE_AUDIT_H_
#define LTC_CORE_AUDIT_H_

#include <cstdint>
#include <string>

#include "stream/stream.h"

namespace ltc {

/// Ground truth consulted by the LTC_AUDIT hooks. Implementations must
/// reflect every arrival BEFORE the corresponding Insert runs (observe,
/// then insert), or the no-overestimation check will misfire on the
/// arrival that is being counted.
class AuditOracle {
 public:
  virtual ~AuditOracle() = default;

  /// True number of arrivals of `item` so far.
  virtual uint64_t TrueFrequency(ItemId item) const = 0;

  /// True number of distinct periods containing `item` so far.
  virtual uint64_t TruePersistency(ItemId item) const = 0;
};

/// What the hooks do on a violated invariant. Receives a full diagnostic
/// (structure, invariant, item, estimate vs. truth, clock state). The
/// default handler prints to stderr and aborts; tests install a throwing
/// handler to assert that a deliberately broken build is caught.
using AuditFailureHandler = void (*)(const std::string& message);

/// Installs `handler` and returns the previous one. Passing nullptr
/// restores the default print-and-abort handler.
AuditFailureHandler SetAuditFailureHandler(AuditFailureHandler handler);

/// Invoked by the hooks; formats the diagnostic and calls the installed
/// handler. Declared unconditionally so tooling can reuse the reporting
/// path, but only LTC_AUDIT builds generate callers in the core.
void AuditFail(const char* structure, const char* invariant,
               const std::string& detail);

}  // namespace ltc

#endif  // LTC_CORE_AUDIT_H_
