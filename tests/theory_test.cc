// Tests for the §IV bound formulas — both their internal mathematical
// properties and the paper's Fig. 7 claim that they bound the measured
// values.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/ltc.h"
#include "core/theory.h"
#include "metrics/ground_truth.h"
#include "stream/generators.h"

namespace ltc {
namespace {

TEST(Theory, ZipfModelFrequenciesMatchEq3) {
  ZipfStreamModel model{10'000, 100, 1.0};
  auto f = model.Frequencies();
  ASSERT_EQ(f.size(), 100u);
  // Descending, and f_1/f_2 = 2 for γ=1.
  for (size_t i = 1; i < f.size(); ++i) ASSERT_GE(f[i - 1], f[i]);
  EXPECT_NEAR(f[0] / f[1], 2.0, 1e-9);
  // Frequencies sum to N.
  double total = 0;
  for (double v : f) total += v;
  EXPECT_NEAR(total, 10'000.0, 1e-6);
}

TEST(Theory, CorrectRateBoundIsAProbability) {
  ZipfStreamModel model{100'000, 5'000, 1.0};
  auto f = model.Frequencies();
  for (uint64_t rank : {1u, 10u, 100u, 1'000u}) {
    double p = CorrectRateBound(f, rank, {256, 8, 1.0, 1.0});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Theory, CorrectRateImprovesWithMoreBuckets) {
  ZipfStreamModel model{100'000, 5'000, 1.0};
  auto f = model.Frequencies();
  double small = TopKCorrectRateBound(f, 100, {64, 8, 1.0, 1.0});
  double large = TopKCorrectRateBound(f, 100, {1'024, 8, 1.0, 1.0});
  EXPECT_GT(large, small);
}

TEST(Theory, CorrectRateHigherForHeavierItems) {
  ZipfStreamModel model{100'000, 5'000, 1.0};
  auto f = model.Frequencies();
  LtcShape shape{256, 8, 1.0, 1.0};
  EXPECT_GE(CorrectRateBound(f, 1, shape), CorrectRateBound(f, 500, shape));
}

TEST(Theory, ProbabilitySmallestProperties) {
  LtcShape shape{100, 8, 1.0, 1.0};
  // Fewer higher-ranked items than d-1: cannot be crowded out.
  EXPECT_EQ(ProbabilitySmallest(1, shape), 0.0);
  EXPECT_EQ(ProbabilitySmallest(7, shape), 0.0);
  // From rank d upward it is positive and eventually decays: for very
  // large ranks, having EXACTLY d-1 of them in the bucket becomes unlikely
  // (the bucket would hold many more).
  double at_d = ProbabilitySmallest(8, shape);
  EXPECT_GT(at_d, 0.0);
  double mid = ProbabilitySmallest(700, shape);  // near w·(d−1): the mode
  double far = ProbabilitySmallest(100'000, shape);
  EXPECT_GT(mid, at_d);
  EXPECT_LT(far, mid);
  for (uint64_t rank : {8u, 100u, 10'000u}) {
    double p = ProbabilitySmallest(rank, shape);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Theory, ExpectedDecrementersIsTailMassOverW) {
  std::vector<double> f = {100, 50, 25, 10, 5};
  LtcShape shape{10, 4, 1.0, 1.0};
  EXPECT_NEAR(ExpectedDecrementers(f, 1, shape), (50 + 25 + 10 + 5) / 10.0,
              1e-12);
  EXPECT_NEAR(ExpectedDecrementers(f, 5, shape), 0.0, 1e-12);
}

TEST(Theory, ErrorBoundShrinksWithEpsilonAndMemory) {
  ZipfStreamModel model{100'000, 5'000, 1.0};
  auto f = model.Frequencies();
  double loose = TopKErrorProbabilityBound(f, 100, {64, 8, 1.0, 1.0},
                                           1.0 / (1 << 18), 100'000);
  double tight_mem = TopKErrorProbabilityBound(f, 100, {1'024, 8, 1.0, 1.0},
                                               1.0 / (1 << 18), 100'000);
  double tight_eps = TopKErrorProbabilityBound(f, 100, {64, 8, 1.0, 1.0},
                                               1.0 / (1 << 10), 100'000);
  EXPECT_LE(tight_mem, loose);
  EXPECT_LE(tight_eps, loose);
}

TEST(Theory, SingleCellBucketsDegenerate) {
  // d=1: Lemma IV.1's "never the smallest" needs ZERO useful items, so
  // the bound collapses to dp_{M,0} — tiny but valid.
  ZipfStreamModel model{10'000, 500, 1.0};
  auto f = model.Frequencies();
  double p = CorrectRateBound(f, 1, {32, 1, 1.0, 1.0});
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // And strictly below the d=8 bound at the same cell count is NOT
  // required (w differs), but at the same bucket count more cells can
  // only help:
  EXPECT_LE(p, CorrectRateBound(f, 1, {32, 8, 1.0, 1.0}) + 1e-12);
}

TEST(Theory, ErrorBoundScalesWithAlphaPlusBeta) {
  ZipfStreamModel model{100'000, 5'000, 1.0};
  auto f = model.Frequencies();
  double eps = 1.0 / (1 << 14);
  double narrow = ErrorProbabilityBound(f, 50, {128, 8, 1.0, 0.0}, eps,
                                        100'000);
  double wide = ErrorProbabilityBound(f, 50, {128, 8, 1.0, 1.0}, eps,
                                      100'000);
  // Each decrement costs (α+β); doubling the weight doubles the bound.
  EXPECT_NEAR(wide, 2.0 * narrow, 1e-12);
}

TEST(Theory, TopKBoundIsMeanOfPerRankBounds) {
  ZipfStreamModel model{10'000, 200, 1.0};
  auto f = model.Frequencies();
  LtcShape shape{64, 8, 1.0, 1.0};
  double sum = 0;
  for (uint64_t rank = 1; rank <= 10; ++rank) {
    sum += CorrectRateBound(f, rank, shape);
  }
  EXPECT_NEAR(TopKCorrectRateBound(f, 10, shape), sum / 10, 1e-12);
  // k beyond the universe truncates.
  EXPECT_GT(TopKCorrectRateBound(f, 10'000, shape), 0.0);
}

// The Fig. 7(a) relationship, in miniature: the theoretical correct-rate
// bound must lie BELOW the measured correct rate of the basic LTC (no
// LTR — the theorem is about the unoptimized initializer).
TEST(Theory, CorrectRateBoundIsBelowMeasured) {
  constexpr uint64_t kN = 200'000;
  constexpr uint64_t kM = 20'000;
  constexpr double kGamma = 1.0;
  constexpr size_t kK = 200;
  Stream stream = MakeZipfStream(kN, kM, kGamma, 20, 77);
  GroundTruth truth = GroundTruth::Compute(stream);

  LtcConfig config;
  config.memory_bytes = 48 * 1024;
  config.long_tail_replacement = false;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  Ltc table(config);
  for (const Record& r : stream.records()) table.Insert(r.item, r.time);
  table.Finalize();

  // Measured correct rate over the true top-k: estimate equals truth.
  auto top = truth.TopKSignificant(kK, config.alpha, config.beta);
  size_t correct = 0;
  for (const auto& [item, sig] : top) {
    if (std::fabs(table.QuerySignificance(item) - sig) < 1e-9) ++correct;
  }
  double measured = static_cast<double>(correct) / kK;

  ZipfStreamModel model{kN, kM, kGamma};
  double bound = TopKCorrectRateBound(model.Frequencies(), kK,
                                      {table.num_buckets(),
                                       config.cells_per_bucket, config.alpha,
                                       config.beta});
  EXPECT_LE(bound, measured + 0.05);  // small slack for sampling noise
  EXPECT_GT(bound, 0.0);              // and it is not vacuously zero
}

}  // namespace
}  // namespace ltc
