// Exponential backoff with deterministic jitter — the retry policy of
// the self-healing layer (docs/DURABILITY.md "Retries and backoff").
//
// A BackoffPolicy is pure data: how many attempts, the initial delay,
// the growth factor, the cap, and a jitter fraction whose randomness is
// derived from an explicit seed (common/rng.h) — so the *entire* delay
// schedule is a deterministic function of the policy. Combined with an
// injectable Clock (common/clock.h) that makes retry behaviour exactly
// testable: tests/backoff_test.cc asserts schedules value-by-value
// against a FakeClock, no wall time involved.
//
// Jitter exists to decorrelate retries across instances hammering a
// shared resource (the classic thundering-herd fix); determinism-from-
// seed keeps it reproducible anyway. The default policy has
// max_attempts = 1, i.e. NO retries — call sites opt in explicitly.

#ifndef LTC_COMMON_BACKOFF_H_
#define LTC_COMMON_BACKOFF_H_

#include <cstdint>

#include "common/clock.h"
#include "common/rng.h"

namespace ltc {

struct BackoffPolicy {
  /// Total tries including the first one; 1 = no retry (the default —
  /// retrying is an opt-in behaviour change).
  uint32_t max_attempts = 1;

  /// Delay before the first retry, in microseconds.
  uint64_t initial_delay_usec = 1'000;

  /// Growth factor per retry (>= 1.0); 2.0 doubles each time.
  double multiplier = 2.0;

  /// Upper bound on any single delay.
  uint64_t max_delay_usec = 250'000;

  /// Symmetric jitter fraction in [0, 1): each delay is scaled by a
  /// seeded-uniform factor in [1 - jitter, 1 + jitter]. 0 = none.
  double jitter = 0.0;

  /// Seed for the jitter PRNG; the same policy always produces the
  /// same schedule.
  uint64_t seed = 0;
};

/// The delay sequence a policy defines. NextDelayUsec() returns the
/// delay to sleep before the next retry and advances the schedule.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const BackoffPolicy& policy);

  uint64_t NextDelayUsec();

  /// Rewinds to the first delay (jitter PRNG included).
  void Reset();

 private:
  BackoffPolicy policy_;
  double base_usec_ = 0.0;
  Rng rng_;
};

/// Runs `attempt` (a callable returning bool) up to policy.max_attempts
/// times, sleeping the backoff schedule on `clock` between failures.
/// Returns true on the first success, false when every attempt failed.
/// `retries`, when given, is incremented once per re-attempt (so a
/// first-try success adds 0).
template <typename AttemptFn>
bool RetryWithBackoff(const BackoffPolicy& policy, Clock& clock,
                      const AttemptFn& attempt, uint64_t* retries = nullptr) {
  const uint32_t max_attempts = policy.max_attempts < 1 ? 1
                                                        : policy.max_attempts;
  BackoffSchedule schedule(policy);
  for (uint32_t tries = 1;; ++tries) {
    if (attempt()) return true;
    if (tries >= max_attempts) return false;
    if (retries != nullptr) ++*retries;
    clock.SleepMicros(schedule.NextDelayUsec());
  }
}

}  // namespace ltc

#endif  // LTC_COMMON_BACKOFF_H_
