// Time-based PeriodMode edge cases: zero-elapsed arrivals, arrivals
// landing exactly on a period boundary, and non-monotonic timestamps.
//
// The chosen (and here pinned) behaviors:
//  * Zero elapsed time never advances the CLOCK — arbitrarily many
//    arrivals at one instant are one period.
//  * An arrival at exactly k·t (period length t) belongs to period k:
//    the clock advances BEFORE the bucket update in time-based mode, so
//    the boundary record is flagged under the new period.
//  * A timestamp earlier than the latest one seen is clamped to it (the
//    clock never runs backwards); the arrival still counts toward
//    frequency, and toward persistency of the CURRENT period only.
// See docs/TESTING.md "Time-based edge cases".

#include <vector>

#include <gtest/gtest.h>

#include "core/ltc.h"
#include "core/windowed_ltc.h"
#include "metrics/significance_oracle.h"

namespace ltc {
namespace {

LtcConfig TimeConfig() {
  LtcConfig config;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = 1.0;
  // Theorem configuration: a single uncontended item is tracked exactly.
  config.long_tail_replacement = false;
  return config;
}

// Reference table: one item inserted at the given instants; expected
// exact frequency and persistency after Finalize. The same rows are fed
// to the oracle to pin that it mirrors every edge rule bit-for-bit.
struct EdgeCase {
  const char* name;
  std::vector<double> times;
  uint64_t frequency;
  uint64_t persistency;
};

const EdgeCase kEdgeCases[] = {
    {"zero_elapsed_burst",
     {0.0, 0.0, 0.0, 0.0, 0.0},
     5, 1},
    {"same_instant_mid_period",
     {0.7, 0.7, 0.7},
     3, 1},
    {"boundary_belongs_to_new_period",
     {0.2, 0.9, 1.0},  // 1.0 / t = period 1 exactly
     3, 2},
    {"every_arrival_on_a_boundary",
     {0.0, 1.0, 2.0, 3.0},
     4, 4},
    {"boundary_then_zero_elapsed",
     {1.0, 1.0, 1.0},
     3, 1},
    {"skip_periods_entirely",
     {0.1, 5.1},  // periods 0 and 5; 1..4 are empty
     2, 2},
    {"regression_clamps_to_latest",
     {2.5, 0.3},  // 0.3 processed as 2.5 — same period, no time travel
     2, 1},
    {"regression_within_period",
     {1.8, 1.2, 0.5},  // both regressors clamp to 1.8
     3, 1},
    {"regression_then_progress",
     {2.5, 0.3, 3.1},  // clamp, then genuinely reach period 3
     3, 2},
    {"regression_across_boundary",
     {0.9, 1.1, 0.2},  // 0.2 clamps to 1.1: credited to period 1, not 0
     3, 2},
};

class PeriodEdgeTest : public ::testing::TestWithParam<EdgeCase> {};

TEST_P(PeriodEdgeTest, TableMatchesReferenceRow) {
  const EdgeCase& edge = GetParam();
  const ItemId kItem = 7;
  Ltc table(TimeConfig());
  for (double t : edge.times) table.Insert(kItem, t);
  table.Finalize();
  EXPECT_EQ(table.EstimateFrequency(kItem), edge.frequency);
  EXPECT_EQ(table.EstimatePersistency(kItem), edge.persistency);
  EXPECT_TRUE(table.CheckInvariants());
}

TEST_P(PeriodEdgeTest, OracleMatchesReferenceRow) {
  const EdgeCase& edge = GetParam();
  const ItemId kItem = 7;
  ExactSignificanceOracle oracle(TimeConfig());
  for (double t : edge.times) oracle.Observe(kItem, t);
  EXPECT_EQ(oracle.TrueFrequency(kItem), edge.frequency);
  EXPECT_EQ(oracle.TruePersistency(kItem), edge.persistency);
}

INSTANTIATE_TEST_SUITE_P(
    Rows, PeriodEdgeTest, ::testing::ValuesIn(kEdgeCases),
    [](const ::testing::TestParamInfo<EdgeCase>& info) {
      return std::string(info.param.name);
    });

// The basic single-flag scheme (§III-C) cannot reproduce the exact rows:
// whether a flag set mid-period is swept before the next period's arrival
// re-sets it depends on where the item hashed relative to the pointer, so
// the count can land one high (stale flag re-credited) or one low
// (adjacent periods merged into one credit). What IS deterministic is the
// envelope: frequency stays exact, and persistency lands in
// [1, 2 × truth] whenever the item appeared (Theorem IV.2's deviation
// bound). The fuzzer checks the same bound on every combo.
TEST(PeriodEdge, SingleFlagSchemeStaysWithinDeviationBound) {
  for (const EdgeCase& edge : kEdgeCases) {
    LtcConfig config = TimeConfig();
    config.deviation_eliminator = false;
    const ItemId kItem = 7;
    Ltc table(config);
    for (double t : edge.times) table.Insert(kItem, t);
    table.Finalize();
    EXPECT_EQ(table.EstimateFrequency(kItem), edge.frequency) << edge.name;
    uint64_t p = table.EstimatePersistency(kItem);
    EXPECT_GE(p, 1u) << edge.name;
    EXPECT_LE(p, 2 * edge.persistency) << edge.name;
  }
}

// Regressing timestamps must not advance periods even across many
// arrivals — the clamp is sticky, not one-shot.
TEST(PeriodEdge, LongRegressionRunStaysInOnePeriod) {
  Ltc table(TimeConfig());
  table.Insert(1, 10.0);
  for (int i = 0; i < 100; ++i) {
    table.Insert(1, 10.0 - 0.05 * i);  // all clamp to 10.0
  }
  table.Finalize();
  EXPECT_EQ(table.EstimateFrequency(1), 101u);
  EXPECT_EQ(table.EstimatePersistency(1), 1u);
  EXPECT_EQ(table.current_period(), 10u);
}

// Two items interleaved around a boundary: the boundary rule applies per
// arrival, not per item.
TEST(PeriodEdge, InterleavedItemsAroundBoundary) {
  Ltc table(TimeConfig());
  table.Insert(1, 0.4);
  table.Insert(2, 0.9);
  table.Insert(1, 1.0);  // period 1
  table.Insert(2, 1.0);  // period 1 (zero elapsed)
  table.Finalize();
  EXPECT_EQ(table.EstimatePersistency(1), 2u);
  EXPECT_EQ(table.EstimatePersistency(2), 2u);
}

// WindowedLtc shares the clamp: a regressing timestamp can neither
// rotate panes backwards nor crash the pane arithmetic.
TEST(PeriodEdge, WindowedClampsRegressions) {
  LtcConfig config = TimeConfig();
  config.memory_bytes = 4096;
  WindowedLtc window(config, /*window_periods=*/4);
  window.Insert(1, 5.0);
  window.Insert(1, 0.5);  // clamps to 5.0
  window.Insert(2, 5.5);
  EXPECT_TRUE(window.CheckInvariants());
  EXPECT_GT(window.QuerySignificance(1), 0.0);
  EXPECT_GT(window.QuerySignificance(2), 0.0);
}

}  // namespace
}  // namespace ltc
