#include "telemetry/exposition.h"

#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace ltc {
namespace telemetry {
namespace {

// Single-buffer concatenation. GCC 12's -Wrestrict mis-fires on chained
// `"literal" + std::string&&` (a known false positive in the inlined
// memcpy bounds it derives), and appending pieces in place is cheaper
// than materialising the temporaries anyway.
template <typename... Parts>
void Append(std::string& out, Parts&&... parts) {
  (out.append(parts), ...);
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string U64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Dbl(double v) {
  char buf[40];
  // Integral gauges print without a trailing ".000000"; everything else
  // gets 9 significant digits, plenty for operational dashboards.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

/// Prometheus label-value / HELP escaping: backslash, double quote (label
/// values only) and newline.
std::string EscapeProm(const std::string& text, bool escape_quote) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"' && escape_quote) {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `{l1="v1",l2="v2"}`, with `extra` (already formatted, e.g.
/// `le="+Inf"`) appended; empty string when there are no labels at all.
std::string PromLabels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ",";
    first = false;
    Append(out, name, "=\"", EscapeProm(value, /*escape_quote=*/true), "\"");
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

/// One consistent read of a histogram: per-bucket counts and the total
/// derived from the same loads.
struct HistogramSnapshot {
  uint64_t buckets[Histogram::kNumBuckets];
  uint64_t count = 0;
  uint64_t sum = 0;
};

HistogramSnapshot SnapshotOf(const Histogram& histogram) {
  HistogramSnapshot snap;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    snap.buckets[i] = histogram.BucketCount(i);
    snap.count += snap.buckets[i];
  }
  snap.sum = histogram.Sum();
  return snap;
}

}  // namespace

std::string ExpositionText(const MetricsRegistry& registry) {
  std::string out;
  registry.ForEachFamily([&out](const MetricsRegistry::Family& family) {
    Append(out, "# HELP ", family.name, " ",
           EscapeProm(family.help, /*escape_quote=*/false), "\n");
    Append(out, "# TYPE ", family.name, " ", KindName(family.kind), "\n");
    for (const auto& series : family.series) {
      switch (family.kind) {
        case MetricKind::kCounter:
          Append(out, family.name, PromLabels(series->labels), " ",
                 U64(series->counter->Value()), "\n");
          break;
        case MetricKind::kGauge:
          Append(out, family.name, PromLabels(series->labels), " ",
                 Dbl(series->gauge->Value()), "\n");
          break;
        case MetricKind::kHistogram: {
          const HistogramSnapshot snap = SnapshotOf(*series->histogram);
          uint64_t cumulative = 0;
          for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
            cumulative += snap.buckets[i];
            // Elide empty buckets (cumulative semantics survive any
            // subset of the bounds); +Inf below is always present.
            if (snap.buckets[i] == 0) continue;
            std::string le = "le=\"";
            Append(le, U64(Histogram::BucketUpperBound(i)), "\"");
            Append(out, family.name, "_bucket",
                   PromLabels(series->labels, le), " ", U64(cumulative),
                   "\n");
          }
          Append(out, family.name, "_bucket",
                 PromLabels(series->labels, "le=\"+Inf\""), " ",
                 U64(snap.count), "\n");
          Append(out, family.name, "_sum", PromLabels(series->labels), " ",
                 U64(snap.sum), "\n");
          Append(out, family.name, "_count", PromLabels(series->labels), " ",
                 U64(snap.count), "\n");
          break;
        }
      }
    }
  });
  return out;
}

std::string ExpositionJson(const MetricsRegistry& registry) {
  std::string out = "{\n  \"families\": [";
  bool first_family = true;
  registry.ForEachFamily([&](const MetricsRegistry::Family& family) {
    out += first_family ? "\n" : ",\n";
    first_family = false;
    Append(out, "    {\"name\": \"", EscapeJson(family.name),
           "\", \"type\": \"", KindName(family.kind), "\", \"help\": \"",
           EscapeJson(family.help), "\", \"series\": [");
    bool first_series = true;
    for (const auto& series : family.series) {
      out += first_series ? "\n" : ",\n";
      first_series = false;
      out += "      {\"labels\": {";
      bool first_label = true;
      for (const auto& [name, value] : series->labels) {
        if (!first_label) out += ", ";
        first_label = false;
        Append(out, "\"", EscapeJson(name), "\": \"", EscapeJson(value),
               "\"");
      }
      out += "}";
      switch (family.kind) {
        case MetricKind::kCounter:
          Append(out, ", \"value\": ", U64(series->counter->Value()));
          break;
        case MetricKind::kGauge:
          Append(out, ", \"value\": ", Dbl(series->gauge->Value()));
          break;
        case MetricKind::kHistogram: {
          const HistogramSnapshot snap = SnapshotOf(*series->histogram);
          Append(out, ", \"count\": ", U64(snap.count),
                 ", \"sum\": ", U64(snap.sum), ", \"buckets\": [");
          bool first_bucket = true;
          uint64_t cumulative = 0;
          for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
            cumulative += snap.buckets[i];
            if (snap.buckets[i] == 0) continue;
            if (!first_bucket) out += ", ";
            first_bucket = false;
            Append(out, "{\"le\": \"", U64(Histogram::BucketUpperBound(i)),
                   "\", \"cumulative\": ", U64(cumulative), "}");
          }
          if (!first_bucket) out += ", ";
          Append(out, "{\"le\": \"+Inf\", \"cumulative\": ", U64(snap.count),
                 "}]");
          break;
        }
      }
      out += "}";
    }
    out += first_series ? "]}" : "\n    ]}";
  });
  out += first_family ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace telemetry
}  // namespace ltc
