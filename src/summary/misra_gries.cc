#include "summary/misra_gries.h"

#include <algorithm>
#include <cassert>

namespace ltc {

MisraGries::MisraGries(size_t num_counters) : capacity_(num_counters) {
  assert(num_counters >= 1);
  counters_.reserve(num_counters * 2);
}

void MisraGries::Insert(ItemId item) {
  ++processed_;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_[item] = 1;
    return;
  }
  // Full-table decrement. O(k) per occurrence, but each decrement cancels
  // one earlier increment, so total work is O(N) amortized.
  ++decrements_;
  for (auto cur = counters_.begin(); cur != counters_.end();) {
    if (--cur->second == 0) {
      cur = counters_.erase(cur);
    } else {
      ++cur;
    }
  }
}

uint64_t MisraGries::Estimate(ItemId item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<MisraGries::Entry> MisraGries::TopK(size_t k) const {
  std::vector<Entry> all;
  all.reserve(counters_.size());
  for (const auto& [item, count] : counters_) all.push_back({item, count});
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ltc
