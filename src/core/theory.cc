#include "core/theory.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/zipf.h"

namespace ltc {

std::vector<double> ZipfStreamModel::Frequencies() const {
  double zeta = TruncatedZeta(distinct_items, gamma);
  std::vector<double> f(distinct_items);
  for (uint64_t i = 1; i <= distinct_items; ++i) {
    f[i - 1] = static_cast<double>(total_items) *
               std::pow(static_cast<double>(i), -gamma) / zeta;
  }
  return f;
}

double CorrectRateBound(const std::vector<double>& frequencies, uint64_t rank,
                        const LtcShape& shape) {
  assert(rank >= 1 && rank <= frequencies.size());
  const double inv_w = 1.0 / static_cast<double>(shape.num_buckets);
  const double f = frequencies[rank - 1];
  const uint32_t d = shape.cells_per_bucket;
  if (d < 2) {
    // With d = 1 the Lemma IV.1 condition "never the smallest" can only
    // hold if NO other item is useful; the DP below handles it, but the
    // sum Σ_{x<=d-2} is empty, so the bound degenerates to dp_{M,0}.
  }

  // dp[x] = P(x useful items among those processed so far), truncated at
  // x = d-1 (more useful items than that can't change the answer).
  const uint32_t cap = d;  // track x in [0, d]; lump everything >= d
  std::vector<double> dp(cap + 1, 0.0);
  dp[0] = 1.0;
  for (uint64_t j = 1; j <= frequencies.size(); ++j) {
    if (j == rank) continue;  // an item is never "useful" against itself
    double fj = frequencies[j - 1];
    double pi;
    if (fj > f) {
      pi = inv_w;
    } else {
      // Ballot-style bound: a lighter item's running count ever exceeding
      // e's happens with probability f_j/(f+1) within the shared bucket.
      pi = inv_w * (fj / (f + 1.0));
    }
    // In-place Poisson-binomial update, high index first.
    for (uint32_t x = cap; x >= 1; --x) {
      dp[x] = dp[x] * (1.0 - pi) + dp[x - 1] * pi;
    }
    dp[0] *= (1.0 - pi);
  }

  double p = 0.0;
  for (uint32_t x = 0; x + 2 <= d; ++x) p += dp[x];  // Σ_{x=0}^{d-2}
  return std::clamp(p, 0.0, 1.0);
}

double TopKCorrectRateBound(const std::vector<double>& frequencies, size_t k,
                            const LtcShape& shape) {
  k = std::min(k, frequencies.size());
  double sum = 0.0;
  for (uint64_t rank = 1; rank <= k; ++rank) {
    sum += CorrectRateBound(frequencies, rank, shape);
  }
  return k == 0 ? 0.0 : sum / static_cast<double>(k);
}

double ProbabilitySmallest(uint64_t rank, const LtcShape& shape) {
  const uint32_t d = shape.cells_per_bucket;
  const double w = static_cast<double>(shape.num_buckets);
  if (rank < d) return 0.0;  // fewer than d−1 heavier items exist
  // C(i−1, d−1) (1/w)^{d−1} (1 − 1/w)^{i−d}, computed in log space for
  // numerical range (i can be ~10^6 while w ~ 10^3).
  double log_p = std::lgamma(static_cast<double>(rank)) -
                 std::lgamma(static_cast<double>(d)) -
                 std::lgamma(static_cast<double>(rank - d + 1));
  log_p += (d - 1) * std::log(1.0 / w);
  log_p += (static_cast<double>(rank) - d) * std::log1p(-1.0 / w);
  return std::exp(log_p);
}

double ExpectedDecrementers(const std::vector<double>& frequencies,
                            uint64_t rank, const LtcShape& shape) {
  double tail = 0.0;
  for (uint64_t j = rank + 1; j <= frequencies.size(); ++j) {
    tail += frequencies[j - 1];
  }
  return tail / static_cast<double>(shape.num_buckets);
}

double ErrorProbabilityBound(const std::vector<double>& frequencies,
                             uint64_t rank, const LtcShape& shape,
                             double epsilon, uint64_t total_items) {
  double expected_loss = ProbabilitySmallest(rank, shape) *
                         ExpectedDecrementers(frequencies, rank, shape) *
                         (shape.alpha + shape.beta);
  return expected_loss / (epsilon * static_cast<double>(total_items));
}

double TopKErrorProbabilityBound(const std::vector<double>& frequencies,
                                 size_t k, const LtcShape& shape,
                                 double epsilon, uint64_t total_items) {
  k = std::min(k, frequencies.size());
  double sum = 0.0;
  for (uint64_t rank = 1; rank <= k; ++rank) {
    sum += std::min(
        1.0, ErrorProbabilityBound(frequencies, rank, shape, epsilon,
                                   total_items));
  }
  return k == 0 ? 0.0 : sum / static_cast<double>(k);
}

}  // namespace ltc
