// Cross-module integration tests: the full experiment pipeline (generator
// → ground truth → reporter suite → metrics) on each dataset stand-in,
// asserting the paper's qualitative results in miniature.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/evaluate.h"
#include "metrics/ground_truth.h"
#include "stream/generators.h"
#include "topk/reporters.h"

namespace ltc {
namespace {

constexpr size_t kK = 50;

std::unique_ptr<LtcReporter> MakeLtc(size_t memory, const Stream& stream,
                                     double alpha, double beta) {
  LtcConfig config;
  config.memory_bytes = memory;
  config.alpha = alpha;
  config.beta = beta;
  return std::make_unique<LtcReporter>(config, stream.num_periods(),
                                       stream.duration());
}

// §V-F on every dataset stand-in: at moderate memory LTC's frequent-items
// precision dominates Space-Saving's and is close to perfect.
TEST(Integration, FrequentItemsAcrossAllDatasets) {
  struct Case {
    const char* name;
    Stream stream;
  };
  std::vector<Case> cases;
  cases.push_back({"caida", MakeCaidaLike(200'000, 1)});
  cases.push_back({"network", MakeNetworkLike(200'000, 2)});
  cases.push_back({"social", MakeSocialLike(150'000, 3)});

  for (auto& c : cases) {
    GroundTruth truth = GroundTruth::Compute(c.stream);
    constexpr size_t kMemory = 16 * 1024;

    auto ltc = MakeLtc(kMemory, c.stream, 1.0, 0.0);
    SpaceSavingReporter ss(kMemory);

    double ltc_precision =
        RunReporter(*ltc, c.stream, truth, kK, 1.0, 0.0).eval.precision;
    double ss_precision =
        RunReporter(ss, c.stream, truth, kK, 1.0, 0.0).eval.precision;

    EXPECT_GE(ltc_precision, 0.85) << c.name;
    EXPECT_GE(ltc_precision, ss_precision - 0.02) << c.name;
  }
}

// §V-F ARE: LTC's relative error is orders of magnitude below SS's at
// tight memory (the paper reports 10^2–10^5× gaps).
TEST(Integration, FrequentItemsAreGapAtTightMemory) {
  Stream stream = MakeCaidaLike(200'000, 4);
  GroundTruth truth = GroundTruth::Compute(stream);
  constexpr size_t kMemory = 4 * 1024;

  auto ltc = MakeLtc(kMemory, stream, 1.0, 0.0);
  SpaceSavingReporter ss(kMemory);

  double ltc_are = RunReporter(*ltc, stream, truth, kK, 1.0, 0.0).eval.are;
  double ss_are = RunReporter(ss, stream, truth, kK, 1.0, 0.0).eval.are;
  EXPECT_LT(ltc_are, ss_are / 5.0);
}

// §V-G in miniature: persistent-items precision, LTC vs the BF+sketch
// adaptation at equal memory (PIE is covered in reporters_test).
TEST(Integration, PersistentItemsLtcBeatsAdaptedSketch) {
  Stream stream = MakeNetworkLike(200'000, 5);
  GroundTruth truth = GroundTruth::Compute(stream);
  constexpr size_t kMemory = 24 * 1024;

  auto ltc = MakeLtc(kMemory, stream, 0.0, 1.0);
  BfSketchPersistentReporter bf_cu(SketchKind::kCu, kMemory, kK);

  double ltc_precision =
      RunReporter(*ltc, stream, truth, kK, 0.0, 1.0).eval.precision;
  double bf_precision =
      RunReporter(bf_cu, stream, truth, kK, 0.0, 1.0).eval.precision;
  EXPECT_GT(ltc_precision, bf_precision);
  EXPECT_GE(ltc_precision, 0.5);
}

// §V-H in miniature: significant items across the three α:β mixes.
TEST(Integration, SignificantItemsAcrossParameterMixes) {
  Stream stream = MakeCaidaLike(200'000, 6);
  GroundTruth truth = GroundTruth::Compute(stream);
  constexpr size_t kMemory = 32 * 1024;

  for (auto [alpha, beta] : {std::pair{1.0, 10.0}, {1.0, 1.0}, {10.0, 1.0}}) {
    auto ltc = MakeLtc(kMemory, stream, alpha, beta);
    CombinedSignificantReporter combo(SketchKind::kCu, kMemory, kK, alpha,
                                      beta);
    double ltc_precision =
        RunReporter(*ltc, stream, truth, kK, alpha, beta).eval.precision;
    double combo_precision =
        RunReporter(combo, stream, truth, kK, alpha, beta).eval.precision;
    EXPECT_GE(ltc_precision, 0.75)
        << "alpha=" << alpha << " beta=" << beta;
    EXPECT_GE(ltc_precision + 0.02, combo_precision)
        << "alpha=" << alpha << " beta=" << beta;
  }
}

// §V-D in miniature: Long-tail Replacement strictly helps ARE on a
// long-tail stream at tight memory.
TEST(Integration, LongTailReplacementImprovesAccuracy) {
  Stream stream = MakeNetworkLike(200'000, 7);
  GroundTruth truth = GroundTruth::Compute(stream);
  constexpr size_t kMemory = 8 * 1024;

  LtcConfig with;
  with.memory_bytes = kMemory;
  with.long_tail_replacement = true;
  LtcConfig without = with;
  without.long_tail_replacement = false;

  LtcReporter y(with, stream.num_periods(), stream.duration());
  LtcReporter n(without, stream.num_periods(), stream.duration());
  auto ry = RunReporter(y, stream, truth, kK, 1.0, 1.0);
  auto rn = RunReporter(n, stream, truth, kK, 1.0, 1.0);
  EXPECT_GE(ry.eval.precision + 0.02, rn.eval.precision);
}

// The estimates LTC reports for the true top items are tight: relative
// error under 10% each at moderate memory.
TEST(Integration, TopItemsEstimatedTightly) {
  Stream stream = MakeSocialLike(150'000, 8);
  GroundTruth truth = GroundTruth::Compute(stream);

  auto ltc = MakeLtc(64 * 1024, stream, 1.0, 1.0);
  for (const Record& r : stream.records()) {
    ltc->Insert(r.item, r.time, stream.PeriodOf(r.time));
  }
  ltc->Finish();

  auto top = truth.TopKSignificant(10, 1.0, 1.0);
  for (const auto& [item, sig] : top) {
    double est = ltc->Estimate(item);
    EXPECT_GT(est, 0.0) << "item " << item;
    EXPECT_NEAR(est, sig, 0.1 * sig) << "item " << item;
  }
}

}  // namespace
}  // namespace ltc
