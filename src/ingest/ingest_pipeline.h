// Parallel ingestion engine for ShardedLtc — the FeedParallel pattern the
// sharded header promises, packaged as a component (docs/INGEST.md).
//
//   producer thread                     worker threads (one per shard)
//   Push / PushBatch ──route by hash──▶ SPSC ring ──drain in batches──▶
//                                       shard(i).InsertBatch(...)
//
// One router (the caller's thread) hashes each record to its owning shard
// with ShardedLtc::ShardOf and appends it to that shard's bounded SPSC
// ring; one worker per shard drains its ring in batches through the
// Ltc::InsertBatch fast path. Because routing preserves each shard's
// arrival order and shards are independent tables, the final state is
// item-for-item identical to sequential ShardedLtc::Insert of the same
// stream — parallelism buys throughput, never a different answer
// (pinned by tests/ingest_pipeline_test.cc).
//
// Backpressure on a full ring is configurable: kBlock (the producer spins
// with yields — no record is ever lost) or kDrop (the record is counted
// and discarded — bounded producer latency under overload, like a NIC
// queue).
//
// Threading contract: Push / PushBatch / Flush / Stop must all be called
// from ONE producer thread. Queries on the ShardedLtc are only safe after
// Flush() (all queued records applied, memory-visible) or Stop().

#ifndef LTC_INGEST_INGEST_PIPELINE_H_
#define LTC_INGEST_INGEST_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/sharded_ltc.h"
#include "ingest/spsc_ring.h"

namespace ltc {

/// What the router does when a shard's ring is full.
enum class BackpressureMode {
  kBlock,  // spin/yield until the worker frees space; lossless
  kDrop,   // discard the record and count it; bounded producer latency
};

struct IngestConfig {
  /// Per-shard ring capacity in records (rounded up to a power of two).
  size_t ring_capacity = 1 << 14;

  /// Worker drain granularity: how many records a worker pops and hands
  /// to Ltc::InsertBatch at once.
  size_t drain_batch = 512;

  BackpressureMode backpressure = BackpressureMode::kBlock;
};

/// Per-shard operational counters (see IngestPipeline::ShardStatsOf).
struct IngestShardStats {
  uint64_t enqueued = 0;     // records accepted into the ring
  uint64_t dropped = 0;      // records discarded (kDrop mode only)
  uint64_t drained = 0;      // records applied to the shard table
  uint64_t batches = 0;      // InsertBatch calls the worker issued
  size_t queue_depth = 0;    // ring occupancy at sampling time (racy)
  size_t ring_capacity = 0;
};

class IngestPipeline {
 public:
  /// Spawns one worker thread per shard of `sink`. The sink must outlive
  /// the pipeline, and nothing else may touch it until Flush()/Stop().
  explicit IngestPipeline(ShardedLtc& sink, const IngestConfig& config = {});

  /// Stops and joins the workers (all accepted records are applied).
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Routes one record to its shard's ring. Producer thread only.
  void Push(ItemId item, double time = 0.0);

  /// Routes a run of records. The records are partitioned into per-shard
  /// runs first so each ring is published to once per run instead of once
  /// per record — feed the pipeline in batches whenever the stream allows.
  void PushBatch(std::span<const Record> records);

  /// Blocks until every accepted record has been applied to its shard
  /// table (and is memory-visible to this thread). The pipeline stays
  /// usable: Push may resume after Flush — that is how mid-stream
  /// snapshots are taken (flush, query, keep feeding).
  void Flush();

  /// Flushes, stops and joins all workers. Idempotent; called by the
  /// destructor. After Stop() the pipeline accepts no more records.
  void Stop();

  /// Total records accepted across shards (excludes drops).
  uint64_t TotalEnqueued() const;

  /// Total records discarded by kDrop backpressure.
  uint64_t TotalDropped() const;

  IngestShardStats ShardStatsOf(uint32_t shard) const;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(lanes_.size());
  }

 private:
  // One shard's lane: its ring, its worker, and its counters. The
  // counters the producer writes (enqueued/dropped) and the ones the
  // worker writes (drained/batches) live on separate cache lines.
  struct Lane {
    explicit Lane(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing ring;
    alignas(64) std::atomic<uint64_t> enqueued{0};  // producer-written
    std::atomic<uint64_t> dropped{0};               // producer-written
    alignas(64) std::atomic<uint64_t> drained{0};   // worker-written
    std::atomic<uint64_t> batches{0};               // worker-written
    std::thread worker;
  };

  void WorkerLoop(uint32_t shard_index);

  // Pushes one shard's routed run, honouring backpressure. Returns the
  // number of records accepted (the rest were dropped).
  uint64_t PushRun(Lane& lane, std::span<const Record> run);

  ShardedLtc& sink_;
  IngestConfig config_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // stable addresses for threads
  std::vector<std::vector<Record>> route_runs_;  // PushBatch scratch
  std::atomic<bool> stop_{false};
  bool stopped_ = false;  // producer-side latch; Stop is idempotent
};

}  // namespace ltc

#endif  // LTC_INGEST_INGEST_PIPELINE_H_
