#include "metrics/significance_oracle.h"

#include <algorithm>

namespace ltc {

ExactSignificanceOracle::ExactSignificanceOracle(const LtcConfig& config)
    : config_(config) {}

uint64_t ExactSignificanceOracle::current_period() const {
  if (config_.period_mode == PeriodMode::kCountBased) {
    return total_observed_ / config_.items_per_period;
  }
  return static_cast<uint64_t>(last_time_ / config_.period_seconds);
}

void ExactSignificanceOracle::Observe(ItemId item, double time) {
  uint64_t period;
  if (config_.period_mode == PeriodMode::kCountBased) {
    // Arrival i (0-based) falls into period ⌊i/n⌋ — the period Ltc's
    // clock is in when the matching Insert updates the bucket (the clock
    // advances after the bucket update).
    period = total_observed_ / config_.items_per_period;
  } else {
    // Mirror Ltc's backwards-timestamp clamp so the two period sequences
    // are identical on non-monotonic feeds.
    if (time < last_time_) time = last_time_;
    last_time_ = time;
    period = static_cast<uint64_t>(time / config_.period_seconds);
  }
  ++total_observed_;

  Info& info = items_[item];
  ++info.frequency;
  // Clamped timestamps are nondecreasing, so one remembered period per
  // item dedups (item, period) pairs without a set.
  if (info.last_period != period) {
    ++info.persistency;
    info.last_period = period;
  }
}

uint64_t ExactSignificanceOracle::TrueFrequency(ItemId item) const {
  auto it = items_.find(item);
  return it == items_.end() ? 0 : it->second.frequency;
}

uint64_t ExactSignificanceOracle::TruePersistency(ItemId item) const {
  auto it = items_.find(item);
  return it == items_.end() ? 0 : it->second.persistency;
}

std::vector<ExactSignificanceOracle::Entry> ExactSignificanceOracle::TopK(
    size_t k, double alpha, double beta) const {
  std::vector<Entry> all;
  all.reserve(items_.size());
  for (const auto& [item, info] : items_) {
    all.push_back({item, info.frequency, info.persistency,
                   alpha * static_cast<double>(info.frequency) +
                       beta * static_cast<double>(info.persistency)});
  }
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    if (a.significance != b.significance) {
      return a.significance > b.significance;
    }
    return a.item < b.item;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ltc
