// Tests for binary serialization: the writer/reader primitives, and
// checkpoint/restore of Ltc, the counter sketches and the Bloom filter.
// The key property: a restored structure continues the stream EXACTLY as
// the original would have.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/ltc.h"
#include "core/sharded_ltc.h"
#include "core/windowed_ltc.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "stream/generators.h"
#include "legacy_ltc_image.h"

namespace ltc {
namespace {

TEST(Serial, PrimitivesRoundTrip) {
  BinaryWriter writer;
  writer.PutU8(7);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutDouble(3.25);
  writer.PutString("hello");

  BinaryReader reader(writer.data());
  EXPECT_EQ(reader.GetU8(), 7);
  EXPECT_EQ(reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.GetU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(reader.GetDouble(), 3.25);
  EXPECT_EQ(reader.GetString(), "hello");
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_FALSE(reader.failed());
}

TEST(Serial, TruncatedReadFailsStickily) {
  BinaryWriter writer;
  writer.PutU32(42);
  BinaryReader reader(writer.data());
  EXPECT_EQ(reader.GetU32(), 42u);
  EXPECT_EQ(reader.GetU64(), 0u);  // past the end
  EXPECT_TRUE(reader.failed());
  EXPECT_EQ(reader.GetU32(), 0u);  // stays failed
  EXPECT_FALSE(reader.AtEnd());
}

TEST(Serial, OversizedStringLengthRejected) {
  BinaryWriter writer;
  writer.PutU64(1'000'000);  // claims a megabyte that is not there
  BinaryReader reader(writer.data());
  EXPECT_EQ(reader.GetString(), "");
  EXPECT_TRUE(reader.failed());
}

TEST(Serial, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/ltc_serial_test.bin";
  std::string payload("\x00\x01\x02 binary \xff", 12);
  ASSERT_TRUE(WriteFile(path, payload));
  auto loaded = ReadFileToString(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadFileToString(path + ".does-not-exist").has_value());
}

// --------------------------------------------------------------- Ltc

TEST(SerialLtc, RestoredTableContinuesIdentically) {
  Stream stream = MakeZipfStream(40'000, 4'000, 1.0, 40, 11);
  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();

  // Run A: the full stream, uninterrupted.
  Ltc full(config);
  for (const Record& r : stream.records()) full.Insert(r.item, r.time);
  full.Finalize();

  // Run B: first half, checkpoint, restore, second half.
  Ltc first_half(config);
  size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    first_half.Insert(stream.records()[i].item, stream.records()[i].time);
  }
  BinaryWriter writer;
  first_half.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = Ltc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(reader.AtEnd());
  for (size_t i = half; i < stream.size(); ++i) {
    restored->Insert(stream.records()[i].item, stream.records()[i].time);
  }
  restored->Finalize();

  auto a = full.TopK(200);
  auto b = restored->TopK(200);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_EQ(a[i].frequency, b[i].frequency);
    EXPECT_EQ(a[i].persistency, b[i].persistency);
  }
}

TEST(SerialLtc, ConfigIsPreserved) {
  LtcConfig config;
  config.memory_bytes = 8 * 1024;
  config.cells_per_bucket = 4;
  config.alpha = 2.5;
  config.beta = 0.5;
  config.deviation_eliminator = false;
  config.init_policy = InitPolicy::kMinPlusOne;
  config.items_per_period = 123;
  Ltc table(config);
  table.Insert(42);

  BinaryWriter writer;
  table.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = Ltc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->config().cells_per_bucket, 4u);
  EXPECT_DOUBLE_EQ(restored->config().alpha, 2.5);
  EXPECT_DOUBLE_EQ(restored->config().beta, 0.5);
  EXPECT_FALSE(restored->config().deviation_eliminator);
  EXPECT_EQ(restored->config().EffectiveInitPolicy(),
            InitPolicy::kMinPlusOne);
  EXPECT_EQ(restored->config().items_per_period, 123u);
  EXPECT_EQ(restored->EstimateFrequency(42), 1u);
}

TEST(SerialLtc, LegacyV2AosImageLoadsIdentically) {
  // Back-compat shim: a v2 (AoS per-cell) checkpoint image must restore
  // the SAME table as its v3 (SoA lane-major) counterpart — identical
  // re-serialization and identical continuation of the stream.
  Stream stream = MakeZipfStream(20'000, 2'000, 1.0, 20, 17);
  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  Ltc table(config);
  size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    table.Insert(stream.records()[i].item, stream.records()[i].time);
  }

  BinaryWriter writer;
  table.Serialize(writer);
  std::string v2 = testing_internal::ReencodeLtcV3AsV2(writer.data());
  ASSERT_NE(v2, writer.data());  // the shapes genuinely differ

  BinaryReader reader(v2);
  auto restored = Ltc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(reader.AtEnd());

  // Re-serializing the restored table produces the v3 bytes again: the
  // shim loses nothing and never writes the legacy shape.
  BinaryWriter reserialized;
  restored->Serialize(reserialized);
  EXPECT_EQ(reserialized.data(), writer.data());

  for (size_t i = half; i < stream.size(); ++i) {
    table.Insert(stream.records()[i].item, stream.records()[i].time);
    restored->Insert(stream.records()[i].item, stream.records()[i].time);
  }
  table.Finalize();
  restored->Finalize();
  auto a = table.TopK(200);
  auto b = restored->TopK(200);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_EQ(a[i].frequency, b[i].frequency);
    EXPECT_EQ(a[i].persistency, b[i].persistency);
  }
}

TEST(SerialLtc, GarbageRejected) {
  BinaryReader bad_magic(std::string_view("\x12\x34\x56\x78 garbage", 12));
  EXPECT_FALSE(Ltc::Deserialize(bad_magic).has_value());

  // Valid header, truncated body.
  Ltc table((LtcConfig()));
  table.Insert(1);
  BinaryWriter writer;
  table.Serialize(writer);
  std::string truncated = writer.data().substr(0, writer.size() / 2);
  BinaryReader reader(truncated);
  EXPECT_FALSE(Ltc::Deserialize(reader).has_value());
  BinaryReader empty("");
  EXPECT_FALSE(Ltc::Deserialize(empty).has_value());
}

// -------------------------------------------------------------- ShardedLtc

TEST(SerialSharded, RestoredContinuesIdentically) {
  Stream stream = MakeZipfStream(40'000, 4'000, 1.0, 40, 23);
  LtcConfig config;
  config.memory_bytes = 16 * 1024;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  const uint32_t kShards = 4;

  ShardedLtc full(config, kShards);
  for (const Record& r : stream.records()) full.Insert(r.item, r.time);
  full.Finalize();

  ShardedLtc first_half(config, kShards);
  size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    first_half.Insert(stream.records()[i].item, stream.records()[i].time);
  }
  BinaryWriter writer;
  first_half.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = ShardedLtc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(reader.AtEnd());
  ASSERT_EQ(restored->num_shards(), kShards);
  for (size_t i = half; i < stream.size(); ++i) {
    // The restored router must send every item to its original shard.
    EXPECT_EQ(restored->ShardOf(stream.records()[i].item),
              full.ShardOf(stream.records()[i].item));
    restored->Insert(stream.records()[i].item, stream.records()[i].time);
  }
  restored->Finalize();

  auto a = full.TopK(200);
  auto b = restored->TopK(200);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_EQ(a[i].frequency, b[i].frequency);
    EXPECT_EQ(a[i].persistency, b[i].persistency);
  }
  EXPECT_TRUE(restored->CheckInvariants());
}

TEST(SerialSharded, GarbageRejected) {
  BinaryReader bad_magic(std::string_view("\x12\x34\x56\x78 garbage", 12));
  EXPECT_FALSE(ShardedLtc::Deserialize(bad_magic).has_value());

  ShardedLtc sharded((LtcConfig()), 2);
  sharded.Insert(1);
  BinaryWriter writer;
  sharded.Serialize(writer);
  std::string truncated = writer.data().substr(0, writer.size() / 2);
  BinaryReader reader(truncated);
  EXPECT_FALSE(ShardedLtc::Deserialize(reader).has_value());
  BinaryReader empty("");
  EXPECT_FALSE(ShardedLtc::Deserialize(empty).has_value());
}

// -------------------------------------------------------------- WindowedLtc

TEST(SerialWindowed, RestoredContinuesIdentically) {
  Stream stream = MakeZipfStream(40'000, 4'000, 1.0, 40, 31);
  LtcConfig config;
  config.memory_bytes = 8 * 1024;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  const uint32_t kWindow = 6;

  WindowedLtc full(config, kWindow);
  for (const Record& r : stream.records()) full.Insert(r.item, r.time);

  WindowedLtc first_half(config, kWindow);
  size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    first_half.Insert(stream.records()[i].item, stream.records()[i].time);
  }
  BinaryWriter writer;
  first_half.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = WindowedLtc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored->window_periods(), kWindow);
  EXPECT_EQ(restored->current_pane(), first_half.current_pane());
  for (size_t i = half; i < stream.size(); ++i) {
    restored->Insert(stream.records()[i].item, stream.records()[i].time);
  }

  auto a = full.TopK(200);
  auto b = restored->TopK(200);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_EQ(a[i].frequency, b[i].frequency);
    EXPECT_EQ(a[i].persistency, b[i].persistency);
  }
  EXPECT_TRUE(restored->CheckInvariants());
}

TEST(SerialWindowed, RoundTripPreservesPaneRotationState) {
  LtcConfig config;
  config.memory_bytes = 4 * 1024;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = 1.0;
  WindowedLtc window(config, 4);  // pane = 2 periods, span = 2.0 s
  window.Insert(1, 0.5);
  window.Insert(2, 2.5);  // rotates: pane 1 active, pane 0 previous
  ASSERT_EQ(window.current_pane(), 1u);

  BinaryWriter writer;
  window.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = WindowedLtc::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->current_pane(), 1u);
  // Item 1 lives in the previous (still live) pane and must survive.
  EXPECT_GT(restored->QuerySignificance(1), 0.0);
  EXPECT_GT(restored->QuerySignificance(2), 0.0);
  // A regressing timestamp after restore still clamps instead of
  // rotating backwards.
  restored->Insert(3, 0.1);
  EXPECT_EQ(restored->current_pane(), 1u);
  EXPECT_TRUE(restored->CheckInvariants());
}

TEST(SerialWindowed, GarbageRejected) {
  BinaryReader bad_magic(std::string_view("\x12\x34\x56\x78 garbage", 12));
  EXPECT_FALSE(WindowedLtc::Deserialize(bad_magic).has_value());

  LtcConfig config;
  config.period_mode = PeriodMode::kTimeBased;
  WindowedLtc window(config, 4);
  window.Insert(1, 0.5);
  BinaryWriter writer;
  window.Serialize(writer);
  std::string truncated = writer.data().substr(0, writer.size() / 2);
  BinaryReader reader(truncated);
  EXPECT_FALSE(WindowedLtc::Deserialize(reader).has_value());
  BinaryReader empty("");
  EXPECT_FALSE(WindowedLtc::Deserialize(empty).has_value());
}

// -------------------------------------------------------------- sketches

TEST(SerialSketch, CounterMatrixRoundTripBothKinds) {
  CountMinSketch cm(2 * 1024, 3, 5);
  CuSketch cu(2 * 1024, 3, 5);
  for (ItemId i = 1; i <= 500; ++i) {
    cm.Insert(i % 60 + 1);
    cu.Insert(i % 60 + 1);
  }

  for (CounterMatrixSketch* sketch :
       {static_cast<CounterMatrixSketch*>(&cm),
        static_cast<CounterMatrixSketch*>(&cu)}) {
    BinaryWriter writer;
    sketch->Serialize(writer);
    BinaryReader reader(writer.data());
    auto restored = CounterMatrixSketch::Deserialize(reader);
    ASSERT_NE(restored, nullptr);
    for (ItemId item = 1; item <= 60; ++item) {
      EXPECT_EQ(restored->Query(item), sketch->Query(item));
    }
    // Kind preserved: further inserts behave identically.
    sketch->Insert(7, 3);
    restored->Insert(7, 3);
    EXPECT_EQ(restored->Query(7), sketch->Query(7));
  }
}

TEST(SerialSketch, CounterMatrixGarbageRejected) {
  BinaryReader empty("");
  EXPECT_EQ(CounterMatrixSketch::Deserialize(empty), nullptr);
  BinaryWriter writer;
  writer.PutU32(0x434d5331);
  writer.PutU8(9);  // invalid type tag
  writer.PutU32(3);
  writer.PutU32(4);
  writer.PutU64(0);
  BinaryReader bad_tag(writer.data());
  EXPECT_EQ(CounterMatrixSketch::Deserialize(bad_tag), nullptr);
}

TEST(SerialSketch, BloomFilterRoundTrip) {
  BloomFilter bf(1 << 12, 4, 9);
  for (ItemId i = 1; i <= 300; ++i) bf.Add(i * 3);
  BinaryWriter writer;
  bf.Serialize(writer);
  BinaryReader reader(writer.data());
  auto restored = BloomFilter::Deserialize(reader);
  ASSERT_TRUE(restored.has_value());
  for (ItemId i = 1; i <= 300; ++i) {
    EXPECT_TRUE(restored->MayContain(i * 3));
  }
  // Identical bit pattern: agree on arbitrary probes too.
  for (ItemId i = 10'000; i < 10'200; ++i) {
    EXPECT_EQ(restored->MayContain(i), bf.MayContain(i));
  }
}

}  // namespace
}  // namespace ltc
