#include "server/aggregator.h"

#include <memory>
#include <utility>

#include "common/serial.h"
#include "telemetry/trace.h"

namespace ltc {
namespace server {

AggregatorCore::AggregatorCore(const LtcConfig& config, ReadSnapshotHub* hub,
                               uint64_t stale_after_sec, Clock* clock)
    : config_(config),
      reference_(config),
      hub_(hub),
      clock_(clock != nullptr ? clock : &SystemClock()),
      stale_after_sec_(stale_after_sec),
      merged_(config) {}

void AggregatorCore::AttachMetrics(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  merges_counter_ = &registry->CounterOf(
      "ltc_agg_merges_total", "Pushed sketches applied to the aggregate.");
  rejects_counter_ = &registry->CounterOf(
      "ltc_agg_pushes_rejected_total",
      "Pushes rejected with a typed error (shape/epoch/deserialize).");
  duplicates_counter_ = &registry->CounterOf(
      "ltc_agg_pushes_duplicate_total",
      "Retransmitted pushes acknowledged without reapplying.");
  nodes_gauge_ = &registry->GaugeOf("ltc_agg_nodes",
                                    "Nodes that have pushed at least once.");
}

PushOutcome AggregatorCore::Reject(Status status, std::string detail) {
  rejects_total_++;
  if (rejects_counter_ != nullptr) rejects_counter_->Increment();
  PushOutcome outcome;
  outcome.status = status;
  outcome.detail = std::move(detail);
  return outcome;
}

PushOutcome AggregatorCore::ApplyPush(const PushRequest& push) {
  // Parents under the dispatcher's server.request span, which itself
  // carries the pusher's remote context — the cross-process link.
  telemetry::Span span("agg.merge");
  span.AddAttr("node", push.node_id);
  span.AddAttr("epoch", push.epoch_seq);
  if (push.sketch_kind != kSketchKindLtc) {
    return Reject(Status::kErrBadSketch,
                  "unsupported sketch kind " +
                      std::to_string(static_cast<int>(push.sketch_kind)));
  }
  if (push.epoch_seq == 0) {
    return Reject(Status::kErrBadSketch, "epoch_seq must be >= 1");
  }

  auto it = nodes_.find(push.node_id);
  if (it != nodes_.end()) {
    // Epoch gate first: a stale or duplicate push is judged by its
    // sequence alone, so even a corrupted retransmit of an old epoch
    // gets the retry-stopping answer instead of kErrBadSketch churn.
    if (push.epoch_seq < it->second.last_epoch) {
      return Reject(Status::kErrStaleEpoch,
                    "epoch " + std::to_string(push.epoch_seq) +
                        " older than applied " +
                        std::to_string(it->second.last_epoch));
    }
    if (push.epoch_seq == it->second.last_epoch) {
      if (duplicates_counter_ != nullptr) duplicates_counter_->Increment();
      PushOutcome outcome;
      outcome.status = Status::kOk;
      outcome.applied = false;
      outcome.epoch_seq = push.epoch_seq;
      return outcome;
    }
  }

  BinaryReader reader(push.payload);
  std::optional<Ltc> table = Ltc::Deserialize(reader);
  if (!table.has_value() || !reader.AtEnd()) {
    return Reject(Status::kErrBadSketch, "sketch payload does not deserialize");
  }
  if (!reference_.CanMergeWith(*table)) {
    return Reject(Status::kErrShapeMismatch,
                  "pushed sketch geometry/weights do not match the aggregate");
  }

  const uint64_t now = clock_->NowMicros();
  if (it == nodes_.end()) {
    it = nodes_.emplace(push.node_id, NodeState(std::move(*table))).first;
  } else {
    it->second.sketch = std::move(*table);
  }
  it->second.last_epoch = push.epoch_seq;
  it->second.records = push.records;
  it->second.last_push_usec = now;

  merges_total_++;
  if (merges_counter_ != nullptr) merges_counter_->Increment();
  if (nodes_gauge_ != nullptr) {
    nodes_gauge_->Set(static_cast<double>(nodes_.size()));
  }
  RebuildAndPublish();
  Tick();

  PushOutcome outcome;
  outcome.status = Status::kOk;
  outcome.applied = true;
  outcome.epoch_seq = push.epoch_seq;
  return outcome;
}

void AggregatorCore::RebuildAndPublish() {
  telemetry::Span span("agg.republish");
  span.AddAttr("nodes", nodes_.size());
  Ltc merged(config_);
  uint64_t records = 0;
  for (const auto& [node_id, node] : nodes_) {
    // Shapes were checked at apply time, so the fold cannot fail; a
    // false here would mean the aggregate config itself changed.
    bool ok = merged.MergeFrom(node.sketch);
    (void)ok;
    records += node.records;
  }
  merged_ = merged;
  has_merged_ = true;
  total_records_ = records;
  if (hub_ != nullptr) {
    // Best-effort publish: a straggling reader may pin the stale slot,
    // in which case the previous merged image simply stays current and
    // the next push republishes (the hub never blocks its publisher).
    hub_->Publish(std::make_unique<Ltc>(std::move(merged)), records);
  }
}

uint64_t AggregatorCore::AgeSecOf(const NodeState& node,
                                  uint64_t now_usec) const {
  const uint64_t last = node.last_push_usec;
  return now_usec > last ? (now_usec - last) / 1'000'000 : 0;
}

void AggregatorCore::Tick() {
  if (metrics_ == nullptr) return;
  const uint64_t now = clock_->NowMicros();
  for (const auto& [node_id, node] : nodes_) {
    auto it = staleness_gauges_.find(node_id);
    if (it == staleness_gauges_.end()) {
      it = staleness_gauges_
               .emplace(node_id,
                        &metrics_->GaugeOf(
                            "ltc_agg_node_staleness_sec",
                            "Seconds since a node's last applied push.",
                            {{"node", std::to_string(node_id)}}))
               .first;
    }
    it->second->Set(static_cast<double>(AgeSecOf(node, now)));
  }
}

std::vector<StatsNodeRow> AggregatorCore::NodeRows() const {
  const uint64_t now = clock_->NowMicros();
  std::vector<StatsNodeRow> rows;
  rows.reserve(nodes_.size());
  for (const auto& [node_id, node] : nodes_) {
    StatsNodeRow row;
    row.node_id = node_id;
    row.last_epoch = node.last_epoch;
    row.age_sec = AgeSecOf(node, now);
    row.stale = row.age_sec > stale_after_sec_ ? 1 : 0;
    rows.push_back(row);
  }
  return rows;
}

std::string AggregatorCore::SerializeMerged() const {
  if (!has_merged_) return std::string();
  BinaryWriter writer;
  merged_.Serialize(writer);
  return writer.data();
}

}  // namespace server
}  // namespace ltc
