#include "ingest/ingest_pipeline.h"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

#include "snapshot/snapshot_store.h"

namespace ltc {

namespace {

/// Microseconds elapsed since `start`, saturated at 0.
uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto usec =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return usec > 0 ? static_cast<uint64_t>(usec) : 0;
}

}  // namespace

IngestPipeline::IngestPipeline(ShardedLtc& sink, const IngestConfig& config)
    : sink_(sink), config_(config) {
  assert(config_.drain_batch >= 1);
  const uint32_t shards = sink.num_shards();
  lanes_.reserve(shards);
  route_runs_.assign(shards, {});
  for (uint32_t s = 0; s < shards; ++s) {
    lanes_.push_back(std::make_unique<Lane>(config_.ring_capacity));
  }
  // Spawn only after every lane exists: a worker touches just its own
  // lane and shard, but the vector itself must never reallocate under it.
  for (uint32_t s = 0; s < shards; ++s) {
    lanes_[s]->worker = std::thread([this, s] { WorkerLoop(s); });
  }
}

IngestPipeline::~IngestPipeline() { Stop(); }

void IngestPipeline::WorkerLoop(uint32_t shard_index) {
  Lane& lane = *lanes_[shard_index];
  Ltc& shard = sink_.shard(shard_index);
  std::vector<Record> batch(config_.drain_batch);
  for (;;) {
    if (suspended_.load(std::memory_order_acquire) &&
        !stop_.load(std::memory_order_acquire)) {
      // Fault-injection seam: play dead until resumed or stopped (Stop
      // still drains, so suspension never loses accepted records).
      std::this_thread::yield();
      continue;
    }
    size_t n = lane.ring.PopBatch(batch.data(), batch.size());
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) {
        // The producer publishes its last records BEFORE setting stop_
        // (release/acquire pair), so one more pop observes everything.
        n = lane.ring.PopBatch(batch.data(), batch.size());
        if (n == 0) break;
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    shard.InsertBatch({batch.data(), n});
    lane.batches.fetch_add(1, std::memory_order_relaxed);
    // Release so a Flush() that acquire-reads `drained` also sees the
    // table mutations above.
    lane.drained.fetch_add(n, std::memory_order_release);
  }
}

uint64_t IngestPipeline::PushRun(Lane& lane, std::span<const Record> run) {
  uint64_t accepted = 0;
  uint64_t idle_yields = 0;
  while (!run.empty()) {
    size_t pushed = lane.ring.TryPushBatch(run);
    accepted += pushed;
    run = run.subspan(pushed);
    if (run.empty()) break;
    if (config_.backpressure == BackpressureMode::kDrop) {
      lane.dropped.fetch_add(run.size(), std::memory_order_relaxed);
      break;
    }
    if (pushed > 0) {
      idle_yields = 0;
    } else if (++idle_yields > config_.stall_yield_limit) {
      // kBlock escape hatch: the worker made no room for the whole
      // bounded wait — treat it as dead, surface the stall, and account
      // for the records we could not deliver.
      stalled_.store(true, std::memory_order_release);
      lane.dropped.fetch_add(run.size(), std::memory_order_relaxed);
      break;
    }
    std::this_thread::yield();  // kBlock: wait for the worker to drain
  }
  lane.enqueued.fetch_add(accepted, std::memory_order_relaxed);
  return accepted;
}

void IngestPipeline::Push(ItemId item, double time) {
  assert(!stopped_ && "Push after Stop()");
  const Record record{item, time};
  const uint64_t accepted =
      PushRun(*lanes_[sink_.ShardOf(item)], {&record, 1});
  MaybeCheckpoint(accepted);
}

void IngestPipeline::PushBatch(std::span<const Record> records) {
  assert(!stopped_ && "PushBatch after Stop()");
  for (auto& run : route_runs_) run.clear();
  for (const Record& record : records) {
    route_runs_[sink_.ShardOf(record.item)].push_back(record);
  }
  uint64_t accepted = 0;
  for (uint32_t s = 0; s < lanes_.size(); ++s) {
    if (!route_runs_[s].empty()) {
      accepted += PushRun(*lanes_[s], route_runs_[s]);
    }
  }
  MaybeCheckpoint(accepted);
}

bool IngestPipeline::Flush() {
  const auto start = std::chrono::steady_clock::now();
  bool complete = true;
  for (auto& lane : lanes_) {
    const uint64_t target = lane->enqueued.load(std::memory_order_relaxed);
    uint64_t last = lane->drained.load(std::memory_order_acquire);
    uint64_t idle_yields = 0;
    bool lane_complete = true;
    while (last < target) {
      if (++idle_yields > config_.stall_yield_limit) {
        // Bounded wait expired without progress: a dead worker must
        // surface as an error, not an infinite wait.
        stalled_.store(true, std::memory_order_release);
        complete = false;
        lane_complete = false;
        break;
      }
      std::this_thread::yield();
      const uint64_t now = lane->drained.load(std::memory_order_acquire);
      if (now != last) {
        last = now;
        idle_yields = 0;
      }
    }
    if (lane_complete) {
      lane->flushes.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (flush_duration_usec_ != nullptr) {
    flush_duration_usec_->Record(MicrosSince(start));
  }
  if (stalled_gauge_ != nullptr && !complete) stalled_gauge_->Set(1.0);
  return complete;
}

void IngestPipeline::AttachSnapshotStore(SnapshotStore* store) {
  snapshot_store_ = store;
  since_checkpoint_ = 0;
}

void IngestPipeline::MaybeCheckpoint(uint64_t accepted) {
  since_checkpoint_ += accepted;
  if (snapshot_store_ == nullptr || config_.checkpoint_every == 0) return;
  if (since_checkpoint_ < config_.checkpoint_every) return;
  Checkpoint();  // best-effort; failures are counted, feeding continues
}

bool IngestPipeline::Checkpoint(std::string* error) {
  assert(!stopped_ && "Checkpoint after Stop()");
  const auto start = std::chrono::steady_clock::now();
  // Reset the cadence even on failure so a persistent fault retries
  // once per interval instead of once per push.
  since_checkpoint_ = 0;
  if (snapshot_store_ == nullptr) {
    if (error != nullptr) *error = "no snapshot store attached";
    ++checkpoint_failures_;
    return false;
  }
  if (!Flush()) {
    if (error != nullptr) *error = "pipeline stalled; checkpoint skipped";
    ++checkpoint_failures_;
    return false;
  }
  // After a complete Flush every worker has applied its backlog and is
  // idle-polling an empty ring; only this (producer) thread can make
  // new records appear, so reading the shard tables here is safe.
  BinaryWriter writer;
  sink_.Serialize(writer);
  std::string save_error;
  const auto seq = snapshot_store_->Save(writer.data(), &save_error);
  if (!seq.has_value()) {
    if (error != nullptr) *error = save_error;
    ++checkpoint_failures_;
    return false;
  }
  ++checkpoints_taken_;
  last_checkpoint_seq_ = *seq;
  if (checkpoint_duration_usec_ != nullptr) {
    checkpoint_duration_usec_->Record(MicrosSince(start));
  }
  return true;
}

void IngestPipeline::AttachMetrics(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    flush_duration_usec_ = nullptr;
    checkpoint_duration_usec_ = nullptr;
    stalled_gauge_ = nullptr;
    return;
  }
  flush_duration_usec_ = &registry->HistogramOf(
      "ltc_ingest_flush_duration_usec",
      "Latency of Flush() barriers in microseconds");
  checkpoint_duration_usec_ = &registry->HistogramOf(
      "ltc_ingest_checkpoint_duration_usec",
      "Latency of successful checkpoints (flush + serialize + atomic "
      "save) in microseconds");
  stalled_gauge_ = &registry->GaugeOf(
      "ltc_ingest_stalled",
      "1 once any bounded wait expired on a dead/stuck worker (latched)");
  SampleMetrics();  // register the per-shard families up front
}

void IngestPipeline::SampleMetrics() {
  if (metrics_ == nullptr) return;
  telemetry::MetricsRegistry& registry = *metrics_;
  for (uint32_t s = 0; s < lanes_.size(); ++s) {
    const IngestShardStats stats = ShardStatsOf(s);
    const telemetry::Labels shard_label{{"shard", std::to_string(s)}};
    registry
        .CounterOf("ltc_ingest_enqueued_total",
                   "Records accepted into the shard's ring", shard_label)
        .SetFromSample(stats.enqueued);
    registry
        .CounterOf("ltc_ingest_dropped_total",
                   "Records discarded by kDrop backpressure or a stalled "
                   "kBlock push",
                   shard_label)
        .SetFromSample(stats.dropped);
    registry
        .CounterOf("ltc_ingest_drained_total",
                   "Records applied to the shard table", shard_label)
        .SetFromSample(stats.drained);
    registry
        .CounterOf("ltc_ingest_batches_total",
                   "InsertBatch calls the shard's worker issued", shard_label)
        .SetFromSample(stats.batches);
    registry
        .CounterOf("ltc_ingest_flushes_total",
                   "Flush() waits this shard's lane completed", shard_label)
        .SetFromSample(stats.flushes);
    registry
        .GaugeOf("ltc_ingest_queue_depth",
                 "Ring occupancy at sampling time (racy)", shard_label)
        .Set(static_cast<double>(stats.queue_depth));
    registry
        .GaugeOf("ltc_ingest_ring_capacity",
                 "Ring capacity in records", shard_label)
        .Set(static_cast<double>(stats.ring_capacity));
  }
  registry
      .CounterOf("ltc_ingest_checkpoints_total",
                 "Checkpoint attempts by result",
                 {{"result", "ok"}})
      .SetFromSample(checkpoints_taken_);
  registry
      .CounterOf("ltc_ingest_checkpoints_total",
                 "Checkpoint attempts by result",
                 {{"result", "error"}})
      .SetFromSample(checkpoint_failures_);
  stalled_gauge_->Set(stalled() ? 1.0 : 0.0);
}

void IngestPipeline::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Release-publish after the last push; workers acquire-read stop_ and
  // then drain whatever remains (see WorkerLoop). join() makes every
  // worker's table mutations visible to this thread.
  stop_.store(true, std::memory_order_release);
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
}

uint64_t IngestPipeline::TotalEnqueued() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->enqueued.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t IngestPipeline::TotalDropped() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

IngestShardStats IngestPipeline::ShardStatsOf(uint32_t shard) const {
  if (shard >= lanes_.size()) {
    throw std::out_of_range("IngestPipeline::ShardStatsOf: shard " +
                            std::to_string(shard) + " >= num_shards " +
                            std::to_string(lanes_.size()));
  }
  const Lane& lane = *lanes_[shard];
  IngestShardStats stats;
  stats.enqueued = lane.enqueued.load(std::memory_order_relaxed);
  stats.dropped = lane.dropped.load(std::memory_order_relaxed);
  stats.drained = lane.drained.load(std::memory_order_relaxed);
  stats.batches = lane.batches.load(std::memory_order_relaxed);
  stats.flushes = lane.flushes.load(std::memory_order_relaxed);
  stats.queue_depth = lane.ring.SizeApprox();
  stats.ring_capacity = lane.ring.capacity();
  return stats;
}

}  // namespace ltc
