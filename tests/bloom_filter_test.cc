// Unit tests for the standard Bloom filter substrate.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sketch/bloom_filter.h"

namespace ltc {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1 << 14, 4, 1);
  for (ItemId i = 1; i <= 1000; ++i) bf.Add(i);
  for (ItemId i = 1; i <= 1000; ++i) {
    EXPECT_TRUE(bf.MayContain(i)) << "item " << i;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  constexpr size_t kBits = 1 << 15;
  constexpr size_t kItems = 2'000;
  uint32_t k = BloomFilter::OptimalNumHashes(kBits, kItems);
  BloomFilter bf(kBits, k, 2);
  for (ItemId i = 1; i <= kItems; ++i) bf.Add(i);

  int fp = 0;
  constexpr int kProbes = 100'000;
  for (int i = 0; i < kProbes; ++i) {
    if (bf.MayContain(static_cast<ItemId>(1'000'000 + i))) ++fp;
  }
  double observed = static_cast<double>(fp) / kProbes;
  double predicted = bf.FalsePositiveRate(kItems);
  EXPECT_LT(observed, predicted * 2 + 0.001);
  EXPECT_GT(observed + 0.001, predicted / 4);
}

TEST(BloomFilter, TestAndAddSemantics) {
  BloomFilter bf(1 << 12, 3, 3);
  EXPECT_FALSE(bf.TestAndAdd(42));  // first sight
  EXPECT_TRUE(bf.TestAndAdd(42));   // now present
  EXPECT_TRUE(bf.MayContain(42));
}

TEST(BloomFilter, ClearEmptiesEverything) {
  BloomFilter bf(1 << 12, 3, 4);
  for (ItemId i = 1; i <= 500; ++i) bf.Add(i);
  bf.Clear();
  int positives = 0;
  for (ItemId i = 1; i <= 500; ++i) positives += bf.MayContain(i);
  EXPECT_EQ(positives, 0);
}

TEST(BloomFilter, OptimalNumHashesFormula) {
  // m/n = 10 bits per item -> k = round(10 ln2) = 7.
  EXPECT_EQ(BloomFilter::OptimalNumHashes(10'000, 1'000), 7u);
  // Degenerate inputs stay sane.
  EXPECT_EQ(BloomFilter::OptimalNumHashes(100, 0), 1u);
  EXPECT_GE(BloomFilter::OptimalNumHashes(64, 10'000), 1u);
}

TEST(BloomFilter, SeedsGiveIndependentFilters) {
  BloomFilter a(1 << 10, 3, 100);
  BloomFilter b(1 << 10, 3, 200);
  for (ItemId i = 1; i <= 50; ++i) a.Add(i);
  // b never saw the items; with only 50 items in 1024 bits its false
  // positive rate is tiny, so almost none should appear present.
  int positives = 0;
  for (ItemId i = 1; i <= 50; ++i) positives += b.MayContain(i);
  EXPECT_LE(positives, 2);
}

TEST(BloomFilter, RoundsBitsUpToWord) {
  BloomFilter bf(65, 1, 0);
  EXPECT_EQ(bf.num_bits(), 128u);
  EXPECT_EQ(bf.MemoryBytes(), 16u);
}

TEST(BloomFilter, SaturatedFilterReportsEverything) {
  BloomFilter bf(64, 4, 5);
  for (ItemId i = 1; i <= 1'000; ++i) bf.Add(i);
  // With 1000 items in 64 bits every probe lands on set bits.
  int positives = 0;
  for (ItemId i = 5'000; i < 5'100; ++i) positives += bf.MayContain(i);
  EXPECT_GT(positives, 95);
  EXPECT_NEAR(bf.FalsePositiveRate(1'000), 1.0, 1e-6);
}

}  // namespace
}  // namespace ltc
