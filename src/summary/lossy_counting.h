// Lossy Counting (Manku & Motwani, 2002) — the paper's second
// counter-based frequent-items baseline (§II-A).
//
// The stream is processed in windows of width w = ceil(1/ε). Each tracked
// entry carries (f, Δ) where Δ bounds the count missed before tracking
// began; at every window boundary entries with f + Δ <= b_current are
// pruned. Guarantees f <= f̂_upper = f + Δ and f̂ >= f - εN.
//
// For the paper's fixed-memory head-to-head the adapter in src/topk sizes
// ε from the memory budget and this class additionally enforces a hard
// entry cap (dropping the smallest f + Δ first) so a budget is never
// exceeded on adversarial inputs; the cap is off by default.

#ifndef LTC_SUMMARY_LOSSY_COUNTING_H_
#define LTC_SUMMARY_LOSSY_COUNTING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/stream.h"

namespace ltc {

class LossyCounting {
 public:
  struct Entry {
    ItemId item;
    uint64_t count;  // f, occurrences since tracking began
    uint64_t delta;  // Δ, maximum undercount
  };

  /// \param epsilon    error parameter; window width = ceil(1/ε)
  /// \param max_entries hard cap on tracked entries (0 = uncapped, the
  ///                    textbook algorithm)
  explicit LossyCounting(double epsilon, size_t max_entries = 0);

  void Insert(ItemId item);

  /// Estimated count f̂ = f + Δ (upper bound); 0 when not tracked.
  uint64_t Estimate(ItemId item) const;

  bool IsTracked(ItemId item) const { return entries_.count(item) > 0; }

  /// Items with estimated count >= threshold, the classic ε-approximate
  /// frequent-items report.
  std::vector<Entry> ItemsAbove(uint64_t threshold) const;

  /// The k entries with the largest f + Δ, descending.
  std::vector<Entry> TopK(size_t k) const;

  size_t size() const { return entries_.size(); }
  double epsilon() const { return epsilon_; }
  uint64_t current_bucket() const { return current_bucket_; }
  uint64_t items_processed() const { return processed_; }

  /// Model bytes per entry: 8B item + 4B count + 4B delta.
  static constexpr size_t BytesPerEntry() { return 16; }
  static size_t EntriesForMemory(size_t bytes) {
    size_t n = bytes / BytesPerEntry();
    return n == 0 ? 1 : n;
  }

 private:
  struct Cell {
    uint64_t count;
    uint64_t delta;
  };

  void PruneWindow();
  void EnforceCap();

  double epsilon_;
  uint64_t window_;          // w = ceil(1/ε)
  size_t max_entries_;
  uint64_t processed_ = 0;
  uint64_t current_bucket_ = 1;  // b_current
  std::unordered_map<ItemId, Cell> entries_;
};

}  // namespace ltc

#endif  // LTC_SUMMARY_LOSSY_COUNTING_H_
