// Reading and writing item traces as text, so the library (and the
// ltc_cli tool) can run on user data and experiments can be exported for
// exact replay.
//
// Format: one record per line, either
//     <item>               (timestamps become the line index)
//     <item>,<time>        (explicit seconds; must be nondecreasing)
// where <item> is a decimal integer ID or any other token (interned to an
// ID via StringInterner). Lines starting with '#' and blank lines are
// skipped.

#ifndef LTC_STREAM_TRACE_IO_H_
#define LTC_STREAM_TRACE_IO_H_

#include <optional>
#include <string>

#include "stream/interner.h"
#include "stream/stream.h"

namespace ltc {

struct TraceReadResult {
  Stream stream;
  // Non-empty iff any token was non-numeric; maps IDs back to tokens.
  StringInterner interner;
  bool used_interner = false;
};

/// Parses a trace. On failure returns nullopt and, if `error` is given,
/// a one-line description with the offending line number.
///
/// \param num_periods  how many periods to divide the trace into
/// \param duration     total time span; 0 = infer (max time, or the
///                     record count for index-timestamped traces)
std::optional<TraceReadResult> ReadTrace(const std::string& path,
                                         uint32_t num_periods,
                                         double duration = 0.0,
                                         std::string* error = nullptr);

/// Parses from an in-memory buffer (used by tests and stdin handling).
std::optional<TraceReadResult> ReadTraceFromString(const std::string& text,
                                                   uint32_t num_periods,
                                                   double duration = 0.0,
                                                   std::string* error =
                                                       nullptr);

/// Renders a stream as "<item>,<time>" lines with a header comment.
std::string TraceToString(const Stream& stream);

/// Writes a stream as "<item>,<time>" lines with a header comment.
bool WriteTrace(const Stream& stream, const std::string& path);

}  // namespace ltc

#endif  // LTC_STREAM_TRACE_IO_H_
