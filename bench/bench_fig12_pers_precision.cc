// Fig. 12 — precision on finding persistent items (§V-G), α=0 β=1:
// (a)–(c) precision vs memory 25–300 KB, k=100, on CAIDA / Network /
// Social; (d) precision vs k at 100 KB on Network.
// Suite: LTC, BF+CM, BF+CU, BF+Count at the shared budget, plus PIE at
// the budget PER PERIOD (T× total, §V-C).

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  const std::vector<size_t> memories = {25, 50, 100, 200, 300};

  const char* panels[] = {"(a) CAIDA", "(b) Network", "(c) Social"};
  auto datasets = LoadAllDatasets();
  for (size_t i = 0; i < datasets.size(); ++i) {
    auto factory = [&](size_t memory_bytes, size_t k) {
      return PersistentSuite(memory_bytes, k, datasets[i].stream,
                             /*include_pie=*/true);
    };
    PrintFigure(std::string("Fig 12") + panels[i] +
                    ": precision vs memory, persistent items (k=100; PIE "
                    "gets T x memory)",
                SweepMemory(datasets[i], memories, factory, 100, 0.0, 1.0,
                            Metric::kPrecision));
  }

  auto network_factory = [&](size_t memory_bytes, size_t k) {
    return PersistentSuite(memory_bytes, k, datasets[1].stream,
                           /*include_pie=*/true);
  };
  PrintFigure(
      "Fig 12(d): precision vs k, persistent items (Network, 100KB)",
      SweepK(datasets[1], 100 * 1024, {100, 250, 500, 750, 1000},
             network_factory, 0.0, 1.0, Metric::kPrecision));
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
