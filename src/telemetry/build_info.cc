#include "telemetry/build_info.h"

#include <cstdlib>

#ifndef LTC_GIT_SHA
#define LTC_GIT_SHA "unknown"
#endif

#ifndef LTC_VERSION
#define LTC_VERSION "0"
#endif

namespace ltc {
namespace telemetry {

std::string BuildGitSha() {
  const char* env = std::getenv("LTC_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
  return LTC_GIT_SHA;
}

std::string BuildVersion() { return LTC_VERSION; }

void RegisterBuildInfo(MetricsRegistry& registry,
                       const std::string& probe_backend) {
  registry
      .GaugeOf("ltc_build_info",
               "Build identity; always 1 — the labels carry the data.",
               {{"git_sha", BuildGitSha()},
                {"probe_backend", probe_backend},
                {"version", BuildVersion()}})
      .Set(1.0);
}

}  // namespace telemetry
}  // namespace ltc
