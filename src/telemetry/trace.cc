#include "telemetry/trace.h"

#ifdef LTC_TRACING

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <unordered_map>

// GCC's ThreadSanitizer cannot model atomic_thread_fence and warns
// fatally under -Werror. Every seqlock slot field is individually
// atomic, so tsan sees no data race either way — the fences only pin
// the seqlock's publish/validate ordering, which tsan does not check.
#if defined(__SANITIZE_THREAD__) && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wtsan"
#endif

namespace ltc {
namespace telemetry {

namespace {

// The process-wide active recorder. Relaxed loads suffice for the idle
// check; Install publishes with release so a freshly-constructed
// recorder's fields are visible to spans that observe the pointer.
std::atomic<FlightRecorder*> g_active{nullptr};

// Each recorder gets a distinct generation so the thread-local ring
// cache can't follow a stale pointer into a recorder that was destroyed
// and another allocated at the same address.
std::atomic<uint64_t> g_recorder_generation{1};

// The innermost live span on this thread (invalid when none).
thread_local TraceContext t_current_context;

struct RingCache {
  uint64_t generation = 0;
  void* ring = nullptr;
};
thread_local RingCache t_ring_cache;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out.append(buf);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
}

}  // namespace

// One committed span. Every field is an atomic accessed relaxed, with
// the per-slot `seq` (odd = write in progress, even = stable) ordered
// by fences — the dumper re-checks seq after reading and discards torn
// slots, so no lock is ever taken and TSan sees only atomics.
struct FlightRecorder::Slot {
  std::atomic<uint64_t> seq{0};  // 0 = never written
  std::atomic<uint64_t> name{0};  // const char* literal, stored as u64
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_id{0};
  std::atomic<uint64_t> start_usec{0};
  std::atomic<uint64_t> end_usec{0};
  std::atomic<uint64_t> attr_count{0};
  std::atomic<uint64_t> attr_keys[Span::kMaxAttrs] = {};
  std::atomic<uint64_t> attr_vals[Span::kMaxAttrs] = {};
};

// One writing thread's ring. `next` counts commits forever; the slot is
// next % spans_per_thread, so the ring holds the newest spans.
struct FlightRecorder::Ring {
  std::unique_ptr<Slot[]> slots;
  std::atomic<uint64_t> next{0};
};

FlightRecorder::FlightRecorder(Clock* clock, size_t spans_per_thread)
    : clock_(clock != nullptr ? clock : &SystemClock()),
      spans_per_thread_(spans_per_thread > 0 ? spans_per_thread : 1),
      rings_(new Ring[kMaxThreads]),
      next_id_(0),
      generation_(g_recorder_generation.fetch_add(1,
                                                  std::memory_order_relaxed)) {
  for (size_t i = 0; i < kMaxThreads; ++i) {
    rings_[i].slots.reset(new Slot[spans_per_thread_]);
  }
  // Seed ids with pid + time: ids from different processes must not
  // alias when their dumps are merged for cross-process linkage.
  const uint64_t seed =
      SplitMix64((static_cast<uint64_t>(getpid()) << 32) ^
                 clock_->NowMicros());
  next_id_.store(seed, std::memory_order_relaxed);
}

FlightRecorder::~FlightRecorder() {
  if (g_active.load(std::memory_order_relaxed) == this) {
    Install(nullptr);
  }
}

void FlightRecorder::Install(FlightRecorder* recorder) {
  g_active.store(recorder, std::memory_order_release);
}

FlightRecorder* FlightRecorder::active() {
  return g_active.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::NewId() {
  const uint64_t raw = next_id_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t id = SplitMix64(raw);
  return id != 0 ? id : 1;
}

FlightRecorder::Ring* FlightRecorder::RingOfThisThread() {
  if (t_ring_cache.generation == generation_) {
    return static_cast<Ring*>(t_ring_cache.ring);
  }
  const uint64_t index =
      rings_claimed_.fetch_add(1, std::memory_order_relaxed);
  Ring* ring = index < kMaxThreads ? &rings_[index] : nullptr;
  t_ring_cache.generation = generation_;
  t_ring_cache.ring = ring;
  return ring;
}

void FlightRecorder::Record(const char* name, uint64_t trace_id,
                            uint64_t span_id, uint64_t parent_id,
                            uint64_t start_usec, uint64_t end_usec,
                            uint32_t attr_count, const char* const* attr_keys,
                            const uint64_t* attr_vals) {
  Ring* ring = RingOfThisThread();
  if (ring == nullptr) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t pos = ring->next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring->slots[pos % spans_per_thread_];
  // Seqlock write: bump to odd, fence, write fields, publish even.
  const uint64_t s = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(reinterpret_cast<uint64_t>(name),
                  std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_id.store(parent_id, std::memory_order_relaxed);
  slot.start_usec.store(start_usec, std::memory_order_relaxed);
  slot.end_usec.store(end_usec, std::memory_order_relaxed);
  if (attr_count > Span::kMaxAttrs) attr_count = Span::kMaxAttrs;
  slot.attr_count.store(attr_count, std::memory_order_relaxed);
  for (uint32_t i = 0; i < attr_count; ++i) {
    slot.attr_keys[i].store(reinterpret_cast<uint64_t>(attr_keys[i]),
                            std::memory_order_relaxed);
    slot.attr_vals[i].store(attr_vals[i], std::memory_order_relaxed);
  }
  slot.seq.store(s + 2, std::memory_order_release);
}

namespace {

struct DumpedSpan {
  const char* name = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_usec = 0;
  uint64_t end_usec = 0;
  uint32_t attr_count = 0;
  const char* attr_keys[Span::kMaxAttrs] = {};
  uint64_t attr_vals[Span::kMaxAttrs] = {};
  uint32_t tid = 0;
};

}  // namespace

std::vector<FlightRecorder::Exemplar> FlightRecorder::WorstSpans() const {
  std::unordered_map<const char*, Exemplar> worst;
  const uint64_t claimed =
      std::min<uint64_t>(rings_claimed_.load(std::memory_order_relaxed),
                         kMaxThreads);
  for (uint64_t r = 0; r < claimed; ++r) {
    for (size_t i = 0; i < spans_per_thread_; ++i) {
      const Slot& slot = rings_[r].slots[i];
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;
      const char* name = reinterpret_cast<const char*>(
          slot.name.load(std::memory_order_relaxed));
      if (name == nullptr) continue;
      const uint64_t trace_id = slot.trace_id.load(std::memory_order_relaxed);
      const uint64_t span_id = slot.span_id.load(std::memory_order_relaxed);
      const uint64_t start = slot.start_usec.load(std::memory_order_relaxed);
      const uint64_t end = slot.end_usec.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      const uint64_t duration = end >= start ? end - start : 0;
      Exemplar& e = worst[name];
      if (e.name.empty() || duration > e.duration_usec) {
        e.name = name;
        e.trace_id = trace_id;
        e.span_id = span_id;
        e.duration_usec = duration;
      }
    }
  }
  std::vector<Exemplar> out;
  out.reserve(worst.size());
  for (auto& kv : worst) out.push_back(std::move(kv.second));
  std::sort(out.begin(), out.end(),
            [](const Exemplar& a, const Exemplar& b) { return a.name < b.name; });
  return out;
}

std::string FlightRecorder::DumpChromeJson(size_t max_bytes) const {
  std::vector<DumpedSpan> spans;
  const uint64_t claimed =
      std::min<uint64_t>(rings_claimed_.load(std::memory_order_relaxed),
                         kMaxThreads);
  for (uint64_t r = 0; r < claimed; ++r) {
    for (size_t i = 0; i < spans_per_thread_; ++i) {
      const Slot& slot = rings_[r].slots[i];
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;
      DumpedSpan span;
      span.name = reinterpret_cast<const char*>(
          slot.name.load(std::memory_order_relaxed));
      span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      span.span_id = slot.span_id.load(std::memory_order_relaxed);
      span.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      span.start_usec = slot.start_usec.load(std::memory_order_relaxed);
      span.end_usec = slot.end_usec.load(std::memory_order_relaxed);
      span.attr_count = static_cast<uint32_t>(
          std::min<uint64_t>(slot.attr_count.load(std::memory_order_relaxed),
                             Span::kMaxAttrs));
      for (uint32_t a = 0; a < span.attr_count; ++a) {
        span.attr_keys[a] = reinterpret_cast<const char*>(
            slot.attr_keys[a].load(std::memory_order_relaxed));
        span.attr_vals[a] = slot.attr_vals[a].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      span.tid = static_cast<uint32_t>(r);
      spans.push_back(span);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const DumpedSpan& a, const DumpedSpan& b) {
              return a.start_usec < b.start_usec;
            });

  const uint64_t pid = static_cast<uint64_t>(getpid());
  std::vector<std::string> events;
  events.reserve(spans.size());
  for (const DumpedSpan& span : spans) {
    std::string e = "{\"name\":\"";
    AppendJsonEscaped(e, span.name != nullptr ? span.name : "?");
    char buf[160];
    const uint64_t duration =
        span.end_usec >= span.start_usec ? span.end_usec - span.start_usec : 0;
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"ltc\",\"ph\":\"X\",\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64 ",\"pid\":%" PRIu64 ",\"tid\":%u",
                  span.start_usec, duration, pid, span.tid);
    e.append(buf);
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"trace_id\":\"0x%016" PRIx64
                  "\",\"span_id\":\"0x%016" PRIx64
                  "\",\"parent_id\":\"0x%016" PRIx64 "\"",
                  span.trace_id, span.span_id, span.parent_id);
    e.append(buf);
    for (uint32_t a = 0; a < span.attr_count; ++a) {
      e.append(",\"");
      AppendJsonEscaped(e, span.attr_keys[a] != nullptr ? span.attr_keys[a]
                                                        : "?");
      std::snprintf(buf, sizeof(buf), "\":%" PRIu64, span.attr_vals[a]);
      e.append(buf);
    }
    e.append("}}");
    events.push_back(std::move(e));
  }

  // Budgeted output keeps the NEWEST events: walk backwards until the
  // envelope would overflow, then emit the kept suffix in time order.
  const char* kPrefix = "{\"traceEvents\":[";
  char footer[128];
  size_t first = 0;
  bool truncated = false;
  if (max_bytes > 0) {
    size_t total = std::strlen(kPrefix) + sizeof(footer);
    first = events.size();
    while (first > 0) {
      const size_t cost = events[first - 1].size() + 1;  // + comma
      if (total + cost > max_bytes) break;
      total += cost;
      --first;
    }
    truncated = first > 0;
  }
  std::snprintf(footer, sizeof(footer),
                "],\"otherData\":{\"pid\":%" PRIu64
                ",\"truncated\":%s,\"dropped_spans\":%" PRIu64 "}}",
                pid, truncated ? "true" : "false",
                dropped_spans_.load(std::memory_order_relaxed));
  std::string out = kPrefix;
  for (size_t i = first; i < events.size(); ++i) {
    if (i > first) out.push_back(',');
    out.append(events[i]);
  }
  out.append(footer);
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path,
                                std::string* error) const {
  const std::string json = DumpChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "open failed: " + path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool flush_ok = std::fclose(f) == 0;
  if (written != json.size() || !flush_ok) {
    if (error != nullptr) *error = "short write: " + path;
    return false;
  }
  return true;
}

Span::Span(const char* name, TraceContext remote_parent) {
  FlightRecorder* recorder = FlightRecorder::active();
  if (recorder == nullptr) return;
  recorder_ = recorder;
  name_ = name;
  prev_current_ = t_current_context;
  if (remote_parent.valid()) {
    trace_id_ = remote_parent.trace_id;
    parent_id_ = remote_parent.span_id;
  } else if (prev_current_.valid()) {
    trace_id_ = prev_current_.trace_id;
    parent_id_ = prev_current_.span_id;
  } else {
    trace_id_ = recorder->NewId();
  }
  span_id_ = recorder->NewId();
  start_usec_ = recorder->clock()->NowMicros();
  t_current_context = {trace_id_, span_id_};
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  t_current_context = prev_current_;
  const uint64_t end_usec = recorder_->clock()->NowMicros();
  recorder_->Record(name_, trace_id_, span_id_, parent_id_, start_usec_,
                    end_usec, attr_count_, attr_keys_, attr_vals_);
}

void Span::AddAttr(const char* key, uint64_t value) {
  if (recorder_ == nullptr || attr_count_ >= kMaxAttrs) return;
  attr_keys_[attr_count_] = key;
  attr_vals_[attr_count_] = value;
  attr_count_++;
}

TraceContext CurrentTraceContext() { return t_current_context; }

}  // namespace telemetry
}  // namespace ltc

#endif  // LTC_TRACING
