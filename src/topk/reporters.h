// Reporter adapters: every compared algorithm behind the harness
// interface, with the paper's §V-C memory-accounting rules baked in
// (sketch-based top-k gets a size-k heap out of its budget; persistent
// sketch baselines give half the budget to a per-period Bloom filter; PIE
// gets its budget *per period*; significant two-structure combos split the
// budget evenly).

#ifndef LTC_TOPK_REPORTERS_H_
#define LTC_TOPK_REPORTERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ltc.h"
#include "persistent/pie.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/topk_heap.h"
#include "summary/lossy_counting.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"
#include "topk/interfaces.h"

namespace ltc {

/// Which sketch a sketch-based reporter uses internally.
enum class SketchKind { kCountMin, kCu, kCount };

std::string SketchKindName(SketchKind kind);

// ---------------------------------------------------------------------------
// LTC itself.

class LtcReporter : public SignificantReporter {
 public:
  /// `config.memory_bytes`, α/β and the optimization flags are honoured;
  /// the period pacing fields are overwritten from (num_periods, duration)
  /// so the CLOCK sweep matches the stream's period structure.
  LtcReporter(const LtcConfig& config, uint32_t num_periods, double duration);

  void Insert(ItemId item, double time, uint32_t period) override;
  /// LTC ignores the harness period index (its CLOCK paces itself), so
  /// the batch rides the core fast path directly.
  void InsertBatch(std::span<const Record> records,
                   const Stream& /*periods*/) override {
    ltc_.InsertBatch(records);
  }
  void Finish() override { ltc_.Finalize(); }
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override {
    return ltc_.QuerySignificance(item);
  }
  std::string name() const override { return "LTC"; }

  const Ltc& ltc() const { return ltc_; }

 private:
  static LtcConfig Paced(LtcConfig config, uint32_t num_periods,
                         double duration);
  Ltc ltc_;
};

// ---------------------------------------------------------------------------
// Frequent-items baselines (§V-F): task metric = frequency.

class SpaceSavingReporter : public SignificantReporter {
 public:
  explicit SpaceSavingReporter(size_t memory_bytes)
      : ss_(SpaceSaving::CountersForMemory(memory_bytes)) {}

  void Insert(ItemId item, double, uint32_t) override { ss_.Insert(item); }
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override {
    return static_cast<double>(ss_.Estimate(item));
  }
  std::string name() const override { return "SS"; }

 private:
  SpaceSaving ss_;
};

class LossyCountingReporter : public SignificantReporter {
 public:
  explicit LossyCountingReporter(size_t memory_bytes);

  void Insert(ItemId item, double, uint32_t) override { lc_.Insert(item); }
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override {
    return static_cast<double>(lc_.Estimate(item));
  }
  std::string name() const override { return "LC"; }

 private:
  LossyCounting lc_;
};

class MisraGriesReporter : public SignificantReporter {
 public:
  explicit MisraGriesReporter(size_t memory_bytes)
      : mg_(MisraGries::CountersForMemory(memory_bytes)) {}

  void Insert(ItemId item, double, uint32_t) override { mg_.Insert(item); }
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override {
    return static_cast<double>(mg_.Estimate(item));
  }
  std::string name() const override { return "MG"; }

 private:
  MisraGries mg_;
};

/// Sketch + size-k min-heap, the paper's sketch-based frequent-items
/// recipe ("the size of the heap is k, and we allocate the rest memory to
/// the sketch").
class SketchHeapFrequentReporter : public SignificantReporter {
 public:
  SketchHeapFrequentReporter(SketchKind kind, size_t memory_bytes, size_t k,
                             uint32_t depth = 3, uint64_t seed = 0);

  void Insert(ItemId item, double, uint32_t) override;
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override;
  std::string name() const override { return SketchKindName(kind_); }

 private:
  uint64_t SketchQuery(ItemId item) const;

  SketchKind kind_;
  std::unique_ptr<CounterMatrixSketch> counter_sketch_;  // CM or CU
  std::unique_ptr<CountSketch> count_sketch_;            // Count
  TopKHeap heap_;
};

// ---------------------------------------------------------------------------
// Persistent-items baselines (§V-G): task metric = persistency.

/// Sketch adapted to persistency: half the budget is a Bloom filter that
/// deduplicates within the current period (cleared at each boundary), the
/// other half is sketch + heap counting one hit per (item, period).
class BfSketchPersistentReporter : public SignificantReporter {
 public:
  BfSketchPersistentReporter(SketchKind kind, size_t memory_bytes, size_t k,
                             uint32_t depth = 3, uint64_t seed = 0);

  void Insert(ItemId item, double time, uint32_t period) override;
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override;
  std::string name() const override {
    return "BF+" + SketchKindName(kind_);
  }

 private:
  uint64_t SketchQuery(ItemId item) const;

  SketchKind kind_;
  BloomFilter bf_;
  std::unique_ptr<CounterMatrixSketch> counter_sketch_;
  std::unique_ptr<CountSketch> count_sketch_;
  TopKHeap heap_;
  uint32_t current_period_ = 0;
};

/// Counter-based summary adapted to persistency the same way (§II-B's
/// recipe applied to Space-Saving): half the budget deduplicates within
/// the period via a Bloom filter, the other half is a Space-Saving table
/// over (item, period) first-appearances.
class BfSpaceSavingPersistentReporter : public SignificantReporter {
 public:
  BfSpaceSavingPersistentReporter(size_t memory_bytes, uint64_t seed = 0)
      : bf_(std::max<size_t>(64, memory_bytes / 2 * 8), 4, seed ^ 0xb55),
        ss_(SpaceSaving::CountersForMemory(memory_bytes -
                                           memory_bytes / 2)) {}

  void Insert(ItemId item, double, uint32_t period) override {
    if (period != current_period_) {
      bf_.Clear();
      current_period_ = period;
    }
    if (!bf_.TestAndAdd(item)) ss_.Insert(item);
  }
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override {
    return static_cast<double>(ss_.Estimate(item));
  }
  std::string name() const override { return "BF+SS"; }

 private:
  BloomFilter bf_;
  SpaceSaving ss_;
  uint32_t current_period_ = 0;
};

/// PIE. Per §V-C it receives `memory_bytes` for EVERY period. Decoding
/// happens once in Finish().
class PieReporter : public SignificantReporter {
 public:
  PieReporter(size_t memory_bytes_per_period, uint32_t num_periods,
              uint64_t seed = 0);

  void Insert(ItemId item, double, uint32_t period) override {
    pie_.Insert(item, period);
  }
  void Finish() override;
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override;
  std::string name() const override { return "PIE"; }

 private:
  Pie pie_;
  std::vector<Pie::Report> decoded_;
};

// ---------------------------------------------------------------------------
// Significant-items baseline (§V-H): no prior art exists, so the paper
// combines the best frequent and best persistent structures; the budget is
// split evenly and candidates are scored by α·f̂ + β·p̂.

class CombinedSignificantReporter : public SignificantReporter {
 public:
  CombinedSignificantReporter(SketchKind kind, size_t memory_bytes, size_t k,
                              double alpha, double beta, uint64_t seed = 0);

  void Insert(ItemId item, double time, uint32_t period) override;
  std::vector<TopKEntry> TopK(size_t k) const override;
  double Estimate(ItemId item) const override;
  std::string name() const override {
    return SketchKindName(kind_) + "+" + SketchKindName(kind_);
  }

 private:
  SketchKind kind_;
  double alpha_;
  double beta_;
  SketchHeapFrequentReporter frequent_;
  BfSketchPersistentReporter persistent_;
};

}  // namespace ltc

#endif  // LTC_TOPK_REPORTERS_H_
