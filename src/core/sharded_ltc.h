// Hash-partitioned LTC for multi-core / distributed ingestion.
//
// The paper's congestion use case (§I Use Case 3) wants persistent flows
// identified "all over the data center" — i.e. many vantage points, one
// answer. ShardedLtc partitions items across S independent LTC tables
// (budget split evenly) by an item hash that is independent of the
// per-table bucket hash. Because an item always lands in the same shard,
// every per-item guarantee of a single table carries over verbatim, and
// the global top-k is the k best of the union of per-shard reports.
//
// Threading: the class itself is not synchronized; the intended parallel
// pattern is one thread per shard, each feeding shard(i) with the records
// the router assigns to it. ingest/ingest_pipeline.h packages exactly
// that — a router thread hashing records into per-shard SPSC rings, one
// worker per shard draining in batches — and
// tests/ingest_pipeline_test.cc pins that its final state is identical to
// sequential Insert calls.

#ifndef LTC_CORE_SHARDED_LTC_H_
#define LTC_CORE_SHARDED_LTC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/serial.h"
#include "core/ltc.h"
#include "core/significance_estimator.h"

namespace ltc {

class ShardedLtc final : public SignificanceEstimator {
 public:
  /// \param config      per-table configuration; memory_bytes is the
  ///                    TOTAL budget, split evenly across shards
  /// \param num_shards  S >= 1
  ShardedLtc(const LtcConfig& config, uint32_t num_shards);

  /// Which shard an item belongs to (stable, seed-derived).
  uint32_t ShardOf(ItemId item) const;

  /// Routes to the owning shard. Not thread-safe; for parallel ingestion
  /// feed each shard from its own thread via shard(), or use
  /// ingest::IngestPipeline.
  void Insert(ItemId item, double time = 0.0) override;

  /// Routed batch insertion: records are partitioned into per-shard runs
  /// (preserving each shard's arrival order, so the result is identical
  /// to one Insert per record) and each shard consumes its run through
  /// Ltc::InsertBatch's hoisted loop.
  void InsertBatch(std::span<const Record> records) override;

  void Finalize() override;

  /// Global top-k: the k most significant entries of the shard union.
  std::vector<Ltc::Report> TopK(size_t k) const override;

  double QuerySignificance(ItemId item) const override;
  uint64_t EstimateFrequency(ItemId item) const override;
  uint64_t EstimatePersistency(ItemId item) const override;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  Ltc& shard(uint32_t i) { return shards_[i]; }
  const Ltc& shard(uint32_t i) const { return shards_[i]; }

  size_t MemoryBytes() const override;

  /// True iff every shard's structural invariants hold.
  bool CheckInvariants() const;

  /// Checkpointing: serializes the router seed and every shard.
  void Serialize(BinaryWriter& writer) const;
  static std::optional<ShardedLtc> Deserialize(BinaryReader& reader);

  /// Read-snapshot seam (docs/SERVING.md): a bit-identical deep copy of
  /// the whole sharded table, with the transient audit/metrics
  /// attachments detached (they belong to the live table's feeder
  /// threads). Call only at a quiescent barrier — after
  /// IngestPipeline::Flush()/Stop(), or from the single feeding thread
  /// — then hand the clone to a ReadSnapshotHub so concurrent readers
  /// query the frozen image while ingest continues on the live table.
  ShardedLtc CloneAtBarrier() const;

#ifdef LTC_AUDIT
  /// Attaches a per-shard ground-truth oracle (see core/audit.h). Each
  /// shard paces its CLOCK on its own substream, so in count-based mode
  /// the truth must be computed with the per-shard period length — build
  /// the oracle from shard(i).config(), not from the global config.
  void AttachAuditOracle(uint32_t shard_index, const AuditOracle* oracle) {
    shards_[shard_index].AttachAuditOracle(oracle);
  }
#endif

#ifdef LTC_METRICS
  /// Attaches a hot-path metrics sink to one shard (one sink per shard —
  /// the sink is written by whichever thread feeds that shard, so sharing
  /// a sink across shards would race). See core/ltc_metrics_sink.h.
  void AttachMetricsSink(uint32_t shard_index, LtcMetricsSink* sink) {
    shards_[shard_index].AttachMetricsSink(sink);
  }
#endif

 private:
  ShardedLtc() = default;  // Deserialize constructs piecewise

  uint64_t route_seed_ = 0;
  std::vector<Ltc> shards_;
  // Per-shard routing runs reused across InsertBatch calls (capacity is
  // retained, so steady-state batches allocate nothing).
  std::vector<std::vector<Record>> batch_runs_;
};

}  // namespace ltc

#endif  // LTC_CORE_SHARDED_LTC_H_
