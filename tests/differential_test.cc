// Differential oracle harness for the LTC family (see
// src/testing/trace_fuzzer.h and docs/TESTING.md).
//
// Every (InitPolicy × PeriodMode × Deviation-Eliminator) combination runs
// a seeded 10k-operation trace against Ltc, ShardedLtc and WindowedLtc,
// diffing every answer against ExactSignificanceOracle; a divergence is
// shrunk and reported with a replayable tools/ltc_fuzz command line.
// Metamorphic companions pin sharded-vs-routed equality and the exactness
// of MergeFrom on item-partitioned inputs. In LTC_AUDIT builds the traces
// additionally arm the after-insert hooks, and a lying oracle proves the
// hooks actually fire.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sharded_ltc.h"
#include "core/windowed_ltc.h"
#include "metrics/ground_truth.h"
#include "metrics/significance_oracle.h"
#include "stream/generators.h"
#include "testing/trace_fuzzer.h"

namespace ltc {
namespace {

std::string FailureText(const FuzzFailure& failure) {
  return "op " + std::to_string(failure.op_index) + "/" +
         std::to_string(failure.trace_size) + ": " + failure.message +
         "\nreplay: " + failure.replay_command;
}

// ------------------------------------------------- the fuzz grid proper

struct DiffParam {
  SubjectKind subject;
  FuzzCombo combo;
};

std::string DiffParamName(const ::testing::TestParamInfo<DiffParam>& info) {
  return std::string(SubjectName(info.param.subject)) + "_" +
         info.param.combo.Name();
}

class DifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(DifferentialTest, TenThousandOpsMatchOracle) {
  const DiffParam& p = GetParam();
  FuzzOptions options;
  options.subject = p.subject;
  options.combo = p.combo;
  options.num_ops = 10'000;
  for (uint64_t seed : {1ull, 42ull}) {
    options.seed = seed;
    auto failure = RunDifferential(options);
    ASSERT_FALSE(failure.has_value()) << FailureText(*failure);
  }
}

std::vector<DiffParam> MakeGrid() {
  std::vector<DiffParam> grid;
  for (const FuzzCombo& combo : AllCombos()) {
    grid.push_back({SubjectKind::kLtc, combo});
    grid.push_back({SubjectKind::kSharded, combo});
    // WindowedLtc forces time-based pacing; running the count-based half
    // of the grid would duplicate the time-based cells.
    if (combo.period_mode == PeriodMode::kTimeBased) {
      grid.push_back({SubjectKind::kWindowed, combo});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, DifferentialTest,
                         ::testing::ValuesIn(MakeGrid()), DiffParamName);

// A taller run on the theorem configuration: the guarantees are the
// strongest here, so this cell gets the most operations.
TEST(Differential, DeepRunOnTheoremConfig) {
  FuzzOptions options;
  options.subject = SubjectKind::kLtc;
  options.combo = {InitPolicy::kOne, true, PeriodMode::kTimeBased};
  options.num_ops = 50'000;
  options.seed = 7;
  auto failure = RunDifferential(options);
  ASSERT_FALSE(failure.has_value()) << FailureText(*failure);
}

// The shrinker itself must be sound: a trace that fails must keep failing
// after shrinking, and the replay command must reference the original
// seed. Exercised with a deliberately broken checker via a tiny universe
// and an impossible guarantee — simplest is to drive RunTrace directly
// with a corrupted trace: an op whose item is 0 is rejected by the
// subject's precondition, so instead corrupt the oracle pairing by
// observing nothing. That is not reachable through the public API, so
// the shrinker is exercised through the audit path below in LTC_AUDIT
// builds; here we at least pin that a clean config produces no failure
// object at all.
TEST(Differential, CleanRunReportsNothing) {
  FuzzOptions options;
  options.num_ops = 2'000;
  options.seed = 3;
  EXPECT_FALSE(RunDifferential(options).has_value());
}

// ------------------------------------------------- metamorphic checks

// Feeding a ShardedLtc is EXACTLY feeding each shard's substream to a
// standalone table with the per-shard config: shard-by-shard state and
// global answers agree (per-shard routing makes the partition stable).
TEST(Metamorphic, ShardedEqualsPerShardRouting) {
  LtcConfig config;
  config.memory_bytes = 16 * 1024;
  config.items_per_period = 1'000;
  const uint32_t kShards = 4;
  ShardedLtc sharded(config, kShards);
  std::vector<Ltc> standalone;
  for (uint32_t s = 0; s < kShards; ++s) {
    standalone.emplace_back(sharded.shard(s).config());
  }

  Stream stream = MakeZipfStream(60'000, 3'000, 1.0, 30, 99);
  for (const Record& r : stream.records()) {
    sharded.Insert(r.item, r.time);
    standalone[sharded.ShardOf(r.item)].Insert(r.item, r.time);
  }
  sharded.Finalize();
  for (Ltc& table : standalone) table.Finalize();

  for (uint32_t s = 0; s < kShards; ++s) {
    auto got = sharded.shard(s).TopK(sharded.shard(s).num_cells());
    auto want = standalone[s].TopK(standalone[s].num_cells());
    ASSERT_EQ(got.size(), want.size()) << "shard " << s;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].item, want[i].item) << "shard " << s << " rank " << i;
      EXPECT_EQ(got[i].frequency, want[i].frequency);
      EXPECT_EQ(got[i].persistency, want[i].persistency);
    }
  }
}

// MergeFrom is exact on item-partitioned inputs: with enough room that no
// bucket overflows on merge, the merged table answers the field-wise SUM
// of the two inputs for every tracked item.
TEST(Metamorphic, MergeOfItemPartitionedTablesIsExact) {
  LtcConfig config;
  config.memory_bytes = 64 * 1024;  // plenty: no merge-time truncation
  config.cells_per_bucket = 8;
  config.items_per_period = 500;
  Ltc left(config);
  Ltc right(config);

  Stream stream = MakeZipfStream(20'000, 400, 1.0, 20, 17);
  for (const Record& r : stream.records()) {
    // Partition by item parity — disjoint by construction.
    (r.item % 2 == 0 ? left : right).Insert(r.item, r.time);
  }
  left.Finalize();
  right.Finalize();

  Ltc merged = left;
  ASSERT_TRUE(merged.MergeFrom(right));
  EXPECT_TRUE(merged.CheckInvariants());

  for (const Ltc* source : {&left, &right}) {
    for (const auto& r : source->TopK(source->num_cells())) {
      if (!merged.IsTracked(r.item)) continue;  // lost to bucket pressure
      EXPECT_EQ(merged.EstimateFrequency(r.item),
                left.EstimateFrequency(r.item) +
                    right.EstimateFrequency(r.item))
          << "item " << r.item;
      EXPECT_EQ(merged.EstimatePersistency(r.item),
                left.EstimatePersistency(r.item) +
                    right.EstimatePersistency(r.item))
          << "item " << r.item;
    }
  }
}

// The oracle itself must agree with the batch GroundTruth on a stream
// whose period structure both can express.
TEST(Oracle, MatchesBatchGroundTruth) {
  Stream stream = MakeZipfStream(30'000, 2'000, 1.0, 25, 5);
  GroundTruth truth = GroundTruth::Compute(stream);

  LtcConfig config;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  ExactSignificanceOracle oracle(config);
  for (const Record& r : stream.records()) oracle.Observe(r.item, r.time);

  EXPECT_EQ(oracle.total_observed(), stream.size());
  EXPECT_EQ(oracle.num_distinct(), truth.num_distinct());
  for (const auto& [item, info] : truth.items()) {
    ASSERT_EQ(oracle.TrueFrequency(item), info.frequency) << item;
    ASSERT_EQ(oracle.TruePersistency(item), info.persistency) << item;
  }
  auto top = oracle.TopK(50, 1.0, 1.0);
  auto want = truth.TopKSignificant(50, 1.0, 1.0);
  ASSERT_EQ(top.size(), want.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].item, want[i].first) << "rank " << i;
    EXPECT_DOUBLE_EQ(top[i].significance, want[i].second);
  }
}

#ifdef LTC_AUDIT
// ------------------------------------------------- audit-hook coverage

// A lying oracle that claims nothing ever appeared: the very first
// tracked cell then "overestimates", so the hook must fire. This is the
// in-tree equivalent of the scratch-branch mutation experiment described
// in docs/TESTING.md — it proves the hooks are armed and the failure
// path reports, without shipping a broken sketch.
class LyingOracle : public AuditOracle {
 public:
  uint64_t TrueFrequency(ItemId) const override { return 0; }
  uint64_t TruePersistency(ItemId) const override { return 0; }
};

class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(SetAuditFailureHandler(&ThrowingAuditHandler)) {}
  ~ScopedThrowingHandler() { SetAuditFailureHandler(previous_); }

 private:
  AuditFailureHandler previous_;
};

TEST(Audit, HooksCatchOverestimationAgainstOracle) {
  ScopedThrowingHandler handler;
  LtcConfig config;
  config.long_tail_replacement = false;  // theorem configuration
  Ltc table(config);
  LyingOracle liar;
  table.AttachAuditOracle(&liar);
  EXPECT_THROW(table.Insert(42), AuditViolation);
}

TEST(Audit, HooksStaySilentAgainstTruthfulOracle) {
  ScopedThrowingHandler handler;
  LtcConfig config;
  config.memory_bytes = 1024;
  config.long_tail_replacement = false;
  config.items_per_period = 100;
  Ltc table(config);
  ExactSignificanceOracle oracle(config);
  table.AttachAuditOracle(&oracle);
  Stream stream = MakeZipfStream(5'000, 300, 1.0, 10, 21);
  for (const Record& r : stream.records()) {
    oracle.Observe(r.item, r.time);
    EXPECT_NO_THROW(table.Insert(r.item, r.time));
  }
}

TEST(Audit, StructuralHooksRunWithoutAnOracle) {
  ScopedThrowingHandler handler;
  Ltc table((LtcConfig()));  // no oracle attached
  for (ItemId i = 1; i <= 1'000; ++i) {
    EXPECT_NO_THROW(table.Insert(i % 37 + 1));
  }
}
#endif  // LTC_AUDIT

}  // namespace
}  // namespace ltc
