# End-to-end: generate a trace, run the CLI on it with a checkpoint,
# restore the checkpoint on an empty continuation, verify csv output.
execute_process(COMMAND ${LTC_GEN} --dataset zipf --records 5000
                --periods 10 ${WORK_DIR}/e2e_trace.csv
                RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "ltc_gen failed: ${gen_rc}")
endif()

execute_process(COMMAND ${LTC_CLI} --k 5 --periods 10 --csv
                --save ${WORK_DIR}/e2e_ckpt.bin ${WORK_DIR}/e2e_trace.csv
                OUTPUT_VARIABLE out RESULT_VARIABLE cli_rc)
if(NOT cli_rc EQUAL 0)
  message(FATAL_ERROR "ltc_cli failed: ${cli_rc}")
endif()
string(FIND "${out}" "item,frequency,persistency,significance" header_pos)
if(header_pos EQUAL -1)
  message(FATAL_ERROR "csv header missing in: ${out}")
endif()

execute_process(COMMAND ${LTC_CLI} --k 5 --periods 10 --csv
                --load ${WORK_DIR}/e2e_ckpt.bin ${WORK_DIR}/e2e_trace.csv
                RESULT_VARIABLE reload_rc)
if(NOT reload_rc EQUAL 0)
  message(FATAL_ERROR "ltc_cli --load failed: ${reload_rc}")
endif()
