#include "cli_options.h"

#include <cstdlib>

namespace ltc {
namespace {

bool ParseDoubleArg(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty();
}

bool ParseU64Arg(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size() && !text.empty();
}

}  // namespace

std::optional<size_t> ParseMemorySize(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::string digits = text;
  size_t multiplier = 1;
  char suffix = digits.back();
  if (suffix == 'K' || suffix == 'k') {
    multiplier = 1024;
    digits.pop_back();
  } else if (suffix == 'M' || suffix == 'm') {
    multiplier = 1024 * 1024;
    digits.pop_back();
  }
  uint64_t value = 0;
  if (!ParseU64Arg(digits, &value) || value == 0) return std::nullopt;
  return static_cast<size_t>(value) * multiplier;
}

LtcConfig CliOptions::ToLtcConfig() const {
  LtcConfig config;
  config.memory_bytes = memory_bytes;
  config.cells_per_bucket = cells_per_bucket;
  config.alpha = alpha;
  config.beta = beta;
  config.long_tail_replacement = long_tail_replacement;
  config.deviation_eliminator = deviation_eliminator;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = 1.0;  // runner overwrites from the stream
  return config;
}

std::string CliUsage() {
  return R"(usage: ltc_cli [options] <trace-file | ->

Finds the top-k significant items (s = alpha*f + beta*p) of a trace.
Trace format: one record per line, "<item>" or "<item>,<time-seconds>";
items may be integers or arbitrary tokens; '#' starts a comment.

options:
  --memory SIZE     memory budget, e.g. 65536, 64K, 1M   [64K]
  --alpha F         weight of frequency                  [1]
  --beta F          weight of persistency                [1]
  --k N             how many items to report             [10]
  --periods T       number of periods                    [100]
  --duration SEC    total trace span (0 = infer)         [infer]
  --d N             cells per bucket                     [8]
  --threads N       parallel ingestion: N hash-sharded tables, each fed
                    by its own worker thread (same total
                    memory budget; composes with --save/--load,
                    whose checkpoints then hold all N shards) [1]
  --no-ltr          disable Long-tail Replacement
  --no-de           disable the Deviation Eliminator
  --csv             machine-readable output
  --save FILE       checkpoint the table to FILE after the run
                    (checksummed frame, written atomically)
  --load FILE       restore the table from FILE before the run; if FILE
                    is missing or corrupt, recovery walks back through
                    the FILE.<seq>.snap rotation to the newest valid
                    snapshot
  --checkpoint-every N
                    also snapshot every N records mid-run to
                    FILE.<seq>.snap (requires --save; keeps the
                    newest 3) [off]
  --metrics-out FILE
                    write a metrics exposition to FILE on exit
                    (atomically; FILE ending in .json gets the JSON
                    form, anything else the Prometheus text form)
  --stats-every N   also rewrite --metrics-out every N records, so a
                    long run can be watched live (requires
                    --metrics-out) [off]
  --trace-out FILE  install the always-on flight recorder and write its
                    Chrome trace-event JSON (open in Perfetto) to FILE
                    on exit and on SIGUSR1; also enables trace-context
                    propagation on --push-to frames and answers
                    DUMP_TRACE / `ltc_query trace` when serving
                    (docs/TELEMETRY.md) [off]
  --serve PORT      serve TOPK/ESTIMATE_*/STATS/PING queries over TCP on
                    PORT while the trace feeds and until SIGINT/SIGTERM
                    (PORT 0 = pick an ephemeral port; the bound port is
                    printed to stderr as "serving on port N"). Reads are
                    flush-barrier snapshots — see docs/SERVING.md.
                    Composes with every other flag [off]
  --push-to HOST:PORT
                    push flush-barrier sketch images to an aggregator
                    over LTCQ (PUSH_SKETCH) while feeding, with
                    deadline-bounded retries; requires --node-id and
                    --threads 1 (see docs/SERVING.md "Aggregation
                    tier") [off]
  --push-every N    push cadence in records (0 = one final push at the
                    end of the trace; requires --push-to) [0]
  --node-id N       this node's stable identity at the aggregator
                    (>= 1; required with --push-to)
  --aggregate       be the aggregator: accept PUSH_SKETCH, serve the
                    merged view. Requires --serve; takes no trace.
                    Sketch shape comes from --memory/--d/--alpha/--beta,
                    which every pusher must match [off]
  --agg-stale-after SEC
                    seconds without a push before a node's STATS row is
                    flagged stale [60]
  --store DIR       paged multi-tenant store mode (docs/DURABILITY.md
                    "Paged store, WAL, and incremental checkpoints"):
                    records shard to --tenants sketches by item id, each
                    hosted crash-safely in DIR behind a buffer pool of
                    --mem-budget bytes. Every chunk is Put through the
                    write-ahead log; --checkpoint-every N takes an
                    incremental checkpoint every N records (no --save
                    needed); reopening with the same DIR recovers every
                    tenant, WAL replay included. The report lists the
                    top-k per tenant. Conflicts with --serve, --push-to,
                    --aggregate, --threads, --save and --load [off]
  --tenants N       tenant sketches in --store mode; each record feeds
                    the tenant a mixed hash of its item id picks [1]
  --mem-budget SIZE buffer-pool budget for --store mode, e.g. 512K, 8M;
                    may be far smaller than total sketch bytes (cold
                    tenants' pages spill to DIR and page back in on
                    demand) [64M]
  --help            this text
)";
}

std::optional<CliOptions> ParseCliOptions(
    const std::vector<std::string>& args, std::string* error) {
  CliOptions options;
  auto fail = [&](const std::string& message) -> std::optional<CliOptions> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  // Whether the store-only knobs were given explicitly (their defaults
  // are meaningful only in --store mode, so a bare --tenants/--mem-budget
  // is a usage error we want to catch).
  bool tenants_set = false;
  bool mem_budget_set = false;

  size_t i = 0;
  auto next_value = [&](const std::string& flag,
                        std::string* out) -> bool {
    if (i + 1 >= args.size()) {
      if (error != nullptr) *error = flag + " needs a value";
      return false;
    }
    *out = args[++i];
    return true;
  };

  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
      return options;
    } else if (arg == "--memory") {
      if (!next_value(arg, &value)) return std::nullopt;
      auto parsed = ParseMemorySize(value);
      if (!parsed) return fail("bad --memory '" + value + "'");
      options.memory_bytes = *parsed;
    } else if (arg == "--alpha" || arg == "--beta" || arg == "--duration") {
      if (!next_value(arg, &value)) return std::nullopt;
      double parsed;
      if (!ParseDoubleArg(value, &parsed) || parsed < 0) {
        return fail("bad " + arg + " '" + value + "'");
      }
      if (arg == "--alpha") options.alpha = parsed;
      if (arg == "--beta") options.beta = parsed;
      if (arg == "--duration") options.duration = parsed;
    } else if (arg == "--k" || arg == "--periods" || arg == "--d" ||
               arg == "--threads" || arg == "--checkpoint-every" ||
               arg == "--stats-every") {
      if (!next_value(arg, &value)) return std::nullopt;
      uint64_t parsed;
      if (!ParseU64Arg(value, &parsed) || parsed == 0) {
        return fail("bad " + arg + " '" + value + "'");
      }
      if (arg == "--k") options.k = parsed;
      if (arg == "--periods") options.periods = static_cast<uint32_t>(parsed);
      if (arg == "--d") {
        options.cells_per_bucket = static_cast<uint32_t>(parsed);
      }
      if (arg == "--threads") {
        if (parsed > 256) return fail("bad --threads '" + value + "'");
        options.threads = static_cast<uint32_t>(parsed);
      }
      if (arg == "--checkpoint-every") options.checkpoint_every = parsed;
      if (arg == "--stats-every") options.stats_every = parsed;
    } else if (arg == "--no-ltr") {
      options.long_tail_replacement = false;
    } else if (arg == "--no-de") {
      options.deviation_eliminator = false;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--save" || arg == "--load") {
      if (!next_value(arg, &value)) return std::nullopt;
      (arg == "--save" ? options.save_path : options.load_path) = value;
    } else if (arg == "--metrics-out") {
      if (!next_value(arg, &value)) return std::nullopt;
      options.metrics_out = value;
    } else if (arg == "--trace-out") {
      if (!next_value(arg, &value)) return std::nullopt;
      options.trace_out = value;
    } else if (arg == "--serve") {
      if (!next_value(arg, &value)) return std::nullopt;
      uint64_t parsed;
      if (!ParseU64Arg(value, &parsed) || parsed > 65535) {
        return fail("bad --serve port '" + value +
                    "' (need 0..65535; 0 = ephemeral)");
      }
      options.serve_port = static_cast<int32_t>(parsed);
    } else if (arg == "--push-to") {
      if (!next_value(arg, &value)) return std::nullopt;
      const size_t colon = value.rfind(':');
      uint64_t port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !ParseU64Arg(value.substr(colon + 1), &port) || port == 0 ||
          port > 65535) {
        return fail("bad --push-to '" + value + "' (need HOST:PORT)");
      }
      options.push_to = value;
    } else if (arg == "--push-every" || arg == "--node-id" ||
               arg == "--agg-stale-after") {
      if (!next_value(arg, &value)) return std::nullopt;
      uint64_t parsed;
      if (!ParseU64Arg(value, &parsed)) {
        return fail("bad " + arg + " '" + value + "'");
      }
      if (arg == "--push-every") options.push_every = parsed;
      if (arg == "--node-id") {
        if (parsed == 0) return fail("--node-id must be >= 1");
        options.node_id = parsed;
      }
      if (arg == "--agg-stale-after") options.agg_stale_after = parsed;
    } else if (arg == "--store") {
      if (!next_value(arg, &value)) return std::nullopt;
      if (value.empty()) return fail("bad --store '' (need a directory)");
      options.store_dir = value;
    } else if (arg == "--tenants") {
      if (!next_value(arg, &value)) return std::nullopt;
      uint64_t parsed;
      if (!ParseU64Arg(value, &parsed) || parsed == 0 || parsed > 65536) {
        return fail("bad --tenants '" + value + "' (need 1..65536)");
      }
      options.tenants = parsed;
      tenants_set = true;
    } else if (arg == "--mem-budget") {
      if (!next_value(arg, &value)) return std::nullopt;
      auto parsed = ParseMemorySize(value);
      if (!parsed) return fail("bad --mem-budget '" + value + "'");
      options.mem_budget_bytes = *parsed;
      mem_budget_set = true;
    } else if (arg == "--aggregate") {
      options.aggregate = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return fail("unknown option '" + arg + "'");
    } else {
      if (!options.trace_path.empty()) {
        return fail("multiple trace files given");
      }
      options.trace_path = arg;
    }
  }

  if (options.aggregate) {
    if (options.serve_port < 0) {
      return fail("--aggregate requires --serve (the aggregator IS a query "
                  "server; pushes arrive on the same port)");
    }
    if (!options.trace_path.empty()) {
      return fail("--aggregate takes no trace (its data arrives via "
                  "PUSH_SKETCH)");
    }
    if (!options.push_to.empty()) {
      return fail("--aggregate and --push-to are different roles; run one "
                  "process per role");
    }
  } else if (options.trace_path.empty()) {
    return fail("no trace file given (use '-' for stdin)");
  }
  if (!options.push_to.empty()) {
    if (options.node_id == 0) {
      return fail("--push-to requires --node-id (a stable identity the "
                  "aggregator dedups on)");
    }
    if (options.threads != 1) {
      return fail("--push-to requires --threads 1 (pushes serialize the "
                  "single table at its flush barrier; sharded pushes are "
                  "not mergeable across nodes)");
    }
  }
  if (options.push_every > 0 && options.push_to.empty()) {
    return fail("--push-every requires --push-to (it sets the push cadence)");
  }
  if (!options.store_dir.empty()) {
    if (options.aggregate) {
      return fail("--store and --aggregate are different roles; run one "
                  "process per role");
    }
    if (options.serve_port >= 0) {
      return fail("--store does not compose with --serve (store mode is a "
                  "batch feed; serve from a --load'ed table instead)");
    }
    if (!options.push_to.empty()) {
      return fail("--store does not compose with --push-to (store tenants "
                  "are durable locally, not pushed)");
    }
    if (options.threads != 1) {
      return fail("--store requires --threads 1 (tenants shard the stream "
                  "already; the store's Put is a quiescent barrier)");
    }
    if (!options.save_path.empty() || !options.load_path.empty()) {
      return fail("--store does not compose with --save/--load (the store "
                  "directory IS the durable state; reopen with the same "
                  "--store DIR to restore)");
    }
  } else {
    if (tenants_set) {
      return fail("--tenants requires --store (it sets the store's tenant "
                  "fan-out)");
    }
    if (mem_budget_set) {
      return fail("--mem-budget requires --store (it sizes the store's "
                  "buffer pool)");
    }
  }
  if (options.alpha == 0.0 && options.beta == 0.0) {
    return fail("alpha and beta cannot both be 0");
  }
  if (options.checkpoint_every > 0 && options.save_path.empty() &&
      options.store_dir.empty()) {
    return fail("--checkpoint-every requires --save (it anchors the "
                "snapshot rotation at the save path) or --store (where it "
                "sets the incremental-checkpoint cadence)");
  }
  if (options.stats_every > 0 && options.metrics_out.empty()) {
    return fail("--stats-every requires --metrics-out (it sets where the "
                "periodic exposition is written)");
  }
  return options;
}

}  // namespace ltc
