// Deterministic pseudo-random number generation for workload synthesis and
// tests. All experiment randomness flows through Rng so that every figure is
// reproducible from a single seed.

#ifndef LTC_COMMON_RNG_H_
#define LTC_COMMON_RNG_H_

#include <cstdint>

#include "common/hash.h"

namespace ltc {

/// xoshiro256** by Blackman & Vigna (public domain), seeded via SplitMix64.
/// Passes BigCrush; far faster than std::mt19937_64 and with a guaranteed
/// stable sequence across standard libraries (std engines are only
/// algorithm-stable, distributions are not).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x1234abcd) {
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = Mix64(x);
    }
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return FastRange64(Next(), n); }

  /// Uniform integer in [lo, hi].
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples from Exp(rate) via inversion; rate must be > 0.
  double Exponential(double rate);

  /// Samples from Poisson(mean) — Knuth for small means, normal
  /// approximation with continuity correction for large means.
  uint64_t Poisson(double mean);

  /// Standard normal via Marsaglia polar method.
  double Normal();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace ltc

#endif  // LTC_COMMON_RNG_H_
