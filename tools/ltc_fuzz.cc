// ltc_fuzz — replay driver for the differential oracle harness
// (src/testing/trace_fuzzer.h). The CI test tests/differential_test.cc
// runs the same traces; when it (or a local run) reports a failure it
// prints a command line for this tool, which regenerates the identical
// trace, re-runs it, shrinks the failure and prints the minimal
// reproduction. Exit status: 0 clean, 1 divergence found, 2 bad usage.
//
// Usage:
//   ltc_fuzz [--subject=ltc|sharded|windowed] [--combo=NAME|INDEX]
//            [--seed=N] [--ops=N] [--all] [--list]
//
// --list prints the combo names in index order. --all sweeps every
// subject × combo cell with the given seed/ops (the CI grid).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/trace_fuzzer.h"

namespace ltc {
namespace {

constexpr const char* kUsage =
    "usage: ltc_fuzz [--subject=ltc|sharded|windowed] [--combo=NAME|INDEX]\n"
    "                [--seed=N] [--ops=N] [--all] [--list]\n"
    "\n"
    "Replays a seeded differential-fuzz trace against the exact oracle.\n"
    "Prints nothing but a summary on success; on divergence prints the\n"
    "failing op, the shrunk trace size and a replay command, and exits 1.\n";

bool ParseSubject(const std::string& value, SubjectKind* out) {
  if (value == "ltc") *out = SubjectKind::kLtc;
  else if (value == "sharded") *out = SubjectKind::kSharded;
  else if (value == "windowed") *out = SubjectKind::kWindowed;
  else return false;
  return true;
}

bool ParseCombo(const std::string& value, FuzzCombo* out) {
  const std::vector<FuzzCombo> combos = AllCombos();
  char* end = nullptr;
  unsigned long index = std::strtoul(value.c_str(), &end, 10);
  if (end && *end == '\0' && !value.empty()) {
    if (index >= combos.size()) return false;
    *out = combos[index];
    return true;
  }
  for (const FuzzCombo& combo : combos) {
    if (combo.Name() == value) {
      *out = combo;
      return true;
    }
  }
  return false;
}

int RunCell(const FuzzOptions& options) {
  auto failure = RunDifferential(options);
  if (!failure) {
    std::printf("OK    %-8s %-16s seed=%llu ops=%llu\n",
                SubjectName(options.subject), options.combo.Name().c_str(),
                static_cast<unsigned long long>(options.seed),
                static_cast<unsigned long long>(options.num_ops));
    return 0;
  }
  std::printf("FAIL  %-8s %-16s seed=%llu ops=%llu\n",
              SubjectName(options.subject), options.combo.Name().c_str(),
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.num_ops));
  std::printf("  at op %zu of %zu:\n  %s\n", failure->op_index,
              failure->trace_size, failure->message.c_str());
  std::printf("  replay: %s\n", failure->replay_command.c_str());
  return 1;
}

int Main(int argc, char** argv) {
  FuzzOptions options;
  bool run_all = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--list") {
      const std::vector<FuzzCombo> combos = AllCombos();
      for (size_t c = 0; c < combos.size(); ++c) {
        std::printf("%2zu  %s\n", c, combos[c].Name().c_str());
      }
      return 0;
    }
    if (arg == "--all") {
      run_all = true;
    } else if (const char* v = value_of("--subject=")) {
      if (!ParseSubject(v, &options.subject)) {
        std::fprintf(stderr, "ltc_fuzz: unknown subject '%s'\n%s", v, kUsage);
        return 2;
      }
    } else if (const char* v = value_of("--combo=")) {
      if (!ParseCombo(v, &options.combo)) {
        std::fprintf(stderr,
                     "ltc_fuzz: unknown combo '%s' (see --list)\n%s", v,
                     kUsage);
        return 2;
      }
    } else if (const char* v = value_of("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--ops=")) {
      options.num_ops = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "ltc_fuzz: unknown option '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    }
  }

  if (!run_all) return RunCell(options);

  int failures = 0;
  for (SubjectKind subject :
       {SubjectKind::kLtc, SubjectKind::kSharded, SubjectKind::kWindowed}) {
    for (const FuzzCombo& combo : AllCombos()) {
      if (subject == SubjectKind::kWindowed &&
          combo.period_mode != PeriodMode::kTimeBased) {
        continue;  // WindowedLtc is time-based only
      }
      FuzzOptions cell = options;
      cell.subject = subject;
      cell.combo = combo;
      failures += RunCell(cell);
    }
  }
  if (failures > 0) {
    std::printf("%d cell(s) diverged\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ltc

int main(int argc, char** argv) { return ltc::Main(argc, argv); }
