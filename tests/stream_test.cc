// Unit tests for src/stream: the stream model, period mapping, the
// synthetic workload generators, and string interning.

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/ground_truth.h"
#include "stream/generators.h"
#include "stream/interner.h"
#include "stream/stream.h"

namespace ltc {
namespace {

TEST(Stream, PeriodOfMapsUniformly) {
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back({static_cast<ItemId>(i + 1), i * 1.0});
  }
  Stream s(std::move(records), 5, 10.0);
  EXPECT_EQ(s.period_length(), 2.0);
  EXPECT_EQ(s.PeriodOf(0.0), 0u);
  EXPECT_EQ(s.PeriodOf(1.999), 0u);
  EXPECT_EQ(s.PeriodOf(2.0), 1u);
  EXPECT_EQ(s.PeriodOf(9.99), 4u);
  // The exact end of the stream clamps into the last period.
  EXPECT_EQ(s.PeriodOf(10.0), 4u);
}

TEST(Stream, CountDistinct) {
  std::vector<Record> records = {{1, 0.1}, {2, 0.2}, {1, 0.3}, {3, 0.4}};
  Stream s(std::move(records), 1, 1.0);
  EXPECT_EQ(s.CountDistinct(), 3u);
  EXPECT_EQ(s.CountDistinct(), 3u);  // cached path
  EXPECT_EQ(s.size(), 4u);
}

TEST(Stream, MakeIndexedStreamSplitsEvenly) {
  std::vector<ItemId> items(100, 7);
  Stream s = MakeIndexedStream(std::move(items), 4);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.num_periods(), 4u);
  std::vector<int> per_period(4, 0);
  for (const Record& r : s.records()) ++per_period[s.PeriodOf(r.time)];
  for (int count : per_period) EXPECT_EQ(count, 25);
}

TEST(Generators, SizeAndOrderInvariants) {
  WorkloadConfig config;
  config.num_records = 20'000;
  config.num_distinct = 2'000;
  config.num_periods = 20;
  config.seed = 5;
  Stream s = GenerateWorkload(config);
  EXPECT_EQ(s.size(), config.num_records);
  EXPECT_EQ(s.num_periods(), config.num_periods);
  const auto& records = s.records();
  for (size_t i = 1; i < records.size(); ++i) {
    ASSERT_LE(records[i - 1].time, records[i].time);
  }
  for (const Record& r : records) {
    ASSERT_NE(r.item, 0u);  // ID 0 is reserved
    ASSERT_GE(r.time, 0.0);
    ASSERT_LE(r.time, s.duration());
  }
}

TEST(Generators, DeterministicPerSeed) {
  WorkloadConfig config;
  config.num_records = 5'000;
  config.num_distinct = 500;
  config.num_periods = 10;
  config.seed = 42;
  Stream a = GenerateWorkload(config);
  Stream b = GenerateWorkload(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.records()[i].item, b.records()[i].item);
    ASSERT_EQ(a.records()[i].time, b.records()[i].time);
  }
  config.seed = 43;
  Stream c = GenerateWorkload(config);
  bool differs = false;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (a.records()[i].item != c.records()[i].item) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, FrequencyMarginalIsLongTailed) {
  WorkloadConfig config;
  config.num_records = 100'000;
  config.num_distinct = 10'000;
  config.zipf_gamma = 1.0;
  config.num_periods = 50;
  config.seed = 7;
  Stream s = GenerateWorkload(config);

  std::unordered_map<ItemId, uint64_t> counts;
  for (const Record& r : s.records()) ++counts[r.item];
  std::vector<uint64_t> freq;
  freq.reserve(counts.size());
  for (const auto& [item, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());

  // Long tail: the top item dwarfs the median item.
  EXPECT_GT(freq.front(), 50 * freq[freq.size() / 2]);
  // And the head approximately follows f_1/f_10 ≈ 10 for γ=1 (loose band:
  // i.i.d. sampling noise plus ranking reorder).
  double ratio = static_cast<double>(freq[0]) / freq[9];
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 25.0);
}

TEST(Generators, StableItemsPersistMoreThanBurstyOnes) {
  WorkloadConfig config;
  config.num_records = 200'000;
  config.num_distinct = 5'000;
  config.zipf_gamma = 1.0;
  config.num_periods = 100;
  config.p_stable = 0.5;
  config.p_bursty = 0.5;  // only two classes, cleanly separated
  config.burst_fraction = 0.02;
  config.seed = 11;
  Stream s = GenerateWorkload(config);
  GroundTruth truth = GroundTruth::Compute(s);

  // Partition heavy items (enough appearances to show their class) by
  // persistency: with a 2% burst window, bursty items can reach at most
  // 2 periods; stable heavy items should cover far more.
  int high = 0, low = 0;
  for (const auto& [item, info] : truth.items()) {
    if (info.frequency < 100) continue;
    if (info.persistency > 50) {
      ++high;
    } else if (info.persistency <= 2) {
      ++low;
    }
  }
  EXPECT_GT(high, 0);
  EXPECT_GT(low, 0);
}

TEST(Generators, DatasetStandInsHaveDocumentedShapes) {
  Stream caida = MakeCaidaLike(50'000, 1);
  EXPECT_EQ(caida.num_periods(), 500u);
  EXPECT_EQ(caida.size(), 50'000u);

  Stream network = MakeNetworkLike(50'000, 2);
  EXPECT_EQ(network.num_periods(), 1000u);

  Stream social = MakeSocialLike(50'000, 3);
  EXPECT_EQ(social.num_periods(), 200u);

  // Network has the weakest skew -> the most distinct items per record.
  EXPECT_GT(network.CountDistinct(), caida.CountDistinct());
  EXPECT_GT(network.CountDistinct(), social.CountDistinct());
}

TEST(Generators, ZipfStreamMatchesIndexTimestamps) {
  Stream s = MakeZipfStream(10'000, 1'000, 1.0, 10, 9);
  EXPECT_EQ(s.size(), 10'000u);
  EXPECT_EQ(s.num_periods(), 10u);
  // Index timestamps: exactly 1000 records per period.
  std::vector<int> per_period(10, 0);
  for (const Record& r : s.records()) ++per_period[s.PeriodOf(r.time)];
  for (int count : per_period) EXPECT_EQ(count, 1000);
}

TEST(Generators, UniformStreamHasFlatFrequencies) {
  Stream s = MakeUniformStream(100'000, 100, 10, 13);
  std::unordered_map<ItemId, uint64_t> counts;
  for (const Record& r : s.records()) ++counts[r.item];
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [item, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 200.0);
  }
}

TEST(Generators, DiurnalModulationShiftsLoadAcrossPeriods) {
  WorkloadConfig config;
  config.num_records = 100'000;
  config.num_distinct = 2'000;
  config.num_periods = 40;
  config.p_stable = 1.0;  // every item active all trace: placement is
  config.p_bursty = 0.0;  // purely diurnal
  config.diurnal_amplitude = 0.9;
  config.seed = 21;
  Stream s = GenerateWorkload(config);

  std::vector<uint64_t> per_period(40, 0);
  for (const Record& r : s.records()) ++per_period[s.PeriodOf(r.time)];
  // sin peaks at period 10 (quarter cycle), troughs at period 30.
  uint64_t peak = *std::max_element(per_period.begin(), per_period.end());
  uint64_t trough = *std::min_element(per_period.begin(), per_period.end());
  EXPECT_GT(peak, trough * 3);  // 1.9 vs 0.1 weight → strong contrast
  EXPECT_GT(per_period[10], per_period[30]);
}

TEST(Generators, DriftingStreamRotatesPopularity) {
  Stream s = MakeDriftingStream(100'000, 5'000, 1.1, 100, 25, 7);
  EXPECT_EQ(s.size(), 100'000u);

  // The heaviest item of the FIRST phase should be (nearly) absent from
  // the LAST phase, and vice versa.
  auto phase_counts = [&](uint32_t first_period, uint32_t last_period) {
    std::unordered_map<ItemId, uint64_t> counts;
    for (const Record& r : s.records()) {
      uint32_t p = s.PeriodOf(r.time);
      if (p >= first_period && p <= last_period) ++counts[r.item];
    }
    return counts;
  };
  auto head_of = [](const std::unordered_map<ItemId, uint64_t>& counts) {
    ItemId best = 0;
    uint64_t best_count = 0;
    for (const auto& [item, c] : counts) {
      if (c > best_count) {
        best = item;
        best_count = c;
      }
    }
    return std::pair(best, best_count);
  };

  auto first = phase_counts(0, 24);
  auto last = phase_counts(75, 99);
  auto [first_head, first_head_count] = head_of(first);
  auto [last_head, last_head_count] = head_of(last);
  EXPECT_NE(first_head, last_head);
  // Cross-phase presence of each phase's head is a tiny fraction.
  EXPECT_LT(last.count(first_head) ? last[first_head] : 0,
            first_head_count / 10);
  EXPECT_LT(first.count(last_head) ? first[last_head] : 0,
            last_head_count / 10);
}

TEST(Interner, RoundTripsAndDeduplicates) {
  StringInterner interner;
  ItemId alice = interner.Intern("alice");
  ItemId bob = interner.Intern("bob");
  EXPECT_NE(alice, bob);
  EXPECT_NE(alice, 0u);  // 0 reserved
  EXPECT_EQ(interner.Intern("alice"), alice);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.Name(alice), "alice");
  EXPECT_EQ(interner.Name(bob), "bob");
  EXPECT_EQ(interner.Lookup("alice"), alice);
  EXPECT_EQ(interner.Lookup("carol"), 0u);
}

}  // namespace
}  // namespace ltc
