// ReadSnapshotHub battery (docs/SERVING.md): the slot/pin semantics,
// the publish-skip escape hatch, deep-copy isolation, and the central
// serving claim — every answer a concurrent reader obtains from a hub
// snapshot is bit-identical to what a sequential run of the same
// stream prefix would answer at the corresponding flush barrier.
//
// The concurrent suites double as the tsan workload for the serving
// read path (wired into the tsan CI job next to ingest_pipeline_test).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ltc.h"
#include "core/read_snapshot.h"
#include "core/sharded_ltc.h"
#include "ingest/ingest_pipeline.h"
#include "stream/generators.h"

namespace ltc {
namespace {

LtcConfig CountPaced(size_t memory, uint64_t items_per_period) {
  LtcConfig config;
  config.memory_bytes = memory;
  config.period_mode = PeriodMode::kCountBased;
  config.items_per_period = items_per_period;
  return config;
}

std::unique_ptr<Ltc> TableWithFreq(uint64_t n) {
  auto table = std::make_unique<Ltc>(CountPaced(4096, 1 << 20));
  for (uint64_t i = 0; i < n; ++i) table->Insert(1);
  return table;
}

// --- Slot/pin semantics ----------------------------------------------

TEST(ReadSnapshotHub, NullBeforeFirstPublishThenMonotonicSeq) {
  ReadSnapshotHub hub;
  EXPECT_FALSE(hub.Acquire());
  EXPECT_EQ(hub.PublishedSeq(), 0u);

  EXPECT_TRUE(hub.Publish(TableWithFreq(1), 10));
  {
    const ReadSnapshotHub::Ref ref = hub.Acquire();
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref->seq, 1u);
    EXPECT_EQ(ref->records, 10u);
    EXPECT_EQ(ref->table->EstimateFrequency(1), 1u);
  }
  EXPECT_TRUE(hub.Publish(TableWithFreq(2), 20));
  {
    const ReadSnapshotHub::Ref ref = hub.Acquire();
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref->seq, 2u);
    EXPECT_EQ(ref->table->EstimateFrequency(1), 2u);
  }
  EXPECT_EQ(hub.PublishedSeq(), 2u);
  EXPECT_EQ(hub.SkippedPublishes(), 0u);
}

TEST(ReadSnapshotHub, ReaderPinKeepsItsImageAcrossAPublish) {
  ReadSnapshotHub hub;
  ASSERT_TRUE(hub.Publish(TableWithFreq(1), 1));
  const ReadSnapshotHub::Ref pinned = hub.Acquire();
  ASSERT_TRUE(pinned);
  // The publisher moves on; the pinned image must not change.
  ASSERT_TRUE(hub.Publish(TableWithFreq(2), 2));
  EXPECT_EQ(pinned->seq, 1u);
  EXPECT_EQ(pinned->table->EstimateFrequency(1), 1u);
  // New acquires see the new image.
  const ReadSnapshotHub::Ref fresh = hub.Acquire();
  ASSERT_TRUE(fresh);
  EXPECT_EQ(fresh->seq, 2u);
}

TEST(ReadSnapshotHub, StragglingReaderSkipsThePublishNeverStallsIt) {
  // spin limit 0: a pinned stale slot is skipped immediately — Publish
  // must return rather than wait (the zero-writer-stalls guarantee).
  ReadSnapshotHub hub(/*publish_spin_yields=*/0);
  ASSERT_TRUE(hub.Publish(TableWithFreq(1), 1));  // slot A, seq 1
  ReadSnapshotHub::Ref straggler = hub.Acquire();  // pins slot A
  ASSERT_TRUE(straggler);
  ASSERT_TRUE(hub.Publish(TableWithFreq(2), 2));  // slot B, seq 2

  // Slot A is still pinned: the third publish must skip, keeping seq 2.
  EXPECT_FALSE(hub.Publish(TableWithFreq(3), 3));
  EXPECT_EQ(hub.SkippedPublishes(), 1u);
  EXPECT_EQ(hub.PublishedSeq(), 2u);
  const ReadSnapshotHub::Ref current = hub.Acquire();
  ASSERT_TRUE(current);
  EXPECT_EQ(current->seq, 2u);

  // Straggler done: the next publish lands (slot A recycled).
  straggler = ReadSnapshotHub::Ref();
  EXPECT_TRUE(hub.Publish(TableWithFreq(3), 3));
  EXPECT_EQ(hub.PublishedSeq(), 3u);
}

TEST(CloneAtBarrier, DeepCopyIsIsolatedFromLaterWrites) {
  Ltc table(CountPaced(8192, 100));
  for (int i = 0; i < 500; ++i) table.Insert(static_cast<ItemId>(i % 7 + 1));
  const Ltc clone = table.CloneAtBarrier();
  const uint64_t before = clone.EstimateFrequency(1);
  for (int i = 0; i < 500; ++i) table.Insert(1);
  EXPECT_EQ(clone.EstimateFrequency(1), before);
  EXPECT_NE(table.EstimateFrequency(1), before);
}

TEST(CloneAtBarrier, ShardedCloneAnswersIdentically) {
  ShardedLtc sharded(CountPaced(16 * 1024, 1000), 4);
  Stream stream = MakeZipfStream(20000, 2000, 1.1, 10, 99);
  sharded.InsertBatch(stream.records());
  const ShardedLtc clone = sharded.CloneAtBarrier();
  const auto want = sharded.TopK(20);
  const auto got = clone.TopK(20);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].item, got[i].item) << i;
    EXPECT_EQ(want[i].frequency, got[i].frequency) << i;
    EXPECT_EQ(want[i].persistency, got[i].persistency) << i;
    EXPECT_EQ(want[i].significance, got[i].significance) << i;
  }
  EXPECT_EQ(clone.MemoryBytes(), sharded.MemoryBytes());
}

// --- Torn-read hammer (tsan workload) --------------------------------

// One publisher racing many readers. Each published table encodes its
// own sequence number (freq(item 1) == seq), so a reader can detect any
// torn or stale-slot read: the table's answer must equal the Ref's seq,
// and seq must never move backwards within one reader thread.
TEST(ReadSnapshotHubConcurrency, ReadersNeverSeeTornOrRegressingImages) {
  ReadSnapshotHub hub;
  constexpr int kReaders = 4;
  constexpr uint64_t kPublishes = 300;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> regressed{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_seq = 0;
      while (!done.load(std::memory_order_acquire)) {
        const ReadSnapshotHub::Ref ref = hub.Acquire();
        if (!ref) continue;
        if (ref->table->EstimateFrequency(1) != ref->seq) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        if (ref->seq < last_seq) {
          regressed.fetch_add(1, std::memory_order_relaxed);
        }
        last_seq = ref->seq;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (uint64_t seq = 1; seq <= kPublishes; ++seq) {
    // The hub may skip while a reader pins the stale slot — retry so
    // table contents stay in lockstep with the hub's seq counter.
    while (!hub.Publish(TableWithFreq(seq), seq)) {
    }
  }
  // On a loaded machine the publisher can finish before any reader is
  // ever scheduled; acquires don't need a live publisher, so wait for
  // one read before stopping them.
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(regressed.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(hub.PublishedSeq(), kPublishes);
}

// --- Flush-barrier oracle equivalence (the serving contract) ---------

/// What a reader records from one pinned snapshot: enough answers to
/// characterize the image (probe frequencies + the full top-10).
struct Observation {
  uint64_t records = 0;
  std::vector<uint64_t> probe_freq;
  std::vector<SignificanceReport> topk;
};

Observation Observe(uint64_t records, const SignificanceEstimator& table) {
  Observation obs;
  obs.records = records;
  obs.probe_freq.reserve(32);
  for (ItemId item = 1; item <= 32; ++item) {
    obs.probe_freq.push_back(table.EstimateFrequency(item));
  }
  obs.topk = table.TopK(10);
  return obs;
}

void ExpectSameObservation(const Observation& got, const Observation& want) {
  ASSERT_EQ(got.records, want.records);
  ASSERT_EQ(got.probe_freq.size(), want.probe_freq.size());
  for (size_t i = 0; i < got.probe_freq.size(); ++i) {
    EXPECT_EQ(got.probe_freq[i], want.probe_freq[i])
        << "probe item " << i + 1 << " at barrier " << want.records;
  }
  ASSERT_EQ(got.topk.size(), want.topk.size()) << "barrier " << want.records;
  for (size_t i = 0; i < got.topk.size(); ++i) {
    EXPECT_EQ(got.topk[i].item, want.topk[i].item)
        << "rank " << i << " at barrier " << want.records;
    EXPECT_EQ(got.topk[i].frequency, want.topk[i].frequency) << "rank " << i;
    EXPECT_EQ(got.topk[i].persistency, want.topk[i].persistency)
        << "rank " << i;
    EXPECT_EQ(got.topk[i].significance, want.topk[i].significance)
        << "rank " << i;
  }
}

// Live IngestPipeline feeding a sharded table with the hub attached;
// reader threads sample snapshots the whole time. EVERY observation —
// whatever moment it was taken at — must equal the sequential oracle's
// answers at that snapshot's flush barrier: served answers are
// bit-identical to a sequential run of the same stream prefix.
TEST(ReadSnapshotHubConcurrency, EveryServedAnswerEqualsAFlushBarrierOracle) {
  const LtcConfig config = CountPaced(32 * 1024, 2000);
  constexpr uint32_t kShards = 3;
  constexpr size_t kChunk = 5000;
  Stream stream = MakeZipfStream(100000, 5000, 1.1, 20, 1234);
  const std::span<const Record> records(stream.records());

  // Concurrent run: pipeline + hub + sampling readers.
  ShardedLtc sharded(config, kShards);
  ReadSnapshotHub hub;
  std::vector<std::vector<Observation>> observed(3);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < observed.size(); ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_seq = ~uint64_t{0};
      while (!done.load(std::memory_order_acquire)) {
        const ReadSnapshotHub::Ref ref = hub.Acquire();
        if (!ref) continue;
        // Record each image once per reader (the torn-read hammer above
        // covers re-reading); the race with the pipeline stays hot
        // because Acquire runs continuously either way.
        if (ref->seq == last_seq) continue;
        last_seq = ref->seq;
        observed[r].push_back(Observe(ref->records, *ref->table));
      }
    });
  }
  {
    IngestPipeline pipeline(sharded);
    pipeline.AttachReadSnapshotHub(&hub);
    for (size_t i = 0; i < records.size(); i += kChunk) {
      pipeline.PushBatch(records.subspan(i, kChunk));
      pipeline.Flush();  // barrier → publish
    }
    pipeline.Stop();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Sequential oracle: the same chunks fed single-threaded, observed at
  // every chunk barrier.
  std::map<uint64_t, Observation> oracle;
  {
    ShardedLtc sequential(config, kShards);
    oracle.emplace(0, Observe(0, sequential));  // pre-publish seed image
    for (size_t i = 0; i < records.size(); i += kChunk) {
      sequential.InsertBatch(records.subspan(i, kChunk));
      oracle.emplace(i + kChunk, Observe(i + kChunk, sequential));
    }
  }

  size_t total = 0;
  for (const auto& reader_log : observed) {
    for (const Observation& obs : reader_log) {
      const auto it = oracle.find(obs.records);
      ASSERT_NE(it, oracle.end())
          << "snapshot at records=" << obs.records
          << " does not correspond to any flush barrier";
      ExpectSameObservation(obs, it->second);
      ++total;
    }
  }
  // The readers really raced the pipeline (sanity: sampling happened).
  EXPECT_GT(total, 0u);
  // Every barrier either published or (rarely, under a straggling
  // reader) skipped — none may stall or vanish.
  EXPECT_EQ(hub.PublishedSeq() + hub.SkippedPublishes(),
            records.size() / kChunk);
}

}  // namespace
}  // namespace ltc
