// Distributed / multi-core ingestion example.
//
// The paper's congestion use case (§I) wants persistent flows found "all
// over the data center". This example shows both composition patterns the
// library supports:
//
//   1. ShardedLtc fed by an IngestPipeline — one process, many threads:
//      a router hashes records into per-shard rings, one worker per shard
//      drains them through the batch fast path; the global top-k is the
//      best of the shard union.
//   2. Ltc::MergeFrom + serialization — many vantage points: each site
//      summarizes its slice of the traffic, ships the checkpoint, and the
//      collector folds the tables together.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "core/sharded_ltc.h"
#include "ingest/ingest_pipeline.h"
#include "stream/generators.h"

namespace {

ltc::LtcConfig BaseConfig(const ltc::Stream& stream) {
  ltc::LtcConfig config;
  config.memory_bytes = 64 * 1024;
  config.alpha = 1.0;
  config.beta = 25.0;
  config.period_mode = ltc::PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  return config;
}

// Reporting is interface-driven: both patterns below hand their results
// over as SignificanceReports, whatever sketch produced them.
void PrintTop(const char* title,
              const std::vector<ltc::SignificanceReport>& top) {
  std::printf("%s\n%-20s %10s %12s %14s\n", title, "flow", "packets",
              "periods", "significance");
  for (const auto& r : top) {
    std::printf("%-20llu %10llu %12llu %14.0f\n",
                static_cast<unsigned long long>(r.item),
                static_cast<unsigned long long>(r.frequency),
                static_cast<unsigned long long>(r.persistency),
                r.significance);
  }
}

}  // namespace

int main() {
  ltc::Stream stream = ltc::MakeCaidaLike(400'000, 2026);
  std::printf("trace: %zu records, %u periods\n\n", stream.size(),
              stream.num_periods());

  // ---- Pattern 1: sharded, fed by the ingestion pipeline. -------------
  constexpr uint32_t kShards = 4;
  ltc::ShardedLtc sharded(BaseConfig(stream), kShards);
  {
    ltc::IngestPipeline pipeline(sharded);
    pipeline.PushBatch(stream.records());
    pipeline.Stop();
    std::printf("pipeline: %llu records through %u shard workers\n",
                static_cast<unsigned long long>(pipeline.TotalEnqueued()),
                pipeline.num_shards());
  }
  sharded.Finalize();
  PrintTop("== sharded (4 worker threads, hash-partitioned) top-5 ==",
           sharded.TopK(5));

  // ---- Pattern 2: two vantage points + checkpoint shipping. -----------
  // Site A sees the first half of time, site B the second half (the same
  // flows pass both), each with half the memory.
  ltc::LtcConfig site_config = BaseConfig(stream);
  site_config.memory_bytes /= 2;
  ltc::Ltc site_a(site_config), site_b(site_config);
  double split = stream.duration() / 2;
  for (const ltc::Record& r : stream.records()) {
    (r.time < split ? site_a : site_b).Insert(r.item, r.time);
  }
  site_a.Finalize();
  site_b.Finalize();

  // Ship site A's table as bytes (what would cross the network)...
  ltc::BinaryWriter wire;
  site_a.Serialize(wire);
  ltc::BinaryReader reader(wire.data());
  auto received = ltc::Ltc::Deserialize(reader);
  if (!received) {
    std::fprintf(stderr, "checkpoint did not survive the wire!\n");
    return 1;
  }
  std::printf("\nshipped site A's summary: %zu bytes for %s of traffic\n",
              wire.size(), "half");

  // ...and fold it into site B's at the collector.
  ltc::Ltc collector = std::move(*received);
  if (!collector.MergeFrom(site_b)) {
    std::fprintf(stderr, "site sketches have mismatched shapes!\n");
    return 1;
  }
  PrintTop("\n== merged two-site view, top-5 ==", collector.TopK(5));

  std::printf(
      "\nNote: time-partitioned sites violate item-partitioning, so merged"
      "\npersistency is the SUM of per-site persistencies — exact here"
      "\nbecause the sites watched disjoint time ranges.\n");
  return 0;
}
