// The paper's two assessment metrics (§V-A) plus a timed runner.
//
//   precision = |φ ∩ ψ| / k, with φ the true top-k significant set and ψ
//               the reported set;
//   ARE       = (1/k) Σ_{e_i ∈ ψ} |s_i − ŝ_i| / s_i, averaged over the
//               *reported* items against their true significance.
//
// AAE is implemented too but, as the paper notes, it is dominated by the
// choice of α, β, so the figures use precision and ARE.

#ifndef LTC_METRICS_EVALUATE_H_
#define LTC_METRICS_EVALUATE_H_

#include <cstdint>

#include "metrics/ground_truth.h"
#include "topk/interfaces.h"

namespace ltc {

struct EvalResult {
  double precision = 0.0;
  double are = 0.0;  // average relative error on reported items
  double aae = 0.0;  // average absolute error on reported items
  size_t reported = 0;
};

/// Scores a reported top-k against the truth, under significance weights
/// (alpha, beta). `k` is the task's k even if fewer items were reported —
/// missing reports count against precision, exactly as in the paper
/// (PIE at tight memory "cannot decode any item").
EvalResult Evaluate(const std::vector<TopKEntry>& reported,
                    const GroundTruth& truth, size_t k, double alpha,
                    double beta);

struct RunResult {
  EvalResult eval;
  double insert_mops = 0.0;  // million insertions per second
};

/// Feeds the whole stream through the reporter (timing the insertion
/// phase), finishes it, and scores its top-k report.
RunResult RunReporter(SignificantReporter& reporter, const Stream& stream,
                      const GroundTruth& truth, size_t k, double alpha,
                      double beta);

}  // namespace ltc

#endif  // LTC_METRICS_EVALUATE_H_
