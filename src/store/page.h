// The page format of the paged sketch store (docs/DURABILITY.md "Paged
// store, WAL, and incremental checkpoints").
//
// A sketch's v3 snapshot payload (core/ltc.cc Serialize: a fixed-size
// config/state header followed by the four SoA lanes — ids, freqs,
// counters, flags) is split into fixed-size page images:
//
//   page 0        the config/header region (everything before the lanes)
//   pages 1..k    lane-granular slices: each lane is cut into
//                 `page_bytes` chunks independently, so no page ever
//                 straddles a lane boundary and a single-cell update
//                 dirties at most one page per lane
//
// Concatenating the page payloads in page-id order reproduces the v3
// payload byte-identically (pinned by tests/store_test.cc), so the
// paged form and the monolithic snapshot are the same bytes in
// different envelopes.
//
// Each page travels in its own checksummed frame:
//
//   offset  size  field
//   0       4     page magic "LPAG"
//   4       4     page format version (currently 1)
//   8       4     page id
//   12      8     page LSN (the WAL sequence number of the last
//                 mutation this image contains; 0 = never logged)
//   20      8     payload length in bytes
//   28      4     CRC-32 of the payload
//   32      4     CRC-32 of the 32 header bytes above
//   36      —     payload
//
// All integers little-endian. Decoding reuses the SnapshotError
// taxonomy: a torn or flipped page is a typed, testable rejection
// (tests/snapshot_corruption_test.cc sweeps every offset), never a
// crash or a silently-accepted blob.

#ifndef LTC_STORE_PAGE_H_
#define LTC_STORE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/frame.h"

namespace ltc {
namespace store {

constexpr size_t kPageFrameHeaderSize = 36;

/// Wraps one page payload in a checksummed, versioned frame.
std::string EncodePage(uint32_t page_id, uint64_t lsn,
                       std::string_view payload);

struct PageDecodeResult {
  uint32_t page_id = 0;
  uint64_t lsn = 0;
  /// A view into the input image; valid only while it lives.
  std::string_view payload;
  SnapshotError error = SnapshotError::kNone;
  bool ok() const { return error == SnapshotError::kNone; }
};

/// Validates magic, version, both CRCs and the length before exposing
/// the payload.
PageDecodeResult DecodePage(std::string_view image);

/// Splits a v3 snapshot payload into page payloads / reassembles them.
class PageCodec {
 public:
  /// Number of pages a sketch with `num_cells` cells occupies
  /// (header page + per-lane slices).
  static size_t PageCount(size_t num_cells, size_t page_bytes);

  /// Splits `payload` (the Serialize() bytes of a sketch with
  /// `num_cells` cells) into page payloads, index == page id. Empty +
  /// `error` when the payload cannot hold `num_cells` lanes.
  static std::vector<std::string> SplitPayload(std::string_view payload,
                                               size_t num_cells,
                                               size_t page_bytes,
                                               std::string* error = nullptr);

  /// Concatenates page payloads (in page-id order) back into the
  /// original snapshot payload.
  static std::string AssemblePayload(const std::vector<std::string>& pages);
};

}  // namespace store
}  // namespace ltc

#endif  // LTC_STORE_PAGE_H_
