// SnapshotStore: rotation, retention, walk-back recovery, and the
// crash-consistency proof — a deterministic FailpointFs sweep that
// "kills the process" at EVERY mutating filesystem operation of a save
// and shows recovery always lands on a bit-valid snapshot.

#include <filesystem>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "snapshot/failpoint_fs.h"
#include "snapshot/frame.h"
#include "snapshot/fs.h"
#include "snapshot/snapshot_store.h"

namespace ltc {
namespace {

class SnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("snapstore_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    base_ = (dir_ / "table.ck").string();
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string base_;
};

TEST_F(SnapshotStoreTest, SaveAssignsIncreasingSequences) {
  SnapshotStore store(base_);
  std::string error;
  EXPECT_EQ(store.Save("one", &error), 1u) << error;
  EXPECT_EQ(store.Save("two", &error), 2u) << error;
  EXPECT_EQ(store.Save("three", &error), 3u) << error;
  auto latest = store.LoadLatest(&error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_EQ(latest->payload, "three");
  EXPECT_EQ(latest->seq, 3u);
  EXPECT_TRUE(latest->skipped.empty());
}

TEST_F(SnapshotStoreTest, RetentionPrunesOldest) {
  SnapshotStoreConfig config;
  config.retain = 2;
  SnapshotStore store(base_, config);
  for (const char* p : {"a", "b", "c", "d", "e"}) {
    ASSERT_TRUE(store.Save(p).has_value());
  }
  const auto snapshots = store.ListSnapshots();
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_EQ(snapshots[0].seq, 5u);  // newest first
  EXPECT_EQ(snapshots[1].seq, 4u);
}

TEST_F(SnapshotStoreTest, SequenceResumesAcrossStoreInstances) {
  {
    SnapshotStore store(base_);
    ASSERT_TRUE(store.Save("first").has_value());
  }
  SnapshotStore reopened(base_);
  EXPECT_EQ(reopened.Save("second"), 2u);
}

TEST_F(SnapshotStoreTest, LoadLatestWalksBackOverCorruption) {
  SnapshotStore store(base_);
  ASSERT_TRUE(store.Save("good-old").has_value());
  ASSERT_TRUE(store.Save("newest").has_value());
  // Corrupt the newest snapshot on disk.
  const auto snapshots = store.ListSnapshots();
  ASSERT_EQ(snapshots[0].seq, 2u);
  auto bytes = SystemFs().ReadAll(snapshots[0].path);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() - 1] ^= 0x20;
  ASSERT_TRUE(SystemFs().WriteAll(snapshots[0].path, *bytes));

  std::string error;
  const auto recovered = store.LoadLatest(&error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(recovered->payload, "good-old");
  EXPECT_EQ(recovered->seq, 1u);
  ASSERT_EQ(recovered->skipped.size(), 1u);
  EXPECT_EQ(recovered->skipped[0].seq, 2u);
  EXPECT_EQ(recovered->skipped[0].error, SnapshotError::kBadPayloadCrc);
}

TEST_F(SnapshotStoreTest, ValidatorRejectionContinuesTheWalk) {
  SnapshotStore store(base_);
  ASSERT_TRUE(store.Save("parseable").has_value());
  ASSERT_TRUE(store.Save("frame-valid-but-unparseable").has_value());
  std::string error;
  const auto recovered = store.LoadLatest(
      &error, [](std::string_view payload) { return payload == "parseable"; });
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(recovered->payload, "parseable");
  ASSERT_EQ(recovered->skipped.size(), 1u);
  EXPECT_EQ(recovered->skipped[0].error, SnapshotError::kPayloadRejected);
}

TEST_F(SnapshotStoreTest, NoSnapshotsIsATypedMiss) {
  SnapshotStore store(base_);
  std::string error;
  EXPECT_FALSE(store.LoadLatest(&error).has_value());
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Fault-injection matrix: every failpoint either fails the save cleanly
// or plants corruption the recovery walk skips — the previous snapshot
// is ALWAYS recoverable.
// ---------------------------------------------------------------------------

class SnapshotFaultMatrixTest
    : public SnapshotStoreTest,
      public ::testing::WithParamInterface<FailpointFs::Failure> {};

TEST_P(SnapshotFaultMatrixTest, PriorSnapshotSurvivesEveryFailure) {
  FailpointFs fs(SystemFs());
  SnapshotStore store(base_, {}, &fs);
  ASSERT_TRUE(store.Save("generation-1").has_value());

  const uint64_t ops_before = fs.mutating_ops();
  fs.Arm(GetParam(), ops_before, /*seed=*/5);
  std::string error;
  const auto seq = store.Save("generation-2", &error);
  EXPECT_TRUE(fs.fired());
  const bool silent_corruption =
      GetParam() == FailpointFs::Failure::kFlipByteInWrite ||
      GetParam() == FailpointFs::Failure::kTruncateAfterRename;
  if (!silent_corruption) {
    EXPECT_FALSE(seq.has_value()) << "save should have reported the fault";
    EXPECT_FALSE(error.empty());
  }

  // Recovery (a fresh store, as after a restart) must land on a valid
  // snapshot: generation-1, or generation-2 when the fault hit after
  // the payload was fully and correctly renamed into place.
  fs.Arm(FailpointFs::Failure::kNone, 0);
  SnapshotStore after_restart(base_, {}, &fs);
  const auto recovered = after_restart.LoadLatest(&error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_TRUE(recovered->payload == "generation-1" ||
              recovered->payload == "generation-2")
      << "recovered garbage: " << recovered->payload;
  if (silent_corruption) {
    // The corrupted generation-2 file must be skipped via CRC, never
    // returned.
    EXPECT_EQ(recovered->payload, "generation-1");
    ASSERT_FALSE(recovered->skipped.empty());
    EXPECT_NE(recovered->skipped[0].error, SnapshotError::kNone);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFailures, SnapshotFaultMatrixTest,
    ::testing::Values(FailpointFs::Failure::kShortWrite,
                      FailpointFs::Failure::kWriteError,
                      FailpointFs::Failure::kSyncError,
                      FailpointFs::Failure::kRenameError,
                      FailpointFs::Failure::kTruncateAfterRename,
                      FailpointFs::Failure::kFlipByteInWrite),
    [](const auto& info) {
      switch (info.param) {
        case FailpointFs::Failure::kShortWrite: return "ShortWrite";
        case FailpointFs::Failure::kWriteError: return "WriteError";
        case FailpointFs::Failure::kSyncError: return "SyncError";
        case FailpointFs::Failure::kRenameError: return "RenameError";
        case FailpointFs::Failure::kTruncateAfterRename:
          return "TruncateAfterRename";
        case FailpointFs::Failure::kFlipByteInWrite: return "FlipByteInWrite";
        default: return "Unknown";
      }
    });

// ---------------------------------------------------------------------------
// The kill-point sweep: crash at EVERY mutating filesystem operation of
// a checkpoint (with several torn-write seeds each) and prove recovery
// always returns a bit-valid prior snapshot. This is the unit-level
// "kill -9 mid-checkpoint" proof; tools/crash_recovery.sh repeats it
// with a real SIGKILL.
// ---------------------------------------------------------------------------

TEST_F(SnapshotStoreTest, CrashAtEveryOpRecoversToValidSnapshot) {
  // Learn how many mutating ops one save costs (a rehearsal run).
  uint64_t ops_per_save = 0;
  {
    FailpointFs fs(SystemFs());
    SnapshotStore store(base_, {}, &fs);
    ASSERT_TRUE(store.Save("rehearsal-1").has_value());
    const uint64_t before = fs.mutating_ops();
    ASSERT_TRUE(store.Save("rehearsal-2").has_value());
    ops_per_save = fs.mutating_ops() - before;
  }
  ASSERT_GE(ops_per_save, 3u);  // at least write, sync, rename

  for (uint64_t kill_at = 0; kill_at < ops_per_save; ++kill_at) {
    for (uint64_t seed : {0u, 1u, 7u}) {
      const std::string scenario = "kill at op " + std::to_string(kill_at) +
                                   " seed " + std::to_string(seed);
      std::filesystem::remove_all(dir_);
      std::filesystem::create_directories(dir_);

      FailpointFs fs(SystemFs());
      SnapshotStore store(base_, {}, &fs);
      ASSERT_TRUE(store.Save("before-crash").has_value()) << scenario;
      const uint64_t ops_before = fs.mutating_ops();
      fs.Arm(FailpointFs::Failure::kCrash, ops_before + kill_at, seed);
      store.Save("during-crash");
      ASSERT_TRUE(fs.crashed()) << scenario;

      // "Reboot": a fresh store over the real filesystem.
      std::string error;
      SnapshotStore recovery(base_);
      const auto recovered = recovery.LoadLatest(&error);
      ASSERT_TRUE(recovered.has_value()) << scenario << ": " << error;
      EXPECT_TRUE(recovered->payload == "before-crash" ||
                  recovered->payload == "during-crash")
          << scenario << " recovered garbage: " << recovered->payload;

      // And the machine keeps working: the next save after recovery
      // succeeds and becomes the newest snapshot.
      ASSERT_TRUE(recovery.Save("after-reboot").has_value()) << scenario;
      const auto next = recovery.LoadLatest(&error);
      ASSERT_TRUE(next.has_value()) << scenario << ": " << error;
      EXPECT_EQ(next->payload, "after-reboot") << scenario;
    }
  }
}

TEST_F(SnapshotStoreTest, AtomicWriteFileReplacesOrPreserves) {
  const std::string path = (dir_ / "file.bin").string();
  ASSERT_TRUE(AtomicWriteFile(SystemFs(), path, "old contents"));
  // A failed rewrite must leave the old bytes untouched.
  FailpointFs fs(SystemFs());
  fs.Arm(FailpointFs::Failure::kWriteError, 0);
  std::string error;
  EXPECT_FALSE(AtomicWriteFile(fs, path, "new contents", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(SystemFs().ReadAll(path), "old contents");
  // No temp file litter after the failure.
  EXPECT_FALSE(SystemFs().Exists(path + ".tmp"));
  // A clean rewrite replaces it.
  EXPECT_TRUE(AtomicWriteFile(SystemFs(), path, "new contents"));
  EXPECT_EQ(SystemFs().ReadAll(path), "new contents");
}

}  // namespace
}  // namespace ltc
