// Misra-Gries / "Frequent" summary (Misra & Gries, 1982) — the third
// counter-based algorithm family referenced in the paper's §II-A.
//
// Keeps at most k counters. A hit increments; a miss with a free slot
// inserts; a miss on a full table decrements *every* counter and evicts
// zeros. Guarantees f - N/(k+1) <= f̂ <= f (one-sided underestimation, the
// mirror image of Space-Saving).

#ifndef LTC_SUMMARY_MISRA_GRIES_H_
#define LTC_SUMMARY_MISRA_GRIES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/stream.h"

namespace ltc {

class MisraGries {
 public:
  struct Entry {
    ItemId item;
    uint64_t count;
  };

  explicit MisraGries(size_t num_counters);

  void Insert(ItemId item);

  /// Estimated count (underestimate); 0 when untracked.
  uint64_t Estimate(ItemId item) const;

  bool IsTracked(ItemId item) const { return counters_.count(item) > 0; }

  std::vector<Entry> TopK(size_t k) const;

  size_t size() const { return counters_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t items_processed() const { return processed_; }

  /// Total count mass removed by global decrements — equals the maximum
  /// possible underestimation of any single item; exposed for tests of the
  /// classic f >= f̂ >= f - decrements bound.
  uint64_t total_decrements() const { return decrements_; }

  /// Model bytes per counter: 8B item + 4B count.
  static constexpr size_t BytesPerCounter() { return 12; }
  static size_t CountersForMemory(size_t bytes) {
    size_t n = bytes / BytesPerCounter();
    return n == 0 ? 1 : n;
  }

 private:
  size_t capacity_;
  uint64_t processed_ = 0;
  uint64_t decrements_ = 0;
  std::unordered_map<ItemId, uint64_t> counters_;
};

}  // namespace ltc

#endif  // LTC_SUMMARY_MISRA_GRIES_H_
