// Key resolution between the wire protocol's byte-string keys and the
// estimators' 64-bit ItemIds (docs/SERVING.md "Keys").
//
// The sketch is keyed by ItemId; clients speak the keys the trace was
// fed with — decimal text for numeric traces, original tokens for
// interned traces. The codec is chosen by the serving process to match
// how it ingested, so a client never needs to know about interning.

#ifndef LTC_SERVER_KEY_CODEC_H_
#define LTC_SERVER_KEY_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "stream/interner.h"
#include "stream/stream.h"

namespace ltc {
namespace server {

class KeyCodec {
 public:
  virtual ~KeyCodec() = default;

  /// Maps a wire key to an ItemId. nullopt = the key is not well formed
  /// for this codec (answered with kErrBadKey). A well-formed key the
  /// stream simply never contained resolves to an untracked ItemId and
  /// is answered with the usual "did not appear" zeros.
  virtual std::optional<ItemId> Resolve(std::string_view key) const = 0;

  /// Maps an ItemId back to its wire key (TOPK rows).
  virtual std::string NameOf(ItemId item) const = 0;
};

/// Numeric traces: keys are decimal uint64 text.
class NumericKeyCodec final : public KeyCodec {
 public:
  std::optional<ItemId> Resolve(std::string_view key) const override {
    if (key.empty() || key.size() > 20) return std::nullopt;
    uint64_t value = 0;
    for (char c : key) {
      if (c < '0' || c > '9') return std::nullopt;
      const uint64_t digit = static_cast<uint64_t>(c - '0');
      if (value > (~uint64_t{0} - digit) / 10) return std::nullopt;  // overflow
      value = value * 10 + digit;
    }
    return value;
  }

  std::string NameOf(ItemId item) const override {
    return std::to_string(item);
  }
};

/// Interned token traces: keys are the original tokens; unknown tokens
/// resolve to ItemId 0, which every estimator answers as untracked.
class InternerKeyCodec final : public KeyCodec {
 public:
  /// The interner must outlive the codec and must not be mutated while
  /// the codec is in use (the CLI finishes loading the trace before it
  /// starts serving, so the interner is frozen by then).
  explicit InternerKeyCodec(const StringInterner& interner)
      : interner_(interner) {}

  std::optional<ItemId> Resolve(std::string_view key) const override {
    if (key.empty()) return std::nullopt;
    return interner_.Lookup(key);
  }

  std::string NameOf(ItemId item) const override {
    if (item == 0 || item > interner_.size()) return std::to_string(item);
    return interner_.Name(item);
  }

 private:
  const StringInterner& interner_;
};

}  // namespace server
}  // namespace ltc

#endif  // LTC_SERVER_KEY_CODEC_H_
