#include "server/dispatcher.h"

#include <utility>
#include <vector>

#include "server/aggregator.h"
#include "telemetry/trace.h"

namespace ltc {
namespace server {

namespace {

bool ReadU16(std::string_view data, size_t& pos, uint16_t* out) {
  if (data.size() - pos < 2) return false;
  *out = static_cast<uint16_t>(static_cast<uint8_t>(data[pos])) |
         (static_cast<uint16_t>(static_cast<uint8_t>(data[pos + 1])) << 8);
  pos += 2;
  return true;
}

}  // namespace

std::string QueryDispatcher::Error(Status status, std::string_view detail) {
  stats_.errors++;
  stats_.by_status[static_cast<size_t>(status)]++;
  return EncodeErrorResponse(status, detail);
}

std::string QueryDispatcher::Handle(std::string_view payload) {
  stats_.requests++;
  if (payload.empty()) {
    return Error(Status::kErrMalformed, "empty request payload");
  }
  const uint8_t opcode_byte = static_cast<uint8_t>(payload[0]);
  std::string_view body = payload.substr(1);
  // v3 trace-context extension: strip it before the opcode handlers so
  // their length checks see exactly the v2 body, and parent this
  // request's span under the caller's remote span when present.
  std::optional<TraceContextExt> ext;
  if (!SplitTraceExt(static_cast<Opcode>(opcode_byte), body, &body, &ext)) {
    return Error(Status::kErrMalformed, "bad trace-context extension");
  }
  telemetry::TraceContext remote;
  if (ext.has_value()) remote = {ext->trace_id, ext->span_id};
  telemetry::Span span("server.request", remote);
  span.AddAttr("opcode", opcode_byte);
  switch (static_cast<Opcode>(opcode_byte)) {
    case Opcode::kPing: {
      if (!body.empty()) {
        return Error(Status::kErrMalformed, "PING takes no body");
      }
      stats_.by_opcode[opcode_byte]++;
      stats_.by_status[static_cast<size_t>(Status::kOk)]++;
      // PING answers even before the first snapshot (seq 0): it probes
      // liveness, not data.
      const ReadSnapshotHub::Ref snapshot = hub_.Acquire();
      return EncodePingResponse(snapshot ? snapshot->seq : 0,
                                snapshot ? snapshot->records : 0);
    }
    case Opcode::kTopK:
      stats_.by_opcode[opcode_byte]++;
      return HandleTopK(body);
    case Opcode::kEstimateSignificance:
    case Opcode::kEstimateFrequency:
    case Opcode::kEstimatePersistency:
      stats_.by_opcode[opcode_byte]++;
      return HandleEstimate(static_cast<Opcode>(opcode_byte), body);
    case Opcode::kStats: {
      if (!body.empty()) {
        return Error(Status::kErrMalformed, "STATS takes no body");
      }
      stats_.by_opcode[opcode_byte]++;
      return HandleStats();
    }
    case Opcode::kPushSketch:
      stats_.by_opcode[opcode_byte]++;
      return HandlePush(body);
    case Opcode::kDumpTrace:
      stats_.by_opcode[opcode_byte]++;
      return HandleDumpTrace(body);
  }
  return Error(Status::kErrUnknownOpcode,
               "opcode " + std::to_string(opcode_byte));
}

std::string QueryDispatcher::HandleTopK(std::string_view body) {
  if (body.size() != 4) {
    return Error(Status::kErrMalformed, "TOPK body must be exactly u32 k");
  }
  uint32_t k = 0;
  for (int i = 3; i >= 0; --i) {
    k = (k << 8) | static_cast<uint8_t>(body[static_cast<size_t>(i)]);
  }
  if (k == 0) return Error(Status::kErrBadRequest, "k must be >= 1");
  if (k > kMaxTopK) {
    return Error(Status::kErrBadRequest,
                 "k above the protocol maximum " + std::to_string(kMaxTopK));
  }
  const ReadSnapshotHub::Ref snapshot = hub_.Acquire();
  if (!snapshot) {
    return Error(Status::kErrNoSnapshot, "no snapshot published yet");
  }
  std::vector<TopKEntry> entries;
  for (const SignificanceReport& report : snapshot->table->TopK(k)) {
    TopKEntry entry;
    entry.key = codec_.NameOf(report.item);
    entry.frequency = report.frequency;
    entry.persistency = report.persistency;
    entry.significance = report.significance;
    entries.push_back(std::move(entry));
  }
  stats_.by_status[static_cast<size_t>(Status::kOk)]++;
  return EncodeTopKResponse(entries);
}

std::string QueryDispatcher::HandleEstimate(Opcode opcode,
                                            std::string_view body) {
  size_t pos = 0;
  uint16_t key_len = 0;
  if (!ReadU16(body, pos, &key_len)) {
    return Error(Status::kErrMalformed, "estimate body truncated");
  }
  if (body.size() - pos != key_len) {
    return Error(Status::kErrMalformed,
                 body.size() - pos < key_len ? "key bytes truncated"
                                             : "trailing bytes after key");
  }
  if (key_len == 0) {
    return Error(Status::kErrBadKey, "zero-length key");
  }
  if (key_len > kMaxKeyBytes) {
    return Error(Status::kErrBadKey, "key above the protocol maximum");
  }
  const std::string_view key = body.substr(pos, key_len);
  const std::optional<ItemId> item = codec_.Resolve(key);
  if (!item) {
    return Error(Status::kErrBadKey, "unresolvable key");
  }
  const ReadSnapshotHub::Ref snapshot = hub_.Acquire();
  if (!snapshot) {
    return Error(Status::kErrNoSnapshot, "no snapshot published yet");
  }
  stats_.by_status[static_cast<size_t>(Status::kOk)]++;
  switch (opcode) {
    case Opcode::kEstimateSignificance:
      return EncodeDoubleResponse(snapshot->table->QuerySignificance(*item));
    case Opcode::kEstimateFrequency:
      return EncodeU64Response(snapshot->table->EstimateFrequency(*item));
    default:
      return EncodeU64Response(snapshot->table->EstimatePersistency(*item));
  }
}

std::string QueryDispatcher::HandleStats() {
  const ReadSnapshotHub::Ref snapshot = hub_.Acquire();
  StatsResult stats;
  stats.num_shards = num_shards_;
  if (snapshot) {
    stats.snapshot_seq = snapshot->seq;
    stats.records = snapshot->records;
    stats.memory_bytes = snapshot->table->MemoryBytes();
  }
  if (aggregator_ != nullptr) stats.nodes = aggregator_->NodeRows();
  stats_.by_status[static_cast<size_t>(Status::kOk)]++;
  return EncodeStatsResponse(stats);
}

std::string QueryDispatcher::HandlePush(std::string_view body) {
  if (aggregator_ == nullptr) {
    return Error(Status::kErrNotAggregator,
                 "this server does not accept sketch pushes");
  }
  std::optional<PushRequest> push = DecodePushRequestBody(body);
  if (!push.has_value()) {
    return Error(Status::kErrMalformed,
                 "PUSH_SKETCH body truncated or inconsistent");
  }
  const PushOutcome outcome = aggregator_->ApplyPush(*push);
  if (outcome.status != Status::kOk) {
    return Error(outcome.status, outcome.detail);
  }
  stats_.by_status[static_cast<size_t>(Status::kOk)]++;
  return EncodePushResponse(outcome.epoch_seq, outcome.applied);
}

std::string QueryDispatcher::HandleDumpTrace(std::string_view body) {
  if (!body.empty()) {
    return Error(Status::kErrMalformed, "DUMP_TRACE takes no body");
  }
  telemetry::FlightRecorder* recorder = telemetry::FlightRecorder::active();
  if (recorder == nullptr) {
    return Error(Status::kErrBadRequest,
                 "tracing is not enabled on this server");
  }
  stats_.by_status[static_cast<size_t>(Status::kOk)]++;
  // Status byte + u32 length + headroom must stay under the frame cap.
  return EncodeTraceDumpResponse(recorder->DumpChromeJson(kMaxFrameBytes - 64));
}

}  // namespace server
}  // namespace ltc
