#include "stream/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace ltc {
namespace {

// Maps a Zipf rank to a random-looking stable 64-bit ID so the stream's
// key space exercises hash functions the way real addresses/usernames do.
ItemId RankToId(uint64_t rank, uint64_t seed) {
  return Mix64(rank * 0x9e3779b97f4a7c15ULL + seed) | 1;  // avoid ID 0
}

struct ItemPlan {
  ItemId id;
  uint64_t count;
  uint32_t first_period;  // inclusive
  uint32_t last_period;   // inclusive
};

}  // namespace

Stream GenerateWorkload(const WorkloadConfig& config) {
  assert(config.num_records > 0);
  assert(config.num_distinct > 0);
  assert(config.num_periods > 0);
  Rng rng(config.seed);

  // 1. Draw the frequency marginal by i.i.d. Zipf sampling.
  ZipfSampler sampler(config.num_distinct, config.zipf_gamma);
  std::unordered_map<uint64_t, uint64_t> counts;  // rank -> count
  counts.reserve(config.num_distinct / 2);
  for (uint64_t i = 0; i < config.num_records; ++i) {
    ++counts[sampler.Sample(rng)];
  }

  // 2. Assign each appearing item a temporal class and activity window.
  const uint32_t t = config.num_periods;
  auto burst_len = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(config.burst_fraction * t)));
  std::vector<ItemPlan> plans;
  plans.reserve(counts.size());
  for (const auto& [rank, count] : counts) {
    ItemPlan plan;
    plan.id = RankToId(rank, config.seed);
    plan.count = count;
    double u = rng.UniformDouble();
    if (u < config.p_stable) {
      plan.first_period = 0;
      plan.last_period = t - 1;
    } else if (u < config.p_stable + config.p_bursty) {
      uint32_t start =
          static_cast<uint32_t>(rng.Uniform(t - burst_len + 1));
      plan.first_period = start;
      plan.last_period = start + burst_len - 1;
    } else {
      uint32_t a = static_cast<uint32_t>(rng.Uniform(t));
      uint32_t b = static_cast<uint32_t>(rng.Uniform(t));
      plan.first_period = std::min(a, b);
      plan.last_period = std::max(a, b);
    }
    plans.push_back(plan);
  }

  // 3. Place each item's appearances across its window. Period choice is
  // uniform over the window, optionally reweighted by a sinusoid to mimic
  // diurnal load; the timestamp is uniform within the chosen period.
  const double duration = static_cast<double>(config.num_records);
  const double period_len = duration / t;
  std::vector<double> period_weight(t, 1.0);
  if (config.diurnal_amplitude > 0.0) {
    for (uint32_t p = 0; p < t; ++p) {
      period_weight[p] =
          1.0 + config.diurnal_amplitude *
                    std::sin(2.0 * std::numbers::pi * p / t);
    }
  }

  std::vector<Record> records;
  records.reserve(config.num_records);
  for (const ItemPlan& plan : plans) {
    uint32_t window = plan.last_period - plan.first_period + 1;
    for (uint64_t i = 0; i < plan.count; ++i) {
      uint32_t period;
      if (config.diurnal_amplitude > 0.0) {
        // Rejection-sample the period by its diurnal weight.
        do {
          period = plan.first_period +
                   static_cast<uint32_t>(rng.Uniform(window));
        } while (rng.UniformDouble() * (1.0 + config.diurnal_amplitude) >
                 period_weight[period]);
      } else {
        period =
            plan.first_period + static_cast<uint32_t>(rng.Uniform(window));
      }
      double time = (period + rng.UniformDouble()) * period_len;
      records.push_back({plan.id, time});
    }
  }

  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.time < b.time; });
  return Stream(std::move(records), t, duration);
}

Stream MakeCaidaLike(uint64_t num_records, uint64_t seed) {
  // Strong skew, many short-lived flows, 500 periods as in the paper.
  WorkloadConfig config;
  config.num_records = num_records;
  config.num_distinct = std::max<uint64_t>(1000, num_records / 8);
  config.zipf_gamma = 1.1;
  config.num_periods = 500;
  config.p_stable = 0.25;
  config.p_bursty = 0.30;
  config.burst_fraction = 0.01;
  config.seed = seed;
  return GenerateWorkload(config);
}

Stream MakeNetworkLike(uint64_t num_records, uint64_t seed) {
  // Weaker head, user activity confined to random spans, 1000 periods:
  // the paper's hardest dataset at a given memory budget.
  WorkloadConfig config;
  config.num_records = num_records;
  config.num_distinct = std::max<uint64_t>(1000, num_records / 5);
  config.zipf_gamma = 0.9;
  config.num_periods = 1000;
  config.p_stable = 0.15;
  config.p_bursty = 0.15;
  config.burst_fraction = 0.02;
  config.seed = seed;
  return GenerateWorkload(config);
}

Stream MakeSocialLike(uint64_t num_records, uint64_t seed) {
  // Fewer distinct senders, stronger skew, diurnal modulation, 200 periods:
  // the paper's easiest dataset (every algorithm scores high quickly).
  WorkloadConfig config;
  config.num_records = num_records;
  config.num_distinct = std::max<uint64_t>(1000, num_records / 15);
  config.zipf_gamma = 1.25;
  config.num_periods = 200;
  config.p_stable = 0.4;
  config.p_bursty = 0.1;
  config.burst_fraction = 0.05;
  config.diurnal_amplitude = 0.5;
  config.seed = seed;
  return GenerateWorkload(config);
}

Stream MakeZipfStream(uint64_t num_records, uint64_t num_distinct,
                      double gamma, uint32_t num_periods, uint64_t seed) {
  Rng rng(seed);
  ZipfSampler sampler(num_distinct, gamma);
  std::vector<ItemId> items;
  items.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    items.push_back(RankToId(sampler.Sample(rng), seed));
  }
  return MakeIndexedStream(std::move(items), num_periods);
}

Stream MakeDriftingStream(uint64_t num_records, uint64_t num_distinct,
                          double gamma, uint32_t num_periods,
                          uint32_t phase_periods, uint64_t seed) {
  assert(phase_periods >= 1);
  Rng rng(seed);
  ZipfSampler sampler(num_distinct, gamma);
  std::vector<ItemId> items;
  items.reserve(num_records);
  const uint64_t per_period = num_records / num_periods;
  for (uint64_t i = 0; i < num_records; ++i) {
    uint32_t period = per_period == 0
                          ? 0
                          : static_cast<uint32_t>(
                                std::min<uint64_t>(i / per_period,
                                                   num_periods - 1));
    uint64_t phase = period / phase_periods;
    // Salting the rank-to-ID map by phase re-deals the popularity: the
    // phase-q rank-1 item is a different ID than phase-(q+1)'s.
    items.push_back(RankToId(sampler.Sample(rng), seed ^ (phase * 0x9e1)));
  }
  return MakeIndexedStream(std::move(items), num_periods);
}

Stream MakeUniformStream(uint64_t num_records, uint64_t num_distinct,
                         uint32_t num_periods, uint64_t seed) {
  Rng rng(seed);
  std::vector<ItemId> items;
  items.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    items.push_back(RankToId(rng.Uniform(num_distinct) + 1, seed));
  }
  return MakeIndexedStream(std::move(items), num_periods);
}

}  // namespace ltc
