#include "summary/lossy_counting.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ltc {

LossyCounting::LossyCounting(double epsilon, size_t max_entries)
    : epsilon_(epsilon), max_entries_(max_entries) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  window_ = static_cast<uint64_t>(std::ceil(1.0 / epsilon));
}

void LossyCounting::Insert(ItemId item) {
  auto it = entries_.find(item);
  if (it != entries_.end()) {
    ++it->second.count;
  } else {
    entries_[item] = {1, current_bucket_ - 1};
    if (max_entries_ != 0 && entries_.size() > max_entries_) EnforceCap();
  }
  ++processed_;
  if (processed_ % window_ == 0) {
    PruneWindow();
    ++current_bucket_;
  }
}

void LossyCounting::PruneWindow() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.count + it->second.delta <= current_bucket_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void LossyCounting::EnforceCap() {
  // Budget overrun: drop the entries smallest in f + Δ until back under
  // the cap. Rare in practice (the ε sizing keeps the table small); done
  // with a full scan when it happens.
  size_t excess = entries_.size() - max_entries_;
  std::vector<std::pair<uint64_t, ItemId>> order;
  order.reserve(entries_.size());
  for (const auto& [item, cell] : entries_) {
    order.emplace_back(cell.count + cell.delta, item);
  }
  std::nth_element(order.begin(), order.begin() + excess, order.end());
  for (size_t i = 0; i < excess; ++i) entries_.erase(order[i].second);
}

uint64_t LossyCounting::Estimate(ItemId item) const {
  auto it = entries_.find(item);
  if (it == entries_.end()) return 0;
  return it->second.count + it->second.delta;
}

std::vector<LossyCounting::Entry> LossyCounting::ItemsAbove(
    uint64_t threshold) const {
  std::vector<Entry> out;
  for (const auto& [item, cell] : entries_) {
    if (cell.count + cell.delta >= threshold) {
      out.push_back({item, cell.count, cell.delta});
    }
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count + a.delta > b.count + b.delta;
  });
  return out;
}

std::vector<LossyCounting::Entry> LossyCounting::TopK(size_t k) const {
  std::vector<Entry> all;
  all.reserve(entries_.size());
  for (const auto& [item, cell] : entries_) {
    all.push_back({item, cell.count, cell.delta});
  }
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    uint64_t ea = a.count + a.delta;
    uint64_t eb = b.count + b.delta;
    if (ea != eb) return ea > eb;
    return a.item < b.item;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ltc
