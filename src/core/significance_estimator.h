// The unified query/insert surface of the LTC family.
//
// Ltc, ShardedLtc and WindowedLtc answer the same questions — "how
// significant / frequent / persistent is this item, and which items lead?"
// — but grew slightly different surfaces. SignificanceEstimator is the
// shared contract, so tools, examples and services can be written once and
// pointed at a single table, a sharded table, or a jumping window without
// caring which (tools/ltc_cli and examples/ddos_detection do exactly
// that).
//
// The batched entry point InsertBatch is the PRIMARY ingestion virtual:
// implementations write their bucket-update loop once, with per-insert
// configuration loads hoisted and CLOCK bookkeeping amortized (see
// Ltc::InsertBatch), and the non-virtual-looking Insert below is a thin
// default adapter that wraps a single arrival as a one-record batch — so
// the hot probe has exactly one call site per implementation. Batching
// NEVER changes estimates — a batch of records must leave the estimator
// in exactly the state the equivalent sequence of Insert calls would
// (pinned by tests/ingest_pipeline_test).

#ifndef LTC_CORE_SIGNIFICANCE_ESTIMATOR_H_
#define LTC_CORE_SIGNIFICANCE_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stream/stream.h"

namespace ltc {

/// One reported item, shared by every estimator (Ltc::Report is an alias).
struct SignificanceReport {
  ItemId item;
  uint64_t frequency;
  uint64_t persistency;
  double significance;
};

class SignificanceEstimator {
 public:
  virtual ~SignificanceEstimator() = default;

  /// Processes one arrival: a default adapter that feeds the record
  /// through InsertBatch as a batch of one. Implementations in
  /// count-based mode ignore `time`; time-based implementations clamp
  /// regressing timestamps. Override only to bypass batch setup that is
  /// pure overhead for a single record (ShardedLtc routes directly).
  virtual void Insert(ItemId item, double time = 0.0) {
    const Record record{item, time};
    InsertBatch(std::span<const Record>(&record, 1));
  }

  /// Processes a run of arrivals, in order — the primary ingestion path.
  /// Semantically identical to one Insert per record; implementations put
  /// their real per-record work here (config-load hoisting, CLOCK
  /// amortization, shard routing, bucket prefetch).
  virtual void InsertBatch(std::span<const Record> records) = 0;

  /// Credits all still-pending period flags. Call once after the stream
  /// ends and before querying.
  virtual void Finalize() = 0;

  /// Estimated significance α·f̂ + β·p̂; 0 when the item is untracked.
  virtual double QuerySignificance(ItemId item) const = 0;

  /// Estimated frequency / persistency; 0 when untracked.
  virtual uint64_t EstimateFrequency(ItemId item) const = 0;
  virtual uint64_t EstimatePersistency(ItemId item) const = 0;

  /// The k tracked items of largest significance, descending (ties broken
  /// by item ID for determinism).
  virtual std::vector<SignificanceReport> TopK(size_t k) const = 0;

  /// Model memory actually allocated.
  virtual size_t MemoryBytes() const = 0;
};

}  // namespace ltc

#endif  // LTC_CORE_SIGNIFICANCE_ESTIMATOR_H_
