#include "common/rng.h"

#include <cmath>

namespace ltc {

double Rng::Exponential(double rate) {
  // -log(1 - U) with U in [0, 1); 1-U never hits 0.
  return -std::log1p(-UniformDouble()) / rate;
}

double Rng::Normal() {
  // Marsaglia polar method; discards the second variate for simplicity.
  while (true) {
    double u = 2.0 * UniformDouble() - 1.0;
    double v = 2.0 * UniformDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    double l = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= UniformDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation, adequate for workload synthesis at large means.
  double x = mean + std::sqrt(mean) * Normal() + 0.5;
  return x < 0.0 ? 0 : static_cast<uint64_t>(x);
}

}  // namespace ltc
