#include "server/protocol.h"

#include <cstring>

namespace ltc {
namespace server {

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kErrUnknownOpcode:
      return "unknown_opcode";
    case Status::kErrMalformed:
      return "malformed";
    case Status::kErrBadKey:
      return "bad_key";
    case Status::kErrOversized:
      return "oversized";
    case Status::kErrNoSnapshot:
      return "no_snapshot";
    case Status::kErrBadRequest:
      return "bad_request";
    case Status::kErrShapeMismatch:
      return "shape_mismatch";
    case Status::kErrStaleEpoch:
      return "stale_epoch";
    case Status::kErrBadSketch:
      return "bad_sketch";
    case Status::kErrNotAggregator:
      return "not_aggregator";
  }
  return "unknown_status";
}

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing:
      return "ping";
    case Opcode::kTopK:
      return "topk";
    case Opcode::kEstimateSignificance:
      return "estimate_significance";
    case Opcode::kEstimateFrequency:
      return "estimate_frequency";
    case Opcode::kEstimatePersistency:
      return "estimate_persistency";
    case Opcode::kStats:
      return "stats";
    case Opcode::kPushSketch:
      return "push_sketch";
    case Opcode::kDumpTrace:
      return "dump_trace";
  }
  return "unknown_opcode";
}

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(4 + payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[4];
  std::memcpy(prefix, &length, 4);  // little-endian on every target we build
  frame.append(prefix, 4);
  frame.append(payload);
  return frame;
}

std::optional<std::string> FrameParser::Next() {
  if (oversized_ || buffer_.size() < 4) return std::nullopt;
  uint32_t length = 0;
  std::memcpy(&length, buffer_.data(), 4);
  if (length > max_frame_bytes_) {
    // Above the query cap: only a PUSH_SKETCH frame may be this large,
    // and only when the parser was configured with a push cap. The
    // opcode is payload byte 0 — wait for it before judging.
    if (length > max_push_frame_bytes_) {
      oversized_ = true;
      return std::nullopt;
    }
    if (buffer_.size() < 5) return std::nullopt;
    if (static_cast<uint8_t>(buffer_[4]) !=
        static_cast<uint8_t>(Opcode::kPushSketch)) {
      oversized_ = true;
      return std::nullopt;
    }
  }
  if (buffer_.size() < 4 + static_cast<size_t>(length)) return std::nullopt;
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<size_t>(length));
  return payload;
}

namespace {

// Keys and names use an explicit two-byte little-endian length so
// frames stay compact; wider fields are fixed-width little-endian,
// matching common/serial.h's convention.
void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

// Every Get* guard must tolerate pos > data.size(): SplitTraceExt seeks
// straight to a fixed-layout field, so an unsigned size-minus-pos check
// alone would wrap and read past the end on truncated bodies.
bool GetU16(std::string_view data, size_t& pos, uint16_t* out) {
  if (pos > data.size() || data.size() - pos < 2) return false;
  *out = static_cast<uint16_t>(static_cast<uint8_t>(data[pos])) |
         (static_cast<uint16_t>(static_cast<uint8_t>(data[pos + 1])) << 8);
  pos += 2;
  return true;
}

void PutU32Raw(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void PutU64Raw(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void PutDoubleRaw(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

bool GetU32Raw(std::string_view data, size_t& pos, uint32_t* out) {
  if (pos > data.size() || data.size() - pos < 4) return false;
  std::memcpy(out, data.data() + pos, 4);
  pos += 4;
  return true;
}

bool GetU64Raw(std::string_view data, size_t& pos, uint64_t* out) {
  if (pos > data.size() || data.size() - pos < 8) return false;
  std::memcpy(out, data.data() + pos, 8);
  pos += 8;
  return true;
}

bool GetDoubleRaw(std::string_view data, size_t& pos, double* out) {
  if (pos > data.size() || data.size() - pos < 8) return false;
  std::memcpy(out, data.data() + pos, 8);
  pos += 8;
  return true;
}

}  // namespace

std::string EncodePingRequest() {
  return std::string(1, static_cast<char>(Opcode::kPing));
}

std::string EncodeTopKRequest(uint32_t k) {
  std::string payload(1, static_cast<char>(Opcode::kTopK));
  PutU32Raw(payload, k);
  return payload;
}

std::string EncodeEstimateRequest(Opcode opcode, std::string_view key) {
  std::string payload(1, static_cast<char>(opcode));
  PutU16(payload, static_cast<uint16_t>(key.size()));
  payload.append(key);
  return payload;
}

std::string EncodeStatsRequest() {
  return std::string(1, static_cast<char>(Opcode::kStats));
}

std::string EncodeDumpTraceRequest() {
  return std::string(1, static_cast<char>(Opcode::kDumpTrace));
}

void AppendTraceExt(std::string* request_payload,
                    const TraceContextExt& ext) {
  PutU16(*request_payload, kTraceExtMagic);
  PutU64Raw(*request_payload, ext.trace_id);
  PutU64Raw(*request_payload, ext.span_id);
}

bool SplitTraceExt(Opcode opcode, std::string_view body,
                   std::string_view* base_body,
                   std::optional<TraceContextExt>* ext) {
  *base_body = body;
  ext->reset();
  // The base body's length from its own explicit length fields; nullopt
  // when the body is too short to even carry them (the handler's own
  // truncation error is better than anything decidable here).
  std::optional<size_t> base;
  switch (opcode) {
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kDumpTrace:
      base = 0;
      break;
    case Opcode::kTopK:
      base = 4;
      break;
    case Opcode::kEstimateSignificance:
    case Opcode::kEstimateFrequency:
    case Opcode::kEstimatePersistency: {
      size_t pos = 0;
      uint16_t key_len = 0;
      if (GetU16(body, pos, &key_len)) base = 2 + static_cast<size_t>(key_len);
      break;
    }
    case Opcode::kPushSketch: {
      // u64 node_id, u64 epoch_seq, u8 kind, u64 records, u32 payload_len.
      size_t pos = 8 + 8 + 1 + 8;
      uint32_t payload_len = 0;
      if (GetU32Raw(body, pos, &payload_len)) {
        base = pos + static_cast<size_t>(payload_len);
      }
      break;
    }
  }
  if (!base.has_value() || body.size() <= *base) return true;
  if (body.size() != *base + kTraceExtBytes) return true;
  size_t pos = *base;
  uint16_t magic = 0;
  if (!GetU16(body, pos, &magic)) return true;
  if (magic != kTraceExtMagic) return false;
  TraceContextExt decoded;
  if (!GetU64Raw(body, pos, &decoded.trace_id)) return false;
  if (!GetU64Raw(body, pos, &decoded.span_id)) return false;
  *ext = decoded;
  *base_body = body.substr(0, *base);
  return true;
}

std::string EncodePushRequest(const PushRequest& push) {
  std::string payload(1, static_cast<char>(Opcode::kPushSketch));
  PutU64Raw(payload, push.node_id);
  PutU64Raw(payload, push.epoch_seq);
  payload.push_back(static_cast<char>(push.sketch_kind));
  PutU64Raw(payload, push.records);
  PutU32Raw(payload, static_cast<uint32_t>(push.payload.size()));
  payload.append(push.payload);
  return payload;
}

std::optional<PushRequest> DecodePushRequestBody(std::string_view body) {
  PushRequest push;
  size_t pos = 0;
  if (!GetU64Raw(body, pos, &push.node_id)) return std::nullopt;
  if (!GetU64Raw(body, pos, &push.epoch_seq)) return std::nullopt;
  if (body.size() - pos < 1) return std::nullopt;
  push.sketch_kind = static_cast<uint8_t>(body[pos]);
  pos += 1;
  if (!GetU64Raw(body, pos, &push.records)) return std::nullopt;
  uint32_t payload_len = 0;
  if (!GetU32Raw(body, pos, &payload_len)) return std::nullopt;
  // The explicit length must match the remaining bytes exactly: a
  // mismatch means a truncated or padded frame, not a sketch to trust.
  if (body.size() - pos != payload_len) return std::nullopt;
  push.payload = std::string(body.substr(pos, payload_len));
  return push;
}

std::string EncodeErrorResponse(Status status, std::string_view detail) {
  std::string payload(1, static_cast<char>(status));
  PutU16(payload, static_cast<uint16_t>(
                      detail.size() > 0xffff ? 0xffff : detail.size()));
  payload.append(detail.substr(0, 0xffff));
  return payload;
}

std::string EncodePingResponse(uint64_t snapshot_seq, uint64_t records) {
  std::string payload(1, static_cast<char>(Status::kOk));
  payload.push_back(static_cast<char>(kProtocolVersion));
  PutU64Raw(payload, snapshot_seq);
  PutU64Raw(payload, records);
  return payload;
}

std::string EncodeTopKResponse(const std::vector<TopKEntry>& entries) {
  std::string payload(1, static_cast<char>(Status::kOk));
  PutU32Raw(payload, static_cast<uint32_t>(entries.size()));
  for (const TopKEntry& entry : entries) {
    PutU16(payload, static_cast<uint16_t>(entry.key.size()));
    payload.append(entry.key);
    PutU64Raw(payload, entry.frequency);
    PutU64Raw(payload, entry.persistency);
    PutDoubleRaw(payload, entry.significance);
  }
  return payload;
}

std::string EncodeDoubleResponse(double value) {
  std::string payload(1, static_cast<char>(Status::kOk));
  PutDoubleRaw(payload, value);
  return payload;
}

std::string EncodeU64Response(uint64_t value) {
  std::string payload(1, static_cast<char>(Status::kOk));
  PutU64Raw(payload, value);
  return payload;
}

std::string EncodeStatsResponse(const StatsResult& stats) {
  std::string payload(1, static_cast<char>(Status::kOk));
  payload.push_back(static_cast<char>(stats.protocol_version));
  PutU64Raw(payload, stats.snapshot_seq);
  PutU64Raw(payload, stats.records);
  PutU64Raw(payload, stats.memory_bytes);
  PutU32Raw(payload, stats.num_shards);
  PutU32Raw(payload, static_cast<uint32_t>(stats.nodes.size()));
  for (const StatsNodeRow& row : stats.nodes) {
    PutU64Raw(payload, row.node_id);
    PutU64Raw(payload, row.last_epoch);
    PutU64Raw(payload, row.age_sec);
    payload.push_back(static_cast<char>(row.stale));
  }
  return payload;
}

std::string EncodePushResponse(uint64_t epoch_seq, bool applied) {
  std::string payload(1, static_cast<char>(Status::kOk));
  PutU64Raw(payload, epoch_seq);
  payload.push_back(static_cast<char>(applied ? 1 : 0));
  return payload;
}

std::string EncodeTraceDumpResponse(std::string_view json) {
  std::string payload(1, static_cast<char>(Status::kOk));
  PutU32Raw(payload, static_cast<uint32_t>(json.size()));
  payload.append(json);
  return payload;
}

std::optional<DecodedResponse> DecodeResponse(Opcode request_opcode,
                                              std::string_view payload) {
  if (payload.empty()) return std::nullopt;
  DecodedResponse response;
  response.status = static_cast<Status>(static_cast<uint8_t>(payload[0]));
  size_t pos = 1;
  if (response.status != Status::kOk) {
    switch (response.status) {
      case Status::kErrUnknownOpcode:
      case Status::kErrMalformed:
      case Status::kErrBadKey:
      case Status::kErrOversized:
      case Status::kErrNoSnapshot:
      case Status::kErrBadRequest:
      case Status::kErrShapeMismatch:
      case Status::kErrStaleEpoch:
      case Status::kErrBadSketch:
      case Status::kErrNotAggregator:
        break;
      default:
        return std::nullopt;  // not a status byte this protocol speaks
    }
    uint16_t detail_len = 0;
    if (!GetU16(payload, pos, &detail_len)) return std::nullopt;
    if (payload.size() - pos != detail_len) return std::nullopt;
    response.error_detail = std::string(payload.substr(pos, detail_len));
    return response;
  }
  switch (request_opcode) {
    case Opcode::kPing: {
      if (payload.size() - pos != 1 + 8 + 8) return std::nullopt;
      pos += 1;  // protocol version
      if (!GetU64Raw(payload, pos, &response.snapshot_seq)) return std::nullopt;
      if (!GetU64Raw(payload, pos, &response.records)) return std::nullopt;
      return response;
    }
    case Opcode::kTopK: {
      uint32_t n = 0;
      if (!GetU32Raw(payload, pos, &n)) return std::nullopt;
      if (n > kMaxTopK) return std::nullopt;
      response.topk.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        TopKEntry entry;
        uint16_t key_len = 0;
        if (!GetU16(payload, pos, &key_len)) return std::nullopt;
        if (payload.size() - pos < key_len) return std::nullopt;
        entry.key = std::string(payload.substr(pos, key_len));
        pos += key_len;
        if (!GetU64Raw(payload, pos, &entry.frequency)) return std::nullopt;
        if (!GetU64Raw(payload, pos, &entry.persistency)) return std::nullopt;
        if (!GetDoubleRaw(payload, pos, &entry.significance)) {
          return std::nullopt;
        }
        response.topk.push_back(std::move(entry));
      }
      if (pos != payload.size()) return std::nullopt;
      return response;
    }
    case Opcode::kEstimateSignificance: {
      if (payload.size() - pos != 8) return std::nullopt;
      if (!GetDoubleRaw(payload, pos, &response.value_double)) {
        return std::nullopt;
      }
      return response;
    }
    case Opcode::kEstimateFrequency:
    case Opcode::kEstimatePersistency: {
      if (payload.size() - pos != 8) return std::nullopt;
      if (!GetU64Raw(payload, pos, &response.value_u64)) return std::nullopt;
      return response;
    }
    case Opcode::kStats: {
      if (payload.size() - pos < 1 + 8 + 8 + 8 + 4) return std::nullopt;
      response.stats.protocol_version = static_cast<uint8_t>(payload[pos]);
      pos += 1;
      if (!GetU64Raw(payload, pos, &response.stats.snapshot_seq)) {
        return std::nullopt;
      }
      if (!GetU64Raw(payload, pos, &response.stats.records)) {
        return std::nullopt;
      }
      if (!GetU64Raw(payload, pos, &response.stats.memory_bytes)) {
        return std::nullopt;
      }
      if (!GetU32Raw(payload, pos, &response.stats.num_shards)) {
        return std::nullopt;
      }
      // v1 responses end here; v2 appends the aggregation node rows.
      if (pos == payload.size()) return response;
      uint32_t num_nodes = 0;
      if (!GetU32Raw(payload, pos, &num_nodes)) return std::nullopt;
      if (payload.size() - pos !=
          static_cast<size_t>(num_nodes) * (8 + 8 + 8 + 1)) {
        return std::nullopt;
      }
      response.stats.nodes.reserve(num_nodes);
      for (uint32_t i = 0; i < num_nodes; ++i) {
        StatsNodeRow row;
        if (!GetU64Raw(payload, pos, &row.node_id)) return std::nullopt;
        if (!GetU64Raw(payload, pos, &row.last_epoch)) return std::nullopt;
        if (!GetU64Raw(payload, pos, &row.age_sec)) return std::nullopt;
        row.stale = static_cast<uint8_t>(payload[pos]);
        pos += 1;
        response.stats.nodes.push_back(row);
      }
      return response;
    }
    case Opcode::kPushSketch: {
      if (payload.size() - pos != 8 + 1) return std::nullopt;
      if (!GetU64Raw(payload, pos, &response.push_epoch)) return std::nullopt;
      response.push_applied = payload[pos] != 0;
      return response;
    }
    case Opcode::kDumpTrace: {
      uint32_t json_len = 0;
      if (!GetU32Raw(payload, pos, &json_len)) return std::nullopt;
      if (payload.size() - pos != json_len) return std::nullopt;
      response.trace_json = std::string(payload.substr(pos, json_len));
      return response;
    }
  }
  return std::nullopt;
}

}  // namespace server
}  // namespace ltc
