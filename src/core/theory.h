// Closed-form evaluation of the paper's §IV guarantees for Zipfian
// streams, used by the Fig. 7 reproduction to plot theoretical curves
// against measured values.
//
//  * Correct-rate bound (Lemma IV.1 + Eq. 4–5): the reported significance
//    of an item e is exactly right if e found a free cell on first arrival
//    and was never the smallest cell. With π_i the probability that item
//    e_i both shares e's bucket and ever out-counts e, the number of such
//    "useful" items follows the Poisson-binomial DP of Eq. 4, and
//    P_correct >= Σ_{x=0}^{d-2} dp_{M,x} (Eq. 5).
//
//  * Error bound (Eq. 6–11): each Significance Decrementing on e_i costs
//    (α+β); it fires only while e_i is the bucket minimum (probability
//    P_small, Eq. 7) and only for less-significant same-bucket arrivals
//    (expected count E(V), Eq. 8). Markov's inequality then bounds
//    Pr{s_i − ŝ_i >= εN} (Eq. 11).

#ifndef LTC_CORE_THEORY_H_
#define LTC_CORE_THEORY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ltc {

/// Parameters of the analytic stream model (paper Eq. 3).
struct ZipfStreamModel {
  uint64_t total_items;     // N
  uint64_t distinct_items;  // M
  double gamma;             // skew

  /// Expected frequency of the rank-i item, f_i = N·i^{−γ}/ζ(γ).
  std::vector<double> Frequencies() const;
};

/// LTC shape parameters relevant to the bounds.
struct LtcShape {
  uint64_t num_buckets;      // w
  uint32_t cells_per_bucket; // d
  double alpha = 1.0;
  double beta = 1.0;
};

/// P(reported significance of the rank-`rank` item is correct), the
/// Eq. 4–5 lower bound. `frequencies` must be descending (rank 1 first).
/// O(M·d).
double CorrectRateBound(const std::vector<double>& frequencies, uint64_t rank,
                        const LtcShape& shape);

/// Average of CorrectRateBound over ranks 1..k — the theoretical curve of
/// Fig. 7(a).
double TopKCorrectRateBound(const std::vector<double>& frequencies, size_t k,
                            const LtcShape& shape);

/// Eq. 7: P_small for the rank-i item — the probability that the d−1
/// other cells of its bucket are all held by more significant items,
/// i.e. exactly d−1 of the i−1 higher-ranked items hash to its bucket.
double ProbabilitySmallest(uint64_t rank, const LtcShape& shape);

/// Eq. 8: E(V), the expected count of less-significant same-bucket
/// arrivals that can decrement the rank-i item.
double ExpectedDecrementers(const std::vector<double>& frequencies,
                            uint64_t rank, const LtcShape& shape);

/// Eq. 11: Markov bound on Pr{s_i − ŝ_i >= ε·N} for the rank-i item.
double ErrorProbabilityBound(const std::vector<double>& frequencies,
                             uint64_t rank, const LtcShape& shape,
                             double epsilon, uint64_t total_items);

/// Average of ErrorProbabilityBound over ranks 1..k, clamped to [0,1] —
/// the theoretical curve of Fig. 7(b).
double TopKErrorProbabilityBound(const std::vector<double>& frequencies,
                                 size_t k, const LtcShape& shape,
                                 double epsilon, uint64_t total_items);

}  // namespace ltc

#endif  // LTC_CORE_THEORY_H_
