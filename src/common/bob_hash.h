// BobHash: Bob Jenkins' lookup3 hash family.
//
// The paper ("Finding Significant Items in Data Streams", ICDE 2019, §V-B)
// uses Bob Hash as the hash function for all compared data structures; this
// is a from-scratch implementation of Jenkins' 2006 lookup3 `hashlittle` /
// `hashword` routines, exposed as a seedable family so that sketches with
// multiple rows can draw independent functions.

#ifndef LTC_COMMON_BOB_HASH_H_
#define LTC_COMMON_BOB_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ltc {

/// Hashes an arbitrary byte buffer with Bob Jenkins' lookup3 algorithm.
/// Deliberately NOT named BobHash32: a (const char*, int) argument pair
/// would otherwise silently outrank the string_view overload and hash
/// `len` garbage bytes.
///
/// \param data   pointer to the bytes to hash (may be null iff len == 0)
/// \param len    number of bytes
/// \param seed   initial value; distinct seeds give (empirically)
///               independent hash functions
/// \return a 32-bit hash value
uint32_t BobHashBytes32(const void* data, size_t len, uint32_t seed = 0);

/// Hashes a buffer to 64 bits by running lookup3 with two coupled seeds
/// (Jenkins' `hashlittle2`) and concatenating the results.
uint64_t BobHashBytes64(const void* data, size_t len, uint64_t seed = 0);

/// Convenience overload for string keys.
inline uint32_t BobHash32(std::string_view s, uint32_t seed = 0) {
  return BobHashBytes32(s.data(), s.size(), seed);
}

/// Convenience overload for 64-bit integer keys (the common item-ID type
/// throughout this library).
inline uint32_t BobHash32(uint64_t key, uint32_t seed = 0) {
  return BobHashBytes32(&key, sizeof(key), seed);
}

inline uint64_t BobHash64(std::string_view s, uint64_t seed = 0) {
  return BobHashBytes64(s.data(), s.size(), seed);
}

inline uint64_t BobHash64(uint64_t key, uint64_t seed = 0) {
  return BobHashBytes64(&key, sizeof(key), seed);
}

/// A seeded Bob-hash functor: one logical hash function from the family.
/// Cheap to copy; suitable as the per-row hash of a sketch.
class BobHashFunction {
 public:
  explicit BobHashFunction(uint32_t seed = 0) : seed_(seed) {}

  uint32_t operator()(uint64_t key) const { return BobHash32(key, seed_); }
  uint32_t operator()(std::string_view s) const { return BobHash32(s, seed_); }

  uint32_t seed() const { return seed_; }

 private:
  uint32_t seed_;
};

}  // namespace ltc

#endif  // LTC_COMMON_BOB_HASH_H_
