// Appendix experiment — synthetic Zipf datasets (§V-B "We also generate
// synthetic datasets"): frequent-items precision and ARE vs skew γ ∈
// {0.0, 0.3, 0.6, 0.9, 1.2, 1.5} at 20 KB, k=100, LTC vs Space-Saving.
// γ=0 (uniform) deliberately violates the Long-tail Replacement
// assumption (§III-D Shortcoming) — the table shows how gracefully LTC
// degrades off-distribution.

#include "bench_common.h"

namespace ltc {
namespace bench {

void Run() {
  constexpr size_t kMemory = 20 * 1024;
  constexpr size_t kK = 100;
  const uint64_t n = ScaledRecords(1'000'000, 10'000'000);

  TextTable table(
      {"gamma", "LTC_prec", "SS_prec", "LTC_ARE", "SS_ARE"});
  for (double gamma : {0.0, 0.3, 0.6, 0.9, 1.2, 1.5}) {
    Stream stream = MakeZipfStream(n, n / 10, gamma, 100, 99);
    GroundTruth truth = GroundTruth::Compute(stream);
    Dataset data{"Zipf", std::move(stream), std::move(truth)};

    auto ltc = MakeLtcReporter(kMemory, data.stream, 1.0, 0.0);
    SpaceSavingReporter ss(kMemory);
    RunResult r_ltc =
        RunReporter(*ltc, data.stream, data.truth, kK, 1.0, 0.0);
    RunResult r_ss = RunReporter(ss, data.stream, data.truth, kK, 1.0, 0.0);
    table.AddRow({FormatMetric(gamma), FormatMetric(r_ltc.eval.precision),
                  FormatMetric(r_ss.eval.precision),
                  FormatMetric(r_ltc.eval.are),
                  FormatMetric(r_ss.eval.are)});
  }
  PrintFigure(
      "Appendix: synthetic Zipf skew sweep, frequent items (20KB, k=100)",
      table);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
