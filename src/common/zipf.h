// Zipfian distribution sampling and analytics.
//
// The paper's theoretical analysis (§IV-B) models the stream as Zipfian:
// f_i = N / (i^γ ζ(γ)) with ζ(γ) = Σ_{i=1..M} 1/i^γ. This module provides
// (a) the exact truncated-zeta analytics needed by core/theory.h and
// (b) an O(1)-per-sample alias-method sampler used by the synthetic
// workload generators.

#ifndef LTC_COMMON_ZIPF_H_
#define LTC_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ltc {

/// Truncated generalized harmonic number: Σ_{i=1..m} i^{-gamma}.
double TruncatedZeta(uint64_t m, double gamma);

/// Expected frequency of the rank-i item (1-based) in a Zipf(γ) stream of
/// n total items over m distinct items (paper Eq. 3).
double ZipfExpectedFrequency(uint64_t rank, uint64_t n, uint64_t m,
                             double gamma);

/// Samples ranks 1..m with P(rank = i) ∝ i^{-gamma} using Walker's alias
/// method: O(m) setup, O(1) per sample, deterministic given the Rng.
class ZipfSampler {
 public:
  /// \param num_items   number of distinct ranks m (must be >= 1)
  /// \param gamma       skewness γ >= 0 (0 = uniform)
  ZipfSampler(uint64_t num_items, double gamma);

  /// Returns a rank in [1, num_items].
  uint64_t Sample(Rng& rng) const;

  uint64_t num_items() const { return num_items_; }
  double gamma() const { return gamma_; }

  /// Probability mass of rank i (1-based).
  double Pmf(uint64_t rank) const;

 private:
  uint64_t num_items_;
  double gamma_;
  double zeta_;                    // normalizing constant
  std::vector<double> threshold_;  // alias-method acceptance thresholds
  std::vector<uint32_t> alias_;    // alias targets
};

}  // namespace ltc

#endif  // LTC_COMMON_ZIPF_H_
