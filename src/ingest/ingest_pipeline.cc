#include "ingest/ingest_pipeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

#include "snapshot/snapshot_store.h"
#include "telemetry/trace.h"

namespace ltc {

namespace {

/// Microseconds elapsed since `start`, saturated at 0.
uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto usec =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return usec > 0 ? static_cast<uint64_t>(usec) : 0;
}

/// Monotonic max-store: records `gen` in `slot` unless a newer
/// generation already acknowledged its exit.
void MaxStore(std::atomic<uint64_t>& slot, uint64_t gen) {
  uint64_t prev = slot.load(std::memory_order_relaxed);
  while (prev < gen && !slot.compare_exchange_weak(prev, gen,
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* IngestHealthName(IngestHealth health) {
  switch (health) {
    case IngestHealth::kHealthy:
      return "healthy";
    case IngestHealth::kDegraded:
      return "degraded";
    case IngestHealth::kStalled:
      return "stalled";
  }
  return "unknown";
}

IngestPipeline::IngestPipeline(ShardedLtc& sink, const IngestConfig& config)
    : sink_(sink),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : &SystemClock()) {
  assert(config_.drain_batch >= 1);
  const uint32_t shards = sink.num_shards();
  lanes_.reserve(shards);
  route_runs_.assign(shards, {});
  for (uint32_t s = 0; s < shards; ++s) {
    lanes_.push_back(std::make_unique<Lane>(config_.ring_capacity));
    Lane& lane = *lanes_.back();
    // Shed watermarks in records, against the ACTUAL (rounded) capacity.
    const double cap = static_cast<double>(lane.ring.capacity());
    lane.high_threshold = std::max<size_t>(
        1, std::min(lane.ring.capacity(),
                    static_cast<size_t>(cap * config_.shed.high_watermark)));
    lane.low_threshold =
        std::min(lane.high_threshold - 1,
                 static_cast<size_t>(cap * config_.shed.low_watermark));
  }
  // Spawn only after every lane exists: a worker touches just its own
  // lane and shard, but the vector itself must never reallocate under it.
  for (uint32_t s = 0; s < shards; ++s) {
    lanes_[s]->worker = std::thread([this, s] { WorkerLoop(s, 1); });
  }
  if (config_.supervision.enabled && shards > 0) {
    supervisor_ = std::thread([this] { SupervisorLoop(); });
  }
}

IngestPipeline::~IngestPipeline() { Stop(); }

void IngestPipeline::WorkerLoop(uint32_t shard_index, uint64_t my_gen) {
  Lane& lane = *lanes_[shard_index];
  Ltc& shard = sink_.shard(shard_index);
  std::vector<Record> batch(config_.drain_batch);
  for (;;) {
    // Fault-injection seam: a hung thread — no heartbeat, no progress,
    // no exit. Targets one generation, so a supervisor-spawned
    // replacement is immune; Stop() releases it so it can be joined.
    if (lane.hang_gen.load(std::memory_order_acquire) == my_gen &&
        !stop_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
      continue;
    }
    // Lease check: a retired generation must never touch the ring or
    // the table again — the replacement is the ring's sole consumer.
    if (lane.generation.load(std::memory_order_acquire) != my_gen) break;
    // Fault-injection seam: die cooperatively, as a crashed thread
    // would. Cleared here so the replacement does not inherit it.
    if (lane.kill.load(std::memory_order_acquire)) {
      lane.kill.store(false, std::memory_order_relaxed);
      break;
    }
    if (suspended_.load(std::memory_order_acquire) &&
        !stop_.load(std::memory_order_acquire)) {
      // Fault-injection seam: play dead — but keep heartbeating, so the
      // supervisor sees paused-but-alive and does not restart (Stop
      // still drains, so suspension never loses accepted records).
      lane.heartbeat.fetch_add(1, std::memory_order_release);
      std::this_thread::yield();
      continue;
    }
    // Every heartbeat bump below is a RELEASE that comes AFTER the ring
    // and table accesses of its iteration; the supervisor ACQUIRES the
    // heartbeat before retiring a hung worker. That chain hands the old
    // consumer's ring state (including its plain index caches and the
    // slot visibility it acquired from the producer) to the replacement
    // thread: worker writes → heartbeat release → supervisor acquire →
    // replacement spawn. A worker parked in the hang seam stops bumping
    // only AFTER the bump that covers its last ring access.
    size_t n = lane.ring.PopBatch(batch.data(), batch.size());
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) {
        // The producer publishes its last records BEFORE setting stop_
        // (release/acquire pair), so one more pop observes everything.
        n = lane.ring.PopBatch(batch.data(), batch.size());
        if (n == 0) break;
      } else {
        lane.heartbeat.fetch_add(1, std::memory_order_release);
        std::this_thread::yield();
        continue;
      }
    }
    // Apply the batch in small chunks, publishing heartbeat and drain
    // progress after each: a worker slowed down by an expensive insert
    // path (an LTC_AUDIT build sweeps the whole table per record) still
    // shows steady progress, so the supervisor cannot mistake slow for
    // hung and retire a live worker mid-mutation. Chunking is
    // estimate-neutral: InsertBatch is bit-identical to per-record
    // insertion, so any split of the batch is too.
    constexpr size_t kProgressChunk = 64;
    for (size_t off = 0; off < n; off += kProgressChunk) {
      const size_t len = std::min(kProgressChunk, n - off);
      shard.InsertBatch({batch.data() + off, len});
      lane.heartbeat.fetch_add(1, std::memory_order_release);
      // Release so a Flush() that acquire-reads `drained` also sees the
      // table mutations above.
      lane.drained.fetch_add(len, std::memory_order_release);
    }
    lane.batches.fetch_add(1, std::memory_order_relaxed);
  }
  // Exit acknowledgement: max-store so a late zombie exit can never
  // overwrite (and thus mask) a newer generation's death.
  MaxStore(lane.exited_gen, my_gen);
}

void IngestPipeline::SupervisorLoop() {
  std::unique_lock<std::mutex> lock(supervisor_mutex_);
  while (!supervisor_stop_) {
    supervisor_cv_.wait_for(
        lock, std::chrono::microseconds(config_.supervision.interval_usec));
    if (supervisor_stop_) break;
    lock.unlock();
    SuperviseTick();
    lock.lock();
  }
}

void IngestPipeline::RestartLane(uint32_t shard_index) {
  Lane& lane = *lanes_[shard_index];
  // Acquire the retiring worker's last published progress so the spawn
  // below happens-after its final table writes: the replacement reads a
  // fully settled shard table.
  lane.drained_at_restart = lane.drained.load(std::memory_order_acquire);
  const uint64_t next_gen =
      lane.generation.load(std::memory_order_relaxed) + 1;
  lane.generation.store(next_gen, std::memory_order_release);
  lane.worker = std::thread(
      [this, shard_index, next_gen] { WorkerLoop(shard_index, next_gen); });
  lane.restarts.fetch_add(1, std::memory_order_relaxed);
  // Exponential restart cooldown: a lane that keeps dying without
  // draining anything gets re-checked less and less often, so a
  // poisoned shard cannot turn the supervisor into a spawn storm.
  lane.restart_streak = std::min<uint32_t>(lane.restart_streak + 1, 8);
  lane.cooldown_left = 1ull << lane.restart_streak;
  lane.stuck_ticks = 0;
}

void IngestPipeline::SuperviseTick() {
  bool any_cooldown = false;
  bool all_live = true;
  uint64_t total_backlog = 0;
  for (uint32_t s = 0; s < lanes_.size(); ++s) {
    Lane& lane = *lanes_[s];
    const uint64_t gen = lane.generation.load(std::memory_order_relaxed);
    const uint64_t enqueued = lane.enqueued.load(std::memory_order_acquire);
    const uint64_t drained = lane.drained.load(std::memory_order_acquire);
    const uint64_t backlog = enqueued > drained ? enqueued - drained : 0;
    total_backlog += backlog;
    if (lane.cooldown_left > 0) {
      --lane.cooldown_left;
      any_cooldown = true;
      if (lane.exited_gen.load(std::memory_order_acquire) >= gen) {
        all_live = false;
      }
      continue;
    }
    if (drained > lane.drained_at_restart) lane.restart_streak = 0;
    if (lane.exited_gen.load(std::memory_order_acquire) >= gen) {
      // The current worker exited (killed, or died cooperatively): its
      // thread has run to completion, so the join is immediate.
      if (lane.worker.joinable()) lane.worker.join();
      RestartLane(s);
      any_cooldown = true;
      all_live = false;
      continue;
    }
    if (backlog > 0) {
      // Acquire pairs with the worker's release bumps: by the time a
      // frozen heartbeat retires a worker, everything it did to the
      // ring up to its last bump happens-before the replacement spawn.
      const uint64_t heartbeat =
          lane.heartbeat.load(std::memory_order_acquire);
      if (heartbeat == lane.last_heartbeat && drained == lane.last_drained) {
        if (++lane.stuck_ticks >= config_.supervision.hang_ticks) {
          // Hung: frozen heartbeat with work pending. The thread cannot
          // be joined (it may never return), so revoke its lease, park
          // it with the zombies until Stop(), and hand the ring to a
          // fresh worker. Residual risk: a live-but-glacial worker
          // retired here could still be inside one InsertBatch while
          // the replacement inserts — hang_ticks is deliberately
          // conservative for that reason.
          zombies_.push_back(std::move(lane.worker));
          RestartLane(s);
          any_cooldown = true;
          all_live = false;
        }
      } else {
        lane.stuck_ticks = 0;
      }
      lane.last_heartbeat = heartbeat;
      lane.last_drained = drained;
    } else {
      lane.stuck_ticks = 0;
      lane.last_heartbeat = lane.heartbeat.load(std::memory_order_acquire);
      lane.last_drained = drained;
    }
  }
  degraded_.store(any_cooldown, std::memory_order_relaxed);
  // Heal the stall latch: every lane live again and every accepted
  // record applied means the incident is over — new bounded waits can
  // succeed, so the latch may tell the truth again.
  if (stalled_.load(std::memory_order_acquire) && all_live &&
      total_backlog == 0) {
    stalled_.store(false, std::memory_order_release);
  }
}

void IngestPipeline::UpdateShedState(Lane& lane) {
  const size_t depth = lane.ring.SizeApprox();
  const uint32_t sustain = std::max<uint32_t>(1, config_.shed.sustain);
  if (depth >= lane.high_threshold) {
    lane.under_streak = 0;
    if (!lane.shedding.load(std::memory_order_relaxed) &&
        ++lane.over_streak >= sustain) {
      lane.shedding.store(true, std::memory_order_relaxed);
      lane.over_streak = 0;
    }
  } else if (depth <= lane.low_threshold) {
    lane.over_streak = 0;
    if (lane.shedding.load(std::memory_order_relaxed) &&
        ++lane.under_streak >= sustain) {
      lane.shedding.store(false, std::memory_order_relaxed);
      lane.under_streak = 0;
    }
  } else {
    // Between the watermarks: hysteresis — neither streak advances.
    lane.over_streak = 0;
    lane.under_streak = 0;
  }
}

uint64_t IngestPipeline::PushRunShedding(Lane& lane,
                                         std::span<const Record> run) {
  // Counted probabilistic admission: admit one record in admit_one_in,
  // and only if the ring has room RIGHT NOW — a shedding producer never
  // spins. Everything else is shed, and counted.
  const uint32_t admit_one_in = std::max<uint32_t>(1, config_.shed.admit_one_in);
  uint64_t accepted = 0;
  uint64_t shed = 0;
  for (const Record& record : run) {
    if (++lane.shed_tick % admit_one_in == 0 && lane.ring.TryPush(record)) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  lane.enqueued.fetch_add(accepted, std::memory_order_relaxed);
  lane.shed.fetch_add(shed, std::memory_order_relaxed);
  return accepted;
}

uint64_t IngestPipeline::PushRun(Lane& lane, std::span<const Record> run) {
  if (config_.shed.enabled &&
      config_.backpressure == BackpressureMode::kBlock) {
    UpdateShedState(lane);
    if (lane.shedding.load(std::memory_order_relaxed)) {
      return PushRunShedding(lane, run);
    }
  }
  uint64_t accepted = 0;
  uint64_t idle_yields = 0;
  while (!run.empty()) {
    size_t pushed = lane.ring.TryPushBatch(run);
    accepted += pushed;
    run = run.subspan(pushed);
    if (run.empty()) break;
    if (config_.backpressure == BackpressureMode::kDrop) {
      lane.dropped.fetch_add(run.size(), std::memory_order_relaxed);
      break;
    }
    if (pushed > 0) {
      idle_yields = 0;
    } else if (++idle_yields > config_.stall_yield_limit) {
      // kBlock escape hatch: the worker made no room for the whole
      // bounded wait — treat it as dead, surface the stall, and account
      // for the records we could not deliver.
      stalled_.store(true, std::memory_order_release);
      lane.dropped.fetch_add(run.size(), std::memory_order_relaxed);
      break;
    }
    std::this_thread::yield();  // kBlock: wait for the worker to drain
  }
  lane.enqueued.fetch_add(accepted, std::memory_order_relaxed);
  return accepted;
}

void IngestPipeline::Push(ItemId item, double time) {
  assert(!stopped_ && "Push after Stop()");
  const Record record{item, time};
  const uint64_t accepted =
      PushRun(*lanes_[sink_.ShardOf(item)], {&record, 1});
  MaybeCheckpoint(accepted);
}

void IngestPipeline::PushBatch(std::span<const Record> records) {
  assert(!stopped_ && "PushBatch after Stop()");
  for (auto& run : route_runs_) run.clear();
  for (const Record& record : records) {
    route_runs_[sink_.ShardOf(record.item)].push_back(record);
  }
  uint64_t accepted = 0;
  for (uint32_t s = 0; s < lanes_.size(); ++s) {
    if (!route_runs_[s].empty()) {
      accepted += PushRun(*lanes_[s], route_runs_[s]);
    }
  }
  MaybeCheckpoint(accepted);
}

bool IngestPipeline::Flush() {
  telemetry::Span span("ingest.flush");
  const auto start = std::chrono::steady_clock::now();
  bool complete = true;
  for (auto& lane : lanes_) {
    const uint64_t target = lane->enqueued.load(std::memory_order_relaxed);
    uint64_t last = lane->drained.load(std::memory_order_acquire);
    uint64_t idle_yields = 0;
    bool lane_complete = true;
    while (last < target) {
      if (++idle_yields > config_.stall_yield_limit) {
        // Bounded wait expired without progress: a dead worker must
        // surface as an error, not an infinite wait.
        stalled_.store(true, std::memory_order_release);
        complete = false;
        lane_complete = false;
        break;
      }
      std::this_thread::yield();
      const uint64_t now = lane->drained.load(std::memory_order_acquire);
      if (now != last) {
        last = now;
        idle_yields = 0;
      }
    }
    if (lane_complete) {
      lane->flushes.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (complete && snapshot_hub_ != nullptr) {
    // All accepted records are applied and memory-visible: this is a
    // quiescent barrier, the one moment a bit-identical clone is safe.
    snapshot_hub_->Publish(
        std::make_unique<ShardedLtc>(sink_.CloneAtBarrier()),
        TotalEnqueued());
  }
  if (flush_duration_usec_ != nullptr) {
    flush_duration_usec_->Record(MicrosSince(start));
  }
  if (stalled_gauge_ != nullptr && !complete) stalled_gauge_->Set(1.0);
  return complete;
}

void IngestPipeline::AttachSnapshotStore(SnapshotStore* store) {
  snapshot_store_ = store;
  since_checkpoint_ = 0;
}

void IngestPipeline::MaybeCheckpoint(uint64_t accepted) {
  since_checkpoint_ += accepted;
  if (snapshot_store_ == nullptr || config_.checkpoint_every == 0) return;
  if (since_checkpoint_ < config_.checkpoint_every) return;
  Checkpoint();  // best-effort; failures are counted, feeding continues
}

std::string IngestPipeline::StallDetail() const {
  std::string detail;
  for (uint32_t s = 0; s < lanes_.size(); ++s) {
    const Lane& lane = *lanes_[s];
    const uint64_t enqueued = lane.enqueued.load(std::memory_order_relaxed);
    const uint64_t drained = lane.drained.load(std::memory_order_acquire);
    if (drained >= enqueued) continue;
    if (!detail.empty()) detail += "; ";
    detail += "shard " + std::to_string(s) + ": queue_depth " +
              std::to_string(lane.ring.SizeApprox()) + "/" +
              std::to_string(lane.ring.capacity()) + ", drained " +
              std::to_string(drained) + "/" + std::to_string(enqueued);
  }
  return detail.empty() ? "no shard backlog observed" : detail;
}

bool IngestPipeline::CheckpointOnce(std::string* error) {
  telemetry::Span span("ingest.checkpoint");
  if (!Flush()) {
    if (error != nullptr) {
      *error = "pipeline stalled; checkpoint skipped (" + StallDetail() + ")";
    }
    return false;
  }
  // After a complete Flush every worker has applied its backlog and is
  // idle-polling an empty ring; only this (producer) thread can make
  // new records appear, so reading the shard tables here is safe.
  BinaryWriter writer;
  sink_.Serialize(writer);
  std::string save_error;
  const auto seq = snapshot_store_->Save(writer.data(), &save_error);
  if (!seq.has_value()) {
    if (error != nullptr) *error = save_error;
    return false;
  }
  last_checkpoint_seq_ = *seq;
  return true;
}

bool IngestPipeline::Checkpoint(std::string* error) {
  assert(!stopped_ && "Checkpoint after Stop()");
  const auto start = std::chrono::steady_clock::now();
  // Reset the cadence even on failure so a persistent fault retries
  // once per interval instead of once per push.
  since_checkpoint_ = 0;
  if (snapshot_store_ == nullptr) {
    if (error != nullptr) *error = "no snapshot store attached";
    ++checkpoint_failures_;
    return false;
  }
  // The whole attempt (flush + serialize + save) retries under the
  // backoff policy: a stall the supervisor heals mid-backoff, or a
  // transient save failure, costs a delay instead of the checkpoint.
  std::string attempt_error;
  uint64_t retries = 0;
  const bool ok = RetryWithBackoff(
      config_.checkpoint_retry, *clock_,
      [&] {
        attempt_error.clear();
        return CheckpointOnce(&attempt_error);
      },
      &retries);
  checkpoint_retries_ += retries;
  if (!ok) {
    if (error != nullptr) *error = attempt_error;
    ++checkpoint_failures_;
    return false;
  }
  ++checkpoints_taken_;
  if (checkpoint_duration_usec_ != nullptr) {
    checkpoint_duration_usec_->Record(MicrosSince(start));
  }
  return true;
}

IngestHealth IngestPipeline::health() const {
  if (stalled()) return IngestHealth::kStalled;
  if (degraded_.load(std::memory_order_relaxed) || AnyShedding()) {
    return IngestHealth::kDegraded;
  }
  return IngestHealth::kHealthy;
}

bool IngestPipeline::AnyShedding() const {
  for (const auto& lane : lanes_) {
    if (lane->shedding.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

uint64_t IngestPipeline::WorkerRestarts() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->restarts.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t IngestPipeline::TotalShed() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->shed.load(std::memory_order_relaxed);
  }
  return total;
}

void IngestPipeline::KillWorkerForTest(uint32_t shard) {
  assert(shard < lanes_.size());
  lanes_[shard]->kill.store(true, std::memory_order_release);
}

void IngestPipeline::HangWorkerForTest(uint32_t shard, bool hung) {
  assert(shard < lanes_.size());
  Lane& lane = *lanes_[shard];
  if (hung) {
    lane.hang_gen.store(lane.generation.load(std::memory_order_acquire),
                        std::memory_order_release);
  } else {
    lane.hang_gen.store(0, std::memory_order_release);
  }
}

void IngestPipeline::AttachMetrics(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    flush_duration_usec_ = nullptr;
    checkpoint_duration_usec_ = nullptr;
    stalled_gauge_ = nullptr;
    health_gauge_ = nullptr;
    return;
  }
  flush_duration_usec_ = &registry->HistogramOf(
      "ltc_ingest_flush_duration_usec",
      "Latency of Flush() barriers in microseconds");
  checkpoint_duration_usec_ = &registry->HistogramOf(
      "ltc_ingest_checkpoint_duration_usec",
      "Latency of successful checkpoints (flush + serialize + atomic "
      "save) in microseconds");
  stalled_gauge_ = &registry->GaugeOf(
      "ltc_ingest_stalled",
      "1 while a bounded wait has expired on a dead/stuck worker and "
      "the supervisor has not yet healed the stall");
  health_gauge_ = &registry->GaugeOf(
      "ltc_ingest_health_state",
      "Pipeline health state machine: 0 healthy, 1 degraded, 2 stalled");
  SampleMetrics();  // register the per-shard families up front
}

void IngestPipeline::SampleMetrics() {
  if (metrics_ == nullptr) return;
  telemetry::MetricsRegistry& registry = *metrics_;
  for (uint32_t s = 0; s < lanes_.size(); ++s) {
    const IngestShardStats stats = ShardStatsOf(s);
    const telemetry::Labels shard_label{{"shard", std::to_string(s)}};
    registry
        .CounterOf("ltc_ingest_enqueued_total",
                   "Records accepted into the shard's ring", shard_label)
        .SetFromSample(stats.enqueued);
    registry
        .CounterOf("ltc_ingest_dropped_total",
                   "Records discarded by kDrop backpressure or a stalled "
                   "kBlock push",
                   shard_label)
        .SetFromSample(stats.dropped);
    registry
        .CounterOf("ltc_ingest_shed_records_total",
                   "Records rejected by overload shedding", shard_label)
        .SetFromSample(stats.shed);
    registry
        .CounterOf("ltc_ingest_drained_total",
                   "Records applied to the shard table", shard_label)
        .SetFromSample(stats.drained);
    registry
        .CounterOf("ltc_ingest_batches_total",
                   "InsertBatch calls the shard's worker issued", shard_label)
        .SetFromSample(stats.batches);
    registry
        .CounterOf("ltc_ingest_flushes_total",
                   "Flush() waits this shard's lane completed", shard_label)
        .SetFromSample(stats.flushes);
    registry
        .CounterOf("ltc_ingest_worker_restarts_total",
                   "Times the supervisor replaced the shard's worker",
                   shard_label)
        .SetFromSample(stats.restarts);
    registry
        .GaugeOf("ltc_ingest_shed_active",
                 "1 while the lane is in counted probabilistic admission",
                 shard_label)
        .Set(stats.shedding ? 1.0 : 0.0);
    registry
        .GaugeOf("ltc_ingest_queue_depth",
                 "Ring occupancy at sampling time (racy)", shard_label)
        .Set(static_cast<double>(stats.queue_depth));
    registry
        .GaugeOf("ltc_ingest_ring_capacity",
                 "Ring capacity in records", shard_label)
        .Set(static_cast<double>(stats.ring_capacity));
  }
  registry
      .CounterOf("ltc_ingest_checkpoints_total",
                 "Checkpoint attempts by result",
                 {{"result", "ok"}})
      .SetFromSample(checkpoints_taken_);
  registry
      .CounterOf("ltc_ingest_checkpoints_total",
                 "Checkpoint attempts by result",
                 {{"result", "error"}})
      .SetFromSample(checkpoint_failures_);
  registry
      .CounterOf("ltc_ingest_checkpoint_retries_total",
                 "Checkpoint attempt re-runs under the backoff policy")
      .SetFromSample(checkpoint_retries_);
  stalled_gauge_->Set(stalled() ? 1.0 : 0.0);
  health_gauge_->Set(static_cast<double>(health()));
}

void IngestPipeline::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Stop the supervisor FIRST: after its join, no other thread touches
  // lane.worker, zombies_ or the generations, so everything below is
  // single-threaded shutdown.
  if (supervisor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(supervisor_mutex_);
      supervisor_stop_ = true;
    }
    supervisor_cv_.notify_all();
    supervisor_.join();
  }
  // Release-publish after the last push; workers acquire-read stop_ and
  // then drain whatever remains (see WorkerLoop). stop_ also releases
  // hang-seam zombies so they can exit and be joined. join() makes
  // every worker's table mutations visible to this thread.
  stop_.store(true, std::memory_order_release);
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
  for (auto& zombie : zombies_) {
    if (zombie.joinable()) zombie.join();
  }
  zombies_.clear();
  // A worker that died and was not yet replaced (supervision off, or
  // Stop() won the race with the supervisor) leaves its backlog in the
  // ring. Every thread is joined, so this thread is now the sole
  // consumer: apply the leftovers — Stop() never loses an accepted
  // record.
  std::vector<Record> batch(config_.drain_batch);
  for (uint32_t s = 0; s < lanes_.size(); ++s) {
    Lane& lane = *lanes_[s];
    for (;;) {
      const size_t n = lane.ring.PopBatch(batch.data(), batch.size());
      if (n == 0) break;
      sink_.shard(s).InsertBatch({batch.data(), n});
      lane.batches.fetch_add(1, std::memory_order_relaxed);
      lane.drained.fetch_add(n, std::memory_order_relaxed);
    }
  }
}

uint64_t IngestPipeline::TotalEnqueued() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->enqueued.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t IngestPipeline::TotalDropped() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

IngestShardStats IngestPipeline::ShardStatsOf(uint32_t shard) const {
  if (shard >= lanes_.size()) {
    throw std::out_of_range("IngestPipeline::ShardStatsOf: shard " +
                            std::to_string(shard) + " >= num_shards " +
                            std::to_string(lanes_.size()));
  }
  const Lane& lane = *lanes_[shard];
  IngestShardStats stats;
  stats.enqueued = lane.enqueued.load(std::memory_order_relaxed);
  stats.dropped = lane.dropped.load(std::memory_order_relaxed);
  stats.shed = lane.shed.load(std::memory_order_relaxed);
  stats.drained = lane.drained.load(std::memory_order_relaxed);
  stats.batches = lane.batches.load(std::memory_order_relaxed);
  stats.flushes = lane.flushes.load(std::memory_order_relaxed);
  stats.restarts = lane.restarts.load(std::memory_order_relaxed);
  stats.shedding = lane.shedding.load(std::memory_order_relaxed);
  stats.queue_depth = lane.ring.SizeApprox();
  stats.ring_capacity = lane.ring.capacity();
  return stats;
}

}  // namespace ltc
