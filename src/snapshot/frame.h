// The snapshot frame — the on-disk envelope every checkpoint is wrapped
// in (docs/DURABILITY.md):
//
//   offset  size  field
//   0       4     frame magic "LSNP"
//   4       4     frame format version (currently 1)
//   8       8     payload length in bytes
//   16      4     CRC-32 of the payload
//   20      4     CRC-32 of the 20 header bytes above
//   24      —     payload (a sketch's Serialize() bytes)
//
// All integers little-endian. The header CRC makes a flipped bit in the
// length field a typed header error instead of a garbage-length read;
// the payload CRC catches every single-byte corruption of the body
// (tests/snapshot_corruption_test.cc sweeps all offsets). Decoding
// never trusts a length it has not checked against the actual file
// size, so a truncated or inflated frame is rejected before any
// payload parsing runs.

#ifndef LTC_SNAPSHOT_FRAME_H_
#define LTC_SNAPSHOT_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ltc {

/// Why a snapshot could not be decoded. Every rejection path reports
/// one of these — corruption is a typed, testable outcome, never a
/// crash or a silently-accepted blob.
enum class SnapshotError {
  kNone = 0,
  kTooShort,          // fewer bytes than a frame header
  kBadMagic,          // not a snapshot frame at all
  kBadVersion,        // a frame format this build does not speak
  kBadHeaderCrc,      // header bytes corrupted (length untrustworthy)
  kLengthMismatch,    // actual payload size != header's payload length
  kBadPayloadCrc,     // payload bytes corrupted
  kPayloadRejected,   // frame intact but the sketch Deserialize refused
  kIoError,           // the file could not be read
  kNotFound,          // no snapshot exists
};

/// Stable human-readable name ("bad-payload-crc", ...), for logs and
/// CLI diagnostics.
const char* SnapshotErrorName(SnapshotError error);

constexpr size_t kFrameHeaderSize = 24;

/// Wraps a payload in a checksummed, versioned frame.
std::string EncodeFrame(std::string_view payload);

struct FrameDecodeResult {
  /// Views into the input frame; valid only while it lives.
  std::string_view payload;
  SnapshotError error = SnapshotError::kNone;
  bool ok() const { return error == SnapshotError::kNone; }
};

/// Validates magic, version, both CRCs and the length before exposing
/// the payload.
FrameDecodeResult DecodeFrame(std::string_view frame);

}  // namespace ltc

#endif  // LTC_SNAPSHOT_FRAME_H_
