// The file-I/O seam of the durability layer.
//
// Everything that touches the disk on the snapshot path goes through
// the `Fs` interface, for one reason: crash consistency must be
// *testable*. Production code uses SystemFs() (POSIX syscalls with
// real fsync); tests wrap it in FailpointFs (failpoint_fs.h) to inject
// short writes, fsync failures, mid-operation crashes and silent bit
// flips, and then prove the recovery path survives every one of them.
//
// AtomicWriteFile is the only way a snapshot reaches its final name:
// write-to-temp → fsync(temp) → rename(temp, final) → fsync(dir).
// rename(2) is atomic on POSIX, so a reader never observes a partially
// written final file — either the old bytes or the new bytes, never a
// mix. The directory fsync makes the rename itself durable.

#ifndef LTC_SNAPSHOT_FS_H_
#define LTC_SNAPSHOT_FS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ltc {

class Fs {
 public:
  virtual ~Fs() = default;

  /// Creates/truncates `path` and writes all of `data` (no fsync).
  virtual bool WriteAll(const std::string& path, std::string_view data) = 0;

  /// Appends all of `data` to `path`, creating it if missing (no
  /// fsync). The write-ahead log's only mutation: a crash mid-append
  /// leaves a prefix of `data` at the tail, which the log reader must
  /// treat as clean end-of-log (see src/store/wal.h).
  virtual bool AppendAll(const std::string& path, std::string_view data) = 0;

  /// Whole-file read; nullopt when missing or unreadable.
  virtual std::optional<std::string> ReadAll(const std::string& path) = 0;

  /// fsync of an existing file / directory.
  virtual bool Sync(const std::string& path) = 0;
  virtual bool SyncDir(const std::string& path) = 0;

  virtual bool Rename(const std::string& from, const std::string& to) = 0;
  virtual bool Remove(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;

  /// Entry names (not paths) in `dir`, unsorted; nullopt when the
  /// directory cannot be opened.
  virtual std::optional<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;
};

/// The process-wide POSIX filesystem.
Fs& SystemFs();

/// "/a/b/c" -> "/a/b"; a bare filename maps to ".".
std::string DirnameOf(const std::string& path);

/// Durable atomic replacement of `path` with `data` (see file comment).
/// On failure the temp file is best-effort removed, `error` (optional)
/// describes the failing step, and `path` still holds its prior
/// contents — a failed save never damages the last good snapshot.
bool AtomicWriteFile(Fs& fs, const std::string& path, std::string_view data,
                     std::string* error = nullptr);

}  // namespace ltc

#endif  // LTC_SNAPSHOT_FS_H_
