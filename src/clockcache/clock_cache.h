// Classic CLOCK page-replacement cache (Corbató, 1968).
//
// LTC's Persistency Incrementing "leverages the spirit of the well-known
// CLOCK algorithm" (§III-B): a pointer sweeps slots, inspects a reference
// flag, and lazily acts on it. This module is the textbook original — a
// second-chance FIFO approximation of LRU — kept as a reference substrate
// with its own tests so the borrowed mechanism is pinned down in isolation
// before core/ reuses the sweep-a-flag idea for period counting.

#ifndef LTC_CLOCKCACHE_CLOCK_CACHE_H_
#define LTC_CLOCKCACHE_CLOCK_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ltc {

class ClockCache {
 public:
  explicit ClockCache(size_t capacity);

  /// Touches `key`: on hit sets its reference bit and returns true; on
  /// miss admits it (evicting via the clock hand if full) and returns
  /// false.
  bool Access(uint64_t key);

  bool Contains(uint64_t key) const { return index_.count(key) > 0; }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return frames_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

  /// Current clock-hand position (exposed for the sweep tests).
  size_t hand() const { return hand_; }

 private:
  struct Frame {
    uint64_t key = 0;
    bool referenced = false;
    bool occupied = false;
  };

  size_t EvictAndAdvance();

  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, size_t> index_;
  size_t hand_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ltc

#endif  // LTC_CLOCKCACHE_CLOCK_CACHE_H_
