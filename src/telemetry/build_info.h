// The ltc_build_info info-gauge: a constant-1 gauge whose labels
// identify the running build (git sha, probe backend, version), so
// every scrape says exactly what produced it. Same stamping scheme as
// bench_common: the sha is burned in at configure time and can be
// overridden at runtime with the LTC_GIT_SHA environment variable
// (useful when the build tree is exported without .git).

#ifndef LTC_TELEMETRY_BUILD_INFO_H_
#define LTC_TELEMETRY_BUILD_INFO_H_

#include <string>

#include "telemetry/metrics.h"

namespace ltc {
namespace telemetry {

/// The git sha this binary was configured from (LTC_GIT_SHA env var
/// wins; "unknown" when neither is available).
std::string BuildGitSha();

/// The compiled-in version string.
std::string BuildVersion();

/// Registers ltc_build_info{git_sha=...,probe_backend=...,version=...}
/// with value 1. `probe_backend` is the active probe dispatch name
/// (core/table_layout.h's ProbeBackendName) — passed in so telemetry
/// stays independent of the core library.
void RegisterBuildInfo(MetricsRegistry& registry,
                       const std::string& probe_backend);

}  // namespace telemetry
}  // namespace ltc

#endif  // LTC_TELEMETRY_BUILD_INFO_H_
