// The uniform interface the experiment harness drives.
//
// Every algorithm compared in the paper — LTC and all baselines, across
// the three tasks (frequent §V-F, persistent §V-G, significant §V-H) — is
// wrapped as a SignificantReporter: feed the stream once, then ask for the
// top-k report. The harness supplies the record's period index (computed
// from the Stream's period structure) so period-aware baselines don't
// duplicate that bookkeeping.

#ifndef LTC_TOPK_INTERFACES_H_
#define LTC_TOPK_INTERFACES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stream/stream.h"

namespace ltc {

struct TopKEntry {
  ItemId item;
  double estimate;  // the algorithm's estimate of the task metric
                    // (frequency, persistency, or α·f+β·p)
};

class SignificantReporter {
 public:
  virtual ~SignificantReporter() = default;

  /// Processes one record. `period` is the record's 0-based period index;
  /// records arrive time-ordered, so periods are nondecreasing.
  virtual void Insert(ItemId item, double time, uint32_t period) = 0;

  /// Processes a run of records, in order. `periods` supplies each
  /// record's 0-based period index (the Stream that produced the records,
  /// typically). Semantically identical to one Insert per record — the
  /// default IS that loop — but implementations with a native batch path
  /// override it for speed (LtcReporter rides Ltc::InsertBatch); the
  /// harness (RunReporter, bench_speed) always feeds through this.
  virtual void InsertBatch(std::span<const Record> records,
                           const Stream& periods) {
    for (const Record& record : records) {
      Insert(record.item, record.time, periods.PeriodOf(record.time));
    }
  }

  /// Called once after the last record, before TopK / Estimate.
  virtual void Finish() {}

  /// The k items the algorithm believes have the largest metric,
  /// descending by estimate.
  virtual std::vector<TopKEntry> TopK(size_t k) const = 0;

  /// The algorithm's metric estimate for one item (0 if unknown); used by
  /// the ARE metric on reported items.
  virtual double Estimate(ItemId item) const = 0;

  /// Display name used in the figure tables ("LTC", "SS", "CM", ...).
  virtual std::string name() const = 0;
};

}  // namespace ltc

#endif  // LTC_TOPK_INTERFACES_H_
