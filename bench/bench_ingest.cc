// Ingestion-throughput benchmark for the parallel pipeline: single-table
// batch insertion vs sequential ShardedLtc vs IngestPipeline at 1/2/4/8
// shards on a Zipf speed workload, plus the incremental-vs-monolithic
// checkpoint comparison (SketchStore::CheckpointDirty vs a full
// SnapshotStore image each cadence). Emits one versioned JSON document
// (header schema in bench_common.h, reading guide in docs/PERF.md) on
// stdout so CI and scripts can consume the numbers directly; set
// LTC_BENCH_JSON_OUT=<path> to also write it to a file (CI commits it
// as bench/trajectory/BENCH_ingest.json).
//
// Throughput scales with available cores: the router thread plus one
// worker per shard all need somewhere to run, so `hardware_threads` is
// part of the output — on a single-core host the pipeline numbers mostly
// measure scheduling overhead, not the design's ceiling.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/serial.h"
#include "core/sharded_ltc.h"
#include "ingest/ingest_pipeline.h"
#include "snapshot/fs.h"
#include "snapshot/snapshot_store.h"
#include "store/sketch_store.h"
#include "telemetry/exposition.h"
#include "telemetry/ltc_collectors.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace bench {
namespace {

constexpr size_t kMemory = 100 * 1024;
constexpr int kRepeats = 3;  // best-of to shed scheduler noise

LtcConfig PacedConfig(const Stream& stream) {
  LtcConfig config;
  config.memory_bytes = kMemory;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  return config;
}

struct Row {
  std::string mode;
  uint32_t shards;
  double mops;
};

// One row of the incremental-vs-monolithic checkpoint comparison
// (docs/DURABILITY.md "Paged store, WAL, and incremental
// checkpoints"): total durability bytes and wall time for the same
// feed-then-checkpoint workload.
struct CheckpointRow {
  std::string mode;
  uint64_t checkpoints = 0;
  uint64_t bytes_written = 0;
  uint64_t wall_usec = 0;
};

// The multi-tenant checkpoint workload the paged store targets: N
// tenant sketches, of which only ONE takes writes per checkpoint
// interval (round-robin), and the whole multi-tenant state must be
// durable after every interval. Only the checkpoint work is measured
// (the insert cost is identical across modes). The monolithic path
// re-serializes ALL tenants into one SnapshotStore image each time —
// O(total state) bytes per checkpoint no matter how small the delta.
// The paged store Puts only the tenant that changed (logging only its
// changed pages) and CheckpointDirty writes back only dirty frames —
// O(delta).
std::vector<CheckpointRow> BenchCheckpoints(const Stream& stream,
                                            const LtcConfig& config,
                                            uint64_t checkpoints,
                                            uint64_t tenants) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "bench_ingest_checkpoints";
  fs::remove_all(root);
  fs::create_directories(root / "paged");
  std::vector<CheckpointRow> rows;
  const std::span<const Record> records(stream.records());
  const size_t chunk = records.size() / checkpoints;

  {
    CheckpointRow row;
    row.mode = "monolithic_snapshot";
    SnapshotStore snapshots((root / "mono.snap").string());
    std::vector<Ltc> tables(tenants, Ltc(config));
    std::chrono::steady_clock::duration spent{0};
    std::string error;
    for (uint64_t c = 0; c < checkpoints; ++c) {
      tables[c % tenants].InsertBatch(records.subspan(c * chunk, chunk));
      const auto start = std::chrono::steady_clock::now();
      BinaryWriter writer;
      for (const Ltc& table : tables) table.Serialize(writer);
      if (!snapshots.Save(writer.data(), &error)) {
        std::fprintf(stderr, "bench_ingest: snapshot save failed: %s\n",
                     error.c_str());
        break;
      }
      spent += std::chrono::steady_clock::now() - start;
      row.bytes_written += writer.data().size();
      ++row.checkpoints;
    }
    row.wall_usec = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(spent)
            .count());
    rows.push_back(row);
  }

  {
    CheckpointRow row;
    row.mode = "paged_incremental";
    std::string error;
    auto store = ltc::store::SketchStore::Open(
        SystemFs(), (root / "paged").string(), ltc::store::SketchStoreOptions{},
        &error);
    if (store == nullptr) {
      std::fprintf(stderr, "bench_ingest: store open failed: %s\n",
                   error.c_str());
      return rows;
    }
    std::vector<Ltc> tables(tenants, Ltc(config));
    std::chrono::steady_clock::duration spent{0};
    for (uint64_t c = 0; c < checkpoints; ++c) {
      const uint64_t t = c % tenants;
      tables[t].InsertBatch(records.subspan(c * chunk, chunk));
      const auto start = std::chrono::steady_clock::now();
      if (!store->Put(t, tables[t], &error) ||
          !store->CheckpointDirty(&error)) {
        std::fprintf(stderr, "bench_ingest: store checkpoint failed: %s\n",
                     error.c_str());
        break;
      }
      spent += std::chrono::steady_clock::now() - start;
      ++row.checkpoints;
    }
    // Durability bytes = WAL appends + page-file write-backs (page
    // payloads; the per-page frame header is noise at this scale).
    row.bytes_written =
        store->stats().wal_bytes +
        store->pool().stats().pages_stored *
            ltc::store::SketchStoreOptions{}.page_bytes;
    row.wall_usec = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(spent)
            .count());
    rows.push_back(row);
  }

  fs::remove_all(root);
  return rows;
}

template <typename Feed>
double BestMops(const Stream& stream, const Feed& feed) {
  double best = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    feed();
    auto end = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(end - start).count();
    if (seconds <= 0.0) continue;
    double mops = static_cast<double>(stream.size()) / seconds / 1e6;
    if (mops > best) best = mops;
  }
  return best;
}

}  // namespace

int Main() {
  Stream stream = MakeZipfStream(ScaledRecords(2'000'000, 10'000'000),
                                 100'000, 1.0, 100, 42);
  const LtcConfig config = PacedConfig(stream);
  std::vector<Row> rows;

  rows.push_back({"single_ltc_batch", 1, BestMops(stream, [&] {
                    Ltc table(config);
                    table.InsertBatch(stream.records());
                  })});
  const double single_mops = rows[0].mops;

  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    rows.push_back({"sharded_sequential", shards, BestMops(stream, [&] {
                      ShardedLtc sharded(config, shards);
                      sharded.InsertBatch(stream.records());
                    })});
    // Pipeline timing includes worker spawn and join: that is the real
    // cost of the parallel mode, not just its steady state.
    rows.push_back({"pipeline", shards, BestMops(stream, [&] {
                      ShardedLtc sharded(config, shards);
                      IngestPipeline pipeline(sharded);
                      pipeline.PushBatch(stream.records());
                      pipeline.Stop();
                    })});
  }

  // One more instrumented 2-shard run so the report carries the full
  // telemetry exposition (docs/TELEMETRY.md) — per-shard ingest
  // counters, flush latency, and the core insert-case split — alongside
  // the throughput numbers.
  telemetry::MetricsRegistry registry;
  // Robustness outcome of the instrumented run: a healthy bench run has
  // stalled=false, shed_records=0, worker_restarts=0 — nonzero values
  // flag a starved or faulty host before anyone trusts the mops column.
  bool stalled = false;
  uint64_t shed_records = 0;
  uint64_t worker_restarts = 0;
  {
    ShardedLtc sharded(config, 2);
    IngestPipeline pipeline(sharded);
    pipeline.AttachMetrics(&registry);
#ifdef LTC_METRICS
    std::vector<LtcMetricsSink> sinks(sharded.num_shards());
    for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
      sharded.AttachMetricsSink(s, &sinks[s]);
    }
#endif
    pipeline.PushBatch(stream.records());
    pipeline.Stop();
    pipeline.SampleMetrics();
    stalled = pipeline.stalled();
    shed_records = pipeline.TotalShed();
    worker_restarts = pipeline.WorkerRestarts();
#ifdef LTC_METRICS
    for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
      const Ltc& shard = sharded.shard(s);
      telemetry::PublishLtcSink(
          registry, sinks[s], {{"shard", std::to_string(s)}},
          static_cast<size_t>(shard.num_buckets()) *
              shard.cells_per_bucket());
    }
#endif
  }

  // Incremental vs monolithic checkpoints (ROADMAP item 4): the same
  // multi-tenant feed-then-checkpoint workload through the
  // SnapshotStore rotation (O(total state) bytes every time) and the
  // paged SketchStore (O(delta)).
  const std::vector<CheckpointRow> ckpt_rows =
      BenchCheckpoints(stream, config, /*checkpoints=*/32, /*tenants=*/8);

  // The versioned header (schema_version, git sha, hardware_threads,
  // timestamp, build flags, probe backend) leads the document so every
  // committed BENCH_ingest.json is comparable across re-anchors.
  const BenchReportHeader header = MakeBenchReportHeader("bench_ingest");
  std::string json = "{\n  " + BenchReportHeaderJson(header) + ",\n";
  json += "  \"records\": " + std::to_string(stream.size()) + ",\n";
  json += "  \"memory_bytes\": " + std::to_string(kMemory) + ",\n";
  json += std::string("  \"stalled\": ") + (stalled ? "true" : "false") +
          ",\n";
  json += "  \"shed_records\": " + std::to_string(shed_records) + ",\n";
  json += "  \"worker_restarts\": " + std::to_string(worker_restarts) +
          ",\n";
  json += "  \"metrics\": " + telemetry::ExpositionJson(registry);
  // ExpositionJson ends with a newline; resume with the comma on its
  // own line.
  json += "  ,\n";
  json += "  \"results\": [\n";
  char line[160];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    double speedup = single_mops > 0.0 ? row.mops / single_mops : 0.0;
    std::snprintf(line, sizeof(line),
                  "    {\"mode\": \"%s\", \"shards\": %u, \"mops\": %.3f, "
                  "\"speedup_vs_single\": %.3f}%s\n",
                  row.mode.c_str(), row.shards, row.mops, speedup,
                  i + 1 < rows.size() ? "," : "");
    json += line;
  }
  json += "  ],\n";
  json += "  \"checkpoint\": [\n";
  for (size_t i = 0; i < ckpt_rows.size(); ++i) {
    const CheckpointRow& row = ckpt_rows[i];
    const double per_ckpt =
        row.checkpoints > 0
            ? static_cast<double>(row.bytes_written) / row.checkpoints
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "    {\"mode\": \"%s\", \"checkpoints\": %llu, "
                  "\"bytes_written\": %llu, \"wall_usec\": %llu, "
                  "\"bytes_per_checkpoint\": %.0f}%s\n",
                  row.mode.c_str(),
                  static_cast<unsigned long long>(row.checkpoints),
                  static_cast<unsigned long long>(row.bytes_written),
                  static_cast<unsigned long long>(row.wall_usec), per_ckpt,
                  i + 1 < ckpt_rows.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (!MaybeWriteBenchJson(json)) {
    std::fprintf(stderr,
                 "bench_ingest: failed to write LTC_BENCH_JSON_OUT\n");
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace ltc

int main() { return ltc::bench::Main(); }
