#include "store/disk_manager.h"

#include <cstdio>
#include <cstdlib>

#include "store/page.h"

namespace ltc {
namespace store {

DiskManager::DiskManager(Fs& fs, std::string dir)
    : fs_(fs), dir_(std::move(dir)) {}

std::string DiskManager::PagePath(uint64_t tenant, uint32_t page) const {
  return dir_ + "/t" + std::to_string(tenant) + ".p" + std::to_string(page) +
         ".pg";
}

std::string DiskManager::WalPath() const { return dir_ + "/wal.log"; }

std::optional<PageIo::Loaded> DiskManager::Load(uint64_t tenant,
                                                uint32_t page,
                                                std::string* error) {
  const std::string path = PagePath(tenant, page);
  std::optional<std::string> image = fs_.ReadAll(path);
  if (!image.has_value()) {
    if (!fs_.Exists(path)) {
      Loaded loaded;
      loaded.found = false;
      return loaded;
    }
    if (error != nullptr) *error = "cannot read page file '" + path + "'";
    return std::nullopt;
  }
  PageDecodeResult decoded = DecodePage(*image);
  if (!decoded.ok()) {
    if (error != nullptr) {
      *error = "corrupt page file '" + path + "': " +
               SnapshotErrorName(decoded.error);
    }
    return std::nullopt;
  }
  if (decoded.page_id != page) {
    if (error != nullptr) {
      *error = "page file '" + path + "' holds page " +
               std::to_string(decoded.page_id) + " (cross-linked image?)";
    }
    return std::nullopt;
  }
  Loaded loaded;
  loaded.found = true;
  loaded.payload = std::string(decoded.payload);
  loaded.lsn = decoded.lsn;
  return loaded;
}

bool DiskManager::Store(uint64_t tenant, uint32_t page, uint64_t lsn,
                        std::string_view payload, std::string* error) {
  return AtomicWriteFile(fs_, PagePath(tenant, page),
                         EncodePage(page, lsn, payload), error);
}

bool DiskManager::RemovePage(uint64_t tenant, uint32_t page) {
  return fs_.Remove(PagePath(tenant, page));
}

bool DiskManager::ParsePageName(const std::string& name, uint64_t* tenant,
                                uint32_t* page) {
  if (name.size() < 7 || name[0] != 't') return false;  // "t0.p0.pg"
  if (name.size() < 4 || name.compare(name.size() - 3, 3, ".pg") != 0) {
    return false;
  }
  const size_t dot_p = name.find(".p");
  if (dot_p == std::string::npos || dot_p == 1 ||
      dot_p + 2 > name.size() - 3) {
    return false;
  }
  const std::string tenant_text = name.substr(1, dot_p - 1);
  const std::string page_text =
      name.substr(dot_p + 2, name.size() - 3 - (dot_p + 2));
  if (tenant_text.empty() || page_text.empty()) return false;
  char* end = nullptr;
  *tenant = std::strtoull(tenant_text.c_str(), &end, 10);
  if (end != tenant_text.c_str() + tenant_text.size()) return false;
  const unsigned long long page_value =
      std::strtoull(page_text.c_str(), &end, 10);
  if (end != page_text.c_str() + page_text.size() || page_value > UINT32_MAX) {
    return false;
  }
  *page = static_cast<uint32_t>(page_value);
  return true;
}

std::optional<std::map<uint64_t, std::vector<uint32_t>>>
DiskManager::ListPages(std::string* error) {
  std::optional<std::vector<std::string>> names = fs_.ListDir(dir_);
  if (!names.has_value()) {
    if (error != nullptr) {
      *error = "cannot list store directory '" + dir_ + "'";
    }
    return std::nullopt;
  }
  std::map<uint64_t, std::vector<uint32_t>> pages;
  for (const std::string& name : *names) {
    uint64_t tenant = 0;
    uint32_t page = 0;
    if (ParsePageName(name, &tenant, &page)) pages[tenant].push_back(page);
  }
  return pages;
}

}  // namespace store
}  // namespace ltc
