#include "persistent/space_time_bloom_filter.h"

#include <cassert>

#include "common/bob_hash.h"
#include "common/hash.h"

namespace ltc {

SpaceTimeBloomFilter::SpaceTimeBloomFilter(size_t num_cells,
                                           uint32_t num_hashes,
                                           uint32_t period, const IdCode* code,
                                           uint64_t seed)
    : cells_(num_cells),
      num_hashes_(num_hashes),
      period_(period),
      code_(code),
      seed_(seed) {
  assert(num_cells >= 1);
  assert(num_hashes >= 1);
  assert(code != nullptr);
}

uint32_t SpaceTimeBloomFilter::FingerprintOf(ItemId item, uint64_t seed) {
  return static_cast<uint32_t>(BobHash64(item, seed ^ 0xf1f2f3f4ULL) >> 32);
}

uint64_t SpaceTimeBloomFilter::SymbolSeed(size_t cell_index, uint32_t period,
                                          uint64_t seed) {
  return Mix64(seed ^ (static_cast<uint64_t>(period) << 32) ^ cell_index);
}

void SpaceTimeBloomFilter::Positions(ItemId item,
                                     std::vector<size_t>* out) const {
  out->clear();
  // Period-salted double hashing; duplicate positions are fine (the same
  // cell just gets written twice with the same payload).
  uint64_t h = BobHash64(item, seed_ ^ (0x9e37ULL + period_));
  uint64_t h1 = h & 0xffffffffULL;
  uint64_t h2 = ((h >> 32) << 1) | 1;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    out->push_back((h1 + i * h2) % cells_.size());
  }
}

void SpaceTimeBloomFilter::Insert(ItemId item) {
  uint32_t fp = FingerprintOf(item, seed_);
  std::vector<size_t> positions;
  Positions(item, &positions);
  for (size_t pos : positions) {
    Cell& cell = cells_[pos];
    switch (cell.state) {
      case CellState::kEmpty: {
        uint64_t symbol_seed = SymbolSeed(pos, period_, seed_);
        cell.fingerprint = fp;
        cell.symbol = code_->EncodeId(item, symbol_seed);
        cell.state = CellState::kSingleton;
        break;
      }
      case CellState::kSingleton:
        if (cell.fingerprint != fp) {
          cell.state = CellState::kCollision;
          cell.fingerprint = 0;
          cell.symbol = 0;
        }
        break;
      case CellState::kCollision:
        break;  // already dead
    }
  }
}

bool SpaceTimeBloomFilter::MayContain(ItemId item) const {
  uint32_t fp = FingerprintOf(item, seed_);
  std::vector<size_t> positions;
  Positions(item, &positions);
  for (size_t pos : positions) {
    const Cell& cell = cells_[pos];
    if (cell.state == CellState::kEmpty) return false;
    if (cell.state == CellState::kSingleton && cell.fingerprint != fp) {
      return false;
    }
  }
  return true;
}

}  // namespace ltc
