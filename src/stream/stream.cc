#include "stream/stream.h"

#include <cassert>
#include <unordered_set>

namespace ltc {

Stream::Stream(std::vector<Record> records, uint32_t num_periods,
               double duration)
    : records_(std::move(records)),
      num_periods_(num_periods),
      duration_(duration) {
  assert(num_periods_ >= 1);
  assert(duration_ > 0.0);
#ifndef NDEBUG
  for (size_t i = 1; i < records_.size(); ++i) {
    assert(records_[i - 1].time <= records_[i].time);
  }
  for (const Record& r : records_) {
    assert(r.time >= 0.0 && r.time <= duration_);
  }
#endif
}

size_t Stream::CountDistinct() const {
  if (distinct_cache_ == 0 && !records_.empty()) {
    std::unordered_set<ItemId> seen;
    seen.reserve(records_.size() / 4);
    for (const Record& r : records_) seen.insert(r.item);
    distinct_cache_ = seen.size();
  }
  return distinct_cache_;
}

Stream MakeIndexedStream(std::vector<ItemId> items, uint32_t num_periods) {
  std::vector<Record> records;
  records.reserve(items.size());
  double n = static_cast<double>(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    records.push_back({items[i], static_cast<double>(i) + 0.5});
  }
  return Stream(std::move(records), num_periods, n);
}

}  // namespace ltc
