// End-to-end tests of the reporter adapters on small synthetic streams:
// each algorithm, fed through the uniform harness interface, must solve
// its task well when memory is ample — and the memory-accounting rules
// (heap carve-out, BF half-split, PIE per-period budget) must hold.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/evaluate.h"
#include "metrics/ground_truth.h"
#include "stream/generators.h"
#include "topk/reporters.h"

namespace ltc {
namespace {

constexpr size_t kK = 20;

struct Workbench {
  Stream stream;
  GroundTruth truth;
};

Workbench FrequentBench() {
  Stream s = MakeZipfStream(100'000, 5'000, 1.1, 50, 101);
  GroundTruth t = GroundTruth::Compute(s);
  return {std::move(s), std::move(t)};
}

Workbench PersistentBench() {
  WorkloadConfig config;
  config.num_records = 100'000;
  config.num_distinct = 5'000;
  config.zipf_gamma = 1.0;
  config.num_periods = 50;
  config.p_stable = 0.3;
  config.p_bursty = 0.3;
  config.seed = 103;
  Stream s = GenerateWorkload(config);
  GroundTruth t = GroundTruth::Compute(s);
  return {std::move(s), std::move(t)};
}

double RunPrecision(SignificantReporter& reporter, const Workbench& bench,
                    double alpha, double beta) {
  RunResult r = RunReporter(reporter, bench.stream, bench.truth, kK, alpha,
                            beta);
  return r.eval.precision;
}

// ------------------------------------------------------ frequent task

TEST(Reporters, FrequentTaskAllAlgorithmsAccurateWithAmpleMemory) {
  Workbench bench = FrequentBench();
  constexpr size_t kMemory = 256 * 1024;

  LtcConfig ltc_config;
  ltc_config.memory_bytes = kMemory;
  ltc_config.alpha = 1.0;
  ltc_config.beta = 0.0;
  LtcReporter ltc(ltc_config, bench.stream.num_periods(),
                  bench.stream.duration());
  SpaceSavingReporter ss(kMemory);
  LossyCountingReporter lc(kMemory);
  MisraGriesReporter mg(kMemory);
  SketchHeapFrequentReporter cm(SketchKind::kCountMin, kMemory, kK);
  SketchHeapFrequentReporter cu(SketchKind::kCu, kMemory, kK);
  SketchHeapFrequentReporter cs(SketchKind::kCount, kMemory, kK);

  EXPECT_GE(RunPrecision(ltc, bench, 1.0, 0.0), 0.9) << "LTC";
  EXPECT_GE(RunPrecision(ss, bench, 1.0, 0.0), 0.9) << "SS";
  EXPECT_GE(RunPrecision(lc, bench, 1.0, 0.0), 0.9) << "LC";
  EXPECT_GE(RunPrecision(mg, bench, 1.0, 0.0), 0.9) << "MG";
  EXPECT_GE(RunPrecision(cm, bench, 1.0, 0.0), 0.9) << "CM";
  EXPECT_GE(RunPrecision(cu, bench, 1.0, 0.0), 0.9) << "CU";
  EXPECT_GE(RunPrecision(cs, bench, 1.0, 0.0), 0.9) << "Count";
}

TEST(Reporters, FrequentTaskLtcWinsAtTightMemory) {
  // The headline §V-F effect in miniature: at a tight budget LTC's
  // precision beats Space-Saving's.
  Workbench bench = FrequentBench();
  constexpr size_t kMemory = 2 * 1024;

  LtcConfig ltc_config;
  ltc_config.memory_bytes = kMemory;
  ltc_config.beta = 0.0;
  LtcReporter ltc(ltc_config, bench.stream.num_periods(),
                  bench.stream.duration());
  SpaceSavingReporter ss(kMemory);

  double ltc_precision = RunPrecision(ltc, bench, 1.0, 0.0);
  double ss_precision = RunPrecision(ss, bench, 1.0, 0.0);
  EXPECT_GT(ltc_precision, ss_precision);
  EXPECT_GE(ltc_precision, 0.6);
}

TEST(Reporters, NamesAreStable) {
  EXPECT_EQ(SketchKindName(SketchKind::kCountMin), "CM");
  EXPECT_EQ(SketchKindName(SketchKind::kCu), "CU");
  EXPECT_EQ(SketchKindName(SketchKind::kCount), "Count");
  SpaceSavingReporter ss(1024);
  EXPECT_EQ(ss.name(), "SS");
  BfSketchPersistentReporter bf(SketchKind::kCu, 4096, 5);
  EXPECT_EQ(bf.name(), "BF+CU");
  CombinedSignificantReporter combo(SketchKind::kCu, 4096, 5, 1, 1);
  EXPECT_EQ(combo.name(), "CU+CU");
}

// ------------------------------------------------------ persistent task

TEST(Reporters, PersistentTaskBfSketchAndLtcWork) {
  Workbench bench = PersistentBench();
  constexpr size_t kMemory = 128 * 1024;

  LtcConfig ltc_config;
  ltc_config.memory_bytes = kMemory;
  ltc_config.alpha = 0.0;
  ltc_config.beta = 1.0;
  LtcReporter ltc(ltc_config, bench.stream.num_periods(),
                  bench.stream.duration());
  BfSketchPersistentReporter bf_cu(SketchKind::kCu, kMemory, kK);
  BfSketchPersistentReporter bf_cm(SketchKind::kCountMin, kMemory, kK);

  EXPECT_GE(RunPrecision(ltc, bench, 0.0, 1.0), 0.75) << "LTC";
  EXPECT_GE(RunPrecision(bf_cu, bench, 0.0, 1.0), 0.6) << "BF+CU";
  EXPECT_GE(RunPrecision(bf_cm, bench, 0.0, 1.0), 0.6) << "BF+CM";
}

TEST(Reporters, PersistentTaskBfSpaceSavingWorks) {
  Workbench bench = PersistentBench();
  BfSpaceSavingPersistentReporter bf_ss(128 * 1024);
  EXPECT_GE(RunPrecision(bf_ss, bench, 0.0, 1.0), 0.5);
  EXPECT_EQ(bf_ss.name(), "BF+SS");
}

TEST(Reporters, BfSpaceSavingCountsPeriodsNotArrivals) {
  BfSpaceSavingPersistentReporter bf_ss(64 * 1024);
  for (int i = 0; i < 50; ++i) bf_ss.Insert(7, 0.0, 0);
  bf_ss.Insert(7, 1.0, 1);
  EXPECT_EQ(bf_ss.Estimate(7), 2.0);
}

TEST(Reporters, PersistentTaskPieDecodesWithPerPeriodBudget) {
  // Smaller stream: PIE is O(cells·T) to decode.
  WorkloadConfig config;
  config.num_records = 20'000;
  config.num_distinct = 1'000;
  config.num_periods = 20;
  config.p_stable = 0.4;
  config.seed = 104;
  Stream s = GenerateWorkload(config);
  GroundTruth truth = GroundTruth::Compute(s);

  PieReporter pie(32 * 1024, s.num_periods());
  RunResult r = RunReporter(pie, s, truth, kK, 0.0, 1.0);
  EXPECT_GE(r.eval.precision, 0.5);
}

TEST(Reporters, PersistentEstimateIsPeriodsNotArrivals) {
  // 100 arrivals of one item inside a single period must count once.
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back({7, static_cast<double>(i) * 0.01});
  }
  records.push_back({7, 5.0});  // second period
  Stream s(std::move(records), 2, 10.0);

  BfSketchPersistentReporter bf(SketchKind::kCu, 64 * 1024, 5);
  for (const Record& r : s.records()) {
    bf.Insert(r.item, r.time, s.PeriodOf(r.time));
  }
  bf.Finish();
  EXPECT_EQ(bf.Estimate(7), 2.0);
}

// ------------------------------------------------------ significant task

TEST(Reporters, SignificantTaskLtcAndComboAgreeOnEasyStream) {
  Workbench bench = PersistentBench();
  constexpr size_t kMemory = 256 * 1024;
  constexpr double kAlpha = 1.0;
  constexpr double kBeta = 1.0;

  LtcConfig ltc_config;
  ltc_config.memory_bytes = kMemory;
  ltc_config.alpha = kAlpha;
  ltc_config.beta = kBeta;
  LtcReporter ltc(ltc_config, bench.stream.num_periods(),
                  bench.stream.duration());
  CombinedSignificantReporter combo(SketchKind::kCu, kMemory, kK, kAlpha,
                                    kBeta);

  EXPECT_GE(RunPrecision(ltc, bench, kAlpha, kBeta), 0.8) << "LTC";
  EXPECT_GE(RunPrecision(combo, bench, kAlpha, kBeta), 0.5) << "CU+CU";
}

TEST(Reporters, CombinedEstimateIsWeightedSum) {
  CombinedSignificantReporter combo(SketchKind::kCountMin, 64 * 1024, 5, 2.0,
                                    10.0);
  // Item 9: 3 arrivals across 2 periods.
  combo.Insert(9, 0.1, 0);
  combo.Insert(9, 0.2, 0);
  combo.Insert(9, 1.1, 1);
  // CM is exact here (huge width, single item): f̂=3, p̂=2.
  EXPECT_DOUBLE_EQ(combo.Estimate(9), 2.0 * 3 + 10.0 * 2);
}

TEST(Reporters, LtcReporterEstimateMatchesUnderlyingQuery) {
  LtcConfig config;
  config.memory_bytes = 8 * 1024;
  LtcReporter reporter(config, 10, 100.0);
  reporter.Insert(5, 1.0, 0);
  reporter.Insert(5, 2.0, 0);
  reporter.Finish();
  EXPECT_EQ(reporter.Estimate(5), reporter.ltc().QuerySignificance(5));
  EXPECT_GT(reporter.Estimate(5), 0.0);
}

TEST(Reporters, PieReporterEmptyBeforeFinish) {
  PieReporter pie(8 * 1024, 10);
  pie.Insert(7, 0.0, 0);
  // TopK reads the decoded snapshot, which only Finish() fills.
  EXPECT_TRUE(pie.TopK(5).empty());
  pie.Finish();
  SUCCEED();
}

TEST(Reporters, CombinedTopKIsSortedByCombinedEstimate) {
  CombinedSignificantReporter combo(SketchKind::kCu, 128 * 1024, 10, 1.0,
                                    1.0);
  for (int i = 0; i < 20; ++i) combo.Insert(1, 0.1 * i, 0);
  for (int i = 0; i < 5; ++i) combo.Insert(2, 0.1 * i, 0);
  combo.Insert(3, 0.5, 0);
  auto top = combo.TopK(3);
  ASSERT_GE(top.size(), 2u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].estimate, top[i].estimate);
  }
  EXPECT_EQ(top[0].item, 1u);
}

TEST(Reporters, RunReporterReportsThroughput) {
  Workbench bench = FrequentBench();
  SpaceSavingReporter ss(16 * 1024);
  RunResult r = RunReporter(ss, bench.stream, bench.truth, kK, 1.0, 0.0);
  EXPECT_GT(r.insert_mops, 0.0);
}

}  // namespace
}  // namespace ltc
