#include "store/page.h"

#include "common/crc32.h"
#include "common/serial.h"

namespace ltc {
namespace store {
namespace {

constexpr uint32_t kPageMagic = 0x4c504147;  // "LPAG"
constexpr uint32_t kPageFormatVersion = 1;

// The four SoA lanes of the v3 snapshot payload, in serialization
// order: element width in bytes (core/ltc.cc Serialize).
constexpr size_t kLaneWidths[] = {8, 4, 4, 1};  // ids, freqs, counters, flags

size_t SlicesOf(size_t bytes, size_t page_bytes) {
  return (bytes + page_bytes - 1) / page_bytes;
}

}  // namespace

std::string EncodePage(uint32_t page_id, uint64_t lsn,
                       std::string_view payload) {
  BinaryWriter header;
  header.PutU32(kPageMagic);
  header.PutU32(kPageFormatVersion);
  header.PutU32(page_id);
  header.PutU64(lsn);
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload));
  header.PutU32(Crc32(header.data()));
  std::string image = header.data();
  image.append(payload.data(), payload.size());
  return image;
}

PageDecodeResult DecodePage(std::string_view image) {
  PageDecodeResult result;
  if (image.size() < kPageFrameHeaderSize) {
    result.error = SnapshotError::kTooShort;
    return result;
  }
  BinaryReader reader(image.substr(0, kPageFrameHeaderSize));
  const uint32_t magic = reader.GetU32();
  const uint32_t version = reader.GetU32();
  const uint32_t page_id = reader.GetU32();
  const uint64_t lsn = reader.GetU64();
  const uint64_t payload_len = reader.GetU64();
  const uint32_t payload_crc = reader.GetU32();
  const uint32_t header_crc = reader.GetU32();
  // Header CRC first: with a corrupted header no other field (magic
  // included) can be trusted — but magic/version are checked before it
  // so a non-page blob reports "not a page" rather than "bad CRC".
  if (magic != kPageMagic) {
    result.error = SnapshotError::kBadMagic;
    return result;
  }
  if (version != kPageFormatVersion) {
    result.error = SnapshotError::kBadVersion;
    return result;
  }
  if (header_crc != Crc32(image.substr(0, kPageFrameHeaderSize - 4))) {
    result.error = SnapshotError::kBadHeaderCrc;
    return result;
  }
  if (image.size() - kPageFrameHeaderSize != payload_len) {
    result.error = SnapshotError::kLengthMismatch;
    return result;
  }
  std::string_view payload = image.substr(kPageFrameHeaderSize);
  if (payload_crc != Crc32(payload)) {
    result.error = SnapshotError::kBadPayloadCrc;
    return result;
  }
  result.page_id = page_id;
  result.lsn = lsn;
  result.payload = payload;
  return result;
}

size_t PageCodec::PageCount(size_t num_cells, size_t page_bytes) {
  size_t pages = 1;  // the config/header page
  for (size_t width : kLaneWidths) pages += SlicesOf(num_cells * width, page_bytes);
  return pages;
}

std::vector<std::string> PageCodec::SplitPayload(std::string_view payload,
                                                 size_t num_cells,
                                                 size_t page_bytes,
                                                 std::string* error) {
  std::vector<std::string> pages;
  if (page_bytes == 0) {
    if (error != nullptr) *error = "page_bytes must be > 0";
    return pages;
  }
  size_t lane_bytes = 0;
  for (size_t width : kLaneWidths) lane_bytes += num_cells * width;
  if (payload.size() < lane_bytes || payload.size() == lane_bytes) {
    // The header region (config + dynamic state + cell count) is never
    // empty for a well-formed v3 payload.
    if (error != nullptr) {
      *error = "payload too short for " + std::to_string(num_cells) +
               " cells (" + std::to_string(payload.size()) + " bytes)";
    }
    return pages;
  }
  const size_t header_bytes = payload.size() - lane_bytes;
  pages.reserve(PageCount(num_cells, page_bytes));
  pages.emplace_back(payload.substr(0, header_bytes));
  size_t offset = header_bytes;
  for (size_t width : kLaneWidths) {
    size_t remaining = num_cells * width;
    while (remaining > 0) {
      const size_t take = remaining < page_bytes ? remaining : page_bytes;
      pages.emplace_back(payload.substr(offset, take));
      offset += take;
      remaining -= take;
    }
  }
  return pages;
}

std::string PageCodec::AssemblePayload(const std::vector<std::string>& pages) {
  size_t total = 0;
  for (const std::string& page : pages) total += page.size();
  std::string payload;
  payload.reserve(total);
  for (const std::string& page : pages) payload += page;
  return payload;
}

}  // namespace store
}  // namespace ltc
