// ltc_query — command-line client for a --serve'd ltc_cli
// (docs/SERVING.md). One TCP connection, one request per verb given on
// the command line (pipelined in order), human-readable output.
//
//   ltc_query --port P [--host H] <verb> [arg] [<verb> [arg] ...]
//
// verbs:
//   ping            liveness + current snapshot seq / record count
//   topk K          the K most significant items
//   sig KEY         estimated significance of KEY
//   freq KEY        estimated frequency of KEY
//   pers KEY        estimated persistency of KEY
//   stats           service stats (snapshot seq, records, memory, shards)
//
// exit status: 0 = every request answered kOk; 2 = usage error;
// 3 = the server answered at least one typed error frame;
// 4 = connection / transport failure (includes truncated responses).

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace ltc {
namespace server {
namespace {

struct PendingRequest {
  Opcode opcode;
  std::string frame;  // framed request bytes, ready to send
  std::string label;  // "topk 5", "sig alpha", ... for output headers
};

int Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "ltc_query: %s\n", message);
  std::fputs(
      "usage: ltc_query --port P [--host H] <verb> [arg] [...]\n"
      "verbs: ping | topk K | sig KEY | freq KEY | pers KEY | stats\n",
      stderr);
  return 2;
}

int Connect(const std::string& host, uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address '" + host + "' (numeric IPv4 only)";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, std::string_view bytes, std::string* error) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Blocking-reads one complete response payload.
std::optional<std::string> RecvFrame(int fd, FrameParser& parser,
                                     std::string* error) {
  while (true) {
    if (auto payload = parser.Next()) return payload;
    if (parser.oversized()) {
      *error = "server sent an oversized frame";
      return std::nullopt;
    }
    char buf[16384];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      *error = "connection closed mid-response";
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

void PrintResponse(const PendingRequest& request,
                   const DecodedResponse& response) {
  switch (request.opcode) {
    case Opcode::kPing:
      std::printf("pong snapshot_seq=%llu records=%llu\n",
                  static_cast<unsigned long long>(response.snapshot_seq),
                  static_cast<unsigned long long>(response.records));
      return;
    case Opcode::kTopK:
      std::printf("# %s: %zu item(s)\n", request.label.c_str(),
                  response.topk.size());
      std::printf("%-24s %12s %12s %14s\n", "item", "frequency",
                  "persistency", "significance");
      for (const TopKEntry& entry : response.topk) {
        std::printf("%-24s %12llu %12llu %14g\n", entry.key.c_str(),
                    static_cast<unsigned long long>(entry.frequency),
                    static_cast<unsigned long long>(entry.persistency),
                    entry.significance);
      }
      return;
    case Opcode::kEstimateSignificance:
      std::printf("%s = %g\n", request.label.c_str(), response.value_double);
      return;
    case Opcode::kEstimateFrequency:
    case Opcode::kEstimatePersistency:
      std::printf("%s = %llu\n", request.label.c_str(),
                  static_cast<unsigned long long>(response.value_u64));
      return;
    case Opcode::kStats:
      std::printf(
          "stats snapshot_seq=%llu records=%llu memory_bytes=%llu "
          "shards=%u protocol_version=%u\n",
          static_cast<unsigned long long>(response.stats.snapshot_seq),
          static_cast<unsigned long long>(response.stats.records),
          static_cast<unsigned long long>(response.stats.memory_bytes),
          response.stats.num_shards, response.stats.protocol_version);
      return;
  }
}

int Main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int32_t port = -1;
  std::vector<PendingRequest> requests;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ltc_query: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
      return 0;
    } else if (arg == "--port") {
      const char* value = next("--port");
      if (value == nullptr) return 2;
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || parsed == 0 || parsed > 65535) {
        return Usage("bad --port (need 1..65535)");
      }
      port = static_cast<int32_t>(parsed);
    } else if (arg == "--host") {
      const char* value = next("--host");
      if (value == nullptr) return 2;
      host = value;
    } else if (arg == "ping") {
      requests.push_back({Opcode::kPing, EncodeFrame(EncodePingRequest()), "ping"});
    } else if (arg == "stats") {
      requests.push_back({Opcode::kStats, EncodeFrame(EncodeStatsRequest()), "stats"});
    } else if (arg == "topk") {
      const char* value = next("topk");
      if (value == nullptr) return 2;
      char* end = nullptr;
      const unsigned long k = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || k == 0 || k > kMaxTopK) {
        return Usage("bad topk K");
      }
      requests.push_back(
          {Opcode::kTopK,
           EncodeFrame(EncodeTopKRequest(static_cast<uint32_t>(k))),
           "topk " + std::string(value)});
    } else if (arg == "sig" || arg == "freq" || arg == "pers") {
      const char* value = next(arg.c_str());
      if (value == nullptr) return 2;
      const Opcode opcode = arg == "sig"    ? Opcode::kEstimateSignificance
                            : arg == "freq" ? Opcode::kEstimateFrequency
                                            : Opcode::kEstimatePersistency;
      requests.push_back({opcode,
                          EncodeFrame(EncodeEstimateRequest(opcode, value)),
                          arg + " " + value});
    } else {
      return Usage(("unknown argument '" + arg + "'").c_str());
    }
  }
  if (port < 0) return Usage("--port is required");
  if (requests.empty()) return Usage("no request verbs given");

  std::string error;
  const int fd = Connect(host, static_cast<uint16_t>(port), &error);
  if (fd < 0) {
    std::fprintf(stderr, "ltc_query: %s\n", error.c_str());
    return 4;
  }

  // Pipeline every request, then read the responses back in order.
  std::string outgoing;
  for (const PendingRequest& request : requests) outgoing += request.frame;
  if (!SendAll(fd, outgoing, &error)) {
    std::fprintf(stderr, "ltc_query: %s\n", error.c_str());
    ::close(fd);
    return 4;
  }

  FrameParser parser;
  bool server_error = false;
  for (const PendingRequest& request : requests) {
    const auto payload = RecvFrame(fd, parser, &error);
    if (!payload) {
      std::fprintf(stderr, "ltc_query: %s\n", error.c_str());
      ::close(fd);
      return 4;
    }
    const auto response = DecodeResponse(request.opcode, *payload);
    if (!response) {
      std::fprintf(stderr, "ltc_query: undecodable response for '%s'\n",
                   request.label.c_str());
      ::close(fd);
      return 4;
    }
    if (response->status != Status::kOk) {
      std::fprintf(stderr, "ltc_query: %s: error %s: %s\n",
                   request.label.c_str(), StatusName(response->status),
                   response->error_detail.c_str());
      server_error = true;
      continue;
    }
    PrintResponse(request, *response);
  }
  ::close(fd);
  return server_error ? 3 : 0;
}

}  // namespace
}  // namespace server
}  // namespace ltc

int main(int argc, char** argv) { return ltc::server::Main(argc, argv); }
