// Space-Saving (Metwally, Agrawal & El Abbadi, 2005) with the
// Stream-Summary structure — the strongest counter-based frequent-items
// baseline in the paper (§II-A).
//
// Stream-Summary keeps counters grouped into "count buckets" linked in
// ascending count order; all counters in a bucket share the same count.
// This gives O(1) increment and O(1) access to the minimum counter. When a
// new item arrives and all counters are taken, the minimum counter's item
// is replaced and the new item's count is set to f_min + 1 — exactly the
// overestimating behaviour Long-tail Replacement is designed to beat.

#ifndef LTC_SUMMARY_SPACE_SAVING_H_
#define LTC_SUMMARY_SPACE_SAVING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/stream.h"

namespace ltc {

class SpaceSaving {
 public:
  struct Entry {
    ItemId item;
    uint64_t count;
    uint64_t error;  // upper bound on overestimation (f_min at takeover)
  };

  /// \param num_counters  number of monitored items (the paper sizes this
  ///                      from the memory budget; see BytesPerCounter)
  explicit SpaceSaving(size_t num_counters);

  void Insert(ItemId item);

  /// Estimated count; 0 when the item is not monitored. Guaranteed
  /// f̂ >= f for monitored items (one-sided overestimation).
  uint64_t Estimate(ItemId item) const;

  /// Overestimation bound for a monitored item (0 if not monitored).
  uint64_t ErrorOf(ItemId item) const;

  bool IsMonitored(ItemId item) const { return index_.count(item) > 0; }

  /// The k largest counters, descending (ties by item ID).
  std::vector<Entry> TopK(size_t k) const;

  /// Metwally et al.'s "guaranteed top-k" test: entry i of the top-k is
  /// guaranteed correct when its lower bound count−error is at least the
  /// (k+1)-th counter's upper bound. Returns per-entry guarantees aligned
  /// with TopK(k); entries beyond the monitored set are never guaranteed.
  std::vector<bool> GuaranteedTopK(size_t k) const;

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }

  /// Smallest monitored count (0 when not yet full).
  uint64_t MinCount() const;

  /// Model cost per counter under the paper's memory accounting: 8B item,
  /// 4B count, 4B error, 8B of Stream-Summary linkage.
  static constexpr size_t BytesPerCounter() { return 24; }
  static size_t CountersForMemory(size_t bytes) {
    size_t n = bytes / BytesPerCounter();
    return n == 0 ? 1 : n;
  }

  /// Structural invariant check used by tests: buckets strictly ascending,
  /// every counter's count equals its bucket's count, index consistent.
  bool CheckInvariants() const;

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  // Counter node, intrusively linked into its bucket's counter list.
  struct Counter {
    ItemId item;
    uint64_t error;
    uint32_t bucket;  // owning bucket slot
    uint32_t prev;    // sibling counters in the same bucket
    uint32_t next;
  };

  // Count bucket, linked in ascending count order.
  struct Bucket {
    uint64_t count;
    uint32_t head;  // first counter in this bucket (never kNil when live)
    uint32_t prev;  // neighbouring buckets
    uint32_t next;
  };

  // Detaches counter c from its bucket; frees the bucket if it empties.
  // Returns the bucket that preceded c's bucket (kNil if none), which is
  // where a caller looking "one step down" should look.
  void DetachCounter(uint32_t c);
  // Moves counter c into a bucket with count `target`, which must sit
  // right after bucket `after` (kNil = at the list head).
  void AttachCounter(uint32_t c, uint64_t target, uint32_t after);
  uint32_t AllocBucket();
  void FreeBucket(uint32_t b);
  void IncrementCounter(uint32_t c);

  size_t capacity_;
  std::vector<Counter> counters_;
  std::vector<Bucket> buckets_;
  std::vector<uint32_t> free_buckets_;
  uint32_t min_bucket_ = kNil;  // lowest-count bucket
  std::unordered_map<ItemId, uint32_t> index_;  // item -> counter slot
};

}  // namespace ltc

#endif  // LTC_SUMMARY_SPACE_SAVING_H_
