// Cross-algorithm and metamorphic properties: relations that must hold
// BETWEEN independent implementations, which catch bugs no single-module
// test can see.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ltc.h"
#include "metrics/ground_truth.h"
#include "sketch/count_min.h"
#include "stream/generators.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"

namespace ltc {
namespace {

Stream TestStream(uint64_t seed) {
  return MakeZipfStream(50'000, 4'000, 1.0, 25, seed);
}

// Misra-Gries never overestimates, Space-Saving and CM never
// underestimate: for every item the three estimates and the truth must
// interleave as MG <= truth <= min(SS, CM).
TEST(CrossAlgorithm, UnderAndOverEstimatorsSandwichTheTruth) {
  Stream stream = TestStream(1);
  GroundTruth truth = GroundTruth::Compute(stream);

  MisraGries mg(256);
  SpaceSaving ss(256);
  CountMinSketch cm(8 * 1024, 3, 1);
  for (const Record& r : stream.records()) {
    mg.Insert(r.item);
    ss.Insert(r.item);
    cm.Insert(r.item);
  }

  for (const auto& [item, info] : truth.items()) {
    uint64_t f = info.frequency;
    ASSERT_LE(mg.Estimate(item), f) << "MG overestimated item " << item;
    ASSERT_GE(cm.Query(item), f) << "CM underestimated item " << item;
    if (ss.IsMonitored(item)) {
      ASSERT_GE(ss.Estimate(item), f) << "SS underestimated item " << item;
    }
  }
}

// LTC without Long-tail Replacement is one-sided the other way (Thm
// IV.1): its frequency estimate joins the sandwich below CM's.
TEST(CrossAlgorithm, LtcWithoutLtrIsALowerBoundCmAnUpperBound) {
  Stream stream = TestStream(2);
  GroundTruth truth = GroundTruth::Compute(stream);

  LtcConfig config;
  config.memory_bytes = 16 * 1024;
  config.beta = 0.0;
  config.long_tail_replacement = false;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  Ltc table(config);
  CountMinSketch cm(16 * 1024, 3, 2);
  for (const Record& r : stream.records()) {
    table.Insert(r.item, r.time);
    cm.Insert(r.item);
  }
  table.Finalize();

  for (const auto& report : table.TopK(200)) {
    uint64_t f = truth.Frequency(report.item);
    ASSERT_LE(report.frequency, f);
    ASSERT_GE(cm.Query(report.item), f);
    ASSERT_LE(report.frequency, cm.Query(report.item));
  }
}

// Ground truth is invariant under shuffling records WITHIN a period:
// frequency counts all records and persistency only counts period
// membership, so intra-period order cannot matter.
TEST(CrossAlgorithm, GroundTruthInvariantUnderIntraPeriodShuffle) {
  Stream original = TestStream(3);
  GroundTruth before = GroundTruth::Compute(original);

  // Shuffle each period's slice (records are index-timestamped; keep
  // times, permute the items among the slots within the period).
  std::vector<Record> records = original.records();
  Rng rng(33);
  size_t begin = 0;
  while (begin < records.size()) {
    uint32_t period = original.PeriodOf(records[begin].time);
    size_t end = begin;
    while (end < records.size() &&
           original.PeriodOf(records[end].time) == period) {
      ++end;
    }
    size_t span = end - begin;
    if (span >= 2) {
      for (size_t off = span - 1; off > 0; --off) {
        size_t j = rng.Uniform(off + 1);
        std::swap(records[begin + off].item, records[begin + j].item);
      }
    }
    begin = end;
  }
  Stream shuffled(std::move(records), original.num_periods(),
                  original.duration());
  GroundTruth after = GroundTruth::Compute(shuffled);

  ASSERT_EQ(before.num_distinct(), after.num_distinct());
  for (const auto& [item, info] : before.items()) {
    ASSERT_EQ(info.frequency, after.Frequency(item)) << "item " << item;
    ASSERT_EQ(info.persistency, after.Persistency(item)) << "item " << item;
  }
}

// Space-Saving's classic guarantee relative to the top-k task: any item
// with true frequency above N/capacity is monitored at the end.
TEST(CrossAlgorithm, SpaceSavingMonitorsAllHeavyHitters) {
  Stream stream = TestStream(4);
  GroundTruth truth = GroundTruth::Compute(stream);
  constexpr size_t kCapacity = 128;
  SpaceSaving ss(kCapacity);
  for (const Record& r : stream.records()) ss.Insert(r.item);

  uint64_t threshold = stream.size() / kCapacity;
  for (const auto& [item, info] : truth.items()) {
    if (info.frequency > threshold) {
      EXPECT_TRUE(ss.IsMonitored(item))
          << "heavy item " << item << " (f=" << info.frequency
          << ") not monitored";
    }
  }
}

// Two independently seeded LTC tables see the same stream: their top-k
// SETS should agree heavily even though bucket layouts differ entirely
// (seed only changes collisions, not the algorithm).
TEST(CrossAlgorithm, SeedChangesLayoutNotAnswers) {
  Stream stream = TestStream(5);
  LtcConfig config;
  config.memory_bytes = 32 * 1024;
  config.period_mode = PeriodMode::kTimeBased;
  config.period_seconds = stream.duration() / stream.num_periods();
  config.seed = 1;
  Ltc a(config);
  config.seed = 2;
  Ltc b(config);
  for (const Record& r : stream.records()) {
    a.Insert(r.item, r.time);
    b.Insert(r.item, r.time);
  }
  a.Finalize();
  b.Finalize();

  auto top_a = a.TopK(100);
  auto top_b = b.TopK(100);
  std::unordered_map<ItemId, bool> in_a;
  for (const auto& r : top_a) in_a[r.item] = true;
  size_t overlap = 0;
  for (const auto& r : top_b) overlap += in_a.count(r.item);
  EXPECT_GE(overlap, 95u);
}

}  // namespace
}  // namespace ltc
