#include "clockcache/clock_cache.h"

#include <cassert>

namespace ltc {

ClockCache::ClockCache(size_t capacity) : frames_(capacity) {
  assert(capacity >= 1);
  index_.reserve(capacity * 2);
}

size_t ClockCache::EvictAndAdvance(Evicted* evicted) {
  // Sweep: give referenced frames a second chance, evict the first
  // unreferenced unpinned one. Pinned frames are invisible to the hand
  // (their reference bits are left alone), so the sweep terminates
  // within two revolutions over the evictable frames — or reports
  // failure when there are none.
  size_t steps = 0;
  const size_t limit = 2 * frames_.size();
  while (steps++ < limit) {
    Frame& frame = frames_[hand_];
    if (frame.occupied && frame.pins > 0) {
      hand_ = (hand_ + 1) % frames_.size();
      continue;
    }
    if (frame.occupied && frame.referenced) {
      frame.referenced = false;
      hand_ = (hand_ + 1) % frames_.size();
      continue;
    }
    size_t victim = hand_;
    hand_ = (hand_ + 1) % frames_.size();
    if (frames_[victim].occupied) {
      if (evicted != nullptr) {
        evicted->happened = true;
        evicted->key = frames_[victim].key;
        evicted->dirty = frames_[victim].dirty;
      }
      index_.erase(frames_[victim].key);
    }
    return victim;
  }
  return frames_.size();  // every frame is pinned
}

ClockCache::Admit ClockCache::AccessEx(uint64_t key, Evicted* evicted) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    frames_[it->second].referenced = true;
    ++hits_;
    return Admit::kHit;
  }
  ++misses_;
  size_t slot = EvictAndAdvance(evicted);
  if (slot == frames_.size()) return Admit::kNoFrame;
  frames_[slot] = {key, false, true, false, 0};
  index_[key] = slot;
  return Admit::kAdmitted;
}

bool ClockCache::Pin(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Frame& frame = frames_[it->second];
  if (frame.pins == 0) ++pinned_;
  ++frame.pins;
  return true;
}

bool ClockCache::Unpin(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Frame& frame = frames_[it->second];
  if (frame.pins == 0) return false;
  if (--frame.pins == 0) --pinned_;
  return true;
}

bool ClockCache::MarkDirty(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  frames_[it->second].dirty = true;
  return true;
}

bool ClockCache::ClearDirty(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  frames_[it->second].dirty = false;
  return true;
}

bool ClockCache::Erase(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Frame& frame = frames_[it->second];
  if (frame.pins > 0) return false;
  frame = Frame{};
  index_.erase(it);
  return true;
}

bool ClockCache::IsPinned(uint64_t key) const {
  auto it = index_.find(key);
  return it != index_.end() && frames_[it->second].pins > 0;
}

bool ClockCache::IsDirty(uint64_t key) const {
  auto it = index_.find(key);
  return it != index_.end() && frames_[it->second].dirty;
}

}  // namespace ltc
