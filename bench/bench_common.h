// Shared infrastructure for the figure-reproduction binaries: dataset
// construction with an LTC_SCALE env knob, reporter-suite factories
// implementing the paper's §V-C memory protocol, and table printing.

#ifndef LTC_BENCH_BENCH_COMMON_H_
#define LTC_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/format.h"
#include "metrics/evaluate.h"
#include "metrics/ground_truth.h"
#include "stream/generators.h"
#include "topk/reporters.h"

namespace ltc {
namespace bench {

struct Dataset {
  std::string name;
  Stream stream;
  GroundTruth truth;
};

/// Stream length scaling. Defaults reproduce the figure *shapes* in
/// seconds; set LTC_SCALE=full for the paper's 10M/10M/1.5M sizes, or
/// LTC_SCALE=<float> to multiply the defaults.
uint64_t ScaledRecords(uint64_t base_default, uint64_t base_full);

/// The three dataset stand-ins, ground truth included.
Dataset LoadCaida();
Dataset LoadNetwork();
Dataset LoadSocial();
std::vector<Dataset> LoadAllDatasets();

/// LTC with the paper's defaults (d=8, both optimizations on), paced to
/// the stream's period structure.
std::unique_ptr<LtcReporter> MakeLtcReporter(size_t memory_bytes,
                                             const Stream& stream,
                                             double alpha, double beta);

/// §V-F suite: LTC, SS, LC, MG, CM, CU, Count — equal memory.
std::vector<std::unique_ptr<SignificantReporter>> FrequentSuite(
    size_t memory_bytes, size_t k, const Stream& stream);

/// §V-G suite: LTC, BF+CM, BF+CU, BF+Count at `memory_bytes`, plus PIE at
/// `memory_bytes` PER PERIOD (the paper's T× memory concession).
std::vector<std::unique_ptr<SignificantReporter>> PersistentSuite(
    size_t memory_bytes, size_t k, const Stream& stream, bool include_pie);

/// §V-H suite: LTC plus the three two-sketch combos, equal total memory.
std::vector<std::unique_ptr<SignificantReporter>> SignificantSuite(
    size_t memory_bytes, size_t k, const Stream& stream, double alpha,
    double beta);

/// Prints a figure header plus the table, then a CSV copy.
void PrintFigure(const std::string& title, const TextTable& table);

// --------------------------------------------------------------------
// Versioned perf-trajectory reports (docs/PERF.md).
//
// bench_speed and bench_ingest emit one JSON document per run, headed
// by this block, so BENCH_*.json files committed across re-anchors stay
// machine-comparable: a reader first checks schema_version, then keys
// the numbers by (git_sha, probe_backend, build_flags).

/// Current header schema. Bump whenever a header field changes meaning
/// or a consumer-visible result field is renamed.
inline constexpr int kBenchSchemaVersion = 1;

struct BenchReportHeader {
  int schema_version = kBenchSchemaVersion;
  std::string benchmark;         // emitting binary, e.g. "bench_ingest"
  std::string git_sha;           // LTC_GIT_SHA env, else configure-time
  std::string timestamp_utc;     // ISO 8601, e.g. "2026-08-09T12:00:00Z"
  unsigned hardware_threads = 0;
  std::string build_flags;       // build type + feature toggles
  std::string probe_backend;     // active bucket-probe dispatch
};

/// Fills every field for the named benchmark from the build stamps, the
/// clock, and the active probe dispatch.
BenchReportHeader MakeBenchReportHeader(const std::string& benchmark);

/// The header as a JSON fragment: `"schema_version": 1, ..., "probe_backend":
/// "avx2"` — no surrounding braces, no trailing comma, so callers can
/// splice it into their own document.
std::string BenchReportHeaderJson(const BenchReportHeader& header);

/// Writes `document` to the path in the LTC_BENCH_JSON_OUT env var (the
/// CI bench-trajectory step points it at bench/trajectory/BENCH_*.json).
/// No-op when the var is unset; returns false only on a write failure.
bool MaybeWriteBenchJson(const std::string& document);

/// Builds the algorithm suite for one configuration (memory budget, k).
using SuiteFactory =
    std::function<std::vector<std::unique_ptr<SignificantReporter>>(
        size_t memory_bytes, size_t k)>;

/// Which column of the evaluation a figure plots.
enum class Metric { kPrecision, kAre };

/// One figure panel "metric vs memory": rows are memory points, columns
/// are the suite's algorithms.
TextTable SweepMemory(const Dataset& data,
                      const std::vector<size_t>& memory_kb,
                      const SuiteFactory& factory, size_t k, double alpha,
                      double beta, Metric metric);

/// One figure panel "metric vs k" at a fixed memory budget.
TextTable SweepK(const Dataset& data, size_t memory_bytes,
                 const std::vector<size_t>& ks, const SuiteFactory& factory,
                 double alpha, double beta, Metric metric);

}  // namespace bench
}  // namespace ltc

#endif  // LTC_BENCH_BENCH_COMMON_H_
