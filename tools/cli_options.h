// Option parsing for the ltc_cli tool, separated from main() so the
// parser is unit-testable.

#ifndef LTC_TOOLS_CLI_OPTIONS_H_
#define LTC_TOOLS_CLI_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ltc.h"

namespace ltc {

struct CliOptions {
  std::string trace_path;     // "-" = stdin
  size_t memory_bytes = 64 * 1024;
  double alpha = 1.0;
  double beta = 1.0;
  size_t k = 10;
  uint32_t periods = 100;
  double duration = 0.0;      // 0 = infer from the trace
  uint32_t cells_per_bucket = 8;
  bool long_tail_replacement = true;
  bool deviation_eliminator = true;
  bool csv = false;
  uint32_t threads = 1;       // >1 = ShardedLtc fed by an IngestPipeline
  std::string save_path;      // checkpoint the table here after the run
  std::string load_path;      // restore the table from here before the run
  uint64_t checkpoint_every = 0;  // mid-run snapshot cadence in records
                                  // (0 = only the final --save); snapshots
                                  // rotate at <save>.<seq>.snap
  std::string metrics_out;    // write a metrics exposition here on exit
                              // (.json = JSON, else Prometheus text)
  uint64_t stats_every = 0;   // ALSO rewrite metrics_out every N records
                              // (0 = only on exit; requires metrics_out)
  std::string trace_out;      // install the flight recorder and write
                              // its Chrome trace-event JSON here on
                              // exit and on SIGUSR1 (empty = off)
  int32_t serve_port = -1;    // >= 0: serve queries on this TCP port while
                              // (and after) feeding; 0 = ephemeral port,
                              // printed to stderr; -1 = no serving
  std::string push_to;        // "HOST:PORT": push flush-barrier sketches
                              // to an aggregator over LTCQ (empty = off)
  uint64_t push_every = 0;    // push cadence in records (0 = only one
                              // final push; requires --push-to)
  uint64_t node_id = 0;       // identity at the aggregator (required
                              // with --push-to, must be >= 1)
  bool aggregate = false;     // run as the aggregation tier: no trace
                              // feeding, serve merged pushed sketches
                              // (requires --serve)
  uint64_t agg_stale_after = 60;  // seconds without a push before a
                                  // node's STATS row is flagged stale
  std::string store_dir;      // non-empty = paged multi-tenant store
                              // mode: records shard to --tenants
                              // sketches hosted in the crash-safe
                              // SketchStore at this directory
  uint64_t tenants = 1;       // tenant sketches in --store mode
                              // (record -> tenant by item-id hash)
  size_t mem_budget_bytes = size_t{64} << 20;  // buffer-pool budget in
                              // --store mode; may be far smaller than
                              // total sketch bytes
  bool show_help = false;

  /// The LtcConfig these options describe (period pacing filled by the
  /// runner once the stream's duration is known).
  LtcConfig ToLtcConfig() const;
};

/// Parses argv. On failure returns nullopt and sets `error`.
std::optional<CliOptions> ParseCliOptions(
    const std::vector<std::string>& args, std::string* error);

/// Parses a memory size: plain bytes, or with a K/M suffix ("64K", "2M").
std::optional<size_t> ParseMemorySize(const std::string& text);

/// The --help text.
std::string CliUsage();

}  // namespace ltc

#endif  // LTC_TOOLS_CLI_OPTIONS_H_
