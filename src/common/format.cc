#include "common/format.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace ltc {

std::string FormatMemory(size_t bytes) {
  char buf[32];
  if (bytes % (1024 * 1024) == 0 && bytes > 0) {
    std::snprintf(buf, sizeof(buf), "%zuMB", bytes / (1024 * 1024));
  } else if (bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%zuKB", bytes / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

std::string FormatMetric(double v) {
  char buf[40];
  double a = std::fabs(v);
  if (v != 0.0 && (a < 1e-3 || a >= 1e6)) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else if (a >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      // Left-align the first (label) column, right-align the data columns.
      size_t pad = width[c] - row[c].size();
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
    }
    os << '\n';
  };

  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ltc
