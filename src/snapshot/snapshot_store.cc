#include "snapshot/snapshot_store.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "telemetry/trace.h"

namespace ltc {
namespace {

constexpr char kSuffix[] = ".snap";

/// "ckpt.000000042.snap" -> 42, for names matching `<stem>.<digits>.snap`.
std::optional<uint64_t> SeqOfName(const std::string& name,
                                  const std::string& stem) {
  const std::string prefix = stem + ".";
  if (name.size() <= prefix.size() + sizeof(kSuffix) - 1) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                   kSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(
      prefix.size(), name.size() - prefix.size() - (sizeof(kSuffix) - 1));
  if (digits.empty()) return std::nullopt;
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

std::string BasenameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

SnapshotStore::SnapshotStore(std::string base_path,
                             SnapshotStoreConfig config, Fs* fs, Clock* clock)
    : base_path_(std::move(base_path)),
      config_(config),
      fs_(fs != nullptr ? fs : &SystemFs()),
      clock_(clock != nullptr ? clock : &SystemClock()) {
  if (config_.retain < 1) config_.retain = 1;
}

std::string SnapshotStore::PathOf(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".%09" PRIu64 "%s", seq, kSuffix);
  return base_path_ + buf;
}

std::vector<SnapshotStore::Candidate> SnapshotStore::ListSnapshots() const {
  std::vector<Candidate> found;
  const auto names = fs_->ListDir(DirnameOf(base_path_));
  if (!names) return found;
  const std::string stem = BasenameOf(base_path_);
  const std::string dir = DirnameOf(base_path_);
  for (const std::string& name : *names) {
    if (auto seq = SeqOfName(name, stem)) {
      found.push_back({dir + "/" + name, *seq, SnapshotError::kNone});
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seq > b.seq;  // newest first
            });
  return found;
}

std::optional<uint64_t> SnapshotStore::Save(std::string_view payload,
                                            std::string* error) {
  telemetry::Span span("snapshot.save");
  span.AddAttr("bytes", payload.size());
  const auto start = std::chrono::steady_clock::now();
  if (next_seq_ == 0) {
    const auto existing = ListSnapshots();
    next_seq_ = existing.empty() ? 1 : existing.front().seq + 1;
  }
  const uint64_t seq = next_seq_;
  const std::string frame = EncodeFrame(payload);
  uint64_t retries = 0;
  const bool wrote = RetryWithBackoff(
      config_.retry, *clock_,
      [&] { return AtomicWriteFile(*fs_, PathOf(seq), frame, error); },
      &retries);
  save_retries_total_ += retries;
  if (save_retries_ != nullptr && retries > 0) save_retries_->Increment(retries);
  if (!wrote) {
    if (saves_failed_ != nullptr) saves_failed_->Increment();
    return std::nullopt;
  }
  next_seq_ = seq + 1;
  Prune();
  if (saves_ok_ != nullptr) {
    saves_ok_->Increment();
    save_bytes_->Record(frame.size());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const auto usec =
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count();
    save_duration_usec_->Record(usec > 0 ? static_cast<uint64_t>(usec) : 0);
  }
  return seq;
}

void SnapshotStore::AttachMetrics(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    saves_ok_ = nullptr;
    saves_failed_ = nullptr;
    save_retries_ = nullptr;
    save_bytes_ = nullptr;
    save_duration_usec_ = nullptr;
    recovery_walkback_depth_ = nullptr;
    return;
  }
  saves_ok_ = &registry->CounterOf("ltc_snapshot_saves_total",
                                   "Snapshot save attempts by result",
                                   {{"result", "ok"}});
  saves_failed_ = &registry->CounterOf("ltc_snapshot_saves_total",
                                       "Snapshot save attempts by result",
                                       {{"result", "error"}});
  save_retries_ = &registry->CounterOf(
      "ltc_snapshot_save_retries_total",
      "Write re-attempts Save() made under its backoff policy");
  save_bytes_ = &registry->HistogramOf(
      "ltc_snapshot_bytes", "Size of persisted snapshot frames in bytes");
  save_duration_usec_ = &registry->HistogramOf(
      "ltc_snapshot_save_duration_usec",
      "Latency of successful snapshot saves (encode + atomic write + "
      "prune) in microseconds");
  recovery_walkback_depth_ = &registry->HistogramOf(
      "ltc_snapshot_recovery_walkback_depth",
      "Snapshots skipped before LoadLatest found a valid one");
}

void SnapshotStore::Prune() {
  const auto snapshots = ListSnapshots();
  for (size_t i = config_.retain; i < snapshots.size(); ++i) {
    fs_->Remove(snapshots[i].path);
  }
}

std::optional<SnapshotStore::Recovered> SnapshotStore::LoadLatest(
    std::string* error, const PayloadValidator& validate) const {
  telemetry::Span span("snapshot.load");
  // Per-error-type skip counter; label values are dynamic, so this one
  // goes through the registry (find-or-create under its mutex) instead
  // of a cached reference. Recovery is far off any hot path.
  const auto count_skip = [this](SnapshotError skip_error) {
    if (metrics_ == nullptr) return;
    metrics_
        ->CounterOf("ltc_snapshot_load_errors_total",
                    "Snapshot candidates the recovery walk skipped, by "
                    "rejection reason",
                    {{"error", SnapshotErrorName(skip_error)}})
        .Increment();
  };
  const auto snapshots = ListSnapshots();
  if (snapshots.empty()) {
    if (error != nullptr) {
      *error = "no snapshots at '" + base_path_ + ".*" + kSuffix + "'";
    }
    return std::nullopt;
  }
  Recovered result;
  for (const Candidate& candidate : snapshots) {
    const auto bytes = fs_->ReadAll(candidate.path);
    if (!bytes) {
      result.skipped.push_back(
          {candidate.path, candidate.seq, SnapshotError::kIoError});
      count_skip(SnapshotError::kIoError);
      continue;
    }
    const FrameDecodeResult decoded = DecodeFrame(*bytes);
    if (!decoded.ok()) {
      result.skipped.push_back({candidate.path, candidate.seq, decoded.error});
      count_skip(decoded.error);
      continue;
    }
    if (validate && !validate(decoded.payload)) {
      result.skipped.push_back(
          {candidate.path, candidate.seq, SnapshotError::kPayloadRejected});
      count_skip(SnapshotError::kPayloadRejected);
      continue;
    }
    result.payload.assign(decoded.payload.data(), decoded.payload.size());
    result.seq = candidate.seq;
    if (recovery_walkback_depth_ != nullptr) {
      recovery_walkback_depth_->Record(result.skipped.size());
    }
    span.AddAttr("walkback_depth", result.skipped.size());
    return result;
  }
  if (error != nullptr) {
    *error = "all " + std::to_string(result.skipped.size()) +
             " snapshots rejected; newest: '" + result.skipped.front().path +
             "' (" + SnapshotErrorName(result.skipped.front().error) + ")";
  }
  return std::nullopt;
}

}  // namespace ltc
