#include "common/bob_hash.h"

#include <cstring>

namespace ltc {
namespace {

inline uint32_t Rot(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

// lookup3 mixing step.
inline void Mix(uint32_t& a, uint32_t& b, uint32_t& c) {
  a -= c; a ^= Rot(c, 4);  c += b;
  b -= a; b ^= Rot(a, 6);  a += c;
  c -= b; c ^= Rot(b, 8);  b += a;
  a -= c; a ^= Rot(c, 16); c += b;
  b -= a; b ^= Rot(a, 19); a += c;
  c -= b; c ^= Rot(b, 4);  b += a;
}

// lookup3 final scrambling step.
inline void Final(uint32_t& a, uint32_t& b, uint32_t& c) {
  c ^= b; c -= Rot(b, 14);
  a ^= c; a -= Rot(c, 11);
  b ^= a; b -= Rot(a, 25);
  c ^= b; c -= Rot(b, 16);
  a ^= c; a -= Rot(c, 4);
  b ^= a; b -= Rot(a, 14);
  c ^= b; c -= Rot(b, 24);
}

// Core of Jenkins' hashlittle2: produces two 32-bit results from coupled
// seeds *pc and *pb. Reads the buffer bytewise so it is alignment- and
// endianness-safe (slightly slower than the aligned fast path in the
// original, irrelevant for 8-byte keys).
void HashLittle2(const void* key, size_t length, uint32_t* pc, uint32_t* pb) {
  uint32_t a, b, c;
  a = b = c = 0xdeadbeef + static_cast<uint32_t>(length) + *pc;
  c += *pb;

  const uint8_t* k = static_cast<const uint8_t*>(key);

  while (length > 12) {
    uint32_t ka, kb, kc;
    std::memcpy(&ka, k, 4);
    std::memcpy(&kb, k + 4, 4);
    std::memcpy(&kc, k + 8, 4);
    a += ka;
    b += kb;
    c += kc;
    Mix(a, b, c);
    length -= 12;
    k += 12;
  }

  // Last block: read the 0..12 remaining bytes.
  switch (length) {
    case 12: c += static_cast<uint32_t>(k[11]) << 24; [[fallthrough]];
    case 11: c += static_cast<uint32_t>(k[10]) << 16; [[fallthrough]];
    case 10: c += static_cast<uint32_t>(k[9]) << 8; [[fallthrough]];
    case 9:  c += k[8]; [[fallthrough]];
    case 8:  b += static_cast<uint32_t>(k[7]) << 24; [[fallthrough]];
    case 7:  b += static_cast<uint32_t>(k[6]) << 16; [[fallthrough]];
    case 6:  b += static_cast<uint32_t>(k[5]) << 8; [[fallthrough]];
    case 5:  b += k[4]; [[fallthrough]];
    case 4:  a += static_cast<uint32_t>(k[3]) << 24; [[fallthrough]];
    case 3:  a += static_cast<uint32_t>(k[2]) << 16; [[fallthrough]];
    case 2:  a += static_cast<uint32_t>(k[1]) << 8; [[fallthrough]];
    case 1:  a += k[0]; break;
    case 0:
      *pc = c;
      *pb = b;
      return;  // zero-length strings require no mixing
  }

  Final(a, b, c);
  *pc = c;
  *pb = b;
}

}  // namespace

uint32_t BobHashBytes32(const void* data, size_t len, uint32_t seed) {
  uint32_t pc = seed;
  uint32_t pb = 0;
  HashLittle2(data, len, &pc, &pb);
  return pc;
}

uint64_t BobHashBytes64(const void* data, size_t len, uint64_t seed) {
  uint32_t pc = static_cast<uint32_t>(seed);
  uint32_t pb = static_cast<uint32_t>(seed >> 32);
  HashLittle2(data, len, &pc, &pb);
  return (static_cast<uint64_t>(pb) << 32) | pc;
}

}  // namespace ltc
