// Fig. 6 — the Long-tail Replacement assumption check (§III-D):
// (a) frequencies of the top-20 frequent items inside three arbitrary
//     buckets of an 800-bucket hash partition of the Network dataset;
// (b) frequencies of the overall top-20 items on all three datasets.
// Both series must drop off steeply (long tail).

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/bob_hash.h"
#include "common/hash.h"

namespace ltc {
namespace bench {
namespace {

constexpr uint32_t kNumBuckets = 800;  // paper: "set the number of buckets
                                       // to 800"

std::vector<uint64_t> TopFrequenciesInBucket(const Dataset& data,
                                             uint32_t bucket) {
  std::vector<uint64_t> freqs;
  for (const auto& [item, info] : data.truth.items()) {
    if (FastRange32(BobHash32(item, 0), kNumBuckets) == bucket) {
      freqs.push_back(info.frequency);
    }
  }
  std::sort(freqs.rbegin(), freqs.rend());
  if (freqs.size() > 20) freqs.resize(20);
  return freqs;
}

std::vector<uint64_t> TopFrequenciesOverall(const Dataset& data) {
  std::vector<uint64_t> freqs;
  freqs.reserve(data.truth.num_distinct());
  for (const auto& [item, info] : data.truth.items()) {
    freqs.push_back(info.frequency);
  }
  std::sort(freqs.rbegin(), freqs.rend());
  if (freqs.size() > 20) freqs.resize(20);
  return freqs;
}

std::string Cell(const std::vector<uint64_t>& freqs, size_t rank) {
  return rank < freqs.size() ? std::to_string(freqs[rank]) : "-";
}

}  // namespace

void Run() {
  Dataset network = LoadNetwork();

  // (a) three arbitrary buckets of the Network dataset.
  std::vector<std::vector<uint64_t>> buckets;
  for (uint32_t b : {17u, 211u, 640u}) {
    buckets.push_back(TopFrequenciesInBucket(network, b));
  }
  TextTable per_bucket({"rank", "bucket1", "bucket2", "bucket3"});
  for (size_t rank = 0; rank < 20; ++rank) {
    per_bucket.AddRow({std::to_string(rank + 1), Cell(buckets[0], rank),
                       Cell(buckets[1], rank), Cell(buckets[2], rank)});
  }
  PrintFigure(
      "Fig 6(a): top-20 frequencies in 3 arbitrary buckets (Network, w=800)",
      per_bucket);

  // (b) the three datasets.
  Dataset caida = LoadCaida();
  Dataset social = LoadSocial();
  auto fc = TopFrequenciesOverall(caida);
  auto fn = TopFrequenciesOverall(network);
  auto fs = TopFrequenciesOverall(social);
  TextTable per_dataset({"rank", "CAIDA", "Network", "Social"});
  for (size_t rank = 0; rank < 20; ++rank) {
    per_dataset.AddRow({std::to_string(rank + 1), Cell(fc, rank),
                        Cell(fn, rank), Cell(fs, rank)});
  }
  PrintFigure("Fig 6(b): top-20 frequencies per dataset", per_dataset);

  // Quantified long-tail verdict the paper reads off the plots.
  TextTable verdict({"dataset", "f1/f10", "f1/f20"});
  auto ratio_row = [&](const std::string& name,
                       const std::vector<uint64_t>& f) {
    verdict.AddRow({name,
                    FormatMetric(static_cast<double>(f[0]) / f[9]),
                    FormatMetric(static_cast<double>(f[0]) / f[19])});
  };
  ratio_row("CAIDA", fc);
  ratio_row("Network", fn);
  ratio_row("Social", fs);
  PrintFigure("Fig 6 summary: head decay ratios", verdict);
}

}  // namespace bench
}  // namespace ltc

int main() { ltc::bench::Run(); }
