// Unit and randomized-reference tests for the indexed top-k min-heap.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sketch/topk_heap.h"

namespace ltc {
namespace {

TEST(TopKHeap, FillsThenEvictsMinimum) {
  TopKHeap heap(3);
  EXPECT_TRUE(heap.Offer(1, 10));
  EXPECT_TRUE(heap.Offer(2, 20));
  EXPECT_TRUE(heap.Offer(3, 30));
  EXPECT_TRUE(heap.Full());
  EXPECT_EQ(heap.MinValue(), 10);

  // Smaller than the minimum: rejected.
  EXPECT_FALSE(heap.Offer(4, 5));
  EXPECT_FALSE(heap.Contains(4));

  // Larger: evicts item 1.
  EXPECT_TRUE(heap.Offer(5, 15));
  EXPECT_FALSE(heap.Contains(1));
  EXPECT_EQ(heap.MinValue(), 15);
}

TEST(TopKHeap, UpdatesTrackedItemBothDirections) {
  TopKHeap heap(3);
  heap.Offer(1, 10);
  heap.Offer(2, 20);
  heap.Offer(3, 30);
  heap.Offer(2, 50);  // up
  EXPECT_EQ(heap.ValueOf(2), 50);
  heap.Offer(3, 1);  // down — becomes the new minimum
  EXPECT_EQ(heap.MinValue(), 1);
  EXPECT_EQ(heap.ValueOf(3), 1);
}

TEST(TopKHeap, SortedEntriesDescendingWithTieBreak) {
  TopKHeap heap(4);
  heap.Offer(10, 5);
  heap.Offer(11, 5);
  heap.Offer(12, 9);
  heap.Offer(13, 1);
  auto entries = heap.SortedEntries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].item, 12u);
  EXPECT_EQ(entries[1].item, 10u);  // tie: lower ID first
  EXPECT_EQ(entries[2].item, 11u);
  EXPECT_EQ(entries[3].item, 13u);
}

TEST(TopKHeap, CapacityOne) {
  TopKHeap heap(1);
  heap.Offer(1, 10);
  EXPECT_EQ(heap.MinValue(), 10);
  heap.Offer(2, 20);
  EXPECT_FALSE(heap.Contains(1));
  EXPECT_TRUE(heap.Contains(2));
}

TEST(TopKHeap, ValueOfUntrackedIsZero) {
  TopKHeap heap(2);
  EXPECT_EQ(heap.ValueOf(99), 0.0);
  EXPECT_EQ(heap.MinValue(), 0.0);
}

TEST(TopKHeap, EqualValueDoesNotEvict) {
  TopKHeap heap(1);
  heap.Offer(1, 10);
  EXPECT_FALSE(heap.Offer(2, 10));  // ties keep the incumbent
  EXPECT_TRUE(heap.Contains(1));
}

// Randomized reference test: after any sequence of Offers (the sketch+heap
// usage pattern, where values only grow per item), the heap must hold
// exactly the k items with the largest current values.
TEST(TopKHeap, MatchesBruteForceUnderMonotoneUpdates) {
  constexpr size_t kK = 16;
  constexpr int kOps = 20'000;
  TopKHeap heap(kK);
  std::map<ItemId, double> truth;  // item -> latest value
  Rng rng(99);

  for (int op = 0; op < kOps; ++op) {
    ItemId item = rng.Uniform(200) + 1;
    double value = (truth.count(item) ? truth[item] : 0) + 1;
    truth[item] = value;
    bool tracked_before = heap.Contains(item);
    bool accepted = heap.Offer(item, value);
    if (tracked_before) {
      EXPECT_TRUE(accepted);
    }
  }

  // The heap's minimum must be >= every untracked item's would-be entry
  // value at rejection time; verify the weaker but exact property that
  // the heap's contents are internally consistent and sized correctly.
  EXPECT_EQ(heap.size(), kK);
  auto entries = heap.SortedEntries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].value, entries[i].value);
  }
  EXPECT_EQ(entries.back().value, heap.MinValue());
}

// Full-information reference: when every offer carries the item's true
// running count, the final heap is exactly the true top-k.
TEST(TopKHeap, ExactTopKWhenFedTrueCounts) {
  constexpr size_t kK = 8;
  TopKHeap heap(kK);
  std::map<ItemId, double> counts;
  Rng rng(7);
  // Zipf-ish: item i arrives with weight proportional to 1/i.
  for (int i = 0; i < 50'000; ++i) {
    ItemId item = 1;
    double u = rng.UniformDouble();
    double acc = 0;
    double norm = 0;
    for (int j = 1; j <= 50; ++j) norm += 1.0 / j;
    for (int j = 1; j <= 50; ++j) {
      acc += (1.0 / j) / norm;
      if (u < acc) {
        item = j;
        break;
      }
    }
    counts[item] += 1;
    heap.Offer(item, counts[item]);
  }

  std::vector<std::pair<double, ItemId>> ranked;
  for (const auto& [item, count] : counts) ranked.push_back({count, item});
  std::sort(ranked.rbegin(), ranked.rend());

  auto entries = heap.SortedEntries();
  ASSERT_EQ(entries.size(), kK);
  for (size_t i = 0; i < kK; ++i) {
    EXPECT_EQ(entries[i].item, ranked[i].second) << "position " << i;
    EXPECT_EQ(entries[i].value, ranked[i].first);
  }
}

TEST(TopKHeap, MemoryModel) {
  EXPECT_EQ(TopKHeap::MemoryBytes(100), 1600u);
}

}  // namespace
}  // namespace ltc
