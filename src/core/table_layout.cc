// Bucket-probe backends and their runtime dispatch (see table_layout.h
// for the semantics contract; docs/PERF.md for the dispatch policy).
//
// Every backend computes the same two bitmasks over the bucket's ID
// lane — "equals the key" and "equals zero" — and converts each to its
// lowest set bit. The masks are order-independent, so vector width
// never changes which cell wins: all backends agree bit-for-bit with
// the scalar reference (pinned by tests/table_layout_test.cc).

#include "core/table_layout.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define LTC_PROBE_X86 1
#include <immintrin.h>
#else
#define LTC_PROBE_X86 0
#endif

namespace ltc {
namespace {

// Vectorized paths accumulate per-cell bitmasks in a uint64, so buckets
// wider than 64 cells take the scalar loop (d defaults to 8; the paper
// evaluates d <= 32).
constexpr uint32_t kMaxMaskCells = 64;

BucketProbe FromMasks(uint64_t match_mask, uint64_t empty_mask) {
  BucketProbe probe;
  if (match_mask != 0) {
    probe.match = static_cast<int32_t>(__builtin_ctzll(match_mask));
  }
  if (empty_mask != 0) {
    probe.empty = static_cast<int32_t>(__builtin_ctzll(empty_mask));
  }
  return probe;
}

BucketProbe ProbeScalar(const uint64_t* ids, uint32_t d, uint64_t key) {
  BucketProbe probe;
  for (uint32_t i = 0; i < d; ++i) {
    const uint64_t v = ids[i];
    if (probe.match < 0 && v == key) {
      probe.match = static_cast<int32_t>(i);
      if (probe.empty >= 0) break;
    }
    if (probe.empty < 0 && v == 0) {
      probe.empty = static_cast<int32_t>(i);
      if (probe.match >= 0) break;
    }
  }
  return probe;
}

#if LTC_PROBE_X86

// SSE2 has no 64-bit integer compare; compare the 32-bit halves and AND
// the result with its within-lane swap so a 64-bit lane is all-ones iff
// both halves matched, then movemask_pd extracts one bit per lane.
inline uint32_t MoveMask64Sse2(__m128i eq32) {
  const __m128i swapped = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128i both = _mm_and_si128(eq32, swapped);
  return static_cast<uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(both)));
}

BucketProbe ProbeSse2(const uint64_t* ids, uint32_t d, uint64_t key) {
  if (d > kMaxMaskCells) return ProbeScalar(ids, d, key);
  const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key));
  const __m128i vzero = _mm_setzero_si128();
  uint64_t match_mask = 0;
  uint64_t empty_mask = 0;
  uint32_t i = 0;
  for (; i + 2 <= d; i += 2) {
    const __m128i lane =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    match_mask |= static_cast<uint64_t>(
                      MoveMask64Sse2(_mm_cmpeq_epi32(lane, vkey)))
                  << i;
    empty_mask |= static_cast<uint64_t>(
                      MoveMask64Sse2(_mm_cmpeq_epi32(lane, vzero)))
                  << i;
  }
  for (; i < d; ++i) {
    match_mask |= static_cast<uint64_t>(ids[i] == key) << i;
    empty_mask |= static_cast<uint64_t>(ids[i] == 0) << i;
  }
  return FromMasks(match_mask, empty_mask);
}

__attribute__((target("avx2"))) BucketProbe ProbeAvx2(const uint64_t* ids,
                                                      uint32_t d,
                                                      uint64_t key) {
  if (d > kMaxMaskCells) return ProbeScalar(ids, d, key);
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256i vzero = _mm256_setzero_si256();
  uint64_t match_mask = 0;
  uint64_t empty_mask = 0;
  uint32_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256i lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    match_mask |= static_cast<uint64_t>(_mm256_movemask_pd(
                      _mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, vkey))))
                  << i;
    empty_mask |= static_cast<uint64_t>(_mm256_movemask_pd(
                      _mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, vzero))))
                  << i;
  }
  for (; i < d; ++i) {
    match_mask |= static_cast<uint64_t>(ids[i] == key) << i;
    empty_mask |= static_cast<uint64_t>(ids[i] == 0) << i;
  }
  return FromMasks(match_mask, empty_mask);
}

#endif  // LTC_PROBE_X86

using ProbeFn = BucketProbe (*)(const uint64_t*, uint32_t, uint64_t);

ProbeFn FnFor(ProbeBackend backend) {
#if LTC_PROBE_X86
  switch (backend) {
    case ProbeBackend::kAvx2:
      return &ProbeAvx2;
    case ProbeBackend::kSse2:
      return &ProbeSse2;
    case ProbeBackend::kScalar:
      break;
  }
#else
  (void)backend;
#endif
  return &ProbeScalar;
}

bool IsSupported(ProbeBackend backend) {
  switch (backend) {
    case ProbeBackend::kScalar:
      return true;
    case ProbeBackend::kSse2:
#if LTC_PROBE_X86
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case ProbeBackend::kAvx2:
#if LTC_PROBE_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

ProbeBackend ResolveInitialBackend() {
  ProbeBackend backend = BestSupportedProbeBackend();
  if (const char* env = std::getenv("LTC_PROBE")) {
    ProbeBackend requested = backend;
    if (std::strcmp(env, "scalar") == 0) {
      requested = ProbeBackend::kScalar;
    } else if (std::strcmp(env, "sse2") == 0) {
      requested = ProbeBackend::kSse2;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = ProbeBackend::kAvx2;
    }
    if (IsSupported(requested)) backend = requested;
  }
  return backend;
}

// The dispatch slot. Probes load it relaxed: backend switches are only
// legal while tables are quiescent (see SetProbeBackend), so there is
// never a probe racing a switch whose result matters.
struct Dispatch {
  std::atomic<ProbeFn> fn;
  std::atomic<ProbeBackend> backend;
  Dispatch() {
    const ProbeBackend resolved = ResolveInitialBackend();
    backend.store(resolved, std::memory_order_relaxed);
    fn.store(FnFor(resolved), std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

const char* ProbeBackendName(ProbeBackend backend) {
  switch (backend) {
    case ProbeBackend::kScalar:
      return "scalar";
    case ProbeBackend::kSse2:
      return "sse2";
    case ProbeBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

ProbeBackend BestSupportedProbeBackend() {
#if LTC_PROBE_X86
  if (__builtin_cpu_supports("avx2")) return ProbeBackend::kAvx2;
  if (__builtin_cpu_supports("sse2")) return ProbeBackend::kSse2;
#endif
  return ProbeBackend::kScalar;
}

ProbeBackend ActiveProbeBackend() {
  return dispatch().backend.load(std::memory_order_relaxed);
}

ProbeBackend SetProbeBackend(ProbeBackend backend) {
  Dispatch& d = dispatch();
  if (IsSupported(backend)) {
    d.backend.store(backend, std::memory_order_relaxed);
    d.fn.store(FnFor(backend), std::memory_order_relaxed);
  }
  return d.backend.load(std::memory_order_relaxed);
}

namespace internal {
BucketProbe ProbeIds(const uint64_t* ids, uint32_t d, uint64_t key,
                     ProbeBackend backend) {
  if (!IsSupported(backend)) return ProbeScalar(ids, d, key);
  return FnFor(backend)(ids, d, key);
}
}  // namespace internal

BucketProbe ConstBucketView::Probe(ItemId key) const {
  return dispatch().fn.load(std::memory_order_relaxed)(ids_, d_, key);
}

}  // namespace ltc
