// Epoch/double-buffered read snapshots — the stall-free read seam
// between a live ingest path and concurrent queriers (docs/SERVING.md).
//
// The LTC family is single-writer by design: tables are fed by their
// owning threads and may only be queried at quiescent barriers
// (IngestPipeline::Flush). A network front end, though, must answer
// point queries continuously while ingest runs. ReadSnapshotHub closes
// that gap without adding a single lock to the write path:
//
//   publisher (producer thread, at a Flush/batch barrier)
//     deep-copies the quiescent table into the INACTIVE slot and flips
//     the active-slot index — one release store.
//
//   readers (any thread, any number)
//     pin the active slot with a per-slot reader count, query the
//     immutable image, unpin. No mutex, no writer interaction: a
//     reader can never block ingest, and ingest can never tear a read.
//
// Two slots suffice because publishes are serialized on one thread: the
// publisher reuses the slot that readers abandoned one generation ago.
// If a straggling reader still pins that slot, Publish spins briefly
// and then SKIPS (keeping the previous snapshot current) rather than
// stalling the producer — zero writer stalls is the hard guarantee;
// snapshot freshness is best-effort at the configured cadence.
//
// Consistency model: every image is a bit-identical copy of the sketch
// at a Flush() barrier, so every answer served from it equals the
// answer a sequential run of the same stream prefix would give
// (pinned by tests/read_snapshot_test.cc).

#ifndef LTC_CORE_READ_SNAPSHOT_H_
#define LTC_CORE_READ_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/significance_estimator.h"

namespace ltc {

/// One published image: an immutable deep copy of an estimator at a
/// quiescent barrier, plus where in the stream that barrier was.
struct ReadSnapshot {
  uint64_t seq = 0;      // publish sequence number, 1-based
  uint64_t records = 0;  // stream records applied at the barrier
  std::unique_ptr<const SignificanceEstimator> table;
};

/// Single-publisher / multi-reader snapshot exchange. Publish is called
/// from ONE thread (the ingest producer, at barriers); Acquire is safe
/// from any number of threads concurrently.
class ReadSnapshotHub {
 public:
  /// `publish_spin_yields`: how many sched_yield rounds Publish waits
  /// for a straggling reader to unpin the stale slot before skipping
  /// the publish. Point queries release in microseconds, so the
  /// default never skips in practice; tests use tiny values to pin the
  /// skip path.
  explicit ReadSnapshotHub(uint64_t publish_spin_yields = 1'000'000)
      : spin_limit_(publish_spin_yields) {}

  ReadSnapshotHub(const ReadSnapshotHub&) = delete;
  ReadSnapshotHub& operator=(const ReadSnapshotHub&) = delete;

  /// A pinned reference to the currently published snapshot. Holding a
  /// Ref keeps exactly one slot from being recycled — keep it only for
  /// the duration of one query, never across blocking work.
  class Ref {
   public:
    Ref() = default;
    Ref(Ref&& other) noexcept
        : hub_(other.hub_), slot_(other.slot_), snapshot_(other.snapshot_) {
      other.hub_ = nullptr;
      other.snapshot_ = nullptr;
    }
    Ref& operator=(Ref&& other) noexcept {
      if (this != &other) {
        Release();
        hub_ = other.hub_;
        slot_ = other.slot_;
        snapshot_ = other.snapshot_;
        other.hub_ = nullptr;
        other.snapshot_ = nullptr;
      }
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { Release(); }

    /// Null before the first Publish.
    explicit operator bool() const { return snapshot_ != nullptr; }
    const ReadSnapshot* operator->() const { return snapshot_; }
    const ReadSnapshot& operator*() const { return *snapshot_; }

   private:
    friend class ReadSnapshotHub;
    Ref(const ReadSnapshotHub* hub, uint32_t slot, const ReadSnapshot* s)
        : hub_(hub), slot_(slot), snapshot_(s) {}
    void Release();

    const ReadSnapshotHub* hub_ = nullptr;
    uint32_t slot_ = 0;
    const ReadSnapshot* snapshot_ = nullptr;
  };

  /// Publishes a new image. Call only from the single publisher thread,
  /// only at a quiescent barrier (the copy must not race the writer —
  /// take it under Flush()). Returns false when a straggling reader
  /// kept the stale slot pinned past the spin budget; the previous
  /// snapshot then simply stays current (counted in SkippedPublishes).
  bool Publish(std::unique_ptr<const SignificanceEstimator> table,
               uint64_t records);

  /// Pins and returns the current snapshot; a null Ref before the first
  /// Publish. Lock-free: one fetch_add + one recheck load per call.
  Ref Acquire() const;

  /// Sequence number of the newest published snapshot (0 = none yet).
  uint64_t PublishedSeq() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Publishes abandoned because a reader pinned the stale slot.
  uint64_t SkippedPublishes() const {
    return skipped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    mutable std::atomic<uint32_t> readers{0};
    ReadSnapshot snapshot;  // publisher-written only while the slot is
                            // inactive and reader-free
  };

  Slot slots_[2];
  std::atomic<int32_t> active_{-1};  // -1 = nothing published yet
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> skipped_{0};
  uint64_t spin_limit_;
};

}  // namespace ltc

#endif  // LTC_CORE_READ_SNAPSHOT_H_
