#include "metrics/ground_truth.h"

#include <algorithm>

namespace ltc {

GroundTruth GroundTruth::Compute(const Stream& stream) {
  GroundTruth truth;
  truth.items_.reserve(stream.size() / 4);
  for (const Record& record : stream.records()) {
    Info& info = truth.items_[record.item];
    ++info.frequency;
    uint32_t period = stream.PeriodOf(record.time);
    if (info.last_period != period) {
      // Records are time-ordered, so equal periods arrive contiguously per
      // item; a simple "last seen period" dedups without a bitset.
      ++info.persistency;
      info.last_period = period;
    }
  }
  truth.total_records_ = stream.size();
  return truth;
}

uint64_t GroundTruth::Frequency(ItemId item) const {
  auto it = items_.find(item);
  return it == items_.end() ? 0 : it->second.frequency;
}

uint32_t GroundTruth::Persistency(ItemId item) const {
  auto it = items_.find(item);
  return it == items_.end() ? 0 : it->second.persistency;
}

std::vector<std::pair<ItemId, double>> GroundTruth::TopKSignificant(
    size_t k, double alpha, double beta) const {
  std::vector<std::pair<ItemId, double>> all;
  all.reserve(items_.size());
  for (const auto& [item, info] : items_) {
    all.emplace_back(item, alpha * static_cast<double>(info.frequency) +
                               beta * static_cast<double>(info.persistency));
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ltc
