#!/usr/bin/env bash
# End-to-end proof of the tracing pipeline (docs/TELEMETRY.md "Tracing
# & flight recorder"): one `ltc_cli --aggregate` process and one
# `ltc_cli --push-to` node, both running with --trace-out, over real
# sockets. Asserts the observability contract:
#   * SIGUSR1 dumps the aggregator's flight recorder mid-run without
#     disturbing service,
#   * both processes write schema-valid Chrome trace-event JSON on
#     exit, and at least one trace_id appears in BOTH dumps — the
#     pusher's delivery span and the aggregator's merge of that very
#     push share one trace (propagated via the v3 trace-context
#     extension),
#   * `ltc_query --trace` stamps its requests with a client-chosen
#     trace_id that shows up in the server's dump, and `ltc_query
#     trace` pulls that dump over the wire (DUMP_TRACE),
#   * the exposition carries ltc_build_info and the
#     ltc_trace_exemplar_duration_usec linkage gauges.
#
# usage: trace_smoke.sh <ltc_gen> <ltc_cli> <ltc_query> <work_dir>
#
# Companion to aggregation_e2e.sh (fault tolerance) — this script is
# about whether you can SEE what that pipeline did.
set -u

fail() { echo "trace_smoke: FAIL: $*" >&2; exit 1; }

GEN="$(readlink -f "$1")" || fail "cannot resolve $1"
CLI="$(readlink -f "$2")" || fail "cannot resolve $2"
QUERY="$(readlink -f "$3")" || fail "cannot resolve $3"
WORK="$4"
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"

mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot cd $WORK"
rm -f node.txt agg.err push.err agg_trace.json push_trace.json \
  agg_metrics.prom wire_trace.json query.err query.out

MEMORY=16K

"$GEN" --dataset zipf --records 100000 --distinct 1000 --gamma 1.1 \
  --periods 20 --seed 7 node.txt || fail "ltc_gen"

# --- 1. Aggregator with the flight recorder installed. ----------------
"$CLI" --memory "$MEMORY" --aggregate --serve 0 \
  --trace-out agg_trace.json --metrics-out agg_metrics.prom \
  > /dev/null 2> agg.err &
agg_pid=$!
port=""
for _ in $(seq 100); do
  port=$(grep -oE 'serving on port [0-9]+' agg.err 2> /dev/null \
           | grep -oE '[0-9]+$' || true)
  [ -n "$port" ] && break
  kill -0 "$agg_pid" 2> /dev/null || fail "aggregator died: $(cat agg.err)"
  sleep 0.1
done
[ -n "$port" ] || fail "aggregator never announced its port: $(cat agg.err)"

# --- 2. SIGUSR1 mid-run: dump-now without stopping service. -----------
"$QUERY" --port "$port" ping > /dev/null 2> query.err \
  || fail "pre-dump ping failed: $(cat query.err)"
kill -USR1 "$agg_pid" || fail "cannot signal the aggregator"
dumped=""
for _ in $(seq 100); do
  if grep -q "trace (SIGUSR1) written" agg.err 2> /dev/null; then
    dumped=1
    break
  fi
  sleep 0.1
done
[ -n "$dumped" ] || fail "no SIGUSR1 dump notice: $(cat agg.err)"
[ -s agg_trace.json ] || fail "SIGUSR1 produced no dump file"
python3 "$TOOLS_DIR/validate_trace_json.py" agg_trace.json \
  || fail "SIGUSR1 dump is not valid trace JSON"
"$QUERY" --port "$port" ping > /dev/null 2> query.err \
  || fail "post-dump ping failed (service disturbed): $(cat query.err)"
echo "trace_smoke: SIGUSR1 dump validated mid-run"

# --- 3. A traced pusher: its deliveries must join the aggregator's ----
# spans through the propagated trace context.
"$CLI" --memory "$MEMORY" --push-to "127.0.0.1:$port" --node-id 1 \
  --push-every 5000 --trace-out push_trace.json node.txt \
  > /dev/null 2> push.err || fail "pusher run failed: $(cat push.err)"
grep -q "trace (final) written" push.err \
  || fail "no final pusher dump notice: $(cat push.err)"
[ -s push_trace.json ] || fail "pusher wrote no trace"

# --- 4. ltc_query --trace: a client-chosen trace_id, server-side. -----
"$QUERY" --port "$port" --trace ping topk 3 stats > query.out 2> query.err \
  || fail "--trace query failed: $(cat query.err)"
client_trace=$(grep -oE 'trace_id=0x[0-9a-f]+' query.err \
                 | grep -oE '0x[0-9a-f]+' || true)
[ -n "$client_trace" ] || fail "--trace printed no trace_id: $(cat query.err)"

# DUMP_TRACE over the wire: the dump must already contain the client's
# trace (the requests above were served before this one).
"$QUERY" --port "$port" trace > wire_trace.json 2> query.err \
  || fail "ltc_query trace failed: $(cat query.err)"
python3 "$TOOLS_DIR/validate_trace_json.py" wire_trace.json \
  || fail "wire dump is not valid trace JSON"
grep -q "$client_trace" wire_trace.json \
  || fail "client trace_id $client_trace missing from the wire dump"
echo "trace_smoke: client trace $client_trace found in the server dump"

# --- 5. Drain; final dumps + exemplar/build-info gauges. --------------
kill -TERM "$agg_pid" 2> /dev/null
wait "$agg_pid"
status=$?
[ "$status" -eq 143 ] \
  || fail "expected aggregator exit 143, got $status: $(cat agg.err)"
grep -q "trace (final) written" agg.err \
  || fail "no final aggregator dump notice: $(cat agg.err)"

# The headline assertion: one trace_id in BOTH processes' dumps.
python3 "$TOOLS_DIR/validate_trace_json.py" --require-cross-process \
  push_trace.json agg_trace.json \
  || fail "no trace_id links the pusher and aggregator dumps"

grep -q '^ltc_build_info{' agg_metrics.prom \
  || fail "exposition missing ltc_build_info"
grep -q '^ltc_trace_exemplar_duration_usec{' agg_metrics.prom \
  || fail "exposition missing ltc_trace_exemplar_duration_usec"
grep -q 'span="server.request"' agg_metrics.prom \
  || fail "no server.request exemplar in the exposition"

echo "trace_smoke: PASS"
