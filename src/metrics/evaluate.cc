#include "metrics/evaluate.h"

#include <chrono>
#include <cmath>
#include <unordered_set>

namespace ltc {

EvalResult Evaluate(const std::vector<TopKEntry>& reported,
                    const GroundTruth& truth, size_t k, double alpha,
                    double beta) {
  EvalResult result;
  result.reported = reported.size();
  if (k == 0) return result;

  std::unordered_set<ItemId> true_set;
  for (const auto& [item, sig] : truth.TopKSignificant(k, alpha, beta)) {
    true_set.insert(item);
  }

  size_t hits = 0;
  double relative_sum = 0.0;
  double absolute_sum = 0.0;
  for (const TopKEntry& entry : reported) {
    if (true_set.count(entry.item)) ++hits;
    double real = truth.Significance(entry.item, alpha, beta);
    double err = std::fabs(real - entry.estimate);
    absolute_sum += err;
    // A reported item that never appeared (possible only for unverified
    // decoders) contributes its full estimate as relative error.
    relative_sum += real > 0.0 ? err / real : entry.estimate;
  }
  // Normalize by k, not |ψ|: reporting fewer than k items is a deficiency
  // the metric should not hide, and an empty report scores 0 precision.
  result.precision = static_cast<double>(hits) / static_cast<double>(k);
  result.are = relative_sum / static_cast<double>(k);
  result.aae = absolute_sum / static_cast<double>(k);
  return result;
}

RunResult RunReporter(SignificantReporter& reporter, const Stream& stream,
                      const GroundTruth& truth, size_t k, double alpha,
                      double beta) {
  auto start = std::chrono::steady_clock::now();
  // Batched feed: algorithms with a native batch path (LTC) ride it, the
  // rest fall back to the default per-record loop in the interface.
  reporter.InsertBatch(stream.records(), stream);
  auto end = std::chrono::steady_clock::now();
  reporter.Finish();

  RunResult result;
  double seconds = std::chrono::duration<double>(end - start).count();
  if (seconds > 0.0) {
    result.insert_mops =
        static_cast<double>(stream.size()) / seconds / 1e6;
  }
  result.eval = Evaluate(reporter.TopK(k), truth, k, alpha, beta);
  return result;
}

}  // namespace ltc
