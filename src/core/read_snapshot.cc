#include "core/read_snapshot.h"

#include <thread>

#include "telemetry/trace.h"

namespace ltc {

void ReadSnapshotHub::Ref::Release() {
  if (hub_ != nullptr && snapshot_ != nullptr) {
    hub_->slots_[slot_].readers.fetch_sub(1, std::memory_order_release);
  }
  hub_ = nullptr;
  snapshot_ = nullptr;
}

// Ordering note: the reader's {pin readers, recheck active} and the
// publisher's {flip active, check readers} form a Dekker pattern — each
// side must observe the other's first write, or a reader could pin a
// slot the publisher already judged reader-free and is mutating. All
// four operations are therefore seq_cst; everything else rides the
// usual acquire/release pairs. The cost lands on queries and barriers,
// never on the per-record ingest path.

bool ReadSnapshotHub::Publish(
    std::unique_ptr<const SignificanceEstimator> table, uint64_t records) {
  telemetry::Span span("hub.publish");
  span.AddAttr("records", records);
  // The inactive slot is the one readers abandoned a generation ago;
  // wait (bounded) for the last of them to unpin it.
  const int32_t active = active_.load(std::memory_order_relaxed);
  const uint32_t idx = active == 0 ? 1u : 0u;
  Slot& slot = slots_[idx];
  uint64_t yields = 0;
  while (slot.readers.load(std::memory_order_seq_cst) != 0) {
    if (++yields > spin_limit_) {
      // Never stall the producer: keep serving the previous snapshot.
      skipped_.fetch_add(1, std::memory_order_relaxed);
      span.AddAttr("skipped", 1);
      return false;
    }
    std::this_thread::yield();
  }
  // The seq_cst load above synchronizes with the last reader's release
  // decrement, so these plain writes cannot race a stale read.
  slot.snapshot.seq = seq_.load(std::memory_order_relaxed) + 1;
  slot.snapshot.records = records;
  slot.snapshot.table = std::move(table);
  seq_.store(slot.snapshot.seq, std::memory_order_relaxed);
  // Publish: a reader that observes the new index also observes the
  // completed image (store is seq_cst, which includes release).
  active_.store(static_cast<int32_t>(idx), std::memory_order_seq_cst);
  return true;
}

ReadSnapshotHub::Ref ReadSnapshotHub::Acquire() const {
  for (;;) {
    const int32_t active = active_.load(std::memory_order_acquire);
    if (active < 0) return {};
    const Slot& slot = slots_[active];
    slot.readers.fetch_add(1, std::memory_order_seq_cst);
    // Recheck: if the active index moved between the load and the pin,
    // the pinned slot may be the publisher's next victim — back off and
    // retry. A stable index proves the image is complete (the publisher
    // flips the index only after finishing the copy) and that the
    // publisher's reader-free check cannot have missed our pin (seq_cst
    // on both sides: either we see the flip here, or the publisher sees
    // our pin there).
    if (active_.load(std::memory_order_seq_cst) == active) {
      return Ref(this, static_cast<uint32_t>(active), &slot.snapshot);
    }
    slot.readers.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace ltc
