#include "common/backoff.h"

#include <algorithm>
#include <cmath>

namespace ltc {

BackoffSchedule::BackoffSchedule(const BackoffPolicy& policy)
    : policy_(policy), rng_(policy.seed) {
  if (policy_.multiplier < 1.0) policy_.multiplier = 1.0;
  if (policy_.jitter < 0.0) policy_.jitter = 0.0;
  if (policy_.jitter >= 1.0) policy_.jitter = 0.999;
  base_usec_ = static_cast<double>(
      std::min(policy_.initial_delay_usec, policy_.max_delay_usec));
}

void BackoffSchedule::Reset() {
  base_usec_ = static_cast<double>(
      std::min(policy_.initial_delay_usec, policy_.max_delay_usec));
  rng_ = Rng(policy_.seed);
}

uint64_t BackoffSchedule::NextDelayUsec() {
  double delay = base_usec_;
  if (policy_.jitter > 0.0) {
    // Scale by a seeded-uniform factor in [1 - jitter, 1 + jitter]; the
    // PRNG is consumed exactly once per delay, so schedules with and
    // without an observer agree.
    const double factor =
        1.0 - policy_.jitter + 2.0 * policy_.jitter * rng_.UniformDouble();
    delay *= factor;
  }
  base_usec_ = std::min(base_usec_ * policy_.multiplier,
                        static_cast<double>(policy_.max_delay_usec));
  const double capped =
      std::min(delay, static_cast<double>(policy_.max_delay_usec));
  return capped <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(capped));
}

}  // namespace ltc
