// The time seam of the robustness layer.
//
// Anything that sleeps or schedules on the retry/backoff path goes
// through the `Clock` interface for the same reason snapshot I/O goes
// through `Fs`: failure handling must be *testable*. Production code
// uses SystemClock() (steady_clock + real sleeps); tests pass a
// FakeClock that advances instantly and records every requested sleep,
// so a backoff schedule can be asserted value-by-value without wall
// time ever passing (tests/backoff_test.cc).

#ifndef LTC_COMMON_CLOCK_H_
#define LTC_COMMON_CLOCK_H_

#include <cstdint>
#include <vector>

namespace ltc {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic timestamp in microseconds (epoch unspecified).
  virtual uint64_t NowMicros() = 0;

  /// Blocks the calling thread for `usec` microseconds.
  virtual void SleepMicros(uint64_t usec) = 0;
};

/// The process-wide monotonic clock (std::chrono::steady_clock).
Clock& SystemClock();

/// Deterministic clock for tests: SleepMicros returns immediately,
/// advances the fake time, and records the requested duration so a
/// retry loop's exact backoff schedule can be asserted. Single-threaded,
/// like the retry paths it stands in for.
class FakeClock final : public Clock {
 public:
  uint64_t NowMicros() override { return now_usec_; }

  void SleepMicros(uint64_t usec) override {
    now_usec_ += usec;
    sleeps_usec_.push_back(usec);
  }

  /// Moves time forward without recording a sleep.
  void Advance(uint64_t usec) { now_usec_ += usec; }

  /// Every SleepMicros request, in call order.
  const std::vector<uint64_t>& sleeps_usec() const { return sleeps_usec_; }

 private:
  uint64_t now_usec_ = 0;
  std::vector<uint64_t> sleeps_usec_;
};

}  // namespace ltc

#endif  // LTC_COMMON_CLOCK_H_
