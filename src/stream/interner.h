// String-to-ItemId interning for datasets with textual keys (usernames,
// URLs, IP strings). The examples use this to feed string-keyed event logs
// through the 64-bit-keyed estimators.

#ifndef LTC_STREAM_INTERNER_H_
#define LTC_STREAM_INTERNER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stream/stream.h"

namespace ltc {

/// Bidirectional string <-> ItemId map. IDs are dense, starting at 1
/// (ID 0 is reserved as "no item" by several data structures).
class StringInterner {
 public:
  /// Returns the ID for `key`, assigning the next free ID on first sight.
  ItemId Intern(std::string_view key) {
    auto [it, inserted] = ids_.try_emplace(std::string(key), 0);
    if (inserted) {
      it->second = static_cast<ItemId>(names_.size() + 1);
      names_.push_back(it->first);
    }
    return it->second;
  }

  /// Returns the ID for `key`, or 0 if never interned.
  ItemId Lookup(std::string_view key) const {
    auto it = ids_.find(std::string(key));
    return it == ids_.end() ? 0 : it->second;
  }

  /// Returns the string for an ID previously returned by Intern.
  const std::string& Name(ItemId id) const { return names_.at(id - 1); }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, ItemId> ids_;
  std::vector<std::string> names_;
};

}  // namespace ltc

#endif  // LTC_STREAM_INTERNER_H_
