// Hot-path metrics sink for the LTC family (docs/TELEMETRY.md).
//
// A plain struct of monotonic uint64 counters that an Ltc increments
// inline when a sink is attached. NOT atomic on purpose: every Ltc is
// single-threaded by contract (ShardedLtc / IngestPipeline give each
// shard its own table — attach one sink per shard and read them only
// from a quiesced pipeline, i.e. after Flush()/Stop()).
//
// The hooks themselves are compiled only under LTC_METRICS (a CMake
// option, default ON); with the option off, Ltc carries no sink member
// and its insert path compiles to the exact uninstrumented code — the
// same pattern as LTC_AUDIT. With the option on but no sink attached,
// the cost is one predicted-not-taken branch per hook site
// (bench_speed's sink-guard JSON reports the measured overhead of both
// states).
//
// telemetry/ltc_collectors.h publishes a sink into a MetricsRegistry
// under the ltc_core_* families.

#ifndef LTC_CORE_LTC_METRICS_SINK_H_
#define LTC_CORE_LTC_METRICS_SINK_H_

#include <cstdint>

namespace ltc {

struct LtcMetricsSink {
  // Arrival mix (the three cases of §III-B).
  uint64_t inserts_tracked = 0;      // Case 1: item already in its bucket
  uint64_t inserts_admitted = 0;     // Case 2: took a free cell
  uint64_t inserts_decremented = 0;  // Case 3: arrival hit a full bucket

  // Case-3 internals: decrement operations actually applied, occupants
  // expelled at significance 0 (or taken over under kMinPlusOne), and
  // admissions that used the Long-tail Replacement initializer.
  uint64_t significance_decrements = 0;
  uint64_t expulsions = 0;
  uint64_t longtail_replacements = 0;

  // CLOCK activity: slots the pointer scanned, periods completed.
  uint64_t clock_steps = 0;
  uint64_t periods_completed = 0;

  // Occupancy gauge, refreshed by the sweep: the number of non-empty
  // cells observed by the most recently COMPLETED period sweep (each
  // sweep visits all m slots exactly once, so this is a full sample
  // that costs nothing extra). 0 until the first period completes.
  uint64_t occupied_cells = 0;

  // Internal scratch: occupied cells seen so far by the sweep currently
  // in progress. Published into occupied_cells at the period boundary.
  uint64_t scan_occupied_scratch = 0;
};

}  // namespace ltc

#endif  // LTC_CORE_LTC_METRICS_SINK_H_
