#include "sketch/count_min.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>

#include "common/bob_hash.h"
#include "common/hash.h"

namespace ltc {

CounterMatrixSketch::CounterMatrixSketch(size_t memory_bytes, uint32_t depth,
                                         uint64_t seed)
    : depth_(depth), seed_(seed) {
  assert(depth >= 1);
  width_ = static_cast<uint32_t>(
      std::max<size_t>(1, memory_bytes / (sizeof(uint32_t) * depth)));
  counters_.assign(static_cast<size_t>(depth_) * width_, 0);
}

uint32_t CounterMatrixSketch::DepthForGuarantee(double delta) {
  assert(delta > 0.0 && delta < 1.0);
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(std::ceil(std::log(1.0 / delta))));
}

size_t CounterMatrixSketch::SizeForGuarantee(double epsilon, double delta) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  auto width = static_cast<size_t>(
      std::ceil(std::numbers::e / epsilon));
  return width * DepthForGuarantee(delta) * sizeof(uint32_t);
}

CounterMatrixSketch::CounterMatrixSketch(uint32_t depth, uint32_t width,
                                         uint64_t seed,
                                         std::vector<uint32_t> counters)
    : depth_(depth), width_(width), seed_(seed),
      counters_(std::move(counters)) {
  assert(counters_.size() == static_cast<size_t>(depth_) * width_);
}

namespace {
constexpr uint32_t kSketchMagic = 0x434d5331;  // "CMS1"
// v2: explicit format version after the magic (v1 had none).
constexpr uint32_t kSketchFormatVersion = 2;
}  // namespace

void CounterMatrixSketch::Serialize(BinaryWriter& writer) const {
  PutVersionedMagic(writer, kSketchMagic, kSketchFormatVersion);
  writer.PutU8(TypeTag());
  writer.PutU32(depth_);
  writer.PutU32(width_);
  writer.PutU64(seed_);
  writer.PutBytes(counters_.data(), counters_.size() * sizeof(uint32_t));
}

std::unique_ptr<CounterMatrixSketch> CounterMatrixSketch::Deserialize(
    BinaryReader& reader) {
  if (!CheckVersionedMagic(reader, kSketchMagic, kSketchFormatVersion)) {
    return nullptr;
  }
  uint8_t tag = reader.GetU8();
  uint32_t depth = reader.GetU32();
  uint32_t width = reader.GetU32();
  uint64_t seed = reader.GetU64();
  size_t count = static_cast<size_t>(depth) * width;
  if (reader.failed() || depth == 0 || width == 0 || tag > 1 ||
      reader.Remaining() < count * sizeof(uint32_t)) {
    return nullptr;
  }
  std::vector<uint32_t> counters(count);
  reader.GetBytes(counters.data(), count * sizeof(uint32_t));
  if (reader.failed()) return nullptr;
  if (tag == 0) {
    return std::unique_ptr<CounterMatrixSketch>(
        new CountMinSketch(depth, width, seed, std::move(counters)));
  }
  return std::unique_ptr<CounterMatrixSketch>(
      new CuSketch(depth, width, seed, std::move(counters)));
}

uint32_t CounterMatrixSketch::Cell(uint32_t row, ItemId item) const {
  uint32_t h = BobHash32(item, static_cast<uint32_t>(Mix64(seed_ + row)));
  return FastRange32(h, width_);
}

uint64_t CounterMatrixSketch::Query(ItemId item) const {
  uint32_t result = std::numeric_limits<uint32_t>::max();
  for (uint32_t r = 0; r < depth_; ++r) {
    result = std::min(result, At(r, Cell(r, item)));
  }
  return result;
}

void CounterMatrixSketch::Clear() {
  std::memset(counters_.data(), 0, counters_.size() * sizeof(uint32_t));
}

void CountMinSketch::Insert(ItemId item, uint32_t count) {
  for (uint32_t r = 0; r < depth_; ++r) {
    At(r, Cell(r, item)) += count;
  }
}

void CuSketch::Insert(ItemId item, uint32_t count) {
  // Conservative update: raise every counter only up to min + count.
  uint32_t current = std::numeric_limits<uint32_t>::max();
  for (uint32_t r = 0; r < depth_; ++r) {
    current = std::min(current, At(r, Cell(r, item)));
  }
  uint32_t target = current + count;
  for (uint32_t r = 0; r < depth_; ++r) {
    uint32_t& cell = At(r, Cell(r, item));
    cell = std::max(cell, target);
  }
}

}  // namespace ltc
