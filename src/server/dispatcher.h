// Request dispatch: one protocol payload in, one response payload out.
//
// The dispatcher is the server's brain, separated from the socket event
// loop so the protocol unit tests and the malformed-bytes fuzz loop
// (tests/server_test.cc) can drive it directly: for EVERY input byte
// string it returns a well-formed response payload — kOk with the
// answer, or a typed error — and never throws or crashes.
//
// Every query is answered from one pinned ReadSnapshotHub image, so a
// single response is always internally consistent, and consecutive
// responses only ever move forward in snapshot sequence.

#ifndef LTC_SERVER_DISPATCHER_H_
#define LTC_SERVER_DISPATCHER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/read_snapshot.h"
#include "server/key_codec.h"
#include "server/protocol.h"

namespace ltc {
namespace server {

class AggregatorCore;

/// Per-status dispatch counters (sampled into ltc_server_* metrics by
/// the query server; plain fields — the dispatcher is driven from one
/// event-loop thread).
struct DispatchStats {
  uint64_t requests = 0;  // total payloads handled
  uint64_t errors = 0;    // payloads answered with a non-kOk status
  uint64_t by_opcode[9] = {};   // index = valid Opcode value, 0 unused
  uint64_t by_status[11] = {};  // index = Status value
};

class QueryDispatcher {
 public:
  /// `num_shards` is advertised by STATS (0 = single table). The hub
  /// and codec must outlive the dispatcher.
  QueryDispatcher(const ReadSnapshotHub& hub, const KeyCodec& codec,
                  uint32_t num_shards)
      : hub_(hub), codec_(codec), num_shards_(num_shards) {}

  /// Enables PUSH_SKETCH handling and the STATS node rows. Without an
  /// aggregator attached, pushes are answered kErrNotAggregator. The
  /// aggregator must outlive the dispatcher and is driven from the same
  /// (single) thread that calls Handle.
  void AttachAggregator(AggregatorCore* aggregator) {
    aggregator_ = aggregator;
  }

  /// Handles one request payload (the bytes inside a frame, NOT
  /// including the length prefix) and returns the response payload.
  /// Total: never throws, never returns an undecodable response.
  std::string Handle(std::string_view payload);

  const DispatchStats& stats() const { return stats_; }

 private:
  std::string HandleTopK(std::string_view body);
  std::string HandleEstimate(Opcode opcode, std::string_view body);
  std::string HandleStats();
  std::string HandlePush(std::string_view body);
  std::string HandleDumpTrace(std::string_view body);
  std::string Error(Status status, std::string_view detail);

  const ReadSnapshotHub& hub_;
  const KeyCodec& codec_;
  uint32_t num_shards_;
  AggregatorCore* aggregator_ = nullptr;
  DispatchStats stats_;
};

}  // namespace server
}  // namespace ltc

#endif  // LTC_SERVER_DISPATCHER_H_
