// Unit tests for the classic CLOCK replacement cache substrate.

#include <vector>

#include <gtest/gtest.h>

#include "clockcache/clock_cache.h"
#include "common/rng.h"

namespace ltc {
namespace {

TEST(ClockCache, HitAndMissAccounting) {
  ClockCache cache(4);
  EXPECT_FALSE(cache.Access(1));  // miss
  EXPECT_TRUE(cache.Access(1));   // hit
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(ClockCache, FillsBeforeEvicting) {
  ClockCache cache(3);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ClockCache, FifoEvictionWithoutReferences) {
  ClockCache cache(3);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);
  // No re-references: pure FIFO; 4 evicts 1, 5 evicts 2.
  cache.Access(4);
  EXPECT_FALSE(cache.Contains(1));
  cache.Access(5);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ClockCache, SecondChanceProtectsReferencedFrame) {
  ClockCache cache(3);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);
  cache.Access(1);  // set 1's reference bit
  cache.Access(4);  // hand at 1: second chance; evicts 2 instead
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(ClockCache, AllReferencedDegradesToFifoAfterOneSweep) {
  ClockCache cache(2);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);
  cache.Access(2);  // both referenced
  cache.Access(3);  // sweep clears both bits, then evicts frame 0 (key 1)
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ClockCache, CapacityOne) {
  ClockCache cache(1);
  cache.Access(1);
  EXPECT_TRUE(cache.Contains(1));
  cache.Access(1);  // referenced
  cache.Access(2);  // must still evict (only frame)
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(1));
}

TEST(ClockCache, LoopingScanBeatsNothingButStaysCorrect) {
  // Random workload sanity: size never exceeds capacity, every reported
  // hit is a real repeat, and hit rate on a skewed workload is decent.
  ClockCache cache(64);
  Rng rng(5);
  std::vector<bool> possible(1'001, false);
  uint64_t impossible_hits = 0;
  for (int i = 0; i < 50'000; ++i) {
    // 90% of accesses to 32 hot keys: CLOCK must capture most of them.
    uint64_t key = rng.Bernoulli(0.9) ? rng.Uniform(32) + 1
                                      : rng.Uniform(1'000) + 1;
    bool hit = cache.Access(key);
    if (hit && !possible[key]) ++impossible_hits;
    possible[key] = true;
    ASSERT_LE(cache.size(), 64u);
  }
  EXPECT_EQ(impossible_hits, 0u);
  EXPECT_GT(cache.HitRate(), 0.7);
}

TEST(ClockCache, HandAdvancesWithinBounds) {
  ClockCache cache(8);
  for (uint64_t i = 0; i < 100; ++i) {
    cache.Access(i);
    ASSERT_LT(cache.hand(), 8u);
  }
}

}  // namespace
}  // namespace ltc
