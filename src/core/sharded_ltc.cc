#include "core/sharded_ltc.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace ltc {

ShardedLtc::ShardedLtc(const LtcConfig& config, uint32_t num_shards)
    : route_seed_(Mix64(config.seed ^ 0x5a5a5a5aULL)) {
  assert(num_shards >= 1);
  LtcConfig per_shard = config;
  per_shard.memory_bytes = config.memory_bytes / num_shards;
  // In count-based mode each shard sees only its slice of the arrivals;
  // its period must be the per-shard EXPECTED arrivals so all shards'
  // clocks stay aligned with wall-stream periods.
  if (config.period_mode == PeriodMode::kCountBased) {
    per_shard.items_per_period =
        std::max<uint64_t>(1, config.items_per_period / num_shards);
  }
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(per_shard);
  }
}

uint32_t ShardedLtc::ShardOf(ItemId item) const {
  return static_cast<uint32_t>(
      FastRange64(Murmur64A(item, route_seed_), shards_.size()));
}

void ShardedLtc::Insert(ItemId item, double time) {
  shards_[ShardOf(item)].Insert(item, time);
}

void ShardedLtc::InsertBatch(std::span<const Record> records) {
  // Partition into per-shard runs. Routing preserves each shard's
  // arrival order and shards are independent, so handing every shard its
  // run as one batch reproduces the sequential-Insert state exactly.
  if (batch_runs_.size() != shards_.size()) {
    batch_runs_.assign(shards_.size(), {});
  }
  for (auto& run : batch_runs_) run.clear();
  for (const Record& record : records) {
    batch_runs_[ShardOf(record.item)].push_back(record);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!batch_runs_[s].empty()) shards_[s].InsertBatch(batch_runs_[s]);
  }
}

void ShardedLtc::Finalize() {
  for (Ltc& shard : shards_) shard.Finalize();
}

std::vector<Ltc::Report> ShardedLtc::TopK(size_t k) const {
  std::vector<Ltc::Report> all;
  for (const Ltc& shard : shards_) {
    for (const auto& report : shard.TopK(k)) all.push_back(report);
  }
  std::sort(all.begin(), all.end(),
            [](const Ltc::Report& a, const Ltc::Report& b) {
              if (a.significance != b.significance) {
                return a.significance > b.significance;
              }
              return a.item < b.item;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

double ShardedLtc::QuerySignificance(ItemId item) const {
  return shards_[ShardOf(item)].QuerySignificance(item);
}

uint64_t ShardedLtc::EstimateFrequency(ItemId item) const {
  return shards_[ShardOf(item)].EstimateFrequency(item);
}

uint64_t ShardedLtc::EstimatePersistency(ItemId item) const {
  return shards_[ShardOf(item)].EstimatePersistency(item);
}

namespace {
constexpr uint32_t kShardedMagic = 0x53484c31;  // "SHL1"
// v2: explicit format version after the magic (v1 had none).
constexpr uint32_t kShardedFormatVersion = 2;
}  // namespace

void ShardedLtc::Serialize(BinaryWriter& writer) const {
  PutVersionedMagic(writer, kShardedMagic, kShardedFormatVersion);
  writer.PutU64(route_seed_);
  writer.PutU32(static_cast<uint32_t>(shards_.size()));
  for (const Ltc& shard : shards_) shard.Serialize(writer);
}

std::optional<ShardedLtc> ShardedLtc::Deserialize(BinaryReader& reader) {
  if (!CheckVersionedMagic(reader, kShardedMagic, kShardedFormatVersion)) {
    return std::nullopt;
  }
  ShardedLtc sharded;
  sharded.route_seed_ = reader.GetU64();
  uint32_t num_shards = reader.GetU32();
  if (reader.failed() || num_shards == 0 || num_shards > 4096) {
    return std::nullopt;
  }
  sharded.shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    auto shard = Ltc::Deserialize(reader);
    if (!shard) return std::nullopt;
    sharded.shards_.push_back(std::move(*shard));
  }
  return sharded;
}

ShardedLtc ShardedLtc::CloneAtBarrier() const {
  ShardedLtc copy(*this);
  for (Ltc& shard : copy.shards_) shard.DetachTransientsForClone();
  return copy;
}

bool ShardedLtc::CheckInvariants() const {
  for (const Ltc& shard : shards_) {
    if (!shard.CheckInvariants()) return false;
  }
  return true;
}

size_t ShardedLtc::MemoryBytes() const {
  size_t total = 0;
  for (const Ltc& shard : shards_) total += shard.MemoryBytes();
  return total;
}

}  // namespace ltc
