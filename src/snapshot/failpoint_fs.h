// FailpointFs — deterministic fault injection for the snapshot I/O
// path (docs/DURABILITY.md "Failpoint catalog").
//
// Wraps any Fs and counts its *mutating* operations (WriteAll,
// AppendAll, Sync, SyncDir, Rename, Remove) in call order. Arm() schedules exactly one
// failure at a chosen operation index, which makes crash-consistency
// sweeps trivial: run a clean save once to learn its operation count,
// then re-run it once per index with a crash armed there
// (tests/snapshot_store_test.cc does exactly this — the
// "kill-mid-checkpoint at every point" proof).
//
// Failure semantics:
//   kCrash               the triggering op applies a partial effect
//                        (writes keep a seed-derived prefix), then the
//                        "process is dead": every later mutating op
//                        fails and changes nothing. Reads still work —
//                        recovery happens in a new process.
//   kShortWrite          one WriteAll persists only a prefix and
//                        reports failure (disk full / torn write).
//   kWriteError          one WriteAll writes nothing and fails.
//   kSyncError           one Sync/SyncDir reports failure.
//   kRenameError         one Rename fails, leaving both names as-is.
//   kTruncateAfterRename one Rename "succeeds" but the destination
//                        loses its tail (power loss before the data
//                        blocks hit the platter).
//   kFlipByteInWrite     one WriteAll silently flips a single byte at
//                        a seeded offset and reports success — the
//                        corruption only the CRC can catch.
//   kTornWriteCrash      the "torn sector": one WriteAll/AppendAll
//                        persists a *strict* prefix (seed % size bytes,
//                        so a non-empty write is always cut mid-record)
//                        and then the process is dead, like kCrash.
//                        Unlike kCrash — whose prefix is seed % (size+1)
//                        and may keep the whole write — this guarantees
//                        the tail record is torn, which pins the
//                        reader-side contract: a torn tail is clean
//                        end-of-log, never an error (src/store/wal.h).
//
// All choices (prefix lengths, flip offsets) derive from the seed, so
// every injected disaster is reproducible.

#ifndef LTC_SNAPSHOT_FAILPOINT_FS_H_
#define LTC_SNAPSHOT_FAILPOINT_FS_H_

#include <cstdint>

#include "snapshot/fs.h"

namespace ltc {

class FailpointFs final : public Fs {
 public:
  enum class Failure {
    kNone,
    kCrash,
    kShortWrite,
    kWriteError,
    kSyncError,
    kRenameError,
    kTruncateAfterRename,
    kFlipByteInWrite,
    kTornWriteCrash,
  };

  /// `base` must outlive this wrapper.
  explicit FailpointFs(Fs& base) : base_(base) {}

  /// Schedules `failure` at the first matching mutating operation with
  /// index >= trigger_op (indices count from 0 across ALL mutating
  /// ops). Re-arming resets the fired/crashed state. `burst` makes the
  /// failure fire on that many consecutive *matching* operations (an
  /// I/O fault burst — e.g. a disk that stays full for two writes);
  /// kCrash ignores it, being permanent by definition.
  void Arm(Failure failure, uint64_t trigger_op, uint64_t seed = 0,
           uint64_t burst = 1);

  /// Mutating operations observed so far.
  uint64_t mutating_ops() const { return ops_; }

  /// True once a kCrash failpoint has fired.
  bool crashed() const { return crashed_; }

  /// True once the armed failure has fired.
  bool fired() const { return fired_; }

  bool WriteAll(const std::string& path, std::string_view data) override;
  bool AppendAll(const std::string& path, std::string_view data) override;
  std::optional<std::string> ReadAll(const std::string& path) override;
  bool Sync(const std::string& path) override;
  bool SyncDir(const std::string& path) override;
  bool Rename(const std::string& from, const std::string& to) override;
  bool Remove(const std::string& path) override;
  bool Exists(const std::string& path) override;
  std::optional<std::vector<std::string>> ListDir(
      const std::string& dir) override;

 private:
  enum class OpKind { kWrite, kSync, kRename, kRemove };

  /// Accounts one mutating op; true iff the armed failure fires on it.
  bool Fires(OpKind op);

  /// Applies the armed write failure to one WriteAll/AppendAll.
  bool FailingWrite(const std::string& path, std::string_view data,
                    bool append);

  Fs& base_;
  Failure failure_ = Failure::kNone;
  uint64_t trigger_op_ = 0;
  uint64_t seed_ = 0;
  uint64_t burst_left_ = 0;  // matching ops the armed failure still hits
  uint64_t ops_ = 0;
  bool fired_ = false;
  bool crashed_ = false;
};

}  // namespace ltc

#endif  // LTC_SNAPSHOT_FAILPOINT_FS_H_
