// Standard Bloom filter (Bloom, 1970).
//
// Used exactly as the paper does in §II-B/§V-C: when a sketch-based
// algorithm is adapted to persistency counting, a Bloom filter records
// "item already seen in the current period" so the sketch is incremented
// at most once per item per period; the filter is cleared at each period
// boundary.

#ifndef LTC_SKETCH_BLOOM_FILTER_H_
#define LTC_SKETCH_BLOOM_FILTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serial.h"
#include "stream/stream.h"

namespace ltc {

class BloomFilter {
 public:
  /// \param num_bits     filter size in bits (rounded up to a word)
  /// \param num_hashes   k, number of hash probes per item
  /// \param seed         master seed; probes use Kirsch–Mitzenmacher
  ///                     double hashing off two Bob hashes
  BloomFilter(size_t num_bits, uint32_t num_hashes, uint64_t seed = 0);

  /// Inserts an item.
  void Add(ItemId item);

  /// Returns true if the item may have been added (false positives
  /// possible, false negatives not).
  bool MayContain(ItemId item) const;

  /// Adds the item and reports whether it may have been present before —
  /// one pass over the probe positions instead of two.
  bool TestAndAdd(ItemId item);

  /// Resets to empty (used at period boundaries).
  void Clear();

  size_t num_bits() const { return num_bits_; }
  uint32_t num_hashes() const { return num_hashes_; }

  /// Model memory footprint in bytes (bit array only), as accounted in the
  /// paper's memory budgets.
  size_t MemoryBytes() const { return bits_.size() * sizeof(uint64_t); }

  /// Optimal k for a target of n items in m bits: round(m/n · ln 2).
  static uint32_t OptimalNumHashes(size_t num_bits, size_t num_items);

  /// Theoretical false-positive rate after n insertions.
  double FalsePositiveRate(size_t num_items) const;

  /// Checkpointing.
  void Serialize(BinaryWriter& writer) const;
  static std::optional<BloomFilter> Deserialize(BinaryReader& reader);

 private:
  struct Probe {
    uint64_t h1;
    uint64_t h2;
  };
  Probe ProbeOf(ItemId item) const;
  size_t BitIndex(const Probe& p, uint32_t i) const {
    return (p.h1 + i * p.h2) % num_bits_;
  }

  size_t num_bits_;
  uint32_t num_hashes_;
  uint64_t seed_;
  std::vector<uint64_t> bits_;
};

}  // namespace ltc

#endif  // LTC_SKETCH_BLOOM_FILTER_H_
