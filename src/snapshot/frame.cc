#include "snapshot/frame.h"

#include "common/crc32.h"
#include "common/serial.h"

namespace ltc {
namespace {

constexpr uint32_t kFrameMagic = 0x4c534e50;  // "LSNP"
constexpr uint32_t kFrameVersion = 1;

}  // namespace

const char* SnapshotErrorName(SnapshotError error) {
  switch (error) {
    case SnapshotError::kNone: return "ok";
    case SnapshotError::kTooShort: return "too-short";
    case SnapshotError::kBadMagic: return "bad-magic";
    case SnapshotError::kBadVersion: return "bad-version";
    case SnapshotError::kBadHeaderCrc: return "bad-header-crc";
    case SnapshotError::kLengthMismatch: return "length-mismatch";
    case SnapshotError::kBadPayloadCrc: return "bad-payload-crc";
    case SnapshotError::kPayloadRejected: return "payload-rejected";
    case SnapshotError::kIoError: return "io-error";
    case SnapshotError::kNotFound: return "not-found";
  }
  return "unknown";
}

std::string EncodeFrame(std::string_view payload) {
  BinaryWriter header;
  header.PutU32(kFrameMagic);
  header.PutU32(kFrameVersion);
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload));
  header.PutU32(Crc32(header.data()));

  std::string frame = header.data();
  frame.append(payload.data(), payload.size());
  return frame;
}

FrameDecodeResult DecodeFrame(std::string_view frame) {
  FrameDecodeResult result;
  if (frame.size() < kFrameHeaderSize) {
    result.error = SnapshotError::kTooShort;
    return result;
  }
  BinaryReader reader(frame.substr(0, kFrameHeaderSize));
  const uint32_t magic = reader.GetU32();
  const uint32_t version = reader.GetU32();
  const uint64_t payload_length = reader.GetU64();
  const uint32_t payload_crc = reader.GetU32();
  const uint32_t header_crc = reader.GetU32();
  if (magic != kFrameMagic) {
    result.error = SnapshotError::kBadMagic;
    return result;
  }
  if (version != kFrameVersion) {
    result.error = SnapshotError::kBadVersion;
    return result;
  }
  if (header_crc != Crc32(frame.substr(0, kFrameHeaderSize - 4))) {
    result.error = SnapshotError::kBadHeaderCrc;
    return result;
  }
  const std::string_view payload = frame.substr(kFrameHeaderSize);
  if (payload.size() != payload_length) {
    result.error = SnapshotError::kLengthMismatch;
    return result;
  }
  if (payload_crc != Crc32(payload)) {
    result.error = SnapshotError::kBadPayloadCrc;
    return result;
  }
  result.payload = payload;
  return result;
}

}  // namespace ltc
