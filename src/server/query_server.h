// A dependency-free TCP front end for live LTC queries
// (docs/SERVING.md). Mirrors src/telemetry's zero-dep stance: POSIX
// sockets + poll(2), nothing else.
//
// Architecture: one event-loop thread owns every connection — accept,
// nonblocking reads, frame parsing, dispatch, buffered writes — and
// answers every query from the current ReadSnapshotHub image. The
// ingest path is never touched: readers pin immutable flush-barrier
// snapshots (core/read_snapshot.h), so a flood of point queries cannot
// stall the writer, and a stalled client cannot tear a read.
//
// Lifecycle: Start() binds, listens and spawns the loop; Stop() drains
// gracefully — stop accepting, answer everything already in flight,
// flush every response buffer, then close with FIN (never RST) — and
// joins. ltc_cli --serve calls Stop() on SIGINT/SIGTERM before it
// checkpoints, so "interrupted" clients still get their answers
// (proven end to end by tools/server_e2e.sh).

#ifndef LTC_SERVER_QUERY_SERVER_H_
#define LTC_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/read_snapshot.h"
#include "server/dispatcher.h"
#include "server/key_codec.h"
#include "server/protocol.h"
#include "telemetry/metrics.h"

namespace ltc {
namespace server {

struct QueryServerConfig {
  /// TCP port; 0 = ephemeral (read the real one from port() after
  /// Start — the e2e scripts and unit tests use this).
  uint16_t port = 0;

  /// Bind address. Loopback by default: exposing a sketch service
  /// beyond the host is a deliberate ops decision ("0.0.0.0").
  std::string bind_address = "127.0.0.1";

  int backlog = 64;

  /// Connections beyond this are accepted and immediately closed
  /// (counted in ltc_server_connections_rejected_total).
  size_t max_connections = 256;

  /// Frame-size ceiling, both directions.
  size_t max_frame_bytes = kMaxFrameBytes;

  /// Ceiling for PUSH_SKETCH request frames (see FrameParser). Leave at
  /// max_frame_bytes for a query-only server; aggregator mode raises it
  /// to kMaxPushFrameBytes so serialized sketches fit.
  size_t max_push_frame_bytes = kMaxFrameBytes;

  /// Stop(): how long the drain may spend flushing response buffers to
  /// slow readers before force-closing them.
  uint64_t drain_grace_usec = 3'000'000;

  /// Connections with no traffic in either direction for this long are
  /// closed (counted in ltc_server_connections_idle_closed_total), so a
  /// slow-loris peer cannot hold a max_connections slot forever. 0
  /// disables eviction.
  uint64_t idle_timeout_usec = 300'000'000;
};

class QueryServer {
 public:
  /// The hub and codec must outlive the server. `num_shards` is
  /// advertised by STATS (0 = single table).
  QueryServer(const ReadSnapshotHub& hub, const KeyCodec& codec,
              uint32_t num_shards, const QueryServerConfig& config = {});

  /// Stops and joins (graceful drain), if still running.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Registers the ltc_server_* families. Call before Start; the
  /// registry must outlive the server. The event loop updates the
  /// metrics directly (they are lock-free by design).
  void AttachMetrics(telemetry::MetricsRegistry* registry);

  /// Turns this server into the aggregation tier's front end: the event
  /// loop dispatches PUSH_SKETCH into `aggregator` and ticks its
  /// staleness upkeep between polls. Call before Start (the aggregator
  /// is then driven exclusively by the loop thread, which also makes it
  /// the hub's single publisher). Must outlive the server.
  void AttachAggregator(AggregatorCore* aggregator);

  /// Binds, listens and spawns the event loop. False (with `error`)
  /// when the socket setup fails; the server is then inert and Start
  /// may be retried with a different config. Not restartable after
  /// Stop().
  bool Start(std::string* error);

  /// The port actually bound (resolves port 0). 0 before Start.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Graceful drain and join; idempotent. After Stop the listener is
  /// closed, every in-flight response has been flushed (or the drain
  /// grace expired) and all connections got a clean FIN.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Operational counters (any thread).
  uint64_t TotalRequests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t TotalErrors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  uint64_t ConnectionsOpened() const {
    return conns_opened_.load(std::memory_order_relaxed);
  }
  uint64_t ConnectionsRejected() const {
    return conns_rejected_.load(std::memory_order_relaxed);
  }
  uint64_t ConnectionsIdleClosed() const {
    return conns_idle_closed_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    FrameParser parser;
    std::string out;       // unsent response bytes
    size_t out_off = 0;
    bool peer_eof = false;        // read side closed by the peer
    bool close_after_flush = false;  // poisoned stream: flush, then close
    uint64_t last_activity_usec = 0;  // idle-eviction clock

    Conn(size_t max_frame_bytes, size_t max_push_frame_bytes)
        : parser(max_frame_bytes, max_push_frame_bytes) {}
  };

  void Loop();
  void HandleListener();
  /// Reads, parses and dispatches; queues responses. False = close now.
  bool HandleReadable(Conn& conn);
  /// Flushes the out buffer. False = fatal write error, close now.
  bool FlushWrites(Conn& conn);
  void CloseConn(Conn& conn);
  void RecordRequest(std::string_view request_payload,
                     std::string_view response_payload, uint64_t micros);

  const ReadSnapshotHub& hub_;
  QueryServerConfig config_;
  QueryDispatcher dispatcher_;
  AggregatorCore* aggregator_ = nullptr;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() wakes poll()
  std::atomic<uint16_t> port_{0};
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  bool started_ = false;  // Start/Stop called from the owning thread

  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> conns_opened_{0};
  std::atomic<uint64_t> conns_rejected_{0};
  std::atomic<uint64_t> conns_idle_closed_{0};

  // Metrics (resolved once at AttachMetrics; loop-thread-written).
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter* op_counters_[9] = {};      // index = Opcode value
  telemetry::Counter* error_counters_[11] = {};  // index = Status value
  telemetry::Histogram* request_duration_usec_ = nullptr;
  telemetry::Counter* connections_total_ = nullptr;
  telemetry::Counter* connections_rejected_total_ = nullptr;
  telemetry::Counter* connections_idle_closed_total_ = nullptr;
  telemetry::Gauge* connections_open_ = nullptr;
  telemetry::Gauge* snapshot_seq_gauge_ = nullptr;
  telemetry::Counter* bytes_read_total_ = nullptr;
  telemetry::Counter* bytes_written_total_ = nullptr;
};

}  // namespace server
}  // namespace ltc

#endif  // LTC_SERVER_QUERY_SERVER_H_
